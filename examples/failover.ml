(* Fault-tolerance demo (§3.8): extensions and their state survive replica
   failures because everything the extension manager needs lives in
   ordinary replicated data objects.

   We register the counter extension on EZK, kill the Zab leader in the
   middle of the workload, and watch the extension keep running under the
   new leader; then we restart the crashed replica and show its extension
   manager reloading from the tree.

   Run with:  dune exec examples/failover.exe *)

open Edc_simnet
open Edc_core
module Zk = Edc_zookeeper
module Ezk = Edc_ezk.Ezk
module Ezk_cluster = Edc_ezk.Ezk_cluster
module Ezk_client = Edc_ezk.Ezk_client

let ok = function Ok v -> v | Error e -> failwith (Zk.Zerror.to_string e)
let okv = function Ok v -> v | Error e -> failwith e

let counter_program = Edc_recipes.Counter.program

let () =
  Printf.printf "== Extension fault tolerance (§3.8) ==\n\n";
  let sim = Sim.create ~seed:5 () in
  let cluster = Ezk_cluster.create sim in
  Proc.spawn sim (fun () ->
      (* the client connects to replica 1 so it survives the leader crash *)
      let c = Ezk_cluster.connected_client ~replica:1 cluster () in
      ignore (ok (Zk.Client.create_node c "/ctr" "0"));
      ignore (ok (Ezk_client.register c counter_program));
      Printf.printf "[%-8s] registered %S at the leader (replica 0)\n"
        (Fmt.str "%a" Sim_time.pp (Sim.now sim))
        "ctr-increment";

      for _ = 1 to 3 do
        match okv (Ezk_client.ext_read c "/ctr-increment") with
        | Value.Int n ->
            Printf.printf "[%-8s] increment -> %d\n"
              (Fmt.str "%a" Sim_time.pp (Sim.now sim)) n
        | _ -> failwith "unexpected value"
      done;

      Printf.printf "\n[%-8s] *** crashing the leader (replica 0) ***\n\n"
        (Fmt.str "%a" Sim_time.pp (Sim.now sim));
      Ezk_cluster.crash_server cluster 0;
      Proc.sleep sim (Sim_time.sec 3);

      (* the counter extension tolerates re-execution, so failover retries
         can use the shared transient-retry policy *)
      let v =
        match
          Retry.run ~sim
            ~rng:(Edc_simnet.Rng.split (Sim.rng sim))
            ~policy:
              {
                Retry.default_policy with
                Retry.base = Sim_time.ms 500;
                max_attempts = 20;
              }
            (fun ~attempt:_ ->
              match Ezk_client.ext_read c "/ctr-increment" with
              | Ok (Value.Int v) -> Ok v
              | Ok _ -> Error (Retry.Permanent "unexpected value")
              | Error e -> Error (Retry.Transient e))
        with
        | Retry.Done { value; _ } -> value
        | Retry.Maybe_applied { error; _ }
        | Retry.Gave_up { error; _ }
        | Retry.Rejected { error; _ } ->
            failwith ("extension lost after failover: " ^ error)
      in
      Printf.printf
        "[%-8s] increment -> %d under the NEW leader: the extension and its\n\
        \            counter state were replicated, nothing was lost\n"
        (Fmt.str "%a" Sim_time.pp (Sim.now sim))
        v;

      for _ = 1 to 2 do
        ignore (okv (Ezk_client.ext_read c "/ctr-increment"))
      done;

      Printf.printf "\n[%-8s] *** restarting replica 0 ***\n"
        (Fmt.str "%a" Sim_time.pp (Sim.now sim));
      Ezk_cluster.restart_server cluster 0;
      Proc.sleep sim (Sim_time.sec 3);
      let mgr = Ezk.manager (Ezk_cluster.ezk cluster 0) in
      Printf.printf
        "[%-8s] replica 0 rebuilt its extension manager from the replicated\n\
        \            data objects: %d extension(s) reloaded (%s)\n"
        (Fmt.str "%a" Sim_time.pp (Sim.now sim))
        (Manager.extension_count mgr)
        (String.concat ", " (Manager.registered_names mgr));

      let data, _ = ok (Zk.Client.get_data c "/ctr") in
      Printf.printf "\nfinal counter value: %s (3 before crash + 1 + 2 after)\n" data;
      assert (data = "6"));
  Sim.run ~until:(Sim_time.sec 120) sim
