(* §7 use case: a highly-available message queue ("a restricted
   message-oriented middleware in the same line as ActiveMQ") built
   directly on the coordination service, practical only because the
   extension makes dequeue a single atomic RPC.

   Producers pump messages through a work queue; consumers compete for
   them.  The underlying EZK ensemble gives the queue the coordination
   service's fault tolerance for free.

   Run with:  dune exec examples/message_queue.exe *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Systems = Edc_harness.Systems

let n_producers = 4
let n_consumers = 4
let messages_per_producer = 200

let () =
  Printf.printf "== Message queue on EXTENSIBLE ZOOKEEPER ==\n\n";
  let sim = Sim.create ~seed:11 () in
  let sys = Systems.make Systems.Ezk sim in
  let produced = ref 0 and consumed = ref 0 in
  let t_start = ref Sim_time.zero and t_end = ref Sim_time.zero in
  Proc.spawn sim (fun () ->
      let admin = fst (sys.Systems.new_api ()) in
      (match Queue.setup admin with Ok () -> () | Error e -> failwith e);
      (match Queue.register admin with Ok () -> () | Error e -> failwith e);
      t_start := Sim.now sim;
      (* producers *)
      for p = 1 to n_producers do
        Proc.spawn sim (fun () ->
            let api = fst (sys.Systems.new_api ()) in
            ignore ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
            for i = 1 to messages_per_producer do
              let eid = Queue.make_eid api i in
              let payload = Printf.sprintf "order-%d-%d" p i in
              match Queue.add api ~eid ~data:payload with
              | Ok () -> incr produced
              | Error e -> failwith ("add: " ^ e)
            done)
      done;
      (* consumers *)
      for _ = 1 to n_consumers do
        Proc.spawn sim (fun () ->
            let api = fst (sys.Systems.new_api ()) in
            ignore ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
            let rec drain () =
              if !consumed < n_producers * messages_per_producer then begin
                (match Queue.remove_ext api with
                | Ok { Queue.data = Some _; _ } ->
                    incr consumed;
                    t_end := Sim.now sim
                | Ok { Queue.data = None; _ } ->
                    (* empty: the producers have not caught up *)
                    Proc.sleep sim (Sim_time.ms 5)
                | Error e -> failwith ("remove: " ^ e));
                drain ()
              end
            in
            drain ())
      done);
  Sim.run ~until:(Sim_time.sec 120) sim;
  let total = n_producers * messages_per_producer in
  Printf.printf "producers sent %d messages, consumers received %d (no loss, no dup)\n"
    !produced !consumed;
  assert (!produced = total && !consumed = total);
  let elapsed = Sim_time.to_float_s (Sim_time.sub !t_end !t_start) in
  Printf.printf "end-to-end: %d messages in %.2f s simulated = %.0f msg/s\n" total
    elapsed
    (float_of_int total /. elapsed);
  Printf.printf
    "\nEach dequeue is ONE atomic RPC (extension), so competing consumers\n\
     never retry; with the traditional recipe every contended dequeue costs\n\
     subObjects (k+1 RPCs) plus delete races (§6.1.2).\n"
