(* Quickstart: boot a simulated EXTENSIBLE ZOOKEEPER ensemble, register the
   shared-counter extension from the paper's Figure 5 through the standard
   API, and compare it with the traditional read/cas recipe.

   Run with:  dune exec examples/quickstart.exe *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Systems = Edc_harness.Systems

let ok = function Ok v -> v | Error e -> failwith e

let () =
  Printf.printf "== Extensible Distributed Coordination: quickstart ==\n\n";
  (* Everything runs inside a deterministic discrete-event simulation: three
     ZooKeeper replicas, Zab replication, and simulated clients. *)
  let sim = Sim.create ~seed:1 () in
  let sys = Systems.make Systems.Ezk sim in
  Proc.spawn sim (fun () ->
      let api = fst (sys.Systems.new_api ()) in
      Printf.printf "connected to the ensemble (session %d)\n" api.Api.client_id;

      (* 1. create the counter object *)
      ok (Counter.setup api);
      Printf.printf "created %s = \"0\"\n" Counter.counter_oid;

      (* 2. register the increment extension: this is an ordinary create()
            of /em/ctr-increment whose data is the serialized program —
            verified, sandboxed, and replicated like any other update *)
      ok (Counter.register api);
      Printf.printf "registered extension %S via create(%s)\n"
        Counter.extension_name
        (Edc_core.Manager.extension_object Counter.extension_name);

      (* 3. increment atomically with single RPCs *)
      let t0 = Sim.now sim in
      for _ = 1 to 5 do
        let r = ok (Counter.increment_ext api) in
        Printf.printf "  increment -> %d  (1 RPC, %d attempt)\n" r.Counter.value
          r.Counter.attempts
      done;
      let ext_time = Sim_time.sub (Sim.now sim) t0 in

      (* 4. the same thing the traditional way: read + conditional write,
            with retries under contention *)
      let t0 = Sim.now sim in
      for _ = 1 to 5 do
        let r = ok (Counter.increment_traditional api) in
        Printf.printf "  traditional increment -> %d  (%d attempts)\n"
          r.Counter.value r.Counter.attempts
      done;
      let trad_time = Sim_time.sub (Sim.now sim) t0 in

      Printf.printf
        "\n5 extension increments took %s of simulated time;\n\
         5 traditional increments took %s (even without contention).\n"
        (Fmt.str "%a" Sim_time.pp ext_time)
        (Fmt.str "%a" Sim_time.pp trad_time);

      (* 5. the counter object holds the total *)
      match ok (api.Api.read ~oid:Counter.counter_oid) with
      | Some obj -> Printf.printf "final counter value: %s\n" obj.Api.data
      | None -> failwith "counter vanished");
  Sim.run ~until:(Sim_time.sec 60) sim;
  Printf.printf "\nquickstart finished at simulated t=%s\n"
    (Fmt.str "%a" Sim_time.pp (Sim.now sim))
