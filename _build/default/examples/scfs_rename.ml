(* §7.2 use case: file-system metadata on a coordination service.

   The SCFS cloud-backed file system stores file metadata in DepSpace: each
   file/directory is a tuple whose fields include the *name of its parent
   directory*.  POSIX rename() of a directory must atomically update the
   parent field of all k children — impossible with the stock kernel
   (k + 1 RPCs, not atomic), trivial with an EDS extension (1 RPC, atomic).

   Run with:  dune exec examples/scfs_rename.exe *)

open Edc_simnet
open Edc_core
module Ds = Edc_depspace
module Eds = Edc_eds.Eds
module Eds_cluster = Edc_eds.Eds_cluster
module Eds_client = Edc_eds.Eds_client

let ok = function Ok v -> v | Error e -> failwith e

(* Metadata objects: id = "/meta/<file>", data = parent directory name. *)
let meta_oid file = "/meta/" ^ file

(* The rename extension: triggered by an update/cas on the virtual object
   "/fs-rename" whose payload is "olddir|newdir"; it rewrites the parent
   field of every affected child — the hook SCFS had to hack into DepSpace
   (§7.2), expressed as a verified extension. *)
let rename_program =
  let open Ast in
  Program.make "fs-rename"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_update; Subscription.K_cas ];
          op_oid = Subscription.Exact "/fs-rename" } ]
    ~on_operation:
      [
        Let ("sep", Call ("str_index", [ Param "data"; Str_lit "|" ]));
        Let ("old", Call ("str_sub", [ Param "data"; Int_lit 0; Var "sep" ]));
        Let ("new",
             Call ("str_sub",
               [ Param "data";
                 Binop (Add, Var "sep", Int_lit 1);
                 Binop (Sub, Call ("str_len", [ Param "data" ]),
                   Binop (Add, Var "sep", Int_lit 1)) ]));
        Let ("moved", Int_lit 0);
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit "/meta" ]));
        For_each ("o", Var "objs",
          [
            If
              ( Binop (Eq, Field (Var "o", "data"), Var "old"),
                [
                  Do (Svc (Svc_update, [ Field (Var "o", "id"); Var "new" ]));
                  Assign ("moved", Binop (Add, Var "moved", Int_lit 1));
                ],
                [] );
          ]);
        Return (Var "moved");
      ]
    ()

let () =
  Printf.printf "== SCFS-style atomic directory rename on EDS (§7.2) ==\n\n";
  let sim = Sim.create ~seed:3 () in
  let cluster = Eds_cluster.create sim in
  Proc.spawn sim (fun () ->
      let c = Eds_cluster.client cluster () in
      (* populate a directory with k children *)
      let k = 12 in
      for i = 1 to k do
        ok
          (Ds.Ds_client.out c
             (Ds.Objects.tuple ~oid:(meta_oid (Printf.sprintf "file%02d" i))
                ~data:"/photos" ~version:0 ~ctime:0))
      done;
      ok
        (Ds.Ds_client.out c
           (Ds.Objects.tuple ~oid:(meta_oid "unrelated") ~data:"/music"
              ~version:0 ~ctime:0));
      Printf.printf "created %d files under /photos (one metadata tuple each)\n" k;

      ok (Eds_client.register c rename_program);
      Printf.printf "registered the fs-rename extension\n\n";

      (* rename /photos -> /pictures with ONE RPC *)
      let rpc_before = Ds.Ds_client.requests_sent c in
      let reply =
        Ds.Ds_client.request c
          (Ds.Ds_protocol.Replace
             {
               template = Ds.Objects.template "/fs-rename";
               tuple =
                 Ds.Objects.tuple ~oid:"/fs-rename" ~data:"/photos|/pictures"
                   ~version:0 ~ctime:0;
             })
      in
      let moved =
        match reply with
        | Ds.Ds_protocol.Ext_r s -> (
            match Value.deserialize s with
            | Ok (Value.Int n) -> n
            | _ -> failwith "unexpected extension value")
        | r -> failwith (Fmt.str "unexpected reply: %a" Ds.Ds_protocol.pp_result r)
      in
      let rpcs = Ds.Ds_client.requests_sent c - rpc_before in
      Printf.printf
        "rename(/photos -> /pictures): moved %d children ATOMICALLY in %d RPC\n"
        moved rpcs;
      Printf.printf "(the traditional implementation needs k + 1 = %d RPCs and\n\
                    \ exposes mixed states to concurrent readers)\n\n" (k + 1);

      (* verify *)
      let children_of dir =
        ok (Ds.Ds_client.rd_all c (Ds.Objects.sub_template "/meta"))
        |> List.filter_map Ds.Objects.decode
        |> List.filter (fun v -> v.Ds.Objects.data = dir)
        |> List.length
      in
      Printf.printf "/photos now has %d children, /pictures has %d, /music has %d\n"
        (children_of "/photos") (children_of "/pictures") (children_of "/music");
      assert (children_of "/photos" = 0);
      assert (children_of "/pictures" = 12);
      assert (children_of "/music" = 1);
      Printf.printf "\nPOSIX rename semantics preserved.\n");
  Sim.run ~until:(Sim_time.sec 60) sim
