(* §7.1 use case: load balancing in a software-defined network.

   A set of distributed SDN controller nodes assigns every new network
   flow to a backend server.  For optimal round-robin balancing, each
   controller needs a globally unique, dense sequence number per flow —
   i.e., a shared counter in the coordination service, *on the flow
   processing path*.

   The paper's point: with plain ZooKeeper the counter caps the whole
   control plane below ~2k flows/s, while the extension-based counter
   sustains ~25k increments/s — more than reported for contemporary
   distributed controllers.

   Run with:  dune exec examples/sdn_load_balancer.exe *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Systems = Edc_harness.Systems

let n_controllers = 8
let n_backends = 4
let window = Sim_time.sec 2

let run_control_plane kind ~use_extension =
  let sim = Sim.create ~seed:7 () in
  let sys = Systems.make kind sim in
  let flows_assigned = Array.make n_backends 0 in
  let total = ref 0 in
  let horizon = Sim_time.add (Sim.now sim) window in
  Proc.spawn sim (fun () ->
      let admin = fst (sys.Systems.new_api ()) in
      (match Counter.setup admin with Ok () -> () | Error e -> failwith e);
      if use_extension then (
        match Counter.register admin with Ok () -> () | Error e -> failwith e);
      for _ = 1 to n_controllers do
        Proc.spawn sim (fun () ->
            let api = fst (sys.Systems.new_api ()) in
            if use_extension then
              ignore ((Api.ext_exn api).Api.acknowledge Counter.extension_name);
            (* each controller continuously processes incoming flows *)
            let rec pump () =
              if Sim_time.(Sim.now sim < horizon) then begin
                let r =
                  if use_extension then Counter.increment_ext api
                  else Counter.increment_traditional api
                in
                (match r with
                | Ok { Counter.value; _ } ->
                    (* round-robin: the sequence number picks the backend *)
                    let backend = value mod n_backends in
                    flows_assigned.(backend) <- flows_assigned.(backend) + 1;
                    incr total
                | Error _ -> ());
                pump ()
              end
            in
            pump ())
      done);
  Sim.run ~until:(Sim_time.add horizon (Sim_time.sec 5)) sim;
  (!total, flows_assigned)

let () =
  Printf.printf "== SDN load balancing on a coordination service (§7.1) ==\n\n";
  Printf.printf
    "%d controller nodes assign flows to %d backends via a shared counter.\n\n"
    n_controllers n_backends;
  let report label (total, assigned) =
    let rate = float_of_int total /. Sim_time.to_float_s window in
    let spread =
      let mn = Array.fold_left min max_int assigned in
      let mx = Array.fold_left max 0 assigned in
      if mx = 0 then 0.0 else float_of_int (mx - mn) /. float_of_int mx *. 100.
    in
    Printf.printf "%-34s %8.0f flows/s   backend imbalance %.1f%%\n" label rate
      spread
  in
  report "ZooKeeper, traditional recipe:"
    (run_control_plane Systems.Zookeeper ~use_extension:false);
  report "EZK, counter extension:"
    (run_control_plane Systems.Ezk ~use_extension:true);
  Printf.printf
    "\nThe extension keeps the counter on the flow processing path while\n\
     sustaining an order of magnitude more flow setups per second — above\n\
     the 2k flows/s that would bottleneck a distributed controller (§7.1).\n"
