examples/quickstart.mli:
