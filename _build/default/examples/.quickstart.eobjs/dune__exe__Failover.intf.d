examples/failover.mli:
