examples/scfs_rename.ml: Ast Edc_core Edc_depspace Edc_eds Edc_simnet Fmt List Printf Proc Program Sim Sim_time Subscription Value
