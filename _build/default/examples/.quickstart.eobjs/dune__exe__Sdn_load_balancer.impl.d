examples/sdn_load_balancer.ml: Array Coord_api Counter Edc_harness Edc_recipes Edc_simnet Printf Proc Sim Sim_time
