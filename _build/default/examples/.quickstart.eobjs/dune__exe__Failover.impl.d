examples/failover.ml: Edc_core Edc_ezk Edc_recipes Edc_simnet Edc_zookeeper Fmt Manager Printf Proc Sim Sim_time String Value
