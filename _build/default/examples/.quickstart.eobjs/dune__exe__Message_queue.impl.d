examples/message_queue.ml: Coord_api Edc_harness Edc_recipes Edc_simnet Printf Proc Queue Sim Sim_time
