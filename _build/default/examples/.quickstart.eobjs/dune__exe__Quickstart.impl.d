examples/quickstart.ml: Coord_api Counter Edc_core Edc_harness Edc_recipes Edc_simnet Fmt Printf Proc Sim Sim_time
