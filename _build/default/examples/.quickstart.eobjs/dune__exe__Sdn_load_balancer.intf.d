examples/sdn_load_balancer.mli:
