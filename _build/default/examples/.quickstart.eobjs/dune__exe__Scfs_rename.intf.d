examples/scfs_rename.mli:
