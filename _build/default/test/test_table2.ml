(* Quantitative validation of Table 2: the RPC cost of every abstract
   operation on each mapping.  The table's cost structure is the paper's
   whole argument — e.g. subObjects is k+1 calls on ZooKeeper but a single
   rdAll on DepSpace — so we count actual client requests per call. *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Zk = Edc_zookeeper
module Ds = Edc_depspace

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* ZooKeeper column                                                    *)
(* ------------------------------------------------------------------ *)

let test_zk_rpc_costs () =
  let sim = Sim.create ~seed:31 () in
  let cluster = Zk.Cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let zc = Zk.Cluster.connected_client cluster () in
        let api = Coord_zk.of_client ~extensible:false zc in
        let cost what f =
          let before = Zk.Client.requests_sent zc in
          f ();
          (what, Zk.Client.requests_sent zc - before)
        in
        (* a parent with k = 5 children *)
        ignore (ok "mk" (api.Api.create ~oid:"/d" ~data:"x"));
        for i = 1 to 5 do
          ignore (ok "mk" (api.Api.create ~oid:(Printf.sprintf "/d/c%d" i) ~data:""))
        done;
        let costs =
          [
            cost "create" (fun () -> ignore (ok "create" (api.Api.create ~oid:"/t1" ~data:"")));
            cost "read" (fun () -> ignore (ok "read" (api.Api.read ~oid:"/d")));
            cost "update" (fun () -> ok "update" (api.Api.update ~oid:"/d" ~data:"y"));
            cost "cas" (fun () ->
                let obj = Option.get (ok "read" (api.Api.read ~oid:"/d")) in
                ignore (ok "cas" (api.Api.cas ~expected:obj ~data:"z")));
            cost "delete" (fun () -> ignore (ok "delete" (api.Api.delete ~oid:"/t1")));
            cost "subObjects(k=5)" (fun () ->
                ignore (ok "sub" (api.Api.sub_objects ~oid:"/d")));
            cost "subObjectIds" (fun () ->
                ignore (ok "ids" (api.Api.sub_object_ids ~oid:"/d")));
            cost "monitor" (fun () -> ok "monitor" (api.Api.monitor ~oid:"/m1"));
          ]
        in
        let expected =
          [
            ("create", 1);
            ("read", 1);
            ("update", 1);
            (* cas itself is 1 RPC; the preceding read is counted in its
               own row *)
            ("cas", 2);
            ("delete", 1);
            (* getChildren + one getData per child *)
            ("subObjects(k=5)", 6);
            ("subObjectIds", 1);
            ("monitor", 1);
          ]
        in
        List.iter2
          (fun (what, got) (_, want) ->
            Alcotest.(check int) ("ZooKeeper " ^ what ^ " RPCs") want got)
          costs expected
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  match !failure with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* DepSpace column                                                     *)
(* ------------------------------------------------------------------ *)

let test_ds_rpc_costs () =
  let sim = Sim.create ~seed:33 () in
  let cluster = Ds.Ds_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let dc = Ds.Ds_cluster.client cluster () in
        let api = Coord_ds.of_client ~extensible:false dc in
        let cost what f =
          let before = Ds.Ds_client.requests_sent dc in
          f ();
          (what, Ds.Ds_client.requests_sent dc - before)
        in
        ignore (ok "mk" (api.Api.create ~oid:"/d" ~data:"x"));
        for i = 1 to 5 do
          ignore (ok "mk" (api.Api.create ~oid:(Printf.sprintf "/d/c%d" i) ~data:""))
        done;
        let costs =
          [
            cost "create" (fun () -> ignore (ok "create" (api.Api.create ~oid:"/t1" ~data:"")));
            cost "read" (fun () -> ignore (ok "read" (api.Api.read ~oid:"/d")));
            cost "update" (fun () -> ok "update" (api.Api.update ~oid:"/d" ~data:"y"));
            cost "cas" (fun () ->
                let obj = Option.get (ok "read" (api.Api.read ~oid:"/d")) in
                ignore (ok "cas" (api.Api.cas ~expected:obj ~data:"z")));
            cost "delete" (fun () -> ignore (ok "delete" (api.Api.delete ~oid:"/t1")));
            (* THE Table 2 point: one rdAll regardless of k *)
            cost "subObjects(k=5)" (fun () ->
                ignore (ok "sub" (api.Api.sub_objects ~oid:"/d")));
            cost "monitor" (fun () -> ok "monitor" (api.Api.monitor ~oid:"/m1"));
          ]
        in
        let expected =
          [
            ("create", 1); ("read", 1); ("update", 1); ("cas", 2);
            ("delete", 1); ("subObjects(k=5)", 1); ("monitor", 1);
          ]
        in
        List.iter2
          (fun (what, got) (_, want) ->
            Alcotest.(check int) ("DepSpace " ^ what ^ " RPCs") want got)
          costs expected
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  match !failure with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* Extension single-RPC claims (§6.1)                                  *)
(* ------------------------------------------------------------------ *)

let test_ezk_extension_rpc_costs () =
  let sim = Sim.create ~seed:35 () in
  let cluster = Edc_ezk.Ezk_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let zc = Edc_ezk.Ezk_cluster.connected_client cluster () in
        let api = Coord_zk.of_client ~extensible:true zc in
        ignore (ok "setup" (Counter.setup api));
        ignore (ok "reg ctr" (Counter.register api));
        ignore (ok "setup q" (Queue.setup api));
        ignore (ok "reg q" (Queue.register api));
        for i = 1 to 5 do
          ignore (ok "add" (Queue.add api ~eid:(Queue.make_eid api i) ~data:""))
        done;
        let cost what f =
          let before = Zk.Client.requests_sent zc in
          f ();
          (what, Zk.Client.requests_sent zc - before)
        in
        let increments =
          cost "extension increment" (fun () ->
              ignore (ok "inc" (Counter.increment_ext api)))
        in
        let removal =
          cost "extension queue remove (k=5)" (fun () ->
              ignore (ok "rm" (Queue.remove_ext api)))
        in
        List.iter
          (fun (what, got) -> Alcotest.(check int) (what ^ " = single RPC") 1 got)
          [ increments; removal ]
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  match !failure with Some e -> raise e | None -> ()

let () =
  Alcotest.run "edc_table2"
    [
      ( "rpc-costs",
        [
          Alcotest.test_case "ZooKeeper column" `Quick test_zk_rpc_costs;
          Alcotest.test_case "DepSpace column" `Quick test_ds_rpc_costs;
          Alcotest.test_case "extensions are single-RPC" `Quick
            test_ezk_extension_rpc_costs;
        ] );
    ]
