(* Integration tests for EXTENSIBLE ZOOKEEPER (EZK) and EXTENSIBLE
   DEPSPACE (EDS): registration through the unchanged service API,
   sandboxed server-side execution, multi-transaction atomicity, blocking
   calls, event extensions, suppression, and fault tolerance of the
   extension manager state (§3–§5). *)

open Edc_simnet
open Edc_core
module Zk = Edc_zookeeper
module Ezk = Edc_ezk.Ezk
module Ezk_cluster = Edc_ezk.Ezk_cluster
module Ezk_client = Edc_ezk.Ezk_client
module Eds = Edc_eds.Eds
module Eds_cluster = Edc_eds.Eds_cluster
module Eds_client = Edc_eds.Eds_client
module Ds = Edc_depspace

(* ------------------------------------------------------------------ *)
(* Shared extension programs (the DSL versions of the paper's figures)  *)
(* ------------------------------------------------------------------ *)

let counter_program =
  let open Ast in
  Program.make "ctr-increment"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact "/ctr-increment" } ]
    ~on_operation:
      [
        Let ("c", Call ("int_of_str", [ Field (Svc (Svc_read, [ Str_lit "/ctr" ]), "data") ]));
        Do (Svc (Svc_update, [ Str_lit "/ctr"; Call ("str_of_int", [ Binop (Add, Var "c", Int_lit 1) ]) ]));
        Return (Binop (Add, Var "c", Int_lit 1));
      ]
    ()

(* updates two objects atomically, then a variant that aborts mid-way *)
let twin_program ~abort =
  let open Ast in
  let body =
    [
      Do (Svc (Svc_update, [ Str_lit "/a"; Str_lit "new" ]));
    ]
    @ (if abort then [ Abort "deliberate" ] else [])
    @ [
        Do (Svc (Svc_update, [ Str_lit "/b"; Str_lit "new" ]));
        Return (Str_lit "done");
      ]
  in
  Program.make (if abort then "twin-abort" else "twin")
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact (if abort then "/twin-abort" else "/twin") } ]
    ~on_operation:body ()

let gate_program =
  let open Ast in
  Program.make "gate"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_block ];
          op_oid = Subscription.Under "/gate" } ]
    ~on_operation:[ Do (Svc (Svc_block, [ Param "oid" ])) ]
    ()

let nondet_program =
  let open Ast in
  Program.make "timey"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact "/now" } ]
    ~on_operation:[ Return (Call ("clock", [])) ]
    ()

(* event extension: whenever something under /watched is deleted, append a
   tombstone object *)
let tombstone_program =
  let open Ast in
  Program.make "tombstone"
    ~event_subs:
      [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
          ev_oid = Subscription.Under "/watched" } ]
    ~on_event:
      [ Do (Svc (Svc_create_sequential, [ Str_lit "/tombs/t"; Param "oid" ])) ]
    ()

(* ------------------------------------------------------------------ *)
(* EZK harness                                                         *)
(* ------------------------------------------------------------------ *)

let in_ezk ?(horizon = Sim_time.sec 120) ?(seed = 9) f =
  let sim = Sim.create ~seed () in
  let cluster = Ezk_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f cluster with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  match !failure with Some e -> raise e | None -> ()

let zok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Zk.Zerror.pp e

let vok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* EZK tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_ezk_counter_extension () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      ignore (zok "init ctr" (Zk.Client.create_node c "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register c counter_program));
      for expected = 1 to 20 do
        match vok "increment" (Ezk_client.ext_read c "/ctr-increment") with
        | Value.Int n -> Alcotest.(check int) "dense values" expected n
        | v -> Alcotest.failf "unexpected value %a" Value.pp v
      done;
      let data, _ = zok "read ctr" (Zk.Client.get_data c "/ctr") in
      Alcotest.(check string) "stored count" "20" data)

let test_ezk_extension_needs_ack () =
  in_ezk (fun cluster ->
      let owner = Ezk_cluster.connected_client cluster () in
      let stranger = Ezk_cluster.connected_client cluster () in
      ignore (zok "init" (Zk.Client.create_node owner "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register owner counter_program));
      Proc.sleep (Ezk_cluster.sim cluster) (Sim_time.ms 100);
      (* without ack, the stranger's read is a plain read of a nonexistent
         node *)
      (match Zk.Client.get_data stranger "/ctr-increment" with
      | Error Zk.Zerror.No_node -> ()
      | Ok _ -> Alcotest.fail "extension must not trigger for unacked client"
      | Error e -> Alcotest.failf "unexpected: %a" Zk.Zerror.pp e);
      (* after the one-time acknowledgment it triggers *)
      ignore (zok "ack" (Ezk_client.acknowledge stranger "ctr-increment"));
      match vok "increment" (Ezk_client.ext_read stranger "/ctr-increment") with
      | Value.Int 1 -> ()
      | v -> Alcotest.failf "unexpected %a" Value.pp v)

let test_ezk_registration_rejects_garbage () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      match Zk.Client.create_node c "/em/evil" "(not a program" with
      | Error (Zk.Zerror.Extension_error _) -> ()
      | Ok _ -> Alcotest.fail "garbage registration accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Zk.Zerror.pp e)

let test_ezk_multi_txn_atomicity () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      ignore (zok "a" (Zk.Client.create_node c "/a" "old"));
      ignore (zok "b" (Zk.Client.create_node c "/b" "old"));
      ignore (zok "register ok" (Ezk_client.register c (twin_program ~abort:false)));
      ignore (zok "register abort" (Ezk_client.register c (twin_program ~abort:true)));
      (* the aborting extension must leave no trace *)
      (match Ezk_client.ext_read c "/twin-abort" with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "abort must fail the call, got %a" Value.pp v);
      let a, _ = zok "read a" (Zk.Client.get_data c "/a") in
      let b, _ = zok "read b" (Zk.Client.get_data c "/b") in
      Alcotest.(check (pair string string)) "aborted: nothing applied"
        ("old", "old") (a, b);
      (* the successful one applies both, atomically *)
      ignore (vok "twin" (Ezk_client.ext_read c "/twin"));
      let a, _ = zok "read a2" (Zk.Client.get_data c "/a") in
      let b, _ = zok "read b2" (Zk.Client.get_data c "/b") in
      Alcotest.(check (pair string string)) "both applied" ("new", "new") (a, b))

let test_ezk_block_extension () =
  in_ezk (fun cluster ->
      let sim = Ezk_cluster.sim cluster in
      let waiter = Ezk_cluster.connected_client cluster () in
      let creator = Ezk_cluster.connected_client cluster () in
      ignore (zok "parent" (Zk.Client.create_node creator "/gate" ""));
      ignore (zok "register" (Ezk_client.register waiter gate_program));
      let blocked =
        Proc.async sim (fun () -> zok "block" (Ezk_client.block waiter "/gate/go"))
      in
      Proc.sleep sim (Sim_time.ms 300);
      Alcotest.(check bool) "still parked" false (Proc.is_fulfilled blocked);
      ignore (zok "open gate" (Zk.Client.create_node creator "/gate/go" "payload"));
      let data = Proc.await blocked in
      Alcotest.(check string) "unblocked with object data" "payload" data)

let test_ezk_event_extension () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      ignore (zok "parent" (Zk.Client.create_node c "/watched" ""));
      ignore (zok "tombs" (Zk.Client.create_node c "/tombs" ""));
      ignore (zok "victim" (Zk.Client.create_node c "/watched/x" ""));
      ignore (zok "register" (Ezk_client.register c tombstone_program));
      ignore (zok "delete" (Zk.Client.delete c "/watched/x"));
      Proc.sleep (Ezk_cluster.sim cluster) (Sim_time.ms 500);
      let tombs = zok "ls tombs" (Zk.Client.get_children c "/tombs") in
      Alcotest.(check int) "one tombstone" 1 (List.length tombs);
      let data, _ =
        zok "tomb data" (Zk.Client.get_data c ("/tombs/" ^ List.hd tombs))
      in
      Alcotest.(check string) "records the deleted oid" "/watched/x" data)

let test_ezk_watch_suppression () =
  in_ezk (fun cluster ->
      let sim = Ezk_cluster.sim cluster in
      let subscriber = Ezk_cluster.connected_client cluster () in
      let plain = Ezk_cluster.connected_client cluster () in
      let writer = Ezk_cluster.connected_client cluster () in
      ignore (zok "parent" (Zk.Client.create_node writer "/watched" ""));
      ignore (zok "tombs" (Zk.Client.create_node writer "/tombs" ""));
      ignore (zok "victim" (Zk.Client.create_node writer "/watched/y" ""));
      ignore (zok "register" (Ezk_client.register subscriber tombstone_program));
      Proc.sleep sim (Sim_time.ms 100);
      (* both clients set a watch on the node *)
      let sub_event = Zk.Client.watch_waiter subscriber "/watched/y" in
      let plain_event = Zk.Client.watch_waiter plain "/watched/y" in
      ignore (zok "w1" (Zk.Client.get_data subscriber ~watch:true "/watched/y"));
      ignore (zok "w2" (Zk.Client.get_data plain ~watch:true "/watched/y"));
      ignore (zok "delete" (Zk.Client.delete writer "/watched/y"));
      Proc.sleep sim (Sim_time.sec 1);
      Alcotest.(check bool) "plain client notified" true (Proc.is_fulfilled plain_event);
      Alcotest.(check bool) "subscriber's notification suppressed (§5.1.2)"
        false (Proc.is_fulfilled sub_event))

let test_ezk_deregistration () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      ignore (zok "init" (Zk.Client.create_node c "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register c counter_program));
      ignore (vok "works" (Ezk_client.ext_read c "/ctr-increment"));
      ignore (zok "deregister" (Ezk_client.deregister c "ctr-increment"));
      (* back to a plain read of a nonexistent node *)
      match Zk.Client.get_data c "/ctr-increment" with
      | Error Zk.Zerror.No_node -> ()
      | Ok _ -> Alcotest.fail "extension still active after deregistration"
      | Error e -> Alcotest.failf "unexpected %a" Zk.Zerror.pp e)

let test_ezk_only_owner_deregisters () =
  in_ezk (fun cluster ->
      let owner = Ezk_cluster.connected_client cluster () in
      let other = Ezk_cluster.connected_client cluster () in
      ignore (zok "init" (Zk.Client.create_node owner "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register owner counter_program));
      Proc.sleep (Ezk_cluster.sim cluster) (Sim_time.ms 100);
      match Ezk_client.deregister other "ctr-increment" with
      | Error (Zk.Zerror.Extension_error _) -> ()
      | Ok _ -> Alcotest.fail "foreign deregistration accepted"
      | Error e -> Alcotest.failf "unexpected %a" Zk.Zerror.pp e)

let test_ezk_extension_survives_leader_failover () =
  in_ezk (fun cluster ->
      let sim = Ezk_cluster.sim cluster in
      (* client attached to replica 1 so it survives the crash of 0 *)
      let c = Ezk_cluster.connected_client ~replica:1 cluster () in
      ignore (zok "init" (Zk.Client.create_node c "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register c counter_program));
      ignore (vok "pre-crash" (Ezk_client.ext_read c "/ctr-increment"));
      Ezk_cluster.crash_server cluster 0;
      Proc.sleep sim (Sim_time.sec 3);
      let rec retry n =
        match Ezk_client.ext_read c "/ctr-increment" with
        | Ok (Value.Int v) -> v
        | Ok v -> Alcotest.failf "unexpected %a" Value.pp v
        | Error _ when n > 0 ->
            Proc.sleep sim (Sim_time.ms 500);
            retry (n - 1)
        | Error e -> Alcotest.failf "extension dead after failover: %s" e
      in
      let v = retry 20 in
      Alcotest.(check int) "counter continued from committed state" 2 v)

let test_ezk_restart_reloads_extensions () =
  in_ezk (fun cluster ->
      let sim = Ezk_cluster.sim cluster in
      let c = Ezk_cluster.connected_client ~replica:0 cluster () in
      ignore (zok "init" (Zk.Client.create_node c "/ctr" "0"));
      ignore (zok "register" (Ezk_client.register c counter_program));
      ignore (vok "works" (Ezk_client.ext_read c "/ctr-increment"));
      (* crash and restart replica 2; its manager must be rebuilt from the
         replicated data objects (§3.8) *)
      Ezk_cluster.crash_server cluster 2;
      Proc.sleep sim (Sim_time.sec 1);
      Ezk_cluster.restart_server cluster 2;
      Proc.sleep sim (Sim_time.sec 2);
      let mgr = Ezk.manager (Ezk_cluster.ezk cluster 2) in
      Alcotest.(check int) "reloaded from data objects" 1
        (Edc_core.Manager.extension_count mgr);
      match Edc_core.Manager.find mgr "ctr-increment" with
      | Some entry ->
          Alcotest.(check bool) "owner restored" true
            (entry.Edc_core.Manager.owner = Zk.Client.session c)
      | None -> Alcotest.fail "extension missing after reload")

let test_ezk_custom_notification () =
  (* §5.1.2: "an event extension may still choose to send a notification
     of its own" — the notifier extension suppresses the original watch
     event and pushes a custom one at a different path *)
  in_ezk (fun cluster ->
      let sim = Ezk_cluster.sim cluster in
      let subscriber = Ezk_cluster.connected_client cluster () in
      let writer = Ezk_cluster.connected_client cluster () in
      ignore (zok "parent" (Zk.Client.create_node writer "/watched" ""));
      ignore (zok "victim" (Zk.Client.create_node writer "/watched/z" ""));
      let notifier =
        let open Ast in
        Program.make "notifier"
          ~event_subs:
            [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
                ev_oid = Subscription.Under "/watched" } ]
          ~on_event:
            [ Do (Svc (Svc_notify, [ Param "client"; Str_lit "/custom-channel" ])) ]
          ()
      in
      ignore (zok "register" (Ezk_client.register subscriber notifier));
      Proc.sleep sim (Sim_time.ms 100);
      let original = Zk.Client.watch_waiter subscriber "/watched/z" in
      let custom = Zk.Client.watch_waiter subscriber "/custom-channel" in
      ignore (zok "watch" (Zk.Client.get_data subscriber ~watch:true "/watched/z"));
      (* the deleter is the subscriber itself so the notify targets its
         session (the event handler's client parameter) *)
      ignore (zok "delete" (Zk.Client.delete subscriber "/watched/z"));
      Proc.sleep sim (Sim_time.sec 1);
      Alcotest.(check bool) "original suppressed" false (Proc.is_fulfilled original);
      Alcotest.(check bool) "custom notification delivered" true
        (Proc.is_fulfilled custom))

(* ------------------------------------------------------------------ *)
(* EDS harness                                                         *)
(* ------------------------------------------------------------------ *)

let in_eds ?(horizon = Sim_time.sec 120) ?(seed = 13) f =
  let sim = Sim.create ~seed () in
  let cluster = Eds_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f cluster with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  match !failure with Some e -> raise e | None -> ()

let obj_out c ~oid ~data =
  Ds.Ds_client.out c (Ds.Objects.tuple ~oid ~data ~version:0 ~ctime:0)

let obj_read c oid =
  match Ds.Ds_client.rdp c (Ds.Objects.template oid) with
  | Ok (Some t) -> (
      match Ds.Objects.decode t with
      | Some v -> Ok (Some v.Ds.Objects.data)
      | None -> Error "not an object")
  | Ok None -> Ok None
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* EDS tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_eds_counter_extension () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      vok "init" (obj_out c ~oid:"/ctr" ~data:"0");
      vok "register" (Eds_client.register c counter_program);
      for expected = 1 to 10 do
        match vok "increment" (Eds_client.ext_read c "/ctr-increment") with
        | Value.Int n -> Alcotest.(check int) "dense" expected n
        | v -> Alcotest.failf "unexpected %a" Value.pp v
      done;
      (match vok "read" (obj_read c "/ctr") with
      | Some "10" -> ()
      | Some d -> Alcotest.failf "counter is %s" d
      | None -> Alcotest.fail "counter object lost");
      (* all correct replicas hold the same space *)
      let contents i =
        Ds.Space.contents (Ds.Ds_server.space (Eds_cluster.servers cluster).(i))
      in
      Alcotest.(check bool) "replicas identical" true
        (contents 0 = contents 1 && contents 1 = contents 2 && contents 2 = contents 3))

let test_eds_rejects_nondeterminism () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      match Eds_client.register c nondet_program with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "active replication must reject clock()")

let test_eds_abort_rolls_back () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      vok "a" (obj_out c ~oid:"/a" ~data:"old");
      vok "b" (obj_out c ~oid:"/b" ~data:"old");
      vok "register" (Eds_client.register c (twin_program ~abort:true));
      (match Eds_client.ext_read c "/twin-abort" with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "abort must fail, got %a" Value.pp v);
      (match vok "a after" (obj_read c "/a") with
      | Some "old" -> ()
      | other -> Alcotest.failf "rollback failed: %s" (Option.value ~default:"gone" other));
      match vok "b after" (obj_read c "/b") with
      | Some "old" -> ()
      | other -> Alcotest.failf "rollback failed: %s" (Option.value ~default:"gone" other))

let test_eds_block_extension () =
  in_eds (fun cluster ->
      let sim = Eds_cluster.sim cluster in
      let waiter = Eds_cluster.client cluster () in
      let creator = Eds_cluster.client cluster () in
      vok "register" (Eds_client.register waiter gate_program);
      let blocked =
        Proc.async sim (fun () -> vok "block" (Eds_client.block waiter "/gate/go"))
      in
      Proc.sleep sim (Sim_time.ms 500);
      Alcotest.(check bool) "parked" false (Proc.is_fulfilled blocked);
      vok "open" (obj_out creator ~oid:"/gate/go" ~data:"payload");
      let data = Proc.await blocked in
      Alcotest.(check string) "unblocked with data" "payload" data)

let test_eds_deletion_event_on_expiry () =
  in_eds (fun cluster ->
      let sim = Eds_cluster.sim cluster in
      let c = Eds_cluster.client cluster () in
      let observer = Eds_cluster.client cluster () in
      (* successor extension: when a /watched object dies, record it *)
      let successor =
        let open Ast in
        Program.make "successor"
          ~event_subs:
            [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
                ev_oid = Subscription.Under "/watched" } ]
          ~on_event:[ Do (Svc (Svc_create, [ Str_lit "/successor"; Param "oid" ])) ]
          ()
      in
      vok "register" (Eds_client.register c successor);
      (* a lease object that we never renew *)
      (match
         Ds.Ds_client.out c ~lease:(Sim_time.sec 2)
           (Ds.Objects.tuple ~oid:"/watched/7" ~data:"" ~version:0 ~ctime:0)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "lease out: %s" e);
      (* drive time (and thus expiry) with ordered traffic *)
      for _ = 1 to 10 do
        Proc.sleep sim (Sim_time.sec 1);
        ignore (Ds.Ds_client.noop observer)
      done;
      match vok "successor" (obj_read observer "/successor") with
      | Some "/watched/7" -> ()
      | Some d -> Alcotest.failf "wrong successor data %s" d
      | None -> Alcotest.fail "deletion event did not fire on lease expiry")

let test_eds_reload () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      vok "init" (obj_out c ~oid:"/ctr" ~data:"0");
      vok "register" (Eds_client.register c counter_program);
      ignore (vok "works" (Eds_client.ext_read c "/ctr-increment"));
      Proc.sleep (Eds_cluster.sim cluster) (Sim_time.ms 500);
      (* simulate a process restart on replica 1: fresh manager, rebuilt by
         scanning the replicated space *)
      let fresh = Eds.install (Eds_cluster.servers cluster).(1) in
      Eds.reload fresh;
      Alcotest.(check int) "rebuilt from tuples" 1
        (Edc_core.Manager.extension_count (Eds.manager fresh)))

let test_eds_unblock_event_can_reblock () =
  (* §5.2.2: "an extension may decide to block the operation again" — the
     unblock of a parked rd is DepSpace's event; this event extension
     re-parks the caller until the object's content is "open" *)
  in_eds (fun cluster ->
      let sim = Eds_cluster.sim cluster in
      let owner = Eds_cluster.client cluster () in
      let waiter = Eds_cluster.client cluster () in
      let gatekeeper =
        let open Ast in
        Program.make "gatekeeper"
          ~event_subs:
            [ { Subscription.ev_kinds = [ Subscription.E_unblocked ];
                ev_oid = Subscription.Under "/gate2" } ]
          ~on_event:
            [
              If
                ( Binop (Eq, Param "data", Str_lit "open"),
                  [ Return (Str_lit "proceed") ],
                  [ Return (Str_lit "reblock") ] );
            ]
          ()
      in
      vok "register" (Eds_client.register owner gatekeeper);
      let blocked =
        Proc.async sim (fun () ->
            match Ds.Ds_client.rd waiter (Ds.Objects.template "/gate2/door") with
            | Ok t -> (
                match Ds.Objects.decode t with
                | Some v -> v.Ds.Objects.data
                | None -> "?")
            | Error e -> Alcotest.failf "rd: %s" e)
      in
      Proc.sleep sim (Sim_time.ms 300);
      (* creating the object CLOSED unblocks the rd, but the event
         extension re-parks it *)
      vok "closed" (obj_out owner ~oid:"/gate2/door" ~data:"closed");
      Proc.sleep sim (Sim_time.sec 1);
      Alcotest.(check bool) "re-blocked while closed" false
        (Proc.is_fulfilled blocked);
      (* replacing the content with "open" re-fires the unblock *)
      (match
         Ds.Ds_client.replace owner
           (Ds.Objects.template "/gate2/door")
           (Ds.Objects.tuple ~oid:"/gate2/door" ~data:"open" ~version:1 ~ctime:0)
       with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "replace missed"
      | Error e -> Alcotest.failf "replace: %s" e);
      let data = Proc.await blocked in
      Alcotest.(check string) "released once open" "open" data)

let test_eds_byzantine_replica_cannot_corrupt_extension_results () =
  in_eds (fun cluster ->
      Ds.Ds_server.set_byzantine (Eds_cluster.servers cluster).(3);
      let c = Eds_cluster.client cluster () in
      vok "init" (obj_out c ~oid:"/ctr" ~data:"0");
      vok "register despite liar" (Eds_client.register c counter_program);
      for expected = 1 to 5 do
        match vok "inc" (Eds_client.ext_read c "/ctr-increment") with
        | Value.Int n -> Alcotest.(check int) "vote masks the liar" expected n
        | v -> Alcotest.failf "unexpected %a" Value.pp v
      done)

let test_eds_deregistration_end_to_end () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      vok "init" (obj_out c ~oid:"/ctr" ~data:"0");
      vok "register" (Eds_client.register c counter_program);
      ignore (vok "works" (Eds_client.ext_read c "/ctr-increment"));
      vok "deregister" (Eds_client.deregister c "ctr-increment");
      (* back to a plain read of a nonexistent object *)
      match Ds.Ds_client.rdp c (Ds.Objects.template "/ctr-increment") with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "extension object should be gone"
      | Error e -> Alcotest.failf "rdp: %s" e)

let test_eds_failing_event_extension_is_isolated () =
  (* an event extension that aborts must not disturb the triggering
     operation or the space *)
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      let bomb =
        let open Ast in
        Program.make "bomb"
          ~event_subs:
            [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
                ev_oid = Subscription.Under "/watched" } ]
          ~on_event:[ Abort "boom" ]
          ()
      in
      vok "register" (Eds_client.register c bomb);
      vok "create" (obj_out c ~oid:"/watched/x" ~data:"v");
      (* the delete triggers the bomb; the delete itself must succeed *)
      (match Ds.Ds_client.inp c (Ds.Objects.template "/watched/x") with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.fail "delete lost"
      | Error e -> Alcotest.failf "inp: %s" e);
      (* and the service is still healthy *)
      vok "service alive" (obj_out c ~oid:"/after" ~data:"ok"))

let test_eds_em_region_protected () =
  in_eds (fun cluster ->
      let c = Eds_cluster.client cluster () in
      vok "register" (Eds_client.register c counter_program);
      (* overwriting extension code through replace must be refused *)
      match
        Ds.Ds_client.replace c
          (Ds.Objects.template "/em/ctr-increment")
          (Ds.Objects.tuple ~oid:"/em/ctr-increment" ~data:"evil" ~version:1 ~ctime:0)
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "extension objects must be immutable")

let test_ezk_em_objects_immutable () =
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      ignore (zok "register" (Ezk_client.register c counter_program));
      (* overwriting extension code must be refused *)
      match Zk.Client.set_data c "/em/ctr-increment" "evil" with
      | Error (Zk.Zerror.Extension_error _) -> ()
      | Ok _ -> Alcotest.fail "extension code must be immutable"
      | Error e -> Alcotest.failf "unexpected %a" Zk.Zerror.pp e)

let test_ezk_last_registration_wins_end_to_end () =
  (* §3.3: "If a request matches multiple extensions, only the last
     registered will be executed" — through the full stack *)
  in_ezk (fun cluster ->
      let c = Ezk_cluster.connected_client cluster () in
      let mk name ret =
        let open Ast in
        Program.make name
          ~op_subs:[ { Subscription.op_kinds = [ Subscription.K_read ];
                       op_oid = Subscription.Exact "/overlap" } ]
          ~on_operation:[ Return (Int_lit ret) ] ()
      in
      ignore (zok "reg first" (Ezk_client.register c (mk "first" 1)));
      ignore (zok "reg second" (Ezk_client.register c (mk "second" 2)));
      (match vok "invoke" (Ezk_client.ext_read c "/overlap") with
      | Value.Int 2 -> ()
      | v -> Alcotest.failf "expected the later extension, got %a" Value.pp v);
      (* deregistering the winner falls back to the earlier one *)
      ignore (zok "dereg" (Ezk_client.deregister c "second"));
      match vok "invoke again" (Ezk_client.ext_read c "/overlap") with
      | Value.Int 1 -> ()
      | v -> Alcotest.failf "expected the earlier extension, got %a" Value.pp v)

let test_ezk_extensions_survive_snapshot_recovery () =
  (* a replica recovering through snapshot state transfer (not log replay)
     must rebuild its extension manager from the installed tree *)
  let sim = Sim.create ~seed:45 () in
  let config = { Zk.Server.default_config with snapshot_interval = 20 } in
  let cluster = Ezk_cluster.create ~server_config:config sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let c = Ezk_cluster.connected_client ~replica:0 cluster () in
        ignore (zok "ctr" (Zk.Client.create_node c "/ctr" "0"));
        ignore (zok "register" (Ezk_client.register c counter_program));
        Ezk_cluster.crash_server cluster 2;
        (* push the log far past the snapshot horizon *)
        for i = 1 to 80 do
          ignore (zok "mk" (Zk.Client.create_node c (Printf.sprintf "/junk%03d" i) ""))
        done;
        Ezk_cluster.restart_server cluster 2;
        Proc.sleep sim (Sim_time.sec 3);
        let mgr = Ezk.manager (Ezk_cluster.ezk cluster 2) in
        Alcotest.(check int) "manager rebuilt from snapshot" 1
          (Edc_core.Manager.extension_count mgr);
        (* the recovered replica can serve extension reads end to end *)
        let c2 = Ezk_cluster.connected_client ~replica:2 cluster () in
        ignore (zok "ack" (Ezk_client.acknowledge c2 "ctr-increment"));
        match vok "increment via recovered replica" (Ezk_client.ext_read c2 "/ctr-increment") with
        | Value.Int 1 -> ()
        | v -> Alcotest.failf "unexpected %a" Value.pp v
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  (match !failure with Some e -> raise e | None -> ())

(* ------------------------------------------------------------------ *)
(* Differential: the same extension workload on both systems           *)
(* ------------------------------------------------------------------ *)

let test_differential_counter () =
  (* the same program, registered through two very different services,
     must produce the same sequence of values (the portability claim of
     §6.1: recipes are expressed against the abstract API) *)
  let run_ezk () =
    let acc = ref [] in
    in_ezk (fun cluster ->
        let c = Ezk_cluster.connected_client cluster () in
        ignore (zok "init" (Zk.Client.create_node c "/ctr" "0"));
        ignore (zok "register" (Ezk_client.register c counter_program));
        for _ = 1 to 12 do
          match vok "inc" (Ezk_client.ext_read c "/ctr-increment") with
          | Value.Int n -> acc := n :: !acc
          | _ -> Alcotest.fail "unexpected value"
        done);
    List.rev !acc
  in
  let run_eds () =
    let acc = ref [] in
    in_eds (fun cluster ->
        let c = Eds_cluster.client cluster () in
        vok "init" (obj_out c ~oid:"/ctr" ~data:"0");
        vok "register" (Eds_client.register c counter_program);
        for _ = 1 to 12 do
          match vok "inc" (Eds_client.ext_read c "/ctr-increment") with
          | Value.Int n -> acc := n :: !acc
          | _ -> Alcotest.fail "unexpected value"
        done);
    List.rev !acc
  in
  Alcotest.(check (list int)) "identical results on both systems"
    (run_ezk ()) (run_eds ())

let () =
  Alcotest.run "edc_ezk_eds"
    [
      ( "ezk",
        [
          Alcotest.test_case "counter extension" `Quick test_ezk_counter_extension;
          Alcotest.test_case "ack required" `Quick test_ezk_extension_needs_ack;
          Alcotest.test_case "garbage registration rejected" `Quick
            test_ezk_registration_rejects_garbage;
          Alcotest.test_case "multi-txn atomicity" `Quick test_ezk_multi_txn_atomicity;
          Alcotest.test_case "block extension" `Quick test_ezk_block_extension;
          Alcotest.test_case "event extension" `Quick test_ezk_event_extension;
          Alcotest.test_case "watch suppression" `Quick test_ezk_watch_suppression;
          Alcotest.test_case "custom notification (§5.1.2)" `Quick
            test_ezk_custom_notification;
          Alcotest.test_case "deregistration" `Quick test_ezk_deregistration;
          Alcotest.test_case "owner-only deregistration" `Quick
            test_ezk_only_owner_deregisters;
          Alcotest.test_case "survives leader failover" `Quick
            test_ezk_extension_survives_leader_failover;
          Alcotest.test_case "restart reloads (§3.8)" `Quick
            test_ezk_restart_reloads_extensions;
          Alcotest.test_case "snapshot recovery reloads" `Quick
            test_ezk_extensions_survive_snapshot_recovery;
          Alcotest.test_case "/em objects immutable" `Quick
            test_ezk_em_objects_immutable;
          Alcotest.test_case "last registration wins (§3.3)" `Quick
            test_ezk_last_registration_wins_end_to_end;
        ] );
      ( "eds",
        [
          Alcotest.test_case "counter extension" `Quick test_eds_counter_extension;
          Alcotest.test_case "nondeterminism rejected" `Quick
            test_eds_rejects_nondeterminism;
          Alcotest.test_case "abort rolls back" `Quick test_eds_abort_rolls_back;
          Alcotest.test_case "block extension" `Quick test_eds_block_extension;
          Alcotest.test_case "deletion event on expiry" `Quick
            test_eds_deletion_event_on_expiry;
          Alcotest.test_case "reload (§3.8)" `Quick test_eds_reload;
          Alcotest.test_case "/em region protected" `Quick test_eds_em_region_protected;
          Alcotest.test_case "unblock event re-blocks (§5.2.2)" `Quick
            test_eds_unblock_event_can_reblock;
          Alcotest.test_case "byzantine masked on extension results" `Quick
            test_eds_byzantine_replica_cannot_corrupt_extension_results;
          Alcotest.test_case "deregistration" `Quick test_eds_deregistration_end_to_end;
          Alcotest.test_case "failing event extension isolated" `Quick
            test_eds_failing_event_extension_is_isolated;
        ] );
      ( "differential",
        [ Alcotest.test_case "counter identical on EZK and EDS" `Quick
            test_differential_counter ] );
    ]
