(* Correctness tests for the coordination recipes (§6.1) on all four
   systems: shared counter, distributed queue, distributed barrier, leader
   election, and the lock.  Traditional variants run on ZooKeeper and
   DepSpace; extension variants on EZK and EDS. *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Systems = Edc_harness.Systems
module Zk = Edc_zookeeper

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let run_in ?(horizon = Sim_time.sec 600) ?(seed = 17) kind f =
  let sim = Sim.create ~seed () in
  let sys = Systems.make kind sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f sys with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  match !failure with Some e -> raise e | None -> ()

let new_api sys = fst (sys.Systems.new_api ())

let for_all_systems name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s on %s" name (Systems.kind_name kind))
        `Quick
        (fun () -> run_in kind f))
    Systems.all

(* ------------------------------------------------------------------ *)
(* Shared counter                                                      *)
(* ------------------------------------------------------------------ *)

let counter_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let admin = new_api sys in
  ok "setup" (Counter.setup admin);
  if extensible then ok "register" (Counter.register admin);
  let values = ref [] in
  let worker () =
    let api = new_api sys in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge Counter.extension_name);
    for _ = 1 to 5 do
      let r =
        if extensible then ok "inc" (Counter.increment_ext api)
        else ok "inc" (Counter.increment_traditional api)
      in
      values := r.Counter.value :: !values
    done
  in
  Proc.join (List.init 3 (fun _ -> Proc.async sim worker));
  let sorted = List.sort compare !values in
  Alcotest.(check (list int)) "15 dense, unique increments"
    (List.init 15 (fun i -> i + 1))
    sorted;
  match ok "final read" (admin.Api.read ~oid:Counter.counter_oid) with
  | Some obj -> Alcotest.(check string) "stored value" "15" obj.Api.data
  | None -> Alcotest.fail "counter vanished"

(* ------------------------------------------------------------------ *)
(* Distributed queue                                                   *)
(* ------------------------------------------------------------------ *)

let queue_fifo_scenario sys =
  let extensible = Systems.is_extensible sys.Systems.kind in
  let api = new_api sys in
  ok "setup" (Queue.setup api);
  if extensible then ok "register" (Queue.register api);
  for i = 1 to 10 do
    ok "add" (Queue.add api ~eid:(Queue.make_eid api i) ~data:(string_of_int i))
  done;
  let removed = ref [] in
  for _ = 1 to 10 do
    let r =
      if extensible then ok "remove" (Queue.remove_ext api)
      else ok "remove" (Queue.remove_traditional api)
    in
    match r.Queue.data with
    | Some d -> removed := d :: !removed
    | None -> Alcotest.fail "queue empty too early"
  done;
  Alcotest.(check (list string)) "FIFO order"
    (List.init 10 (fun i -> string_of_int (i + 1)))
    (List.rev !removed);
  let r =
    if extensible then ok "empty remove" (Queue.remove_ext api)
    else ok "empty remove" (Queue.remove_traditional api)
  in
  Alcotest.(check bool) "drained" true (r.Queue.data = None)

let queue_concurrent_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let admin = new_api sys in
  ok "setup" (Queue.setup admin);
  if extensible then ok "register" (Queue.register admin);
  let produced = ref [] and consumed = ref [] in
  let producer p () =
    let api = new_api sys in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
    for i = 1 to 8 do
      let data = Printf.sprintf "p%d-%d" p i in
      ok "add" (Queue.add api ~eid:(Queue.make_eid api i) ~data);
      produced := data :: !produced
    done
  in
  let consumer () =
    let api = new_api sys in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
    let got = ref 0 in
    while !got < 8 do
      let r =
        if extensible then ok "remove" (Queue.remove_ext api)
        else ok "remove" (Queue.remove_traditional api)
      in
      match r.Queue.data with
      | Some d ->
          consumed := d :: !consumed;
          incr got
      | None -> Proc.sleep sim (Sim_time.ms 20)
    done
  in
  Proc.join
    (List.init 2 (fun p -> Proc.async sim (producer (p + 1)))
    @ List.init 2 (fun _ -> Proc.async sim consumer));
  Alcotest.(check (list string)) "no loss, no duplication"
    (List.sort compare !produced)
    (List.sort compare !consumed)

(* ------------------------------------------------------------------ *)
(* Distributed barrier                                                 *)
(* ------------------------------------------------------------------ *)

let barrier_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let n = 4 in
  let admin = new_api sys in
  if extensible then ok "register" (Barrier.register admin);
  (* two consecutive rounds to check reusability of the machinery *)
  for round = 1 to 2 do
    let base = Printf.sprintf "/bar%04d" round in
    ok "setup" (Barrier.setup admin ~base ~threshold:n);
    let last_arrival = ref Sim_time.zero in
    let releases = ref [] in
    let participant i () =
      let api = new_api sys in
      if extensible then
        ok "ack" ((Api.ext_exn api).Api.acknowledge Barrier.extension_name);
      (* stagger arrivals *)
      Proc.sleep sim (Sim_time.ms (100 * i));
      if Sim_time.(!last_arrival < Sim.now sim) then last_arrival := Sim.now sim;
      (if extensible then ok "enter" (Barrier.enter_ext api ~base)
       else ok "enter" (Barrier.enter_traditional api ~base ~threshold:n));
      releases := Sim.now sim :: !releases
    in
    Proc.join (List.init n (fun i -> Proc.async sim (participant i)));
    Alcotest.(check int)
      (Printf.sprintf "round %d: all released" round)
      n (List.length !releases);
    List.iter
      (fun t ->
        Alcotest.(check bool) "nobody released before the last arrival" true
          Sim_time.(!last_arrival <= t))
      !releases
  done

(* ------------------------------------------------------------------ *)
(* Leader election                                                     *)
(* ------------------------------------------------------------------ *)

let election_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let roots = Election.election_roots in
  let admin = new_api sys in
  ok "setup" (Election.setup admin roots);
  if extensible then ok "register" (Election.register admin roots);
  let in_power = ref 0 in
  let max_in_power = ref 0 in
  let leaderships = ref 0 in
  let candidate () =
    let api = new_api sys in
    let handle = Election.new_handle () in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge roots.Election.name);
    for _ = 1 to 3 do
      (if extensible then ok "become" (Election.become_leader_ext api roots)
       else ok "become" (Election.become_leader_traditional api roots handle));
      incr in_power;
      incr leaderships;
      if !in_power > !max_in_power then max_in_power := !in_power;
      (* hold power briefly *)
      Proc.sleep sim (Sim_time.ms 20);
      decr in_power;
      if extensible then ok "abdicate" (Election.abdicate_ext api roots)
      else ok "abdicate" (Election.abdicate_traditional api roots handle)
    done
  in
  Proc.join (List.init 3 (fun _ -> Proc.async sim candidate));
  Alcotest.(check int) "every candidacy succeeded" 9 !leaderships;
  Alcotest.(check int) "never two leaders at once" 1 !max_in_power

(* ------------------------------------------------------------------ *)
(* Lock                                                                *)
(* ------------------------------------------------------------------ *)

let lock_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let roots = Lock.lock_roots () in
  let admin = new_api sys in
  ok "setup" (Lock.setup admin roots);
  if extensible then ok "register" (Lock.register admin roots);
  let holders = ref 0 and violations = ref 0 and acquisitions = ref 0 in
  let contender () =
    let api = new_api sys in
    let handle = Election.new_handle () in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge roots.Election.name);
    for _ = 1 to 3 do
      (if extensible then ok "acquire" (Lock.acquire_ext api roots)
       else ok "acquire" (Lock.acquire_traditional api roots handle));
      incr holders;
      if !holders > 1 then incr violations;
      incr acquisitions;
      Proc.sleep sim (Sim_time.ms 15);
      decr holders;
      if extensible then ok "release" (Lock.release_ext api roots)
      else ok "release" (Lock.release_traditional api roots handle)
    done
  in
  Proc.join (List.init 4 (fun _ -> Proc.async sim contender));
  Alcotest.(check int) "mutual exclusion" 0 !violations;
  Alcotest.(check int) "all acquisitions served" 12 !acquisitions

(* ------------------------------------------------------------------ *)
(* Counting semaphore (capacity 2)                                     *)
(* ------------------------------------------------------------------ *)

let semaphore_scenario sys =
  let sim = sys.Systems.sim in
  let extensible = Systems.is_extensible sys.Systems.kind in
  let roots = Semaphore.semaphore_roots () in
  let capacity = 2 in
  let admin = new_api sys in
  ok "setup" (Semaphore.setup admin roots ~capacity);
  if extensible then ok "register" (Semaphore.register admin roots);
  let holders = ref 0 and peak = ref 0 and acquisitions = ref 0 in
  let worker () =
    let api = new_api sys in
    let handle = Semaphore.new_handle () in
    if extensible then
      ok "ack" ((Api.ext_exn api).Api.acknowledge roots.Semaphore.name);
    for _ = 1 to 3 do
      (if extensible then ok "acquire" (Semaphore.acquire_ext api roots)
       else ok "acquire" (Semaphore.acquire_traditional api roots handle ~capacity));
      incr holders;
      incr acquisitions;
      if !holders > !peak then peak := !holders;
      Proc.sleep sim (Sim_time.ms 25);
      decr holders;
      if extensible then ok "release" (Semaphore.release_ext api roots)
      else ok "release" (Semaphore.release_traditional api roots handle)
    done
  in
  Proc.join (List.init 5 (fun _ -> Proc.async sim worker));
  Alcotest.(check int) "all acquisitions served" 15 !acquisitions;
  Alcotest.(check bool) "never more than 2 holders" true (!peak <= capacity);
  Alcotest.(check bool) "concurrency actually happened" true (!peak = capacity)

(* crash of a lock holder releases the lock (liveness-bound member
   objects): EZK variant, where the holder's session expires *)
let test_lock_crash_release () =
  let sim = Sim.create ~seed:23 () in
  let cluster = Edc_ezk.Ezk_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let roots = Lock.lock_roots () in
        (* the doomed holder never pings: its session will expire *)
        let lazy_config =
          { Zk.Client.default_config with ping_interval = Sim_time.sec 3600 }
        in
        let doomed_client =
          Edc_ezk.Ezk_cluster.connected_client ~config:lazy_config cluster ()
        in
        let doomed = Coord_zk.of_client ~extensible:true doomed_client in
        let patient_client = Edc_ezk.Ezk_cluster.connected_client cluster () in
        let patient = Coord_zk.of_client ~extensible:true patient_client in
        ok "setup" (Lock.setup doomed roots);
        ok "register" (Lock.register doomed roots);
        ok "ack" ((Api.ext_exn patient).Api.acknowledge roots.Election.name);
        ok "doomed acquires" (Lock.acquire_ext doomed roots);
        let got_lock =
          Proc.async sim (fun () -> ok "patient acquires" (Lock.acquire_ext patient roots))
        in
        Proc.sleep sim (Sim_time.sec 2);
        Alcotest.(check bool) "lock still held" false (Proc.is_fulfilled got_lock);
        (* the doomed holder stops responding; session expiry (10s) breaks
           the lock *)
        Proc.await got_lock;
        Alcotest.(check bool) "lock recovered after holder crash" true true
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 120) sim;
  match !failure with Some e -> raise e | None -> ()

let () =
  Alcotest.run "edc_recipes"
    [
      ("counter", for_all_systems "counter" counter_scenario);
      ("queue_fifo", for_all_systems "queue fifo" queue_fifo_scenario);
      ("queue_concurrent", for_all_systems "queue concurrent" queue_concurrent_scenario);
      ("barrier", for_all_systems "barrier" barrier_scenario);
      ("election", for_all_systems "election" election_scenario);
      ("lock", for_all_systems "lock" lock_scenario);
      ("semaphore", for_all_systems "semaphore" semaphore_scenario);
      ( "fault",
        [ Alcotest.test_case "crashed lock holder releases" `Quick test_lock_crash_release ] );
    ]
