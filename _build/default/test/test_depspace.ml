(* Tests for the DepSpace substrate: tuple matching, the space state
   machine, access/policy layers, and BFT integration via the cluster. *)

open Edc_simnet
open Edc_depspace
module P = Ds_protocol

let tuple = Alcotest.testable Tuple.pp Tuple.equal

(* ------------------------------------------------------------------ *)
(* Tuple matching                                                      *)
(* ------------------------------------------------------------------ *)

let test_tuple_matching () =
  let t = Tuple.[ Str "ctr"; Int 5 ] in
  Alcotest.(check bool) "exact" true (Tuple.matches (Tuple.exact t) t);
  Alcotest.(check bool) "any" true (Tuple.matches Tuple.[ Any; Any ] t);
  Alcotest.(check bool) "mixed" true
    (Tuple.matches Tuple.[ Exact (Str "ctr"); Any ] t);
  Alcotest.(check bool) "wrong value" false
    (Tuple.matches Tuple.[ Exact (Str "ctr"); Exact (Int 6) ] t);
  Alcotest.(check bool) "arity mismatch" false (Tuple.matches Tuple.[ Any ] t);
  Alcotest.(check bool) "prefix hit" true
    (Tuple.matches Tuple.[ Prefix "ct"; Any ] t);
  Alcotest.(check bool) "prefix miss" false
    (Tuple.matches Tuple.[ Prefix "queue/"; Any ] t);
  Alcotest.(check bool) "prefix on int" false
    (Tuple.matches Tuple.[ Any; Prefix "5" ] t)

let field_arb =
  let mk_int i = Edc_depspace.Tuple.Int i in
  let mk_str s = Edc_depspace.Tuple.Str s in
  QCheck.(oneof [ map mk_int int; map mk_str string ])

let prop_exact_template_matches =
  QCheck.Test.make ~name:"exact template always matches its tuple" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 5) field_arb)
    (fun t -> Tuple.matches (Tuple.exact t) t)

(* ------------------------------------------------------------------ *)
(* Space                                                               *)
(* ------------------------------------------------------------------ *)

let test_space_oldest_first () =
  let s = Space.create () in
  ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "q"; Int 1 ] : int);
  ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "q"; Int 2 ] : int);
  (match Space.find_tuple s Tuple.[ Exact (Str "q"); Any ] with
  | Some t -> Alcotest.check tuple "oldest match" Tuple.[ Str "q"; Int 1 ] t
  | None -> Alcotest.fail "no match");
  (match Space.take s Tuple.[ Exact (Str "q"); Any ] with
  | Some t -> Alcotest.check tuple "take oldest" Tuple.[ Str "q"; Int 1 ] t
  | None -> Alcotest.fail "no take");
  match Space.take s Tuple.[ Exact (Str "q"); Any ] with
  | Some t -> Alcotest.check tuple "then next" Tuple.[ Str "q"; Int 2 ] t
  | None -> Alcotest.fail "no second take"

let test_space_read_all_order () =
  let s = Space.create () in
  List.iter
    (fun i -> ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "x"; Int i ] : int))
    [ 3; 1; 2 ];
  let got = Space.read_all s Tuple.[ Exact (Str "x"); Any ] in
  Alcotest.(check (list int)) "insertion order"
    [ 3; 1; 2 ]
    (List.map (function Tuple.[ Str _; Int i ] -> i | _ -> -1) got)

let test_space_expiry () =
  let s = Space.create () in
  ignore (Space.insert s ~owner:1 ~expiry:(Some (Sim_time.ms 100)) Tuple.[ Str "lease" ] : int);
  ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "forever" ] : int);
  Alcotest.(check int) "nothing expired early" 0
    (List.length (Space.expire s ~now:(Sim_time.ms 50)));
  let dead = Space.expire s ~now:(Sim_time.ms 100) in
  Alcotest.(check int) "one expired" 1 (List.length dead);
  Alcotest.(check int) "one left" 1 (Space.tuple_count s)

let test_space_renew () =
  let s = Space.create () in
  ignore (Space.insert s ~owner:7 ~expiry:(Some (Sim_time.ms 100)) Tuple.[ Str "l" ] : int);
  let n =
    Space.renew s ~owner:7 ~template:Tuple.[ Exact (Str "l") ]
      ~expiry:(Sim_time.ms 500)
  in
  Alcotest.(check int) "renewed" 1 n;
  Alcotest.(check int) "survives old deadline" 0
    (List.length (Space.expire s ~now:(Sim_time.ms 200)));
  (* only the owner may renew *)
  let n2 =
    Space.renew s ~owner:8 ~template:Tuple.[ Exact (Str "l") ]
      ~expiry:(Sim_time.sec 10)
  in
  Alcotest.(check int) "foreign renew ignored" 0 n2

let test_space_unblockable_semantics () =
  let s = Space.create () in
  ignore (Space.park s ~client:1 ~rseq:1 ~template:Tuple.[ Exact (Str "t") ] ~take:false : int);
  ignore (Space.park s ~client:2 ~rseq:1 ~template:Tuple.[ Exact (Str "t") ] ~take:true : int);
  ignore (Space.park s ~client:3 ~rseq:1 ~template:Tuple.[ Exact (Str "t") ] ~take:false : int);
  let woken, consumed = Space.unblockable s Tuple.[ Str "t" ] in
  (* the rd before the in wakes; the in consumes; the rd after stays *)
  Alcotest.(check bool) "consumed by in" true consumed;
  Alcotest.(check (list int)) "waker order stops at the take"
    [ 1; 2 ]
    (List.map (fun (p : Space.parked) -> p.p_client) woken);
  Alcotest.(check int) "third stays parked" 1 (Space.parked_count s)

let test_space_drop_parked () =
  let s = Space.create () in
  ignore (Space.park s ~client:1 ~rseq:1 ~template:Tuple.[ Any ] ~take:false : int);
  ignore (Space.park s ~client:2 ~rseq:1 ~template:Tuple.[ Any ] ~take:false : int);
  Space.drop_parked s ~client:1;
  Alcotest.(check int) "one left" 1 (Space.parked_count s)

(* ------------------------------------------------------------------ *)
(* Access control                                                      *)
(* ------------------------------------------------------------------ *)

let test_access_rules () =
  let a = Access.create () in
  Access.add_rule a
    {
      Access.kinds = [ Access.Take ];
      name_prefix = Some "protected/";
      clients = None;
      allow = false;
    };
  Alcotest.(check bool) "take denied" false
    (Access.check a ~client:1 ~kind:Access.Take ~name:(Some "protected/x"));
  Alcotest.(check bool) "read allowed" true
    (Access.check a ~client:1 ~kind:Access.Read ~name:(Some "protected/x"));
  Alcotest.(check bool) "other name allowed" true
    (Access.check a ~client:1 ~kind:Access.Take ~name:(Some "open/x"))

let test_access_client_scoping () =
  let a = Access.create ~default_allow:false () in
  Access.add_rule a
    { Access.kinds = [ Access.Read; Access.Write; Access.Take ];
      name_prefix = None; clients = Some [ 42 ]; allow = true };
  Alcotest.(check bool) "whitelisted" true
    (Access.check a ~client:42 ~kind:Access.Write ~name:None);
  Alcotest.(check bool) "stranger denied" false
    (Access.check a ~client:7 ~kind:Access.Write ~name:None)

(* ------------------------------------------------------------------ *)
(* Policy layer                                                        *)
(* ------------------------------------------------------------------ *)

let test_policy_monotonic () =
  let s = Space.create () in
  ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "fence"; Int 5 ] : int);
  let p = Policy.create () in
  let rule = Policy.monotonic_counter ~prefix:"fence" in
  Policy.add_rule p rule.Policy.name rule.Policy.judge;
  let view v =
    {
      Policy.v_client = 1;
      v_kind = Access.Write;
      v_tuple = Some Tuple.[ Str "fence"; Int v ];
      v_template = None;
    }
  in
  Alcotest.(check bool) "larger allowed" true (Policy.check p s (view 6) = Ok ());
  Alcotest.(check bool) "smaller denied" true
    (match Policy.check p s (view 4) with Error _ -> true | Ok () -> false)

let test_policy_space_cap () =
  let s = Space.create () in
  ignore (Space.insert s ~owner:1 ~expiry:None Tuple.[ Str "a" ] : int);
  let p = Policy.create () in
  let rule = Policy.max_space_size ~limit:1 in
  Policy.add_rule p rule.Policy.name rule.Policy.judge;
  let view =
    { Policy.v_client = 1; v_kind = Access.Write;
      v_tuple = Some Tuple.[ Str "b" ]; v_template = None }
  in
  Alcotest.(check bool) "full space denies writes" true
    (match Policy.check p s view with Error _ -> true | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Cluster integration                                                 *)
(* ------------------------------------------------------------------ *)

let in_cluster ?(horizon = Sim_time.sec 60) ?(seed = 3) f =
  let sim = Sim.create ~seed () in
  let cluster = Ds_cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f cluster with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  match !failure with Some e -> raise e | None -> ()

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let test_ds_out_rdp_inp () =
  in_cluster (fun cluster ->
      let c = Ds_cluster.client cluster () in
      ok "out" (Ds_client.out c Tuple.[ Str "obj"; Str "hello" ]);
      (match ok "rdp" (Ds_client.rdp c Tuple.[ Exact (Str "obj"); Any ]) with
      | Some t -> Alcotest.check tuple "read back" Tuple.[ Str "obj"; Str "hello" ] t
      | None -> Alcotest.fail "tuple missing");
      (match ok "inp" (Ds_client.inp c Tuple.[ Exact (Str "obj"); Any ]) with
      | Some _ -> ()
      | None -> Alcotest.fail "take failed");
      match ok "rdp2" (Ds_client.rdp c Tuple.[ Exact (Str "obj"); Any ]) with
      | None -> ()
      | Some _ -> Alcotest.fail "tuple should be gone")

let test_ds_blocking_rd () =
  in_cluster (fun cluster ->
      let sim = Ds_cluster.sim cluster in
      let waiter = Ds_cluster.client cluster () in
      let producer = Ds_cluster.client cluster () in
      let got =
        Proc.async sim (fun () ->
            ok "rd" (Ds_client.rd waiter Tuple.[ Exact (Str "ready") ]))
      in
      Proc.sleep sim (Sim_time.ms 300);
      Alcotest.(check bool) "still blocked" false (Proc.is_fulfilled got);
      ok "out" (Ds_client.out producer Tuple.[ Str "ready" ]);
      let t = Proc.await got in
      Alcotest.check tuple "unblocked with tuple" Tuple.[ Str "ready" ] t)

let test_ds_blocking_in_consumes_once () =
  in_cluster (fun cluster ->
      let sim = Ds_cluster.sim cluster in
      let a = Ds_cluster.client cluster () in
      let b = Ds_cluster.client cluster () in
      let producer = Ds_cluster.client cluster () in
      let ga = Proc.async sim (fun () -> ok "in a" (Ds_client.in_ a Tuple.[ Exact (Str "job"); Any ])) in
      let gb = Proc.async sim (fun () -> ok "in b" (Ds_client.in_ b Tuple.[ Exact (Str "job"); Any ])) in
      Proc.sleep sim (Sim_time.ms 200);
      ok "out1" (Ds_client.out producer Tuple.[ Str "job"; Int 1 ]);
      ok "out2" (Ds_client.out producer Tuple.[ Str "job"; Int 2 ]);
      let ta = Proc.await ga and tb = Proc.await gb in
      Alcotest.(check bool) "distinct jobs" true (not (Tuple.equal ta tb)))

let test_ds_replace_contention () =
  in_cluster (fun cluster ->
      let sim = Ds_cluster.sim cluster in
      let init = Ds_cluster.client cluster () in
      ok "init" (Ds_client.out init Tuple.[ Str "ctr"; Int 0 ]);
      let wins = ref 0 and losses = ref 0 in
      let contender () =
        let c = Ds_cluster.client cluster () in
        match
          ok "replace"
            (Ds_client.replace c
               Tuple.[ Exact (Str "ctr"); Exact (Int 0) ]
               Tuple.[ Str "ctr"; Int 1 ])
        with
        | true -> incr wins
        | false -> incr losses
      in
      Proc.join (List.init 4 (fun _ -> Proc.async sim contender));
      Alcotest.(check int) "one replace wins" 1 !wins;
      Alcotest.(check int) "three lose" 3 !losses)

let test_ds_rd_all_prefix () =
  in_cluster (fun cluster ->
      let c = Ds_cluster.client cluster () in
      ok "o1" (Ds_client.out c Tuple.[ Str "queue/a"; Int 1 ]);
      ok "o2" (Ds_client.out c Tuple.[ Str "queue/b"; Int 2 ]);
      ok "o3" (Ds_client.out c Tuple.[ Str "other"; Int 3 ]);
      let got = ok "rdAll" (Ds_client.rd_all c Tuple.[ Prefix "queue/"; Any ]) in
      Alcotest.(check int) "two sub-objects" 2 (List.length got))

let test_ds_lease_expiry () =
  in_cluster ~horizon:(Sim_time.sec 120) (fun cluster ->
      let sim = Ds_cluster.sim cluster in
      let owner = Ds_cluster.client cluster () in
      let observer = Ds_cluster.client cluster () in
      ok "monitor"
        (Ds_client.monitor owner Tuple.[ Str "alive/1" ] ~lease:(Sim_time.sec 5));
      Proc.sleep sim (Sim_time.sec 12);
      (* still alive: renewals keep it *)
      (match ok "rdp live" (Ds_client.rdp observer Tuple.[ Exact (Str "alive/1") ]) with
      | Some _ -> ()
      | None -> Alcotest.fail "lease should be renewed while client lives");
      Ds_client.close owner;
      Proc.sleep sim (Sim_time.sec 12);
      (* ordered traffic drives expiry *)
      ok "noop" (Ds_client.noop observer);
      (match ok "rdp dead" (Ds_client.rdp observer Tuple.[ Exact (Str "alive/1") ]) with
      | None -> ()
      | Some _ -> Alcotest.fail "lease should have expired after close"))

let test_ds_byzantine_replica_masked () =
  in_cluster (fun cluster ->
      Ds_server.set_byzantine (Ds_cluster.servers cluster).(3);
      let c = Ds_cluster.client cluster () in
      ok "out despite liar" (Ds_client.out c Tuple.[ Str "x" ]);
      match ok "rdp despite liar" (Ds_client.rdp c Tuple.[ Exact (Str "x") ]) with
      | Some _ -> ()
      | None -> Alcotest.fail "value lost")

let test_ds_crashed_replica_progress () =
  in_cluster (fun cluster ->
      Ds_cluster.crash_server cluster 2;
      let c = Ds_cluster.client cluster () in
      ok "out with 3/4" (Ds_client.out c Tuple.[ Str "y" ]);
      match ok "rdp with 3/4" (Ds_client.rdp c Tuple.[ Exact (Str "y") ]) with
      | Some _ -> ()
      | None -> Alcotest.fail "value lost")

let test_ds_deterministic () =
  let run () =
    let sim = Sim.create ~seed:21 () in
    let cluster = Ds_cluster.create sim in
    let log = ref [] in
    Proc.spawn sim (fun () ->
        let c = Ds_cluster.client cluster () in
        for i = 1 to 10 do
          (match Ds_client.out c Tuple.[ Str "k"; Int i ] with
          | Ok () -> log := i :: !log
          | Error _ -> ());
          match Ds_client.inp c Tuple.[ Exact (Str "k"); Any ] with
          | Ok (Some Tuple.[ Str _; Int v ]) -> log := -v :: !log
          | _ -> ()
        done);
    Sim.run ~until:(Sim_time.sec 30) sim;
    (!log, Sim.now sim, Net.total_bytes_sent (Ds_cluster.net cluster))
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

let test_ds_client_bytes_multicast () =
  in_cluster (fun cluster ->
      let c = Ds_cluster.client cluster () in
      let before = Net.bytes_sent_by (Ds_cluster.net cluster) (Ds_client.addr c) in
      ok "out" (Ds_client.out c Tuple.[ Str "m" ]);
      let after = Net.bytes_sent_by (Ds_cluster.net cluster) (Ds_client.addr c) in
      let per_replica = P.wire_size (P.Ds_request { rseq = 1; op = P.Out { tuple = Tuple.[ Str "m" ]; lease = None }; fast = false }) in
      Alcotest.(check int) "request sent to all four replicas"
        (4 * per_replica) (after - before))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "edc_depspace"
    [
      ( "tuple",
        [
          Alcotest.test_case "matching" `Quick test_tuple_matching;
          qc prop_exact_template_matches;
        ] );
      ( "space",
        [
          Alcotest.test_case "oldest first" `Quick test_space_oldest_first;
          Alcotest.test_case "read_all order" `Quick test_space_read_all_order;
          Alcotest.test_case "expiry" `Quick test_space_expiry;
          Alcotest.test_case "renew" `Quick test_space_renew;
          Alcotest.test_case "unblock semantics" `Quick test_space_unblockable_semantics;
          Alcotest.test_case "drop parked" `Quick test_space_drop_parked;
        ] );
      ( "access",
        [
          Alcotest.test_case "rules" `Quick test_access_rules;
          Alcotest.test_case "client scoping" `Quick test_access_client_scoping;
        ] );
      ( "policy",
        [
          Alcotest.test_case "monotonic counter" `Quick test_policy_monotonic;
          Alcotest.test_case "space cap" `Quick test_policy_space_cap;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "out/rdp/inp" `Quick test_ds_out_rdp_inp;
          Alcotest.test_case "blocking rd" `Quick test_ds_blocking_rd;
          Alcotest.test_case "blocking in consumes once" `Quick
            test_ds_blocking_in_consumes_once;
          Alcotest.test_case "replace contention" `Quick test_ds_replace_contention;
          Alcotest.test_case "rdAll prefix" `Quick test_ds_rd_all_prefix;
          Alcotest.test_case "lease expiry" `Quick test_ds_lease_expiry;
          Alcotest.test_case "byzantine masked" `Quick test_ds_byzantine_replica_masked;
          Alcotest.test_case "crash progress" `Quick test_ds_crashed_replica_progress;
          Alcotest.test_case "deterministic" `Quick test_ds_deterministic;
          Alcotest.test_case "multicast bytes" `Quick test_ds_client_bytes_multicast;
        ] );
    ]
