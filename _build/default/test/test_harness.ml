(* Sanity tests for the measurement harness itself: the workload driver's
   accounting must be self-consistent, since every figure depends on it. *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Systems = Edc_harness.Systems
module Workload = Edc_harness.Workload

let counter_spec ~extensible ~n_clients =
  {
    Workload.n_clients;
    warmup = Sim_time.ms 300;
    measure = Sim_time.sec 1;
    ops_per_iteration = 1;
    setup =
      (fun api ->
        (match Counter.setup api with Ok () -> () | Error e -> failwith e);
        if extensible then
          match Counter.register api with Ok () -> () | Error e -> failwith e);
    prepare =
      (fun api ->
        if extensible then
          match (Api.ext_exn api).Api.acknowledge Counter.extension_name with
          | Ok () -> ()
          | Error e -> failwith e);
    op =
      (fun api ->
        let r =
          if extensible then Counter.increment_ext api
          else Counter.increment_traditional api
        in
        Result.map (fun (r : Counter.result) -> r.Counter.attempts) r);
  }

let run_counter kind n_clients =
  let sim = Sim.create ~seed:77 () in
  let sys = Systems.make kind sim in
  Workload.run sys (counter_spec ~extensible:(Systems.is_extensible kind) ~n_clients)

let test_workload_accounting kind () =
  let r = run_counter kind 5 in
  Alcotest.(check bool) "made progress" true (r.Workload.ops > 50);
  Alcotest.(check int) "no errors" 0 r.Workload.errors;
  Alcotest.(check (float 0.01)) "throughput = ops / window"
    (float_of_int r.Workload.ops /. Sim_time.to_float_s r.Workload.duration)
    r.Workload.throughput;
  Alcotest.(check bool) "latency positive" true (r.Workload.mean_latency_ms > 0.0);
  Alcotest.(check bool) "p99 >= mean" true
    (r.Workload.p99_latency_ms >= r.Workload.mean_latency_ms *. 0.99);
  Alcotest.(check bool) "bytes were counted" true (r.Workload.client_bytes > 0);
  Alcotest.(check bool) "attempts >= 1" true (r.Workload.attempts_per_op >= 1.0)

let test_littles_law () =
  (* closed loop: concurrency = throughput × latency ≈ n_clients (within a
     factor accounting for window-edge exclusion) *)
  let n = 10 in
  let r = run_counter Systems.Ezk n in
  let concurrency =
    r.Workload.throughput *. (r.Workload.mean_latency_ms /. 1000.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "Little's law holds (concurrency %.2f for %d clients)"
       concurrency n)
    true
    (concurrency > float_of_int n *. 0.5 && concurrency < float_of_int n *. 1.5)

let test_more_clients_more_throughput_ext () =
  (* extension counters scale until CPU saturation *)
  let r1 = run_counter Systems.Ezk 1 in
  let r10 = run_counter Systems.Ezk 10 in
  Alcotest.(check bool) "10 clients beat 1" true
    (r10.Workload.throughput > r1.Workload.throughput *. 5.0)

let test_traditional_contention_amplifies_attempts () =
  let r1 = run_counter Systems.Zookeeper 1 in
  let r10 = run_counter Systems.Zookeeper 10 in
  Alcotest.(check (float 0.01)) "solo never retries" 1.0 r1.Workload.attempts_per_op;
  Alcotest.(check bool) "contention forces retries" true
    (r10.Workload.attempts_per_op > 2.0)

let () =
  Alcotest.run "edc_harness"
    [
      ( "workload",
        List.map
          (fun kind ->
            Alcotest.test_case
              ("accounting on " ^ Systems.kind_name kind)
              `Quick
              (test_workload_accounting kind))
          Systems.all );
      ( "physics",
        [
          Alcotest.test_case "little's law" `Quick test_littles_law;
          Alcotest.test_case "extension scaling" `Quick
            test_more_clients_more_throughput_ext;
          Alcotest.test_case "contention amplification" `Quick
            test_traditional_contention_amplifies_attempts;
        ] );
    ]
