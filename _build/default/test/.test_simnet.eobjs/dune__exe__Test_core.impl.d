test/test_core.ml: Alcotest Ast Builtins Codec Edc_core Hashtbl List Manager Option Printf Program QCheck QCheck_alcotest Sandbox Sexp String Subscription Value Verify
