test/test_table2.ml: Alcotest Coord_api Coord_ds Coord_zk Counter Edc_depspace Edc_ezk Edc_recipes Edc_simnet Edc_zookeeper List Option Printf Proc Queue Sim Sim_time
