test/test_depspace.mli:
