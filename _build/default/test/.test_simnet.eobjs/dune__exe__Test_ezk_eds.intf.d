test/test_ezk_eds.mli:
