test/test_replication.ml: Alcotest Array Edc_replication Edc_simnet Fun List Marshal Net Pbft Printf QCheck QCheck_alcotest Sim Sim_time String Zab
