test/test_table2.mli:
