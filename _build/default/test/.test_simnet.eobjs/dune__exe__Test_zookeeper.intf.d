test/test_zookeeper.mli:
