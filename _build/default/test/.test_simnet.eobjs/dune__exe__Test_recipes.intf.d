test/test_recipes.mli:
