test/test_harness.ml: Alcotest Coord_api Counter Edc_harness Edc_recipes Edc_simnet List Printf Result Sim Sim_time
