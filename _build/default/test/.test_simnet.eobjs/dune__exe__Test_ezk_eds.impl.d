test/test_ezk_eds.ml: Alcotest Array Ast Edc_core Edc_depspace Edc_eds Edc_ezk Edc_simnet Edc_zookeeper List Option Printf Proc Program Sim Sim_time Subscription Value
