test/test_recipes.ml: Alcotest Barrier Coord_api Coord_zk Counter Edc_ezk Edc_harness Edc_recipes Edc_simnet Edc_zookeeper Election List Lock Printf Proc Queue Semaphore Sim Sim_time
