test/test_chaos.ml: Alcotest Array Coord_api Coord_zk Counter Edc_ezk Edc_recipes Edc_simnet Edc_zookeeper Election List Printf Proc Queue Sim Sim_time
