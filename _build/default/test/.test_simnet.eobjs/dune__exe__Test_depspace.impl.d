test/test_depspace.ml: Access Alcotest Array Ds_client Ds_cluster Ds_protocol Ds_server Edc_depspace Edc_simnet Gen List Net Policy Proc QCheck QCheck_alcotest Sim Sim_time Space Tuple
