test/test_simnet.ml: Alcotest Cpu Edc_simnet Event_queue Fun Gen List Net Proc QCheck QCheck_alcotest Rng Sim Sim_time Stats Vec
