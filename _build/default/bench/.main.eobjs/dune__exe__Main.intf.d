bench/main.mli:
