bench/main.ml: Array Edc_core Edc_ezk Edc_harness Edc_recipes Edc_simnet Edc_zookeeper Experiment Hashtbl List Micro Net Option Printf Proc Report Sim Sim_time String Sys Systems Unix Workload
