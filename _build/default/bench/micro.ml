(* Bechamel micro-benchmarks of the extension machinery: these measure the
   real CPU cost of the components the paper argues are cheap —
   registration-time verification (§4.2: "no verification overhead during
   execution") and sandboxed execution. *)

open Bechamel
open Toolkit
open Edc_core

(* in-memory proxy over a plain hashtable (same shape as the test suite's) *)
let mock_proxy () =
  let store : (string, string * int * int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let record oid =
    match Hashtbl.find_opt store oid with
    | Some (data, version, ctime) -> Ok (Value.obj ~id:oid ~data ~version ~ctime)
    | None -> Error ("no object " ^ oid)
  in
  let proxy =
    {
      Sandbox.p_read = record;
      p_exists = (fun oid -> Hashtbl.mem store oid);
      p_sub_objects =
        (fun oid ->
          let prefix = oid ^ "/" in
          Ok
            (Hashtbl.fold
               (fun id (data, version, ctime) acc ->
                 if
                   String.length id > String.length prefix
                   && String.sub id 0 (String.length prefix) = prefix
                 then Value.obj ~id ~data ~version ~ctime :: acc
                 else acc)
               store []));
      p_create =
        (fun ~sequential:_ ~oid ~data ->
          incr next;
          Hashtbl.replace store oid (data, 0, !next);
          Ok oid);
      p_update =
        (fun ~oid ~data ->
          match Hashtbl.find_opt store oid with
          | Some (_, v, c) ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok (v + 1)
          | None -> Error "no object");
      p_cas =
        (fun ~oid ~expected ~data ->
          match Hashtbl.find_opt store oid with
          | Some (cur, v, c) when cur = expected ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok true
          | Some _ -> Ok false
          | None -> Error "no object");
      p_delete = (fun oid -> Ok (Hashtbl.mem store oid && (Hashtbl.remove store oid; true)));
      p_block = (fun _ -> Ok ());
      p_monitor = (fun _ -> Ok ());
      p_notify = (fun ~client:_ ~oid:_ -> Ok ());
      p_clock = (fun () -> 0);
    }
  in
  (proxy, store)

let counter_code = Codec.serialize Edc_recipes.Counter.program
let queue_code = Codec.serialize Edc_recipes.Queue.program

let tests () =
  let proxy, store = mock_proxy () in
  Hashtbl.replace store "/ctr" ("0", 0, 0);
  for i = 1 to 20 do
    Hashtbl.replace store (Printf.sprintf "/queue/e%02d" i) ("x", 0, i)
  done;
  let counter_handler =
    Option.get Edc_recipes.Counter.program.Program.on_operation
  in
  let tree =
    let tr = Edc_zookeeper.Data_tree.create () in
    Edc_zookeeper.Data_tree.apply_create tr ~path:"/a" ~data:"hello"
      ~ephemeral_owner:None;
    tr
  in
  let tuple = Edc_depspace.Tuple.[ Str "/q/item"; Str "data"; Int 0; Int 7 ] in
  let template = Edc_depspace.Objects.sub_template "/q" in
  [
    Test.make ~name:"sandbox: counter handler"
      (Staged.stage (fun () ->
           ignore (Sandbox.run ~proxy ~params:[] counter_handler)));
    Test.make ~name:"verify: counter program"
      (Staged.stage (fun () ->
           ignore (Verify.verify ~mode:Verify.Passive counter_code)));
    Test.make ~name:"verify: queue program"
      (Staged.stage (fun () ->
           ignore (Verify.verify ~mode:Verify.Active queue_code)));
    Test.make ~name:"codec: decode counter"
      (Staged.stage (fun () -> ignore (Codec.deserialize counter_code)));
    Test.make ~name:"data_tree: get_data"
      (Staged.stage (fun () -> ignore (Edc_zookeeper.Data_tree.get_data tree "/a")));
    Test.make ~name:"tuple: template match"
      (Staged.stage (fun () -> ignore (Edc_depspace.Tuple.matches template tuple)));
    Test.make ~name:"subscription: match"
      (Staged.stage (fun () ->
           ignore
             (Subscription.oid_matches (Subscription.Under "/queue") "/queue/e17")));
  ]

let run_all () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one ols (List.hd instances) raw with
          | ols_result -> (
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Printf.printf "  %-28s %10.1f ns/call\n%!" name est
              | _ -> Printf.printf "  %-28s (no estimate)\n%!" name))
        results)
    (tests ())
