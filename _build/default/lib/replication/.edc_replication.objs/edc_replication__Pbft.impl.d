lib/replication/pbft.ml: Edc_simnet Fmt Hashtbl Int List Sim Sim_time Trace
