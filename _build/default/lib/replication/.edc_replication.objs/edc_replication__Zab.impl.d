lib/replication/zab.ml: Edc_simnet Fmt Hashtbl Int List Sim Sim_time Stdlib String Trace Vec
