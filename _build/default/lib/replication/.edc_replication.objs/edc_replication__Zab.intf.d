lib/replication/zab.mli: Edc_simnet Format Sim Sim_time
