lib/replication/pbft.mli: Edc_simnet Format Sim Sim_time
