lib/core/manager.mli: Program Sandbox Subscription Value Verify
