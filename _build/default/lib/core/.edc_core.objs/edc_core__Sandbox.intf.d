lib/core/sandbox.mli: Format Program Value
