lib/core/verify.mli: Format Program
