lib/core/ast.ml: List Stdlib
