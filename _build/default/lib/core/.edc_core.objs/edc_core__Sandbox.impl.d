lib/core/sandbox.ml: Ast Builtins Fmt Format Hashtbl Int List Printf Program String Value
