lib/core/builtins.ml: Format List Result Stdlib String Value
