lib/core/manager.ml: Codec Hashtbl Int List Program Result Sandbox String Subscription Verify
