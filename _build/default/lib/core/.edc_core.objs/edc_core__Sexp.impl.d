lib/core/sexp.ml: Buffer List Stdlib String
