lib/core/program.mli: Ast Subscription
