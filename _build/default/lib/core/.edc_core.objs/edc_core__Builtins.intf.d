lib/core/builtins.mli: Value
