lib/core/program.ml: Ast Stdlib Subscription
