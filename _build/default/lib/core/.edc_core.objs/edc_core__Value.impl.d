lib/core/value.ml: Fmt List Sexp String
