lib/core/verify.ml: Ast Builtins Codec Fmt List Printf Program String
