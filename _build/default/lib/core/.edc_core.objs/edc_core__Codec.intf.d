lib/core/codec.mli: Ast Program Sexp
