lib/core/subscription.ml: Fmt List String
