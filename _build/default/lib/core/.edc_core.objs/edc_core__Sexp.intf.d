lib/core/sexp.mli:
