lib/core/value.mli: Format Sexp
