lib/core/codec.ml: Ast List Program Result Sexp Subscription
