(** An extension: subscriptions plus handlers — the paper's Figure 1
    interface, as data.

    [on_operation] plays [handleOperation]: it runs *instead of* the
    matched request, and its return value becomes the client's reply; the
    host binds parameters [oid], [data], [client], and [kind].
    [on_event] plays [handleEvent], with parameters [oid], [kind], and
    [client]. *)

type handler = Ast.stmt list

type t = {
  name : string;
  op_subs : Subscription.operation_sub list;
  event_subs : Subscription.event_sub list;
  on_operation : handler option;
  on_event : handler option;
}

val make :
  string ->
  ?op_subs:Subscription.operation_sub list ->
  ?event_subs:Subscription.event_sub list ->
  ?on_operation:handler ->
  ?on_event:handler ->
  unit ->
  t

(** Aggregate metrics over both handlers (the verifier's bounds). *)

val nodes : t -> int
val depth : t -> int
val loop_nesting : t -> int
val builtin_calls : t -> string list
val svc_ops_used : t -> Ast.svc_op list
