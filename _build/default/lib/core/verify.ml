(** Registration-time verification (§4.1.1).

    Before an extension is compiled and instantiated, the extension manager
    checks it against a white list of constructs so that only extensions
    performing non-critical operations are registered.  The check runs once
    per registration (and once more on each replica that reloads the
    extension after recovery); execution pays nothing (§4.2).

    Because the language is loop-free by construction except for
    [For_each] over existing lists, termination is structural; the
    verifier's job is to bound size, nesting, and the builtin/service
    surface, and — in actively-replicated mode — to reject
    nondeterministic builtins (§4.1.1, determinism requirement). *)

type mode =
  | Active  (** all replicas execute the extension (EDS): deterministic only *)
  | Passive  (** only the primary executes (EZK): nondeterminism permitted *)

type limits = {
  max_serialized_bytes : int;
  max_nodes : int;
  max_depth : int;
  max_loop_nesting : int;
}

let default_limits =
  {
    max_serialized_bytes = 16 * 1024;
    max_nodes = 768;
    max_depth = 24;
    max_loop_nesting = 2;
  }

type violation =
  | Too_large of int
  | Too_many_nodes of int
  | Too_deep of int
  | Loops_too_nested of int
  | Unknown_builtin of string
  | Nondeterministic_builtin of string
  | Notify_outside_event_handler
  | Missing_handlers
  | Bad_name of string

let violation_to_string = function
  | Too_large n -> Printf.sprintf "serialized size %d exceeds limit" n
  | Too_many_nodes n -> Printf.sprintf "AST has %d nodes, over the limit" n
  | Too_deep n -> Printf.sprintf "nesting depth %d over the limit" n
  | Loops_too_nested n -> Printf.sprintf "for-each nesting %d over the limit" n
  | Unknown_builtin name -> Printf.sprintf "builtin %S is not white-listed" name
  | Nondeterministic_builtin name ->
      Printf.sprintf "builtin %S is nondeterministic; rejected under active replication" name
  | Notify_outside_event_handler -> "notify may only be used in event handlers"
  | Missing_handlers -> "extension defines no handler"
  | Bad_name name -> Printf.sprintf "invalid extension name %S" name

let pp_violation ppf v = Fmt.string ppf (violation_to_string v)

let name_ok name =
  String.length name > 0
  && String.length name <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '-' || c = '_')
       name

(** [check ~mode ~limits ~serialized_size program] returns all violations
    ([[]] means the extension is admissible). *)
let check ?(limits = default_limits) ~mode ~serialized_size (p : Program.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if not (name_ok p.Program.name) then add (Bad_name p.Program.name);
  if p.Program.on_operation = None && p.Program.on_event = None then
    add Missing_handlers;
  if serialized_size > limits.max_serialized_bytes then
    add (Too_large serialized_size);
  let nodes = Program.nodes p in
  if nodes > limits.max_nodes then add (Too_many_nodes nodes);
  let depth = Program.depth p in
  if depth > limits.max_depth then add (Too_deep depth);
  let nesting = Program.loop_nesting p in
  if nesting > limits.max_loop_nesting then add (Loops_too_nested nesting);
  List.iter
    (fun name ->
      match Builtins.find name with
      | None -> add (Unknown_builtin name)
      | Some b ->
          if mode = Active && not (b.Builtins.deterministic) then
            add (Nondeterministic_builtin name))
    (List.sort_uniq compare (Program.builtin_calls p));
  (* notify pushes messages to clients: restrict it to event handlers,
     where the suppressed original notification is being replaced. *)
  (match p.Program.on_operation with
  | Some body when List.mem Ast.Svc_notify (Ast.stmts_svcs [] body) ->
      add Notify_outside_event_handler
  | Some _ | None -> ());
  List.rev !violations

(** [verify ~mode serialized] — the full registration pipeline step: parse,
    then check.  This is what both EZK and EDS call with the raw bytes the
    client wrote to the extension manager's data object. *)
let verify ?limits ~mode serialized =
  match Codec.deserialize serialized with
  | Error e -> Error (`Parse e)
  | Ok program -> (
      match check ?limits ~mode ~serialized_size:(String.length serialized) program with
      | [] -> Ok program
      | vs -> Error (`Violations vs))
