(** An extension: subscriptions plus handlers (the paper's Figure 1
    interface, as data).

    [on_operation] plays the role of [handleOperation]: it runs instead of
    the matched request and its return value becomes the client's reply.
    Its parameters are bound by the host: [oid] (the object id of the
    request), [data] (payload, when the operation carries one), [client]
    (the invoking client's id), and [kind] (operation kind name).

    [on_event] plays the role of [handleEvent], with parameters [oid],
    [kind], and — for deletion events of monitored objects — [client]
    bound to the owner when known. *)

type handler = Ast.stmt list

type t = {
  name : string;
  op_subs : Subscription.operation_sub list;
  event_subs : Subscription.event_sub list;
  on_operation : handler option;
  on_event : handler option;
}

let make name ?(op_subs = []) ?(event_subs = []) ?on_operation ?on_event () =
  { name; op_subs; event_subs; on_operation; on_event }

(** Total AST nodes across both handlers (verifier size bound). *)
let nodes t =
  let h = function None -> 0 | Some body -> Ast.stmts_nodes body in
  h t.on_operation + h t.on_event

let depth t =
  let h = function None -> 0 | Some body -> Ast.stmts_depth body in
  Stdlib.max (h t.on_operation) (h t.on_event)

let loop_nesting t =
  let h = function None -> 0 | Some body -> Ast.loop_nesting body in
  Stdlib.max (h t.on_operation) (h t.on_event)

let builtin_calls t =
  let h = function None -> [] | Some body -> Ast.stmts_calls [] body in
  h t.on_operation @ h t.on_event

let svc_ops_used t =
  let h = function None -> [] | Some body -> Ast.stmts_svcs [] body in
  h t.on_operation @ h t.on_event
