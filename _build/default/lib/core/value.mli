(** Runtime values of the extension language. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Record of (string * t) list
      (** coordination-service objects are surfaced to extensions as
          records with fields [id], [data], [version], [ctime] *)

(** [obj ~id ~data ~version ~ctime] is the object record every state proxy
    hands to extensions (the OBJECT of the paper's recipes). *)
val obj : id:string -> data:string -> version:int -> ctime:int -> t

(** [field r name] reads a record field. *)
val field : t -> string -> t option

val equal : t -> t -> bool

(** [size v] approximates the in-memory footprint in bytes, for the
    sandbox's value-size budget (§4.1.2). *)
val size : t -> int

(** [truthy v] is the boolean interpretation used by [If]. *)
val truthy : t -> bool

val pp : Format.formatter -> t -> unit

(** Wire codec (used for piggybacked extension results). *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
val serialize : t -> string
val deserialize : string -> (t, string) result
