(** White-listed builtin functions available to extensions.

    The paper's white list contains "basic math, boolean, and string
    operations" plus, for passively-replicated systems only,
    nondeterministic operations (§4.1.1).  Arithmetic and boolean
    connectives are language syntax here; the table below holds the named
    helpers.  Each entry records its determinism so the verifier can reject
    nondeterministic calls in actively-replicated deployments (EDS). *)

type outcome = (Value.t, string) result

type t = {
  arity : int;
  deterministic : bool;
  fn : Value.t list -> outcome;
}

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let v_int = function Value.Int i -> Ok i | v -> err "expected int, got %a" Value.pp v
let v_str = function Value.Str s -> Ok s | v -> err "expected string, got %a" Value.pp v
let v_list = function Value.List l -> Ok l | v -> err "expected list, got %a" Value.pp v

let ( let* ) = Result.bind

let table : (string * t) list =
  [
    (* --- string operations --- *)
    ( "str_len",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ s ] -> let* s = v_str s in Ok (Value.Int (String.length s))
          | _ -> err "arity") } );
    ( "str_sub",
      { arity = 3; deterministic = true;
        fn = (fun args -> match args with
          | [ s; pos; len ] ->
              let* s = v_str s in
              let* pos = v_int pos in
              let* len = v_int len in
              if pos < 0 || len < 0 || pos + len > String.length s then
                err "str_sub out of range"
              else Ok (Value.Str (String.sub s pos len))
          | _ -> err "arity") } );
    ( "str_index",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ s; c ] ->
              let* s = v_str s in
              let* c = v_str c in
              if String.length c <> 1 then err "str_index wants a single char"
              else Ok (Value.Int (match String.index_opt s c.[0] with Some i -> i | None -> -1))
          | _ -> err "arity") } );
    ( "str_suffix_after",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ s; sep ] ->
              let* s = v_str s in
              let* sep = v_str sep in
              if String.length sep <> 1 then err "str_suffix_after wants a single char"
              else
                Ok (Value.Str (match String.rindex_opt s sep.[0] with
                    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
                    | None -> s))
          | _ -> err "arity") } );
    ( "int_of_str",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ s ] ->
              let* s = v_str s in
              (match int_of_string_opt (String.trim s) with
              | Some i -> Ok (Value.Int i)
              | None -> err "int_of_str: %S" s)
          | _ -> err "arity") } );
    ( "str_of_int",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ i ] -> let* i = v_int i in Ok (Value.Str (string_of_int i))
          | _ -> err "arity") } );
    (* --- math --- *)
    ( "min",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ a; b ] -> let* a = v_int a in let* b = v_int b in Ok (Value.Int (Stdlib.min a b))
          | _ -> err "arity") } );
    ( "max",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ a; b ] -> let* a = v_int a in let* b = v_int b in Ok (Value.Int (Stdlib.max a b))
          | _ -> err "arity") } );
    ( "abs",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ a ] -> let* a = v_int a in Ok (Value.Int (Stdlib.abs a))
          | _ -> err "arity") } );
    (* --- lists --- *)
    ( "list_len",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ l ] -> let* l = v_list l in Ok (Value.Int (List.length l))
          | _ -> err "arity") } );
    ( "list_nth",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ l; i ] ->
              let* l = v_list l in
              let* i = v_int i in
              (match List.nth_opt l i with
              | Some v -> Ok v
              | None -> err "list_nth out of range")
          | _ -> err "arity") } );
    ( "list_empty",
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ l ] -> let* l = v_list l in Ok (Value.Bool (l = []))
          | _ -> err "arity") } );
    (* --- object-record helpers --- *)
    ( "field",
      { arity = 2; deterministic = true;
        fn = (fun args -> match args with
          | [ r; name ] ->
              let* name = v_str name in
              (match Value.field r name with
              | Some v -> Ok v
              | None -> err "no field %s" name)
          | _ -> err "arity") } );
    ( "min_by_ctime",
      (* the recipes' "object with lowest creation timestamp" in one call *)
      { arity = 1; deterministic = true;
        fn = (fun args -> match args with
          | [ l ] ->
              let* l = v_list l in
              let ctime v =
                match Value.field v "ctime" with Some (Value.Int i) -> i | _ -> max_int
              in
              (match l with
              | [] -> Ok Value.Unit
              | first :: rest ->
                  Ok (List.fold_left (fun best v -> if ctime v < ctime best then v else best) first rest))
          | _ -> err "arity") } );
    (* --- nondeterministic (passive replication only, §4.1.1) --- *)
    ( "clock",
      { arity = 0; deterministic = false;
        fn = (fun _ -> err "clock is provided by the host") } );
  ]

let find name = List.assoc_opt name table
let names = List.map fst table
let is_deterministic name =
  match find name with Some b -> b.deterministic | None -> false
