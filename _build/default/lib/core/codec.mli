(** Wire codec for extension programs (§3.6).

    Registration ships the serialized program as the data of an ordinary
    [create]; every replica re-parses and re-verifies before
    instantiating.  The decoder treats all input as untrusted: malformed
    shapes yield [Error], never exceptions. *)

val expr_to_sexp : Ast.expr -> Sexp.t
val stmt_to_sexp : Ast.stmt -> Sexp.t
val to_sexp : Program.t -> Sexp.t

(** [serialize p] — canonical bytes: equal programs serialize equally. *)
val serialize : Program.t -> string

val expr_of_sexp : Sexp.t -> (Ast.expr, string) result
val stmt_of_sexp : Sexp.t -> (Ast.stmt, string) result
val of_sexp : Sexp.t -> (Program.t, string) result
val deserialize : string -> (Program.t, string) result
