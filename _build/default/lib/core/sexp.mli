(** Canonical s-expressions: the wire format for extension code (§3.6).

    Atoms and lists only; atoms containing whitespace or delimiters are
    quoted with C-style escapes.  The format is canonical: printing and
    re-parsing any value yields the same value, and equal values print to
    equal strings — which lets replicas compare and re-verify extension
    code byte-for-byte. *)

type t = Atom of string | List of t list

(** [to_string sexp] prints canonically. *)
val to_string : t -> string

(** [of_string s] parses one s-expression.  All input is untrusted
    (extensions arrive from clients): malformed input yields [Error],
    never an exception. *)
val of_string : string -> (t, string) result

(** [node_count sexp] counts atoms plus list nodes (verifier size bound). *)
val node_count : t -> int

(** [depth sexp] is the nesting depth (verifier bound). *)
val depth : t -> int
