(** White-listed builtin functions available to extensions (§4.1.1).

    Basic math, boolean, string, list, and object-record helpers, each
    tagged with its determinism so the verifier can reject
    nondeterministic calls under active replication.  The interpreter
    charges fuel proportional to the size of list arguments, so no builtin
    can smuggle an unbounded scan past the step budget. *)

type outcome = (Value.t, string) result

type t = {
  arity : int;
  deterministic : bool;
  fn : Value.t list -> outcome;
}

(** The white list itself. *)
val table : (string * t) list

val find : string -> t option
val names : string list
val is_deterministic : string -> bool
