(** Abstract syntax of the extension language.

    The paper verifies Java extensions against a white list of APIs and
    language constructs: no recursion, no unbounded loops (only for-each
    over existing collections), only coordination-service calls plus basic
    math/boolean/string operations (§4.1.1).  We make those guarantees
    structural: the language *has* no recursion, no while, and no
    user-defined functions.  Its only loop, {!For_each}, iterates a list
    value that already exists — so every program terminates, with the
    runtime fuel budget (§4.1.2) bounding total work.

    Programs are data: they serialize to s-expressions ({!Codec}), travel
    inside ordinary [create] operations, and are re-verified on every
    replica before instantiation. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

(** Coordination-service calls available to extensions through the state
    proxy — deliberately the same surface clients get (Table 2), which is
    the paper's third sandbox advantage (§4.1.2). *)
type svc_op =
  | Svc_read  (** read(oid) -> object record; aborts if missing *)
  | Svc_exists  (** exists(oid) -> bool *)
  | Svc_sub_objects  (** subObjects(oid) -> list of object records *)
  | Svc_create  (** create(oid, data) -> actual id *)
  | Svc_create_sequential  (** create_seq(oid, data) -> actual id *)
  | Svc_update  (** update(oid, data) -> new version *)
  | Svc_cas  (** cas(oid, expected_data, new_data) -> bool *)
  | Svc_delete  (** delete(oid) -> bool (false when already gone) *)
  | Svc_block  (** block(oid): park the invoking client until oid exists *)
  | Svc_monitor  (** monitor(oid): ephemeral/lease object for the client *)
  | Svc_notify  (** notify(client, oid): custom notification *)

type expr =
  | Unit_lit
  | Bool_lit of bool
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Param of string  (** request parameter: "oid", "data", "client", ... *)
  | Field of expr * string  (** object-record field access *)
  | Not of expr
  | Neg of expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** white-listed builtin *)
  | Svc of svc_op * expr list  (** service call through the proxy *)

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | For_each of string * expr * stmt list
  | Return of expr
  | Do of expr  (** evaluate for effect *)
  | Abort of string  (** abort the extension; all state changes discarded *)

(** Count AST nodes (verifier size bound). *)
let rec expr_nodes = function
  | Unit_lit | Bool_lit _ | Int_lit _ | Str_lit _ | Var _ | Param _ -> 1
  | Field (e, _) | Not e | Neg e -> 1 + expr_nodes e
  | Binop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Call (_, args) | Svc (_, args) ->
      1 + List.fold_left (fun acc e -> acc + expr_nodes e) 0 args

let rec stmt_nodes = function
  | Let (_, e) | Assign (_, e) | Return e | Do e -> 1 + expr_nodes e
  | Abort _ -> 1
  | If (c, a, b) -> 1 + expr_nodes c + stmts_nodes a + stmts_nodes b
  | For_each (_, e, body) -> 1 + expr_nodes e + stmts_nodes body

and stmts_nodes body = List.fold_left (fun acc s -> acc + stmt_nodes s) 0 body

(** Nesting depth (verifier bound). *)
let rec expr_depth = function
  | Unit_lit | Bool_lit _ | Int_lit _ | Str_lit _ | Var _ | Param _ -> 1
  | Field (e, _) | Not e | Neg e -> 1 + expr_depth e
  | Binop (_, a, b) -> 1 + Stdlib.max (expr_depth a) (expr_depth b)
  | Call (_, args) | Svc (_, args) ->
      1 + List.fold_left (fun acc e -> Stdlib.max acc (expr_depth e)) 0 args

let rec stmt_depth = function
  | Let (_, e) | Assign (_, e) | Return e | Do e -> 1 + expr_depth e
  | Abort _ -> 1
  | If (c, a, b) ->
      1 + Stdlib.max (expr_depth c) (Stdlib.max (stmts_depth a) (stmts_depth b))
  | For_each (_, e, body) -> 1 + Stdlib.max (expr_depth e) (stmts_depth body)

and stmts_depth body =
  List.fold_left (fun acc s -> Stdlib.max acc (stmt_depth s)) 0 body

(** For-each nesting level (the verifier bounds it: nested loops multiply
    work even under fuel). *)
let rec loop_nesting_stmt = function
  | Let _ | Assign _ | Return _ | Do _ | Abort _ -> 0
  | If (_, a, b) -> Stdlib.max (loop_nesting a) (loop_nesting b)
  | For_each (_, _, body) -> 1 + loop_nesting body

and loop_nesting body =
  List.fold_left (fun acc s -> Stdlib.max acc (loop_nesting_stmt s)) 0 body

(** Iterate all [Call] builtin names in a program fragment. *)
let rec expr_calls acc = function
  | Unit_lit | Bool_lit _ | Int_lit _ | Str_lit _ | Var _ | Param _ -> acc
  | Field (e, _) | Not e | Neg e -> expr_calls acc e
  | Binop (_, a, b) -> expr_calls (expr_calls acc a) b
  | Call (name, args) -> List.fold_left expr_calls (name :: acc) args
  | Svc (_, args) -> List.fold_left expr_calls acc args

let rec stmt_calls acc = function
  | Let (_, e) | Assign (_, e) | Return e | Do e -> expr_calls acc e
  | Abort _ -> acc
  | If (c, a, b) -> stmts_calls (stmts_calls (expr_calls acc c) a) b
  | For_each (_, e, body) -> stmts_calls (expr_calls acc e) body

and stmts_calls acc body = List.fold_left stmt_calls acc body

(** Iterate all service ops used (the verifier restricts e.g. [Svc_notify]
    to event handlers). *)
let rec expr_svcs acc = function
  | Unit_lit | Bool_lit _ | Int_lit _ | Str_lit _ | Var _ | Param _ -> acc
  | Field (e, _) | Not e | Neg e -> expr_svcs acc e
  | Binop (_, a, b) -> expr_svcs (expr_svcs acc a) b
  | Call (_, args) -> List.fold_left expr_svcs acc args
  | Svc (op, args) -> List.fold_left expr_svcs (op :: acc) args

let rec stmt_svcs acc = function
  | Let (_, e) | Assign (_, e) | Return e | Do e -> expr_svcs acc e
  | Abort _ -> acc
  | If (c, a, b) -> stmts_svcs (stmts_svcs (expr_svcs acc c) a) b
  | For_each (_, e, body) -> stmts_svcs (expr_svcs acc e) body

and stmts_svcs acc body = List.fold_left stmt_svcs acc body
