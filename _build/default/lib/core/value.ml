(** Runtime values of the extension language. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Record of (string * t) list
      (** coordination-service objects are surfaced to extensions as
          records: [id], [data], [version], [ctime] *)

(** The object record every state proxy hands to extensions. *)
let obj ~id ~data ~version ~ctime =
  Record [ ("id", Str id); ("data", Str data); ("version", Int version); ("ctime", Int ctime) ]

let field r name =
  match r with
  | Record fields -> List.assoc_opt name fields
  | Unit | Bool _ | Int _ | Str _ | List _ -> None

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Record x, Record y ->
      List.length x = List.length y
      && List.for_all2
           (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy)
           x y
  | (Unit | Bool _ | Int _ | Str _ | List _ | Record _), _ -> false

(** Approximate in-memory footprint, for the sandbox's value-size budget. *)
let rec size = function
  | Unit | Bool _ -> 1
  | Int _ -> 8
  | Str s -> 8 + String.length s
  | List items -> List.fold_left (fun acc v -> acc + size v) 8 items
  | Record fields ->
      List.fold_left (fun acc (n, v) -> acc + String.length n + size v) 8 fields

let truthy = function
  | Bool b -> b
  | Unit -> false
  | Int i -> i <> 0
  | Str s -> s <> ""
  | List l -> l <> []
  | Record _ -> true

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp) l
  | Record fields ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:semi (pair ~sep:(any "=") string pp))
        fields

(* Wire codec (embedded in the extension wire format and in piggybacked
   extension results). *)

let rec to_sexp = function
  | Unit -> Sexp.Atom "u"
  | Bool b -> Sexp.List [ Sexp.Atom "b"; Sexp.Atom (string_of_bool b) ]
  | Int i -> Sexp.List [ Sexp.Atom "i"; Sexp.Atom (string_of_int i) ]
  | Str s -> Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ]
  | List items -> Sexp.List (Sexp.Atom "l" :: List.map to_sexp items)
  | Record fields ->
      Sexp.List
        (Sexp.Atom "r"
        :: List.map (fun (n, v) -> Sexp.List [ Sexp.Atom n; to_sexp v ]) fields)

let rec of_sexp = function
  | Sexp.Atom "u" -> Ok Unit
  | Sexp.List [ Sexp.Atom "b"; Sexp.Atom b ] -> (
      match bool_of_string_opt b with
      | Some b -> Ok (Bool b)
      | None -> Error "bad bool")
  | Sexp.List [ Sexp.Atom "i"; Sexp.Atom i ] -> (
      match int_of_string_opt i with
      | Some i -> Ok (Int i)
      | None -> Error "bad int")
  | Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ] -> Ok (Str s)
  | Sexp.List (Sexp.Atom "l" :: items) ->
      let rec conv acc = function
        | [] -> Ok (List (List.rev acc))
        | x :: rest -> (
            match of_sexp x with Ok v -> conv (v :: acc) rest | Error e -> Error e)
      in
      conv [] items
  | Sexp.List (Sexp.Atom "r" :: fields) ->
      let rec conv acc = function
        | [] -> Ok (Record (List.rev acc))
        | Sexp.List [ Sexp.Atom n; v ] :: rest -> (
            match of_sexp v with
            | Ok v -> conv ((n, v) :: acc) rest
            | Error e -> Error e)
        | _ -> Error "bad record field"
      in
      conv [] fields
  | _ -> Error "bad value"

let serialize v = Sexp.to_string (to_sexp v)

let deserialize s =
  match Sexp.of_string s with Ok sx -> of_sexp sx | Error e -> Error e
