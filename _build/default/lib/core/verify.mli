(** Registration-time verification (§4.1.1).

    Admits an extension only if it stays within the white list: bounded
    serialized size, bounded AST size and nesting, bounded for-each
    nesting, only white-listed builtins, and — for actively-replicated
    systems — only deterministic ones.  Verification runs once per
    registration (and on recovery reload); execution pays nothing (§4.2). *)

type mode =
  | Active  (** all replicas execute the extension (EDS): deterministic only *)
  | Passive  (** only the primary executes (EZK): nondeterminism permitted *)

type limits = {
  max_serialized_bytes : int;
  max_nodes : int;
  max_depth : int;
  max_loop_nesting : int;
}

val default_limits : limits

type violation =
  | Too_large of int
  | Too_many_nodes of int
  | Too_deep of int
  | Loops_too_nested of int
  | Unknown_builtin of string
  | Nondeterministic_builtin of string
  | Notify_outside_event_handler
  | Missing_handlers
  | Bad_name of string

val violation_to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

(** [check ~limits ~mode ~serialized_size program] returns every violation;
    [[]] means admissible. *)
val check :
  ?limits:limits -> mode:mode -> serialized_size:int -> Program.t -> violation list

(** [verify ~limits ~mode serialized] — the full admission step over raw
    registration bytes: parse, then check. *)
val verify :
  ?limits:limits ->
  mode:mode ->
  string ->
  (Program.t, [ `Parse of string | `Violations of violation list ]) result
