(** The leader's speculative view of the tree (outstanding change records).

    ZooKeeper's preprocessor validates every request against the state the
    tree *will* have once all already-proposed transactions commit —
    otherwise concurrent conditional updates could all pass validation and
    the compare-and-swap semantics (and the paper's contention results)
    would evaporate.  Mutations validate against and update the
    speculation while minting the idempotent {!Txn.op} to replicate;
    extension reads come through here too, giving extensions
    read-your-writes atomicity within one invocation.

    [begin_txn]/[commit_txn]/[rollback_txn] bracket one sandbox run: an
    aborted extension leaves the speculation exactly as it found it
    (§4.1.2). *)

type t

val create : Data_tree.t -> t

(** Drop all speculation (leadership change, or quiescence GC). *)
val reset : t -> unit

(** Extension transactionality. *)

val begin_txn : t -> unit
val commit_txn : t -> unit
val rollback_txn : t -> unit

(** Reads (committed state overlaid with pending changes). *)

val read : t -> string -> (string * Znode.stat, Zerror.t) result
val exists : t -> string -> Znode.stat option
val children : t -> string -> (string list, Zerror.t) result
val children_with_data :
  t -> string -> ((string * string * Znode.stat) list, Zerror.t) result

(** All ephemeral paths owned by [session] in the speculative state (used
    to preprocess session closes). *)
val ephemerals_of_session : t -> int -> string list

(** Mutations: validate, speculate, mint the transaction op. *)

val create_node :
  t ->
  path:string ->
  data:string ->
  ephemeral_owner:int option ->
  sequential:bool ->
  (string * Txn.op, Zerror.t) result

val delete_node : t -> path:string -> version:int option -> (Txn.op, Zerror.t) result

val set_node :
  t -> path:string -> data:string -> expected_version:int option ->
  (Txn.op * int, Zerror.t) result

(** Bookkeeping when a transaction applies at the leader (keeps the
    speculative creation-id counter aligned with the tree's). *)
val on_applied_op : t -> Txn.op -> unit

val pending_count : t -> int
