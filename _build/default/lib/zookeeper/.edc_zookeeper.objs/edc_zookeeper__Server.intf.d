lib/zookeeper/server.mli: Data_tree Edc_replication Edc_simnet Net Protocol Sim Sim_time Spec_view Txn Zab Zerror
