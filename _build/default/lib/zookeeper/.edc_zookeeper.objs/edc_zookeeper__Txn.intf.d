lib/zookeeper/txn.mli: Format Protocol
