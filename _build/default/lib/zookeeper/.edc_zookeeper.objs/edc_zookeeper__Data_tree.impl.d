lib/zookeeper/data_tree.ml: Hashtbl List Logs Option Printf Zerror Znode Zpath
