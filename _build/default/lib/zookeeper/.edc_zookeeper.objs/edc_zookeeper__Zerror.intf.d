lib/zookeeper/zerror.mli: Format
