lib/zookeeper/zpath.mli:
