lib/zookeeper/spec_view.ml: Data_tree Hashtbl List String Txn Zerror Znode Zpath
