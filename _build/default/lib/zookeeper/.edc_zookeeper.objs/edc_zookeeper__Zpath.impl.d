lib/zookeeper/zpath.ml: List Printf String
