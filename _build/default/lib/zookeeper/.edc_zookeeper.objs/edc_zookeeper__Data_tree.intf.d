lib/zookeeper/data_tree.mli: Zerror Znode
