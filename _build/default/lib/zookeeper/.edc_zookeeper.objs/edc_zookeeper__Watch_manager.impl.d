lib/zookeeper/watch_manager.ml: Hashtbl List
