lib/zookeeper/protocol.mli: Format Zerror Znode
