lib/zookeeper/txn.ml: Fmt List Protocol String
