lib/zookeeper/zerror.ml: Fmt
