lib/zookeeper/znode.mli: Format Set
