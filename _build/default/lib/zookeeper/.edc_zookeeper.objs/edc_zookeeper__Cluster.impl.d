lib/zookeeper/cluster.ml: Array Client Edc_simnet Fun List Net Server Sim Sim_time
