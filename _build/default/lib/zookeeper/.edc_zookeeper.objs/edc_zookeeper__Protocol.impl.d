lib/zookeeper/protocol.ml: Fmt List String Zerror Znode
