lib/zookeeper/spec_view.mli: Data_tree Txn Zerror Znode
