lib/zookeeper/server.ml: Cpu Data_tree Edc_replication Edc_simnet Hashtbl List Marshal Net Option Protocol Sim Sim_time Spec_view Txn Watch_manager Zab Zerror Zpath
