lib/zookeeper/cluster.mli: Client Edc_replication Edc_simnet Net Server Sim Sim_time
