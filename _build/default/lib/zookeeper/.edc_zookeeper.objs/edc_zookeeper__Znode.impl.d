lib/zookeeper/znode.ml: Fmt Set String
