lib/zookeeper/client.ml: Edc_simnet Hashtbl List Net Proc Protocol Server Sim Sim_time Zerror
