lib/zookeeper/watch_manager.mli:
