lib/zookeeper/client.mli: Edc_simnet Net Proc Protocol Server Sim Sim_time Zerror Znode
