(** Path algebra for the hierarchical namespace.

    Paths are absolute, slash-separated, with no trailing slash (except the
    root ["/"]) and no empty components. *)

let root = "/"

let is_root p = String.equal p root

let is_valid p =
  String.length p > 0
  && p.[0] = '/'
  && (is_root p
     || (p.[String.length p - 1] <> '/'
        &&
        let ok = ref true in
        let last_slash = ref false in
        String.iteri
          (fun _ c ->
            if c = '/' then begin
              if !last_slash then ok := false;
              last_slash := true
            end
            else last_slash := false)
          p;
        !ok))

(** [components "/a/b"] is [["a"; "b"]]; the root has no components. *)
let components p =
  if is_root p then []
  else String.split_on_char '/' (String.sub p 1 (String.length p - 1))

(** [parent "/a/b"] is ["/a"]; [parent "/a"] is ["/"]; the root has no
    parent. *)
let parent p =
  if is_root p then None
  else
    match String.rindex_opt p '/' with
    | None | Some 0 -> Some root
    | Some i -> Some (String.sub p 0 i)

(** [basename "/a/b"] is ["b"]. *)
let basename p =
  if is_root p then ""
  else
    match String.rindex_opt p '/' with
    | None -> p
    | Some i -> String.sub p (i + 1) (String.length p - i - 1)

(** [child parent name] joins a parent path with a child name. *)
let child p name = if is_root p then "/" ^ name else p ^ "/" ^ name

(** [is_ancestor ~ancestor p]: strict ancestry. *)
let is_ancestor ~ancestor p =
  (not (String.equal ancestor p))
  && (is_root ancestor
     || String.length p > String.length ancestor
        && String.sub p 0 (String.length ancestor) = ancestor
        && p.[String.length ancestor] = '/')

(** [has_prefix ~prefix p]: [p] equals or descends from [prefix]. *)
let has_prefix ~prefix p = String.equal prefix p || is_ancestor ~ancestor:prefix p

(** [depth "/a/b"] is [2]. *)
let depth p = List.length (components p)

(** [sequence_suffix counter] formats a sequential-node suffix the way
    ZooKeeper does (zero-padded to ten digits). *)
let sequence_suffix counter = Printf.sprintf "%010d" counter
