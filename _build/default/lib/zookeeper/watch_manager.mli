(** Per-replica watch registry.

    Watches are one-shot and replica-local, as in ZooKeeper: a client's
    watches live on the server it is connected to.  Data watches fire on
    node creation/change/deletion; child watches fire when a node's
    children set changes. *)

type target = Data | Children

type t

val create : unit -> t

(** [add t target path session] registers a one-shot watch. *)
val add : t -> target -> string -> int -> unit

(** [fire t target path] removes and returns all watching sessions. *)
val fire : t -> target -> string -> int list

(** Remove all watches of a departed session. *)
val drop_session : t -> int -> unit

val watch_count : t -> int
