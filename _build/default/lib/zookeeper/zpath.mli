(** Path algebra for the hierarchical namespace: absolute, slash-separated
    paths with no trailing slash (except the root ["/"]). *)

val root : string
val is_root : string -> bool
val is_valid : string -> bool

(** [components "/a/b"] is [["a"; "b"]]. *)
val components : string -> string list

(** [parent "/a/b"] is [Some "/a"]; the root has no parent. *)
val parent : string -> string option

(** [basename "/a/b"] is ["b"]. *)
val basename : string -> string

(** [child parent name] joins. *)
val child : string -> string -> string

(** Strict ancestry. *)
val is_ancestor : ancestor:string -> string -> bool

(** [p] equals or descends from [prefix]. *)
val has_prefix : prefix:string -> string -> bool

val depth : string -> int

(** ZooKeeper-style zero-padded sequential suffix. *)
val sequence_suffix : int -> string
