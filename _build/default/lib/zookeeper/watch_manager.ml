(** Per-replica watch registry.

    Watches are one-shot and replica-local (as in ZooKeeper: a client's
    watches live on the server it is connected to and are lost if that
    server fails).  Data watches fire on node creation, change, and
    deletion; child watches fire when the children set of a node changes. *)

type target = Data | Children

type t = {
  data_watches : (string, int list ref) Hashtbl.t;  (** path -> sessions *)
  child_watches : (string, int list ref) Hashtbl.t;
}

let create () =
  { data_watches = Hashtbl.create 64; child_watches = Hashtbl.create 64 }

let table t = function Data -> t.data_watches | Children -> t.child_watches

(** [add t target path session] registers a one-shot watch. *)
let add t target path session =
  let tbl = table t target in
  match Hashtbl.find_opt tbl path with
  | Some sessions ->
      if not (List.mem session !sessions) then sessions := session :: !sessions
  | None -> Hashtbl.replace tbl path (ref [ session ])

(** [fire t target path] removes and returns all sessions watching
    [path]. *)
let fire t target path =
  let tbl = table t target in
  match Hashtbl.find_opt tbl path with
  | None -> []
  | Some sessions ->
      Hashtbl.remove tbl path;
      List.rev !sessions

(** [drop_session t session] removes all watches of a departed session. *)
let drop_session t session =
  let clean tbl =
    let doomed = ref [] in
    Hashtbl.iter
      (fun path sessions ->
        sessions := List.filter (fun s -> s <> session) !sessions;
        if !sessions = [] then doomed := path :: !doomed)
      tbl;
    List.iter (Hashtbl.remove tbl) !doomed
  in
  clean t.data_watches;
  clean t.child_watches

let watch_count t =
  let count tbl = Hashtbl.fold (fun _ s acc -> acc + List.length !s) tbl 0 in
  count t.data_watches + count t.child_watches
