(** EXTENSIBLE ZOOKEEPER (EZK, §5.1): the extension manager wired into a
    ZooKeeper replica through the server's hook points.

    Operation extensions run at the leader's preprocessor against the
    speculative view; their recorded changes become one multi-transaction
    with the produced value piggybacked to the client's replica (§5.1.2).
    Extension-matched reads are redirected to the leader, while regular
    clients keep the untouched read fast path (§6.2).  Registration
    travels through standard [create]/[delete] on ["/em/<name>"]; all
    manager state lives in data objects (code, owner, acks, index), so
    recovery reloads from the tree (§3.6, §3.8).  Event extensions run at
    the leader on committed changes, their effects proposed as follow-up
    (quiet) transactions; matching clients' original watch notifications
    are suppressed. *)

open Edc_zookeeper
open Edc_core

type t

val manager : t -> Manager.t
val server : t -> Server.t

(** [install server] attaches a fresh extension manager to one replica. *)
val install : Server.t -> t

(** [reload t] rebuilds the manager from the committed tree (§3.8): index
    object, then each extension's code, owner, and acknowledgments. *)
val reload : t -> unit

(** [bootstrap server] creates the ["/em"] and ["/em/index"] objects — run
    once at the initial leader. *)
val bootstrap : Server.t -> unit
