(** Client-side conveniences EZK adds to the ZooKeeper client library
    (§5.1.2: "EZK introduces two methods for registering and deregistering
    extensions into the ZooKeeper client library" — plus helpers for
    invoking them). *)

open Edc_zookeeper
open Edc_core
module P = Edc_zookeeper.Protocol

(** [register c program] ships the serialized program through a standard
    [create] on the extension manager's data object. *)
let register c (program : Program.t) =
  Client.create_node c
    (Manager.extension_object program.Program.name)
    (Codec.serialize program)

let deregister c name = Client.delete c (Manager.extension_object name)

(** [acknowledge c name] — one-time acknowledgment allowing this client to
    trigger an extension registered by someone else (§3.6). *)
let acknowledge c name =
  Client.create_node c (Manager.ack_object name ~client:(Client.session c)) ""

(** [ext_read c oid] — invoke a read-triggered operation extension and
    decode its piggybacked value. *)
let ext_read c oid =
  match Client.request c (P.Get_data { path = oid; watch = false }) with
  | P.Ext s -> Value.deserialize s
  | P.Error e -> Error (Zerror.to_string e)
  | P.Data (d, _) -> Ok (Value.Str d) (* extension vanished: plain read *)
  | _ -> Error "unexpected reply"

(** [ext_update c oid data] — invoke an update-triggered extension. *)
let ext_update c oid data =
  match
    Client.request c (P.Set_data { path = oid; data; expected_version = None })
  with
  | P.Ext s -> Value.deserialize s
  | P.Error e -> Error (Zerror.to_string e)
  | _ -> Error "unexpected reply"

(** [block c oid] — EZK's single-RPC blocking call (served by an operation
    extension); returns the awaited object's data.  When the handler
    completes without parking (e.g. the caller was the last one into a
    barrier), the piggybacked extension value arrives instead. *)
let block c oid =
  match Client.request c (P.Block { path = oid }) with
  | P.Unblocked data -> Ok data
  | P.Ext _ -> Ok ""
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported
