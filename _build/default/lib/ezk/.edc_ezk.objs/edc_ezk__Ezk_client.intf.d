lib/ezk/ezk_client.mli: Client Edc_core Edc_zookeeper Program Value Zerror
