lib/ezk/ezk.mli: Edc_core Edc_zookeeper Manager Server
