lib/ezk/ezk_cluster.ml: Array Cluster Edc_zookeeper Ezk
