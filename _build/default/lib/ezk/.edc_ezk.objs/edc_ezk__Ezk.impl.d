lib/ezk/ezk.ml: Data_tree Edc_core Edc_simnet Edc_zookeeper List Logs Manager Option Program Result Sandbox Server Sim Sim_time Spec_view String Subscription Txn Value Verify Zerror Znode
