lib/ezk/ezk_client.ml: Client Codec Edc_core Edc_zookeeper Manager Program Value Zerror
