lib/ezk/ezk_cluster.mli: Client Cluster Edc_replication Edc_simnet Edc_zookeeper Ezk Net Server Sim Sim_time
