(** Client-side conveniences EZK adds to the ZooKeeper client library
    (§5.1.2): registration/deregistration and extension invocation. *)

open Edc_zookeeper
open Edc_core

(** [register c program] ships the serialized program through a standard
    [create] of the extension manager's data object (§3.6). *)
val register : Client.t -> Program.t -> (string, Zerror.t) result

val deregister : Client.t -> string -> (unit, Zerror.t) result

(** One-time acknowledgment allowing this client to trigger an extension
    registered by another client (§3.6). *)
val acknowledge : Client.t -> string -> (string, Zerror.t) result

(** Invoke a read-triggered operation extension; decodes the piggybacked
    value.  Falls back to the plain read result if the extension is gone. *)
val ext_read : Client.t -> string -> (Value.t, string) result

(** Invoke an update-triggered operation extension. *)
val ext_update : Client.t -> string -> string -> (Value.t, string) result

(** EZK's single-RPC blocking call (served by an operation extension);
    returns the awaited object's data, or [""] when the handler completed
    without parking. *)
val block : Client.t -> string -> (string, Zerror.t) result
