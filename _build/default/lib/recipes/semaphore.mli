(** Counting semaphore — a fifth recipe (§6.1.1 motivates counters via
    semaphores).  Capacity K lives in a config object; the K oldest
    liveness-bound members hold the permits.  The extension-based acquire
    is a single blocking RPC; a server-side event extension re-computes
    the permit set whenever a member departs, exercising nested for-each
    in the DSL. *)

open Edc_core
module Api = Coord_api

type roots = {
  member_root : string;
  grant_root : string;
  config_oid : string;  (** object whose data is the capacity K *)
  name : string;
}

val semaphore_roots : ?base:string -> unit -> roots
val member : roots -> int -> string
val grant : roots -> int -> string

val program : roots -> Program.t

(** Create roots and the config object. *)
val setup : Api.t -> roots -> capacity:int -> (unit, string) result

(** Per-client state (fresh per-incarnation member names, as in
    {!Election.handle}). *)
type handle

val new_handle : unit -> handle

val acquire_traditional :
  Api.t -> roots -> handle -> capacity:int -> (unit, string) result

val release_traditional : Api.t -> roots -> handle -> (unit, string) result

(** One blocking RPC. *)
val acquire_ext : Api.t -> roots -> (unit, string) result

(** One RPC; the event extension promotes the next waiter. *)
val release_ext : Api.t -> roots -> (unit, string) result

val register : Api.t -> roots -> (unit, string) result
