(** Shared counter (paper Figure 5): read + compare-and-swap with retries
    vs. a single-RPC server-side extension. *)

open Edc_core
module Api = Coord_api

val counter_oid : string
val trigger_oid : string
val extension_name : string

(** The extension of Figure 5 (bottom). *)
val program : Program.t

(** Create the counter object (idempotent). *)
val setup : Api.t -> (unit, string) result

type result = { value : int; attempts : int }

(** Figure 5 (top): the traditional client loop. *)
val increment_traditional : Api.t -> (result, string) Stdlib.result

(** Figure 5 (bottom): one remote call. *)
val increment_ext : Api.t -> (result, string) Stdlib.result

val register : Api.t -> (unit, string) Stdlib.result
