lib/recipes/election.mli: Coord_api Edc_core Program
