lib/recipes/barrier.ml: Ast Coord_api Edc_core List Program Result Subscription
