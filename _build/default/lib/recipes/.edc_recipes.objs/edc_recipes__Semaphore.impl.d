lib/recipes/semaphore.ml: Ast Coord_api Edc_core List Printf Program Result String Subscription
