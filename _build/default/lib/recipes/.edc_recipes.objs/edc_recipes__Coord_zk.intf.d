lib/recipes/coord_zk.mli: Coord_api Edc_zookeeper
