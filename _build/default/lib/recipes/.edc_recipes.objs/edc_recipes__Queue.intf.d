lib/recipes/queue.mli: Coord_api Edc_core Program
