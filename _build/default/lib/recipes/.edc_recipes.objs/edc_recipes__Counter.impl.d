lib/recipes/counter.ml: Ast Coord_api Edc_core Fmt Program Subscription Value
