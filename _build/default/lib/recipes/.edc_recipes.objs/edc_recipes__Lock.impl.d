lib/recipes/lock.ml: Coord_api Election String
