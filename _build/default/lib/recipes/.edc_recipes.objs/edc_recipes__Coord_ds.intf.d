lib/recipes/coord_ds.mli: Coord_api Edc_depspace Edc_simnet
