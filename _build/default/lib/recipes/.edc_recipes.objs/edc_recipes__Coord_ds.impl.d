lib/recipes/coord_ds.ml: Coord_api Ds_client Edc_depspace Edc_eds Edc_simnet Eds_client List Objects Option Printf Tuple
