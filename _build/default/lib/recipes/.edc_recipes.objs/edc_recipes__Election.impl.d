lib/recipes/election.ml: Ast Coord_api Edc_core List Printf Program Result String Subscription
