lib/recipes/barrier.mli: Coord_api Edc_core Program
