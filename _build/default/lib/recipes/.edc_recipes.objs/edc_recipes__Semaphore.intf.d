lib/recipes/semaphore.mli: Coord_api Edc_core Program
