lib/recipes/coord_zk.ml: Client Coord_api Edc_ezk Edc_simnet Edc_zookeeper Ezk_client List Protocol Zerror Znode Zpath
