lib/recipes/coord_api.ml: Edc_core List Program Value
