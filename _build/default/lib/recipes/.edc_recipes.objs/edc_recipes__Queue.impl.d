lib/recipes/queue.ml: Ast Coord_api Edc_core Fmt Printf Program Subscription Value
