lib/recipes/lock.mli: Coord_api Edc_core Election
