lib/recipes/counter.mli: Coord_api Edc_core Program Stdlib
