(** Distributed lock — a mutual-exclusion recipe built on the election
    machinery (a lock is leader election over a waiter queue; cf. the
    Chubby-vs-ZooKeeper discussion in §2).

    The holder's queue entry is liveness-bound (ephemeral node / lease
    tuple), so a crashed holder releases the lock automatically. *)

module Api = Coord_api

let lock_roots ?(name = "/lock") () =
  {
    Election.member_root = name ^ "q";
    grant_root = name ^ "g";
    name = "lock" ^ String.map (fun c -> if c = '/' then '-' else c) name;
  }

let setup = Election.setup
let register = Election.register
let program = Election.program

(** [acquire_traditional api roots] blocks until the lock is held. *)
let acquire_traditional = Election.become_leader_traditional

(** [release_traditional api roots] frees the lock. *)
let release_traditional = Election.abdicate_traditional

(** [acquire_ext api roots] — single blocking RPC. *)
let acquire_ext = Election.become_leader_ext

(** [release_ext api roots] — single RPC. *)
let release_ext = Election.abdicate_ext
