(** The abstract coordination-service client API of Table 2.

    Recipes are written once against this interface and run on all four
    systems (ZooKeeper, EZK, DepSpace, EDS); {!Coord_zk} and {!Coord_ds}
    provide the per-system mappings, with exactly the RPC cost structure
    the table prescribes (e.g. [sub_objects] is [k + 1] calls on ZooKeeper
    but a single [rdAll] on DepSpace). *)

open Edc_core

type obj = { oid : string; data : string; version : int; ctime : int }

(** Extension operations (only on EZK/EDS deployments). *)
type ext_api = {
  register : Program.t -> (unit, string) result;
      (** ship an extension through the standard API (§3.6) *)
  acknowledge : string -> (unit, string) result;
      (** one-time acknowledgment of someone else's extension *)
  invoke_read : string -> (Value.t, string) result;
      (** trigger a read-subscribed operation extension *)
  invoke_block : string -> (string, string) result;
      (** single-RPC blocking call served by an operation extension;
          returns the awaited object's data *)
  keep_alive : string -> unit;
      (** keep a liveness object created server-side by an extension's
          [monitor] call alive (no-op on ZooKeeper, where the session's
          pings already do; lease renewal on DepSpace) *)
}

type t = {
  client_id : int;
      (** unique client identity (ZooKeeper session / DepSpace address) *)
  create : oid:string -> data:string -> (string, string) result;
  delete : oid:string -> (bool, string) result;
      (** [Ok false] when the object was already gone *)
  read : oid:string -> (obj option, string) result;
  update : oid:string -> data:string -> (unit, string) result;
  cas : expected:obj -> data:string -> (bool, string) result;
      (** conditional update against the previously read object ([Ok
          false] = lost the race) *)
  sub_objects : oid:string -> (obj list, string) result;
      (** contents of all sub-objects (ZooKeeper: k+1 RPCs) *)
  sub_object_ids : oid:string -> (string list, string) result;
      (** ids only ("step 2 omitted", Table 2) *)
  block : oid:string -> (unit, string) result;
      (** wait until the object exists (ZooKeeper: exists-watch dance;
          DepSpace: blocking [rd]) *)
  await_change : oid:string -> seen:string list -> (unit, string) result;
      (** wait until the membership under [oid] differs from [seen] (the
          sub-object ids the caller just observed).  ZooKeeper: arm a
          children watch and compare its atomically returned snapshot
          against [seen] — the watch-arming read IS a read, so no event
          can be lost between observation and arming.  DepSpace: blocking
          read of the next epoch token (see {!Coord_ds}). *)
  signal_change : oid:string -> (unit, string) result;
      (** make [await_change] observers wake up (no-op on ZooKeeper where
          watches fire automatically; epoch-token bump on DepSpace) *)
  monitor : oid:string -> (unit, string) result;
      (** create [oid] tied to this client's liveness (ephemeral node /
          renewed lease tuple): the service deletes it if we die *)
  ext : ext_api option;
}

let ext_exn t =
  match t.ext with
  | Some e -> e
  | None -> invalid_arg "this deployment is not extensible"

let sort_by_ctime objs =
  List.sort (fun a b -> compare (a.ctime, a.oid) (b.ctime, b.oid)) objs
