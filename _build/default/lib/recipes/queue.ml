(** Distributed queue (paper Figure 7).

    Adding an element is one [create] in both variants.  Removing the head
    traditionally takes [subObjects] (k+1 RPCs on ZooKeeper), a client-side
    sort by creation time, and a delete race against other consumers; the
    extension collapses removal to a single RPC that deletes the head
    atomically server-side. *)

open Edc_core
module Api = Coord_api

let root = "/queue"
let head_trigger = "/queue/head"
let extension_name = "queue-remove"

(** The extension of Figure 7 (right), in the DSL. *)
let program =
  let open Ast in
  Program.make extension_name
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact head_trigger } ]
    ~on_operation:
      [
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit root ]));
        If
          ( Call ("list_empty", [ Var "objs" ]),
            [ Return Unit_lit ],
            [
              Let ("head", Call ("min_by_ctime", [ Var "objs" ]));
              Do (Svc (Svc_delete, [ Field (Var "head", "id") ]));
              Return (Field (Var "head", "data"));
            ] );
      ]
    ()

let setup (api : Api.t) =
  match api.create ~oid:root ~data:"" with
  | Ok _ -> Ok ()
  | Error ("exists" | "node exists") -> Ok ()
  | Error e -> Error e

(** Unique element ids, as in the paper's [add(ELEMENTID eid, data)]. *)
let make_eid (api : Api.t) seq = Printf.sprintf "c%d-%06d" api.Api.client_id seq

(** [add api ~eid ~data] — identical in both variants (T3 / C2). *)
let add (api : Api.t) ~eid ~data =
  match api.create ~oid:(root ^ "/" ^ eid) ~data with
  | Ok _ -> Ok ()
  | Error e -> Error e

type removal = { data : string option; attempts : int; rpc_note : int }

(** Figure 7 (left): learn all elements, sort by creation time, try to
    delete the head; on a lost race try subsequent elements, then start
    over. *)
let remove_traditional (api : Api.t) =
  let rec go attempts =
    match api.sub_objects ~oid:root with
    | Error e -> Error e
    | Ok [] -> Ok { data = None; attempts; rpc_note = 1 }
    | Ok objs ->
        let sorted = Api.sort_by_ctime objs in
        let rec try_delete = function
          | [] -> go (attempts + 1)
          | (obj : Api.obj) :: rest -> (
              match api.delete ~oid:obj.Api.oid with
              | Ok true -> Ok { data = Some obj.Api.data; attempts; rpc_note = 0 }
              | Ok false -> try_delete rest
              | Error e -> Error e)
        in
        try_delete sorted
  in
  go 1

(** Figure 7 (right): a single remote call. *)
let remove_ext (api : Api.t) =
  match (Api.ext_exn api).Api.invoke_read head_trigger with
  | Ok (Value.Str data) -> Ok { data = Some data; attempts = 1; rpc_note = 0 }
  | Ok Value.Unit -> Ok { data = None; attempts = 1; rpc_note = 0 }
  | Ok v -> Error (Fmt.str "unexpected extension value %a" Value.pp v)
  | Error e -> Error e

let register (api : Api.t) = (Api.ext_exn api).Api.register program
