(** Leader election (paper Figure 11) — parameterized over its two roots so
    the same machinery also implements the lock recipe (a lock is an
    election over a waiter queue).

    Traditional: each candidate creates a liveness-bound object under
    [member_root]; the member with the lowest creation time is the leader;
    non-leaders wait for membership changes and re-check (k+1 RPCs each
    round on ZooKeeper).  Extension-based: one blocking RPC; a combined
    operation/event extension (§6.1.4) monitors the caller, parks it until
    its grant object appears, and — when a member object dies — appoints
    the next leader server-side. *)

open Edc_core
module Api = Coord_api

type roots = {
  member_root : string;  (** liveness-bound member objects live here *)
  grant_root : string;  (** grant markers: [grant_root ^ "/<id>"] *)
  name : string;  (** extension name *)
}

let election_roots = { member_root = "/clients"; grant_root = "/leader"; name = "leader-elect" }

let member roots id = roots.member_root ^ "/" ^ string_of_int id
let grant roots id = roots.grant_root ^ "/" ^ string_of_int id

(** The combined operation/event extension of Figure 11 (right). *)
let program roots =
  let open Ast in
  let concat a b = Binop (Concat, a, b) in
  Program.make roots.name
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_block ];
          op_oid = Subscription.Under roots.grant_root } ]
    ~event_subs:
      [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
          ev_oid = Subscription.Under roots.member_root } ]
    ~on_operation:
      [
        (* E2-E4: monitor the calling client, then park it until its grant
           object exists.  If it is already the oldest member, grant
           immediately (corner case the paper omits). *)
        Let ("me", Call ("str_of_int", [ Param "client" ]));
        Do (Svc (Svc_monitor, [ concat (Str_lit (roots.member_root ^ "/")) (Var "me") ]));
        Do (Svc (Svc_block, [ Param "oid" ]));
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit roots.member_root ]));
        Let ("ldr", Call ("min_by_ctime", [ Var "objs" ]));
        If
          ( Binop (Eq, Field (Var "ldr", "id"),
              concat (Str_lit (roots.member_root ^ "/")) (Var "me")),
            [
              If
                ( Not (Svc (Svc_exists, [ Param "oid" ])),
                  [ Do (Svc (Svc_create, [ Param "oid"; Str_lit "" ])) ],
                  [] );
            ],
            [] );
      ]
    ~on_event:
      [
        (* E7-E11: a member object disappeared (abdication or failure).
           Clean up the departed member's grant marker, then appoint the
           now-oldest member by creating its grant object — which unblocks
           its parked call. *)
        Let ("gone", Call ("str_suffix_after", [ Param "oid"; Str_lit "/" ]));
        Do (Svc (Svc_delete, [ concat (Str_lit (roots.grant_root ^ "/")) (Var "gone") ]));
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit roots.member_root ]));
        If
          ( Not (Call ("list_empty", [ Var "objs" ])),
            [
              Let ("ldr", Call ("min_by_ctime", [ Var "objs" ]));
              Let ("lid", Call ("str_suffix_after", [ Field (Var "ldr", "id"); Str_lit "/" ]));
              If
                ( Not (Svc (Svc_exists, [ concat (Str_lit (roots.grant_root ^ "/")) (Var "lid") ])),
                  [ Do (Svc (Svc_create,
                       [ concat (Str_lit (roots.grant_root ^ "/")) (Var "lid"); Str_lit "" ])) ],
                  [] );
            ],
            [] );
      ]
    ()

(** [setup api roots] creates the two root objects (idempotent). *)
let setup (api : Api.t) roots =
  let mk oid =
    match api.create ~oid ~data:"" with
    | Ok _ | Error ("exists" | "node exists") -> Ok ()
    | Error e -> Error e
  in
  Result.bind (mk roots.member_root) (fun () -> mk roots.grant_root)

(* ------------------------------------------------------------------ *)
(* Traditional implementation (Figure 11, left)                        *)
(* ------------------------------------------------------------------ *)

(** Per-client state of the traditional recipe.  Member objects carry a
    fresh per-incarnation name: reusing the same name across abdications
    makes a delete-then-recreate invisible to membership-set comparison
    and loses wakeups (the corner-case handling the paper's Figure 11
    omits; ZooKeeper's production recipes use sequential nodes for the
    same reason). *)
type handle = { mutable incarnation : int; mutable entry : string option }

let new_handle () = { incarnation = 0; entry = None }

(** [become_leader_traditional api roots handle] blocks (from the calling
    fiber) until this client is the leader. *)
let become_leader_traditional (api : Api.t) roots handle =
  let ( let* ) = Result.bind in
  let* me =
    match handle.entry with
    | Some me -> Ok me
    | None ->
        handle.incarnation <- handle.incarnation + 1;
        let me =
          Printf.sprintf "%s/%d-%06d" roots.member_root api.Api.client_id
            handle.incarnation
        in
        let* () =
          match api.monitor ~oid:me with
          | Ok () -> Ok ()
          | Error e -> Error e
        in
        handle.entry <- Some me;
        Ok me
  in
  let rec wait_turn () =
    let* objs = api.sub_objects ~oid:roots.member_root in
    match Api.sort_by_ctime objs with
    | [] -> Error "not registered"
    | leader :: _ ->
        if String.equal leader.Api.oid me then Ok ()
        else
          let seen = List.map (fun (o : Api.obj) -> o.Api.oid) objs in
          let* () = api.await_change ~oid:roots.member_root ~seen in
          wait_turn ()
  in
  wait_turn ()

(** [abdicate_traditional api roots handle] deletes the member object (the
    service notifies the others). *)
let abdicate_traditional (api : Api.t) roots handle =
  let ( let* ) = Result.bind in
  match handle.entry with
  | None -> Ok ()
  | Some me ->
      handle.entry <- None;
      let* _ = api.delete ~oid:me in
      let* () = api.signal_change ~oid:roots.member_root in
      Ok ()

(* ------------------------------------------------------------------ *)
(* Extension-based implementation (Figure 11, right)                   *)
(* ------------------------------------------------------------------ *)

(** [become_leader_ext api roots] — one blocking remote call (C2).  The
    extension's [monitor] creates our liveness object server-side; we keep
    it alive client-side (lease renewal where the system needs it). *)
let become_leader_ext (api : Api.t) roots =
  let ext = Api.ext_exn api in
  ext.Api.keep_alive (member roots api.Api.client_id);
  match ext.Api.invoke_block (grant roots api.Api.client_id) with
  | Ok _ -> Ok ()
  | Error e -> Error e

(** [abdicate_ext api roots] — delete the member object; the event
    extension cleans up the grant marker and appoints the successor. *)
let abdicate_ext (api : Api.t) roots =
  match api.delete ~oid:(member roots api.Api.client_id) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let register (api : Api.t) roots = (Api.ext_exn api).Api.register (program roots)
