(** Counting semaphore — a fifth recipe beyond the paper's four (§6.1.1
    names semaphores as a primary use of shared counters).

    Capacity K, stored in a config object.  Holders own liveness-bound
    member objects; the K members with the oldest creation times hold the
    permits.  The extension-based acquire is a single blocking RPC; the
    server-side event extension re-computes the permit set whenever a
    member departs (release or crash), exercising the DSL's nested
    for-each (rank computation) within the verifier's nesting bound. *)

open Edc_core
module Api = Coord_api

type roots = {
  member_root : string;
  grant_root : string;
  config_oid : string;  (** object whose data is the capacity K *)
  name : string;
}

let semaphore_roots ?(base = "/sem") () =
  {
    member_root = base ^ "q";
    grant_root = base ^ "g";
    config_oid = base ^ "cfg";
    name = "sem" ^ String.map (fun c -> if c = '/' then '-' else c) base;
  }

let member roots id = roots.member_root ^ "/" ^ string_of_int id
let grant roots id = roots.grant_root ^ "/" ^ string_of_int id

(** Rank of entry [o] among [objs] by (ctime) — the number of strictly
    older members — computed in the DSL. *)
let rank_of ~objs_var ~obj_var ~rank_var =
  let open Ast in
  [
    Let (rank_var, Int_lit 0);
    For_each ("p", Var objs_var,
      [
        If
          ( Binop (Lt, Field (Var "p", "ctime"), Field (Var obj_var, "ctime")),
            [ Assign (rank_var, Binop (Add, Var rank_var, Int_lit 1)) ],
            [] );
      ]);
  ]

let program roots =
  let open Ast in
  let concat a b = Binop (Concat, a, b) in
  let capacity =
    Call ("int_of_str", [ Field (Svc (Svc_read, [ Str_lit roots.config_oid ]), "data") ])
  in
  Program.make roots.name
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_block ];
          op_oid = Subscription.Under roots.grant_root } ]
    ~event_subs:
      [ { Subscription.ev_kinds = [ Subscription.E_deleted ];
          ev_oid = Subscription.Under roots.member_root } ]
    ~on_operation:
      ([
         Let ("me", Call ("str_of_int", [ Param "client" ]));
         Do (Svc (Svc_monitor, [ concat (Str_lit (roots.member_root ^ "/")) (Var "me") ]));
         Do (Svc (Svc_block, [ Param "oid" ]));
         Let ("k", capacity);
         Let ("objs", Svc (Svc_sub_objects, [ Str_lit roots.member_root ]));
         Let ("mine",
              Svc (Svc_read, [ concat (Str_lit (roots.member_root ^ "/")) (Var "me") ]));
       ]
      @ rank_of ~objs_var:"objs" ~obj_var:"mine" ~rank_var:"rank"
      @ [
          If
            ( Binop (Lt, Var "rank", Var "k"),
              [
                If
                  ( Not (Svc (Svc_exists, [ Param "oid" ])),
                    [ Do (Svc (Svc_create, [ Param "oid"; Str_lit "" ])) ],
                    [] );
              ],
              [] );
        ])
    ~on_event:
      [
        (* a member departed: retire its grant, then hand permits to the
           K oldest members that lack one *)
        Let ("gone", Call ("str_suffix_after", [ Param "oid"; Str_lit "/" ]));
        Do (Svc (Svc_delete, [ concat (Str_lit (roots.grant_root ^ "/")) (Var "gone") ]));
        Let ("k", capacity);
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit roots.member_root ]));
        For_each ("o", Var "objs",
          Ast.[
            Let ("rank", Int_lit 0);
            For_each ("p", Var "objs",
              [
                If
                  ( Binop (Lt, Field (Var "p", "ctime"), Field (Var "o", "ctime")),
                    [ Assign ("rank", Binop (Add, Var "rank", Int_lit 1)) ],
                    [] );
              ]);
            If
              ( Binop (Lt, Var "rank", Var "k"),
                [
                  Let ("lid", Call ("str_suffix_after", [ Field (Var "o", "id"); Str_lit "/" ]));
                  If
                    ( Not (Svc (Svc_exists,
                          [ Binop (Concat, Str_lit (roots.grant_root ^ "/"), Var "lid") ])),
                      [ Do (Svc (Svc_create,
                            [ Binop (Concat, Str_lit (roots.grant_root ^ "/"), Var "lid");
                              Str_lit "" ])) ],
                      [] );
                ],
                [] );
          ]);
      ]
    ()

(** [setup api roots ~capacity] creates roots and the config object. *)
let setup (api : Api.t) roots ~capacity =
  let mk oid data =
    match api.create ~oid ~data with
    | Ok _ | Error ("exists" | "node exists") -> Ok ()
    | Error e -> Error e
  in
  let ( let* ) = Result.bind in
  let* () = mk roots.member_root "" in
  let* () = mk roots.grant_root "" in
  mk roots.config_oid (string_of_int capacity)

(* ------------------------------------------------------------------ *)
(* Traditional implementation                                          *)
(* ------------------------------------------------------------------ *)

type handle = { mutable incarnation : int; mutable entry : string option }

let new_handle () = { incarnation = 0; entry = None }

let obj_rank objs (mine : Api.obj) =
  List.length
    (List.filter
       (fun (o : Api.obj) ->
         (o.Api.ctime, o.Api.oid) < (mine.Api.ctime, mine.Api.oid))
       objs)

(** [acquire_traditional api roots handle ~capacity] blocks until one of
    the K permits is held. *)
let acquire_traditional (api : Api.t) roots handle ~capacity =
  let ( let* ) = Result.bind in
  let* me =
    match handle.entry with
    | Some me -> Ok me
    | None ->
        handle.incarnation <- handle.incarnation + 1;
        let me =
          Printf.sprintf "%s/%d-%06d" roots.member_root api.Api.client_id
            handle.incarnation
        in
        let* () = api.monitor ~oid:me in
        handle.entry <- Some me;
        Ok me
  in
  let rec wait_turn () =
    let* objs = api.sub_objects ~oid:roots.member_root in
    match List.find_opt (fun (o : Api.obj) -> o.Api.oid = me) objs with
    | None -> Error "not registered"
    | Some mine ->
        if obj_rank objs mine < capacity then Ok ()
        else
          let seen = List.map (fun (o : Api.obj) -> o.Api.oid) objs in
          let* () = api.await_change ~oid:roots.member_root ~seen in
          wait_turn ()
  in
  wait_turn ()

let release_traditional (api : Api.t) roots handle =
  let ( let* ) = Result.bind in
  match handle.entry with
  | None -> Ok ()
  | Some me ->
      handle.entry <- None;
      let* _ = api.delete ~oid:me in
      api.signal_change ~oid:roots.member_root

(* ------------------------------------------------------------------ *)
(* Extension-based implementation                                      *)
(* ------------------------------------------------------------------ *)

(** [acquire_ext api roots] — one blocking RPC. *)
let acquire_ext (api : Api.t) roots =
  let ext = Api.ext_exn api in
  ext.Api.keep_alive (member roots api.Api.client_id);
  match ext.Api.invoke_block (grant roots api.Api.client_id) with
  | Ok _ -> Ok ()
  | Error e -> Error e

(** [release_ext api roots] — one RPC; the event extension retires the
    grant and promotes the next waiter. *)
let release_ext (api : Api.t) roots =
  match api.delete ~oid:(member roots api.Api.client_id) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let register (api : Api.t) roots = (Api.ext_exn api).Api.register (program roots)
