(** Distributed lock — mutual exclusion built on the election machinery (a
    lock is leader election over a waiter queue; cf. the Chubby discussion
    in §2).  The holder's queue entry is liveness-bound, so a crashed
    holder releases the lock automatically. *)

module Api = Coord_api

val lock_roots : ?name:string -> unit -> Election.roots

val setup : Api.t -> Election.roots -> (unit, string) result
val register : Api.t -> Election.roots -> (unit, string) result
val program : Election.roots -> Edc_core.Program.t

(** Blocks until the lock is held. *)
val acquire_traditional :
  Api.t -> Election.roots -> Election.handle -> (unit, string) result

val release_traditional :
  Api.t -> Election.roots -> Election.handle -> (unit, string) result

(** Single blocking RPC. *)
val acquire_ext : Api.t -> Election.roots -> (unit, string) result

(** Single RPC. *)
val release_ext : Api.t -> Election.roots -> (unit, string) result
