(** Table 2, DepSpace column: the abstract API over the DepSpace (and EDS)
    client library, using the object-tuple convention of
    {!Edc_depspace.Objects}.

    [await_change]/[signal_change] use an epoch-token scheme in the spirit
    of DepSpace's blocking reads (§5.2.1: clients wait by issuing a read
    that blocks until the object is created): the signaller replaces an
    epoch tuple [<oid ^ "#epoch", n>] with [n + 1]; waiters read the
    current epoch and issue a blocking [rd] for the tuple carrying the
    *next* value. *)

open Edc_depspace
open Edc_eds

let epoch_name oid = oid ^ "#epoch"
let epoch_tuple ~oid ~n = Tuple.[ Str (epoch_name oid); Int n ]
let epoch_template oid = Tuple.[ Exact (Str (epoch_name oid)); Any ]

(* one token tuple per epoch; tokens are never removed, so a waiter that
   read epoch [n] can always complete its blocking read for token [n+1]
   even if further bumps happen concurrently *)
let token_name oid n = Printf.sprintf "%s#tok%d" oid n
let token_tuple ~oid ~n = Tuple.[ Str (token_name oid n) ]
let token_exact oid ~n = Tuple.[ Exact (Str (token_name oid n)) ]

let obj_of (v : Objects.view) =
  {
    Coord_api.oid = v.Objects.oid;
    data = v.Objects.data;
    version = v.Objects.version;
    ctime = v.Objects.ctime;
  }

(** [of_client ~extensible ~monitor_lease c] builds the API. *)
let of_client ~extensible ?(monitor_lease = Edc_simnet.Sim_time.sec 8) c =
  let create ~oid ~data =
    (* the paper's create(o) maps to out(o); keep create semantics by
       refusing to duplicate via cas *)
    match
      Ds_client.cas c (Objects.template oid)
        (Objects.tuple ~oid ~data ~version:0 ~ctime:0)
    with
    | Ok true -> Ok oid
    | Ok false -> Error "exists"
    | Error e -> Error e
  in
  let delete ~oid =
    match Ds_client.inp c (Objects.template oid) with
    | Ok (Some _) -> Ok true
    | Ok None -> Ok false
    | Error e -> Error e
  in
  let read ~oid =
    match Ds_client.rdp c (Objects.template oid) with
    | Ok (Some t) -> Ok (Option.map obj_of (Objects.decode t))
    | Ok None -> Ok None
    | Error e -> Error e
  in
  let update ~oid ~data =
    match
      Ds_client.replace c (Objects.template oid)
        (Objects.tuple ~oid ~data ~version:0 ~ctime:0)
    with
    | Ok true -> Ok ()
    | Ok false -> Error "no object"
    | Error e -> Error e
  in
  let cas ~expected ~data =
    (* replace(o, cc, nc): only replace if the current content is cc *)
    let oid = expected.Coord_api.oid in
    Ds_client.replace c
      (Objects.cas_template oid ~data:expected.Coord_api.data)
      (Objects.tuple ~oid ~data
         ~version:(expected.Coord_api.version + 1)
         ~ctime:expected.Coord_api.ctime)
  in
  let sub_objects ~oid =
    (* rdAll(<o, SUB_ANY>): one RPC *)
    match Ds_client.rd_all c (Objects.sub_template oid) with
    | Ok tuples -> Ok (List.filter_map Objects.decode tuples |> List.map obj_of)
    | Error e -> Error e
  in
  let sub_object_ids ~oid =
    match Ds_client.rd_all c (Objects.sub_template oid) with
    | Ok tuples ->
        Ok
          (List.filter_map
             (fun t -> Option.map (fun v -> v.Objects.oid) (Objects.decode t))
             tuples)
    | Error e -> Error e
  in
  let block ~oid =
    match Ds_client.rd c (Objects.template oid) with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let read_epoch oid =
    match Ds_client.rdp c (epoch_template oid) with
    | Ok (Some Tuple.[ Str _; Int n ]) -> n
    | _ -> 0
  in
  let await_change ~oid ~seen =
    ignore seen;
    let n = read_epoch oid in
    match Ds_client.rd c (token_exact oid ~n:(n + 1)) with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let signal_change ~oid =
    (* atomically advance the epoch counter (retry on races), then create
       the matching token; token creation is idempotent via cas *)
    let rec bump tries =
      if tries > 64 then Error "epoch bump starved"
      else
        let n = read_epoch oid in
        if n = 0 && Ds_client.cas c (epoch_template oid) (epoch_tuple ~oid ~n:1) = Ok true
        then Ok 1
        else
          match
            Ds_client.replace c
              Tuple.[ Exact (Str (epoch_name oid)); Exact (Int n) ]
              (epoch_tuple ~oid ~n:(n + 1))
          with
          | Ok true -> Ok (n + 1)
          | Ok false -> bump (tries + 1)
          | Error e -> Error e
    in
    match bump 0 with
    | Error e -> Error e
    | Ok n -> (
        match Ds_client.cas c (token_exact oid ~n) (token_tuple ~oid ~n) with
        | Ok _ -> Ok ()
        | Error e -> Error e)
  in
  let monitor ~oid =
    Ds_client.monitor c
      (Objects.tuple ~oid ~data:"" ~version:0 ~ctime:0)
      ~lease:monitor_lease
  in
  let ext =
    if not extensible then None
    else
      Some
        {
          Coord_api.register = (fun program -> Eds_client.register c program);
          acknowledge = (fun name -> Eds_client.acknowledge c name);
          invoke_read = (fun oid -> Eds_client.ext_read c oid);
          invoke_block = (fun oid -> Eds_client.block c oid);
          keep_alive = (fun oid -> Eds_client.keep_alive c ~oid ~lease:monitor_lease);
        }
  in
  {
    Coord_api.client_id = Ds_client.addr c;
    create;
    delete;
    read;
    update;
    cas;
    sub_objects;
    sub_object_ids;
    block;
    await_change;
    signal_change;
    monitor;
    ext;
  }
