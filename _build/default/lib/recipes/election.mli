(** Leader election (paper Figure 11), parameterized over its roots so the
    same machinery implements the lock recipe.

    Traditional: liveness-bound member objects; the oldest member leads;
    others watch for membership changes and re-check.  Extension: one
    blocking RPC; a combined operation/event extension (§6.1.4) monitors
    the caller, parks it until its grant object appears, and appoints
    successors server-side when members die. *)

open Edc_core
module Api = Coord_api

type roots = {
  member_root : string;  (** liveness-bound member objects *)
  grant_root : string;  (** grant markers [grant_root ^ "/<id>"] *)
  name : string;  (** extension name *)
}

val election_roots : roots
val member : roots -> int -> string
val grant : roots -> int -> string

(** The combined operation/event extension of Figure 11 (right). *)
val program : roots -> Program.t

(** Create the two root objects (idempotent). *)
val setup : Api.t -> roots -> (unit, string) result

(** Per-client state of the traditional recipe.  Member objects get fresh
    per-incarnation names: reusing names across abdications makes a
    delete+recreate invisible to membership comparison and loses wakeups —
    the corner case Figure 11 omits (ZooKeeper's production recipes use
    sequential nodes for the same reason). *)
type handle

val new_handle : unit -> handle

(** Blocks (from the calling fiber) until this client leads. *)
val become_leader_traditional : Api.t -> roots -> handle -> (unit, string) result

val abdicate_traditional : Api.t -> roots -> handle -> (unit, string) result

(** One blocking remote call (C2); the extension's [monitor] creates the
    liveness object server-side and we keep it alive client-side. *)
val become_leader_ext : Api.t -> roots -> (unit, string) result

(** One RPC; the event extension cleans the grant marker and appoints the
    successor. *)
val abdicate_ext : Api.t -> roots -> (unit, string) result

val register : Api.t -> roots -> (unit, string) result
