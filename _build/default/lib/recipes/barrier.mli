(** Distributed barrier (paper Figure 9).

    An instance lives under a base object (must start with ["/bar"] for
    the extension subscription) whose data holds the threshold; entries
    are sub-objects of [base ^ "/e"], the ready flag is [base ^ "/ready"],
    and the extension's blocking trigger is [base ^ "/go"]. *)

open Edc_core
module Api = Coord_api

val extension_name : string
val base_prefix : string
val entries : string -> string
val ready : string -> string
val go : string -> string

(** The extension of Figure 9 (right): registers the caller, counts
    entries, and either parks the caller for the ready-creation event or
    creates the ready flag (unblocking everyone at once). *)
val program : Program.t

(** Create a barrier instance (admin-side; not a measured client cost). *)
val setup : Api.t -> base:string -> threshold:int -> (unit, string) result

(** Figure 9 (left): create entry, count, block-or-complete (2-3 RPCs). *)
val enter_traditional :
  Api.t -> base:string -> threshold:int -> (unit, string) result

(** Figure 9 (right): one blocking remote call. *)
val enter_ext : Api.t -> base:string -> (unit, string) result

val register : Api.t -> (unit, string) result
