(** Distributed queue (paper Figure 7): enqueue is one create in both
    variants; traditional dequeue is subObjects + sort + racy delete,
    extension dequeue is one atomic RPC. *)

open Edc_core
module Api = Coord_api

val root : string
val head_trigger : string
val extension_name : string

(** The extension of Figure 7 (right). *)
val program : Program.t

val setup : Api.t -> (unit, string) result

(** Unique element ids (the paper's [add(ELEMENTID eid, data)]). *)
val make_eid : Api.t -> int -> string

(** Identical in both variants (T3 / C2). *)
val add : Api.t -> eid:string -> data:string -> (unit, string) result

type removal = {
  data : string option;  (** [None] = queue empty *)
  attempts : int;  (** full restarts of the traditional loop *)
  rpc_note : int;
}

(** Figure 7 (left): learn, sort by creation time, race to delete. *)
val remove_traditional : Api.t -> (removal, string) result

(** Figure 7 (right): a single remote call. *)
val remove_ext : Api.t -> (removal, string) result

val register : Api.t -> (unit, string) result
