(** Distributed barrier (paper Figure 9).

    A barrier instance lives under a base object (the experiment uses
    ["/bar<round>"]) whose data holds the threshold; entries are
    sub-objects of [base ^ "/e"]; the ready flag is [base ^ "/ready"].

    Traditional enter: register (create), count entries (1–2 RPCs), then
    either block on the ready object or create it.  Extension-based enter:
    one blocking RPC on [base ^ "/go"]; the extension registers, counts,
    and either parks the client for the ready-creation event (the block is
    non-blocking server-side, §6.1.3) or creates the ready flag, which
    unblocks everyone at once. *)

open Edc_core
module Api = Coord_api

let extension_name = "barrier-enter"

(** Bases must start with this prefix for the subscription to match. *)
let base_prefix = "/bar"

let entries base = base ^ "/e"
let ready base = base ^ "/ready"
let go base = base ^ "/go"

(** The extension of Figure 9 (right): the oid is [base ^ "/go"], the
    threshold is read from the base object's data (written at setup). *)
let program =
  let open Ast in
  Program.make extension_name
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_block ];
          op_oid = Subscription.Starts_with base_prefix } ]
    ~on_operation:
      [
        (* base = oid minus the trailing "/go" *)
        Let ("base",
             Call ("str_sub",
               [ Param "oid"; Int_lit 0;
                 Binop (Sub, Call ("str_len", [ Param "oid" ]), Int_lit 3) ]));
        Do (Svc (Svc_create,
             [ Binop (Concat, Var "base",
                 Binop (Concat, Str_lit "/e/",
                   Call ("str_of_int", [ Param "client" ]))); Str_lit "" ]));
        Let ("objs",
             Svc (Svc_sub_objects, [ Binop (Concat, Var "base", Str_lit "/e") ]));
        Let ("thr",
             Call ("int_of_str",
               [ Field (Svc (Svc_read, [ Var "base" ]), "data") ]));
        If
          ( Binop (Lt, Call ("list_len", [ Var "objs" ]), Var "thr"),
            [ Do (Svc (Svc_block, [ Binop (Concat, Var "base", Str_lit "/ready") ])) ],
            [ Do (Svc (Svc_create, [ Binop (Concat, Var "base", Str_lit "/ready"); Str_lit "" ])) ] );
      ]
    ()

(** [setup api ~base ~threshold] creates the barrier instance (admin-side,
    not part of the measured client cost). *)
let setup (api : Api.t) ~base ~threshold =
  let ( let* ) = Result.bind in
  let* _ = api.create ~oid:base ~data:(string_of_int threshold) in
  let* _ = api.create ~oid:(entries base) ~data:"" in
  Ok ()

(** Figure 9 (left): the traditional client implementation. *)
let enter_traditional (api : Api.t) ~base ~threshold =
  let ( let* ) = Result.bind in
  let* _ =
    api.create
      ~oid:(entries base ^ "/" ^ string_of_int api.Api.client_id)
      ~data:""
  in
  let* ids = api.sub_object_ids ~oid:(entries base) in
  if List.length ids < threshold then api.block ~oid:(ready base)
  else
    match api.create ~oid:(ready base) ~data:"" with
    | Ok _ -> Ok ()
    | Error ("exists" | "node exists") -> Ok () (* raced with another completer *)
    | Error e -> Error e

(** Figure 9 (right): one blocking remote call. *)
let enter_ext (api : Api.t) ~base =
  match (Api.ext_exn api).Api.invoke_block (go base) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let register (api : Api.t) = (Api.ext_exn api).Api.register program
