(** Shared counter (paper Figure 5).

    Traditional: read the counter, add one locally, write back with
    compare-and-swap; retry on contention.  Extension-based: one RPC to the
    trigger object; the extension increments atomically server-side. *)

open Edc_core
module Api = Coord_api

let counter_oid = "/ctr"
let trigger_oid = "/ctr-increment"
let extension_name = "ctr-increment"

(** The extension of Figure 5 (bottom), in the DSL. *)
let program =
  let open Ast in
  Program.make extension_name
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact trigger_oid } ]
    ~on_operation:
      [
        Let ("c", Call ("int_of_str", [ Field (Svc (Svc_read, [ Str_lit counter_oid ]), "data") ]));
        Do (Svc (Svc_update,
             [ Str_lit counter_oid;
               Call ("str_of_int", [ Binop (Add, Var "c", Int_lit 1) ]) ]));
        Return (Binop (Add, Var "c", Int_lit 1));
      ]
    ()

(** [setup api] creates the counter object (idempotent). *)
let setup (api : Api.t) =
  match api.create ~oid:counter_oid ~data:"0" with
  | Ok _ -> Ok ()
  | Error "exists" -> Ok ()
  | Error e -> if e = "node exists" then Ok () else Error e

type result = { value : int; attempts : int }

(** Figure 5 (top): the traditional client implementation. *)
let increment_traditional (api : Api.t) =
  let rec go attempts =
    match api.read ~oid:counter_oid with
    | Error e -> Error e
    | Ok None -> Error "counter missing"
    | Ok (Some obj) -> (
        match int_of_string_opt obj.Api.data with
        | None -> Error "corrupt counter"
        | Some c -> (
            match api.cas ~expected:obj ~data:(string_of_int (c + 1)) with
            | Ok true -> Ok { value = c + 1; attempts }
            | Ok false -> go (attempts + 1)
            | Error e -> Error e))
  in
  go 1

(** Figure 5 (bottom): one remote call. *)
let increment_ext (api : Api.t) =
  match (Api.ext_exn api).Api.invoke_read trigger_oid with
  | Ok (Value.Int n) -> Ok { value = n; attempts = 1 }
  | Ok v -> Error (Fmt.str "unexpected extension value %a" Value.pp v)
  | Error e -> Error e

let register (api : Api.t) = (Api.ext_exn api).Api.register program
