(** Discrete-event simulation engine.

    A single virtual clock and an event heap.  Components schedule closures
    to run at future instants; [run] drains the heap in timestamp order,
    advancing the clock.  Everything in the repository — network delivery,
    server processing, client think time, timeouts — is driven through this
    one loop, which is what makes whole-cluster runs deterministic. *)

type t = {
  mutable now : Sim_time.t;
  events : (unit -> unit) Event_queue.t;
  rng : Rng.t;
  mutable stopped : bool;
  mutable executed : int;
}

let create ?(seed = 42) () =
  {
    now = Sim_time.zero;
    events = Event_queue.create ();
    rng = Rng.create seed;
    stopped = false;
    executed = 0;
  }

let now t = t.now
let rng t = t.rng

(** [executed_events t] counts events processed so far (useful in tests and
    as a runaway guard). *)
let executed_events t = t.executed

(** [schedule t ~after f] runs [f] at [now + after].  Negative delays are
    clamped to zero. *)
let schedule t ~after f =
  let after = Sim_time.max after Sim_time.zero in
  Event_queue.push t.events ~time:(Sim_time.add t.now after) f

(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)
let schedule_at t ~at f =
  Event_queue.push t.events ~time:(Sim_time.max at t.now) f

(** [stop t] makes [run] return after the current event. *)
let stop t = t.stopped <- true

(** [step t] executes the earliest pending event; returns [false] when the
    heap is empty. *)
let step t =
  match Event_queue.pop t.events with
  | None -> false
  | Some (time, f) ->
      t.now <- Sim_time.max t.now time;
      t.executed <- t.executed + 1;
      f ();
      true

(** [run ?until ?max_events t] drains the event heap in order.  Stops when
    the heap is empty, when the next event lies beyond [until], after
    [max_events] events, or after [stop].  Events beyond [until] remain
    queued, and the clock is advanced to [until] so a subsequent [run] picks
    up where this one left off. *)
let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with None -> -1 | Some n -> n) in
  let continue_ = ref true in
  while !continue_ do
    if t.stopped || !budget = 0 then continue_ := false
    else
      match Event_queue.peek_time t.events with
      | None -> continue_ := false
      | Some next -> (
          match until with
          | Some horizon when Sim_time.(horizon < next) ->
              t.now <- Sim_time.max t.now horizon;
              continue_ := false
          | _ ->
              ignore (step t : bool);
              if !budget > 0 then decr budget)
  done;
  match until with
  | Some horizon when Event_queue.is_empty t.events ->
      (* No more events: still report the requested horizon as "now". *)
      t.now <- Sim_time.max t.now horizon
  | _ -> ()

(** [pending t] is the number of queued events. *)
let pending t = Event_queue.length t.events
