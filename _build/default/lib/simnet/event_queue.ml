(** Priority queue of timed events.

    A binary min-heap keyed by [(time, seq)].  The sequence number is a
    monotonically increasing tie-breaker assigned at insertion, so events
    scheduled for the same instant fire in insertion order.  This stable
    ordering is what makes the whole simulation deterministic. *)

type 'a entry = { time : Sim_time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size
let is_empty q = q.size = 0

let grow q witness =
  let capacity = Array.length q.heap in
  if q.size >= capacity then begin
    let new_capacity = Stdlib.max 16 (2 * capacity) in
    let heap = Array.make new_capacity witness in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && entry_before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

(** [push q ~time payload] inserts an event; events with equal time pop in
    insertion order. *)
let push q ~time payload =
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q e;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

(** [pop q] removes and returns the earliest event as [(time, payload)]. *)
let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

(** [clear q] drops all pending events. *)
let clear q = q.size <- 0
