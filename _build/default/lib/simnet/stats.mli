(** Measurement accumulators for the evaluation harness. *)

(** Streaming summary statistics (Welford). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Sample series with exact percentiles (sorted on demand). *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Nearest-rank percentile, [p] in [0, 100]. *)
  val percentile : t -> float -> float

  val median : t -> float
  val p99 : t -> float
  val min : t -> float
  val max : t -> float
  val clear : t -> unit
end

(** Event counter with rate conversion over a simulated window. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val clear : t -> unit

  (** Events per second of simulated time. *)
  val rate : t -> window:Sim_time.t -> float
end
