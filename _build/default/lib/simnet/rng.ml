(** Deterministic pseudo-random number generator.

    SplitMix64: small state, good statistical quality, and — crucially for a
    deterministic simulator — supports cheap splitting so that independent
    components (network jitter, client think times, ...) can each own a
    stream whose draws do not perturb the others. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(** [split t] derives an independent generator; [t] advances by one step. *)
let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_raw t }

(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next_raw t) land max_int in
  r mod bound

(** [float t] draws uniformly from [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** [uniform t lo hi] draws a float uniformly from [lo, hi). *)
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(** [bool t] draws a fair coin flip. *)
let bool t = Int64.logand (next_raw t) 1L = 1L

(** [pick t arr] draws a uniformly random element of a non-empty array. *)
let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** [exponential t ~mean] draws from an exponential distribution; used for
    memoryless think times and jitter. *)
let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)
