(** A serial CPU resource.

    Work submitted through {!exec} occupies the processor for its cost,
    one task at a time, in submission order: under load, completion times
    queue up behind each other, which is what actually caps a server's
    throughput (a plain scheduled delay would let any number of requests
    "process" in parallel and never saturate). *)

type t = { sim : Sim.t; rng : Rng.t; mutable busy_until : Sim_time.t }

let create sim = { sim; rng = Rng.split (Sim.rng sim); busy_until = Sim_time.zero }

(** [exec t ~cost f] runs [f] when the processor has spent [cost] on this
    task, after finishing everything submitted before it.  Costs carry
    ±25% multiplicative jitter: without it, uniform deterministic service
    times phase-lock closed-loop clients into artificial convoys in which
    conditional updates never conflict — real CPUs (and the paper's
    contention results) do not behave that way. *)
let exec t ~cost f =
  let cost = Sim_time.scale cost (0.75 +. (0.5 *. Rng.float t.rng)) in
  let start = Sim_time.max (Sim.now t.sim) t.busy_until in
  let finish = Sim_time.add start cost in
  t.busy_until <- finish;
  Sim.schedule_at t.sim ~at:finish f

(** Current backlog (how far in the future new work would start). *)
let backlog t =
  Sim_time.max Sim_time.zero (Sim_time.sub t.busy_until (Sim.now t.sim))
