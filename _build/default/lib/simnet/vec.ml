(** Growable vector (OCaml 5.1 predates [Dynarray]).

    Used for replication logs: append-heavy, random read, truncation on log
    repair after leader change. *)

type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length v = v.size
let is_empty v = v.size = 0

let push v x =
  if v.size >= Array.length v.data then begin
    let capacity = Stdlib.max 16 (2 * Array.length v.data) in
    let data = Array.make capacity x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get: out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set: out of bounds";
  v.data.(i) <- x

let last_opt v = if v.size = 0 then None else Some v.data.(v.size - 1)

(** [truncate v n] keeps the first [n] elements. *)
let truncate v n =
  if n < 0 || n > v.size then invalid_arg "Vec.truncate";
  v.size <- n

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.size (fun i -> v.data.(i))

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

(** [sub v pos len] copies a slice to a list. *)
let sub v pos len =
  if pos < 0 || len < 0 || pos + len > v.size then invalid_arg "Vec.sub";
  List.init len (fun i -> v.data.(pos + i))

(** [replace_from v pos xs] overwrites/extends the vector from index [pos]
    with [xs], truncating anything after (log repair). *)
let replace_from v pos xs =
  if pos < 0 || pos > v.size then invalid_arg "Vec.replace_from";
  truncate v pos;
  List.iter (push v) xs
