(** Simulated time: integer nanoseconds since simulation start.

    Integers (not floats) keep event ordering exact and runs bit-for-bit
    deterministic. *)

type t = int

val zero : t

(** Constructors. *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t
val of_float_s : float -> t

(** Conversions. *)

val to_ns : t -> int
val to_float_us : t -> float
val to_float_ms : t -> float
val to_float_s : t -> float

(** Arithmetic and comparison. *)

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** [scale t f] multiplies a duration by a float factor (jitter). *)
val scale : t -> float -> t

val pp : Format.formatter -> t -> unit
