(** Simulation tracing, gated by the [Logs] level; every line carries the
    virtual timestamp so traces of a deterministic run diff cleanly. *)

val src : Logs.src

val debugf : Sim.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val infof : Sim.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Install a [Fmt] reporter (call once from executables). *)
val setup_logging : Logs.level option -> unit
