(** A serial CPU resource.

    Work submitted through {!exec} occupies the processor one task at a
    time in submission order — under load, completions queue behind each
    other, which is what actually caps a server's throughput.  Costs carry
    ±25% deterministic jitter: uniform service times would phase-lock
    closed-loop clients into artificial convoys. *)

type t

val create : Sim.t -> t

(** [exec t ~cost f] runs [f] once the processor has finished everything
    submitted earlier plus [cost] for this task. *)
val exec : t -> cost:Sim_time.t -> (unit -> unit) -> unit

(** How far in the future newly submitted work would start. *)
val backlog : t -> Sim_time.t
