(** Simulation tracing, gated by the [Logs] level.

    Every line is prefixed with the virtual timestamp so traces from a
    deterministic run can be diffed between revisions. *)

let src = Logs.Src.create "edc.sim" ~doc:"Discrete-event simulation trace"

module Log = (val Logs.src_log src : Logs.LOG)

(** [debugf sim fmt ...] logs at debug level with the virtual timestamp. *)
let debugf sim fmt =
  Format.kasprintf
    (fun s -> Log.debug (fun m -> m "[%a] %s" Sim_time.pp (Sim.now sim) s))
    fmt

(** [infof sim fmt ...] logs at info level with the virtual timestamp. *)
let infof sim fmt =
  Format.kasprintf
    (fun s -> Log.info (fun m -> m "[%a] %s" Sim_time.pp (Sim.now sim) s))
    fmt

(** [setup_logging level] installs a [Fmt]-based reporter; call once from
    executables that want traces on stderr. *)
let setup_logging level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level
