(** Discrete-event simulation engine.

    One virtual clock and one event heap drive the whole repository —
    network delivery, server CPU, client think time, protocol timers —
    which is what makes entire-cluster runs bit-for-bit reproducible from
    a seed. *)

type t

(** [create ~seed ()] — a fresh simulation; equal seeds give equal runs. *)
val create : ?seed:int -> unit -> t

(** Current virtual time. *)
val now : t -> Sim_time.t

(** The root deterministic generator; split it per component. *)
val rng : t -> Rng.t

(** Events processed so far (runaway guard / test observability). *)
val executed_events : t -> int

(** [schedule t ~after f] runs [f] at [now + after] (clamped to now). *)
val schedule : t -> after:Sim_time.t -> (unit -> unit) -> unit

(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to now). *)
val schedule_at : t -> at:Sim_time.t -> (unit -> unit) -> unit

(** [stop t] makes {!run} return after the current event. *)
val stop : t -> unit

(** [step t] executes the earliest event; [false] when the heap is empty. *)
val step : t -> bool

(** [run ?until ?max_events t] drains events in timestamp order.  Stops at
    an empty heap, past [until] (later events stay queued; the clock
    advances to [until]), after [max_events], or on {!stop}. *)
val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit

(** Queued events. *)
val pending : t -> int
