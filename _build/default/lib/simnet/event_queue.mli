(** Priority queue of timed events: a binary min-heap keyed by
    [(time, seq)].  The insertion-order tie-break gives equal-time events
    a stable firing order — the root of the whole simulator's
    determinism. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q ~time payload] inserts; equal times pop in insertion order. *)
val push : 'a t -> time:Sim_time.t -> 'a -> unit

val peek_time : 'a t -> Sim_time.t option

(** [pop q] removes and returns the earliest event. *)
val pop : 'a t -> (Sim_time.t * 'a) option

val clear : 'a t -> unit
