(** Deterministic pseudo-random numbers (SplitMix64).

    Cheap splitting lets independent components (network jitter, CPU
    jitter, client think times) each own a stream whose draws do not
    perturb the others — a prerequisite for reproducible simulations. *)

type t

val create : int -> t

(** [split t] derives an independent generator; [t] advances one step. *)
val split : t -> t

(** [int t bound] draws uniformly from [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** [uniform t lo hi] draws uniformly from [lo, hi). *)
val uniform : t -> float -> float -> float

val bool : t -> bool

(** [pick t arr] draws a uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [exponential t ~mean] — memoryless durations / long-tailed jitter. *)
val exponential : t -> mean:float -> float
