(** Cooperative fibers over the simulator (OCaml 5 effect handlers).

    Client code — session loops, coordination recipes — reads in direct
    style ("issue RPC, block, continue") while actually yielding to the
    discrete-event loop.  Fibers resume via freshly scheduled events, so
    interleavings stay deterministic. *)

type 'a promise

(** [promise sim] — a fresh unfulfilled promise. *)
val promise : Sim.t -> 'a promise

val is_fulfilled : 'a promise -> bool
val value_opt : 'a promise -> 'a option

(** [on_fulfill p f] runs [f v] when [p] resolves (immediately via a
    scheduled event if already resolved). *)
val on_fulfill : 'a promise -> ('a -> unit) -> unit

(** [try_fulfill p v] resolves [p] unless already resolved. *)
val try_fulfill : 'a promise -> 'a -> bool

(** [fulfill p v] resolves [p]; raises [Invalid_argument] if resolved. *)
val fulfill : 'a promise -> 'a -> unit

(** [await p] suspends the calling fiber until [p] resolves.  Only valid
    inside a fiber started by {!spawn} / {!async}. *)
val await : 'a promise -> 'a

(** [spawn sim f] starts fiber [f] at the current instant. *)
val spawn : Sim.t -> (unit -> unit) -> unit

(** [async sim f] starts a fiber and returns a promise of its result. *)
val async : Sim.t -> (unit -> 'a) -> 'a promise

(** [sleep sim d] suspends the calling fiber for [d]. *)
val sleep : Sim.t -> Sim_time.t -> unit

(** [yield sim] lets other events at this instant run first. *)
val yield : Sim.t -> unit

(** [join ps] awaits every promise. *)
val join : 'a promise list -> unit

(** [await_timeout sim p ~timeout] — [None] on timeout; [p] itself may
    still resolve later. *)
val await_timeout : Sim.t -> 'a promise -> timeout:Sim_time.t -> 'a option
