lib/simnet/proc.mli: Sim Sim_time
