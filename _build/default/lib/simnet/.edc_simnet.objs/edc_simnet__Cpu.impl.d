lib/simnet/cpu.ml: Rng Sim Sim_time
