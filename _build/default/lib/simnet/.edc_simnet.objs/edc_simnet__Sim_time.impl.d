lib/simnet/sim_time.ml: Float Fmt Int Stdlib
