lib/simnet/net.ml: Hashtbl List Rng Sim Sim_time
