lib/simnet/net.mli: Sim Sim_time
