lib/simnet/proc.ml: Effect List Sim Sim_time
