lib/simnet/sim.mli: Rng Sim_time
