lib/simnet/trace.mli: Format Logs Sim
