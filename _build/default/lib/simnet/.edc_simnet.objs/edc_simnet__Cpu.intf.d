lib/simnet/cpu.mli: Sim Sim_time
