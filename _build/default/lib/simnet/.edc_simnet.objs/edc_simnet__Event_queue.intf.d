lib/simnet/event_queue.mli: Sim_time
