lib/simnet/stats.ml: Array Float Fmt Sim_time Stdlib
