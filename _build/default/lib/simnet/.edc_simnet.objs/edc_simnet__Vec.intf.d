lib/simnet/vec.mli:
