lib/simnet/rng.mli:
