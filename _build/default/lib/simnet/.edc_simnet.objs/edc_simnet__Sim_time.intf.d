lib/simnet/sim_time.mli: Format
