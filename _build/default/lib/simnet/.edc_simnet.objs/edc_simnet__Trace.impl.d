lib/simnet/trace.ml: Format Logs Logs_fmt Sim Sim_time
