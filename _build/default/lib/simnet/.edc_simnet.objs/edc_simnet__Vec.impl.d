lib/simnet/vec.ml: Array List Stdlib
