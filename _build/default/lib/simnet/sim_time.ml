(** Simulated time.

    Time is an integer number of nanoseconds since the start of the
    simulation.  Using integers (rather than floats) keeps event ordering
    exact and the simulation bit-for-bit deterministic. *)

type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

(** [of_float_s s] converts a duration in seconds to simulated time,
    rounding to the nearest nanosecond. *)
let of_float_s s = int_of_float (Float.round (s *. 1e9))

let to_ns t = t
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let to_float_s t = float_of_int t /. 1e9

let add = ( + )
let sub = ( - )
let compare = Int.compare
let equal = Int.equal
let ( < ) : t -> t -> bool = Stdlib.( < )
let ( <= ) : t -> t -> bool = Stdlib.( <= )
let min = Stdlib.min
let max = Stdlib.max

(** [scale t f] multiplies a duration by a float factor (used for jitter). *)
let scale t f = int_of_float (Float.round (float_of_int t *. f))

let pp ppf t =
  if t >= sec 1 then Fmt.pf ppf "%.3fs" (to_float_s t)
  else if t >= ms 1 then Fmt.pf ppf "%.3fms" (to_float_ms t)
  else if t >= us 1 then Fmt.pf ppf "%.1fus" (to_float_us t)
  else Fmt.pf ppf "%dns" t
