(** Growable vector (OCaml 5.1 predates [Dynarray]); used for replication
    logs: append-heavy, random read, truncation on log repair. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val last_opt : 'a t -> 'a option

(** [truncate v n] keeps the first [n] elements. *)
val truncate : 'a t -> int -> unit

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

(** [sub v pos len] copies a slice to a list. *)
val sub : 'a t -> int -> int -> 'a list

(** [replace_from v pos xs] overwrites from [pos] with [xs], truncating
    anything after (log repair after leader change). *)
val replace_from : 'a t -> int -> 'a list -> unit
