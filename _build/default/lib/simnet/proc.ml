(** Lightweight cooperative processes (fibers) on top of the simulator.

    Implemented with OCaml 5 effect handlers so client code — session loops,
    coordination recipes — can be written in direct style ("issue RPC, block
    for reply, continue") while actually yielding to the discrete-event
    loop.  A fiber blocks by awaiting a {!promise}; whoever fulfills the
    promise (a network delivery handler, a timer) resumes the fiber via a
    freshly scheduled simulator event, which keeps interleavings
    deterministic. *)

type 'a state = Pending of ('a -> unit) list | Fulfilled of 'a
type 'a promise = { sim : Sim.t; mutable state : 'a state }

type _ Effect.t += Await : 'a promise -> 'a Effect.t

let promise sim = { sim; state = Pending [] }

let is_fulfilled p =
  match p.state with Fulfilled _ -> true | Pending _ -> false

let value_opt p =
  match p.state with Fulfilled v -> Some v | Pending _ -> None

(** [on_fulfill p f] runs [f v] as soon as [p] is fulfilled with [v] (at the
    same simulated instant); if already fulfilled, [f] runs via a scheduled
    event at the current instant. *)
let on_fulfill p f =
  match p.state with
  | Fulfilled v -> Sim.schedule p.sim ~after:Sim_time.zero (fun () -> f v)
  | Pending waiters -> p.state <- Pending (f :: waiters)

(** [try_fulfill p v] resolves [p] unless already resolved; returns whether
    it did. *)
let try_fulfill p v =
  match p.state with
  | Fulfilled _ -> false
  | Pending waiters ->
      p.state <- Fulfilled v;
      List.iter (fun f -> f v) (List.rev waiters);
      true

(** [fulfill p v] resolves [p]; raises [Invalid_argument] if resolved. *)
let fulfill p v =
  if not (try_fulfill p v) then invalid_arg "Proc.fulfill: already fulfilled"

(** [await p] suspends the calling fiber until [p] is fulfilled.  Must be
    called from within a fiber started by {!spawn} or {!async}. *)
let await p = Effect.perform (Await p)

let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Await p ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                on_fulfill p (fun v ->
                    Sim.schedule p.sim ~after:Sim_time.zero (fun () ->
                        Effect.Deep.continue k v)))
        | _ -> None);
  }

(** [spawn sim f] starts fiber [f] at the current simulated instant. *)
let spawn sim f =
  Sim.schedule sim ~after:Sim_time.zero (fun () ->
      Effect.Deep.match_with f () handler)

(** [async sim f] starts fiber [f] and returns a promise of its result. *)
let async sim f =
  let p = promise sim in
  spawn sim (fun () -> fulfill p (f ()));
  p

(** [sleep sim d] suspends the calling fiber for duration [d]. *)
let sleep sim d =
  let p = promise sim in
  Sim.schedule sim ~after:d (fun () -> fulfill p ());
  await p

(** [yield sim] lets other events scheduled at this instant run first. *)
let yield sim = sleep sim Sim_time.zero

(** [join ps] awaits every promise in order. *)
let join ps = List.iter (fun p -> ignore (await p)) ps

(** [await_timeout sim p ~timeout] awaits [p] but gives up after [timeout],
    returning [None].  [p] itself is left untouched and may still be
    fulfilled later. *)
let await_timeout sim p ~timeout =
  let r = promise sim in
  Sim.schedule sim ~after:timeout (fun () ->
      ignore (try_fulfill r None : bool));
  on_fulfill p (fun v -> ignore (try_fulfill r (Some v) : bool));
  await r
