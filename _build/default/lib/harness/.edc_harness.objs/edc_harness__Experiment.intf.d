lib/harness/experiment.mli: Edc_simnet Net Sim_time Systems
