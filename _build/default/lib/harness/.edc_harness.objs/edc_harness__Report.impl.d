lib/harness/report.ml: Experiment List Printf String Systems
