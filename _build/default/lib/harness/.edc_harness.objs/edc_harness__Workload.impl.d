lib/harness/workload.ml: Coord_api Edc_recipes Edc_simnet Fmt List Printf Proc Sim Sim_time Stats Systems
