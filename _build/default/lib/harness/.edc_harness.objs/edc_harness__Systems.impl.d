lib/harness/systems.ml: Array Coord_api Coord_ds Coord_zk Edc_depspace Edc_eds Edc_ezk Edc_recipes Edc_simnet Edc_zookeeper Net Sim
