lib/harness/report.mli: Experiment Systems
