lib/harness/experiment.ml: Barrier Coord_api Counter Edc_recipes Edc_simnet Election List Printf Proc Queue Result Sim Sim_time Stats String Systems Workload
