lib/harness/workload.mli: Coord_api Edc_recipes Edc_simnet Format Sim_time Systems
