lib/harness/systems.mli: Coord_api Edc_recipes Edc_simnet Net Sim
