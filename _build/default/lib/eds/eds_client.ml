(** Client-side conveniences EDS adds to the DepSpace client library
    (§5.2.2): registration, acknowledgment, and extension invocation. *)

open Edc_depspace
open Edc_core
module P = Ds_protocol

let registration_tuple (program : Program.t) =
  Objects.tuple
    ~oid:(Manager.extension_object program.Program.name)
    ~data:(Codec.serialize program) ~version:0 ~ctime:0

(** [register c program] ships the serialized program as an ordinary
    tuple-space write. *)
let register c (program : Program.t) = Ds_client.out c (registration_tuple program)

let deregister c name =
  match
    Ds_client.inp c (Objects.template (Manager.extension_object name))
  with
  | Ok (Some _) -> Ok ()
  | Ok None -> Error "unknown extension"
  | Error e -> Error e

(** [acknowledge c name] — one-time acknowledgment (§3.6). *)
let acknowledge c name =
  Ds_client.out c
    (Objects.tuple
       ~oid:(Manager.ack_object name ~client:(Ds_client.addr c))
       ~data:"" ~version:0 ~ctime:0)

(** [ext_read c oid] — trigger a read-subscribed operation extension. *)
let ext_read c oid =
  match Ds_client.request c (P.Rdp (Objects.template oid)) with
  | P.Ext_r s -> Value.deserialize s
  | P.Denied why | P.Err why -> Error why
  | P.Tuple_opt (Some tuple) -> (
      (* extension vanished: plain read *)
      match Objects.decode tuple with
      | Some v -> Ok (Value.Str v.Objects.data)
      | None -> Error "not an object")
  | _ -> Error "unexpected reply"

(** [block c oid] — single-RPC blocking call served by an operation
    extension; returns when the awaited object exists. *)
let block ?timeout c oid =
  match Ds_client.request ?timeout c (P.Rd (Objects.template oid)) with
  | P.Tuple_opt (Some tuple) -> (
      match Objects.decode tuple with
      | Some v -> Ok v.Objects.data
      | None -> Ok "")
  | P.Ext_r _ -> Ok "" (* the object already existed; handler replied directly *)
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected reply"

(** Start client-side renewal of a lease object created server-side on our
    behalf by an extension's [monitor] call (the DepSpace half of
    Table 2's monitor: the service deletes the object if we stop
    renewing).  Idempotent; runs until {!Ds_client.close}. *)
let keep_alive c ~oid ~lease =
  Ds_client.ensure_renewing c (Objects.template oid) lease
