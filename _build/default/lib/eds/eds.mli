(** EXTENSIBLE DEPSPACE (EDS, §5.2): the extension manager installed as a
    new layer at the bottom of the DepSpace replica stack.

    All ordered requests pass the extension layer first; matched operation
    extensions run in the sandbox on *every* replica (active replication —
    the verifier rejects nondeterminism).  Proxied operations re-enter the
    policy-enforcement and access-control layers, so extensions gain no
    privileges.  Proxied mutations apply under an undo log: aborts roll
    back deterministically, and unblock cascades / deletion events are
    deferred to successful completion.  Registration is an ordinary [out]
    of [</em/name, code, ...>]; replicas rebuild managers by scanning the
    replicated space (§3.8). *)

open Edc_simnet
open Edc_depspace
open Edc_core

type t

val manager : t -> Manager.t
val server : t -> Ds_server.t

(** [install ?monitor_lease server] attaches a fresh extension manager;
    [monitor_lease] is the lease the proxy's [monitor] grants (clients
    keep it alive with {!Eds_client.keep_alive}). *)
val install : ?monitor_lease:Sim_time.t -> Ds_server.t -> t

(** [reload t] rebuilds the manager by scanning the space (§3.8). *)
val reload : t -> unit
