(** Client-side conveniences EDS adds to the DepSpace client library
    (§5.2.2). *)

open Edc_simnet
open Edc_depspace
open Edc_core

(** The registration object for a program (an ordinary 4-field tuple). *)
val registration_tuple : Program.t -> Tuple.t

(** [register c program] — an ordinary tuple-space write (§3.6). *)
val register : Ds_client.t -> Program.t -> (unit, string) result

val deregister : Ds_client.t -> string -> (unit, string) result

(** One-time acknowledgment (§3.6). *)
val acknowledge : Ds_client.t -> string -> (unit, string) result

(** Trigger a read-subscribed operation extension. *)
val ext_read : Ds_client.t -> string -> (Value.t, string) result

(** Single-RPC blocking call served by an operation extension; returns the
    awaited object's data when it appears. *)
val block : ?timeout:Sim_time.t -> Ds_client.t -> string -> (string, string) result

(** Keep a liveness object created server-side by an extension's [monitor]
    alive (idempotent per object; runs until {!Ds_client.close}). *)
val keep_alive : Ds_client.t -> oid:string -> lease:Sim_time.t -> unit
