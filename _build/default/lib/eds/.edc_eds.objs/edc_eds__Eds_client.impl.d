lib/eds/eds_client.ml: Codec Ds_client Ds_protocol Edc_core Edc_depspace Manager Objects Program Value
