lib/eds/eds.mli: Ds_server Edc_core Edc_depspace Edc_simnet Manager Sim_time
