lib/eds/eds.ml: Access Ds_protocol Ds_server Edc_core Edc_depspace Edc_simnet Fun List Logs Manager Objects Option Policy Program Result Sandbox Sim_time Space String Subscription Tuple Value Verify
