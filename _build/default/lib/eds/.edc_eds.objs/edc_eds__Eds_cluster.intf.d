lib/eds/eds_cluster.mli: Ds_client Ds_cluster Ds_protocol Ds_server Edc_depspace Edc_replication Edc_simnet Eds Net Sim Sim_time
