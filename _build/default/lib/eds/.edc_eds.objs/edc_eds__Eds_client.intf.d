lib/eds/eds_client.mli: Ds_client Edc_core Edc_depspace Edc_simnet Program Sim_time Tuple Value
