lib/eds/eds_cluster.ml: Array Ds_cluster Edc_depspace Eds
