(** Data objects on top of tuples.

    The paper's abstract API (Table 2) speaks of data objects with an id
    and content; DepSpace represents them as tuples.  We use the
    convention [<id, data, version, ctime>]: the [version] field gives
    [cas]/[replace] semantics, [ctime] (the primary-assigned timestamp of
    the creating request) gives the "creation time" ordering the queue and
    election recipes sort by.  Sequential names use a sibling counter tuple
    [<id ^ "#seq", n>]. *)

let tuple ~oid ~data ~version ~ctime =
  Tuple.[ Str oid; Str data; Int version; Int ctime ]

(** Template matching the object [oid] regardless of content. *)
let template oid = Tuple.[ Exact (Str oid); Any; Any; Any ]

(** Template matching every sub-object of [oid]. *)
let sub_template oid = Tuple.[ Prefix (oid ^ "/"); Any; Any; Any ]

(** Template matching object [oid] with exactly [data] (content cas). *)
let cas_template oid ~data = Tuple.[ Exact (Str oid); Exact (Str data); Any; Any ]

let seq_counter_name oid = oid ^ "#seq"
let seq_tuple ~oid ~n = Tuple.[ Str (seq_counter_name oid); Int n ]
let seq_template oid = Tuple.[ Exact (Str (seq_counter_name oid)); Any ]

let sequence_suffix n = Printf.sprintf "%010d" n

(** [stamp_ctime tuple ~ctime] fills in the creation stamp of an object
    tuple whose client left it at 0 (clients cannot know server time; the
    server assigns a deterministic stamp at ordered-execution time). *)
let stamp_ctime tuple ~ctime =
  match tuple with
  | Tuple.[ Str oid; Str data; Int version; Int 0 ] ->
      Tuple.[ Str oid; Str data; Int version; Int ctime ]
  | _ -> tuple

type view = { oid : string; data : string; version : int; ctime : int }

let decode = function
  | Tuple.[ Str oid; Str data; Int version; Int ctime ] ->
      Some { oid; data; version; ctime }
  | _ -> None

let decode_exn tuple =
  match decode tuple with
  | Some v -> v
  | None -> invalid_arg "Objects.decode_exn: not an object tuple"
