(** Access-control layer (DepSpace targets untrusted environments).

    Ordered allow/deny rules over operation kinds, optionally scoped to a
    tuple-name prefix and a client list.  EDS routes *extension-issued*
    operations through this layer again, so extensions gain no privileges
    (§4.1.2). *)

type op_kind = Read | Write | Take

type rule = {
  kinds : op_kind list;
  name_prefix : string option;
      (** restrict to tuples whose first string field has this prefix *)
  clients : int list option;  (** [None] = every client *)
  allow : bool;
}

type t

val create : ?default_allow:bool -> unit -> t

(** Rules are evaluated in order; the first applicable one decides. *)
val add_rule : t -> rule -> unit

val clear : t -> unit

(** [check t ~client ~kind ~name] decides whether the operation may
    proceed ([name] = the tuple/template's first string field). *)
val check : t -> client:int -> kind:op_kind -> name:string option -> bool

(** Conventional "names" of tuples and templates. *)

val tuple_name : Tuple.t -> string option
val template_name : Tuple.template -> string option
