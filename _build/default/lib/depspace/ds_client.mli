(** DepSpace client library.

    Multicasts every request to all replicas (so per-client data volume is
    ~[3f + 1]× the request size — the effect in Figs. 8/10) and votes on
    replies: [f + 1] matching for ordered operations, [2f + 1] for fast
    unordered reads (falling back to ordered execution on divergence). *)

open Edc_simnet
module P = Ds_protocol

type config = {
  request_timeout : Sim_time.t;  (** for non-blocking operations *)
  renew_interval : Sim_time.t;  (** cadence of lease renewals *)
}

val default_config : config

type t

val create :
  ?config:config ->
  sim:Sim.t ->
  net:P.wire Net.t ->
  addr:int ->
  replicas:int list ->
  f:int ->
  unit ->
  t

val addr : t -> int
val requests_sent : t -> int
val sim : t -> Sim.t
val is_closed : t -> bool

(** [request t op] — raw request/vote cycle (fiber-blocking).  Blocking
    space operations ([Rd]/[In_]) wait indefinitely; others time out. *)
val request : ?timeout:Sim_time.t -> ?fast_allowed:bool -> t -> P.op -> P.result

(** Convenience wrappers (Table 2, DepSpace column). *)

val out : t -> ?lease:Sim_time.t -> Tuple.t -> (unit, string) result
val rdp : t -> Tuple.template -> (Tuple.t option, string) result
val inp : t -> Tuple.template -> (Tuple.t option, string) result

(** Blocking read. *)
val rd : ?timeout:Sim_time.t -> t -> Tuple.template -> (Tuple.t, string) result

(** Blocking take. *)
val in_ : ?timeout:Sim_time.t -> t -> Tuple.template -> (Tuple.t, string) result

val cas : t -> Tuple.template -> Tuple.t -> (bool, string) result
val replace : t -> Tuple.template -> Tuple.t -> (bool, string) result
val rd_all : t -> Tuple.template -> (Tuple.t list, string) result

(** Ordered no-op: drives deterministic lease expiry. *)
val noop : t -> (unit, string) result

val renew : t -> Tuple.template -> Sim_time.t -> (int, string) result

(** [ensure_renewing t template lease] starts periodic renewal (idempotent
    per template; runs until {!close}). *)
val ensure_renewing : t -> Tuple.template -> Sim_time.t -> unit

(** [monitor t tuple ~lease] — Table 2's [monitor(x, o)], DepSpace half:
    a lease tuple kept alive by renewals; if this client dies it expires,
    and its deletion doubles as the failure notification. *)
val monitor : t -> Tuple.t -> lease:Sim_time.t -> (unit, string) result

(** Stops renewals; the service forgets us when the leases lapse. *)
val close : t -> unit
