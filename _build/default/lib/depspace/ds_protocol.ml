(** DepSpace client protocol: operations, results, wire messages, sizes. *)

open Edc_simnet

type op =
  | Out of { tuple : Tuple.t; lease : Sim_time.t option }
      (** insert; [lease] is a duration after which the tuple expires
          unless renewed (Table 2's lease tuples) *)
  | Rdp of Tuple.template  (** non-blocking read *)
  | Inp of Tuple.template  (** non-blocking take *)
  | Rd of Tuple.template  (** blocking read *)
  | In_ of Tuple.template  (** blocking take *)
  | Cas of { template : Tuple.template; tuple : Tuple.t }
      (** insert [tuple] iff nothing matches [template] *)
  | Replace of { template : Tuple.template; tuple : Tuple.t }
      (** atomically take a match of [template] and insert [tuple];
          fails (returning [Bool_r false]) when nothing matches *)
  | Rd_all of Tuple.template  (** read every match *)
  | Renew of { template : Tuple.template; lease : Sim_time.t }
  | Noop  (** carries time for lease expiry; also used as a ping *)

type result =
  | Unit_r
  | Tuple_opt of Tuple.t option
  | Tuples of Tuple.t list
  | Bool_r of bool
  | Int_r of int
  | Ext_r of string  (** serialized extension-produced value (EDS) *)
  | Denied of string
  | Err of string

let op_kind : op -> Access.op_kind = function
  | Out _ | Cas _ | Replace _ | Renew _ -> Access.Write
  | Rdp _ | Rd _ | Rd_all _ | Noop -> Access.Read
  | Inp _ | In_ _ -> Access.Take

let op_size = function
  | Out { tuple; _ } -> 12 + Tuple.size tuple
  | Rdp t | Inp t | Rd t | In_ t | Rd_all t -> 8 + Tuple.template_size t
  | Cas { template; tuple } | Replace { template; tuple } ->
      8 + Tuple.template_size template + Tuple.size tuple
  | Renew { template; _ } -> 12 + Tuple.template_size template
  | Noop -> 8

let result_size = function
  | Unit_r -> 8
  | Tuple_opt None -> 9
  | Tuple_opt (Some t) -> 9 + Tuple.size t
  | Tuples ts -> List.fold_left (fun acc t -> acc + Tuple.size t) 12 ts
  | Bool_r _ -> 9
  | Int_r _ -> 12
  | Ext_r s -> 8 + String.length s
  | Denied s | Err s -> 8 + String.length s

(** Deployment wire format: requests are client multicasts; replicas reply
    individually; replicas gossip PBFT messages. *)
type request = { client : int; rseq : int; op : op }

(** [fast = true] marks a read-only request served directly from each
    replica's local state without total ordering (BFT-SMaRt's read-only
    optimization); the client then needs [2f + 1] matching replies and
    falls back to ordered execution on divergence. *)
type wire =
  | Ds_request of { rseq : int; op : op; fast : bool }
  | Ds_reply of { rseq : int; result : result }
  | Ds_pbft of request Edc_replication.Pbft.msg

let request_size r = 16 + op_size r.op

let is_read_only = function
  | Rdp _ | Rd_all _ -> true
  (* Noop stays ordered on purpose: it is the time carrier that drives
     deterministic lease expiry at the replicas *)
  | Noop | Out _ | Inp _ | Rd _ | In_ _ | Cas _ | Replace _ | Renew _ -> false

let wire_size = function
  | Ds_request { op; _ } -> 16 + op_size op
  | Ds_reply { result; _ } -> 16 + result_size result
  | Ds_pbft m -> Edc_replication.Pbft.msg_size ~payload_size:request_size m

let pp_result ppf = function
  | Unit_r -> Fmt.string ppf "ok"
  | Tuple_opt t -> Fmt.pf ppf "tuple %a" Fmt.(option ~none:(any "none") Tuple.pp) t
  | Tuples ts -> Fmt.pf ppf "tuples [%a]" Fmt.(list ~sep:semi Tuple.pp) ts
  | Bool_r b -> Fmt.bool ppf b
  | Int_r i -> Fmt.int ppf i
  | Ext_r s -> Fmt.pf ppf "ext %S" s
  | Denied s -> Fmt.pf ppf "denied: %s" s
  | Err s -> Fmt.pf ppf "error: %s" s
