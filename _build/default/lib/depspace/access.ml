(** Access-control layer.

    DepSpace is designed for untrusted environments: every operation passes
    an access-control check before reaching the tuple space.  We implement
    the mechanism the paper relies on — per-operation-kind allow/deny with
    optional tuple-name scoping — rather than the full credential system of
    the original: what matters to EDS is that operations issued *by
    extensions* traverse this layer again, so a client cannot gain
    privileges by invoking an extension (§4.1.2). *)

type op_kind = Read | Write | Take

type rule = {
  kinds : op_kind list;
  name_prefix : string option;
      (** restrict the rule to tuples/templates whose first field is a
          string with this prefix; [None] = all *)
  clients : int list option;  (** [None] = every client *)
  allow : bool;
}

type t = { mutable rules : rule list; mutable default_allow : bool }

let create ?(default_allow = true) () = { rules = []; default_allow }

(** Rules are evaluated in order; the first applicable one decides. *)
let add_rule t rule = t.rules <- t.rules @ [ rule ]

let clear t = t.rules <- []

let applies rule ~client ~kind ~name =
  List.mem kind rule.kinds
  && (match rule.clients with None -> true | Some cs -> List.mem client cs)
  &&
  match rule.name_prefix with
  | None -> true
  | Some p -> (
      match name with
      | Some n ->
          String.length n >= String.length p && String.sub n 0 (String.length p) = p
      | None -> false)

(** [check t ~client ~kind ~name] decides whether the operation may
    proceed. [name] is the first string field of the tuple/template when
    there is one. *)
let check t ~client ~kind ~name =
  let rec eval = function
    | [] -> t.default_allow
    | r :: rest -> if applies r ~client ~kind ~name then r.allow else eval rest
  in
  eval t.rules

(** First string field of a tuple (its conventional "name"). *)
let tuple_name (tuple : Tuple.t) =
  match tuple with Tuple.Str s :: _ -> Some s | _ -> None

let template_name (template : Tuple.template) =
  match template with
  | Tuple.Exact (Tuple.Str s) :: _ -> Some s
  | Tuple.Prefix s :: _ -> Some s
  | _ -> None
