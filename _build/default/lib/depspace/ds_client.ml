(** DepSpace client library.

    The client multicasts each request to every replica (so the per-client
    data volume is ~[3f + 1] times the request size — the effect visible in
    the paper's Figure 8/10 byte counts) and accepts a result once [f + 1]
    replicas returned the same value, masking up to [f] Byzantine
    replies. *)

open Edc_simnet
module P = Ds_protocol

type config = {
  request_timeout : Sim_time.t;  (** for non-blocking operations *)
  renew_interval : Sim_time.t;  (** how often lease renewals are sent *)
}

let default_config =
  { request_timeout = Sim_time.sec 4; renew_interval = Sim_time.sec 2 }

type vote = {
  mutable replies : (P.result * int list) list;  (** result -> voters *)
  quorum : int;  (** matching replies needed: f+1 ordered, 2f+1 fast *)
  n_replicas : int;
  promise : P.result Proc.promise;
}

(** internal marker: a fast read could not gather a matching quorum *)
let diverged = P.Err "__fast_read_diverged"

type t = {
  sim : Sim.t;
  net : P.wire Net.t;
  addr : int;
  replicas : int list;
  f : int;
  config : config;
  mutable rseq : int;
  pending : (int, vote) Hashtbl.t;
  mutable renewing : (Tuple.template * Sim_time.t) list;
      (** active lease subscriptions kept alive by the renewal fiber *)
  mutable closed : bool;
  mutable requests_sent : int;
}

let addr t = t.addr
let requests_sent t = t.requests_sent
let sim t = t.sim
let is_closed t = t.closed

let record_reply t ~src ~rseq result =
  match Hashtbl.find_opt t.pending rseq with
  | None -> () (* already decided; late reply *)
  | Some vote ->
      let updated = ref false in
      let replies =
        List.map
          (fun (r, voters) ->
            if r = result && not (List.mem src voters) then begin
              updated := true;
              (r, src :: voters)
            end
            else (r, voters))
          vote.replies
      in
      let replies = if !updated then replies else (result, [ src ]) :: replies in
      vote.replies <- replies;
      let decided =
        List.find_opt
          (fun (_, voters) -> List.length voters >= vote.quorum)
          replies
      in
      match decided with
      | Some (r, _) ->
          Hashtbl.remove t.pending rseq;
          ignore (Proc.try_fulfill vote.promise r : bool)
      | None ->
          (* all replicas answered but no quorum agrees: the fast read hit
             divergent states; tell the caller to fall back *)
          let total =
            List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 replies
          in
          if total >= vote.n_replicas then begin
            Hashtbl.remove t.pending rseq;
            ignore (Proc.try_fulfill vote.promise diverged : bool)
          end

let create ?(config = default_config) ~sim ~net ~addr ~replicas ~f () =
  let t =
    {
      sim;
      net;
      addr;
      replicas;
      f;
      config;
      rseq = 0;
      pending = Hashtbl.create 8;
      renewing = [];
      closed = false;
      requests_sent = 0;
    }
  in
  Net.register net addr (fun ~src ~size:_ msg ->
      match msg with
      | P.Ds_reply { rseq; result } -> record_reply t ~src ~rseq result
      | P.Ds_request _ | P.Ds_pbft _ -> ());
  t

(** [request t op] multicasts [op] and blocks the fiber until enough
    matching replies arrive: [f + 1] for ordered operations, [2f + 1] for
    fast (unordered) reads, which fall back to ordered execution when the
    replicas' answers diverge.  Blocking space operations ([Rd]/[In_])
    wait indefinitely; everything else times out with [Err "timeout"]. *)
let rec request ?timeout ?(fast_allowed = true) t op =
  t.rseq <- t.rseq + 1;
  let rseq = t.rseq in
  let fast = fast_allowed && P.is_read_only op in
  let quorum = if fast then (2 * t.f) + 1 else t.f + 1 in
  let vote =
    { replies = []; quorum; n_replicas = List.length t.replicas;
      promise = Proc.promise t.sim }
  in
  Hashtbl.replace t.pending rseq vote;
  t.requests_sent <- t.requests_sent + 1;
  let msg = P.Ds_request { rseq; op; fast } in
  List.iter
    (fun dst -> Net.send t.net ~src:t.addr ~dst ~size:(P.wire_size msg) msg)
    t.replicas;
  let is_blocking = match op with P.Rd _ | P.In_ _ -> true | _ -> false in
  let timeout_v =
    match timeout with
    | Some d -> Some d
    | None -> if is_blocking then None else Some t.config.request_timeout
  in
  let outcome =
    match timeout_v with
    | None -> Proc.await vote.promise
    | Some d -> (
        match Proc.await_timeout t.sim vote.promise ~timeout:d with
        | Some r -> r
        | None ->
            Hashtbl.remove t.pending rseq;
            P.Err "timeout")
  in
  if fast && outcome = diverged then request ?timeout ~fast_allowed:false t op
  else outcome

(* ------------------------------------------------------------------ *)
(* Convenience wrappers (Table 2, DepSpace column)                     *)
(* ------------------------------------------------------------------ *)

let out t ?lease tuple =
  match request t (P.Out { tuple; lease }) with
  | P.Unit_r -> Ok ()
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let rdp t template =
  match request t (P.Rdp template) with
  | P.Tuple_opt r -> Ok r
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let inp t template =
  match request t (P.Inp template) with
  | P.Tuple_opt r -> Ok r
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

(** blocking read *)
let rd ?timeout t template =
  match request ?timeout t (P.Rd template) with
  | P.Tuple_opt (Some tuple) -> Ok tuple
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

(** blocking take *)
let in_ ?timeout t template =
  match request ?timeout t (P.In_ template) with
  | P.Tuple_opt (Some tuple) -> Ok tuple
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let cas t template tuple =
  match request t (P.Cas { template; tuple }) with
  | P.Bool_r b -> Ok b
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let replace t template tuple =
  match request t (P.Replace { template; tuple }) with
  | P.Bool_r b -> Ok b
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let rd_all t template =
  match request t (P.Rd_all template) with
  | P.Tuples ts -> Ok ts
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

(** [noop t] — an ordered no-op: drives deterministic lease expiry. *)
let noop t =
  match request t P.Noop with
  | P.Unit_r -> Ok ()
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

let renew t template lease =
  match request t (P.Renew { template; lease }) with
  | P.Int_r n -> Ok n
  | P.Denied why | P.Err why -> Error why
  | _ -> Error "unexpected result"

(* ------------------------------------------------------------------ *)
(* Lease maintenance (Table 2's monitor)                               *)
(* ------------------------------------------------------------------ *)

let rec renew_loop t () =
  if (not t.closed) && t.renewing <> [] then begin
    Proc.spawn t.sim (fun () ->
        List.iter
          (fun (template, lease) -> ignore (renew t template lease))
          t.renewing);
    Sim.schedule t.sim ~after:t.config.renew_interval (renew_loop t)
  end

(** [ensure_renewing t template lease] starts periodic renewal of the
    matching lease tuples (idempotent per template). *)
let ensure_renewing t template lease =
  if not (List.exists (fun (tp, _) -> tp = template) t.renewing) then begin
    let was_empty = t.renewing = [] in
    t.renewing <- (template, lease) :: t.renewing;
    if was_empty then
      Sim.schedule t.sim ~after:t.config.renew_interval (renew_loop t)
  end

(** [monitor t tuple ~lease] inserts [tuple] with a lease and keeps
    renewing it until {!close} — the DepSpace half of Table 2's
    [monitor(x, o)]: if this client dies, the tuple expires and its
    deletion doubles as a failure notification. *)
let monitor t tuple ~lease =
  match out t ~lease tuple with
  | Ok () ->
      ensure_renewing t (Tuple.exact tuple) lease;
      Ok ()
  | Error e -> Error e

(** [close t] stops renewals; leases then expire server-side, which is how
    other clients learn this one is gone. *)
let close t =
  t.closed <- true;
  t.renewing <- []
