(** Data objects on top of tuples: the convention
    [<id, data, version, ctime>] realizing the paper's abstract data
    objects (Table 2) in the tuple space.  [version] gives cas/replace
    semantics; [ctime] — the server-assigned creation stamp — gives the
    creation-order the queue and election recipes sort by. *)

val tuple : oid:string -> data:string -> version:int -> ctime:int -> Tuple.t

(** Template matching object [oid] regardless of content. *)
val template : string -> Tuple.template

(** Template matching every sub-object of [oid]. *)
val sub_template : string -> Tuple.template

(** Template matching [oid] with exactly [data] (content cas). *)
val cas_template : string -> data:string -> Tuple.template

(** Sequential-name support (a sibling counter tuple). *)

val seq_counter_name : string -> string
val seq_tuple : oid:string -> n:int -> Tuple.t
val seq_template : string -> Tuple.template
val sequence_suffix : int -> string

(** [stamp_ctime tuple ~ctime] fills a zero creation stamp (clients cannot
    know server time; replicas assign it deterministically at ordered
    execution). *)
val stamp_ctime : Tuple.t -> ctime:int -> Tuple.t

type view = { oid : string; data : string; version : int; ctime : int }

val decode : Tuple.t -> view option
val decode_exn : Tuple.t -> view
