(** Tuples and templates (the Linda-style data model DepSpace augments).

    A tuple is a sequence of typed fields.  A template is a sequence of
    field matchers; a tuple matches a template when they have the same
    arity and every field matches positionally.  Beyond the classic
    exact/wildcard matchers we support a prefix matcher on string fields —
    the mechanism behind the paper's [rdAll(<o, SUB_ANY>)] sub-object
    enumeration (Table 2). *)

type field = Int of int | Str of string

type t = field list

type matcher =
  | Exact of field
  | Any
  | Prefix of string  (** matches string fields with the given prefix *)

type template = matcher list

let field_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let equal a b = List.length a = List.length b && List.for_all2 field_equal a b

let field_matches m f =
  match (m, f) with
  | Any, _ -> true
  | Exact e, f -> field_equal e f
  | Prefix p, Str s ->
      String.length s >= String.length p
      && String.sub s 0 (String.length p) = p
  | Prefix _, Int _ -> false

(** [matches template tuple] *)
let matches template tuple =
  List.length template = List.length tuple
  && List.for_all2 field_matches template tuple

(** [exact tuple] is the template matching exactly [tuple]. *)
let exact tuple = List.map (fun f -> Exact f) tuple

let field_size = function Int _ -> 8 | Str s -> 4 + String.length s

let size t = List.fold_left (fun acc f -> acc + field_size f) 4 t

let matcher_size = function
  | Exact f -> 1 + field_size f
  | Any -> 1
  | Prefix s -> 5 + String.length s

let template_size t = List.fold_left (fun acc m -> acc + matcher_size m) 4 t

let pp_field ppf = function
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s

let pp ppf t = Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma pp_field) t

let pp_matcher ppf = function
  | Exact f -> pp_field ppf f
  | Any -> Fmt.string ppf "*"
  | Prefix s -> Fmt.pf ppf "%S*" s

let pp_template ppf t = Fmt.pf ppf "<%a>" Fmt.(list ~sep:comma pp_matcher) t

(** Total order on fields and tuples: gives replicas a deterministic
    tie-break rule where needed. *)
let field_compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let compare a b = List.compare field_compare a b
