lib/depspace/ds_cluster.ml: Array Ds_client Ds_protocol Ds_server Edc_simnet Fun List Net Sim Sim_time
