lib/depspace/tuple.ml: Fmt Int List String
