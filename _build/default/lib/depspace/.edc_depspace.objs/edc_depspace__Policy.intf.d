lib/depspace/policy.mli: Access Space Tuple
