lib/depspace/access.ml: List String Tuple
