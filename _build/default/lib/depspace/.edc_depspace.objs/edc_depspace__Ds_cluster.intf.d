lib/depspace/ds_cluster.mli: Ds_client Ds_protocol Ds_server Edc_replication Edc_simnet Net Sim Sim_time
