lib/depspace/space.mli: Edc_simnet Sim_time Tuple
