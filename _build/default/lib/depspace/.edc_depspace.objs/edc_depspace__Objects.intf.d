lib/depspace/objects.mli: Tuple
