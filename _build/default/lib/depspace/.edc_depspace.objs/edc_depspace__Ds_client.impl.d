lib/depspace/ds_client.ml: Ds_protocol Edc_simnet Hashtbl List Net Proc Sim Sim_time Tuple
