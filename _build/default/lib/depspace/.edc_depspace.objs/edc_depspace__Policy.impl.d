lib/depspace/policy.ml: Access Printf Space String Tuple
