lib/depspace/access.mli: Tuple
