lib/depspace/tuple.mli: Format
