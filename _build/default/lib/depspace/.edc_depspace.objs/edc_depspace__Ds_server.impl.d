lib/depspace/ds_server.ml: Access Cpu Ds_protocol Edc_replication Edc_simnet List Net Objects Option Pbft Policy Sim Sim_time Space Tuple
