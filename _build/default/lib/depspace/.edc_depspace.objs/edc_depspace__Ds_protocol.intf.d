lib/depspace/ds_protocol.mli: Access Edc_replication Edc_simnet Format Sim_time Tuple
