lib/depspace/objects.ml: Printf Tuple
