lib/depspace/space.ml: Edc_simnet Int List Map Option Seq Sim_time Tuple
