lib/depspace/ds_protocol.ml: Access Edc_replication Edc_simnet Fmt List Sim_time String Tuple
