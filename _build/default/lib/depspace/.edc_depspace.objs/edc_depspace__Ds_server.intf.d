lib/depspace/ds_server.mli: Access Ds_protocol Edc_replication Edc_simnet Net Pbft Policy Sim Sim_time Space Tuple
