lib/depspace/ds_client.mli: Ds_protocol Edc_simnet Net Sim Sim_time Tuple
