(** Tuples and templates (the Linda-style data model DepSpace augments).

    A tuple is a sequence of typed fields; a template matches a tuple when
    arities agree and every field matches positionally.  Besides the
    classic exact/wildcard matchers there is a string-prefix matcher — the
    mechanism behind the paper's [rdAll(<o, SUB_ANY>)] sub-object
    enumeration (Table 2). *)

type field = Int of int | Str of string
type t = field list

type matcher =
  | Exact of field
  | Any
  | Prefix of string  (** matches string fields with this prefix *)

type template = matcher list

val field_equal : field -> field -> bool
val equal : t -> t -> bool
val field_matches : matcher -> field -> bool

(** [matches template tuple]. *)
val matches : template -> t -> bool

(** [exact tuple] — the template matching exactly [tuple]. *)
val exact : t -> template

(** Modelled wire sizes. *)

val field_size : field -> int
val size : t -> int
val matcher_size : matcher -> int
val template_size : template -> int

(** Total orders (deterministic tie-breaking). *)

val field_compare : field -> field -> int
val compare : t -> t -> int

val pp_field : Format.formatter -> field -> unit
val pp : Format.formatter -> t -> unit
val pp_matcher : Format.formatter -> matcher -> unit
val pp_template : Format.formatter -> template -> unit
