(** The tuple-space state machine (replicated via PBFT).

    All selection rules are deterministic — matching always picks the
    oldest (lowest insertion sequence) matching tuple, parked blocking
    operations unblock in registration order — so replicas that execute
    the same ordered request stream stay identical.

    Tuples may carry a lease (absolute expiry in primary-assigned
    timestamps); expired tuples are purged at the start of every executed
    request, which keeps expiry deterministic too (cf. the [ts] field on
    PBFT pre-prepares). *)

open Edc_simnet

module Int_map = Map.Make (Int)

type entry = {
  tuple : Tuple.t;
  expiry : Sim_time.t option;
  owner : int;  (** client that inserted the tuple *)
}

type parked = {
  p_client : int;
  p_rseq : int;
  p_template : Tuple.template;
  p_take : bool;  (** true for [in], false for [rd] *)
}

type t = {
  mutable entries : entry Int_map.t;
  mutable next_seq : int;
  mutable parked : parked Int_map.t;
  mutable next_parked : int;
}

let create () =
  { entries = Int_map.empty; next_seq = 0; parked = Int_map.empty; next_parked = 0 }

let tuple_count t = Int_map.cardinal t.entries

(** Next insertion sequence number: a deterministic, monotone stamp the
    server uses as object creation time. *)
let next_insert_seq t = t.next_seq
let parked_count t = Int_map.cardinal t.parked

(** [insert t ~owner ~expiry tuple] adds a tuple; returns its sequence. *)
let insert t ~owner ~expiry tuple =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.entries <- Int_map.add seq { tuple; expiry; owner } t.entries;
  seq

(** [find t template] returns the oldest matching tuple. *)
let find t template =
  Int_map.to_seq t.entries
  |> Seq.find (fun (_, e) -> Tuple.matches template e.tuple)

let live e ~now =
  match e.expiry with Some ts -> Sim_time.(now < ts) | None -> true

(** [find_live t ~now template] — like {!find} but ignores tuples whose
    lease has passed (used by the unordered read fast path, which must not
    mutate state but must not surface expired leases either). *)
let find_live t ~now template =
  Int_map.to_seq t.entries
  |> Seq.find (fun (_, e) -> live e ~now && Tuple.matches template e.tuple)
  |> Option.map (fun (_, e) -> e.tuple)

let read_all_live t ~now template =
  Int_map.fold
    (fun _ e acc ->
      if live e ~now && Tuple.matches template e.tuple then e.tuple :: acc
      else acc)
    t.entries []
  |> List.rev

let find_tuple t template = Option.map (fun (_, e) -> e.tuple) (find t template)

(** [take t template] removes and returns the oldest matching tuple. *)
let take t template =
  match find t template with
  | None -> None
  | Some (seq, e) ->
      t.entries <- Int_map.remove seq t.entries;
      Some e.tuple

(** [read_all t template] returns every matching tuple in insertion
    order. *)
let read_all t template =
  Int_map.fold
    (fun _ e acc -> if Tuple.matches template e.tuple then e.tuple :: acc else acc)
    t.entries []
  |> List.rev

(** [expire t ~now] removes all tuples whose lease has passed; returns them
    (oldest first) so deletion events can fire. *)
let expire t ~now =
  let doomed =
    Int_map.fold
      (fun seq e acc ->
        match e.expiry with
        | Some ts when Sim_time.(ts <= now) -> (seq, e.tuple) :: acc
        | _ -> acc)
      t.entries []
    |> List.rev
  in
  List.iter (fun (seq, _) -> t.entries <- Int_map.remove seq t.entries) doomed;
  List.map snd doomed

(** [renew t ~owner ~template ~expiry] refreshes the lease of every
    matching tuple owned by [owner]; returns how many were renewed. *)
let renew t ~owner ~template ~expiry =
  let n = ref 0 in
  t.entries <-
    Int_map.map
      (fun e ->
        if e.owner = owner && e.expiry <> None && Tuple.matches template e.tuple
        then begin
          incr n;
          { e with expiry = Some expiry }
        end
        else e)
      t.entries;
  !n

(** [park t ~client ~rseq ~template ~take] registers a blocked [rd]/[in];
    returns a handle usable with {!unpark}. *)
let park t ~client ~rseq ~template ~take =
  let seq = t.next_parked in
  t.next_parked <- seq + 1;
  t.parked <-
    Int_map.add seq
      { p_client = client; p_rseq = rseq; p_template = template; p_take = take }
      t.parked;
  seq

let unpark t seq = t.parked <- Int_map.remove seq t.parked

(** [unblockable t tuple] — called after an insert — returns, in
    registration order, the parked operations this tuple wakes up: every
    blocked [rd] that matches, up to and including the first blocked [in]
    (which consumes the tuple).  The returned operations are removed from
    the parked set; the caller must reinstate any the extension layer
    decides to re-block (via {!park}). *)
let unblockable t tuple =
  let woken = ref [] in
  let consumed = ref false in
  Int_map.iter
    (fun seq p ->
      if (not !consumed) && Tuple.matches p.p_template tuple then
        if p.p_take then begin
          consumed := true;
          woken := (seq, p) :: !woken
        end
        else woken := (seq, p) :: !woken)
    t.parked;
  let woken = List.rev !woken in
  List.iter (fun (seq, _) -> t.parked <- Int_map.remove seq t.parked) woken;
  (List.map snd woken, !consumed)

(** [drop_parked t ~client] removes a departed client's blocked calls. *)
let drop_parked t ~client =
  t.parked <- Int_map.filter (fun _ p -> p.p_client <> client) t.parked

(** Deterministic digest of the space contents (test observability). *)
let contents t = Int_map.fold (fun _ e acc -> e.tuple :: acc) t.entries [] |> List.rev
