(** The tuple-space state machine (replicated via PBFT).

    All selection rules are deterministic — matching picks the oldest
    (lowest insertion sequence) tuple, parked blocking operations unblock
    in registration order — so replicas executing the same ordered request
    stream stay identical.  Tuples may carry a lease (absolute expiry in
    primary-assigned timestamps); {!expire} purges them deterministically
    at request execution time. *)

open Edc_simnet

type entry = { tuple : Tuple.t; expiry : Sim_time.t option; owner : int }

type parked = {
  p_client : int;
  p_rseq : int;
  p_template : Tuple.template;
  p_take : bool;  (** [true] for blocking [in], [false] for [rd] *)
}

type t

val create : unit -> t
val tuple_count : t -> int
val parked_count : t -> int

(** Next insertion sequence (the deterministic stamp used as an object's
    creation time). *)
val next_insert_seq : t -> int

(** [insert t ~owner ~expiry tuple] returns the tuple's sequence. *)
val insert : t -> owner:int -> expiry:Sim_time.t option -> Tuple.t -> int

(** Oldest matching tuple, with / without its entry metadata. *)
val find : t -> Tuple.template -> (int * entry) option

val find_tuple : t -> Tuple.template -> Tuple.t option

(** Like {!find_tuple} but skipping expired leases (the read-only fast
    path must not surface dead leases, yet cannot purge). *)
val find_live : t -> now:Sim_time.t -> Tuple.template -> Tuple.t option

(** [take t template] removes and returns the oldest match. *)
val take : t -> Tuple.template -> Tuple.t option

(** Matches in insertion order. *)
val read_all : t -> Tuple.template -> Tuple.t list

val read_all_live : t -> now:Sim_time.t -> Tuple.template -> Tuple.t list

(** [expire t ~now] removes all leases that have passed; returns them
    (oldest first) so deletion events can fire. *)
val expire : t -> now:Sim_time.t -> Tuple.t list

(** [renew t ~owner ~template ~expiry] refreshes matching leases owned by
    [owner]; returns how many. *)
val renew : t -> owner:int -> template:Tuple.template -> expiry:Sim_time.t -> int

(** [park t ~client ~rseq ~template ~take] registers a blocked [rd]/[in];
    returns a handle for {!unpark}. *)
val park : t -> client:int -> rseq:int -> template:Tuple.template -> take:bool -> int

val unpark : t -> int -> unit

(** [unblockable t tuple] — after an insert: the parked operations this
    tuple wakes, in registration order — every matching [rd] up to and
    including the first matching [in] (which consumes the tuple).  The
    returned entries are removed; re-park any the extension layer decides
    to re-block. *)
val unblockable : t -> Tuple.t -> parked list * bool

(** Remove a departed client's blocked calls. *)
val drop_parked : t -> client:int -> unit

(** Deterministic digest of contents (test observability). *)
val contents : t -> Tuple.t list
