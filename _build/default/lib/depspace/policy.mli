(** Policy-enforcement layer: fine-grained predicates judging an operation
    against the *current state* of the space (DepSpace's upper layer,
    traversed by client and extension operations alike). *)

type decision = Allow | Deny of string | Not_applicable

type op_view = {
  v_client : int;
  v_kind : Access.op_kind;
  v_tuple : Tuple.t option;  (** tuple being written, if any *)
  v_template : Tuple.template option;  (** template being matched, if any *)
}

type rule = { name : string; judge : Space.t -> op_view -> decision }

type t

val create : unit -> t

(** Ordered; the first rule that claims the operation decides it. *)
val add_rule : t -> string -> (Space.t -> op_view -> decision) -> unit

val clear : t -> unit

(** [Ok ()] or [Error reason]. *)
val check : t -> Space.t -> op_view -> (unit, string) result

(** Sample rules (used by tests and examples). *)

(** Tuples named with [prefix] may only grow monotonically in their
    integer second field (fencing tokens). *)
val monotonic_counter : prefix:string -> rule

(** Cap the space's total tuple count. *)
val max_space_size : limit:int -> rule
