(** DepSpace client protocol: operations, results, wire messages, sizes. *)

open Edc_simnet

type op =
  | Out of { tuple : Tuple.t; lease : Sim_time.t option }
      (** insert; [lease] expires the tuple unless renewed (Table 2) *)
  | Rdp of Tuple.template  (** non-blocking read *)
  | Inp of Tuple.template  (** non-blocking take *)
  | Rd of Tuple.template  (** blocking read *)
  | In_ of Tuple.template  (** blocking take *)
  | Cas of { template : Tuple.template; tuple : Tuple.t }
      (** insert [tuple] iff nothing matches [template] *)
  | Replace of { template : Tuple.template; tuple : Tuple.t }
      (** atomically take a match and insert [tuple]; [Bool_r false] when
          nothing matches *)
  | Rd_all of Tuple.template
  | Renew of { template : Tuple.template; lease : Sim_time.t }
  | Noop  (** ordered time carrier: drives deterministic lease expiry *)

type result =
  | Unit_r
  | Tuple_opt of Tuple.t option
  | Tuples of Tuple.t list
  | Bool_r of bool
  | Int_r of int
  | Ext_r of string  (** serialized extension-produced value (EDS) *)
  | Denied of string
  | Err of string

val op_kind : op -> Access.op_kind

(** Eligible for the unordered read fast path. *)
val is_read_only : op -> bool

val op_size : op -> int
val result_size : result -> int

(** Deployment wire format: clients multicast requests; every replica
    replies; replicas gossip PBFT messages.  [fast] marks a read served
    from local state without ordering (client then needs 2f+1 matching
    replies). *)

type request = { client : int; rseq : int; op : op }

type wire =
  | Ds_request of { rseq : int; op : op; fast : bool }
  | Ds_reply of { rseq : int; result : result }
  | Ds_pbft of request Edc_replication.Pbft.msg

val request_size : request -> int
val wire_size : wire -> int
val pp_result : Format.formatter -> result -> unit
