(** Policy-enforcement layer.

    DepSpace's fine-grained policies judge an operation against the
    *current state* of the space (e.g. "a counter tuple may only be
    replaced by one whose value is larger").  A policy is an ordered list
    of named predicates; the first one that claims the operation decides
    it.  Extensions' proxied operations pass through here too. *)

type decision = Allow | Deny of string | Not_applicable

type op_view = {
  v_client : int;
  v_kind : Access.op_kind;
  v_tuple : Tuple.t option;  (** tuple being written, if any *)
  v_template : Tuple.template option;  (** template being matched, if any *)
}

type rule = { name : string; judge : Space.t -> op_view -> decision }

type t = { mutable rules : rule list }

let create () = { rules = [] }

let add_rule t name judge = t.rules <- t.rules @ [ { name; judge } ]

let clear t = t.rules <- []

(** [check t space view] is [Ok ()] or [Error reason]. *)
let check t space view =
  let rec eval = function
    | [] -> Ok ()
    | r :: rest -> (
        match r.judge space view with
        | Allow -> Ok ()
        | Deny why -> Error (Printf.sprintf "%s: %s" r.name why)
        | Not_applicable -> eval rest)
  in
  eval t.rules

(* Convenience constructors used in tests and examples. *)

(** Rule: tuples whose name has [prefix] may only grow monotonically in
    their integer second field (e.g. fencing tokens). *)
let monotonic_counter ~prefix =
  {
    name = "monotonic:" ^ prefix;
    judge =
      (fun space view ->
        match (view.v_kind, view.v_tuple) with
        | Access.Write, Some (Tuple.Str name :: Tuple.Int v :: _)
          when String.length name >= String.length prefix
               && String.sub name 0 (String.length prefix) = prefix -> (
            match Space.find_tuple space Tuple.[ Exact (Str name); Any ] with
            | Some (Tuple.Str _ :: Tuple.Int old :: _) when v < old ->
                Deny (Printf.sprintf "%d < %d" v old)
            | _ -> Allow)
        | _ -> Not_applicable);
  }

(** Rule: cap the total number of tuples in the space (resource bounding
    in the spirit of §4.1.2). *)
let max_space_size ~limit =
  {
    name = "max-space-size";
    judge =
      (fun space view ->
        match view.v_kind with
        | Access.Write ->
            if Space.tuple_count space >= limit then Deny "space full" else Allow
        | Access.Read | Access.Take -> Not_applicable);
  }
