(* Regenerates the sample serialized extensions shipped with the repo:
   the wire form (s-expressions) of the paper's four recipes. *)
let write name program =
  Out_channel.with_open_text name (fun oc ->
      Out_channel.output_string oc (Edc_core.Codec.serialize program))

let () =
  write "counter.sexp" Edc_recipes.Counter.program;
  write "queue.sexp" Edc_recipes.Queue.program;
  write "barrier.sexp" Edc_recipes.Barrier.program;
  write "election.sexp" (Edc_recipes.Election.program Edc_recipes.Election.election_roots)
