(* edc — command-line driver for the simulated coordination systems.

   Subcommands:
     edc bench     run one experiment point with chosen parameters
     edc demo      run a recipe demo and print what happened
     edc verify    check an extension program file (s-expression) offline

   Examples:
     edc bench --figure counter --system ezk --clients 40 --seconds 3
     edc demo --recipe queue --system eds
     edc verify --mode active my_extension.sexp                        *)

open Cmdliner
open Edc_simnet
open Edc_harness
open Edc_recipes

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let system_conv =
  let parse = function
    | "zk" | "zookeeper" -> Ok Systems.Zookeeper
    | "ezk" -> Ok Systems.Ezk
    | "ds" | "depspace" -> Ok Systems.Depspace
    | "eds" -> Ok Systems.Eds
    | s -> Error (`Msg (Printf.sprintf "unknown system %S (zk|ezk|ds|eds)" s))
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf (Systems.kind_name k))

let system_arg =
  Arg.(value & opt system_conv Systems.Ezk & info [ "system"; "s" ] ~doc:"System: zk, ezk, ds, or eds.")

let clients_arg =
  Arg.(value & opt int 20 & info [ "clients"; "n" ] ~doc:"Number of closed-loop clients.")

let seconds_arg =
  Arg.(value & opt int 2 & info [ "seconds" ] ~doc:"Measurement window (simulated seconds).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let wan_arg =
  Arg.(value & flag & info [ "wan" ] ~doc:"Use the wide-area latency profile.")

(* ------------------------------------------------------------------ *)
(* edc bench                                                           *)
(* ------------------------------------------------------------------ *)

let figure_conv =
  Arg.enum [ ("counter", `Counter); ("queue", `Queue); ("barrier", `Barrier); ("election", `Election) ]

let bench_run figure system clients seconds seed wan =
  let warmup = Sim_time.sec 1 and measure = Sim_time.sec seconds in
  let net_config = if wan then Some Net.wan_config else None in
  let p =
    match figure with
    | `Counter -> Experiment.counter_point ~seed ?net_config ~warmup ~measure system clients
    | `Queue -> Experiment.queue_point ~seed ?net_config ~warmup ~measure system clients
    | `Barrier -> Experiment.barrier_point ~seed ?net_config system clients
    | `Election -> Experiment.election_point ~seed ?net_config ~warmup ~measure system clients
  in
  Printf.printf
    "%s, %d clients: %.0f ops/s, %.3f ms mean (%.3f ms p99), %.2f KB/op, %.2f attempts/op\n"
    (Systems.kind_name p.Experiment.kind)
    p.Experiment.clients p.Experiment.throughput p.Experiment.latency_ms
    p.Experiment.p99_ms p.Experiment.kb_per_op p.Experiment.attempts

let bench_cmd =
  let figure =
    Arg.(value & opt figure_conv `Counter & info [ "figure"; "f" ] ~doc:"Workload: counter, queue, barrier, or election.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one experiment point")
    Term.(const bench_run $ figure $ system_arg $ clients_arg $ seconds_arg $ seed_arg $ wan_arg)

(* ------------------------------------------------------------------ *)
(* edc demo                                                            *)
(* ------------------------------------------------------------------ *)

let demo_run recipe system seed =
  let sim = Sim.create ~seed () in
  let sys = Systems.make system sim in
  let extensible = Systems.is_extensible system in
  let ok = function Ok v -> v | Error e -> failwith e in
  Proc.spawn sim (fun () ->
      let api = fst (sys.Systems.new_api ()) in
      match recipe with
      | `Counter ->
          ok (Counter.setup api);
          if extensible then ok (Counter.register api);
          for _ = 1 to 5 do
            let r =
              if extensible then ok (Counter.increment_ext api)
              else ok (Counter.increment_traditional api)
            in
            Printf.printf "increment -> %d (%d attempts)\n" r.Counter.value
              r.Counter.attempts
          done
      | `Queue ->
          ok (Queue.setup api);
          if extensible then ok (Queue.register api);
          for i = 1 to 5 do
            ok (Queue.add api ~eid:(Queue.make_eid api i) ~data:(Printf.sprintf "msg%d" i))
          done;
          Printf.printf "enqueued 5 messages\n";
          for _ = 1 to 5 do
            let r =
              if extensible then ok (Queue.remove_ext api)
              else ok (Queue.remove_traditional api)
            in
            Printf.printf "dequeued %s\n" (Option.value ~default:"<empty>" r.Queue.data)
          done);
  Sim.run ~until:(Sim_time.sec 60) sim;
  Printf.printf "(simulated time: %s)\n" (Fmt.str "%a" Sim_time.pp (Sim.now sim))

let demo_cmd =
  let recipe =
    Arg.(value & opt (enum [ ("counter", `Counter); ("queue", `Queue) ]) `Counter
         & info [ "recipe"; "r" ] ~doc:"Recipe: counter or queue.")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run a recipe demo") Term.(const demo_run $ recipe $ system_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* edc verify                                                          *)
(* ------------------------------------------------------------------ *)

let verify_run mode file =
  let code = In_channel.with_open_text file In_channel.input_all in
  match Edc_core.Verify.verify ~mode code with
  | Ok program ->
      Printf.printf "OK: extension %S admissible (%d AST nodes, depth %d)\n"
        program.Edc_core.Program.name
        (Edc_core.Program.nodes program)
        (Edc_core.Program.depth program);
      exit 0
  | Error (`Parse e) ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
  | Error (`Violations vs) ->
      List.iter
        (fun v -> Printf.eprintf "violation: %s\n" (Edc_core.Verify.violation_to_string v))
        vs;
      exit 1

let verify_cmd =
  let mode =
    Arg.(value
         & opt (enum [ ("active", Edc_core.Verify.Active); ("passive", Edc_core.Verify.Passive) ])
             Edc_core.Verify.Active
         & info [ "mode" ] ~doc:"Replication mode: active (EDS) or passive (EZK).")
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify an extension program offline")
    Term.(const verify_run $ mode $ file)

let () =
  let doc = "Extensible distributed coordination — simulated systems driver" in
  exit (Cmd.eval (Cmd.group (Cmd.info "edc" ~doc) [ bench_cmd; demo_cmd; verify_cmd ]))
