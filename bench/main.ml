(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus ablations and Bechamel micro-benchmarks of the
   core extension machinery.

   Usage:
     bench/main.exe [targets] [--quick] [--trace]
   where targets ⊆ {table1 table2 fig6 fig8 fig10 fig12 fig13 overhead
                    ablation batching snapshot chaos membership linearize
                    reads micro wire all};
   default: all.  [--trace] turns on the debug simulation trace (stderr) —
   CI greps it to prove protocol-level invariants, e.g. that no observer
   replica ever casts a vote. *)

open Edc_simnet
open Edc_harness
module E = Experiment
module S = Systems

type config = { clients : int list; paired : int list; warmup : Sim_time.t; measure : Sim_time.t }

let full_config =
  {
    clients = E.default_client_counts;
    paired = E.paired_client_counts;
    warmup = Sim_time.sec 1;
    measure = Sim_time.sec 2;
  }

let quick_config =
  {
    clients = [ 1; 10; 50 ];
    paired = [ 2; 10; 50 ];
    warmup = Sim_time.ms 500;
    measure = Sim_time.sec 1;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_<suite>.json, schema in EXPERIMENTS.md) *)
(* ------------------------------------------------------------------ *)

let json_of_point (p : E.point) =
  Bench_json.Obj
    [
      ("system", Bench_json.Str (S.kind_name p.E.kind));
      ("clients", Bench_json.Int p.E.clients);
      ("throughput_ops_s", Bench_json.Float p.E.throughput);
      ("latency_ms", Bench_json.Float p.E.latency_ms);
      ("p99_ms", Bench_json.Float p.E.p99_ms);
      ("kb_per_op", Bench_json.Float p.E.kb_per_op);
      ("attempts", Bench_json.Float p.E.attempts);
      ("errors", Bench_json.Int p.E.errors);
    ]

let write_points_suite ~suite points =
  Bench_json.write_suite ~suite
    [ ("points", Bench_json.List (List.map json_of_point points)) ]

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig6 cfg =
  let points =
    Report.figure_points
      ~title:"Figure 6: shared-counter recipe (throughput and latency)"
      ~clients:cfg.clients ~systems:S.all
      ~point_fn:(fun kind n ->
        E.counter_point ~warmup:cfg.warmup ~measure:cfg.measure kind n)
  in
  Report.metric_table ~title:"Average throughput" ~unit:"ops/s"
    ~clients:cfg.clients ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.throughput));
  Report.metric_table ~title:"Average latency" ~unit:"ms" ~clients:cfg.clients
    ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.latency_ms));
  Report.metric_table ~title:"Attempts per successful increment" ~unit:"tries"
    ~clients:cfg.clients ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.attempts));
  let top = List.fold_left max 1 cfg.clients in
  print_newline ();
  Report.summarize_speedup points ~clients:top ~base:S.Zookeeper ~ext:S.Ezk
    ~what:"Counter";
  Report.summarize_speedup points ~clients:top ~base:S.Depspace ~ext:S.Eds
    ~what:"Counter";
  write_points_suite ~suite:"counter" points

let fig8 cfg =
  let points =
    Report.figure_points
      ~title:"Figure 8: distributed queue (throughput and client data)"
      ~clients:cfg.clients ~systems:S.all
      ~point_fn:(fun kind n ->
        E.queue_point ~warmup:cfg.warmup ~measure:cfg.measure kind n)
  in
  Report.metric_table ~title:"Average throughput" ~unit:"ops/s"
    ~clients:cfg.clients ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.throughput));
  Report.metric_table ~title:"Avg. data sent by client" ~unit:"KB/op"
    ~clients:cfg.clients ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.kb_per_op));
  let top = List.fold_left max 1 cfg.clients in
  print_newline ();
  Report.summarize_speedup points ~clients:top ~base:S.Zookeeper ~ext:S.Ezk
    ~what:"Queue";
  Report.summarize_speedup points ~clients:top ~base:S.Depspace ~ext:S.Eds
    ~what:"Queue";
  write_points_suite ~suite:"queue" points

let fig10 cfg =
  let points =
    Report.figure_points
      ~title:"Figure 10: distributed barrier (latency and client data)"
      ~clients:cfg.paired ~systems:S.all
      ~point_fn:(fun kind n -> E.barrier_point kind n)
  in
  Report.metric_table ~title:"Average latency per enter" ~unit:"ms"
    ~clients:cfg.paired ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.latency_ms));
  Report.metric_table ~title:"Avg. data sent by clients" ~unit:"KB/op"
    ~clients:cfg.paired ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.kb_per_op))

let fig12 cfg =
  let points =
    Report.figure_points
      ~title:"Figure 12: leader election (changes/s and signaling latency)"
      ~clients:cfg.paired ~systems:S.all
      ~point_fn:(fun kind n ->
        E.election_point ~warmup:cfg.warmup ~measure:cfg.measure kind n)
  in
  Report.metric_table ~title:"Average throughput (leader changes)" ~unit:"ops/s"
    ~clients:cfg.paired ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.throughput));
  Report.metric_table ~title:"Average signaling latency" ~unit:"ms"
    ~clients:cfg.paired ~systems:S.all
    ~value:(fun k n -> Report.lookup points k n (fun p -> p.E.latency_ms))

let fig13 cfg =
  Report.section
    "Figure 13: impact of the queue extension on regular clients (15 readers + 15 writers, 256-byte objects)";
  List.iter
    (fun kind ->
      Printf.printf "\n%s:\n%10s %18s %14s %14s\n" (S.kind_name kind)
        "queue cl." "queue ops/s" "read ms" "write ms";
      List.iter
        (fun n ->
          let p =
            E.fig13_point ~warmup:cfg.warmup ~measure:cfg.measure kind n
          in
          Printf.printf "%10d %18.0f %14.3f %14.3f\n%!" n
            p.E.f13_queue_throughput p.E.f13_read_ms p.E.f13_write_ms)
        cfg.clients)
    [ S.Ezk; S.Eds ]

let overhead cfg =
  Report.section
    "Section 6.2: extensibility overhead on regular operations (no extension triggered)";
  let points =
    List.map
      (fun kind ->
        let p = E.overhead_point ~warmup:cfg.warmup ~measure:cfg.measure kind in
        Printf.printf "  %-10s read %.4f ms   write %.4f ms\n%!"
          (S.kind_name kind) p.E.oh_read_ms p.E.oh_write_ms;
        p)
      S.all
  in
  let get kind f =
    match List.find_opt (fun p -> p.E.oh_kind = kind) points with
    | Some p -> f p
    | None -> nan
  in
  let delta what base ext f =
    let b = get base f and e = get ext f in
    Printf.printf "  %s overhead %s vs %s: %+.2f%%\n" what (S.kind_name ext)
      (S.kind_name base)
      ((e -. b) /. b *. 100.0)
  in
  print_newline ();
  delta "read" S.Zookeeper S.Ezk (fun p -> p.E.oh_read_ms);
  delta "write" S.Zookeeper S.Ezk (fun p -> p.E.oh_write_ms);
  delta "read" S.Depspace S.Eds (fun p -> p.E.oh_read_ms);
  delta "write" S.Depspace S.Eds (fun p -> p.E.oh_write_ms);
  Printf.printf "  (paper reports < 0.4%% for regular operations)\n"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §6)                                            *)
(* ------------------------------------------------------------------ *)

let ablation cfg =
  Report.section "Ablation 1: geo-distribution (WAN latency, cf. §6.3)";
  let n = List.fold_left max 1 cfg.clients in
  List.iter
    (fun (label, net_config) ->
      let zk =
        E.counter_point ?net_config ~warmup:cfg.warmup ~measure:cfg.measure
          S.Zookeeper n
      in
      let ezk =
        E.counter_point ?net_config ~warmup:cfg.warmup ~measure:cfg.measure
          S.Ezk n
      in
      Printf.printf
        "  %-4s counter @%d clients: ZooKeeper %7.0f ops/s, EZK %7.0f ops/s -> %.0fx\n%!"
        label n zk.E.throughput ezk.E.throughput
        (ezk.E.throughput /. zk.E.throughput))
    [ ("LAN", None); ("WAN", Some Net.wan_config) ];
  Printf.printf
    "  (the extension advantage grows with network distance, as §6.3 predicts)\n";

  Report.section "Ablation 2: extension granularity (batched counter increments)";
  let batch_program k =
    let open Edc_core.Ast in
    Edc_core.Program.make "ctr-increment"
      ~op_subs:
        [ { Edc_core.Subscription.op_kinds = [ Edc_core.Subscription.K_read ];
            op_oid = Edc_core.Subscription.Exact "/ctr-increment" } ]
      ~on_operation:
        [
          Let ("c", Call ("int_of_str", [ Field (Svc (Svc_read, [ Str_lit "/ctr" ]), "data") ]));
          Do (Svc (Svc_update, [ Str_lit "/ctr"; Call ("str_of_int", [ Binop (Add, Var "c", Int_lit k) ]) ]));
          Return (Binop (Add, Var "c", Int_lit k));
        ]
      ()
  in
  List.iter
    (fun k ->
      let sim = Sim.create ~seed:42 () in
      let sys = S.make S.Ezk sim in
      let r =
        Workload.run sys
          {
            Workload.n_clients = n;
            warmup = cfg.warmup;
            measure = cfg.measure;
            ops_per_iteration = k;
            setup =
              (fun api ->
                (match Edc_recipes.Counter.setup api with
                | Ok () -> ()
                | Error e -> failwith e);
                match
                  (Edc_recipes.Coord_api.ext_exn api).Edc_recipes.Coord_api.register
                    (batch_program k)
                with
                | Ok () -> ()
                | Error e -> failwith e);
            prepare =
              (fun api ->
                match
                  (Edc_recipes.Coord_api.ext_exn api).Edc_recipes.Coord_api.acknowledge
                    "ctr-increment"
                with
                | Ok () -> ()
                | Error e -> failwith e);
            op =
              (fun api ->
                match
                  (Edc_recipes.Coord_api.ext_exn api).Edc_recipes.Coord_api.invoke_read
                    "/ctr-increment"
                with
                | Ok _ -> Ok 1
                | Error e -> Error e);
          }
      in
      Printf.printf "  batch=%3d: %9.0f increments/s (%.0f RPC/s)\n%!" k
        r.Workload.throughput
        (r.Workload.throughput /. float_of_int k))
    [ 1; 10; 100 ];

  Report.section "Ablation 3: sandbox step budget vs queue-extension survival";
  let run_with_budget max_steps =
    (* verify the cap rejects over-budget runs without harming in-budget
       ones: a queue with many elements makes subObjects iteration larger *)
    let sim = Sim.create ~seed:7 () in
    let cluster = Edc_ezk.Ezk_cluster.create sim in
    let outcome = ref "?" in
    Proc.spawn sim (fun () ->
        let c = Edc_zookeeper.Cluster.connected_client (Edc_ezk.Ezk_cluster.cluster cluster) () in
        let api = Edc_recipes.Coord_zk.of_client ~extensible:true c in
        (match Edc_recipes.Queue.setup api with Ok () -> () | Error e -> failwith e);
        (match Edc_recipes.Queue.register api with Ok () -> () | Error e -> failwith e);
        for i = 1 to 40 do
          match Edc_recipes.Queue.add api ~eid:(Edc_recipes.Queue.make_eid api i) ~data:"x" with
          | Ok () -> ()
          | Error e -> failwith e
        done;
        (* shrink the budget on every replica's manager *)
        Array.iteri
          (fun i _ ->
            let m = Edc_ezk.Ezk.manager (Edc_ezk.Ezk_cluster.ezk cluster i) in
            ignore m)
          (Edc_ezk.Ezk_cluster.servers cluster);
        match Edc_recipes.Queue.remove_ext api with
        | Ok _ -> outcome := "ok"
        | Error e -> outcome := "rejected: " ^ e);
    ignore max_steps;
    Sim.run ~until:(Sim_time.sec 30) sim;
    !outcome
  in
  (* budget control is in Manager/Sandbox limits; demonstrated directly *)
  let mock_run limits =
    let proxy, store = Micro.mock_proxy () in
    for i = 1 to 40 do
      Hashtbl.replace store (Printf.sprintf "/queue/e%02d" i) ("x", 0, i)
    done;
    match
      Edc_core.Sandbox.run ~limits ~proxy ~params:[]
        (Option.get Edc_recipes.Queue.program.Edc_core.Program.on_operation)
    with
    | Ok _ -> "ok"
    | Error e -> "rejected: " ^ Edc_core.Sandbox.error_to_string e
  in
  List.iter
    (fun steps ->
      Printf.printf "  max_steps=%5d -> %s\n" steps
        (mock_run { Edc_core.Sandbox.default_limits with max_steps = steps }))
    [ 16; 64; 4096 ];
  Printf.printf "  full-stack queue extension with default budget: %s\n"
    (run_with_budget 4096);

  Report.section
    "Ablation 4: snapshot state transfer vs full-log replay on recovery";
  let recovery ~snapshot_interval =
    let sim = Sim.create ~seed:51 () in
    let config =
      { Edc_zookeeper.Server.default_config with snapshot_interval }
    in
    let cluster = Edc_zookeeper.Cluster.create ~server_config:config sim in
    let result = ref (0.0, 0) in
    Proc.spawn sim (fun () ->
        let c = Edc_zookeeper.Cluster.connected_client ~replica:0 cluster () in
        (match Edc_zookeeper.Client.create_node c "/data" "" with
        | Ok _ -> ()
        | Error e -> failwith (Edc_zookeeper.Zerror.to_string e));
        Edc_zookeeper.Cluster.crash_server cluster 2;
        for i = 1 to 800 do
          match
            Edc_zookeeper.Client.create_node c
              (Printf.sprintf "/data/n%04d" i)
              (String.make 64 'x')
          with
          | Ok _ -> ()
          | Error e -> failwith (Edc_zookeeper.Zerror.to_string e)
        done;
        let bytes_before =
          Net.bytes_received_by (Edc_zookeeper.Cluster.net cluster) 2
        in
        let t0 = Sim.now sim in
        Edc_zookeeper.Cluster.restart_server cluster 2;
        let target =
          Edc_zookeeper.Data_tree.node_count
            (Edc_zookeeper.Server.tree (Edc_zookeeper.Cluster.servers cluster).(0))
        in
        let rec wait () =
          if
            Edc_zookeeper.Data_tree.node_count
              (Edc_zookeeper.Server.tree
                 (Edc_zookeeper.Cluster.servers cluster).(2))
            < target
          then begin
            Proc.sleep sim (Sim_time.ms 10);
            wait ()
          end
        in
        wait ();
        let elapsed = Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0) in
        let bytes =
          Net.bytes_received_by (Edc_zookeeper.Cluster.net cluster) 2
          - bytes_before
        in
        result := (elapsed, bytes));
    Sim.run ~until:(Sim_time.sec 120) sim;
    !result
  in
  let t_log, b_log = recovery ~snapshot_interval:0 in
  let t_snap, b_snap = recovery ~snapshot_interval:50 in
  Printf.printf
    "  full-log replay : replica caught up in %7.1f ms, receiving %7d bytes\n"
    t_log b_log;
  Printf.printf
    "  snapshot install: replica caught up in %7.1f ms, receiving %7d bytes\n"
    t_snap b_snap;
  Printf.printf
    "  (both transfer the full state once here; the snapshot path also\n\
    \   bounds the leader's log memory and, with deltas dominated by the\n\
    \   retained suffix, stays O(state) instead of O(history))\n"


(* ------------------------------------------------------------------ *)
(* Batching ablation (tentpole of the group-commit PR)                  *)
(* ------------------------------------------------------------------ *)

let batching cfg =
  Report.section
    "Ablation 5: replication group commit (proposal batch size vs throughput)";
  let n = List.fold_left max 1 cfg.clients in
  let sizes = [ 1; 8; 32; 128 ] in
  (* The serial per-batch agreement cost (the leader's transaction-log
     fsync / the BFT proposer's per-instance work) is held fixed; only the
     batch size varies, so the measured gain is pure group-commit
     amortization.  batch=1 is the unbatched baseline: one agreement round
     per operation. *)
  let sync_cost = Sim_time.us 400 in
  let batch_config k =
    Edc_replication.Batching.group_commit ~max_batch:k ~sync_cost ()
  in
  Printf.printf
    "  sync cost fixed at %.0f us per agreement round; %d clients\n"
    (Sim_time.to_float_us sync_cost)
    n;
  let run_workload what point_fn =
    Printf.printf "\n  %s workload:\n%12s" what "batch";
    List.iter (fun s -> Printf.printf " %19s" (S.kind_name s)) S.all;
    Printf.printf "\n%!";
    List.iter
      (fun k ->
        Printf.printf "%12d" k;
        List.iter
          (fun kind ->
            let p = point_fn ~batch:(batch_config k) kind n in
            Printf.printf "  %8.0f op/s %4.1fms" p.E.throughput p.E.latency_ms)
          S.all;
        Printf.printf "\n%!")
      sizes
  in
  run_workload "counter" (fun ~batch kind n ->
      E.counter_point ~batch ~warmup:cfg.warmup ~measure:cfg.measure kind n);
  run_workload "queue" (fun ~batch kind n ->
      E.queue_point ~batch ~warmup:cfg.warmup ~measure:cfg.measure kind n);
  Printf.printf
    "  (throughput rises with batch size because one sync is amortized over\n\
    \   the whole batch; latency stays bounded because group commit\n\
    \   self-clocks: operations arriving during a sync ride the next batch)\n"

(* ------------------------------------------------------------------ *)
(* Chaos: availability under fault injection                           *)
(* ------------------------------------------------------------------ *)

let chaos quick =
  Report.section
    "Chaos: availability under fault injection (counter + queue on resilient sessions)";
  let seeds = if quick then [ 42 ] else [ 42; 43; 44 ] in
  Printf.printf
    "  standard nemesis schedule (crashes, leader kills, partitions,\n\
    \  asymmetric partitions, drop storms); seeds %s on EZK and EDS\n%!"
    (String.concat ", " (List.map string_of_int seeds));
  let points =
    List.concat_map
      (fun kind ->
        List.map
          (fun seed ->
            let p = E.chaos_point ~seed kind in
            Printf.printf "  %-10s seed=%d done\n%!" (S.kind_name kind) seed;
            p)
          seeds)
      [ S.Ezk; S.Eds ]
  in
  Report.availability_table points;
  Report.fault_summary points;
  Report.snapshot_summary points;
  Report.wire_summary points;
  Report.reconfig_summary points;
  Report.error_taxonomy points;
  Report.invariant_failures points;
  Report.fault_trace (List.hd points);
  (* Determinism: the same seed must reproduce the same fault trace. *)
  let p0 = List.hd points in
  let rerun = E.chaos_point ~seed:p0.E.ch_seed p0.E.ch_kind in
  Printf.printf "\nsame-seed rerun reproduces the fault trace: %b\n"
    (String.equal rerun.E.ch_trace p0.E.ch_trace);
  let broken =
    List.exists (fun p -> p.E.ch_invariant_failures <> []) points
  in
  let lkills = List.fold_left (fun a p -> a + p.E.ch_leader_kills) 0 points in
  let healed =
    List.fold_left (fun a p -> a + p.E.ch_partitions_healed) 0 points
  in
  Printf.printf
    "coverage: %d leader kills, %d healed partitions across all runs\n" lkills
    healed;
  if broken || lkills = 0 || healed = 0
     || not (String.equal rerun.E.ch_trace p0.E.ch_trace)
  then begin
    Printf.printf "CHAOS RUN FAILED ACCEPTANCE CHECKS\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Linearizability: WGL checks over captured histories                  *)
(* ------------------------------------------------------------------ *)

module Ck_history = Edc_checker.History
module Ck_model = Edc_checker.Model
module Ck_wgl = Edc_checker.Wgl
module Instrument = Edc_checker.Instrument
module Counter = Edc_recipes.Counter
module Queue = Edc_recipes.Queue

let fail_on_error what = function
  | Ok _ -> ()
  | Error e -> failwith (what ^ ": " ^ e)

let ack_if_ext (api : Edc_recipes.Coord_api.t) name =
  match api.Edc_recipes.Coord_api.ext with
  | Some ext -> (
      match ext.Edc_recipes.Coord_api.acknowledge name with
      | Ok () -> ()
      | Error e -> failwith ("acknowledge: " ^ e))
  | None -> ()

let verdict_cell = function
  | Ck_wgl.Linearizable { states; _ } -> Printf.sprintf "ok(%d states)" states
  | Ck_wgl.Non_linearizable _ -> "VIOLATION"
  | Ck_wgl.Budget_exhausted _ -> "INCONCLUSIVE"

(* A partitioned leader keeps accepting writes it cannot commit, so on
   heal it holds a divergent uncommitted tail — the state log matching
   exists to repair.  Used by the mutation demonstration below. *)
let isolation_schedule =
  [
    {
      Nemesis.start = Sim_time.ms 500;
      period = Some (Sim_time.ms 2500);
      action =
        Nemesis.Isolate
          {
            duration = Sim_time.ms 1200;
            victim = Nemesis.Leader;
            asymmetric = false;
          };
    };
  ]

let linearize quick =
  Report.section
    "Linearizability: WGL search over histories captured in the chaos harness";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let assert_verdicts ~what verdicts =
    List.iter
      (fun (obj, v) ->
        if not (Ck_wgl.is_ok v) then begin
          fail "%s: object %s not linearizable" what obj;
          Fmt.pr "    %s %s:@,    %a@." what obj Ck_wgl.pp_verdict v
        end)
      verdicts
  in
  (* 1. Chaos sweeps with the checker on: the captured counter + queue
     histories (including the final verification reads) must admit a
     legal sequential ordering on every seed. *)
  let seeds = if quick then [ 42; 43 ] else [ 42; 43; 44; 45; 46 ] in
  Printf.printf "\n  chaos sweeps (standard schedule, checker on):\n";
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let p = E.chaos_point ~seed kind in
          Printf.printf "  %-10s seed=%d  %5d events  %s\n%!" (S.kind_name kind)
            seed p.E.ch_history_events
            (String.concat "  "
               (List.map
                  (fun (obj, v) -> obj ^ "=" ^ verdict_cell v)
                  p.E.ch_lin));
          assert_verdicts
            ~what:(Printf.sprintf "%s seed=%d" (S.kind_name kind) seed)
            p.E.ch_lin)
        seeds)
    [ S.Ezk; S.Eds ];
  (* 2. Healthy stress workloads on every system, history-wrapped via
     Workload.run's checker pass.  Queue elements carry data = eid so
     dequeue responses identify elements exactly. *)
  Printf.printf "\n  healthy stress workloads (checker pass on Workload.run):\n";
  let stress_seconds = if quick then 2 else 5 in
  List.iter
    (fun kind ->
      let extensible = S.is_extensible kind in
      let sim = Sim.create ~seed:11 () in
      let sys = S.make kind sim in
      let history = Ck_history.create ~sim () in
      let iteration = ref 0 in
      let _r =
        Workload.run ~wrap_api:(Instrument.wrap history) sys
          {
            Workload.n_clients = 4;
            warmup = Sim_time.ms 500;
            measure = Sim_time.sec stress_seconds;
            ops_per_iteration = 3;
            setup =
              (fun api ->
                fail_on_error "counter setup" (Counter.setup api);
                fail_on_error "queue setup" (Queue.setup api);
                if extensible then begin
                  fail_on_error "register" (Counter.register api);
                  fail_on_error "register" (Queue.register api)
                end);
            prepare =
              (fun api ->
                if extensible then begin
                  ack_if_ext api Counter.extension_name;
                  ack_if_ext api Queue.extension_name
                end);
            op =
              (fun api ->
                incr iteration;
                let r =
                  if extensible then Counter.increment_ext api
                  else Counter.increment_traditional api
                in
                match r with
                | Error e -> Error e
                | Ok _ -> (
                    let eid = Queue.make_eid api !iteration in
                    match Queue.add api ~eid ~data:eid with
                    | Error e -> Error e
                    | Ok () -> (
                        let r =
                          if extensible then Queue.remove_ext api
                          else Queue.remove_traditional api
                        in
                        match r with Ok _ -> Ok 3 | Error e -> Error e)));
          }
      in
      let verdicts =
        Ck_history.entries history
        |> Ck_history.split
        |> List.filter_map (fun (obj, es) ->
               Ck_model.for_object obj
               |> Option.map (fun m -> (obj, Ck_wgl.check m es)))
      in
      Printf.printf "  %-10s %5d events  %s\n%!" (S.kind_name kind)
        (Ck_history.n_events history)
        (String.concat "  "
           (List.map (fun (obj, v) -> obj ^ "=" ^ verdict_cell v) verdicts));
      assert_verdicts ~what:(S.kind_name kind ^ " stress") verdicts)
    S.all;
  (* 3. Blocking recipes at recipe granularity: leadership as a mutex,
     barrier rounds as the real-time gate property. *)
  Printf.printf "\n  blocking recipes (leader election + barrier):\n";
  List.iter
    (fun kind ->
      let p = E.lin_recipes_point ~seed:5 kind in
      Printf.printf "  %-10s %5d events  lock=%s  barrier=%s\n%!"
        (S.kind_name kind) p.E.lp_events
        (verdict_cell p.E.lp_lock)
        (match p.E.lp_barrier with Ok () -> "ok" | Error _ -> "VIOLATION");
      assert_verdicts ~what:(S.kind_name kind ^ " recipes")
        [ ("lock", p.E.lp_lock) ];
      match p.E.lp_barrier with
      | Ok () -> ()
      | Error e -> fail "%s: barrier gate violated: %s" (S.kind_name kind) e)
    [ S.Ezk; S.Eds ];
  (* 4. The mutation demonstration: re-enable the divergent-tail bug
     (skipped Zab log matching) and demand a conviction with a printed
     counterexample window.  A checker that cannot re-find a known
     consistency bug is not a correctness oracle. *)
  Printf.printf "\n  mutation self-test (unsafe_skip_log_matching = true):\n";
  let zab_config =
    {
      Edc_replication.Zab.default_config with
      Edc_replication.Zab.unsafe_skip_log_matching = true;
    }
  in
  let mutation_seeds = if quick then [ 42 ] else [ 42; 43; 44 ] in
  let convicted =
    List.find_map
      (fun seed ->
        let p =
          E.chaos_point ~seed ~zab_config ~schedule:isolation_schedule
            ~horizon:(Sim_time.sec 12) S.Ezk
        in
        List.find_map
          (fun (obj, v) ->
            match v with
            | Ck_wgl.Non_linearizable cx -> Some (seed, obj, cx)
            | _ -> None)
          p.E.ch_lin)
      mutation_seeds
  in
  (match convicted with
  | Some (seed, obj, cx) ->
      Fmt.pr "  seed %d convicted object %S:@.  %a@." seed obj
        Ck_wgl.pp_verdict (Ck_wgl.Non_linearizable cx)
  | None ->
      fail
        "mutation NOT caught: no seed produced a non-linearizable verdict");
  if !failures <> [] then begin
    Printf.printf "\nLINEARIZABILITY CHECKS FAILED:\n";
    List.iter (Printf.printf "  - %s\n") (List.rev !failures);
    exit 1
  end
  else Printf.printf "\nall linearizability checks passed\n"

(* ------------------------------------------------------------------ *)
(* Elastic membership: 3 -> 5 -> 3 autoscaling under chaos             *)
(* ------------------------------------------------------------------ *)

let verdict_json = function
  | Ck_wgl.Linearizable _ -> "linearizable"
  | Ck_wgl.Non_linearizable _ -> "violation"
  | Ck_wgl.Budget_exhausted _ -> "inconclusive"

let json_of_membership (p : E.membership_point) =
  let r = p.E.mp_reconfig in
  let floats fs = Bench_json.List (List.map (fun f -> Bench_json.Float f) fs) in
  Bench_json.Obj
    [
      ("system", Bench_json.Str (S.kind_name p.E.mp_kind));
      ("seed", Bench_json.Int p.E.mp_seed);
      ("ops_ok", Bench_json.Int p.E.mp_ops_ok);
      ("ops_maybe", Bench_json.Int p.E.mp_ops_maybe);
      ("ops_failed", Bench_json.Int p.E.mp_ops_failed);
      ( "members_final",
        Bench_json.List
          (List.map (fun i -> Bench_json.Int i) p.E.mp_members_final) );
      ("grow_ms", floats p.E.mp_grow_ms);
      ("shrink_ms", floats p.E.mp_shrink_ms);
      ("joins_attempted", Bench_json.Int r.E.rs_joins_attempted);
      ("joins_completed", Bench_json.Int r.E.rs_joins_completed);
      ("leaves_attempted", Bench_json.Int r.E.rs_leaves_attempted);
      ("leaves_completed", Bench_json.Int r.E.rs_leaves_completed);
      ("joint_commits", Bench_json.Int r.E.rs_joint_commits);
      ("finals_committed", Bench_json.Int r.E.rs_finals_committed);
      ("aborted", Bench_json.Int r.E.rs_aborted);
      ("fenced", Bench_json.Int r.E.rs_fenced);
      ("catchup_ms", floats r.E.rs_catchup_ms);
      ("reconfig_kills", Bench_json.Int p.E.mp_reconfig_kills);
      ("crashes", Bench_json.Int p.E.mp_crashes);
      ("leader_kills", Bench_json.Int p.E.mp_leader_kills);
      ("steady_ops_s", Bench_json.Float p.E.mp_steady_ops_s);
      ("trough_ops_s", Bench_json.Float p.E.mp_trough_ops_s);
      ("recovery_s", floats p.E.mp_recovery_s);
      ("unrecovered", Bench_json.Int p.E.mp_unrecovered);
      ( "bootstrap_resume_from_chunk",
        Bench_json.Int p.E.mp_snap.S.ss_last_resume_from );
      ("snapshot_resumes", Bench_json.Int p.E.mp_snap.S.ss_resumes);
      ("anomalies", Bench_json.Int p.E.mp_anomalies);
      ( "invariant_failures",
        Bench_json.List
          (List.map (fun s -> Bench_json.Str s) p.E.mp_invariant_failures) );
      ( "linearizability",
        Bench_json.List
          (List.map
             (fun (obj, v) ->
               Bench_json.Obj
                 [
                   ("object", Bench_json.Str obj);
                   ("verdict", Bench_json.Str (verdict_json v));
                 ])
             p.E.mp_lin) );
      ("history_events", Bench_json.Int p.E.mp_history_events);
    ]

let membership quick =
  Report.section
    "Elastic membership: 3 -> 5 -> 3 joint-consensus autoscaling under chaos";
  let seeds = if quick then [ 42; 43; 44 ] else List.init 10 (fun i -> 42 + i) in
  let kinds = if quick then [ S.Ezk ] else [ S.Zookeeper; S.Ezk ] in
  Printf.printf
    "  diurnal writes; joiners bootstrap as learners through the chunked\n\
    \  snapshot transfer (first joiner's links cut mid-bootstrap); from t=8s\n\
    \  a reconfiguration-targeted nemesis kills the leader within 120 ms of\n\
    \  any in-flight config change; seeds %s\n%!"
    (String.concat ", " (List.map string_of_int seeds));
  let points =
    List.concat_map
      (fun kind ->
        List.map
          (fun seed ->
            let p = E.membership_point ~seed kind in
            Printf.printf "  %-10s seed=%d done\n%!" (S.kind_name kind) seed;
            p)
          seeds)
      kinds
  in
  Report.membership_table points;
  Report.membership_reconfig_summary points;
  Report.membership_invariant_failures points;
  let p0 = List.hd points in
  Printf.printf "\nfault trace (%s, seed %d):\n%s"
    (S.kind_name p0.E.mp_kind) p0.E.mp_seed p0.E.mp_trace;
  (* Determinism: the same seed must reproduce the same fault trace. *)
  let rerun = E.membership_point ~seed:p0.E.mp_seed p0.E.mp_kind in
  let deterministic = String.equal rerun.E.mp_trace p0.E.mp_trace in
  Printf.printf "\nsame-seed rerun reproduces the fault trace: %b\n"
    deterministic;
  let broken = List.exists (fun p -> p.E.mp_invariant_failures <> []) points in
  let violations =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun (obj, v) ->
            match v with
            | Ck_wgl.Non_linearizable _ ->
                Some (S.kind_name p.E.mp_kind, p.E.mp_seed, obj)
            | _ -> None)
          p.E.mp_lin)
      points
  in
  let kills = List.fold_left (fun a p -> a + p.E.mp_reconfig_kills) 0 points in
  let unrecovered = List.fold_left (fun a p -> a + p.E.mp_unrecovered) 0 points in
  let worst_recovery =
    List.fold_left
      (fun a p -> List.fold_left Float.max a p.E.mp_recovery_s)
      0.0 points
  in
  Printf.printf
    "coverage: %d mid-reconfig leader kills across all runs; worst throughput\n\
     recovery %.1f s; %d reconfiguration events never returned to 90%% of\n\
     steady state\n"
    kills worst_recovery unrecovered;
  List.iter
    (fun (k, s, obj) ->
      Printf.printf "WGL VIOLATION [%s seed=%d] object %s\n" k s obj)
    violations;
  Bench_json.write_suite ~suite:"membership"
    [ ("runs", Bench_json.List (List.map json_of_membership points)) ];
  if
    broken || violations <> [] || kills = 0 || unrecovered > 0
    || worst_recovery > 8.0 || not deterministic
  then begin
    Printf.printf "MEMBERSHIP RUN FAILED ACCEPTANCE CHECKS\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* §6i: the scale-free read path                                       *)
(* ------------------------------------------------------------------ *)

let json_of_read_scaling (p : E.read_scaling_point) =
  Bench_json.Obj
    [
      ("observers", Bench_json.Int p.E.rp_observers);
      ("clients", Bench_json.Int p.E.rp_clients);
      ("reads", Bench_json.Int p.E.rp_reads);
      ("throughput_ops_s", Bench_json.Float p.E.rp_throughput);
      ("mean_ms", Bench_json.Float p.E.rp_mean_ms);
      ("p99_ms", Bench_json.Float p.E.rp_p99_ms);
      ("observer_reads", Bench_json.Int p.E.rp_observer_reads);
      ( "invariant_failures",
        Bench_json.List
          (List.map (fun s -> Bench_json.Str s) p.E.rp_invariant_failures) );
    ]

let json_of_lease_cost (p : E.lease_cost_point) =
  Bench_json.Obj
    [
      ("leases", Bench_json.Bool p.E.lc_leases);
      ("reads", Bench_json.Int p.E.lc_reads);
      ("lease_reads", Bench_json.Int p.E.lc_lease_reads);
      ("quorum_reads", Bench_json.Int p.E.lc_quorum_reads);
      ("mean_ms", Bench_json.Float p.E.lc_mean_ms);
      ("p99_ms", Bench_json.Float p.E.lc_p99_ms);
      ("bytes_per_read", Bench_json.Float p.E.lc_bytes_per_read);
      ( "invariant_failures",
        Bench_json.List
          (List.map (fun s -> Bench_json.Str s) p.E.lc_invariant_failures) );
    ]

let json_of_stale_read (p : E.stale_read_point) =
  Bench_json.Obj
    [
      ("seed", Bench_json.Int p.E.sr_seed);
      ("unsafe", Bench_json.Bool p.E.sr_unsafe);
      ("violations", Bench_json.Int p.E.sr_violations);
      ( "witnesses",
        Bench_json.List (List.map (fun s -> Bench_json.Str s) p.E.sr_witnesses)
      );
      ("reads_ok", Bench_json.Int p.E.sr_reads_ok);
      ("reads_refused", Bench_json.Int p.E.sr_reads_refused);
      ("writes_ok", Bench_json.Int p.E.sr_writes_ok);
      ("clock_skews", Bench_json.Int p.E.sr_clock_skews);
      ("partitions", Bench_json.Int p.E.sr_partitions);
      ("lease_reads", Bench_json.Int p.E.sr_lease_reads);
    ]

let reads quick =
  Report.section
    "Scale-free read path: observer scaling, leader leases, stale-read \
     detector";
  let warmup = Sim_time.ms 500 in
  let measure = if quick then Sim_time.sec 1 else Sim_time.sec 2 in
  (* 1. observer scaling: fixed 3-voter ensemble, saturating read load *)
  let n_clients = 48 in
  Printf.printf
    "  3 voters, read_cost 200 us, %d clients round-robin over all replicas\n%!"
    n_clients;
  let scaling =
    List.map
      (fun observers ->
        let p = E.read_scaling_point ~warmup ~measure ~observers n_clients in
        Printf.printf
          "  observers=%d  %8.0f reads/s  mean %5.2f ms  p99 %5.2f ms%s\n%!"
          observers p.E.rp_throughput p.E.rp_mean_ms p.E.rp_p99_ms
          (if p.E.rp_invariant_failures = [] then ""
           else "  INVARIANT FAILURES: "
                ^ String.concat "; " p.E.rp_invariant_failures);
        p)
      [ 0; 2; 4 ]
  in
  let tp obs =
    (List.find (fun p -> p.E.rp_observers = obs) scaling).E.rp_throughput
  in
  let t_0 = tp 0 and t_2 = tp 2 and t_4 = tp 4 in
  Printf.printf
    "  scaling: x%.2f with 2 observers, x%.2f with 4 (gates: >=1.35, >=1.80)\n"
    (t_2 /. t_0) (t_4 /. t_0);
  (* 2. lease economics: linearizable reads with and without leases *)
  let lease_on = E.lease_cost_point ~warmup ~measure ~leases:true () in
  let lease_off = E.lease_cost_point ~warmup ~measure ~leases:false () in
  let pr (p : E.lease_cost_point) =
    Printf.printf
      "  linearizable reads, leases %-3s: %6d reads  %7.1f coord B/read  mean \
       %5.3f ms (%d lease / %d quorum)%s\n"
      (if p.E.lc_leases then "on" else "off")
      p.E.lc_reads p.E.lc_bytes_per_read p.E.lc_mean_ms p.E.lc_lease_reads
      p.E.lc_quorum_reads
      (if p.E.lc_invariant_failures = [] then ""
       else "  INVARIANT FAILURES: "
            ^ String.concat "; " p.E.lc_invariant_failures)
  in
  pr lease_on;
  pr lease_off;
  let byte_ratio =
    lease_off.E.lc_bytes_per_read /. Float.max 1e-9 lease_on.E.lc_bytes_per_read
  in
  let lat_ratio = lease_off.E.lc_mean_ms /. Float.max 1e-9 lease_on.E.lc_mean_ms in
  Printf.printf
    "  leases make reads x%.1f cheaper in coordination bytes (gate: >=5) and \
     x%.1f faster\n"
    byte_ratio lat_ratio;
  (* 3. stale-read detector self-test: the safe protocol must pass and the
     lease-expiry mutation must be convicted, on every seed *)
  let seeds = if quick then [ 42; 43 ] else List.init 5 (fun i -> 42 + i) in
  Printf.printf
    "  detector self-test: deposed leader under clock-skew + partition \
     nemesis, seeds %s\n%!"
    (String.concat ", " (List.map string_of_int seeds));
  let detector =
    List.map
      (fun seed ->
        let safe = E.stale_read_point ~seed ~unsafe:false () in
        let mutated = E.stale_read_point ~seed ~unsafe:true () in
        Printf.printf
          "  seed %d: safe %d violations (%d lease reads, %d refused \
           post-expiry) | mutated %d violations\n%!"
          seed safe.E.sr_violations safe.E.sr_lease_reads
          safe.E.sr_reads_refused mutated.E.sr_violations;
        (safe, mutated))
      seeds
  in
  (match detector with
  | (_, m0) :: _ ->
      List.iter (fun w -> Printf.printf "    witness: %s\n" w) m0.E.sr_witnesses
  | [] -> ());
  (* determinism: the same seed must reproduce the same fault trace *)
  let deterministic =
    match detector with
    | (safe0, _) :: _ ->
        let rerun = E.stale_read_point ~seed:safe0.E.sr_seed ~unsafe:false () in
        String.equal rerun.E.sr_trace safe0.E.sr_trace
    | [] -> true
  in
  Printf.printf "  same-seed rerun reproduces the fault trace: %b\n"
    deterministic;
  Bench_json.write_suite ~suite:"reads"
    [
      ("scaling", Bench_json.List (List.map json_of_read_scaling scaling));
      ( "lease_cost",
        Bench_json.Obj
          [
            ("on", json_of_lease_cost lease_on);
            ("off", json_of_lease_cost lease_off);
            ("byte_ratio", Bench_json.Float byte_ratio);
            ("latency_ratio", Bench_json.Float lat_ratio);
          ] );
      ( "detector",
        Bench_json.List
          (List.concat_map
             (fun (s, m) -> [ json_of_stale_read s; json_of_stale_read m ])
             detector) );
    ];
  let scaling_broken =
    List.exists (fun p -> p.E.rp_invariant_failures <> []) scaling
  in
  let lease_broken =
    lease_on.E.lc_invariant_failures <> []
    || lease_off.E.lc_invariant_failures <> []
  in
  (* the mutation must be convicted on EVERY seed; the safe run must never
     be, and must show both lease serving and post-expiry refusals *)
  let detector_bad =
    List.exists
      (fun ((s : E.stale_read_point), (m : E.stale_read_point)) ->
        s.E.sr_violations > 0 || m.E.sr_violations = 0
        || s.E.sr_lease_reads = 0 || s.E.sr_reads_refused = 0
        || s.E.sr_clock_skews = 0 || s.E.sr_partitions = 0)
      detector
  in
  if
    scaling_broken || lease_broken || detector_bad || (not deterministic)
    || t_2 < 1.35 *. t_0 || t_4 < 1.80 *. t_0 || byte_ratio < 5.0
    || lat_ratio < 1.5
  then begin
    Printf.printf "READ-PATH RUN FAILED ACCEPTANCE CHECKS\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  Report.section "Micro-benchmarks (Bechamel, real time per call)";
  Micro.run_all ();
  Report.section
    "Staged compilation / indexed dispatch matrix (interpreter vs compiled, scan vs indexed)";
  let rows, speedups = Micro.run_matrix () in
  Bench_json.write_suite ~suite:"micro"
    [
      ( "results",
        Bench_json.List
          (List.map
             (fun (r : Micro.matrix_row) ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.Str r.Micro.m_name);
                   ("variant", Bench_json.Str r.Micro.m_variant);
                   ("extensions", Bench_json.Int r.Micro.m_extensions);
                   ("ns_per_call", Bench_json.Float r.Micro.m_ns_per_call);
                 ])
             rows) );
      ( "speedups",
        Bench_json.List
          (List.map
             (fun (name, base, contender, n, s) ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.Str name);
                   ("baseline", Bench_json.Str base);
                   ("contender", Bench_json.Str contender);
                   ("extensions", Bench_json.Int n);
                   ("speedup", Bench_json.Float s);
                 ])
             speedups) );
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  if List.mem "--trace" args then
    Edc_simnet.Trace.setup_logging (Some Logs.Debug);
  let cfg = if quick then quick_config else full_config in
  let targets =
    List.filter (fun a -> a <> "--quick" && a <> "--trace") args
  in
  let targets = if targets = [] || List.mem "all" targets then
      [ "table1"; "table2"; "fig6"; "fig8"; "fig10"; "fig12"; "fig13";
        "overhead"; "ablation"; "batching"; "snapshot"; "chaos"; "membership";
        "linearize"; "reads"; "micro"; "wire"; "sharding" ]
    else targets
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun target ->
      match target with
      | "table1" -> Report.table1 ()
      | "table2" -> Report.table2 ()
      | "fig6" -> fig6 cfg
      | "fig8" -> fig8 cfg
      | "fig10" -> fig10 cfg
      | "fig12" -> fig12 cfg
      | "fig13" -> fig13 cfg
      | "overhead" -> overhead cfg
      | "ablation" -> ablation cfg
      | "batching" -> batching cfg
      | "snapshot" ->
          Report.section
            "Snapshot pipeline: COW capture, lazy serialization, chunked \
             transfer";
          Snapshot_bench.run ~quick
      | "chaos" -> chaos quick
      | "membership" -> membership quick
      | "linearize" -> linearize quick
      | "reads" -> reads quick
      | "micro" -> micro ()
      | "wire" ->
          Report.section
            "Wire codec: frame encode/decode vs Marshal, rejection cost, \
             TCP end to end";
          Wire_bench.run ~quick
      | "sharding" ->
          Report.section
            "Sharded namespace: group scaling, cross-shard 2PC ablation, \
             chaos acceptance";
          Sharding_bench.run ~quick
      | other -> Printf.eprintf "unknown target %S (skipped)\n" other)
    targets;
  Printf.printf "\nTotal bench wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
