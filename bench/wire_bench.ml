(* Wire codec benchmarks (PR: untrusted-bytes binary codec + pluggable
   transport; PR: zero-tree streaming serialization + coalescing TCP).

   Three experiments, results in BENCH_wire.json (schema 2):
   - codec: encode/decode wall-clock of the Wire frame codec on the two
     shapes that dominate traffic — a group-committed transaction batch
     and a full snapshot image — for three codecs: the tree codec
     ("wire", builds a [Wire.t] first), the zero-tree streaming codec
     ("wire_stream", [Wire.Writer]/[Wire.Reader]), and the unchecked
     [Marshal] baseline the servers no longer link.  The streaming rows
     are gated: in full mode they must land within 2x of Marshal both
     ways on both shapes; in quick mode (CI) the measured
     stream-vs-marshal ratios are compared against the committed
     bench/wire_baseline.json with a 2x tolerance, so a codec regression
     fails the job without depending on absolute runner speed.
   - decode_reject: time to reject corrupt input (truncated and
     bit-flipped blobs) — the untrusted path must fail fast, not scale
     with the declared (attacker-chosen) sizes
   - e2e: the counter workload end to end.  The sim row is the unchanged
     synchronous workload on the virtual-time message plane; the tcp row
     drives real loopback sockets through {!Edc_wire.Tcp_transport} with
     a window of pipelined in-flight requests ([Client.request_async]),
     a warmup phase, and per-op latency percentiles.  Full mode gates
     tcp throughput at >= 6700 ops/s over >= 5000 timed ops. *)

open Edc_simnet
module Zk = Edc_zookeeper
module Dt = Zk.Data_tree
module Txn = Zk.Txn
module Zab = Edc_replication.Zab
module Zab_wire = Edc_replication.Zab_wire
module Wire = Edc_wire.Wire
module Tcp_transport = Edc_wire.Tcp_transport
module J = Bench_json
module P = Zk.Protocol

let now_us () = Unix.gettimeofday () *. 1e6

let time_us ~reps f =
  let t0 = now_us () in
  for _ = 1 to reps do
    f ()
  done;
  (now_us () -. t0) /. float_of_int reps

(* ------------------------------------------------------------------ *)
(* Representative payloads                                             *)
(* ------------------------------------------------------------------ *)

(* a group-committed Propose carrying [n] set transactions *)
let txn_batch n : Txn.t Zab.msg =
  let entries =
    List.init n (fun i ->
        {
          Zab.zxid = { Zab.epoch = 3; counter = 1000 + i };
          payload =
            Zab.App
              {
                Txn.origin = Some (i mod 3);
                session = 7_000_000 + i;
                xid = i;
                ops =
                  [
                    Txn.Tset
                      {
                        path = Printf.sprintf "/bench/n%04d" (i mod 64);
                        data = Printf.sprintf "value-%06d" i;
                        version = i;
                      };
                  ];
                result = Zk.Protocol.Set { version = i };
                quiet = false;
              };
        })
  in
  Zab.Propose
    { epoch = 3; index = 1000; prev_zxid = { epoch = 3; counter = 999 }; entries }

let snapshot_portable n =
  let t = Dt.create () in
  Dt.apply_create t ~path:"/b" ~data:"" ~ephemeral_owner:None;
  for i = 0 to n - 1 do
    Dt.apply_create t
      ~path:(Printf.sprintf "/b/n%06d" i)
      ~data:(Printf.sprintf "payload-%06d" i)
      ~ephemeral_owner:None
  done;
  let img = Dt.export t in
  let p = Dt.materialize img in
  Dt.release img;
  p

(* ------------------------------------------------------------------ *)
(* Codec throughput vs the Marshal baseline                            *)
(* ------------------------------------------------------------------ *)

type codec_row = {
  c_shape : string;
  c_codec : string;
  c_bytes : int;
  c_encode_us : float;
  c_decode_us : float;
}

let codec_experiment ~quick =
  let reps = if quick then 200 else 2_000 in
  let batch = txn_batch 64 in
  let portable = snapshot_portable (if quick then 2_000 else 10_000) in
  let batch_to_wire m = Zab_wire.to_wire ~payload:Zk.Wire_format.txn_to_wire m in
  let batch_of_wire w = Zab_wire.of_wire ~payload:Zk.Wire_format.txn_of_wire w in
  let write_batch w m = Zab_wire.write ~payload:Zk.Wire_format.write_txn w m in
  let read_batch r = Zab_wire.read ~payload:Zk.Wire_format.read_txn r in
  let tree_shapes =
    [
      ( "txn_batch_64",
        (fun () -> Wire.encode (batch_to_wire batch)),
        fun s ->
          match Result.bind (Wire.decode s) batch_of_wire with
          | Ok _ -> ()
          | Error e -> failwith e );
      ( "snapshot_10k",
        (fun () -> Wire.encode (Zk.Wire_format.portable_to_wire portable)),
        fun s ->
          match Result.bind (Wire.decode s) Zk.Wire_format.portable_of_wire with
          | Ok _ -> ()
          | Error e -> failwith e );
    ]
  in
  let stream_shapes =
    [
      ( "txn_batch_64",
        (fun () -> Wire.Writer.with_writer (fun w -> write_batch w batch)),
        fun s ->
          match Wire.Reader.run s read_batch with
          | Ok _ -> ()
          | Error e -> failwith e );
      ( "snapshot_10k",
        (fun () ->
          Wire.Writer.with_writer (fun w ->
              Zk.Wire_format.write_portable w portable)),
        fun s ->
          match Wire.Reader.run s Zk.Wire_format.read_portable with
          | Ok _ -> ()
          | Error e -> failwith e );
    ]
  in
  let marshal_shapes =
    [
      ( "txn_batch_64",
        (fun () -> Marshal.to_string batch []),
        fun s -> ignore (Marshal.from_string s 0 : Txn.t Zab.msg) );
      ( "snapshot_10k",
        (fun () -> Marshal.to_string portable []),
        fun s -> ignore (Marshal.from_string s 0 : Dt.portable) );
    ]
  in
  (* the streaming fast path must stay byte-identical to the tree codec —
     a cheap standing check on top of the fuzz suite *)
  List.iter2
    (fun (shape, tree_enc, _) (_, stream_enc, _) ->
      if not (String.equal (tree_enc ()) (stream_enc ())) then
        failwith (shape ^ ": streaming encode is not byte-identical"))
    tree_shapes stream_shapes;
  Printf.printf "\n  codec throughput (mean wall clock, %d reps):\n" reps;
  Printf.printf "  %14s %12s %9s %12s %12s\n" "shape" "codec" "bytes"
    "encode us" "decode us";
  let measure codec (shape, enc, dec) =
    let bytes = String.length (enc ()) in
    let blob = enc () in
    let encode_us = time_us ~reps (fun () -> ignore (enc () : string)) in
    let decode_us = time_us ~reps (fun () -> dec blob) in
    Printf.printf "  %14s %12s %9d %12.2f %12.2f\n%!" shape codec bytes
      encode_us decode_us;
    { c_shape = shape; c_codec = codec; c_bytes = bytes; c_encode_us = encode_us;
      c_decode_us = decode_us }
  in
  let tree_rows = List.map (measure "wire") tree_shapes in
  let stream_rows = List.map (measure "wire_stream") stream_shapes in
  let marshal_rows = List.map (measure "marshal") marshal_shapes in
  let rows = tree_rows @ stream_rows @ marshal_rows in
  Printf.printf
    "  (marshal is the unchecked baseline the servers no longer link)\n";
  rows

(* ------------------------------------------------------------------ *)
(* Codec gates                                                         *)
(* ------------------------------------------------------------------ *)

let find_row rows ~codec ~shape =
  List.find (fun r -> r.c_codec = codec && r.c_shape = shape) rows

(* stream-vs-marshal cost ratios per shape: the unit the gates and the
   committed baseline speak (machine-independent, unlike raw us) *)
let stream_ratios rows =
  List.map
    (fun shape ->
      let s = find_row rows ~codec:"wire_stream" ~shape in
      let m = find_row rows ~codec:"marshal" ~shape in
      (shape, s.c_encode_us /. m.c_encode_us, s.c_decode_us /. m.c_decode_us))
    [ "txn_batch_64"; "snapshot_10k" ]

let baseline_path = Filename.concat "bench" "wire_baseline.json"

(* Full mode: absolute gate — streaming must land within 2x of Marshal
   both ways on both shapes.  Quick mode (CI): compare the measured
   ratios against the committed baseline with a 2x tolerance, so the
   guard tracks codec regressions without trusting runner speed. *)
let codec_gates ~quick rows ~fail_gate =
  let ratios = stream_ratios rows in
  if quick then begin
    match J.of_file baseline_path with
    | Error e ->
        Printf.printf "  [gate] no codec baseline (%s): %s — skipping\n"
          baseline_path e
    | Ok doc ->
        let baseline_of shape =
          match Option.bind (J.member "ratios" doc) J.to_list with
          | None -> None
          | Some rs ->
              List.find_map
                (fun r ->
                  match Option.bind (J.member "shape" r) J.to_str with
                  | Some s when s = shape ->
                      Option.bind
                        (Option.bind (J.member "encode_ratio" r) J.to_float)
                        (fun e ->
                          Option.map
                            (fun d -> (e, d))
                            (Option.bind (J.member "decode_ratio" r)
                               J.to_float))
                  | _ -> None)
                rs
        in
        List.iter
          (fun (shape, enc, dec) ->
            match baseline_of shape with
            | None -> fail_gate (shape ^ ": missing from codec baseline")
            | Some (benc, bdec) ->
                let check dir v b =
                  if v > b *. 2.0 then
                    fail_gate
                      (Printf.sprintf
                         "%s %s: stream/marshal ratio %.2f exceeds 2x \
                          baseline %.2f"
                         shape dir v b)
                  else
                    Printf.printf
                      "  [gate] %s %s ratio %.2f within 2x baseline %.2f\n"
                      shape dir v b
                in
                check "encode" enc benc;
                check "decode" dec bdec)
          ratios
  end
  else
    List.iter
      (fun (shape, enc, dec) ->
        let check dir v =
          if v > 2.0 then
            fail_gate
              (Printf.sprintf "%s %s: streaming is %.2fx Marshal (gate: 2x)"
                 shape dir v)
          else
            Printf.printf "  [gate] %s %s: %.2fx Marshal (gate: 2x)\n" shape
              dir v
        in
        check "encode" enc;
        check "decode" dec)
      ratios

(* ------------------------------------------------------------------ *)
(* Rejection cost: corrupt input must fail fast                        *)
(* ------------------------------------------------------------------ *)

type reject_row = { r_case : string; r_us : float }

let reject_experiment ~quick =
  let reps = if quick then 1_000 else 10_000 in
  let portable = snapshot_portable (if quick then 2_000 else 10_000) in
  let blob = Wire.encode (Zk.Wire_format.portable_to_wire portable) in
  let truncated = String.sub blob 0 (String.length blob / 2) in
  let flipped =
    let b = Bytes.of_string blob in
    Bytes.set b 1 (Char.chr (Char.code (Bytes.get b 1) lxor 0xff));
    Bytes.to_string b
  in
  (* a 5-byte input claiming a multi-gigabyte payload *)
  let bomb = "\x02\xff\xff\xff\xff\x1f" in
  let cases =
    [ ("truncated_snapshot", truncated); ("flipped_header", flipped);
      ("length_bomb", bomb) ]
  in
  Printf.printf "\n  rejection cost (mean wall clock, %d reps):\n" reps;
  Printf.printf "  %20s %12s\n" "case" "us";
  List.map
    (fun (name, s) ->
      let us =
        time_us ~reps (fun () ->
            match Wire.decode s with Ok _ -> failwith name | Error _ -> ())
      in
      Printf.printf "  %20s %12.3f\n%!" name us;
      { r_case = name; r_us = us })
    cases

(* ------------------------------------------------------------------ *)
(* End to end: counter workload, in-sim vs real sockets                *)
(* ------------------------------------------------------------------ *)

type e2e_row = {
  e_transport : string;
  e_ops : int;  (** timed operations *)
  e_warmup : int;
  e_window : int;  (** max pipelined in-flight requests *)
  e_wall_s : float;
  e_ops_s : float;
  e_lat : (float * float * float) option;  (** p50/p95/p99 us, tcp only *)
}

let counter_workload client ~increments =
  (match Zk.Client.create_node client "/ctr" "0" with
  | Ok _ -> ()
  | Error e -> failwith (Format.asprintf "create: %a" Zk.Zerror.pp e));
  for i = 1 to increments do
    match Zk.Client.set_data client "/ctr" (string_of_int i) with
    | Ok _ -> ()
    | Error e -> failwith (Format.asprintf "set %d: %a" i Zk.Zerror.pp e)
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    (* nearest-rank *)
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Pipelined counter workload: one fiber keeps up to [window] increments
   in flight via [request_async]; the first [warmup] ops are untimed.
   Returns (timed wall seconds, per-op latencies in us). *)
let pipelined_workload sim client ~ops ~warmup ~window =
  ignore sim;
  (match Zk.Client.create_node client "/ctr" "0" with
  | Ok _ -> ()
  | Error e -> failwith (Format.asprintf "create: %a" Zk.Zerror.pp e));
  let lats = ref [] in
  let q = Queue.create () in
  let t_start = ref 0.0 in
  let submit i =
    if i = warmup then t_start := Unix.gettimeofday ();
    let timed = i >= warmup in
    let t0 = Unix.gettimeofday () in
    let p =
      Zk.Client.request_async client
        (P.Set_data
           { path = "/ctr"; data = string_of_int i; expected_version = None })
    in
    Proc.on_fulfill p (fun r ->
        (match r with
        | P.Set _ -> ()
        | P.Error e -> failwith (Format.asprintf "set %d: %a" i Zk.Zerror.pp e)
        | _ -> failwith "unexpected reply");
        if timed then lats := (Unix.gettimeofday () -. t0) *. 1e6 :: !lats);
    Queue.add p q
  in
  let drain_one () = ignore (Proc.await (Queue.pop q) : P.result) in
  for i = 0 to warmup + ops - 1 do
    if Queue.length q >= window then drain_one ();
    submit i
  done;
  while not (Queue.is_empty q) do
    drain_one ()
  done;
  (Unix.gettimeofday () -. !t_start, !lats)

let e2e_tcp ~ops ~warmup ~window =
  let sim = Sim.create ~seed:5 () in
  let base_port = 22000 + (Unix.getpid () mod 18000) in
  let hub =
    Tcp_transport.create ~sim ~base_port ~encode:Zk.Server_wire.encode
      ~decode:Zk.Server_wire.decode_sub ()
  in
  let tr = Tcp_transport.transport hub in
  let replica_ids = [ 0; 1; 2 ] in
  let servers =
    List.map
      (fun id -> Zk.Server.create ~sim ~net:tr ~id ~replica_ids ~initial_leader:0 ())
      replica_ids
  in
  List.iter Zk.Server.start servers;
  let client = Zk.Client.create ~sim ~net:tr ~addr:100 ~replica:1 () in
  let t0 = Unix.gettimeofday () in
  let fin =
    Proc.async sim (fun () ->
        Zk.Client.connect client;
        pipelined_workload sim client ~ops ~warmup ~window)
  in
  let deadline = t0 +. 120. in
  while (not (Proc.is_fulfilled fin)) && Unix.gettimeofday () < deadline do
    Tcp_transport.drive hub ~wall:0.05
  done;
  Tcp_transport.shutdown hub;
  if not (Proc.is_fulfilled fin) then failwith "tcp workload did not finish";
  let wall, lats =
    match Proc.value_opt fin with Some v -> v | None -> assert false
  in
  let sorted = Array.of_list lats in
  Array.sort compare sorted;
  {
    e_transport = "tcp";
    e_ops = ops;
    e_warmup = warmup;
    e_window = window;
    e_wall_s = wall;
    e_ops_s = float_of_int ops /. wall;
    e_lat =
      Some
        ( percentile sorted 0.50,
          percentile sorted 0.95,
          percentile sorted 0.99 );
  }

let e2e_sim ~increments =
  let sim = Sim.create ~seed:5 () in
  let cluster = Zk.Cluster.create sim in
  let t0 = Unix.gettimeofday () in
  let fin =
    Proc.async sim (fun () ->
        let client = Zk.Cluster.connected_client cluster () in
        counter_workload client ~increments)
  in
  Sim.run ~until:(Sim_time.sec 60) sim;
  if not (Proc.is_fulfilled fin) then failwith "sim workload did not finish";
  let wall = Unix.gettimeofday () -. t0 in
  let ops = increments + 1 in
  { e_transport = "sim"; e_ops = ops; e_warmup = 0; e_window = 1;
    e_wall_s = wall; e_ops_s = float_of_int ops /. wall; e_lat = None }

let e2e_experiment ~quick =
  let increments = if quick then 100 else 500 in
  let ops = if quick then 1_000 else 5_000 in
  let warmup = if quick then 64 else 256 in
  let window = 64 in
  Printf.printf
    "\n\
    \  end to end, identical replica code (counter workload; sim: %d \
     synchronous updates,\n\
    \   tcp: %d pipelined updates after %d warmup, window %d):\n"
    increments ops warmup window;
  Printf.printf "  %9s %8s %10s %12s %10s %10s %10s\n" "transport" "ops"
    "wall s" "ops/s" "p50 us" "p95 us" "p99 us";
  let rows = [ e2e_sim ~increments; e2e_tcp ~ops ~warmup ~window ] in
  List.iter
    (fun r ->
      match r.e_lat with
      | Some (p50, p95, p99) ->
          Printf.printf "  %9s %8d %10.2f %12.1f %10.1f %10.1f %10.1f\n%!"
            r.e_transport r.e_ops r.e_wall_s r.e_ops_s p50 p95 p99
      | None ->
          Printf.printf "  %9s %8d %10.2f %12.1f %10s %10s %10s\n%!"
            r.e_transport r.e_ops r.e_wall_s r.e_ops_s "-" "-" "-")
    rows;
  Printf.printf
    "  (tcp wall time includes real socket round trips; the sim row is the\n\
    \   same workload on the virtual-time message plane)\n";
  rows

(* ------------------------------------------------------------------ *)

let run ~quick =
  let gate_failures = ref [] in
  let fail_gate msg =
    Printf.printf "  [gate] FAILED: %s\n%!" msg;
    gate_failures := msg :: !gate_failures
  in
  let codec_rows = codec_experiment ~quick in
  Printf.printf "\n  codec gates (%s):\n"
    (if quick then "ratios vs committed baseline, 2x tolerance"
     else "absolute, <= 2x Marshal");
  codec_gates ~quick codec_rows ~fail_gate;
  let reject_rows = reject_experiment ~quick in
  let e2e_rows = e2e_experiment ~quick in
  (if not quick then
     let tcp = List.find (fun r -> r.e_transport = "tcp") e2e_rows in
     if tcp.e_ops < 5_000 then
       fail_gate (Printf.sprintf "tcp e2e ran %d ops (gate: >= 5000)" tcp.e_ops)
     else if tcp.e_ops_s < 6_700.0 then
       fail_gate
         (Printf.sprintf "tcp e2e %.0f ops/s (gate: >= 6700)" tcp.e_ops_s)
     else
       Printf.printf "  [gate] tcp e2e %.0f ops/s over %d ops (gate: >= 6700)\n"
         tcp.e_ops_s tcp.e_ops);
  J.write_suite ~schema:2 ~suite:"wire"
    [
      ( "codec",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("shape", J.Str r.c_shape);
                   ("codec", J.Str r.c_codec);
                   ("bytes", J.Int r.c_bytes);
                   ("encode_us", J.Float r.c_encode_us);
                   ("decode_us", J.Float r.c_decode_us);
                 ])
             codec_rows) );
      ( "reject",
        J.List
          (List.map
             (fun r -> J.Obj [ ("case", J.Str r.r_case); ("us", J.Float r.r_us) ])
             reject_rows) );
      ( "e2e",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 ([
                    ("transport", J.Str r.e_transport);
                    ("ops", J.Int r.e_ops);
                    ("warmup", J.Int r.e_warmup);
                    ("window", J.Int r.e_window);
                    ("wall_s", J.Float r.e_wall_s);
                    ("ops_per_s", J.Float r.e_ops_s);
                  ]
                 @
                 match r.e_lat with
                 | Some (p50, p95, p99) ->
                     [
                       ("p50_us", J.Float p50);
                       ("p95_us", J.Float p95);
                       ("p99_us", J.Float p99);
                     ]
                 | None -> []))
             e2e_rows) );
    ];
  if !gate_failures <> [] then begin
    Printf.printf "\n  wire bench gates FAILED:\n";
    List.iter (Printf.printf "    - %s\n") (List.rev !gate_failures);
    exit 1
  end
