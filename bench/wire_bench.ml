(* Wire codec benchmarks (PR: untrusted-bytes binary codec + pluggable
   transport).

   Three experiments, results in BENCH_wire.json:
   - codec: encode/decode wall-clock throughput of the Wire frame codec
     against the unchecked [Marshal] baseline it replaced, on the two
     shapes that dominate traffic — a group-committed transaction batch
     and a full snapshot image.  Marshal appears here only as the
     yardstick; the servers no longer link it.
   - decode_reject: time to reject corrupt input (truncated and
     bit-flipped blobs) — the untrusted path must fail fast, not scale
     with the declared (attacker-chosen) sizes
   - tcp: the counter workload end to end over real loopback sockets via
     {!Edc_wire.Tcp_transport}, reported as wall-clock ops/s next to the
     same workload on the in-sim transport *)

open Edc_simnet
module Zk = Edc_zookeeper
module Dt = Zk.Data_tree
module Txn = Zk.Txn
module Zab = Edc_replication.Zab
module Zab_wire = Edc_replication.Zab_wire
module Wire = Edc_wire.Wire
module Tcp_transport = Edc_wire.Tcp_transport
module J = Bench_json

let now_us () = Unix.gettimeofday () *. 1e6

let time_us ~reps f =
  let t0 = now_us () in
  for _ = 1 to reps do
    f ()
  done;
  (now_us () -. t0) /. float_of_int reps

(* ------------------------------------------------------------------ *)
(* Representative payloads                                             *)
(* ------------------------------------------------------------------ *)

(* a group-committed Propose carrying [n] set transactions *)
let txn_batch n : Txn.t Zab.msg =
  let entries =
    List.init n (fun i ->
        {
          Zab.zxid = { Zab.epoch = 3; counter = 1000 + i };
          payload =
            Zab.App
              {
                Txn.origin = Some (i mod 3);
                session = 7_000_000 + i;
                xid = i;
                ops =
                  [
                    Txn.Tset
                      {
                        path = Printf.sprintf "/bench/n%04d" (i mod 64);
                        data = Printf.sprintf "value-%06d" i;
                        version = i;
                      };
                  ];
                result = Zk.Protocol.Set { version = i };
                quiet = false;
              };
        })
  in
  Zab.Propose
    { epoch = 3; index = 1000; prev_zxid = { epoch = 3; counter = 999 }; entries }

let snapshot_portable n =
  let t = Dt.create () in
  Dt.apply_create t ~path:"/b" ~data:"" ~ephemeral_owner:None;
  for i = 0 to n - 1 do
    Dt.apply_create t
      ~path:(Printf.sprintf "/b/n%06d" i)
      ~data:(Printf.sprintf "payload-%06d" i)
      ~ephemeral_owner:None
  done;
  let img = Dt.export t in
  let p = Dt.materialize img in
  Dt.release img;
  p

(* ------------------------------------------------------------------ *)
(* Codec throughput vs the Marshal baseline                            *)
(* ------------------------------------------------------------------ *)

type codec_row = {
  c_shape : string;
  c_codec : string;
  c_bytes : int;
  c_encode_us : float;
  c_decode_us : float;
}

let codec_experiment ~quick =
  let reps = if quick then 200 else 2_000 in
  let batch = txn_batch 64 in
  let portable = snapshot_portable (if quick then 2_000 else 10_000) in
  let batch_to_wire m = Zab_wire.to_wire ~payload:Zk.Wire_format.txn_to_wire m in
  let batch_of_wire w = Zab_wire.of_wire ~payload:Zk.Wire_format.txn_of_wire w in
  let shapes =
    [
      ( "txn_batch_64",
        (fun () -> Wire.encode (batch_to_wire batch)),
        fun s ->
          match Result.bind (Wire.decode s) batch_of_wire with
          | Ok _ -> ()
          | Error e -> failwith e );
      ( "snapshot_10k",
        (fun () -> Wire.encode (Zk.Wire_format.portable_to_wire portable)),
        fun s ->
          match Result.bind (Wire.decode s) Zk.Wire_format.portable_of_wire with
          | Ok _ -> ()
          | Error e -> failwith e );
    ]
  in
  let marshal_shapes =
    [
      ( "txn_batch_64",
        (fun () -> Marshal.to_string batch []),
        fun s -> ignore (Marshal.from_string s 0 : Txn.t Zab.msg) );
      ( "snapshot_10k",
        (fun () -> Marshal.to_string portable []),
        fun s -> ignore (Marshal.from_string s 0 : Dt.portable) );
    ]
  in
  Printf.printf "\n  codec throughput (mean wall clock, %d reps):\n" reps;
  Printf.printf "  %14s %9s %9s %12s %12s\n" "shape" "codec" "bytes" "encode us"
    "decode us";
  let measure codec (shape, enc, dec) =
    let bytes = String.length (enc ()) in
    let blob = enc () in
    let encode_us = time_us ~reps (fun () -> ignore (enc () : string)) in
    let decode_us = time_us ~reps (fun () -> dec blob) in
    Printf.printf "  %14s %9s %9d %12.2f %12.2f\n%!" shape codec bytes encode_us
      decode_us;
    { c_shape = shape; c_codec = codec; c_bytes = bytes; c_encode_us = encode_us;
      c_decode_us = decode_us }
  in
  let wire_rows = List.map (measure "wire") shapes in
  let marshal_rows = List.map (measure "marshal") marshal_shapes in
  let rows = wire_rows @ marshal_rows in
  Printf.printf
    "  (marshal is the unchecked baseline the servers no longer link)\n";
  rows

(* ------------------------------------------------------------------ *)
(* Rejection cost: corrupt input must fail fast                        *)
(* ------------------------------------------------------------------ *)

type reject_row = { r_case : string; r_us : float }

let reject_experiment ~quick =
  let reps = if quick then 1_000 else 10_000 in
  let portable = snapshot_portable (if quick then 2_000 else 10_000) in
  let blob = Wire.encode (Zk.Wire_format.portable_to_wire portable) in
  let truncated = String.sub blob 0 (String.length blob / 2) in
  let flipped =
    let b = Bytes.of_string blob in
    Bytes.set b 1 (Char.chr (Char.code (Bytes.get b 1) lxor 0xff));
    Bytes.to_string b
  in
  (* a 5-byte input claiming a multi-gigabyte payload *)
  let bomb = "\x02\xff\xff\xff\xff\x1f" in
  let cases =
    [ ("truncated_snapshot", truncated); ("flipped_header", flipped);
      ("length_bomb", bomb) ]
  in
  Printf.printf "\n  rejection cost (mean wall clock, %d reps):\n" reps;
  Printf.printf "  %20s %12s\n" "case" "us";
  List.map
    (fun (name, s) ->
      let us =
        time_us ~reps (fun () ->
            match Wire.decode s with Ok _ -> failwith name | Error _ -> ())
      in
      Printf.printf "  %20s %12.3f\n%!" name us;
      { r_case = name; r_us = us })
    cases

(* ------------------------------------------------------------------ *)
(* End to end: counter workload, in-sim vs real sockets                *)
(* ------------------------------------------------------------------ *)

type e2e_row = { e_transport : string; e_ops : int; e_wall_s : float; e_ops_s : float }

let counter_workload client ~increments =
  (match Zk.Client.create_node client "/ctr" "0" with
  | Ok _ -> ()
  | Error e -> failwith (Format.asprintf "create: %a" Zk.Zerror.pp e));
  for i = 1 to increments do
    match Zk.Client.set_data client "/ctr" (string_of_int i) with
    | Ok _ -> ()
    | Error e -> failwith (Format.asprintf "set %d: %a" i Zk.Zerror.pp e)
  done

let e2e_tcp ~increments =
  let sim = Sim.create ~seed:5 () in
  let base_port = 22000 + (Unix.getpid () mod 18000) in
  let hub =
    Tcp_transport.create ~sim ~base_port ~encode:Zk.Server_wire.encode
      ~decode:Zk.Server_wire.decode ()
  in
  let tr = Tcp_transport.transport hub in
  let replica_ids = [ 0; 1; 2 ] in
  let servers =
    List.map
      (fun id -> Zk.Server.create ~sim ~net:tr ~id ~replica_ids ~initial_leader:0 ())
      replica_ids
  in
  List.iter Zk.Server.start servers;
  let client = Zk.Client.create ~sim ~net:tr ~addr:100 ~replica:1 () in
  let t0 = Unix.gettimeofday () in
  let fin =
    Proc.async sim (fun () ->
        Zk.Client.connect client;
        counter_workload client ~increments)
  in
  let deadline = t0 +. 120. in
  while (not (Proc.is_fulfilled fin)) && Unix.gettimeofday () < deadline do
    Tcp_transport.drive hub ~wall:0.05
  done;
  Tcp_transport.shutdown hub;
  if not (Proc.is_fulfilled fin) then failwith "tcp workload did not finish";
  let wall = Unix.gettimeofday () -. t0 in
  let ops = increments + 1 in
  { e_transport = "tcp"; e_ops = ops; e_wall_s = wall;
    e_ops_s = float_of_int ops /. wall }

let e2e_sim ~increments =
  let sim = Sim.create ~seed:5 () in
  let cluster = Zk.Cluster.create sim in
  let t0 = Unix.gettimeofday () in
  let fin =
    Proc.async sim (fun () ->
        let client = Zk.Cluster.connected_client cluster () in
        counter_workload client ~increments)
  in
  Sim.run ~until:(Sim_time.sec 60) sim;
  if not (Proc.is_fulfilled fin) then failwith "sim workload did not finish";
  let wall = Unix.gettimeofday () -. t0 in
  let ops = increments + 1 in
  { e_transport = "sim"; e_ops = ops; e_wall_s = wall;
    e_ops_s = float_of_int ops /. wall }

let e2e_experiment ~quick =
  let increments = if quick then 100 else 500 in
  Printf.printf
    "\n  end to end, identical replica code (counter workload, %d updates):\n"
    increments;
  Printf.printf "  %9s %8s %10s %12s\n" "transport" "ops" "wall s" "ops/s";
  let rows = [ e2e_sim ~increments; e2e_tcp ~increments ] in
  List.iter
    (fun r ->
      Printf.printf "  %9s %8d %10.2f %12.1f\n%!" r.e_transport r.e_ops r.e_wall_s
        r.e_ops_s)
    rows;
  Printf.printf
    "  (tcp wall time includes real socket round trips; the sim row is the\n\
    \   same workload on the virtual-time message plane)\n";
  rows

(* ------------------------------------------------------------------ *)

let run ~quick =
  let codec_rows = codec_experiment ~quick in
  let reject_rows = reject_experiment ~quick in
  let e2e_rows = e2e_experiment ~quick in
  J.write_suite ~suite:"wire"
    [
      ( "codec",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("shape", J.Str r.c_shape);
                   ("codec", J.Str r.c_codec);
                   ("bytes", J.Int r.c_bytes);
                   ("encode_us", J.Float r.c_encode_us);
                   ("decode_us", J.Float r.c_decode_us);
                 ])
             codec_rows) );
      ( "reject",
        J.List
          (List.map
             (fun r -> J.Obj [ ("case", J.Str r.r_case); ("us", J.Float r.r_us) ])
             reject_rows) );
      ( "e2e",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("transport", J.Str r.e_transport);
                   ("ops", J.Int r.e_ops);
                   ("wall_s", J.Float r.e_wall_s);
                   ("ops_per_s", J.Float r.e_ops_s);
                 ])
             e2e_rows) );
    ]
