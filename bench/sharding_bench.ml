(* Sharded namespace benchmark (§6j): write-throughput scaling across
   independent replication groups, the cross-shard 2PC ablation, and a
   chaos acceptance run that kills the coordinator shard's leader and
   partitions shards off the inter-shard plane while gating on per-shard
   linearizability and deployment-wide atomicity. *)

open Edc_simnet
open Edc_sharding
module Zk = Edc_zookeeper
module Two_pc = Edc_replication.Two_pc
module Ck_history = Edc_checker.History
module Ck_model = Edc_checker.Model
module Ck_wgl = Edc_checker.Wgl
module Instrument = Edc_checker.Instrument
module Atomicity = Edc_checker.Atomicity
module Counter = Edc_recipes.Counter
module Coord_zk = Edc_recipes.Coord_zk
module Report = Edc_harness.Report

let shard_map n =
  Shard_map.v
    ~rules:
      (List.init n (fun i ->
           { Shard_map.prefix = Printf.sprintf "/s%d" i; shard = i }))
    n

let fail_on_error what = function
  | Ok _ -> ()
  | Error e -> failwith (what ^ ": " ^ Zk.Zerror.to_string e)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let p99 = function
  | [] -> 0.0
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a.(int_of_float (0.99 *. float_of_int (Array.length a - 1)))

(* ------------------------------------------------------------------ *)
(* 1. Scaling: 0%-cross-shard write throughput vs number of groups      *)
(* ------------------------------------------------------------------ *)

type scaling_point = {
  sp_groups : int;
  sp_writers : int;
  sp_ops : int;
  sp_throughput : float;
  sp_mean_ms : float;
  sp_p99_ms : float;
}

let writers_per_shard = 4

(* Per-shard closed-loop writers on a purely single-shard workload: the
   groups share nothing, so adding groups must scale aggregate write
   throughput near-linearly. *)
let scaling_point ~quick n_groups =
  let sim = Sim.create ~seed:42 () in
  let cluster = Shard_cluster.create ~map:(shard_map n_groups) sim in
  let warmup = Sim_time.ms 500 in
  let measure = if quick then Sim_time.sec 1 else Sim_time.sec 2 in
  let t_start = warmup in
  let t_end = Sim_time.add warmup measure in
  let ops = ref 0 in
  let lats = ref [] in
  let failure = ref None in
  let payload = String.make 64 'x' in
  Proc.spawn sim (fun () ->
      try
        for s = 0 to n_groups - 1 do
          Proc.spawn sim (fun () ->
              let admin = Shard_cluster.connected_client cluster ~shard:s () in
              fail_on_error "shard root"
                (Zk.Client.create_node admin (Printf.sprintf "/s%d" s) "");
              for w = 0 to writers_per_shard - 1 do
                let path = Printf.sprintf "/s%d/w%d" s w in
                fail_on_error "writer node"
                  (Zk.Client.create_node admin path "");
                Proc.spawn sim (fun () ->
                    let c =
                      Shard_cluster.connected_client cluster ~shard:s ()
                    in
                    let rec loop () =
                      if Sim_time.(Sim.now sim < t_end) then begin
                        let t0 = Sim.now sim in
                        (match Zk.Client.set_data c path payload with
                        | Ok _ ->
                            if t0 >= t_start then begin
                              incr ops;
                              lats :=
                                Sim_time.to_float_ms
                                  (Sim_time.sub (Sim.now sim) t0)
                                :: !lats
                            end
                        | Error e ->
                            failwith
                              ("scaling write: " ^ Zk.Zerror.to_string e));
                        loop ()
                      end
                    in
                    loop ())
              done)
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add t_end (Sim_time.sec 1)) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    sp_groups = n_groups;
    sp_writers = n_groups * writers_per_shard;
    sp_ops = !ops;
    sp_throughput = float_of_int !ops /. Sim_time.to_float_s measure;
    sp_mean_ms = mean !lats;
    sp_p99_ms = p99 !lats;
  }

(* ------------------------------------------------------------------ *)
(* 2. Ablation: cross-shard transaction share vs throughput/latency     *)
(* ------------------------------------------------------------------ *)

type ablation_point = {
  ab_cross_pct : int;
  ab_ops : int;
  ab_cross_ops : int;
  ab_throughput : float;
  ab_local_mean_ms : float;
  ab_local_p99_ms : float;
  ab_cross_mean_ms : float;
  ab_cross_p99_ms : float;
}

(* Each worker owns a disjoint subtree on its home shard and on a partner
   shard, so the 2PC lock footprints never collide: the measured overhead
   is the protocol's (two replicated log entries per participant plus the
   inter-shard round trips), not lock contention. *)
let ablation_point ~quick cross_pct =
  let n_groups = 4 in
  let n_workers = 8 in
  let sim = Sim.create ~seed:42 () in
  let cluster = Shard_cluster.create ~map:(shard_map n_groups) sim in
  let warmup = Sim_time.ms 500 in
  let measure = if quick then Sim_time.sec 1 else Sim_time.sec 2 in
  let t_start = warmup in
  let t_end = Sim_time.add warmup measure in
  let ops = ref 0 and cross_ops = ref 0 in
  let local_lats = ref [] and cross_lats = ref [] in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        (* per-shard roots, then per-worker subtrees on home + partner *)
        let admin = Shard_session.connect cluster in
        for s = 0 to n_groups - 1 do
          fail_on_error "root"
            (Shard_session.create_node admin (Printf.sprintf "/s%d" s) "")
        done;
        for w = 0 to n_workers - 1 do
          let home = w mod n_groups and partner = (w + 1) mod n_groups in
          List.iter
            (fun s ->
              fail_on_error "subtree"
                (Shard_session.create_node admin
                   (Printf.sprintf "/s%d/w%d" s w) "");
              fail_on_error "target"
                (Shard_session.create_node admin
                   (Printf.sprintf "/s%d/w%d/n" s w) ""))
            [ home; partner ]
        done;
        for w = 0 to n_workers - 1 do
          Proc.spawn sim (fun () ->
              let rng = Rng.split (Sim.rng sim) in
              let sw = Shard_session.connect cluster in
              let home = w mod n_groups and partner = (w + 1) mod n_groups in
              let p_home = Printf.sprintf "/s%d/w%d/n" home w in
              let p_partner = Printf.sprintf "/s%d/w%d/n" partner w in
              (* a participant releases its locks one log entry after the
                 client hears commit, so the worker's next write on the
                 same footprint can transiently see [Locked] (and a
                 too-early prepare, [Txn_conflict]); retry like any 2PC
                 client.  Latency is measured across retries. *)
              let rec with_retry what tries f =
                match f () with
                | Ok () -> ()
                | Error (Zk.Zerror.Locked | Zk.Zerror.Txn_conflict)
                  when tries < 50 ->
                    Proc.sleep sim (Sim_time.ms (2 + Rng.int rng 8));
                    with_retry what (tries + 1) f
                | Error e ->
                    failwith (what ^ ": " ^ Zk.Zerror.to_string e)
              in
              let rec loop () =
                if Sim_time.(Sim.now sim < t_end) then begin
                  let cross = Rng.int rng 100 < cross_pct in
                  let t0 = Sim.now sim in
                  (if cross then begin
                     with_retry "cross write" 0 (fun () ->
                         Shard_session.multi sw
                           [
                             Two_pc.Wset { path = p_home; data = "c" };
                             Two_pc.Wset { path = p_partner; data = "c" };
                           ]);
                     if t0 >= t_start then begin
                       incr ops;
                       incr cross_ops;
                       cross_lats :=
                         Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0)
                         :: !cross_lats
                     end
                   end
                   else begin
                     with_retry "local write" 0 (fun () ->
                         match Shard_session.set_data sw p_home "l" with
                         | Ok _ -> Ok ()
                         | Error e -> Error e);
                     if t0 >= t_start then begin
                       incr ops;
                       local_lats :=
                         Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0)
                         :: !local_lats
                     end
                   end);
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add t_end (Sim_time.sec 2)) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    ab_cross_pct = cross_pct;
    ab_ops = !ops;
    ab_cross_ops = !cross_ops;
    ab_throughput = float_of_int !ops /. Sim_time.to_float_s measure;
    ab_local_mean_ms = mean !local_lats;
    ab_local_p99_ms = p99 !local_lats;
    ab_cross_mean_ms = mean !cross_lats;
    ab_cross_p99_ms = p99 !cross_lats;
  }

(* ------------------------------------------------------------------ *)
(* 3. Chaos: coordinator kills + shard-targeted inter-shard partitions  *)
(* ------------------------------------------------------------------ *)

type chaos_point = {
  cp_seed : int;
  cp_counter_ok : int;
  cp_counter_failed : int;
  cp_cross_ok : int;
  cp_cross_failed : int;
  cp_leader_kills : int;
  cp_shard_cuts : int;
  cp_wgl : (int * string * Ck_wgl.verdict) list;  (* shard, object, verdict *)
  cp_atomicity : Atomicity.violation list;
  cp_resolved : int;
  cp_trace : string;
}

(* A do-nothing nemesis target over the shard ids: the only scheduled
   action is [Custom], whose start/stop closures cut a whole shard off
   the inter-shard plane, so the built-in disruptors never fire. *)
let inter_shard_target n_groups =
  {
    Nemesis.name = "ishard";
    nodes = List.init n_groups (fun i -> i);
    leader = (fun () -> None);
    crash = ignore;
    restart = ignore;
    cut = (fun _ _ -> ());
    heal = (fun _ _ -> ());
    cut_one_way = (fun ~src:_ ~dst:_ -> ());
    heal_one_way = (fun ~src:_ ~dst:_ -> ());
    silence = ignore;
    unsilence = ignore;
    reconfig_in_flight = (fun () -> false);
    set_skew = (fun _ _ -> ());
  }

let chaos_point ~quick seed =
  let n_groups = 4 in
  let sim = Sim.create ~seed () in
  let cluster = Shard_cluster.create ~map:(shard_map n_groups) sim in
  let horizon = if quick then Sim_time.sec 12 else Sim_time.sec 20 in
  let ops_end = Sim_time.add horizon (Sim_time.sec 2) in
  (* generous post-chaos quiescence: every in-doubt transaction must be
     driven to a resolution by the status-inquiry chain *)
  let verify_at = Sim_time.add ops_end (Sim_time.sec 25) in
  let histories = Array.init n_groups (fun _ -> Ck_history.create ~sim ()) in
  let counter_ok = ref 0 and counter_failed = ref 0 in
  let cross_ok = ref 0 and cross_failed = ref 0 in
  let nemesis_a = ref None and nemesis_b = ref None in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        (* per-shard setup: the counter recipe plus per-writer subtrees *)
        for s = 0 to n_groups - 1 do
          let c = Shard_cluster.connected_client cluster ~shard:s () in
          (match
             Counter.setup (Coord_zk.of_client ~extensible:false c)
           with
          | Ok () -> ()
          | Error e -> failwith ("counter setup: " ^ e))
        done;
        let admin = Shard_session.connect cluster in
        for s = 0 to n_groups - 1 do
          fail_on_error "root"
            (Shard_session.create_node admin (Printf.sprintf "/s%d" s) "")
        done;
        for w = 0 to n_groups - 1 do
          let home = w and partner = (w + 1) mod n_groups in
          List.iter
            (fun s ->
              fail_on_error "subtree"
                (Shard_session.create_node admin
                   (Printf.sprintf "/s%d/w%d" s w) "");
              fail_on_error "target"
                (Shard_session.create_node admin
                   (Printf.sprintf "/s%d/w%d/n" s w) ""))
            [ home; partner ]
        done;
        (* chaos: periodic leader kills inside the coordinator shard
           (group 0 coordinates every cross-shard transaction below),
           and a custom disruption cutting a random shard off the
           inter-shard plane *)
        nemesis_a :=
          Some
            (Nemesis.start ~sim
               ~target:(Shard_cluster.nemesis_target cluster ~shard:0)
               ~horizon
               [
                 {
                   Nemesis.start = Sim_time.sec 1;
                   period = Some (Sim_time.ms 3500);
                   action =
                     Nemesis.Crash_restart
                       {
                         downtime = Sim_time.ms 1200;
                         victim = Nemesis.Leader;
                       };
                 };
               ]);
        nemesis_b :=
          Some
            (Nemesis.start ~sim ~target:(inter_shard_target n_groups)
               ~horizon
               [
                 {
                   Nemesis.start = Sim_time.ms 2500;
                   period = Some (Sim_time.sec 5);
                   action =
                     Nemesis.Custom
                       {
                         name = "shard-partition";
                         duration = Sim_time.ms 1500;
                         victim = Nemesis.Any_replica;
                         start_fn = (fun s -> Shard_cluster.cut_shard cluster s);
                         stop_fn = (fun s -> Shard_cluster.heal_shard cluster s);
                       };
                 };
               ]);
        (* per-shard counter incrementers on resilient sessions, history-
           wrapped: each group's history must stay linearizable *)
        for s = 0 to n_groups - 1 do
          let ids =
            Array.to_list
              (Array.map Zk.Server.id (Shard_cluster.servers cluster s))
          in
          for _ = 1 to 2 do
            Proc.spawn sim (fun () ->
                let c = Shard_cluster.connected_client cluster ~shard:s () in
                let session = Zk.Session.wrap ~sim ~replicas:ids c in
                let api =
                  Instrument.wrap histories.(s)
                    (Coord_zk.of_session ~extensible:false session)
                in
                let rec loop () =
                  if Sim_time.(Sim.now sim < ops_end) then begin
                    (match Counter.increment_traditional api with
                    | Ok _ -> incr counter_ok
                    | Error _ -> incr counter_failed);
                    Proc.sleep sim (Sim_time.ms 25);
                    loop ()
                  end
                in
                loop ())
          done
        done;
        (* cross-shard writers: every transaction includes shard 0, so
           the leader kills above strike the 2PC coordinator.  [Wset] is
           idempotent, so retrying after a timeout is safe. *)
        for w = 0 to n_groups - 1 do
          Proc.spawn sim (fun () ->
              let rng = Rng.split (Sim.rng sim) in
              let sw = Shard_session.connect cluster in
              let partner = 1 + (w mod (n_groups - 1)) in
              let p0 = Printf.sprintf "/s0/w%d/n" w in
              let pp = Printf.sprintf "/s%d/w%d/n" partner w in
              let ops =
                [
                  Two_pc.Wset { path = p0; data = "c" };
                  Two_pc.Wset { path = pp; data = "c" };
                ]
              in
              let rec loop () =
                if Sim_time.(Sim.now sim < ops_end) then begin
                  let rec attempt tries =
                    match Shard_session.multi sw ops with
                    | Ok () -> incr cross_ok
                    | Error _
                      when tries < 25 && Sim_time.(Sim.now sim < ops_end) ->
                        Proc.sleep sim
                          (Sim_time.ms (20 + Rng.int rng (40 * (tries + 1))));
                        attempt (tries + 1)
                    | Error _ -> incr cross_failed
                  in
                  attempt 0;
                  Proc.sleep sim (Sim_time.ms 60);
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:verify_at sim;
  (match !failure with Some e -> raise e | None -> ());
  let wgl =
    List.concat
      (List.init n_groups (fun s ->
           Ck_history.entries histories.(s)
           |> Ck_history.split
           |> List.filter_map (fun (obj, es) ->
                  Ck_model.for_object obj
                  |> Option.map (fun m -> (s, obj, Ck_wgl.check m es)))))
  in
  let audits = Shard_cluster.audits cluster in
  let atomicity =
    Atomicity.check ~audits
      ~prepared:(Shard_cluster.residual_prepared cluster)
      ~locks:(Shard_cluster.residual_locks cluster)
      ()
  in
  let a = Option.get !nemesis_a and b = Option.get !nemesis_b in
  {
    cp_seed = seed;
    cp_counter_ok = !counter_ok;
    cp_counter_failed = !counter_failed;
    cp_cross_ok = !cross_ok;
    cp_cross_failed = !cross_failed;
    cp_leader_kills = Nemesis.leader_kills a;
    cp_shard_cuts = Nemesis.customs b;
    cp_wgl = wgl;
    cp_atomicity = atomicity;
    cp_resolved = Atomicity.resolved_count ~audits;
    cp_trace = Nemesis.trace_to_string a ^ Nemesis.trace_to_string b;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let verdict_cell = function
  | Ck_wgl.Linearizable { states; _ } -> Printf.sprintf "ok(%d states)" states
  | Ck_wgl.Non_linearizable _ -> "VIOLATION"
  | Ck_wgl.Budget_exhausted _ -> "INCONCLUSIVE"

let json_of_scaling base (p : scaling_point) =
  Bench_json.Obj
    [
      ("groups", Bench_json.Int p.sp_groups);
      ("writers", Bench_json.Int p.sp_writers);
      ("ops", Bench_json.Int p.sp_ops);
      ("throughput_ops_s", Bench_json.Float p.sp_throughput);
      ("mean_ms", Bench_json.Float p.sp_mean_ms);
      ("p99_ms", Bench_json.Float p.sp_p99_ms);
      ("speedup_vs_1", Bench_json.Float (p.sp_throughput /. base));
    ]

let json_of_ablation (p : ablation_point) =
  Bench_json.Obj
    [
      ("cross_pct", Bench_json.Int p.ab_cross_pct);
      ("ops", Bench_json.Int p.ab_ops);
      ("cross_ops", Bench_json.Int p.ab_cross_ops);
      ("throughput_ops_s", Bench_json.Float p.ab_throughput);
      ("local_mean_ms", Bench_json.Float p.ab_local_mean_ms);
      ("local_p99_ms", Bench_json.Float p.ab_local_p99_ms);
      ("cross_mean_ms", Bench_json.Float p.ab_cross_mean_ms);
      ("cross_p99_ms", Bench_json.Float p.ab_cross_p99_ms);
    ]

let json_of_chaos deterministic (p : chaos_point) =
  Bench_json.Obj
    [
      ("seed", Bench_json.Int p.cp_seed);
      ("counter_ok", Bench_json.Int p.cp_counter_ok);
      ("counter_failed", Bench_json.Int p.cp_counter_failed);
      ("cross_committed", Bench_json.Int p.cp_cross_ok);
      ("cross_failed", Bench_json.Int p.cp_cross_failed);
      ("leader_kills", Bench_json.Int p.cp_leader_kills);
      ("shard_cuts", Bench_json.Int p.cp_shard_cuts);
      ("txns_resolved", Bench_json.Int p.cp_resolved);
      ( "atomicity_violations",
        Bench_json.List
          (List.map
             (fun v ->
               Bench_json.Str (Format.asprintf "%a" Atomicity.pp_violation v))
             p.cp_atomicity) );
      ( "wgl",
        Bench_json.List
          (List.map
             (fun (s, obj, v) ->
               Bench_json.Obj
                 [
                   ("shard", Bench_json.Int s);
                   ("object", Bench_json.Str obj);
                   ( "verdict",
                     Bench_json.Str
                       (match v with
                       | Ck_wgl.Linearizable _ -> "linearizable"
                       | Ck_wgl.Non_linearizable _ -> "violation"
                       | Ck_wgl.Budget_exhausted _ -> "inconclusive") );
                 ])
             p.cp_wgl) );
      ("deterministic", Bench_json.Bool deterministic);
    ]

let run ~quick =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in

  (* 1. scaling *)
  Printf.printf
    "\n  weak scaling: %d closed-loop writers per shard, 0%% cross-shard\n\n"
    writers_per_shard;
  Printf.printf "  %7s %8s %10s %14s %9s %9s %9s\n" "groups" "writers" "ops"
    "ops/s" "mean ms" "p99 ms" "speedup";
  let scaling =
    List.map (fun n -> scaling_point ~quick n) [ 1; 2; 4; 8 ]
  in
  let base = (List.hd scaling).sp_throughput in
  List.iter
    (fun p ->
      Printf.printf "  %7d %8d %10d %14.0f %9.3f %9.3f %8.2fx\n%!" p.sp_groups
        p.sp_writers p.sp_ops p.sp_throughput p.sp_mean_ms p.sp_p99_ms
        (p.sp_throughput /. base))
    scaling;
  let speedup n =
    (List.find (fun p -> p.sp_groups = n) scaling).sp_throughput /. base
  in
  Printf.printf
    "  gates: >=3.0x at 4 groups (got %.2fx), >=5.0x at 8 (got %.2fx)\n"
    (speedup 4) (speedup 8);
  if speedup 4 < 3.0 then fail "scaling at 4 groups %.2fx < 3x" (speedup 4);
  if speedup 8 < 5.0 then fail "scaling at 8 groups %.2fx < 5x" (speedup 8);

  (* 2. ablation *)
  Printf.printf
    "\n  2PC ablation: 4 groups, 8 writers, disjoint lock footprints\n\n";
  Printf.printf "  %7s %10s %12s %11s %10s %11s %10s\n" "cross%" "ops"
    "ops/s" "local ms" "lcl p99" "cross ms" "x p99";
  let ablation =
    List.map (fun pct -> ablation_point ~quick pct) [ 0; 10; 50 ]
  in
  List.iter
    (fun p ->
      Printf.printf "  %7d %10d %12.0f %11.3f %10.3f %11.3f %10.3f\n%!"
        p.ab_cross_pct p.ab_ops p.ab_throughput p.ab_local_mean_ms
        p.ab_local_p99_ms p.ab_cross_mean_ms p.ab_cross_p99_ms)
    ablation;
  let tp pct =
    (List.find (fun p -> p.ab_cross_pct = pct) ablation).ab_throughput
  in
  let overhead =
    let p50 = List.find (fun p -> p.ab_cross_pct = 50) ablation in
    p50.ab_cross_mean_ms /. Float.max 1e-9 p50.ab_local_mean_ms
  in
  Printf.printf
    "  a cross-shard transaction costs x%.1f a single-shard write; 50%% \
     cross-shard traffic costs %.0f%% of pure-local throughput\n"
    overhead
    ((tp 0 -. tp 50) /. tp 0 *. 100.0);
  (let p50 = List.find (fun p -> p.ab_cross_pct = 50) ablation in
   if p50.ab_cross_ops = 0 then fail "ablation exercised no cross-shard ops");

  (* 3. chaos *)
  let seeds = if quick then [ 42 ] else [ 42; 43; 44 ] in
  Printf.printf
    "\n  chaos: 4 groups; leader kills inside the coordinator shard +\n\
    \  shard-targeted inter-shard partitions; seeds %s\n\n%!"
    (String.concat ", " (List.map string_of_int seeds));
  let chaos = List.map (fun seed -> chaos_point ~quick seed) seeds in
  List.iter
    (fun p ->
      Printf.printf
        "  seed %d: %d increments (%d failed), %d cross-shard commits (%d \
         gave up), %d coordinator leader kills, %d shard cuts, %d txns \
         resolved\n"
        p.cp_seed p.cp_counter_ok p.cp_counter_failed p.cp_cross_ok
        p.cp_cross_failed p.cp_leader_kills p.cp_shard_cuts p.cp_resolved;
      List.iter
        (fun (s, obj, v) ->
          Printf.printf "    shard %d %s: %s\n" s obj (verdict_cell v);
          match v with
          | Ck_wgl.Non_linearizable _ ->
              fail "seed %d: shard %d object %s not linearizable" p.cp_seed s
                obj
          | _ -> ())
        p.cp_wgl;
      List.iter
        (fun v ->
          Printf.printf "    ATOMICITY: %s\n"
            (Format.asprintf "%a" Atomicity.pp_violation v);
          fail "seed %d: atomicity violation" p.cp_seed)
        p.cp_atomicity;
      if p.cp_cross_ok = 0 then
        fail "seed %d: no cross-shard transaction committed" p.cp_seed;
      if p.cp_leader_kills = 0 then
        fail "seed %d: nemesis killed no coordinator leader" p.cp_seed;
      if p.cp_shard_cuts = 0 then
        fail "seed %d: nemesis cut no shard off the inter-shard plane"
          p.cp_seed)
    chaos;
  (* determinism: the same seed must reproduce the same fault trace *)
  let p0 = List.hd chaos in
  let rerun = chaos_point ~quick p0.cp_seed in
  let deterministic = String.equal rerun.cp_trace p0.cp_trace in
  Printf.printf "\n  same-seed rerun reproduces the fault trace: %b\n"
    deterministic;
  if not deterministic then fail "fault trace not reproducible";

  Bench_json.write_suite ~suite:"sharding"
    [
      ("scaling", Bench_json.List (List.map (json_of_scaling base) scaling));
      ("ablation", Bench_json.List (List.map json_of_ablation ablation));
      ( "chaos",
        Bench_json.List
          (List.map
             (fun p -> json_of_chaos (deterministic || p != p0) p)
             chaos) );
    ];
  if !failures <> [] then begin
    Printf.printf "\nSHARDING RUN FAILED ACCEPTANCE CHECKS:\n";
    List.iter (Printf.printf "  - %s\n") (List.rev !failures);
    exit 1
  end
  else Printf.printf "\nall sharding acceptance checks passed\n"
