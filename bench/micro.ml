(* Bechamel micro-benchmarks of the extension machinery: these measure the
   real CPU cost of the components the paper argues are cheap —
   registration-time verification (§4.2: "no verification overhead during
   execution") and sandboxed execution. *)

open Bechamel
open Toolkit
open Edc_core

(* in-memory proxy over a plain hashtable (same shape as the test suite's) *)
let mock_proxy () =
  let store : (string, string * int * int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let record oid =
    match Hashtbl.find_opt store oid with
    | Some (data, version, ctime) -> Ok (Value.obj ~id:oid ~data ~version ~ctime)
    | None -> Error ("no object " ^ oid)
  in
  let proxy =
    {
      Sandbox.p_read = record;
      p_exists = (fun oid -> Hashtbl.mem store oid);
      p_sub_objects =
        (fun oid ->
          let prefix = oid ^ "/" in
          Ok
            (Hashtbl.fold
               (fun id (data, version, ctime) acc ->
                 if
                   String.length id > String.length prefix
                   && String.sub id 0 (String.length prefix) = prefix
                 then Value.obj ~id ~data ~version ~ctime :: acc
                 else acc)
               store []));
      p_create =
        (fun ~sequential:_ ~oid ~data ->
          incr next;
          Hashtbl.replace store oid (data, 0, !next);
          Ok oid);
      p_update =
        (fun ~oid ~data ->
          match Hashtbl.find_opt store oid with
          | Some (_, v, c) ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok (v + 1)
          | None -> Error "no object");
      p_cas =
        (fun ~oid ~expected ~data ->
          match Hashtbl.find_opt store oid with
          | Some (cur, v, c) when cur = expected ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok true
          | Some _ -> Ok false
          | None -> Error "no object");
      p_delete = (fun oid -> Ok (Hashtbl.mem store oid && (Hashtbl.remove store oid; true)));
      p_block = (fun _ -> Ok ());
      p_monitor = (fun _ -> Ok ());
      p_notify = (fun ~client:_ ~oid:_ -> Ok ());
      p_clock = (fun () -> 0);
    }
  in
  (proxy, store)

let counter_code = Codec.serialize Edc_recipes.Counter.program
let queue_code = Codec.serialize Edc_recipes.Queue.program

let tests () =
  let proxy, store = mock_proxy () in
  Hashtbl.replace store "/ctr" ("0", 0, 0);
  for i = 1 to 20 do
    Hashtbl.replace store (Printf.sprintf "/queue/e%02d" i) ("x", 0, i)
  done;
  let counter_handler =
    Option.get Edc_recipes.Counter.program.Program.on_operation
  in
  let tree =
    let tr = Edc_zookeeper.Data_tree.create () in
    Edc_zookeeper.Data_tree.apply_create tr ~path:"/a" ~data:"hello"
      ~ephemeral_owner:None;
    tr
  in
  let tuple = Edc_depspace.Tuple.[ Str "/q/item"; Str "data"; Int 0; Int 7 ] in
  let template = Edc_depspace.Objects.sub_template "/q" in
  [
    Test.make ~name:"sandbox: counter handler"
      (Staged.stage (fun () ->
           ignore (Sandbox.run ~proxy ~params:[] counter_handler)));
    Test.make ~name:"verify: counter program"
      (Staged.stage (fun () ->
           ignore (Verify.verify ~mode:Verify.Passive counter_code)));
    Test.make ~name:"verify: queue program"
      (Staged.stage (fun () ->
           ignore (Verify.verify ~mode:Verify.Active queue_code)));
    Test.make ~name:"codec: decode counter"
      (Staged.stage (fun () -> ignore (Codec.deserialize counter_code)));
    Test.make ~name:"data_tree: get_data"
      (Staged.stage (fun () -> ignore (Edc_zookeeper.Data_tree.get_data tree "/a")));
    Test.make ~name:"tuple: template match"
      (Staged.stage (fun () -> ignore (Edc_depspace.Tuple.matches template tuple)));
    Test.make ~name:"subscription: match"
      (Staged.stage (fun () ->
           ignore
             (Subscription.oid_matches (Subscription.Under "/queue") "/queue/e17")));
  ]

let run_all () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one ols (List.hd instances) raw with
          | ols_result -> (
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Printf.printf "  %-28s %10.1f ns/call\n%!" name est
              | _ -> Printf.printf "  %-28s (no estimate)\n%!" name))
        results)
    (tests ())

(* ------------------------------------------------------------------ *)
(* Staged-compilation matrix (this PR's tentpole evidence)             *)
(*                                                                     *)
(* Handler execution interpreter-vs-compiled, and operation/event      *)
(* matching linear-scan-vs-indexed at 1/16/256 registered extensions.  *)
(* Manual timing loops (calibrated to >= ~0.1 s per measurement) keep  *)
(* this independent of Bechamel so the numbers can be emitted as       *)
(* machine-readable rows.                                              *)
(* ------------------------------------------------------------------ *)

type matrix_row = {
  m_name : string;  (** what is measured, e.g. "match_operation" *)
  m_variant : string;  (** "interpreter"/"compiled" or "scan"/"indexed" *)
  m_extensions : int;  (** registered extensions during the measurement *)
  m_ns_per_call : float;
}

let time_per_call_ns f =
  for _ = 1 to 100 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let rec measure n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.1 && n < 1_000_000_000 then measure (n * 4)
    else dt /. float_of_int n *. 1e9
  in
  measure 100

(* A handler whose cost is interpretation, not proxy I/O: one subObjects
   call, then a fold over the items with heavy variable, field, builtin
   and arithmetic traffic on every iteration — the profile of a real
   aggregation extension (and of the paper's queue recipe scanning its
   elements). *)
let fold_handler =
  let open Ast in
  [
    Let ("acc", Int_lit 0);
    Let ("lo", Int_lit 0);
    Let ("hi", Int_lit 0);
    For_each
      ( "x",
        Svc (Svc_sub_objects, [ Param "oid" ]),
        [
          Let
            ( "w",
              Binop
                ( Add,
                  Field (Var "x", "version"),
                  Call ("str_len", [ Field (Var "x", "data") ]) ) );
          Assign ("lo", Call ("min", [ Var "lo"; Var "w" ]));
          Assign ("hi", Call ("max", [ Var "hi"; Var "w" ]));
          Assign
            ( "acc",
              Binop
                ( Add,
                  Var "acc",
                  Binop
                    ( Mul,
                      Binop (Sub, Var "hi", Var "lo"),
                      Binop (Add, Var "w", Int_lit 1) ) ) );
          If
            ( Binop (Gt, Var "acc", Int_lit 1_000_000),
              [ Assign ("acc", Binop (Sub, Var "acc", Int_lit 1_000_000)) ],
              [] );
        ] );
    Return (Binop (Add, Var "acc", Binop (Sub, Var "hi", Var "lo")));
  ]

let handler_rows () =
  let proxy, store = mock_proxy () in
  Hashtbl.replace store "/ctr" ("0", 0, 0);
  for i = 1 to 20 do
    Hashtbl.replace store (Printf.sprintf "/queue/e%02d" i) ("x", 0, i)
  done;
  let counter_handler =
    Option.get Edc_recipes.Counter.program.Program.on_operation
  in
  let params = [ ("oid", Value.Str "/queue"); ("client", Value.Int 1) ] in
  let bench name handler params =
    let compiled = Compile.compile handler in
    [
      {
        m_name = name;
        m_variant = "interpreter";
        m_extensions = 1;
        m_ns_per_call =
          time_per_call_ns (fun () -> Sandbox.run ~proxy ~params handler);
      };
      {
        m_name = name;
        m_variant = "compiled";
        m_extensions = 1;
        m_ns_per_call =
          time_per_call_ns (fun () -> Compile.run ~proxy ~params compiled);
      };
    ]
  in
  bench "handler_exec/fold20" fold_handler params
  @ bench "handler_exec/counter" counter_handler []

(* Registry of [n] extensions with a realistic pattern mix (no [Any_oid]:
   those are scanned by both variants and would only flatter the index). *)
let build_registry n =
  let m = Manager.create ~mode:Verify.Passive () in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "ext%03d" i in
    let pat =
      match i mod 3 with
      | 0 -> Subscription.Exact (Printf.sprintf "/obj/%d" i)
      | 1 -> Subscription.Under (Printf.sprintf "/dir/%d" i)
      | _ -> Subscription.Starts_with (Printf.sprintf "/pfx/%d-" i)
    in
    let p =
      Program.make name
        ~op_subs:[ { Subscription.op_kinds = [ Subscription.K_update ]; op_oid = pat } ]
        ~event_subs:
          [ { Subscription.ev_kinds = [ Subscription.E_created ]; ev_oid = pat } ]
        ~on_operation:[ Ast.Return (Ast.Int_lit i) ]
        ~on_event:[ Ast.Return (Ast.Int_lit i) ]
        ()
    in
    match Manager.apply_registration m ~name ~owner:1 ~code:(Codec.serialize p) with
    | Ok _ -> ()
    | Error e -> failwith ("bench registration failed: " ^ e)
  done;
  m

let matching_rows n =
  let m = build_registry n in
  (* hit an Exact subscription near the middle of the registry — the
     realistic hot case (Exact patterns live at indices i mod 3 = 0) *)
  let oid = Printf.sprintf "/obj/%d" (n / 2 / 3 * 3) in
  let row name variant f =
    { m_name = name; m_variant = variant; m_extensions = n;
      m_ns_per_call = time_per_call_ns f }
  in
  [
    row "match_operation" "scan" (fun () ->
        Manager.match_operation_scan m ~client:1 ~kind:Subscription.K_update ~oid);
    row "match_operation" "indexed" (fun () ->
        Manager.match_operation m ~client:1 ~kind:Subscription.K_update ~oid);
    row "match_events" "scan" (fun () ->
        Manager.match_events_scan m ~kind:Subscription.E_created ~oid);
    row "match_events" "indexed" (fun () ->
        Manager.match_events m ~kind:Subscription.E_created ~oid);
    row "client_has_event_match" "scan" (fun () ->
        Manager.client_has_event_match_scan m ~client:1
          ~kind:Subscription.E_created ~oid);
    row "client_has_event_match" "indexed" (fun () ->
        Manager.client_has_event_match m ~client:1 ~kind:Subscription.E_created
          ~oid);
  ]

let matrix_counts = [ 1; 16; 256 ]

let run_matrix () =
  let rows = handler_rows () @ List.concat_map matching_rows matrix_counts in
  Printf.printf "\n  %-26s %-12s %5s %12s\n" "benchmark" "variant" "#ext"
    "ns/call";
  List.iter
    (fun r ->
      Printf.printf "  %-26s %-12s %5d %12.1f\n%!" r.m_name r.m_variant
        r.m_extensions r.m_ns_per_call)
    rows;
  (* headline ratios for the paper claim: staged execution and indexed
     dispatch vs their pre-PR baselines *)
  let find name variant n =
    List.find_opt
      (fun r -> r.m_name = name && r.m_variant = variant && r.m_extensions = n)
      rows
  in
  let speedups =
    List.filter_map
      (fun (name, base, contender, n) ->
        match (find name base n, find name contender n) with
        | Some b, Some c when c.m_ns_per_call > 0.0 ->
            Some (name, base, contender, n, b.m_ns_per_call /. c.m_ns_per_call)
        | _ -> None)
      [
        ("handler_exec/fold20", "interpreter", "compiled", 1);
        ("handler_exec/counter", "interpreter", "compiled", 1);
        ("match_operation", "scan", "indexed", 256);
        ("match_events", "scan", "indexed", 256);
        ("client_has_event_match", "scan", "indexed", 256);
      ]
  in
  print_newline ();
  List.iter
    (fun (name, _, _, n, s) ->
      Printf.printf "  %-26s @%3d ext: %5.1fx speedup\n%!" name n s)
    speedups;
  (rows, speedups)

