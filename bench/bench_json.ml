(* Minimal JSON emitter for machine-readable bench results (BENCH_*.json).
   Hand-rolled on purpose: the bench harness has no JSON dependency and the
   values we emit are plain records of numbers and strings.  The schema is
   documented in EXPERIMENTS.md. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null" (* nan/inf are not JSON *)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Results land next to the repo root (the cwd of [dune exec]) as
   BENCH_<suite>.json, where CI picks them up as artifacts. *)
let write_suite ~suite fields =
  let path = Printf.sprintf "BENCH_%s.json" suite in
  let oc = open_out path in
  output_string oc (to_string (Obj (("suite", Str suite) :: ("schema", Int 1) :: fields)));
  close_out oc;
  Printf.printf "  [bench] wrote %s\n%!" path
