(* Minimal JSON emitter for machine-readable bench results (BENCH_*.json).
   Hand-rolled on purpose: the bench harness has no JSON dependency and the
   values we emit are plain records of numbers and strings.  The schema is
   documented in EXPERIMENTS.md. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null" (* nan/inf are not JSON *)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Results land next to the repo root (the cwd of [dune exec]) as
   BENCH_<suite>.json, where CI picks them up as artifacts. *)
let write_suite ?(schema = 1) ~suite fields =
  let path = Printf.sprintf "BENCH_%s.json" suite in
  let oc = open_out path in
  output_string oc
    (to_string (Obj (("suite", Str suite) :: ("schema", Int schema) :: fields)));
  close_out oc;
  Printf.printf "  [bench] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Reader — just enough JSON to load committed baselines back          *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let pstring () =
    expect '"';
    let buf = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' -> fin := true
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> (
              if !pos + 4 >= n then fail "bad unicode escape";
              match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code when code < 0x80 ->
                  Buffer.add_char buf (Char.chr code);
                  pos := !pos + 4
              | Some _ -> fail "non-ascii unicode escape"
              | None -> fail "bad unicode escape")
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c);
      incr pos
    done;
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let fin = ref false in
          while not !fin do
            skip_ws ();
            let k = pstring () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
                incr pos;
                fin := true
            | _ -> fail "expected ',' or '}'"
          done;
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let fin = ref false in
          while not !fin do
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
                incr pos;
                fin := true
            | _ -> fail "expected ',' or ']'"
          done;
          List (List.rev !items)
        end
    | Some '"' -> Str (pstring ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at %d" !pos)
    else Ok v
  with Parse_fail m -> Error m

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List l -> Some l | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> parse s
