(* Snapshot pipeline benchmarks (PR: COW snapshots, lazy serialization,
   chunked state transfer).

   Four experiments, results in BENCH_snapshot.json:
   - capture: wall-clock cost of a copy-on-write [Data_tree.export]
     vs. the eager deep-copy baseline at 10^3..10^5 nodes (the COW
     capture must stay flat — O(1) — while the deep copy grows linearly)
   - pauses: per-operation apply latency distribution while snapshots
     are taken every K transactions, COW vs. eager (the eager mode
     stalls the apply path for the whole copy)
   - catchup: simulated follower catch-up time through the chunked
     state transfer as a function of state size
   - resume: a link cut in the middle of a state transfer, then healed —
     the transfer must resume from the last acknowledged chunk, not
     restart from chunk 0. *)

open Edc_simnet
open Edc_replication
module Dt = Edc_zookeeper.Data_tree
module J = Bench_json

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Capture latency: COW export vs. eager deep copy                     *)
(* ------------------------------------------------------------------ *)

let build_tree n =
  let t = Dt.create () in
  Dt.apply_create t ~path:"/b" ~data:"" ~ephemeral_owner:None;
  for i = 0 to n - 1 do
    Dt.apply_create t
      ~path:(Printf.sprintf "/b/n%06d" i)
      ~data:(Printf.sprintf "payload-%06d" i)
      ~ephemeral_owner:None
  done;
  t

(* Mean wall-clock microseconds of [f] over [reps] calls. *)
let time_us ~reps f =
  let t0 = now_us () in
  for _ = 1 to reps do
    f ()
  done;
  (now_us () -. t0) /. float_of_int reps

let capture_experiment ~quick =
  let sizes = [ 1_000; 10_000; 100_000 ] in
  Printf.printf "\n  capture latency (wall clock):\n";
  Printf.printf "  %9s %14s %14s %10s\n" "nodes" "cow us" "eager us" "ratio";
  let rows =
    List.map
      (fun n ->
        let t = build_tree n in
        let cow_reps = if quick then 200 else 1_000 in
        let eager_reps = if n >= 100_000 then 3 else if quick then 5 else 20 in
        let cow_us =
          time_us ~reps:cow_reps (fun () -> Dt.release (Dt.export t))
        in
        let eager_us =
          time_us ~reps:eager_reps (fun () -> ignore (Dt.export_eager t))
        in
        let ratio = if cow_us > 0. then eager_us /. cow_us else infinity in
        Printf.printf "  %9d %14.2f %14.2f %9.0fx\n%!" n cow_us eager_us ratio;
        (n, cow_us, eager_us, ratio))
      sizes
  in
  let _, cow_small, _, _ = List.hd rows in
  let _, cow_big, _, ratio_big = List.nth rows (List.length rows - 1) in
  (* flat = the COW capture does not grow with the tree (allow generous
     noise: timers at sub-microsecond scales jitter) *)
  let flat = cow_big < 50. || cow_big < 20. *. cow_small in
  let cheap = ratio_big >= 50. in
  Printf.printf "  capture O(1): flat 10^3 -> 10^5 %b, %.0fx cheaper than\n"
    flat ratio_big;
  Printf.printf "  deep copy at 10^5 nodes (>= 50x required: %b)\n" cheap;
  let json =
    J.List
      (List.map
         (fun (n, c, e, r) ->
           J.Obj
             [
               ("nodes", J.Int n);
               ("cow_capture_us", J.Float c);
               ("eager_capture_us", J.Float e);
               ("eager_over_cow", J.Float r);
             ])
         rows)
  in
  (json, flat && cheap)

(* ------------------------------------------------------------------ *)
(* Apply-path pause distribution with and without COW                  *)
(* ------------------------------------------------------------------ *)

let pause_run ~nodes ~ops ~every mode =
  let t = build_tree nodes in
  let series = Stats.Series.create () in
  let held = ref None in
  let snap () =
    match mode with
    | `Cow ->
        Option.iter Dt.release !held;
        held := Some (Dt.export t)
    | `Eager -> ignore (Dt.export_eager t)
  in
  for k = 0 to ops - 1 do
    let t0 = now_us () in
    if k mod every = 0 then snap ();
    Dt.apply_set t
      ~path:(Printf.sprintf "/b/n%06d" (k mod nodes))
      ~data:(Printf.sprintf "v%d" k) ~version:(-1);
    Stats.Series.add series (now_us () -. t0)
  done;
  Option.iter Dt.release !held;
  series

let pause_experiment ~quick =
  let nodes = if quick then 5_000 else 20_000 in
  let ops = if quick then 5_000 else 20_000 in
  let every = 1_000 in
  Printf.printf
    "\n  apply-path pauses (%d ops on %d nodes, snapshot every %d):\n" ops
    nodes every;
  Printf.printf "  %8s %10s %10s %10s\n" "mode" "p50 us" "p99 us" "max us";
  let row mode name =
    let s = pause_run ~nodes ~ops ~every mode in
    Printf.printf "  %8s %10.2f %10.2f %10.1f\n%!" name
      (Stats.Series.median s) (Stats.Series.p99 s) (Stats.Series.max s);
    J.Obj
      [
        ("mode", J.Str name);
        ("p50_us", J.Float (Stats.Series.median s));
        ("p99_us", J.Float (Stats.Series.p99 s));
        ("max_us", J.Float (Stats.Series.max s));
      ]
  in
  let cow = row `Cow "cow" in
  let eager = row `Eager "eager" in
  J.List [ cow; eager ]

(* ------------------------------------------------------------------ *)
(* Zab harness (mirrors the replication tests)                         *)
(* ------------------------------------------------------------------ *)

type cluster = {
  sim : Sim.t;
  net : string Zab.msg Net.t;
  replicas : string Zab.t array;
  mutable delivered : (Zab.zxid * string) list array;  (* newest first *)
}

let make_cluster ?zab_config ?(seed = 7) () =
  let n = 3 in
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let peers = List.init n Fun.id in
  let delivered = Array.make n [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Zab.msg_size ~payload_size:String.length msg)
      msg
  in
  let replicas =
    Array.init n (fun i ->
        Zab.create ?config:zab_config ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p -> delivered.(i) <- (zxid, p) :: delivered.(i))
          ~initial_leader:0 ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      Zab.start r)
    replicas;
  { sim; net; replicas; delivered }

let run_for c d = Sim.run ~until:(Sim_time.add (Sim.now c.sim) d) c.sim

let hist_encode (hist : (Zab.zxid * string) list) =
  Edc_wire.Wire.encode
    (Edc_wire.Wire.List
       (List.map
          (fun ((z : Zab.zxid), s) ->
            Edc_wire.Wire.(List [ Int z.epoch; Int z.counter; Str s ]))
          hist))

let hist_decode blob : ((Zab.zxid * string) list, string) result =
  Result.bind (Edc_wire.Wire.decode blob) (fun w ->
      Edc_wire.Wire.map_list
        (function
          | Edc_wire.Wire.List
              [ Edc_wire.Wire.Int epoch; Edc_wire.Wire.Int counter;
                Edc_wire.Wire.Str s ] ->
              Ok ({ Zab.epoch; counter }, s)
          | _ -> Error "bad history entry")
        w)

let compact_survivors c ids =
  List.iter
    (fun i ->
      Zab.compact c.replicas.(i) ~take:(fun () ->
          let hist = c.delivered.(i) in
          fun () -> hist_encode hist))
    ids

let arm_install c i =
  Zab.set_install_snapshot c.replicas.(i) (fun blob ->
      Result.map (fun h -> c.delivered.(i) <- h) (hist_decode blob))

(* Run until [pred] holds, in [step]-sized slices, at most [limit]. *)
let run_until c ~step ~limit pred =
  let deadline = Sim_time.add (Sim.now c.sim) limit in
  let rec go () =
    if pred () then true
    else if Sim_time.compare (Sim.now c.sim) deadline >= 0 then false
    else begin
      run_for c step;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Follower catch-up time vs. state size                               *)
(* ------------------------------------------------------------------ *)

let catchup_one ~entries ~payload_bytes =
  let c = make_cluster () in
  run_for c (Sim_time.ms 10);
  Zab.crash c.replicas.(2);
  Net.set_node_down c.net 2;
  let payload = String.make payload_bytes 'x' in
  for k = 1 to entries do
    ignore (Zab.propose c.replicas.(0) (Printf.sprintf "%06d%s" k payload)
        : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  compact_survivors c [ 0; 1 ];
  arm_install c 2;
  Net.set_node_up c.net 2;
  Zab.restart c.replicas.(2);
  let t0 = Sim.now c.sim in
  let caught_up () = List.length c.delivered.(2) >= entries in
  let ok =
    run_until c ~step:(Sim_time.ms 10) ~limit:(Sim_time.sec 30) caught_up
  in
  let stats = Zab.xfer_stats c.replicas.(0) in
  let catchup_ms =
    Sim_time.to_float_ms (Sim_time.sub (Sim.now c.sim) t0)
  in
  (ok, catchup_ms, stats.Zab.bytes_streamed, stats.Zab.chunks_sent)

let catchup_experiment ~quick =
  let sizes = if quick then [ 50; 200 ] else [ 50; 200; 800 ] in
  Printf.printf "\n  follower catch-up through chunked transfer (sim time):\n";
  Printf.printf "  %8s %12s %12s %8s\n" "entries" "catchup ms" "bytes" "chunks";
  let rows =
    List.map
      (fun entries ->
        let ok, ms, bytes, chunks = catchup_one ~entries ~payload_bytes:256 in
        Printf.printf "  %8d %12.1f %12d %8d%s\n%!" entries ms bytes chunks
          (if ok then "" else "  (DID NOT CATCH UP)");
        (entries, ok, ms, bytes, chunks))
      sizes
  in
  let all_ok = List.for_all (fun (_, ok, _, _, _) -> ok) rows in
  let json =
    J.List
      (List.map
         (fun (entries, ok, ms, bytes, chunks) ->
           J.Obj
             [
               ("entries", J.Int entries);
               ("caught_up", J.Bool ok);
               ("catchup_ms", J.Float ms);
               ("bytes_streamed", J.Int bytes);
               ("chunks_sent", J.Int chunks);
             ])
         rows)
  in
  (json, all_ok)

(* ------------------------------------------------------------------ *)
(* Mid-transfer link cut + heal: resume from the last acked chunk      *)
(* ------------------------------------------------------------------ *)

let resume_experiment () =
  Printf.printf "\n  mid-transfer link kill + heal:\n";
  (* tiny chunks so the transfer spans many round trips and the cut lands
     mid-flight deterministically *)
  let zab_config =
    { Zab.default_config with snapshot_chunk_size = 512; snapshot_window = 2 }
  in
  let c = make_cluster ~zab_config () in
  run_for c (Sim_time.ms 10);
  Zab.crash c.replicas.(2);
  Net.set_node_down c.net 2;
  let payload = String.make 256 'y' in
  let entries = 400 in
  for k = 1 to entries do
    ignore (Zab.propose c.replicas.(0) (Printf.sprintf "%06d%s" k payload)
        : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  compact_survivors c [ 0; 1 ];
  arm_install c 2;
  Net.set_node_up c.net 2;
  Zab.restart c.replicas.(2);
  (* summed over replicas: the cut below outlasts the election timeout, so
     the resume is performed by whichever replica leads afterwards *)
  let stat f =
    Array.fold_left (fun acc r -> acc + f (Zab.xfer_stats r)) 0 c.replicas
  in
  let stat_max f =
    Array.fold_left
      (fun acc r -> Stdlib.max acc (f (Zab.xfer_stats r)))
      0 c.replicas
  in
  (* let the transfer start and make some progress... *)
  let started () =
    stat (fun s -> s.Zab.transfers_started) > 0
    && stat (fun s -> s.Zab.chunks_sent) > 8
  in
  let started_ok =
    run_until c ~step:(Sim_time.ms 1) ~limit:(Sim_time.sec 5) started
  in
  let installed () =
    stat (fun s -> s.Zab.installs) > 0 || List.length c.delivered.(2) > 0
  in
  let cut_mid_flight = started_ok && not (installed ()) in
  (* ...then kill the leader-follower link mid-transfer.  The cut outlasts
     the election timeout: the orphaned follower forces a leader change,
     and the new leader -- whose deterministic serialization produced a
     byte-identical blob, verified by the digest in [Snapshot_begin] --
     must continue from the follower's last acknowledged chunk instead of
     restarting at 0. *)
  Net.cut_link c.net 0 2;
  run_for c (Sim_time.sec 1);
  Net.heal_link c.net 0 2;
  let caught_up () = List.length c.delivered.(2) >= entries in
  let completed =
    run_until c ~step:(Sim_time.ms 10) ~limit:(Sim_time.sec 30) caught_up
  in
  let resumes = stat (fun s -> s.Zab.resumes) in
  let resume_from = stat_max (fun s -> s.Zab.last_resume_from) in
  let retx = stat (fun s -> s.Zab.chunk_retx) in
  let resumed = resumes > 0 && resume_from > 0 in
  Printf.printf "  cut mid-flight: %b; transfer completed: %b\n"
    cut_mid_flight completed;
  Printf.printf
    "  resumed from chunk %d (resumes %d, retransmits %d) -- no restart\n\
    \  from chunk 0: %b\n"
    resume_from resumes retx resumed;
  let json =
    J.Obj
      [
        ("cut_mid_flight", J.Bool cut_mid_flight);
        ("completed", J.Bool completed);
        ("resumed_from_chunk", J.Int resume_from);
        ("resumes", J.Int resumes);
        ("chunk_retransmits", J.Int retx);
        ("chunks_sent", J.Int (stat (fun s -> s.Zab.chunks_sent)));
        ("installs", J.Int (stat (fun s -> s.Zab.installs)));
      ]
  in
  (json, cut_mid_flight && completed && resumed)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ~quick =
  let capture_json, capture_ok = capture_experiment ~quick in
  let pause_json = pause_experiment ~quick in
  let catchup_json, catchup_ok = catchup_experiment ~quick in
  let resume_json, resume_ok = resume_experiment () in
  J.write_suite ~suite:"snapshot"
    [
      ("capture", capture_json);
      ("pauses", pause_json);
      ("catchup", catchup_json);
      ("resume", resume_json);
      ("capture_o1_ok", J.Bool capture_ok);
      ("catchup_ok", J.Bool catchup_ok);
      ("resume_ok", J.Bool resume_ok);
    ];
  if not (capture_ok && catchup_ok && resume_ok) then begin
    Printf.printf "SNAPSHOT BENCH FAILED ACCEPTANCE CHECKS\n";
    exit 1
  end
