(* Differential tests for the staged compiler (Compile) against the
   reference interpreter (Sandbox), plus unit and property tests for the
   manager's dispatch index against its linear-scan reference.

   The compiled engine must be observably identical to the interpreter:
   same result value, same (steps, service-calls) usage on success, same
   abort verdict at every limit boundary, and same sequence of effects on
   the state proxy.  Replicas may then mix engines without diverging. *)

open Edc_core

(* ------------------------------------------------------------------ *)
(* Deterministic mock proxy (same semantics as test_core's)            *)
(* ------------------------------------------------------------------ *)

let mock_proxy () =
  let store : (string, string * int * int) Hashtbl.t = Hashtbl.create 8 in
  let next_ctime = ref 0 in
  let record oid =
    match Hashtbl.find_opt store oid with
    | Some (data, version, ctime) -> Ok (Value.obj ~id:oid ~data ~version ~ctime)
    | None -> Error ("no object " ^ oid)
  in
  let blocked = ref [] in
  let proxy =
    {
      Sandbox.p_read = record;
      p_exists = (fun oid -> Hashtbl.mem store oid);
      p_sub_objects =
        (fun oid ->
          let prefix = oid ^ "/" in
          Ok
            (Hashtbl.fold
               (fun id (data, version, ctime) acc ->
                 if
                   String.length id > String.length prefix
                   && String.sub id 0 (String.length prefix) = prefix
                 then Value.obj ~id ~data ~version ~ctime :: acc
                 else acc)
               store []
            |> List.sort compare));
      p_create =
        (fun ~sequential ~oid ~data ->
          let oid =
            if sequential then Printf.sprintf "%s%010d" oid !next_ctime else oid
          in
          if Hashtbl.mem store oid then Error "exists"
          else begin
            incr next_ctime;
            Hashtbl.replace store oid (data, 0, !next_ctime);
            Ok oid
          end);
      p_update =
        (fun ~oid ~data ->
          match Hashtbl.find_opt store oid with
          | Some (_, v, c) ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok (v + 1)
          | None -> Error "no object");
      p_cas =
        (fun ~oid ~expected ~data ->
          match Hashtbl.find_opt store oid with
          | Some (cur, v, c) when cur = expected ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok true
          | Some _ -> Ok false
          | None -> Error "no object");
      p_delete =
        (fun oid -> Ok (Hashtbl.mem store oid && (Hashtbl.remove store oid; true)));
      p_block =
        (fun oid ->
          blocked := oid :: !blocked;
          Ok ());
      p_monitor =
        (fun oid ->
          Hashtbl.replace store oid ("", 0, 0);
          Ok ());
      p_notify = (fun ~client:_ ~oid:_ -> Ok ());
      p_clock = (fun () -> 12345);
    }
  in
  (proxy, store, blocked)

let seed_store store =
  List.iter
    (fun (oid, v) -> Hashtbl.replace store oid v)
    [
      ("/obj", ("7", 0, 1));
      ("/obj/a", ("1", 0, 2));
      ("/obj/b", ("2", 0, 3));
      ("/ctr", ("41", 1, 4));
    ]

(* ------------------------------------------------------------------ *)
(* Differential property: interpreter vs compiled                      *)
(* ------------------------------------------------------------------ *)

let store_snapshot store =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare

let pp_outcome = function
  | Ok (v, steps, svcs) -> Fmt.str "Ok (%a, steps=%d, svcs=%d)" Value.pp v steps svcs
  | Error e -> "Error: " ^ Sandbox.error_to_string e

(* Run [handler] under both engines against identically-seeded proxies and
   demand indistinguishable outcomes and effects. *)
let check_differential ?limits handler params =
  let proxy_i, store_i, blocked_i = mock_proxy () in
  let proxy_c, store_c, blocked_c = mock_proxy () in
  seed_store store_i;
  seed_store store_c;
  let ri = Sandbox.run ?limits ~proxy:proxy_i ~params handler in
  let rc = Compile.run ?limits ~proxy:proxy_c ~params (Compile.compile handler) in
  if ri <> rc then
    QCheck.Test.fail_reportf "engines disagree:@.interp:   %s@.compiled: %s"
      (pp_outcome ri) (pp_outcome rc)
  else if store_snapshot store_i <> store_snapshot store_c then
    QCheck.Test.fail_reportf "stores diverged (outcome %s)" (pp_outcome ri)
  else if !blocked_i <> !blocked_c then
    QCheck.Test.fail_reportf "blocked sets diverged (outcome %s)" (pp_outcome ri)
  else true

(* Handler generator: biased toward meaningful programs — real builtin
   names, oids that exist in the seeded store, the params the hosts
   actually bind — with enough junk (unknown builtins/params, type
   mismatches, constant faults like division by zero) to exercise every
   error path on both engines. *)
let handler_gen =
  let open QCheck.Gen in
  let ident = oneofl [ "x"; "y"; "z"; "acc" ] in
  let param = oneofl [ "oid"; "data"; "client"; "kind"; "ghost" ] in
  let oid_lit =
    oneofl [ "/obj"; "/obj/a"; "/obj/b"; "/ctr"; "/missing"; "/new" ]
  in
  let builtin_name =
    frequency
      [ (6, oneofl Builtins.names); (1, oneofl [ "bogus"; "frobnicate" ]) ]
  in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or; Concat ]
  in
  let svc_op =
    oneofl
      Ast.
        [
          Svc_read; Svc_exists; Svc_sub_objects; Svc_create;
          Svc_create_sequential; Svc_update; Svc_cas; Svc_delete; Svc_block;
          Svc_monitor; Svc_notify;
        ]
  in
  let base_expr =
    frequency
      [
        (1, return Ast.Unit_lit);
        (2, map (fun b -> Ast.Bool_lit b) bool);
        (3, map (fun i -> Ast.Int_lit i) (int_range (-5) 5));
        (3, map (fun s -> Ast.Str_lit s) oid_lit);
        (2, map (fun s -> Ast.Str_lit s) (oneofl [ ""; "41"; "abc" ]));
        (3, map (fun s -> Ast.Var s) ident);
        (3, map (fun s -> Ast.Param s) param);
      ]
  in
  let rec expr d =
    if d = 0 then base_expr
    else
      frequency
        [
          (4, base_expr);
          (1, map (fun e -> Ast.Not e) (expr (d - 1)));
          (1, map (fun e -> Ast.Neg e) (expr (d - 1)));
          ( 3,
            map3 (fun op a b -> Ast.Binop (op, a, b)) binop (expr (d - 1))
              (expr (d - 1)) );
          ( 1,
            map2 (fun e f -> Ast.Field (e, f)) (expr (d - 1))
              (oneofl [ "id"; "data"; "version"; "ctime"; "nope" ]) );
          ( 2,
            map2
              (fun n args -> Ast.Call (n, args))
              builtin_name
              (list_size (int_range 0 3) (expr (d - 1))) );
          ( 2,
            map2
              (fun op args -> Ast.Svc (op, args))
              svc_op
              (list_size (int_range 0 3) (expr (d - 1))) );
        ]
  in
  let rec stmt d =
    let flat =
      frequency
        [
          (3, map2 (fun x e -> Ast.Let (x, e)) ident (expr 2));
          (2, map2 (fun x e -> Ast.Assign (x, e)) ident (expr 2));
          (1, map (fun e -> Ast.Return e) (expr 2));
          (2, map (fun e -> Ast.Do e) (expr 2));
          (1, map (fun s -> Ast.Abort s) (oneofl [ "boom"; "" ]));
        ]
    in
    if d = 0 then flat
    else
      frequency
        [
          (5, flat);
          ( 1,
            map3
              (fun c a b -> Ast.If (c, a, b))
              (expr 2)
              (list_size (int_range 0 2) (stmt (d - 1)))
              (list_size (int_range 0 2) (stmt (d - 1))) );
          ( 1,
            map3
              (fun x e body -> Ast.For_each (x, e, body))
              ident (expr 2)
              (list_size (int_range 1 2) (stmt (d - 1))) );
        ]
  in
  list_size (int_range 1 5) (stmt 2)

let handler_arb =
  QCheck.make
    ~print:(fun h -> Codec.serialize (Program.make "gen" ~on_operation:h ()))
    handler_gen

let host_params =
  [
    ("oid", Value.Str "/obj");
    ("data", Value.Str "41");
    ("client", Value.Int 7);
    ("kind", Value.Str "update");
  ]

let prop_differential_default_limits =
  QCheck.Test.make ~name:"interpreter = compiled (default limits)" ~count:1000
    handler_arb
    (fun h -> check_differential h host_params)

(* Tight random limits drive both engines into every abort verdict right
   at the boundary; the verdicts must still be identical. *)
let tight_limits_gen =
  let open QCheck.Gen in
  let* max_steps = int_range 0 40 in
  let* max_service_calls = int_range 0 3 in
  let* max_creates = int_range 0 2 in
  let* max_value_bytes = oneofl [ 0; 8; 40; 4096 ] in
  return { Sandbox.max_steps; max_service_calls; max_creates; max_value_bytes }

let prop_differential_tight_limits =
  QCheck.Test.make ~name:"interpreter = compiled (tight limits)" ~count:1000
    (QCheck.make
       ~print:(fun (h, (l : Sandbox.limits)) ->
         Fmt.str "steps<=%d svcs<=%d creates<=%d bytes<=%d@.%s" l.max_steps
           l.max_service_calls l.max_creates l.max_value_bytes
           (Codec.serialize (Program.make "gen" ~on_operation:h ())))
       QCheck.Gen.(pair handler_gen tight_limits_gen))
    (fun (h, limits) -> check_differential ~limits h host_params)

(* Pinpoint cases the random walk may only rarely hit. *)
let test_differential_corners () =
  let open Ast in
  let cases =
    [
      (* constant folding over faults: division by zero, type error under Neg *)
      [ Return (Binop (Div, Int_lit 1, Int_lit 0)) ];
      [ Return (Binop (Div, Str_lit "x", Int_lit 0)) ];
      [ Return (Neg (Str_lit "x")) ];
      [ Return (Binop (And, Bool_lit false, Binop (Div, Int_lit 1, Int_lit 0))) ];
      [ Return (Binop (Or, Bool_lit true, Str_lit "never")) ];
      (* unknown builtin / wrong arity still evaluate (and charge) args *)
      [ Do (Call ("bogus", [ Svc (Svc_sub_objects, [ Str_lit "/obj" ]) ])) ];
      [ Do (Call ("min", [ Int_lit 1 ])) ];
      [ Do (Call ("clock", [])) ];
      (* wrong service arity faults before evaluating arguments *)
      [ Do (Svc (Svc_read, [])) ];
      [ Do (Svc (Svc_create, [ Str_lit "/new" ])) ];
      (* param visibility and for-each scoping *)
      [ Return (Param "ghost") ];
      [
        Let ("x", Int_lit 1);
        For_each ("x", Svc (Svc_sub_objects, [ Str_lit "/obj" ]),
          [ Do (Var "x") ]);
        Return (Var "x");
      ];
      [ For_each ("fresh", Str_lit "/obj", [ Do (Var "fresh") ]) ];
    ]
  in
  List.iteri
    (fun i h ->
      ignore (check_differential h host_params : bool);
      (* and once more under a starvation budget *)
      ignore
        (check_differential
           ~limits:
             {
               Sandbox.max_steps = 3;
               max_service_calls = 1;
               max_creates = 1;
               max_value_bytes = 16;
             }
           h host_params
          : bool);
      ignore i)
    cases

(* ------------------------------------------------------------------ *)
(* Dispatch index                                                      *)
(* ------------------------------------------------------------------ *)

let reg m ~name ~owner ?(op_subs = []) ?(event_subs = []) ?on_operation
    ?on_event () =
  let p = Program.make name ~op_subs ~event_subs ?on_operation ?on_event () in
  match Manager.apply_registration m ~name ~owner ~code:(Codec.serialize p) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "registration %s failed: %s" name e

let ret_handler k = [ Ast.Return (Ast.Int_lit k) ]

let op_sub kinds pat = { Subscription.op_kinds = kinds; op_oid = pat }
let ev_sub kinds pat = { Subscription.ev_kinds = kinds; ev_oid = pat }

let entry_name m (e : Manager.entry) =
  ignore m;
  e.Manager.program.Program.name

let test_latest_registration_wins () =
  let m = Manager.create ~mode:Verify.Passive () in
  reg m ~name:"first" ~owner:1
    ~op_subs:[ op_sub [ Subscription.K_update ] (Subscription.Exact "/x") ]
    ~on_operation:(ret_handler 1) ();
  reg m ~name:"second" ~owner:1
    ~op_subs:[ op_sub [ Subscription.K_update ] (Subscription.Under "/") ]
    ~on_operation:(ret_handler 2) ();
  let pick () =
    match
      Manager.match_operation m ~client:1 ~kind:Subscription.K_update ~oid:"/x"
    with
    | Some e -> entry_name m e
    | None -> Alcotest.fail "expected a match"
  in
  Alcotest.(check string) "later registration wins" "second" (pick ());
  (* re-registering bumps reg_seq: "first" becomes the latest *)
  reg m ~name:"first" ~owner:1
    ~op_subs:[ op_sub [ Subscription.K_update ] (Subscription.Exact "/x") ]
    ~on_operation:(ret_handler 1) ();
  Alcotest.(check string) "re-registration wins" "first" (pick ());
  (* unsubscribed kind and oid never match *)
  Alcotest.(check bool)
    "kind respected" true
    (Manager.match_operation m ~client:1 ~kind:Subscription.K_delete ~oid:"/x"
    = None);
  Alcotest.(check bool)
    "oid respected" true
    (Manager.match_operation m ~client:1 ~kind:Subscription.K_update ~oid:"/"
    = None)

let test_event_order_is_registration_order () =
  let m = Manager.create ~mode:Verify.Passive () in
  (* three extensions land in three different index buckets (exact,
     prefix, any) but must come back in registration order *)
  reg m ~name:"e-exact" ~owner:1
    ~event_subs:[ ev_sub [ Subscription.E_created ] (Subscription.Exact "/q/a") ]
    ~on_event:(ret_handler 1) ();
  reg m ~name:"e-under" ~owner:1
    ~event_subs:[ ev_sub [ Subscription.E_created ] (Subscription.Under "/q") ]
    ~on_event:(ret_handler 2) ();
  reg m ~name:"e-any" ~owner:1
    ~event_subs:[ ev_sub [ Subscription.E_created ] Subscription.Any_oid ]
    ~on_event:(ret_handler 3) ();
  let names =
    Manager.match_events m ~kind:Subscription.E_created ~oid:"/q/a"
    |> List.map (entry_name m)
  in
  Alcotest.(check (list string))
    "registration order" [ "e-exact"; "e-under"; "e-any" ] names;
  (* overlapping subscriptions of one extension yield it once *)
  reg m ~name:"e-both" ~owner:1
    ~event_subs:
      [
        ev_sub [ Subscription.E_created ] (Subscription.Under "/q");
        ev_sub [ Subscription.E_created ] (Subscription.Starts_with "/q/");
      ]
    ~on_event:(ret_handler 4) ();
  let names =
    Manager.match_events m ~kind:Subscription.E_created ~oid:"/q/a"
    |> List.map (entry_name m)
  in
  Alcotest.(check (list string))
    "no duplicates" [ "e-exact"; "e-under"; "e-any"; "e-both" ] names

let test_ack_visibility () =
  let m = Manager.create ~mode:Verify.Passive () in
  reg m ~name:"ext" ~owner:1
    ~op_subs:[ op_sub [ Subscription.K_read ] Subscription.Any_oid ]
    ~event_subs:[ ev_sub [ Subscription.E_changed ] Subscription.Any_oid ]
    ~on_operation:(ret_handler 1) ~on_event:(ret_handler 2) ();
  let sees client =
    Manager.match_operation m ~client ~kind:Subscription.K_read ~oid:"/x"
    <> None
  in
  let hears client =
    Manager.client_has_event_match m ~client ~kind:Subscription.E_changed
      ~oid:"/x"
  in
  Alcotest.(check bool) "owner sees it" true (sees 1);
  Alcotest.(check bool) "owner hears it" true (hears 1);
  Alcotest.(check bool) "stranger blind" false (sees 2);
  Alcotest.(check bool) "stranger deaf" false (hears 2);
  Manager.apply_ack m ~name:"ext" ~client:2;
  Alcotest.(check bool) "acked sees it" true (sees 2);
  Alcotest.(check bool) "acked hears it" true (hears 2);
  (* event *execution* matching is ack-independent (§3.3): the extension
     runs for the state change regardless of who is listening *)
  Alcotest.(check int)
    "event execution is ack-independent" 1
    (List.length (Manager.match_events m ~kind:Subscription.E_changed ~oid:"/x"));
  Manager.apply_unack m ~name:"ext" ~client:2;
  Alcotest.(check bool) "unacked blind again" false (sees 2);
  Alcotest.(check bool) "unacked deaf again" false (hears 2)

let test_compiled_cached_on_entry () =
  let m = Manager.create ~mode:Verify.Passive () in
  reg m ~name:"ext" ~owner:1
    ~op_subs:[ op_sub [ Subscription.K_read ] Subscription.Any_oid ]
    ~on_operation:(ret_handler 42) ();
  match Manager.find m "ext" with
  | None -> Alcotest.fail "missing entry"
  | Some e ->
      Alcotest.(check bool) "op handler staged" true (e.Manager.compiled_op <> None);
      Alcotest.(check bool) "no event handler" true (e.Manager.compiled_ev = None);
      let proxy, _, _ = mock_proxy () in
      (match Manager.run_operation m e ~proxy ~params:[] with
      | Ok (Value.Int 42) -> ()
      | Ok v -> Alcotest.failf "unexpected %a" Value.pp v
      | Error err -> Alcotest.failf "error: %s" (Sandbox.error_to_string err))

(* Property: the indexed matchers agree with the linear-scan reference on
   randomized registries and queries. *)
let registry_spec_gen =
  let open QCheck.Gen in
  let oid_pool =
    [ ""; "/"; "/a"; "/a/b"; "/a/bb"; "/ab"; "/q"; "/q/x"; "/q/x/deep" ]
  in
  let pattern =
    frequency
      [
        (3, map (fun o -> Subscription.Exact o) (oneofl oid_pool));
        (3, map (fun o -> Subscription.Under o) (oneofl oid_pool));
        (3, map (fun o -> Subscription.Starts_with o) (oneofl oid_pool));
        (1, return Subscription.Any_oid);
      ]
  in
  let op_kinds = oneofl Subscription.all_op_kinds >|= fun k -> [ k ] in
  let ev_kinds = oneofl Subscription.all_event_kinds >|= fun k -> [ k ] in
  let ext =
    let* owner = int_range 1 4 in
    let* nops = int_range 0 2 in
    let* nevs = int_range 0 2 in
    let* ops = list_repeat nops (map2 op_sub op_kinds pattern) in
    let* evs = list_repeat nevs (map2 ev_sub ev_kinds pattern) in
    let* acks = list_size (int_range 0 3) (int_range 1 4) in
    return (owner, ops, evs, acks)
  in
  let* exts = list_size (int_range 0 8) ext in
  let query =
    let* client = int_range 1 5 in
    let* opk = oneofl Subscription.all_op_kinds in
    let* evk = oneofl Subscription.all_event_kinds in
    let* oid = oneofl ("/zzz" :: "/q/x0000000001" :: oid_pool) in
    return (client, opk, evk, oid)
  in
  let* queries = list_size (int_range 1 20) query in
  return (exts, queries)

let prop_index_matches_scan =
  QCheck.Test.make ~name:"dispatch index = linear scan" ~count:300
    (QCheck.make registry_spec_gen)
    (fun (exts, queries) ->
      let m = Manager.create ~mode:Verify.Passive () in
      List.iteri
        (fun i (owner, ops, evs, acks) ->
          let name = Printf.sprintf "ext%d" i in
          reg m ~name ~owner ~op_subs:ops ~event_subs:evs
            ~on_operation:(ret_handler i)
            ?on_event:(if evs = [] then None else Some (ret_handler (100 + i)))
            ();
          List.iter (fun client -> Manager.apply_ack m ~name ~client) acks)
        exts;
      List.for_all
        (fun (client, opk, evk, oid) ->
          let seq = function None -> -1 | Some (e : Manager.entry) -> e.Manager.reg_seq in
          let seqs = List.map (fun (e : Manager.entry) -> e.Manager.reg_seq) in
          seq (Manager.match_operation m ~client ~kind:opk ~oid)
          = seq (Manager.match_operation_scan m ~client ~kind:opk ~oid)
          && seqs (Manager.match_events m ~kind:evk ~oid)
             = seqs (Manager.match_events_scan m ~kind:evk ~oid)
          && Manager.client_has_event_match m ~client ~kind:evk ~oid
             = Manager.client_has_event_match_scan m ~client ~kind:evk ~oid)
        queries)

(* ------------------------------------------------------------------ *)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "edc_compile"
    [
      ( "differential",
        [
          qc prop_differential_default_limits;
          qc prop_differential_tight_limits;
          Alcotest.test_case "corner cases" `Quick test_differential_corners;
        ] );
      ( "dispatch-index",
        [
          Alcotest.test_case "latest registration wins" `Quick
            test_latest_registration_wins;
          Alcotest.test_case "event order = registration order" `Quick
            test_event_order_is_registration_order;
          Alcotest.test_case "ack/unack visibility" `Quick test_ack_visibility;
          Alcotest.test_case "compiled handler cached" `Quick
            test_compiled_cached_on_entry;
          qc prop_index_matches_scan;
        ] );
    ]
