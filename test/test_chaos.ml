(* Chaos soak test: several extension-based recipes running concurrently on
   one EZK ensemble while replicas crash and recover (including the
   leader).  At the end, every global invariant must hold exactly —
   counters count, queues neither lose nor duplicate, the tree agrees
   across replicas, and no state machine ever detected an anomaly. *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Zk = Edc_zookeeper
module Ezk_cluster = Edc_ezk.Ezk_cluster

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let test_chaos_mixed_workload_with_crashes () =
  let sim = Sim.create ~seed:2026 () in
  (* aggressive snapshots so recoveries exercise state transfer too *)
  let server_config = { Zk.Server.default_config with snapshot_interval = 200 } in
  let cluster = Ezk_cluster.create ~server_config sim in
  let horizon = Sim_time.sec 40 in
  let failure = ref None in
  let increments_done = ref 0 in
  let produced = ref [] and consumed = ref [] in
  let leaderships = ref 0 and in_power = ref 0 and power_violations = ref 0 in
  let guard f = try f () with e -> failure := Some e in

  (* retry transient failures through the shared policy (crashing replicas
     time requests out; real clients back off and retry).  The recipes here
     are written to tolerate re-execution, so every error is transient. *)
  let retry_rng = Rng.split (Sim.rng sim) in
  let retry_policy =
    {
      Edc_core.Retry.default_policy with
      Edc_core.Retry.base = Sim_time.ms 200;
      deadline = None;
      max_attempts = 50;
    }
  in
  let with_retries what f =
    match
      Edc_core.Retry.run ~sim ~rng:retry_rng ~policy:retry_policy
        (fun ~attempt:_ ->
          Result.map_error (fun e -> Edc_core.Retry.Transient e) (f ()))
    with
    | Edc_core.Retry.Done { value; _ } -> value
    | Edc_core.Retry.Gave_up { error; _ } ->
        Alcotest.failf "%s: %s (out of retries)" what error
    | Edc_core.Retry.Maybe_applied { error; _ }
    | Edc_core.Retry.Rejected { error; _ } ->
        Alcotest.failf "%s: %s" what error
  in
  let new_api ~replica =
    let c = Ezk_cluster.connected_client ~replica cluster () in
    Coord_zk.of_client ~extensible:true c
  in

  Proc.spawn sim (fun () ->
      guard (fun () ->
          (* --- setup: one admin registers all extensions --- *)
          let admin = new_api ~replica:1 in
          ok "counter setup" (Counter.setup admin);
          ok "counter reg" (Counter.register admin);
          ok "queue setup" (Queue.setup admin);
          ok "queue reg" (Queue.register admin);
          ok "election setup" (Election.setup admin Election.election_roots);
          ok "election reg" (Election.register admin Election.election_roots);

          (* --- incrementers --- *)
          for k = 1 to 2 do
            Proc.spawn sim (fun () ->
                guard (fun () ->
                    let api = new_api ~replica:(k mod 2 + 1) in
                    ignore ((Api.ext_exn api).Api.acknowledge Counter.extension_name);
                    while Sim_time.(Sim.now sim < horizon) do
                      ignore (with_retries "increment" (fun () -> Counter.increment_ext api) : Counter.result);
                      incr increments_done;
                      Proc.sleep sim (Sim_time.ms 15)
                    done))
          done;

          (* --- producer / consumer pair --- *)
          Proc.spawn sim (fun () ->
              guard (fun () ->
                  let api = new_api ~replica:1 in
                  ignore ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
                  let i = ref 0 in
                  while Sim_time.(Sim.now sim < horizon) do
                    incr i;
                    let data = Printf.sprintf "m%05d" !i in
                    with_retries "add" (fun () ->
                        Queue.add api ~eid:(Queue.make_eid api !i) ~data);
                    produced := data :: !produced;
                    Proc.sleep sim (Sim_time.ms 20)
                  done));
          Proc.spawn sim (fun () ->
              guard (fun () ->
                  let api = new_api ~replica:2 in
                  ignore ((Api.ext_exn api).Api.acknowledge Queue.extension_name);
                  while Sim_time.(Sim.now sim < horizon) do
                    let r = with_retries "remove" (fun () -> Queue.remove_ext api) in
                    (match r.Queue.data with
                    | Some d -> consumed := d :: !consumed
                    | None -> Proc.sleep sim (Sim_time.ms 10));
                    Proc.sleep sim (Sim_time.ms 10)
                  done));

          (* --- two election contenders: never two leaders at once --- *)
          for k = 1 to 2 do
            Proc.spawn sim (fun () ->
                guard (fun () ->
                    let api = new_api ~replica:(k mod 2 + 1) in
                    ignore
                      ((Api.ext_exn api).Api.acknowledge
                         Election.election_roots.Election.name);
                    while Sim_time.(Sim.now sim < horizon) do
                      with_retries "become" (fun () ->
                          Election.become_leader_ext api Election.election_roots);
                      incr in_power;
                      if !in_power > 1 then incr power_violations;
                      incr leaderships;
                      Proc.sleep sim (Sim_time.ms 30);
                      decr in_power;
                      with_retries "abdicate" (fun () ->
                          Election.abdicate_ext api Election.election_roots);
                      Proc.sleep sim (Sim_time.ms 30)
                    done))
          done;

          (* --- the chaos monkey: rolling follower crashes, one leader
                 crash in the middle --- *)
          Proc.spawn sim (fun () ->
              guard (fun () ->
                  Proc.sleep sim (Sim_time.sec 5);
                  (* crash follower 2, restart *)
                  Ezk_cluster.crash_server cluster 2;
                  Proc.sleep sim (Sim_time.sec 4);
                  Ezk_cluster.restart_server cluster 2;
                  Proc.sleep sim (Sim_time.sec 4);
                  (* crash the original leader *)
                  Ezk_cluster.crash_server cluster 0;
                  Proc.sleep sim (Sim_time.sec 8);
                  Ezk_cluster.restart_server cluster 0;
                  Proc.sleep sim (Sim_time.sec 4);
                  (* one more follower bounce *)
                  Ezk_cluster.crash_server cluster 2;
                  Proc.sleep sim (Sim_time.sec 3);
                  Ezk_cluster.restart_server cluster 2))));
  Sim.run ~until:(Sim_time.add horizon (Sim_time.sec 30)) sim;
  (match !failure with Some e -> raise e | None -> ());

  (* --- invariants --- *)
  Alcotest.(check bool) "workload made progress" true (!increments_done > 100);
  Alcotest.(check bool) "elections made progress" true (!leaderships > 10);
  Alcotest.(check int) "never two leaders at once" 0 !power_violations;

  (* counter counts exactly *)
  let checker_sim_done = ref false in
  Proc.spawn sim (fun () ->
      (try
         let api = new_api ~replica:1 in
         (match ok "final read" (api.Api.read ~oid:Counter.counter_oid) with
         | Some obj ->
             Alcotest.(check string) "counter = number of increments"
               (string_of_int !increments_done)
               obj.Api.data
         | None -> Alcotest.fail "counter vanished");
         (* drain the queue: consumed + remaining = produced, no dups *)
         let api2 = new_api ~replica:2 in
         ignore ((Api.ext_exn api2).Api.acknowledge Queue.extension_name);
         let rec drain () =
           match ok "drain" (Queue.remove_ext api2) with
           | { Queue.data = Some d; _ } ->
               consumed := d :: !consumed;
               drain ()
           | { Queue.data = None; _ } -> ()
         in
         drain ();
         Alcotest.(check (list string)) "queue: no loss, no duplication"
           (List.sort compare !produced)
           (List.sort compare !consumed)
       with e -> failure := Some e);
      checker_sim_done := true);
  Sim.run ~until:(Sim_time.add (Sim.now sim) (Sim_time.sec 60)) sim;
  (match !failure with Some e -> raise e | None -> ());
  Alcotest.(check bool) "checker ran" true !checker_sim_done;

  (* replicas agree and never saw an anomaly *)
  let servers = Ezk_cluster.servers cluster in
  Array.iter
    (fun s ->
      Alcotest.(check int) "no replication anomalies" 0
        (Zk.Data_tree.anomalies (Zk.Server.tree s)))
    servers;
  let counts =
    Array.to_list (Array.map (fun s -> Zk.Data_tree.node_count (Zk.Server.tree s)) servers)
  in
  match counts with
  | c0 :: rest ->
      List.iter (fun c -> Alcotest.(check int) "replicas converged" c0 c) rest
  | [] -> ()

let () =
  Alcotest.run "edc_chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "mixed extensions under crashes" `Slow
            test_chaos_mixed_workload_with_crashes;
        ] );
    ]
