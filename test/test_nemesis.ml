(* Nemesis fault injector: equal seeds must yield identical fault traces,
   the standard schedule must cover the interesting fault classes, and
   both replication substrates (Zab under EZK, PBFT under EDS) must keep
   serving clients through a leader partition and re-absorb the isolated
   replica after the heal. *)

open Edc_simnet
open Edc_harness
open Edc_recipes
module S = Systems

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* Trace determinism                                                   *)
(* ------------------------------------------------------------------ *)

let run_nemesis ~seed kind =
  let sim = Sim.create ~seed () in
  let sys = S.make kind sim in
  let n =
    Nemesis.start ~sim
      ~target:(sys.S.nemesis_target ())
      ~horizon:(Sim_time.sec 20) Nemesis.standard_schedule
  in
  (* past the horizon plus slack, so every in-flight restart/heal lands *)
  Sim.run ~until:(Sim_time.sec 30) sim;
  n

let test_trace_deterministic kind () =
  let a = run_nemesis ~seed:11 kind and b = run_nemesis ~seed:11 kind in
  Alcotest.(check string)
    "equal seeds give identical traces" (Nemesis.trace_to_string a)
    (Nemesis.trace_to_string b);
  Alcotest.(check bool) "trace is non-empty" true (Nemesis.trace a <> [])

let test_standard_schedule_coverage () =
  let n = run_nemesis ~seed:3 S.Ezk in
  let nonzero what v = Alcotest.(check bool) what true (v > 0) in
  nonzero "crashes" (Nemesis.crashes n);
  nonzero "leader kills" (Nemesis.leader_kills n);
  nonzero "partitions" (Nemesis.partitions n);
  nonzero "storms" (Nemesis.storms n);
  Alcotest.(check int)
    "every partition heals" (Nemesis.partitions n)
    (Nemesis.partitions_healed n);
  Alcotest.(check bool)
    "no disruption left in flight" false (Nemesis.busy n)

(* ------------------------------------------------------------------ *)
(* Partition-heal liveness                                             *)
(* ------------------------------------------------------------------ *)

(* Isolate the leader/primary from its peers (clients can still reach
   every replica).  The resilient session must keep making progress by
   failing over to the majority side, and after the heal the cluster —
   including the formerly isolated replica — must serve writes again with
   no replication anomaly. *)
let test_partition_heal_liveness kind () =
  let sim = Sim.create ~seed:17 () in
  let sys = S.make kind sim in
  let extensible = S.is_extensible kind in
  let during = ref false and after = ref false in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let api, _ = sys.S.new_resilient_api () in
        ok "counter setup" (Counter.setup api);
        if extensible then ok "register" (Counter.register api);
        (* A non-idempotent write that times out against an isolated
           replica correctly concludes "maybe applied" instead of
           resubmitting; liveness means a subsequent operation (now failed
           over to the majority side) succeeds.  So: retry fresh
           increments until one confirms. *)
        let increment () =
          let rec go n =
            if n = 0 then false
            else
              match
                if extensible then Counter.increment_ext api
                else Counter.increment_traditional api
              with
              | Ok _ -> true
              | Error _ ->
                  Proc.sleep sim (Sim_time.ms 200);
                  go (n - 1)
          in
          go 20
        in
        Alcotest.(check bool) "healthy increment" true (increment ());
        let tgt = sys.S.nemesis_target () in
        let ldr =
          match tgt.Nemesis.leader () with
          | Some l -> l
          | None -> Alcotest.fail "no leader elected"
        in
        let peers = List.filter (fun n -> n <> ldr) tgt.Nemesis.nodes in
        List.iter (fun n -> tgt.Nemesis.cut ldr n) peers;
        (* the session deadline (30 s) dwarfs election timeouts, so this
           either proves liveness or times the test out loudly *)
        during := increment ();
        List.iter (fun n -> tgt.Nemesis.heal ldr n) peers;
        Proc.sleep sim (Sim_time.sec 2);
        after := increment ()
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 80) sim;
  (match !failure with Some e -> raise e | None -> ());
  Alcotest.(check bool) "progress during leader partition" true !during;
  Alcotest.(check bool) "progress after heal" true !after;
  Alcotest.(check int) "no replication anomalies" 0 (sys.S.anomalies ())

let () =
  Alcotest.run "edc_nemesis"
    [
      ( "determinism",
        [
          Alcotest.test_case "identical trace on EZK" `Quick
            (test_trace_deterministic S.Ezk);
          Alcotest.test_case "identical trace on EDS" `Quick
            (test_trace_deterministic S.Eds);
          Alcotest.test_case "standard schedule coverage" `Quick
            test_standard_schedule_coverage;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "partition heal on Zab (EZK)" `Quick
            (test_partition_heal_liveness S.Ezk);
          Alcotest.test_case "partition heal on PBFT (EDS)" `Quick
            (test_partition_heal_liveness S.Eds);
        ] );
    ]
