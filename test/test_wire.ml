(* The untrusted-bytes surface: fuzz corpus over the binary frame parser
   (round-trips, truncation at every byte offset, random garbage, crafted
   depth/length bombs — the decoder must never raise), round-trips for
   every message and snapshot codec built on it, the corrupt-snapshot
   regression (truncated and bit-flipped blobs yield a clean [Error] and
   leave the replica untouched; a rejecting follower re-requests instead
   of dying), and the first wall-clock end-to-end run: a 3-replica Zab
   cluster serving the counter workload over real loopback TCP. *)

open Edc_simnet
open Edc_wire
module Zk = Edc_zookeeper
module Txn = Zk.Txn
module P = Zk.Protocol
module Zab = Edc_replication.Zab
module Zab_wire = Edc_replication.Zab_wire
module Pbft = Edc_replication.Pbft
module Pbft_wire = Edc_replication.Pbft_wire

let qc = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Frame codec: fuzz corpus                                            *)
(* ------------------------------------------------------------------ *)

let wire_arb =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(char_range '\000' '\255') (int_range 0 16)
  in
  let leaf =
    oneof
      [
        map (fun i -> Wire.Int i) int;
        (* small ints exercise the 1-byte varint paths *)
        map (fun i -> Wire.Int i) (int_range (-300) 300);
        map (fun s -> Wire.Str s) any_string;
      ]
  in
  let rec gen depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun l -> Wire.List l) (list_size (int_range 0 5) (gen (depth - 1))));
        ]
  in
  QCheck.make (gen 4)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrip" ~count:500 wire_arb
    (fun v -> Wire.decode (Wire.encode v) = Ok v)

let prop_wire_size =
  QCheck.Test.make ~name:"wire size matches encoded length" ~count:500
    wire_arb (fun v -> Wire.size v = String.length (Wire.encode v))

(* truncation at EVERY byte offset must be a clean [Error] *)
let prop_wire_truncation =
  QCheck.Test.make ~name:"wire decode of every truncation errors" ~count:200
    wire_arb (fun v ->
      let s = Wire.encode v in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match Wire.decode (String.sub s 0 k) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

let prop_wire_garbage =
  QCheck.Test.make ~name:"wire decode never raises on garbage" ~count:1000
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s -> match Wire.decode s with Ok _ | Error _ -> true)

(* flipping any single byte of a valid frame must not raise (it may still
   decode: a flip inside a [Str] payload is a different, valid frame) *)
let prop_wire_bitflip =
  QCheck.Test.make ~name:"wire decode never raises on bit flips" ~count:200
    wire_arb (fun v ->
      let s = Wire.encode v in
      let ok = ref true in
      String.iteri
        (fun i c ->
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code c lxor 0x40));
          match Wire.decode (Bytes.to_string b) with
          | Ok _ | Error _ -> ()
          | exception _ -> ok := false)
        s;
      !ok)

(* manual varint for crafting malformed frames *)
let craft_varint n =
  let buf = Buffer.create 4 in
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n;
  Buffer.contents buf

let check_rejected name s =
  match Wire.decode s with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "%s decoded to %s" name (Format.asprintf "%a" Wire.pp v)

let test_wire_crafted_bombs () =
  (* depth bomb: a list nested past [max_depth] *)
  let deep = ref (Wire.encode (Wire.Int 0)) in
  for _ = 1 to Wire.max_depth + 4 do
    deep := "\x03" ^ craft_varint (String.length !deep) ^ !deep
  done;
  check_rejected "depth bomb" !deep;
  (* length bomb: a tiny input declaring a gigantic payload must be
     rejected up front, not drive an allocation *)
  check_rejected "length bomb (str)" ("\x02" ^ craft_varint 0x40_0000_0000 ^ "ab");
  check_rejected "length bomb (list)" ("\x03" ^ craft_varint max_int);
  (* a child frame declaring more bytes than its parent holds *)
  check_rejected "child overruns parent"
    ("\x03" ^ craft_varint 5 ^ "\x02" ^ craft_varint 200 ^ "abc");
  (* non-minimal varints: same value, longer spelling — not canonical *)
  check_rejected "non-minimal length varint" ("\x02\x81\x00" ^ "a");
  check_rejected "non-minimal int payload" "\x01\x02\x80\x00";
  (* varint longer than 9 bytes *)
  check_rejected "varint too long"
    ("\x02" ^ String.make 9 '\x80' ^ "\x01");
  check_rejected "unknown tag" "\x07\x01a";
  check_rejected "trailing bytes" (Wire.encode (Wire.Int 3) ^ "x");
  check_rejected "int payload length mismatch" "\x01\x03\x02\x02\x02";
  check_rejected "empty input" ""

let test_wire_encode_rejects_overdeep () =
  (* the leaf counts as one level, so [max_depth - 1] wrappers is the
     deepest encodable tree *)
  let rec nest d v = if d = 0 then v else nest (d - 1) (Wire.List [ v ]) in
  (match Wire.encode (nest (Wire.max_depth - 1) (Wire.Int 1)) with
  | _ -> ()
  | exception Invalid_argument _ -> Alcotest.fail "max_depth itself must encode");
  match Wire.encode (nest Wire.max_depth (Wire.Int 1)) with
  | _ -> Alcotest.fail "over-deep tree must not encode"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Message codecs: round-trip every variant                            *)
(* ------------------------------------------------------------------ *)

let zxid : Zab.zxid = { epoch = 3; counter = 41 }

let zab_samples : string Zab.msg list =
  [
    Ping { epoch = 1; committed = 7; sent = Sim_time.ms 350 };
    Ping { epoch = 2; committed = 0; sent = Sim_time.zero };
    Propose
      {
        epoch = 2;
        index = 5;
        prev_zxid = zxid;
        entries =
          [
            { zxid; payload = App "a" };
            { zxid = { epoch = 3; counter = 42 }; payload = App "" };
          ];
      };
    (* config-change entries travel inside the ordinary Propose frames *)
    Propose
      {
        epoch = 2;
        index = 7;
        prev_zxid = zxid;
        entries =
          [
            {
              zxid = { epoch = 3; counter = 43 };
              payload = Config (Cc_joint { c_old = [ 0; 1; 2 ]; c_new = [ 0; 1; 2; 3 ] });
            };
            {
              zxid = { epoch = 3; counter = 44 };
              payload = Config (Cc_final { members = [ 0; 1; 2; 3 ] });
            };
          ];
      };
    Ack { epoch = 2; upto = 6 };
    Commit { epoch = 2; index = 6 };
    Request_vote { epoch = 4; candidate = 1; last_zxid = zxid };
    Vote { epoch = 4 };
    Sync_request { epoch = 4; have = 3 };
    Sync
      { epoch = 4; from = 4; entries = [ { zxid; payload = App "p" } ]; committed = 5 };
    Sync
      {
        epoch = 4;
        from = 4;
        entries =
          [ { zxid; payload = Config (Cc_joint { c_old = [ 0 ]; c_new = [] }) } ];
        committed = 5;
      };
    Snapshot_begin
      {
        epoch = 4;
        base = 100;
        total = 1536;
        chunk_size = 512;
        digest = "d";
        committed = 99;
        config = Stable [ 0; 1; 2 ];
      };
    Snapshot_begin
      {
        epoch = 5;
        base = 100;
        total = 1536;
        chunk_size = 512;
        digest = "d";
        committed = 99;
        config = Joint { c_old = [ 0; 1; 2 ]; c_new = [ 1; 2; 3 ] };
      };
    Snapshot_chunk { epoch = 4; base = 100; seq = 1; data = String.make 64 '\x00' };
    Snapshot_ack { epoch = 4; base = 100; received = 2 };
    (* learner handshake + fencing (tags 11/12) *)
    Join_request { epoch = 0; id = 4 };
    Join_request { epoch = 6; id = 3 };
    Fence { epoch = 6 };
    (* lease grants + observer handshake (tags 13/14) *)
    Lease_grant { epoch = 6; sent = Sim_time.ms 1234 };
    Lease_grant { epoch = 1; sent = Sim_time.zero };
    (* a skewed clock can legitimately read negative early in a run *)
    Lease_grant { epoch = 2; sent = Sim_time.ns (-5_000_000) };
    Observer_request { epoch = 0; id = 5 };
    Observer_request { epoch = 9; id = 3 };
  ]

let test_zab_msg_roundtrip () =
  List.iter
    (fun m ->
      let w = Zab_wire.to_wire ~payload:(fun s -> Wire.Str s) m in
      match Result.bind (Wire.decode (Wire.encode w)) (Zab_wire.of_wire ~payload:Wire.to_str) with
      | Ok m' -> Alcotest.(check bool) "zab msg" true (m = m')
      | Error e -> Alcotest.failf "zab msg decode: %s" e)
    zab_samples

(* fuzz the read-path frames (tags 0/13/14): round-trip for arbitrary
   field values, truncation at every byte offset is a clean [Error], and
   garbage/mutated frames never raise out of the zab decoder *)
let lease_frame_arb =
  let open QCheck.Gen in
  let gen =
    let* tag = int_range 0 2 in
    let* epoch = int_range 0 1_000_000 in
    let* a = int in
    match tag with
    | 0 ->
        let* committed = int_range 0 1_000_000 in
        return (Zab.Ping { epoch; committed; sent = Sim_time.ns a })
    | 1 -> return (Zab.Lease_grant { epoch; sent = Sim_time.ns a })
    | _ -> return (Zab.Observer_request { epoch; id = a land 0xff })
  in
  QCheck.make gen

let encode_zab (m : string Zab.msg) =
  Wire.encode (Zab_wire.to_wire ~payload:(fun s -> Wire.Str s) m)

let decode_zab s =
  Result.bind (Wire.decode s) (Zab_wire.of_wire ~payload:Wire.to_str)

let prop_lease_frames_roundtrip =
  QCheck.Test.make ~name:"lease/observer frames roundtrip" ~count:500
    lease_frame_arb (fun m -> decode_zab (encode_zab m) = Ok m)

let prop_lease_frames_truncation =
  QCheck.Test.make ~name:"lease/observer frame truncations all error"
    ~count:200 lease_frame_arb (fun m ->
      let s = encode_zab m in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match decode_zab (String.sub s 0 k) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

let prop_zab_decoder_garbage =
  QCheck.Test.make ~name:"zab decoder never raises on garbage frames"
    ~count:500 wire_arb (fun w ->
      match Zab_wire.of_wire ~payload:Wire.to_str w with
      | Ok _ | Error _ -> true)

let test_lease_frames_malformed () =
  (* wrong arity / wrong field kinds on the new tags must come back as the
     standard decode error, same convention as the PR 6/7 frames *)
  List.iter
    (fun (name, w) ->
      match Zab_wire.of_wire ~payload:Wire.to_str w with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s decoded" name)
    [
      (* three-field Ping: the pre-lease shape no longer parses *)
      ("ping missing sent", Wire.List [ Wire.Int 0; Wire.Int 1; Wire.Int 7 ]);
      ("lease grant missing sent", Wire.List [ Wire.Int 13; Wire.Int 1 ]);
      ( "lease grant trailing field",
        Wire.List [ Wire.Int 13; Wire.Int 1; Wire.Int 2; Wire.Int 3 ] );
      ("lease grant str sent", Wire.List [ Wire.Int 13; Wire.Int 1; Wire.Str "t" ]);
      ("observer request bare", Wire.List [ Wire.Int 14; Wire.Int 1 ]);
      ( "observer request nested id",
        Wire.List [ Wire.Int 14; Wire.Int 1; Wire.List [] ] );
      ("unknown tag 15", Wire.List [ Wire.Int 15; Wire.Int 1 ]);
    ]

let pbft_samples : string Pbft.msg list =
  let rid : Pbft.request_id = { client = 9; rseq = 2 } in
  [
    Pre_prepare { view = 0; seq = 3; batch = [ (rid, "op") ]; ts = Sim_time.ms 5 };
    Prepare { view = 0; seq = 3 };
    Commit { view = 0; seq = 3 };
    View_change { new_view = 1; delivered = [ (rid, "a") ]; pending = [] };
    New_view { view = 1 };
    Recover_request;
    Recover_reply { view = 1 };
  ]

let test_pbft_msg_roundtrip () =
  List.iter
    (fun m ->
      let w = Pbft_wire.to_wire ~payload:(fun s -> Wire.Str s) m in
      match Result.bind (Wire.decode (Wire.encode w)) (Pbft_wire.of_wire ~payload:Wire.to_str) with
      | Ok m' -> Alcotest.(check bool) "pbft msg" true (m = m')
      | Error e -> Alcotest.failf "pbft msg decode: %s" e)
    pbft_samples

let stat : Edc_zookeeper.Znode.stat =
  { version = 2; czxid = 17; ephemeral_owner = Some 5; num_children = 1; data_length = 3 }

let op_samples : P.op list =
  [
    Create { path = "/a"; data = "d"; ephemeral = true; sequential = false };
    Delete { path = "/a"; version = Some 2 };
    Delete { path = "/a"; version = None };
    Set_data { path = "/a"; data = ""; expected_version = None };
    Get_data { path = "/a"; watch = true };
    Get_children { path = "/"; watch = false };
    Exists { path = "/x"; watch = true };
    Block { path = "/b" };
    Sync;
  ]

let result_samples : P.result list =
  [
    Created "/a0000000001";
    Deleted;
    Set { version = 4 };
    Data ("bytes\x00\xff", stat);
    Children [ "a"; "b" ];
    Stat_of (Some stat);
    Stat_of None;
    Unblocked "v";
    Ext "serialized";
    Synced;
    Error Zk.Zerror.No_node;
    Error (Zk.Zerror.Extension_error "boom");
  ]

let txn_samples : Txn.t list =
  [
    {
      origin = Some 1;
      session = 42;
      xid = 7;
      ops =
        [
          Tcreate { path = "/a"; data = "d"; ephemeral_owner = Some 42 };
          Tdelete { path = "/b" };
          Tset { path = "/a"; data = "x"; version = 3 };
          Tsession_open { session = 42; client_addr = 1000; owner_replica = 1 };
          Tsession_close { session = 41 };
          Tsession_move { session = 42; owner_replica = 2 };
          Tblock { session = 42; origin = 1; xid = 7; path = "/gate" };
          Tnotify { session = 42; path = "/gate"; kind = P.Node_created };
          Terror;
        ];
      result = P.Created "/a";
      quiet = false;
    };
    Txn.internal ~quiet:true [ Tdelete { path = "/tmp" } ];
  ]

let server_wire_samples : Zk.Server.wire list =
  [
    Client_msg Connect;
    Client_msg (Reconnect { session = 9 });
    Client_msg (Request { session = 9; xid = 1; op = List.hd op_samples });
    Client_msg (Ping { session = 9 });
    Client_msg (Close_session { session = 9 });
    Server_msg (Connect_ok { session = 9 });
    Server_msg (Reply { xid = 1; result = P.Deleted });
    Server_msg (Watch_event { path = "/w"; kind = P.Children_changed });
    Server_msg Expired;
    Zab_msg (Ping { epoch = 1; committed = 0; sent = Sim_time.ms 50 });
    Forward { origin = 2; session = 9; xid = 3; op = P.Sync };
    Forward_connect { origin = 2; client_addr = 1001 };
    Forward_reconnect { origin = 0; session = 9 };
    Forward_close { session = 9 };
    Touch { session = 9 };
  ]

let test_protocol_roundtrip () =
  let module WF = Zk.Wire_format in
  List.iter
    (fun op ->
      match Result.bind (Wire.decode (Wire.encode (WF.op_to_wire op))) WF.op_of_wire with
      | Ok op' -> Alcotest.(check bool) "op" true (op = op')
      | Error e -> Alcotest.failf "op decode: %s" e)
    op_samples;
  List.iter
    (fun r ->
      match
        Result.bind (Wire.decode (Wire.encode (WF.result_to_wire r))) WF.result_of_wire
      with
      | Ok r' -> Alcotest.(check bool) "result" true (r = r')
      | Error e -> Alcotest.failf "result decode: %s" e)
    result_samples;
  List.iter
    (fun t ->
      match Result.bind (Wire.decode (Wire.encode (WF.txn_to_wire t))) WF.txn_of_wire with
      | Ok t' -> Alcotest.(check bool) "txn" true (t = t')
      | Error e -> Alcotest.failf "txn decode: %s" e)
    txn_samples

let test_server_wire_roundtrip () =
  List.iter
    (fun m ->
      match Zk.Server_wire.decode (Zk.Server_wire.encode m) with
      | Ok m' -> Alcotest.(check bool) "server wire" true (m = m')
      | Error e -> Alcotest.failf "server wire decode: %s" e)
    server_wire_samples;
  (* truncations of a full server message never raise and never pass *)
  let s = Zk.Server_wire.encode (List.nth server_wire_samples 2) in
  for k = 0 to String.length s - 1 do
    match Zk.Server_wire.decode (String.sub s 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d decoded" k
  done

(* ------------------------------------------------------------------ *)
(* Streaming codec (§6g): the zero-tree writer must be byte-identical  *)
(* to the tree encoder, and the slice reader must accept exactly what  *)
(* the tree decoder accepts — on the fuzz corpus AND on every message  *)
(* shape above.  Byte-identity is what lets the hot paths skip the     *)
(* tree without weakening the canonical-form guarantee.                *)
(* ------------------------------------------------------------------ *)

module W = Wire.Writer
module R = Wire.Reader

let stream_of_tree v = W.with_writer (fun w -> W.tree w v)
let tree_of_stream s = R.run s R.tree

let prop_writer_byte_identity =
  QCheck.Test.make ~name:"streaming writer byte-identical to tree encoder"
    ~count:500 wire_arb (fun v ->
      String.equal (stream_of_tree v) (Wire.encode v))

(* the two decoders agree: same accept/reject verdict, same value on
   accept (error text may differ — messages are not part of the spec) *)
let decoders_agree s =
  match (Wire.decode s, tree_of_stream s) with
  | Ok a, Ok b -> a = b
  | Error _, Error _ -> true
  | Ok _, Error _ | Error _, Ok _ -> false

let prop_reader_differential_valid =
  QCheck.Test.make ~name:"streaming reader decodes what the tree decoder does"
    ~count:500 wire_arb (fun v -> tree_of_stream (Wire.encode v) = Ok v)

let prop_reader_differential_truncation =
  QCheck.Test.make ~name:"streaming reader rejects every truncation"
    ~count:200 wire_arb (fun v ->
      let s = Wire.encode v in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        let s' = String.sub s 0 k in
        (match tree_of_stream s' with Error _ -> () | Ok _ -> ok := false);
        if not (decoders_agree s') then ok := false
      done;
      !ok)

let prop_reader_differential_garbage =
  QCheck.Test.make ~name:"streaming reader ≡ tree decoder on garbage"
    ~count:1000
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    decoders_agree

let prop_reader_differential_bitflip =
  QCheck.Test.make ~name:"streaming reader ≡ tree decoder on bit flips"
    ~count:200 wire_arb (fun v ->
      let s = Wire.encode v in
      let ok = ref true in
      String.iteri
        (fun i c ->
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code c lxor 0x40));
          if not (decoders_agree (Bytes.to_string b)) then ok := false)
        s;
      !ok)

(* reader errors name the byte offset where decoding failed *)
let has_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_reader_errors_carry_offsets () =
  let check name s =
    match tree_of_stream s with
    | Ok _ -> Alcotest.failf "%s decoded" name
    | Error e ->
        if not (has_substring ~sub:"byte" e) then
          Alcotest.failf "%s: error lacks a byte offset: %S" name e
  in
  check "empty input" "";
  check "truncated int" "\x01";
  check "unknown tag" "\x07\x01a";
  check "truncated str payload" ("\x02" ^ craft_varint 5 ^ "ab");
  check "non-minimal varint" ("\x02\x81\x00" ^ "a");
  check "trailing bytes" (Wire.encode (Wire.Int 1) ^ "x")

(* the streaming writer enforces the same depth cap as the tree encoder *)
let test_writer_rejects_overdeep () =
  let rec nest d v = if d = 0 then v else nest (d - 1) (Wire.List [ v ]) in
  (match stream_of_tree (nest (Wire.max_depth - 1) (Wire.Int 1)) with
  | _ -> ()
  | exception Invalid_argument _ ->
      Alcotest.fail "max_depth itself must stream-encode");
  match stream_of_tree (nest Wire.max_depth (Wire.Int 1)) with
  | _ -> Alcotest.fail "over-deep tree must not stream-encode"
  | exception Invalid_argument _ -> ()

(* every message shape in this file: streaming writer output is
   byte-identical to the tree encoder, and the streaming reader gets the
   value back *)
let check_identity name tree_bytes stream_bytes =
  if not (String.equal tree_bytes stream_bytes) then
    Alcotest.failf "%s: streaming encode differs from tree encode" name

let test_stream_messages_byte_identical () =
  let module WF = Zk.Wire_format in
  List.iter
    (fun m ->
      let s = W.with_writer (fun w -> Zab_wire.write ~payload:W.str w m) in
      check_identity "zab" (encode_zab m) s;
      match R.run s (Zab_wire.read ~payload:R.str) with
      | Ok m' when m = m' -> ()
      | Ok _ -> Alcotest.fail "zab stream read mismatch"
      | Error e -> Alcotest.failf "zab stream read: %s" e)
    zab_samples;
  List.iter
    (fun m ->
      let s = W.with_writer (fun w -> Pbft_wire.write ~payload:W.str w m) in
      check_identity "pbft"
        (Wire.encode (Pbft_wire.to_wire ~payload:(fun p -> Wire.Str p) m))
        s;
      match R.run s (Pbft_wire.read ~payload:R.str) with
      | Ok m' when m = m' -> ()
      | Ok _ -> Alcotest.fail "pbft stream read mismatch"
      | Error e -> Alcotest.failf "pbft stream read: %s" e)
    pbft_samples;
  List.iter
    (fun op ->
      let s = W.with_writer (fun w -> WF.write_op w op) in
      check_identity "op" (Wire.encode (WF.op_to_wire op)) s;
      match R.run s WF.read_op with
      | Ok op' when op = op' -> ()
      | _ -> Alcotest.fail "op stream read mismatch")
    op_samples;
  List.iter
    (fun r_ ->
      let s = W.with_writer (fun w -> WF.write_result w r_) in
      check_identity "result" (Wire.encode (WF.result_to_wire r_)) s;
      match R.run s WF.read_result with
      | Ok r' when r_ = r' -> ()
      | _ -> Alcotest.fail "result stream read mismatch")
    result_samples;
  List.iter
    (fun t ->
      let s = W.with_writer (fun w -> WF.write_txn w t) in
      check_identity "txn" (Wire.encode (WF.txn_to_wire t)) s;
      match R.run s WF.read_txn with
      | Ok t' when t = t' -> ()
      | _ -> Alcotest.fail "txn stream read mismatch")
    txn_samples;
  List.iter
    (fun m ->
      check_identity "server wire" (Zk.Server_wire.encode_tree m)
        (Zk.Server_wire.encode m))
    server_wire_samples

(* the server-wire streaming decoder (the TCP hot path) agrees with the
   tree decoder on the corpus, every truncation, and every bit flip *)
let test_server_wire_decode_differential () =
  let agree name s =
    match (Zk.Server_wire.decode s, Zk.Server_wire.decode_tree s) with
    | Ok a, Ok b when a = b -> ()
    | Error _, Error _ -> ()
    | Ok _, Ok _ -> Alcotest.failf "%s: decoders return different values" name
    | Ok _, Error _ -> Alcotest.failf "%s: streaming accepts, tree rejects" name
    | Error _, Ok _ -> Alcotest.failf "%s: tree accepts, streaming rejects" name
  in
  List.iter
    (fun m ->
      let s = Zk.Server_wire.encode m in
      agree "intact" s;
      for k = 0 to String.length s - 1 do
        agree (Printf.sprintf "truncation %d" k) (String.sub s 0 k)
      done;
      String.iteri
        (fun i c ->
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code c lxor 0x11));
          agree (Printf.sprintf "bitflip %d" i) (Bytes.to_string b))
        s)
    server_wire_samples

(* decode_sub reads a frame out of the middle of a reassembly buffer
   without copying; bytes outside [pos, pos+len) are invisible *)
let test_decode_sub_slice () =
  let m = List.nth server_wire_samples 2 in
  let s = Zk.Server_wire.encode m in
  let padded = "\xde\xad" ^ s ^ "\xbe" in
  (match Zk.Server_wire.decode_sub padded ~pos:2 ~len:(String.length s) with
  | Ok m' -> Alcotest.(check bool) "slice decode" true (m = m')
  | Error e -> Alcotest.failf "slice decode: %s" e);
  (* a byte of trailing garbage inside the slice is rejected, exactly
     like decoding a padded string would be *)
  match Zk.Server_wire.decode_sub padded ~pos:2 ~len:(String.length s + 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "slice with trailing byte decoded"

(* Outbuf owns the partial-write problem: a kernel that takes a few
   bytes at a time (or none — EAGAIN) must see every byte exactly once,
   in order, with the unwritten suffix retained across flushes *)
let test_outbuf_short_writes () =
  let ob = Outbuf.create ~capacity:8 () in
  let u32 v = String.init 4 (fun i -> Char.chr ((v lsr (24 - (8 * i))) land 0xff)) in
  let payload = String.init 64 (fun i -> Char.chr (i * 7 land 0xff)) in
  Outbuf.add_u32 ob 0xAABBCCDD;
  Outbuf.add_substring ob payload 0 (String.length payload);
  let expect = u32 0xAABBCCDD ^ payload in
  Alcotest.(check int) "pending counts queued bytes" (String.length expect)
    (Outbuf.pending ob);
  let out = Buffer.create 128 in
  (* first flush: the fake kernel takes 3 bytes then stalls (EAGAIN) *)
  let burst = ref true in
  let take3_then_stall buf off len =
    if not !burst then 0
    else begin
      burst := false;
      let n = min 3 len in
      Buffer.add_subbytes out buf off n;
      n
    end
  in
  let wrote = Outbuf.flush ob ~write:take3_then_stall in
  Alcotest.(check int) "short write took 3 bytes" 3 wrote;
  Alcotest.(check int) "suffix retained for the next flush"
    (String.length expect - 3) (Outbuf.pending ob);
  (* appending while a suffix is parked must not reorder anything *)
  Outbuf.add_substring ob "TAIL" 0 4;
  (* drain through a tiny window: ≤3 bytes per call, stalling every
     third call — several flush rounds needed *)
  let calls = ref 0 in
  let tiny buf off len =
    incr calls;
    if !calls mod 3 = 0 then 0
    else begin
      let n = min 3 len in
      Buffer.add_subbytes out buf off n;
      n
    end
  in
  let guard = ref 0 in
  while Outbuf.pending ob > 0 && !guard < 1000 do
    incr guard;
    ignore (Outbuf.flush ob ~write:tiny : int)
  done;
  Alcotest.(check int) "queue fully drained" 0 (Outbuf.pending ob);
  Alcotest.(check string) "byte stream preserved, in order" (expect ^ "TAIL")
    (Buffer.contents out)

(* ------------------------------------------------------------------ *)
(* Snapshot blobs: corrupt bytes are rejected, state untouched         *)
(* ------------------------------------------------------------------ *)

let run_until sim ~step ~limit pred =
  let deadline = Sim_time.add (Sim.now sim) limit in
  let rec go () =
    if pred () then true
    else if Sim_time.compare (Sim.now sim) deadline >= 0 then false
    else begin
      Sim.run ~until:(Sim_time.add (Sim.now sim) step) sim;
      go ()
    end
  in
  go ()

let test_snapshot_corrupt_blob_rejected () =
  let sim = Sim.create ~seed:11 () in
  let cluster = Zk.Cluster.create sim in
  Proc.spawn sim (fun () ->
      let c = Zk.Cluster.connected_client cluster () in
      ignore (Zk.Client.create_node c "/a" "alpha");
      ignore (Zk.Client.create_node c "/a/b" "beta");
      for i = 1 to 5 do
        ignore (Zk.Client.set_data c "/a" (string_of_int i))
      done);
  Sim.run ~until:(Sim_time.sec 2) sim;
  let s0 = (Zk.Cluster.servers cluster).(0) in
  let blob = Zk.Server.snapshot_bytes s0 in
  Alcotest.(check bool) "capture is deterministic" true
    (String.equal blob (Zk.Server.snapshot_bytes s0));
  (* the streaming snapshot writer (§6g) and the tree-building oracle
     must produce the same bytes — snapshot digests stay comparable
     across the two paths *)
  Alcotest.(check bool) "streaming snapshot writer byte-identical to tree oracle"
    true
    (String.equal blob (Zk.Server.snapshot_bytes_tree s0));
  (* victim replica in a second deployment; corrupt installs must leave
     its state byte-identical *)
  let vsim = Sim.create ~seed:12 () in
  let victim = (Zk.Cluster.servers (Zk.Cluster.create vsim)).(0) in
  let baseline () = Zk.Server.snapshot_bytes victim in
  let before = baseline () in
  (* the intact blob is installable — the corruptions below fail for
     their corruption, not for some unrelated reason *)
  (match Zk.Server.install_snapshot victim blob with
  | Ok () -> ()
  | Error e -> Alcotest.failf "intact blob rejected: %s" e);
  (match Zk.Server.install_snapshot victim before with
  | Ok () -> ()
  | Error e -> Alcotest.failf "restore rejected: %s" e);
  (* every truncation: clean Error, no state change *)
  for k = 0 to String.length blob - 1 do
    match Zk.Server.install_snapshot victim (String.sub blob 0 k) with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "truncation at %d installed" k
  done;
  Alcotest.(check bool) "state untouched after truncations" true
    (String.equal before (baseline ()));
  (* every single-byte corruption: never raises; on Error the state is
     untouched (a flip inside a data payload can still be a valid blob) *)
  let rejected = ref 0 in
  String.iteri
    (fun i c ->
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code c lxor 0xff));
      match Zk.Server.install_snapshot victim (Bytes.to_string b) with
      | Ok () ->
          (* structurally valid mutant: restore the baseline *)
          ignore (Zk.Server.install_snapshot victim before)
      | Error _ ->
          incr rejected;
          if not (String.equal before (baseline ())) then
            Alcotest.failf "rejected install at byte %d mutated state" i)
    blob;
  Alcotest.(check bool) "some corruptions structurally rejected" true (!rejected > 0)

(* a follower whose install hook rejects the blob re-requests the
   transfer instead of dying; once the hook accepts, it catches up *)

let hist_encode (hist : (Zab.zxid * string) list) =
  Wire.encode
    (Wire.List
       (List.map
          (fun ((z : Zab.zxid), s) ->
            Wire.List [ Wire.Int z.epoch; Wire.Int z.counter; Wire.Str s ])
          hist))

let hist_decode blob =
  let ( let* ) = Result.bind in
  let* w = Wire.decode blob in
  Wire.map_list
    (fun item ->
      let* l = Wire.to_list item in
      match l with
      | [ e; c; s ] ->
          let* epoch = Wire.to_int e in
          let* counter = Wire.to_int c in
          let* s = Wire.to_str s in
          Ok (({ Zab.epoch; counter } : Zab.zxid), s)
      | _ -> Error "history entry shape")
    w

let test_follower_rerequests_on_reject () =
  let n = 3 in
  let sim = Sim.create ~seed:21 () in
  let net = Net.create sim in
  let peers = List.init n Fun.id in
  let delivered = Array.make n [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst ~size:(Zab.msg_size ~payload_size:String.length msg) msg
  in
  let replicas =
    Array.init n (fun i ->
        Zab.create ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p -> delivered.(i) <- (zxid, p) :: delivered.(i))
          ~initial_leader:0 ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      Zab.start r)
    replicas;
  let run_for d = Sim.run ~until:(Sim_time.add (Sim.now sim) d) sim in
  run_for (Sim_time.ms 10);
  Zab.crash replicas.(2);
  Net.set_node_down net 2;
  for k = 1 to 200 do
    ignore (Zab.propose replicas.(0) (Printf.sprintf "%06d" k) : Zab.zxid option)
  done;
  run_for (Sim_time.sec 1);
  List.iter
    (fun i ->
      Zab.compact replicas.(i) ~take:(fun () ->
          let hist = delivered.(i) in
          fun () -> hist_encode hist))
    [ 0; 1 ];
  (* reject the first two completed transfers, accept from then on *)
  let rejections = ref 2 in
  Zab.set_install_snapshot replicas.(2) (fun blob ->
      if !rejections > 0 then begin
        decr rejections;
        Error "injected reject"
      end
      else Result.map (fun h -> delivered.(2) <- h) (hist_decode blob));
  Net.set_node_up net 2;
  Zab.restart replicas.(2);
  let caught_up () = List.length delivered.(2) >= 200 in
  let ok = run_until sim ~step:(Sim_time.ms 10) ~limit:(Sim_time.sec 30) caught_up in
  Alcotest.(check bool) "follower caught up after rejects" true ok;
  let stats = Zab.xfer_stats replicas.(2) in
  Alcotest.(check int) "both rejects counted" 2 stats.Zab.install_rejects;
  Alcotest.(check bool) "follower state equals the leader's" true
    (delivered.(2) = delivered.(0))

(* ------------------------------------------------------------------ *)
(* End to end over real sockets                                        *)
(* ------------------------------------------------------------------ *)

let test_tcp_counter_workload () =
  let sim = Sim.create ~seed:31 () in
  (* pid-derived port block so parallel test runners don't collide *)
  let base_port = 20000 + (Unix.getpid () mod 20000) in
  let hub =
    Tcp_transport.create ~sim ~base_port ~encode:Zk.Server_wire.encode
      ~decode:Zk.Server_wire.decode_sub ()
  in
  let tr = Tcp_transport.transport hub in
  let replica_ids = [ 0; 1; 2 ] in
  let servers =
    List.map
      (fun id ->
        Zk.Server.create ~sim ~net:tr ~id ~replica_ids ~initial_leader:0 ())
      replica_ids
  in
  List.iter Zk.Server.start servers;
  let increments = 10 in
  let client = Zk.Client.create ~sim ~net:tr ~addr:100 ~replica:1 () in
  let outcome =
    Proc.async sim (fun () ->
        Zk.Client.connect client;
        match Zk.Client.create_node client "/ctr" "0" with
        | Error e -> Error (Format.asprintf "create: %a" Zk.Zerror.pp e)
        | Ok _ ->
            let rec bump i =
              if i > increments then Ok ()
              else
                match Zk.Client.set_data client "/ctr" (string_of_int i) with
                | Ok _ -> bump (i + 1)
                | Error e -> Error (Format.asprintf "set %d: %a" i Zk.Zerror.pp e)
            in
            (match bump 1 with
            | Error _ as e -> e
            | Ok () -> (
                match Zk.Client.get_data client "/ctr" with
                | Ok (v, _) -> Ok v
                | Error e -> Error (Format.asprintf "get: %a" Zk.Zerror.pp e))))
  in
  let deadline = Unix.gettimeofday () +. 60. in
  while (not (Proc.is_fulfilled outcome)) && Unix.gettimeofday () < deadline do
    Tcp_transport.drive hub ~wall:0.05
  done;
  Tcp_transport.shutdown hub;
  (match Proc.value_opt outcome with
  | None ->
      Alcotest.failf "workload did not finish (frames=%d decode_errors=%d)"
        (Tcp_transport.frames_received hub)
        (Tcp_transport.decode_errors hub)
  | Some (Error e) -> Alcotest.failf "workload failed: %s" e
  | Some (Ok v) ->
      Alcotest.(check string) "counter value read back over TCP"
        (string_of_int increments) v);
  Alcotest.(check bool) "traffic actually crossed the sockets" true
    (Tcp_transport.frames_received hub > 0 && Tcp_transport.bytes_sent hub > 0);
  Alcotest.(check int) "no undecodable frames" 0 (Tcp_transport.decode_errors hub)

(* a hub whose peer speaks garbage: decoder errors are counted and
   dropped, the process does not die *)
let test_tcp_garbage_is_dropped () =
  let sim = Sim.create ~seed:32 () in
  let base_port = 40000 + (Unix.getpid () mod 9000) in
  let hub =
    Tcp_transport.create ~sim ~base_port ~encode:Zk.Server_wire.encode
      ~decode:Zk.Server_wire.decode_sub ()
  in
  let tr = Tcp_transport.transport hub in
  let received = ref 0 in
  Transport.register tr 0 (fun ~src:_ ~size:_ _ -> incr received);
  Tcp_transport.poll hub ~timeout:0.01;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port));
  let put_u32 b off v =
    Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (v land 0xff))
  in
  (* a well-framed message whose body is not a decodable Wire frame *)
  let body = "this is not a frame" in
  let msg = Bytes.create (8 + String.length body) in
  put_u32 msg 0 (4 + String.length body);
  put_u32 msg 4 7 (* claimed source address *);
  Bytes.blit_string body 0 msg 8 (String.length body);
  ignore (Unix.write sock msg 0 (Bytes.length msg));
  let deadline = Unix.gettimeofday () +. 5. in
  while Tcp_transport.decode_errors hub = 0 && Unix.gettimeofday () < deadline do
    Tcp_transport.poll hub ~timeout:0.05
  done;
  Unix.close sock;
  Tcp_transport.shutdown hub;
  Alcotest.(check int) "garbage counted as decode error" 1
    (Tcp_transport.decode_errors hub);
  Alcotest.(check int) "garbage not dispatched" 0 !received

(* ------------------------------------------------------------------ *)
(* 2PC frames and shard-map payloads (§6j)                             *)
(* ------------------------------------------------------------------ *)

module Two_pc = Edc_replication.Two_pc
module Shard_map = Edc_sharding.Shard_map

let twopc_wop_gen =
  let open QCheck.Gen in
  let path =
    map
      (fun comps -> "/" ^ String.concat "/" comps)
      (list_size (int_range 1 3)
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))
  in
  let data = string_size ~gen:(char_range '\000' '\255') (int_range 0 24) in
  oneof
    [
      map2 (fun p d -> Two_pc.Wcreate { path = p; data = d }) path data;
      map2 (fun p d -> Two_pc.Wset { path = p; data = d }) path data;
      map (fun p -> Two_pc.Wdelete { path = p }) path;
    ]

(* the wop streaming writer feeds the snapshot blob's prepared-txn
   section: byte-identity with the tree encoder, and the streaming
   reader inverts it *)
let prop_twopc_wop_stream_identity =
  QCheck.Test.make ~name:"2pc wop streaming writer byte-identical, reads back"
    ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Two_pc.pp_wop) twopc_wop_gen)
    (fun op ->
      let stream = Wire.Writer.with_writer (fun w -> Two_pc.write_wop w op) in
      String.equal stream (Wire.encode (Two_pc.wop_to_wire op))
      && Wire.Reader.run stream Two_pc.read_wop = Ok op)

let twopc_frame_arb =
  let open QCheck.Gen in
  let txid =
    map3
      (fun s e c -> Printf.sprintf "s%d.e%d.%d" s e c)
      (int_range 0 15) (int_range 0 9) (int_range 0 999)
  in
  let wop = twopc_wop_gen in
  let frame =
    oneof
      [
        (let* t = txid in
         let* coord = int_range 0 15 in
         let* participants = list_size (int_range 1 4) (int_range 0 15) in
         let* ops = list_size (int_range 0 5) wop in
         return (Two_pc.Prepare { txid = t; coord; participants; ops }));
        map3
          (fun t shard ok -> Two_pc.Prepare_ack { txid = t; shard; ok })
          txid (int_range 0 15) bool;
        map (fun t -> Two_pc.Commit { txid = t }) txid;
        map (fun t -> Two_pc.Abort { txid = t }) txid;
        map2
          (fun t s -> Two_pc.Status { txid = t; from_shard = s })
          txid (int_range 0 15);
      ]
  in
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Two_pc.pp_frame f)
    frame

let twopc_encode f = Wire.encode (Two_pc.frame_to_wire f)

let twopc_decode s =
  match Wire.decode s with
  | Error _ as e -> e
  | Ok w -> Two_pc.frame_of_wire w

let prop_twopc_roundtrip =
  QCheck.Test.make ~name:"2pc frames roundtrip" ~count:500 twopc_frame_arb
    (fun f -> twopc_decode (twopc_encode f) = Ok f)

let prop_twopc_size =
  QCheck.Test.make ~name:"2pc frame_size bounds payload" ~count:500
    twopc_frame_arb (fun f -> Two_pc.frame_size f > 0)

(* truncation at EVERY byte offset must be a clean [Error] *)
let prop_twopc_truncation =
  QCheck.Test.make ~name:"2pc frame truncations all rejected" ~count:200
    twopc_frame_arb (fun f ->
      let s = twopc_encode f in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match twopc_decode (String.sub s 0 k) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

let prop_twopc_garbage =
  QCheck.Test.make ~name:"2pc decoder total on garbage" ~count:1000
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s -> match twopc_decode s with Ok _ | Error _ -> true)

(* random well-formed wire trees that are NOT 2pc frames must be refused
   without raising *)
let prop_twopc_wrong_shape =
  QCheck.Test.make ~name:"2pc decoder refuses foreign wire trees" ~count:500
    wire_arb (fun w ->
      match Two_pc.frame_of_wire w with Ok _ | Error _ -> true)

let test_twopc_crafted_malformed () =
  let reject name s =
    match twopc_decode s with
    | Error _ -> ()
    | Ok f ->
        Alcotest.failf "%s decoded to %s" name
          (Format.asprintf "%a" Two_pc.pp_frame f)
  in
  (* non-minimal varint inside an otherwise valid frame: re-spell the
     leading length byte of the encoded frame as a 2-byte varint *)
  let s = twopc_encode (Two_pc.Commit { txid = "s0.e1.2" }) in
  (match Wire.decode s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid commit frame rejected: %s" e);
  let n = Char.code s.[1] in
  if n < 0x80 then
    reject "non-minimal frame length varint"
      (String.make 1 s.[0]
      ^ String.make 1 (Char.chr (0x80 lor n))
      ^ "\x00"
      ^ String.sub s 2 (String.length s - 2));
  (* truncated mid-frame and pure garbage *)
  reject "truncated commit" (String.sub s 0 (String.length s - 1));
  reject "garbage" "\xde\xad\xbe\xef";
  (* structurally valid wire, wrong arity / tag *)
  reject "unknown frame tag"
    (Wire.encode (Wire.List [ Wire.Int 99; Wire.Str "t" ]));
  reject "prepare with non-list ops"
    (Wire.encode
       (Wire.List [ Wire.Int 0; Wire.Str "t"; Wire.Int 1; Wire.Int 2 ]))

let shard_map_arb =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 1 16 in
    let* version = int_range 0 1000 in
    let* rules =
      list_size (int_range 0 5)
        (map2
           (fun c shard -> { Shard_map.prefix = "/" ^ c; shard })
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
           (int_range 0 (n - 1)))
    in
    return (Shard_map.v ~version ~rules n)
  in
  QCheck.make ~print:(Format.asprintf "%a" Shard_map.pp) gen

let prop_shard_map_roundtrip =
  QCheck.Test.make ~name:"shard-map payload roundtrip" ~count:500
    shard_map_arb (fun m ->
      match Shard_map.decode (Shard_map.encode m) with
      | Ok m' ->
          Shard_map.version m' = Shard_map.version m
          && Shard_map.n_shards m' = Shard_map.n_shards m
          && Shard_map.rules m' = Shard_map.rules m
      | Error _ -> false)

let prop_shard_map_truncation =
  QCheck.Test.make ~name:"shard-map truncations all rejected" ~count:100
    shard_map_arb (fun m ->
      let s = Shard_map.encode m in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match Shard_map.decode (String.sub s 0 k) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

let prop_shard_map_garbage =
  QCheck.Test.make ~name:"shard-map decoder total on garbage" ~count:1000
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s -> match Shard_map.decode s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "edc_wire"
    [
      ( "codec",
        [
          qc prop_wire_roundtrip;
          qc prop_wire_size;
          qc prop_wire_truncation;
          qc prop_wire_garbage;
          qc prop_wire_bitflip;
          Alcotest.test_case "crafted bombs rejected" `Quick test_wire_crafted_bombs;
          Alcotest.test_case "encode rejects over-deep trees" `Quick
            test_wire_encode_rejects_overdeep;
        ] );
      ( "messages",
        [
          Alcotest.test_case "zab messages roundtrip" `Quick test_zab_msg_roundtrip;
          qc prop_lease_frames_roundtrip;
          qc prop_lease_frames_truncation;
          qc prop_zab_decoder_garbage;
          Alcotest.test_case "malformed lease/observer frames rejected" `Quick
            test_lease_frames_malformed;
          Alcotest.test_case "pbft messages roundtrip" `Quick test_pbft_msg_roundtrip;
          Alcotest.test_case "protocol ops/results/txns roundtrip" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "server wire roundtrip" `Quick test_server_wire_roundtrip;
        ] );
      ( "streaming",
        [
          qc prop_writer_byte_identity;
          qc prop_reader_differential_valid;
          qc prop_reader_differential_truncation;
          qc prop_reader_differential_garbage;
          qc prop_reader_differential_bitflip;
          Alcotest.test_case "reader errors carry byte offsets" `Quick
            test_reader_errors_carry_offsets;
          Alcotest.test_case "writer rejects over-deep trees" `Quick
            test_writer_rejects_overdeep;
          Alcotest.test_case "message writers byte-identical to tree encodes"
            `Quick test_stream_messages_byte_identical;
          Alcotest.test_case "server-wire streaming decoder ≡ tree decoder"
            `Quick test_server_wire_decode_differential;
          Alcotest.test_case "decode_sub reads frames out of a padded buffer"
            `Quick test_decode_sub_slice;
          Alcotest.test_case "outbuf survives short writes and stalls" `Quick
            test_outbuf_short_writes;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "corrupt blobs rejected, state untouched" `Quick
            test_snapshot_corrupt_blob_rejected;
          Alcotest.test_case "rejecting follower re-requests" `Quick
            test_follower_rerequests_on_reject;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "3-replica counter workload over TCP" `Quick
            test_tcp_counter_workload;
          Alcotest.test_case "garbage frames dropped, not fatal" `Quick
            test_tcp_garbage_is_dropped;
        ] );
      ( "2pc",
        [
          qc prop_twopc_wop_stream_identity;
          qc prop_twopc_roundtrip;
          qc prop_twopc_size;
          qc prop_twopc_truncation;
          qc prop_twopc_garbage;
          qc prop_twopc_wrong_shape;
          Alcotest.test_case "crafted malformed 2pc frames rejected" `Quick
            test_twopc_crafted_malformed;
          qc prop_shard_map_roundtrip;
          qc prop_shard_map_truncation;
          qc prop_shard_map_garbage;
        ] );
    ]
