(* Robustness and model-equivalence property tests.

   The threat model of §4 says servers must survive arbitrary client-
   supplied bytes and arbitrary (verified) extension programs.  These
   tests throw random inputs at the codec and the sandbox, check the
   leader's speculative view against a replay model, and exercise the
   replication substrate under randomized fault schedules. *)

open Edc_core
open Edc_simnet
open Edc_replication

let qc = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Codec fuzzing                                                       *)
(* ------------------------------------------------------------------ *)

let prop_sexp_parser_total =
  QCheck.Test.make ~name:"Sexp.of_string is total on random bytes" ~count:1000
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      match Sexp.of_string s with Ok _ | Error _ -> true)

let prop_codec_total_on_sexps =
  (* random well-formed sexps: the decoder must reject or accept, never
     raise *)
  let sexp_gen =
    let open QCheck.Gen in
    let atom =
      map (fun s -> Sexp.Atom s)
        (oneof
           [ string_size ~gen:printable (int_range 0 6);
             oneofl [ "ext"; "opsubs"; "evsubs"; "onop"; "onev"; "let"; "if";
                      "svc"; "call"; "bin"; "add"; "read"; "i"; "s"; "var" ] ])
    in
    let rec go d =
      if d = 0 then atom
      else
        frequency
          [ (2, atom); (1, map (fun l -> Sexp.List l) (list_size (int_range 0 5) (go (d - 1)))) ]
    in
    go 4
  in
  QCheck.Test.make ~name:"Codec.of_sexp is total on random sexps" ~count:500
    (QCheck.make sexp_gen)
    (fun sx -> match Codec.of_sexp sx with Ok _ | Error _ -> true)

let prop_value_roundtrip =
  let value_gen =
    let open QCheck.Gen in
    let scalar =
      oneof
        [ return Value.Unit;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) int;
          map (fun s -> Value.Str s) (string_size ~gen:(char_range '\000' '\255') (int_range 0 12)) ]
    in
    let rec go d =
      if d = 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun l -> Value.List l) (list_size (int_range 0 4) (go (d - 1))));
            (1,
             map
               (fun kvs -> Value.Record kvs)
               (list_size (int_range 0 3)
                  (pair (string_size ~gen:printable (int_range 1 6)) (go (d - 1))))) ]
    in
    go 3
  in
  QCheck.Test.make ~name:"Value serialize/deserialize roundtrip" ~count:500
    (QCheck.make value_gen)
    (fun v ->
      match Value.deserialize (Value.serialize v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Program generation + sandbox fuzzing                                *)
(* ------------------------------------------------------------------ *)

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.Int_lit i) (int_range (-100) 100);
        map (fun s -> Ast.Str_lit s) (oneofl [ "/a"; "/b"; "/q/x"; "hello"; "" ]);
        map (fun b -> Ast.Bool_lit b) bool;
        oneofl [ Ast.Var "x"; Ast.Var "y"; Ast.Param "oid"; Ast.Param "client";
                 Ast.Unit_lit ] ]
  in
  let rec go d =
    if d = 0 then leaf
    else
      frequency
        [ (4, leaf);
          (2,
           map3
             (fun op a b -> Ast.Binop (op, a, b))
             (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or; Concat ])
             (go (d - 1)) (go (d - 1)));
          (1, map (fun e -> Ast.Not e) (go (d - 1)));
          (1, map (fun e -> Ast.Field (e, "data")) (go (d - 1)));
          (1, map (fun e -> Ast.Call ("str_len", [ e ])) (go (d - 1)));
          (1, map2 (fun a b -> Ast.Call ("min", [ a; b ])) (go (d - 1)) (go (d - 1)));
          (1, map (fun e -> Ast.Svc (Ast.Svc_read, [ e ])) (go (d - 1)));
          (1, map (fun e -> Ast.Svc (Ast.Svc_exists, [ e ])) (go (d - 1)));
          (1, map (fun e -> Ast.Svc (Ast.Svc_sub_objects, [ e ])) (go (d - 1)));
          (1,
           map2
             (fun a b -> Ast.Svc (Ast.Svc_create, [ a; b ]))
             (go (d - 1)) (go (d - 1)));
          (1,
           map2
             (fun a b -> Ast.Svc (Ast.Svc_update, [ a; b ]))
             (go (d - 1)) (go (d - 1)));
          (1, map (fun e -> Ast.Svc (Ast.Svc_delete, [ e ])) (go (d - 1))) ]
  in
  go 3

let stmt_gen =
  let open QCheck.Gen in
  let rec go d =
    let simple =
      oneof
        [ map (fun e -> Ast.Let ("x", e)) expr_gen;
          map (fun e -> Ast.Let ("y", e)) expr_gen;
          map (fun e -> Ast.Do e) expr_gen;
          map (fun e -> Ast.Return e) expr_gen;
          return (Ast.Abort "fuzz") ]
    in
    if d = 0 then simple
    else
      frequency
        [ (4, simple);
          (1,
           map3
             (fun c a b -> Ast.If (c, a, b))
             expr_gen
             (list_size (int_range 0 3) (go (d - 1)))
             (list_size (int_range 0 3) (go (d - 1))));
          (1,
           map2
             (fun e body -> Ast.For_each ("i", e, body))
             expr_gen
             (list_size (int_range 0 3) (go (d - 1)))) ]
  in
  go 2

let program_gen =
  let open QCheck.Gen in
  map
    (fun body ->
      Program.make "fuzz"
        ~op_subs:[ { Subscription.op_kinds = [ Subscription.K_read ];
                     op_oid = Subscription.Any_oid } ]
        ~on_operation:body ())
    (list_size (int_range 1 6) stmt_gen)

(* a tiny in-memory proxy, as in test_core *)
let mock_proxy () =
  let store : (string, string * int * int) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace store "/a" ("va", 0, 1);
  Hashtbl.replace store "/q/x" ("queued", 0, 2);
  let record oid =
    match Hashtbl.find_opt store oid with
    | Some (data, version, ctime) -> Ok (Value.obj ~id:oid ~data ~version ~ctime)
    | None -> Error ("no object " ^ oid)
  in
  {
    Sandbox.p_read = record;
    p_exists = (fun oid -> Hashtbl.mem store oid);
    p_sub_objects = (fun _ -> Ok []);
    p_create =
      (fun ~sequential:_ ~oid ~data ->
        if Hashtbl.mem store oid then Error "exists"
        else begin
          Hashtbl.replace store oid (data, 0, Hashtbl.length store);
          Ok oid
        end);
    p_update =
      (fun ~oid ~data ->
        match Hashtbl.find_opt store oid with
        | Some (_, v, c) ->
            Hashtbl.replace store oid (data, v + 1, c);
            Ok (v + 1)
        | None -> Error "no object");
    p_cas = (fun ~oid:_ ~expected:_ ~data:_ -> Ok false);
    p_delete = (fun oid -> Ok (Hashtbl.mem store oid && (Hashtbl.remove store oid; true)));
    p_block = (fun _ -> Ok ());
    p_monitor = (fun _ -> Ok ());
    p_notify = (fun ~client:_ ~oid:_ -> Ok ());
    p_clock = (fun () -> 1);
  }

let prop_sandbox_never_raises =
  QCheck.Test.make ~name:"sandbox never raises on random programs" ~count:500
    (QCheck.make program_gen)
    (fun program ->
      (* the program may or may not pass verification; the sandbox must
         return Ok/Error either way (verification protects servers from
         expensive programs, not from interpreter crashes) *)
      let proxy = mock_proxy () in
      let params = [ ("oid", Value.Str "/a"); ("client", Value.Int 7) ] in
      match program.Program.on_operation with
      | None -> true
      | Some handler -> (
          match Sandbox.run ~proxy ~params handler with
          | Ok _ | Error _ -> true))

let prop_program_roundtrip =
  QCheck.Test.make ~name:"random programs survive the wire format" ~count:300
    (QCheck.make program_gen)
    (fun program ->
      match Codec.deserialize (Codec.serialize program) with
      | Ok p' -> Codec.serialize p' = Codec.serialize program
      | Error _ -> false)

let prop_verified_programs_within_budget =
  QCheck.Test.make
    ~name:"programs the verifier admits respect structural bounds" ~count:300
    (QCheck.make program_gen)
    (fun program ->
      let code = Codec.serialize program in
      match Verify.verify ~mode:Verify.Active code with
      | Error _ -> true
      | Ok p ->
          Program.nodes p <= Verify.default_limits.Verify.max_nodes
          && Program.depth p <= Verify.default_limits.Verify.max_depth
          && Program.loop_nesting p
             <= Verify.default_limits.Verify.max_loop_nesting)

(* ------------------------------------------------------------------ *)
(* Spec_view vs replay model                                           *)
(* ------------------------------------------------------------------ *)

(* random operation scripts applied through the leader's speculative view;
   the minted transactions replayed on a fresh tree must produce exactly
   the state the speculation predicted *)
type script_op =
  | S_create of string * string
  | S_delete of string
  | S_set of string * string
  | S_cas of string * string

let script_gen =
  let open QCheck.Gen in
  let path = oneofl [ "/a"; "/b"; "/a/x"; "/a/y"; "/b/z" ] in
  let data = oneofl [ ""; "v1"; "v2"; "payload" ] in
  list_size (int_range 1 40)
    (oneof
       [ map2 (fun p d -> S_create (p, d)) path data;
         map (fun p -> S_delete p) path;
         map2 (fun p d -> S_set (p, d)) path data;
         map2 (fun p d -> S_cas (p, d)) path data ])

let prop_spec_view_matches_replay =
  QCheck.Test.make ~name:"speculative view = committed replay of minted txns"
    ~count:300 (QCheck.make script_gen)
    (fun script ->
      let module Zk = Edc_zookeeper in
      let tree = Zk.Data_tree.create () in
      let sv = Zk.Spec_view.create tree in
      let txns = ref [] in
      let mint = function
        | S_create (path, data) -> (
            match
              Zk.Spec_view.create_node sv ~path ~data ~ephemeral_owner:None
                ~sequential:false
            with
            | Ok (_, op) -> txns := op :: !txns
            | Error _ -> ())
        | S_delete path -> (
            match Zk.Spec_view.delete_node sv ~path ~version:None with
            | Ok op -> txns := op :: !txns
            | Error _ -> ())
        | S_set (path, data) -> (
            match Zk.Spec_view.set_node sv ~path ~data ~expected_version:None with
            | Ok (op, _) -> txns := op :: !txns
            | Error _ -> ())
        | S_cas (path, data) -> (
            (* conditional against the currently speculated version *)
            match Zk.Spec_view.read sv path with
            | Error _ -> ()
            | Ok (_, stat) -> (
                match
                  Zk.Spec_view.set_node sv ~path ~data
                    ~expected_version:(Some stat.Zk.Znode.version)
                with
                | Ok (op, _) -> txns := op :: !txns
                | Error _ -> ()))
      in
      List.iter mint script;
      (* replay on a fresh tree *)
      let replay = Zk.Data_tree.create () in
      List.iter
        (fun op ->
          match op with
          | Zk.Txn.Tcreate { path; data; ephemeral_owner } ->
              Zk.Data_tree.apply_create replay ~path ~data ~ephemeral_owner
          | Zk.Txn.Tdelete { path } -> Zk.Data_tree.apply_delete replay ~path
          | Zk.Txn.Tset { path; data; version } ->
              Zk.Data_tree.apply_set replay ~path ~data ~version
          | _ -> ())
        (List.rev !txns);
      (* the replayed tree must agree with the speculation on every path *)
      Zk.Data_tree.anomalies replay = 0
      && List.for_all
           (fun path ->
             match (Zk.Spec_view.read sv path, Zk.Data_tree.get_data replay path) with
             | Ok (d1, s1), Ok (d2, s2) ->
                 d1 = d2
                 && s1.Zk.Znode.version = s2.Zk.Znode.version
                 && s1.Zk.Znode.czxid = s2.Zk.Znode.czxid
             | Error _, Error _ -> true
             | _ -> false)
           [ "/a"; "/b"; "/a/x"; "/a/y"; "/b/z" ])

(* ------------------------------------------------------------------ *)
(* Replication under random fault schedules                            *)
(* ------------------------------------------------------------------ *)

(* Zab: random single-replica crash/restart points during a proposal
   stream must never lose a committed entry nor fork the logs *)
let prop_zab_safety_under_faults =
  QCheck.Test.make ~name:"zab: no committed entry lost under crash/restart"
    ~count:25
    QCheck.(triple small_int (int_range 0 2) (int_range 1 15))
    (fun (seed, victim, crash_after) ->
      let sim = Sim.create ~seed () in
      let net = Net.create sim in
      let peers = [ 0; 1; 2 ] in
      let delivered = Array.make 3 [] in
      let send_from i ~dst msg =
        Net.send net ~src:i ~dst ~size:(Zab.msg_size ~payload_size:String.length msg) msg
      in
      let replicas =
        Array.init 3 (fun i ->
            Zab.create ~sim ~id:i ~peers ~send:(send_from i)
              ~on_deliver:(fun _ p -> delivered.(i) <- p :: delivered.(i))
              ~initial_leader:0 ())
      in
      Array.iteri
        (fun i r ->
          Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
          Zab.start r)
        replicas;
      (* proposal stream with a crash of [victim] partway, restart later *)
      let proposed = ref [] in
      let counter = ref 0 in
      let propose_one () =
        (* always propose at whichever replica currently leads *)
        Array.iter
          (fun r ->
            if Zab.is_leader r then begin
              incr counter;
              let p = string_of_int !counter in
              if Zab.propose r p <> None then proposed := p :: !proposed
            end)
          replicas
      in
      for k = 1 to 30 do
        Sim.run ~until:(Sim_time.add (Sim.now sim) (Sim_time.ms 100)) sim;
        if k = crash_after then begin
          Zab.crash replicas.(victim);
          Net.set_node_down net victim
        end;
        if k = crash_after + 8 then begin
          Net.set_node_up net victim;
          Zab.restart replicas.(victim)
        end;
        propose_one ()
      done;
      Sim.run ~until:(Sim_time.add (Sim.now sim) (Sim_time.sec 5)) sim;
      let logs = Array.to_list (Array.map (fun l -> List.rev l) delivered) in
      (* prefix consistency across all replicas *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ -> false
      in
      let pairwise_ok =
        List.for_all
          (fun l1 -> List.for_all (fun l2 -> is_prefix l1 l2 || is_prefix l2 l1) logs)
          logs
      in
      (* every entry present on a majority is on the longest log *)
      let longest =
        List.fold_left (fun acc l -> if List.length l > List.length acc then l else acc)
          [] logs
      in
      let majority_entries =
        List.filter
          (fun p -> List.length (List.filter (fun l -> List.mem p l) logs) >= 2)
          !proposed
      in
      pairwise_ok && List.for_all (fun p -> List.mem p longest) majority_entries)

(* PBFT: a randomly chosen silent replica must not prevent agreement *)
let prop_pbft_with_random_silent_replica =
  QCheck.Test.make ~name:"pbft: agreement with any one silent replica" ~count:15
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, victim) ->
      let sim = Sim.create ~seed () in
      let net = Net.create sim in
      let peers = [ 0; 1; 2; 3 ] in
      let delivered = Array.make 4 [] in
      let send_from i ~dst msg =
        Net.send net ~src:i ~dst ~size:(Pbft.msg_size ~payload_size:String.length msg) msg
      in
      let replicas =
        Array.init 4 (fun i ->
            Pbft.create ~sim ~id:i ~peers ~f:1 ~send:(send_from i)
              ~on_deliver:(fun _ p ~ts:_ -> delivered.(i) <- p :: delivered.(i))
              ())
      in
      Array.iteri
        (fun i r ->
          Net.register net i (fun ~src ~size:_ msg -> Pbft.handle r ~src msg);
          Pbft.start r)
        replicas;
      Pbft.crash replicas.(victim);
      Net.set_node_down net victim;
      for k = 1 to 10 do
        Array.iter (fun r -> Pbft.submit r { Pbft.client = 9; rseq = k } (string_of_int k)) replicas
      done;
      Sim.run ~until:(Sim_time.sec 10) sim;
      let expected = List.init 10 (fun i -> string_of_int (i + 1)) in
      List.for_all
        (fun i -> i = victim || List.rev delivered.(i) = expected)
        [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Retry backoff properties                                            *)
(* ------------------------------------------------------------------ *)

let prop_backoff_within_envelope =
  (* decorrelated jitter: base <= d <= min cap (max base (3 * prev)) *)
  QCheck.Test.make
    ~name:"backoff delays stay within the decorrelated-jitter envelope"
    ~count:1000
    QCheck.(
      quad (int_range 1 500) (int_range 1 5000)
        (option (int_range 0 8000))
        (int_range 0 10000))
    (fun (base_ms, cap_ms, prev_ms, seed) ->
      let policy =
        {
          Retry.default_policy with
          Retry.base = Sim_time.ms base_ms;
          cap = Sim_time.ms cap_ms;
        }
      in
      let rng = Rng.create seed in
      let prev = Option.map Sim_time.ms prev_ms in
      let d = Retry.next_backoff rng ~policy ~prev in
      let cap_bound = Sim_time.(d <= policy.Retry.cap) in
      let floor_bound =
        Sim_time.(Sim_time.min policy.Retry.base policy.Retry.cap <= d)
      in
      let envelope =
        match prev with
        | None -> Sim_time.(d <= Sim_time.min policy.Retry.cap policy.Retry.base)
        | Some p ->
            let three_p = Sim_time.scale p 3.0 in
            Sim_time.(
              d <= Sim_time.min policy.Retry.cap (Sim_time.max policy.Retry.base three_p))
      in
      cap_bound && floor_bound && envelope)

let prop_retry_respects_deadline_and_attempts =
  (* a persistently transient operation gives up without sleeping past the
     deadline or exceeding the attempt budget *)
  QCheck.Test.make ~name:"retry loop honors deadline and attempt budget"
    ~count:200
    QCheck.(
      quad (int_range 1 100) (int_range 1 2000) (int_range 1 20)
        (int_range 0 10000))
    (fun (base_ms, deadline_ms, max_attempts, seed) ->
      (* shrinking can step outside int_range; keep the policy well formed
         (base > 0, max_attempts >= 1) *)
      let base_ms = Stdlib.max 1 base_ms
      and deadline_ms = Stdlib.max 0 deadline_ms
      and max_attempts = Stdlib.max 1 max_attempts
      and seed = Stdlib.abs seed in
      let sim = Sim.create ~seed ()
      and deadline = Sim_time.ms deadline_ms in
      let policy =
        {
          Retry.base = Sim_time.ms base_ms;
          cap = Sim_time.ms (4 * base_ms);
          deadline = Some deadline;
          max_attempts;
        }
      in
      let attempts_seen = ref 0
      and outcome = ref None
      and gave_up_at = ref Sim_time.zero in
      Proc.spawn sim (fun () ->
          outcome :=
            Some
              (Retry.run ~sim ~rng:(Rng.create (seed + 1)) ~policy
                 (fun ~attempt ->
                   attempts_seen := attempt;
                   Error (Retry.Transient "unavailable")));
          gave_up_at := Sim.now sim);
      Sim.run ~until:(Sim_time.sec 3600) sim;
      match !outcome with
      | Some (Retry.Gave_up { attempts; _ }) ->
          attempts = !attempts_seen
          && attempts <= max_attempts
          && Sim_time.(!gave_up_at <= deadline)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* End-to-end experiment determinism                                   *)
(* ------------------------------------------------------------------ *)

let test_experiment_determinism () =
  (* the whole stack — simulator, protocols, extensions, workload — must
     be bit-for-bit reproducible from a seed *)
  let module E = Edc_harness.Experiment in
  let module S = Edc_harness.Systems in
  let run () =
    let p =
      E.counter_point ~seed:123 ~warmup:(Sim_time.ms 200)
        ~measure:(Sim_time.ms 500) S.Ezk 8
    in
    (p.E.throughput, p.E.latency_ms, p.E.kb_per_op, p.E.errors)
  in
  Alcotest.(check bool) "two identical runs" true (run () = run ())

let () =
  Alcotest.run "edc_robustness"
    [
      ( "codec",
        [ qc prop_sexp_parser_total; qc prop_codec_total_on_sexps; qc prop_value_roundtrip ] );
      ( "sandbox",
        [ qc prop_sandbox_never_raises; qc prop_program_roundtrip;
          qc prop_verified_programs_within_budget ] );
      ("spec_view", [ qc prop_spec_view_matches_replay ]);
      ( "replication",
        [ qc prop_zab_safety_under_faults; qc prop_pbft_with_random_silent_replica ] );
      ( "retry",
        [ qc prop_backoff_within_envelope;
          qc prop_retry_respects_deadline_and_attempts ] );
      ( "determinism",
        [ Alcotest.test_case "experiment reproducibility" `Quick
            test_experiment_determinism ] );
    ]
