(* The linearizability checker: sequential models, the WGL search
   (real-time order, "maybe applied" semantics, budget, counterexample
   minimization), the history recorder, and the end-to-end harness
   integration — including the mutation self-test that re-enables a
   known-bad Zab behaviour and demands the checker catch it. *)

open Edc_simnet
module H = Edc_checker.History
module M = Edc_checker.Model
module W = Edc_checker.Wgl
module Instrument = Edc_checker.Instrument
module Experiment = Edc_harness.Experiment
module Systems = Edc_harness.Systems
module Zab = Edc_replication.Zab

let entry ?(client = 0) id op ~inv ?ret outcome =
  {
    H.id;
    client;
    op;
    inv = Sim_time.ms inv;
    ret = Option.map Sim_time.ms ret;
    outcome;
  }

let lin = Alcotest.testable W.pp_verdict (fun a b -> W.is_ok a = W.is_ok b)
let ok_v = W.Linearizable { ops = 0; states = 0 }

let bad_v =
  W.Non_linearizable
    {
      W.cx_cut = None;
      cx_ops = 0;
      cx_required = 0;
      cx_linearized = 0;
      cx_window = [];
    }

let check_counter = W.check M.counter
let check_queue = W.check M.queue
let check_mutex = W.check M.mutex

(* --- counter model ------------------------------------------------- *)

let test_counter_sequential () =
  let h =
    [
      entry 0 H.Incr ~inv:0 ~ret:10 (H.Done (H.R_int 1));
      entry 1 H.Incr ~inv:20 ~ret:30 (H.Done (H.R_int 2));
      entry 2 H.Ctr_read ~inv:40 ~ret:50
        (H.Done (H.R_obj { data = "2"; version = 2 }));
    ]
  in
  Alcotest.check lin "sequential counter" ok_v (check_counter h)

let test_counter_duplicate_value () =
  (* two increments both told "1": some apply was double-counted *)
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:100 (H.Done (H.R_int 1));
      entry ~client:2 1 H.Incr ~inv:0 ~ret:100 (H.Done (H.R_int 1));
    ]
  in
  Alcotest.check lin "duplicate increment result" bad_v (check_counter h)

let test_counter_stale_read () =
  let h =
    [
      entry 0 H.Incr ~inv:0 ~ret:10 (H.Done (H.R_int 1));
      entry 1 H.Ctr_read ~inv:20 ~ret:30
        (H.Done (H.R_obj { data = "0"; version = 0 }));
    ]
  in
  Alcotest.check lin "stale read after completed incr" bad_v (check_counter h)

let test_counter_concurrent_read_flexible () =
  (* the read overlaps the increment: both "0" and "1" are legal *)
  let h old =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:100 (H.Done (H.R_int 1));
      entry ~client:2 1 H.Ctr_read ~inv:10 ~ret:20
        (H.Done (H.R_obj { data = old; version = 0 }));
    ]
  in
  Alcotest.check lin "concurrent read sees old" ok_v (check_counter (h "0"));
  Alcotest.check lin "concurrent read sees new" ok_v (check_counter (h "1"))

let test_counter_version_ignored () =
  (* versions are backend metadata: same data, wild version must pass *)
  let h =
    [
      entry 0 H.Ctr_read ~inv:0 ~ret:10
        (H.Done (H.R_obj { data = "0"; version = 774 }));
    ]
  in
  Alcotest.check lin "version not part of the model" ok_v (check_counter h)

let test_counter_cas () =
  let h =
    [
      entry 0 (H.Ctr_cas { expected_data = "0"; data = "1" }) ~inv:0 ~ret:10
        (H.Done (H.R_bool true));
      entry 1 (H.Ctr_cas { expected_data = "0"; data = "1" }) ~inv:20 ~ret:30
        (H.Done (H.R_bool true));
    ]
  in
  Alcotest.check lin "second cas against stale value cannot win" bad_v
    (check_counter h);
  let h2 =
    [
      entry 0 (H.Ctr_cas { expected_data = "0"; data = "1" }) ~inv:0 ~ret:10
        (H.Done (H.R_bool true));
      entry 1 (H.Ctr_cas { expected_data = "0"; data = "1" }) ~inv:20 ~ret:30
        (H.Done (H.R_bool false));
    ]
  in
  Alcotest.check lin "losing cas reports false" ok_v (check_counter h2)

(* --- maybe-applied (info) semantics -------------------------------- *)

let test_maybe_applied_both_ways () =
  let read_after value =
    [
      entry ~client:1 0 H.Incr ~inv:0 (H.Open (Some "maybe applied"));
      entry ~client:2 1 H.Ctr_read ~inv:50 ~ret:60
        (H.Done (H.R_obj { data = value; version = 0 }));
    ]
  in
  Alcotest.check lin "ambiguous incr may have applied" ok_v
    (check_counter (read_after "1"));
  Alcotest.check lin "ambiguous incr may have not applied" ok_v
    (check_counter (read_after "0"))

let test_maybe_applied_cannot_unapply () =
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 (H.Open (Some "maybe applied"));
      entry ~client:2 1 H.Ctr_read ~inv:50 ~ret:60
        (H.Done (H.R_obj { data = "1"; version = 0 }));
      entry ~client:2 2 H.Ctr_read ~inv:70 ~ret:80
        (H.Done (H.R_obj { data = "0"; version = 0 }));
    ]
  in
  Alcotest.check lin "an observed effect cannot disappear" bad_v
    (check_counter h)

let test_failed_op_has_no_effect () =
  (* a definite failure must NOT be allowed to explain an observed bump *)
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:10 (H.Failed "no node");
      entry ~client:2 1 H.Ctr_read ~inv:50 ~ret:60
        (H.Done (H.R_obj { data = "1"; version = 0 }));
    ]
  in
  Alcotest.check lin "failed incr cannot explain the read" bad_v
    (check_counter h)

(* --- queue model ---------------------------------------------------- *)

let test_queue_fifo () =
  let deq data =
    [
      entry 0 (H.Enq { eid = "a"; data = "da" }) ~inv:0 ~ret:10
        (H.Done H.R_unit);
      entry 1 (H.Enq { eid = "b"; data = "db" }) ~inv:20 ~ret:30
        (H.Done H.R_unit);
      entry 2 H.Deq ~inv:40 ~ret:50 (H.Done (H.R_opt data));
    ]
  in
  Alcotest.check lin "dequeues the head" ok_v (check_queue (deq (Some "da")));
  Alcotest.check lin "dequeuing the tail breaks FIFO" bad_v
    (check_queue (deq (Some "db")));
  Alcotest.check lin "empty poll with elements present" bad_v
    (check_queue (deq None))

let test_queue_no_invention () =
  let h =
    [ entry 0 H.Deq ~inv:0 ~ret:10 (H.Done (H.R_opt (Some "ghost"))) ]
  in
  Alcotest.check lin "cannot dequeue what was never enqueued" bad_v
    (check_queue h)

let test_queue_traditional_delete () =
  let h ok_elem =
    [
      entry 0 (H.Enq { eid = "a"; data = "da" }) ~inv:0 ~ret:10
        (H.Done H.R_unit);
      entry 1 (H.Enq { eid = "b"; data = "db" }) ~inv:20 ~ret:30
        (H.Done H.R_unit);
      entry 2 (H.Deq_elem ok_elem) ~inv:40 ~ret:50 (H.Done (H.R_bool true));
    ]
  in
  Alcotest.check lin "FIFO walk deletes the head" ok_v (check_queue (h "a"));
  Alcotest.check lin "deleting a non-head element breaks FIFO" bad_v
    (check_queue (h "b"))

let test_queue_read_multiset () =
  let h =
    [
      entry 0 (H.Enq { eid = "a"; data = "da" }) ~inv:0 ~ret:10
        (H.Done H.R_unit);
      entry 1 (H.Enq { eid = "b"; data = "db" }) ~inv:20 ~ret:30
        (H.Done H.R_unit);
      (* capture sorts, so element order in the snapshot is irrelevant *)
      entry 2 H.Q_read ~inv:40 ~ret:50
        (H.Done (H.R_multiset [ "da"; "db" ]));
    ]
  in
  Alcotest.check lin "snapshot read" ok_v (check_queue h);
  let missing =
    [
      entry 0 (H.Enq { eid = "a"; data = "da" }) ~inv:0 ~ret:10
        (H.Done H.R_unit);
      entry 1 H.Q_read ~inv:40 ~ret:50 (H.Done (H.R_multiset []));
    ]
  in
  Alcotest.check lin "lost element visible in snapshot" bad_v
    (check_queue missing)

(* --- mutex model ---------------------------------------------------- *)

let test_mutex () =
  let good =
    [
      entry ~client:1 0 H.Acquire ~inv:0 ~ret:10 (H.Done H.R_unit);
      entry ~client:1 1 H.Release ~inv:20 ~ret:30 (H.Done H.R_unit);
      entry ~client:2 2 H.Acquire ~inv:40 ~ret:50 (H.Done H.R_unit);
    ]
  in
  Alcotest.check lin "alternating lock" ok_v (check_mutex good);
  let overlap =
    [
      entry ~client:1 0 H.Acquire ~inv:0 ~ret:10 (H.Done H.R_unit);
      entry ~client:2 1 H.Acquire ~inv:20 ~ret:30 (H.Done H.R_unit);
      entry ~client:1 2 H.Release ~inv:40 ~ret:50 (H.Done H.R_unit);
    ]
  in
  Alcotest.check lin "two holders at once" bad_v (check_mutex overlap);
  let stranger =
    [
      entry ~client:1 0 H.Acquire ~inv:0 ~ret:10 (H.Done H.R_unit);
      entry ~client:2 1 H.Release ~inv:20 ~ret:30 (H.Done H.R_unit);
    ]
  in
  Alcotest.check lin "release by non-holder" bad_v (check_mutex stranger)

(* --- gate (barrier) property ---------------------------------------- *)

let test_gate () =
  let enter ~client id ~inv ~ret =
    entry ~client id (H.Enter "/bar1") ~inv ~ret (H.Done H.R_unit)
  in
  let good = [ enter ~client:1 0 ~inv:0 ~ret:100; enter ~client:2 1 ~inv:50 ~ret:100 ] in
  (match M.check_gate ~threshold:2 good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gate should pass: %s" e);
  let bad = [ enter ~client:1 0 ~inv:0 ~ret:40; enter ~client:2 1 ~inv:50 ~ret:60 ] in
  (match M.check_gate ~threshold:2 bad with
  | Ok () -> Alcotest.fail "gate should catch the early return"
  | Error _ -> ());
  match M.check_gate ~threshold:3 good with
  | Ok () -> Alcotest.fail "gate should catch returns below threshold"
  | Error _ -> ()

(* --- search machinery ----------------------------------------------- *)

let test_budget () =
  let h =
    List.init 8 (fun i ->
        entry ~client:i i H.Incr ~inv:0 ~ret:1000 (H.Done (H.R_int (i + 1))))
  in
  match W.check ~max_steps:3 M.counter h with
  | W.Budget_exhausted _ -> ()
  | v -> Alcotest.failf "expected budget exhaustion, got %a" W.pp_verdict v

let test_memoization_scales () =
  (* 2 clients x 100 alternating increments with overlapping windows:
     without configuration memoization this explodes; with it, it is
     near-linear and must finish comfortably within the budget *)
  let h =
    List.init 200 (fun i ->
        entry ~client:(i mod 2) i H.Incr ~inv:(i * 10) ~ret:((i * 10) + 15)
          (H.Done (H.R_int (i + 1))))
  in
  Alcotest.check lin "long overlapped history" ok_v
    (W.check ~max_steps:100_000 M.counter h)

let test_counterexample_window () =
  (* ten good increments, then a read that can never be explained: the
     minimized window should isolate the read, not drag the whole run *)
  let incrs =
    List.init 10 (fun i ->
        entry i H.Incr ~inv:(i * 100) ~ret:((i * 100) + 10)
          (H.Done (H.R_int (i + 1))))
  in
  let bad_read =
    entry 10 H.Ctr_read ~inv:450 ~ret:460
      (H.Done (H.R_obj { data = "99"; version = 0 }))
  in
  match W.check M.counter (incrs @ [ bad_read ]) with
  | W.Non_linearizable cx ->
      Alcotest.(check bool) "window mentions the bad read" true
        (List.exists (fun (e : H.entry) -> e.H.id = 10) cx.W.cx_window);
      Alcotest.(check bool)
        (Fmt.str "prefix minimized (%d ops <= 6)" cx.W.cx_ops)
        true (cx.W.cx_ops <= 6);
      Alcotest.(check bool) "cut recorded" true (cx.W.cx_cut <> None);
      (* the window pretty-printer is part of the bench/test UX *)
      let s = Fmt.str "%a" W.pp_verdict (W.Non_linearizable cx) in
      Alcotest.(check bool) "printable" true (String.length s > 0)
  | v -> Alcotest.failf "expected a counterexample, got %a" W.pp_verdict v

(* --- the recorder ---------------------------------------------------- *)

let test_recorder () =
  let sim = Sim.create ~seed:1 () in
  let h = H.create ~sim () in
  Proc.spawn sim (fun () ->
      let a = H.invoke h ~client:1 H.Incr in
      Proc.sleep sim (Sim_time.ms 10);
      H.ok h a (H.R_int 1);
      let b = H.invoke h ~client:2 H.Incr in
      Proc.sleep sim (Sim_time.ms 5);
      H.info h b "maybe applied";
      let c = H.invoke h ~client:1 (H.Enq { eid = "x"; data = "d" }) in
      Proc.sleep sim (Sim_time.ms 5);
      H.fail h c "node exists";
      ignore (H.invoke h ~client:3 H.Deq));
  Sim.run ~until:(Sim_time.sec 1) sim;
  let entries = H.entries h in
  Alcotest.(check int) "four ops" 4 (List.length entries);
  Alcotest.(check int) "seven events" 7 (H.n_events h);
  let by_id id = List.find (fun (e : H.entry) -> e.H.id = id) entries in
  (match (by_id 0).H.outcome with
  | H.Done (H.R_int 1) -> ()
  | _ -> Alcotest.fail "op 0 should be Done 1");
  (match (by_id 1).H.outcome with
  | H.Open (Some "maybe applied") -> ()
  | _ -> Alcotest.fail "op 1 should be ambiguous");
  (match (by_id 2).H.outcome with
  | H.Failed "node exists" -> ()
  | _ -> Alcotest.fail "op 2 should be Failed");
  (match (by_id 3).H.outcome with
  | H.Open None -> ()
  | _ -> Alcotest.fail "op 3 never concluded");
  Alcotest.(check bool) "entries sorted by invocation" true
    (let invs = List.map (fun (e : H.entry) -> e.H.inv) entries in
     List.sort compare invs = invs);
  (* split: counter ops and queue ops separate *)
  let parts = H.split entries in
  Alcotest.(check int) "two objects" 2 (List.length parts);
  Alcotest.(check int) "counter part" 2
    (List.length (List.assoc "counter" parts));
  Alcotest.(check int) "queue part" 2 (List.length (List.assoc "queue" parts))

let test_error_classification () =
  Alcotest.(check bool) "node exists is definite" true
    (Instrument.is_definite_error "node exists");
  Alcotest.(check bool) "extension rejection is definite" true
    (Instrument.is_definite_error "extension error: bad argument");
  Alcotest.(check bool) "maybe applied is ambiguous" false
    (Instrument.is_definite_error "maybe applied");
  Alcotest.(check bool) "timeout is ambiguous" false
    (Instrument.is_definite_error "timeout");
  Alcotest.(check bool) "unknown errors stay ambiguous" false
    (Instrument.is_definite_error "some novel failure")

(* --- harness integration --------------------------------------------- *)

let assert_all_linearizable what (p : Experiment.chaos_point) =
  Alcotest.(check (list string))
    (what ^ ": invariants")
    [] p.Experiment.ch_invariant_failures;
  Alcotest.(check bool) (what ^ ": history captured") true
    (p.Experiment.ch_history_events > 0);
  List.iter
    (fun (obj, v) ->
      if not (W.is_ok v) then
        Alcotest.failf "%s: %s not linearizable: %a" what obj W.pp_verdict v)
    p.Experiment.ch_lin

let test_chaos_healthy_checked () =
  (* one full chaos run per backend family with the checker on: the
     per-object searches must come back Linearizable *)
  assert_all_linearizable "EZK"
    (Experiment.chaos_point ~seed:7 ~horizon:(Sim_time.sec 12) Systems.Ezk);
  assert_all_linearizable "EDS"
    (Experiment.chaos_point ~seed:7 ~horizon:(Sim_time.sec 12) Systems.Eds)

let test_lin_recipes_healthy () =
  let p = Experiment.lin_recipes_point ~seed:5 Systems.Ezk in
  (match p.Experiment.lp_lock with
  | v when W.is_ok v -> ()
  | v -> Alcotest.failf "leadership not linearizable: %a" W.pp_verdict v);
  match p.Experiment.lp_barrier with
  | Ok () -> ()
  | Error e -> Alcotest.failf "barrier gate violated: %s" e

(* The mutation self-test: skip Zab's log-matching checks (a historical
   bug this repo fixed under chaos) and demand that the checker convicts
   some seed with a printed counterexample window.  A checker that cannot
   re-find a known consistency bug is not a correctness oracle.

   The schedule is pure leader isolation: a partitioned leader keeps
   accepting client writes it cannot commit, so on heal it holds a
   divergent uncommitted tail — exactly the state the skipped
   log-matching check exists to repair.  (Crash+restarts would mask the
   bug: a restarted replica rebuilds its state machine from the repaired
   log.)  The same schedule with the flag off stays linearizable on
   every one of these seeds. *)
let mutation_schedule =
  [
    {
      Nemesis.start = Sim_time.ms 500;
      period = Some (Sim_time.ms 2500);
      action =
        Nemesis.Isolate
          {
            duration = Sim_time.ms 1200;
            victim = Nemesis.Leader;
            asymmetric = false;
          };
    };
  ]

let test_zab_mutation_caught () =
  let zab_config =
    { Zab.default_config with Zab.unsafe_skip_log_matching = true }
  in
  let seeds = List.init 5 (fun i -> 42 + i) in
  let convicted =
    List.find_map
      (fun seed ->
        let p =
          Experiment.chaos_point ~seed ~zab_config ~schedule:mutation_schedule
            ~horizon:(Sim_time.sec 12) Systems.Ezk
        in
        List.find_map
          (fun (obj, v) ->
            match v with
            | W.Non_linearizable cx -> Some (seed, obj, cx)
            | _ -> None)
          p.Experiment.ch_lin)
      seeds
  in
  match convicted with
  | Some (seed, obj, cx) ->
      Fmt.epr
        "@[<v>mutation self-test: seed %d convicted object %S:@,%a@]@." seed
        obj W.pp_verdict (W.Non_linearizable cx);
      Alcotest.(check bool) "counterexample window is non-empty" true
        (cx.W.cx_window <> [])
  | None ->
      Alcotest.fail
        "re-enabled divergent-tail bug, but no seed produced a \
         non-linearizable verdict"

(* --- stale-read freshness detector (§6i) --------------------------- *)

module F = Edc_checker.Freshness

let test_freshness_clean_history_passes () =
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:10 (H.Done (H.R_int 1));
      entry ~client:2 1 H.Ctr_read ~inv:20 ~ret:30
        (H.Done (H.R_obj { data = "1"; version = 1 }));
      entry ~client:1 2 H.Incr ~inv:40 ~ret:50 (H.Done (H.R_int 2));
      entry ~client:2 3 H.Ctr_read ~inv:60 ~ret:70
        (H.Done (H.R_obj { data = "2"; version = 2 }));
    ]
  in
  Alcotest.(check int) "session clean" 0 (List.length (F.check_session h));
  Alcotest.(check int) "realtime clean" 0 (List.length (F.check_realtime h))

let test_freshness_realtime_convicts_stale_read () =
  (* client 1's increment to 2 completes at t=50; client 2's read starts
     at t=60 yet returns 1 — stale in real time even though client 2's own
     session is monotone *)
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:10 (H.Done (H.R_int 1));
      entry ~client:1 1 H.Incr ~inv:40 ~ret:50 (H.Done (H.R_int 2));
      entry ~client:2 2 H.Ctr_read ~inv:60 ~ret:70
        (H.Done (H.R_obj { data = "1"; version = 1 }));
    ]
  in
  (match F.check_realtime h with
  | [ v ] ->
      Alcotest.(check int) "convicted read" 2 v.F.v_op;
      Alcotest.(check int) "returned" 1 v.F.v_observed;
      Alcotest.(check int) "already observed" 2 v.F.v_expected;
      Alcotest.(check int) "witnessing op" 1 v.F.v_witness
  | vs -> Alcotest.failf "expected exactly one violation, got %d"
            (List.length vs));
  Alcotest.(check int) "per-session sweep cannot see it" 0
    (List.length (F.check_session h))

let test_freshness_concurrent_ops_impose_no_bound () =
  (* the read overlaps the increment (and the tie at t=50 counts as
     concurrent): returning the old value is fresh enough *)
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:50 (H.Done (H.R_int 2));
      entry ~client:2 1 H.Ctr_read ~inv:50 ~ret:60
        (H.Done (H.R_obj { data = "1"; version = 1 }));
      entry ~client:3 2 H.Ctr_read ~inv:30 ~ret:80
        (H.Done (H.R_obj { data = "1"; version = 1 }));
    ]
  in
  Alcotest.(check int) "no violation" 0 (List.length (F.check_realtime h))

let test_freshness_session_convicts_non_monotone_reads () =
  (* observer failover symptom: one client sees 2 then 1 *)
  let h =
    [
      entry ~client:7 0 H.Ctr_read ~inv:0 ~ret:10
        (H.Done (H.R_obj { data = "2"; version = 2 }));
      entry ~client:7 1 H.Ctr_read ~inv:20 ~ret:30
        (H.Done (H.R_obj { data = "1"; version = 1 }));
      (* a DIFFERENT client reading 1 afterwards is fine per-session *)
      entry ~client:8 2 H.Ctr_read ~inv:40 ~ret:50
        (H.Done (H.R_obj { data = "1"; version = 1 }));
    ]
  in
  match F.check_session h with
  | [ v ] ->
      Alcotest.(check int) "client" 7 v.F.v_client;
      Alcotest.(check int) "convicted read" 1 v.F.v_op;
      Alcotest.(check int) "witness" 0 v.F.v_witness
  | vs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_freshness_ignores_pending_and_failed () =
  let h =
    [
      entry ~client:1 0 H.Incr ~inv:0 ~ret:10 (H.Done (H.R_int 5));
      (* timed out: no return, never observed *)
      entry ~client:2 1 H.Ctr_read ~inv:20 (H.Open None);
      entry ~client:3 2 H.Ctr_read ~inv:30 ~ret:40 (H.Failed "refused");
    ]
  in
  Alcotest.(check int) "nothing convictable" 0
    (List.length (F.check_realtime h))

let () =
  Alcotest.run "edc_checker"
    [
      ( "models",
        [
          Alcotest.test_case "counter sequential" `Quick test_counter_sequential;
          Alcotest.test_case "counter duplicate value" `Quick
            test_counter_duplicate_value;
          Alcotest.test_case "counter stale read" `Quick test_counter_stale_read;
          Alcotest.test_case "counter concurrent read" `Quick
            test_counter_concurrent_read_flexible;
          Alcotest.test_case "counter version ignored" `Quick
            test_counter_version_ignored;
          Alcotest.test_case "counter cas" `Quick test_counter_cas;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "queue no invention" `Quick test_queue_no_invention;
          Alcotest.test_case "queue traditional delete" `Quick
            test_queue_traditional_delete;
          Alcotest.test_case "queue snapshot read" `Quick
            test_queue_read_multiset;
          Alcotest.test_case "mutex" `Quick test_mutex;
          Alcotest.test_case "barrier gate" `Quick test_gate;
        ] );
      ( "maybe-applied",
        [
          Alcotest.test_case "both outcomes legal" `Quick
            test_maybe_applied_both_ways;
          Alcotest.test_case "effects cannot unapply" `Quick
            test_maybe_applied_cannot_unapply;
          Alcotest.test_case "failed ops have no effect" `Quick
            test_failed_op_has_no_effect;
        ] );
      ( "search",
        [
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "memoization scales" `Quick
            test_memoization_scales;
          Alcotest.test_case "counterexample window" `Quick
            test_counterexample_window;
        ] );
      ( "capture",
        [
          Alcotest.test_case "recorder" `Quick test_recorder;
          Alcotest.test_case "error classification" `Quick
            test_error_classification;
        ] );
      ( "freshness",
        [
          Alcotest.test_case "clean history passes" `Quick
            test_freshness_clean_history_passes;
          Alcotest.test_case "realtime convicts stale read" `Quick
            test_freshness_realtime_convicts_stale_read;
          Alcotest.test_case "concurrency imposes no bound" `Quick
            test_freshness_concurrent_ops_impose_no_bound;
          Alcotest.test_case "session convicts non-monotone reads" `Quick
            test_freshness_session_convicts_non_monotone_reads;
          Alcotest.test_case "pending and failed ignored" `Quick
            test_freshness_ignores_pending_and_failed;
        ] );
      ( "integration",
        [
          Alcotest.test_case "healthy chaos is linearizable" `Slow
            test_chaos_healthy_checked;
          Alcotest.test_case "blocking recipes are linearizable" `Slow
            test_lin_recipes_healthy;
          Alcotest.test_case "zab mutation is caught" `Slow
            test_zab_mutation_caught;
        ] );
    ]
