(* Tests for the ZooKeeper substrate: path algebra, data tree, the leader's
   speculative view (contention semantics), watches, and full-stack
   integration through the simulated cluster. *)

open Edc_simnet
open Edc_zookeeper
module P = Protocol

let zerror = Alcotest.testable Zerror.pp Zerror.equal

(* ------------------------------------------------------------------ *)
(* Zpath                                                               *)
(* ------------------------------------------------------------------ *)

let test_path_validity () =
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " valid") true (Zpath.is_valid p))
    [ "/"; "/a"; "/a/b"; "/queue/item0000000001" ];
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " invalid") false (Zpath.is_valid p))
    [ ""; "a"; "/a/"; "//"; "/a//b" ]

let test_path_algebra () =
  Alcotest.(check (option string)) "parent" (Some "/a") (Zpath.parent "/a/b");
  Alcotest.(check (option string)) "parent top" (Some "/") (Zpath.parent "/a");
  Alcotest.(check (option string)) "root parent" None (Zpath.parent "/");
  Alcotest.(check string) "basename" "b" (Zpath.basename "/a/b");
  Alcotest.(check string) "child of root" "/x" (Zpath.child "/" "x");
  Alcotest.(check string) "child" "/a/x" (Zpath.child "/a" "x");
  Alcotest.(check bool) "ancestor" true (Zpath.is_ancestor ~ancestor:"/a" "/a/b/c");
  Alcotest.(check bool) "not ancestor" false (Zpath.is_ancestor ~ancestor:"/a" "/ab");
  Alcotest.(check bool) "self not ancestor" false (Zpath.is_ancestor ~ancestor:"/a" "/a");
  Alcotest.(check int) "depth" 3 (Zpath.depth "/a/b/c");
  Alcotest.(check (list string)) "components" [ "a"; "b" ] (Zpath.components "/a/b")

let prop_path_parent_child =
  QCheck.Test.make ~name:"child(parent p, basename p) = p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 5) (string_gen_of_size (Gen.int_range 1 8) Gen.printable))
    (fun parts ->
      let clean =
        List.map
          (fun s ->
            String.map (fun c -> if c = '/' then '_' else c) s)
          parts
      in
      let p = "/" ^ String.concat "/" clean in
      (not (Zpath.is_valid p))
      ||
      match Zpath.parent p with
      | Some parent -> Zpath.child parent (Zpath.basename p) = p
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Data_tree                                                           *)
(* ------------------------------------------------------------------ *)

let test_tree_create_get () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/a" ~data:"va" ~ephemeral_owner:None;
  Data_tree.apply_create tr ~path:"/a/b" ~data:"vb" ~ephemeral_owner:None;
  (match Data_tree.get_data tr "/a/b" with
  | Ok (d, s) ->
      Alcotest.(check string) "data" "vb" d;
      Alcotest.(check int) "fresh version" 0 s.Znode.version
  | Error _ -> Alcotest.fail "expected node");
  Alcotest.(check (list string)) "children" [ "b" ]
    (Result.get_ok (Data_tree.get_children tr "/a"));
  Alcotest.(check int) "no anomalies" 0 (Data_tree.anomalies tr)

let test_tree_delete () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/a" ~data:"" ~ephemeral_owner:None;
  Data_tree.apply_delete tr ~path:"/a";
  Alcotest.(check bool) "gone" false (Data_tree.mem tr "/a");
  Alcotest.(check (list string)) "root empty" []
    (Result.get_ok (Data_tree.get_children tr "/"))

let test_tree_cversion_counts_child_ops () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/q" ~data:"" ~ephemeral_owner:None;
  Data_tree.apply_create tr ~path:"/q/a" ~data:"" ~ephemeral_owner:None;
  Data_tree.apply_create tr ~path:"/q/b" ~data:"" ~ephemeral_owner:None;
  Data_tree.apply_delete tr ~path:"/q/a";
  Alcotest.(check int) "cversion = creates + deletes" 3 (Data_tree.cversion tr "/q")

let test_tree_ephemeral_index () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/e1" ~data:"" ~ephemeral_owner:(Some 7);
  Data_tree.apply_create tr ~path:"/e2" ~data:"" ~ephemeral_owner:(Some 7);
  Data_tree.apply_create tr ~path:"/p" ~data:"" ~ephemeral_owner:None;
  Alcotest.(check (list string)) "session ephemerals" [ "/e1"; "/e2" ]
    (Data_tree.ephemeral_paths tr 7);
  Data_tree.apply_delete tr ~path:"/e1";
  Alcotest.(check (list string)) "after delete" [ "/e2" ]
    (Data_tree.ephemeral_paths tr 7)

let test_tree_anomaly_detection () =
  let tr = Data_tree.create () in
  Data_tree.apply_delete tr ~path:"/missing";
  Data_tree.apply_create tr ~path:"/x/y" ~data:"" ~ephemeral_owner:None;
  Alcotest.(check int) "anomalies counted" 2 (Data_tree.anomalies tr);
  Alcotest.(check bool) "tree unharmed" false (Data_tree.mem tr "/x/y")

(* Regression: [export] used to share live znode records with the tree, so
   mutations after the export silently rewrote the "snapshot". *)
let test_tree_snapshot_isolation () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/a" ~data:"old" ~ephemeral_owner:None;
  let image = Data_tree.export tr in
  Data_tree.apply_set tr ~path:"/a" ~data:"new" ~version:1;
  Data_tree.apply_create tr ~path:"/a/b" ~data:"" ~ephemeral_owner:None;
  let restored = Data_tree.create () in
  Data_tree.import restored image;
  (match Data_tree.get_data restored "/a" with
  | Ok (data, stat) ->
      Alcotest.(check string) "pre-mutation data" "old" data;
      Alcotest.(check int) "pre-mutation version" 0 stat.Znode.version;
      Alcotest.(check int) "pre-mutation children" 0 stat.Znode.num_children
  | Error _ -> Alcotest.fail "/a missing from restored tree");
  (* the image must also be reusable: mutate the restored tree and import
     again into a second one *)
  Data_tree.apply_set restored ~path:"/a" ~data:"mutated" ~version:9;
  let restored2 = Data_tree.create () in
  Data_tree.import restored2 image;
  match Data_tree.get_data restored2 "/a" with
  | Ok (data, _) -> Alcotest.(check string) "image is stable" "old" data
  | Error _ -> Alcotest.fail "/a missing from second restore"

let test_tree_children_with_data () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/q" ~data:"" ~ephemeral_owner:None;
  Data_tree.apply_create tr ~path:"/q/b" ~data:"2" ~ephemeral_owner:None;
  Data_tree.apply_create tr ~path:"/q/a" ~data:"1" ~ephemeral_owner:None;
  match Data_tree.children_with_data tr "/q" with
  | Ok kids ->
      Alcotest.(check (list (pair string string)))
        "sorted with data"
        [ ("/q/a", "1"); ("/q/b", "2") ]
        (List.map (fun (p, d, _) -> (p, d)) kids);
      (* czxid reflects creation order, not name order *)
      let czxids = List.map (fun (_, _, (s : Znode.stat)) -> s.Znode.czxid) kids in
      Alcotest.(check bool) "b created before a" true
        (List.nth czxids 0 > List.nth czxids 1)
  | Error _ -> Alcotest.fail "expected children"

(* ------------------------------------------------------------------ *)
(* Spec_view: the contention-defining semantics                        *)
(* ------------------------------------------------------------------ *)

let test_spec_cas_conflict () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/ctr" ~data:"0" ~ephemeral_owner:None;
  let sv = Spec_view.create tr in
  (* Two clients both read version 0, then both try cas(v0 -> ...). *)
  let r1 = Spec_view.set_node sv ~path:"/ctr" ~data:"1" ~expected_version:(Some 0) in
  let r2 = Spec_view.set_node sv ~path:"/ctr" ~data:"1" ~expected_version:(Some 0) in
  Alcotest.(check bool) "first cas wins" true (Result.is_ok r1);
  (match r2 with
  | Error e -> Alcotest.check zerror "second cas loses" Zerror.Bad_version e
  | Ok _ -> Alcotest.fail "second cas must fail against speculation")

let test_spec_read_your_speculative_writes () =
  let tr = Data_tree.create () in
  let sv = Spec_view.create tr in
  (match Spec_view.create_node sv ~path:"/a" ~data:"x" ~ephemeral_owner:None ~sequential:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "create failed");
  (match Spec_view.read sv "/a" with
  | Ok (d, _) -> Alcotest.(check string) "sees pending create" "x" d
  | Error _ -> Alcotest.fail "pending node invisible");
  Alcotest.(check bool) "committed tree untouched" false (Data_tree.mem tr "/a")

let test_spec_sequential_names () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/q" ~data:"" ~ephemeral_owner:None;
  let sv = Spec_view.create tr in
  let mk () =
    match
      Spec_view.create_node sv ~path:"/q/item" ~data:"" ~ephemeral_owner:None
        ~sequential:true
    with
    | Ok (p, _) -> p
    | Error _ -> Alcotest.fail "sequential create failed"
  in
  let p1 = mk () and p2 = mk () and p3 = mk () in
  Alcotest.(check string) "first suffix" "/q/item0000000000" p1;
  Alcotest.(check string) "second suffix" "/q/item0000000001" p2;
  Alcotest.(check string) "third suffix" "/q/item0000000002" p3

let test_spec_delete_then_create () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/n" ~data:"old" ~ephemeral_owner:None;
  let sv = Spec_view.create tr in
  (match Spec_view.delete_node sv ~path:"/n" ~version:None with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "delete failed");
  Alcotest.(check bool) "speculatively gone" true
    (Spec_view.exists sv "/n" = None);
  (match Spec_view.create_node sv ~path:"/n" ~data:"new" ~ephemeral_owner:None ~sequential:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "recreate failed");
  match Spec_view.read sv "/n" with
  | Ok (d, _) -> Alcotest.(check string) "recreated data" "new" d
  | Error _ -> Alcotest.fail "recreate invisible"

let test_spec_czxid_tracks_tree () =
  let tr = Data_tree.create () in
  let sv = Spec_view.create tr in
  let czxid_of r = match r with
    | Ok (p, _) -> (match Spec_view.exists sv p with
        | Some s -> s.Znode.czxid
        | None -> -1)
    | Error _ -> -1
  in
  let c1 = czxid_of (Spec_view.create_node sv ~path:"/a" ~data:"" ~ephemeral_owner:None ~sequential:false) in
  let c2 = czxid_of (Spec_view.create_node sv ~path:"/b" ~data:"" ~ephemeral_owner:None ~sequential:false) in
  Alcotest.(check bool) "speculative czxids increase" true (c2 = c1 + 1);
  (* now apply them for real and check alignment *)
  Data_tree.apply_create tr ~path:"/a" ~data:"" ~ephemeral_owner:None;
  Spec_view.on_applied_op sv (Txn.Tcreate { path = "/a"; data = ""; ephemeral_owner = None });
  Data_tree.apply_create tr ~path:"/b" ~data:"" ~ephemeral_owner:None;
  Spec_view.on_applied_op sv (Txn.Tcreate { path = "/b"; data = ""; ephemeral_owner = None });
  (match Data_tree.exists tr "/a" with
  | Some s -> Alcotest.(check int) "applied czxid matches speculation" c1 s.Znode.czxid
  | None -> Alcotest.fail "missing");
  let c3 = czxid_of (Spec_view.create_node sv ~path:"/c" ~data:"" ~ephemeral_owner:None ~sequential:false) in
  Alcotest.(check int) "post-apply speculation continues" (c2 + 1) c3

let test_spec_ephemerals_of_session () =
  let tr = Data_tree.create () in
  Data_tree.apply_create tr ~path:"/e1" ~data:"" ~ephemeral_owner:(Some 5);
  let sv = Spec_view.create tr in
  ignore (Spec_view.create_node sv ~path:"/e2" ~data:"" ~ephemeral_owner:(Some 5) ~sequential:false);
  ignore (Spec_view.delete_node sv ~path:"/e1" ~version:None);
  Alcotest.(check (list string)) "pending-aware ephemeral set" [ "/e2" ]
    (Spec_view.ephemerals_of_session sv 5)

(* ------------------------------------------------------------------ *)
(* Watch_manager                                                       *)
(* ------------------------------------------------------------------ *)

let test_watch_one_shot () =
  let w = Watch_manager.create () in
  Watch_manager.add w Watch_manager.Data "/a" 1;
  Watch_manager.add w Watch_manager.Data "/a" 2;
  Alcotest.(check (list int)) "both fire" [ 1; 2 ]
    (List.sort compare (Watch_manager.fire w Watch_manager.Data "/a"));
  Alcotest.(check (list int)) "one-shot" [] (Watch_manager.fire w Watch_manager.Data "/a")

let test_watch_drop_session () =
  let w = Watch_manager.create () in
  Watch_manager.add w Watch_manager.Data "/a" 1;
  Watch_manager.add w Watch_manager.Children "/a" 1;
  Watch_manager.add w Watch_manager.Data "/a" 2;
  Watch_manager.drop_session w 1;
  Alcotest.(check int) "only session 2 remains" 1 (Watch_manager.watch_count w)

(* ------------------------------------------------------------------ *)
(* Integration through the simulated cluster                           *)
(* ------------------------------------------------------------------ *)

let in_cluster ?(horizon = Sim_time.sec 60) f =
  let sim = Sim.create ~seed:5 () in
  let cluster = Cluster.create sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try f cluster with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  match !failure with Some e -> raise e | None -> ()

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Zerror.pp e

let test_cluster_basic_crud () =
  in_cluster (fun cluster ->
      let c = Cluster.connected_client cluster () in
      let p = ok "create" (Client.create_node c "/app" "hello") in
      Alcotest.(check string) "path" "/app" p;
      let d, s = ok "get" (Client.get_data c "/app") in
      Alcotest.(check string) "data" "hello" d;
      Alcotest.(check int) "version 0" 0 s.Znode.version;
      let v = ok "set" (Client.set_data c "/app" "world") in
      Alcotest.(check int) "version 1" 1 v;
      let d2, _ = ok "get2" (Client.get_data c "/app") in
      Alcotest.(check string) "updated" "world" d2;
      ok "delete" (Client.delete c "/app");
      match Client.get_data c "/app" with
      | Error Zerror.No_node -> ()
      | _ -> Alcotest.fail "expected No_node after delete")

let test_cluster_reads_from_any_replica () =
  in_cluster (fun cluster ->
      let writer = Cluster.connected_client ~replica:0 cluster () in
      let reader = Cluster.connected_client ~replica:2 cluster () in
      ignore (ok "create" (Client.create_node writer "/shared" "v"));
      (* Allow the commit to propagate to the reader's replica. *)
      Proc.sleep (Cluster.sim cluster) (Sim_time.ms 50);
      let d, _ = ok "read at backup" (Client.get_data reader "/shared") in
      Alcotest.(check string) "replicated" "v" d)

let test_cluster_cas_under_contention () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let c0 = Cluster.connected_client cluster () in
      ignore (ok "init" (Client.create_node c0 "/ctr" "0"));
      let winners = ref 0 and losers = ref 0 in
      let contender () =
        let c = Cluster.connected_client cluster () in
        let _, s = ok "read" (Client.get_data c "/ctr") in
        match Client.set_data c ~expected_version:s.Znode.version "/ctr" "x" with
        | Ok _ -> incr winners
        | Error Zerror.Bad_version -> incr losers
        | Error e -> Alcotest.failf "unexpected: %a" Zerror.pp e
      in
      let fibers = List.init 5 (fun _ -> Proc.async sim contender) in
      Proc.join fibers;
      Alcotest.(check int) "exactly one cas wins per version" 1 !winners;
      Alcotest.(check int) "the rest lose" 4 !losers)

let test_cluster_sequential_unique_ordered () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let c0 = Cluster.connected_client cluster () in
      ignore (ok "mkdir" (Client.create_node c0 "/q" ""));
      let paths = ref [] in
      let producer _ =
        let c = Cluster.connected_client cluster () in
        let p = ok "seq create" (Client.create_node c ~sequential:true "/q/item" "") in
        paths := p :: !paths
      in
      Proc.join (List.init 8 (fun i -> Proc.async sim (fun () -> producer i)));
      let names = List.sort compare !paths in
      Alcotest.(check int) "eight created" 8 (List.length names);
      Alcotest.(check int) "all unique" 8
        (List.length (List.sort_uniq compare names));
      let kids = ok "ls" (Client.get_children c0 "/q") in
      Alcotest.(check int) "all visible" 8 (List.length kids))

let test_cluster_watch_fires_on_change () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let watcher = Cluster.connected_client cluster () in
      let writer = Cluster.connected_client cluster () in
      ignore (ok "create" (Client.create_node writer "/w" "0"));
      Proc.sleep sim (Sim_time.ms 50);
      let waiter = Client.watch_waiter watcher "/w" in
      ignore (ok "watch read" (Client.get_data watcher ~watch:true "/w"));
      ignore (ok "set" (Client.set_data writer "/w" "1"));
      let path, kind = Proc.await waiter in
      Alcotest.(check string) "event path" "/w" path;
      Alcotest.(check bool) "changed event" true (kind = P.Node_changed))

(* Regression: a server-side watch is one-shot.  The triggering write
   produces exactly one notification; later writes stay silent until the
   client re-arms with another watched read. *)
let test_cluster_watch_one_shot_delivery () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let watcher = Cluster.connected_client cluster () in
      let writer = Cluster.connected_client cluster () in
      ignore (ok "create" (Client.create_node writer "/w" "0"));
      Proc.sleep sim (Sim_time.ms 50);
      let waiter = Client.watch_waiter watcher "/w" in
      ignore (ok "armed read" (Client.get_data watcher ~watch:true "/w"));
      ignore (ok "set1" (Client.set_data writer "/w" "1"));
      let path, _ = Proc.await waiter in
      Alcotest.(check string) "first write notifies" "/w" path;
      (* no re-arm: the next write must not produce an event *)
      let second = Client.watch_waiter watcher "/w" in
      ignore (ok "set2" (Client.set_data writer "/w" "2"));
      Proc.sleep sim (Sim_time.ms 300);
      Alcotest.(check bool) "one-shot: no event without re-arm" false
        (Proc.is_fulfilled second))

(* Regression: the notification/re-arm cycle loses no update.  A write
   racing the re-armed read is either seen by that read directly or
   caught by the new watch — over a chain of writes, the watcher always
   converges on the final value. *)
let test_cluster_watch_not_lost_across_write () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let watcher = Cluster.connected_client cluster () in
      let writer = Cluster.connected_client cluster () in
      ignore (ok "create" (Client.create_node writer "/w" "0"));
      Proc.sleep sim (Sim_time.ms 50);
      let generations = 5 in
      let seen = ref [] in
      let observer =
        Proc.async sim (fun () ->
            let rec loop n last =
              if n > 0 then begin
                let waiter = Client.watch_waiter watcher "/w" in
                let d, _ = ok "armed read" (Client.get_data watcher ~watch:true "/w") in
                if d <> last then seen := d :: !seen;
                if d <> string_of_int generations then begin
                  ignore (Proc.await waiter);
                  loop (n - 1) d
                end
              end
            in
            loop (generations + 1) "")
      in
      Proc.sleep sim (Sim_time.ms 100);
      for i = 1 to generations do
        ignore (ok "set" (Client.set_data writer "/w" (string_of_int i)));
        Proc.sleep sim (Sim_time.ms 120)
      done;
      Proc.await observer;
      (* every re-armed generation observed the write that triggered it:
         nothing was lost between the notification and the next read *)
      Alcotest.(check string) "converged on the final value"
        (string_of_int generations)
        (match !seen with last :: _ -> last | [] -> "");
      Alcotest.(check (list string)) "no update skipped"
        (List.init generations (fun i -> string_of_int (i + 1)))
        (List.rev (List.filter (fun d -> d <> "0") !seen)))

(* Regression: notifications are delivered in transaction order — the
   order events fire equals the commit order of the writes that caused
   them, across distinct watched nodes. *)
let test_cluster_watch_order_follows_txn_order () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let watcher = Cluster.connected_client cluster () in
      let writer = Cluster.connected_client cluster () in
      ignore (ok "create a" (Client.create_node writer "/wa" "0"));
      ignore (ok "create b" (Client.create_node writer "/wb" "0"));
      Proc.sleep sim (Sim_time.ms 50);
      let arrivals = ref [] in
      let arm path =
        let waiter = Client.watch_waiter watcher path in
        ignore (ok ("arm " ^ path) (Client.get_data watcher ~watch:true path));
        Proc.async sim (fun () ->
            let p, _ = Proc.await waiter in
            arrivals := p :: !arrivals)
      in
      let fa = arm "/wa" in
      let fb = arm "/wb" in
      (* commit order: /wb first, then /wa *)
      ignore (ok "set b" (Client.set_data writer "/wb" "1"));
      ignore (ok "set a" (Client.set_data writer "/wa" "1"));
      Proc.join [ fa; fb ];
      Alcotest.(check (list string)) "delivery order = txn order"
        [ "/wb"; "/wa" ] (List.rev !arrivals))

let test_cluster_block_unblocks_on_create () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let waiter_client = Cluster.connected_client cluster () in
      let creator = Cluster.connected_client cluster () in
      let unblocked_at = ref Sim_time.zero in
      let blocker =
        Proc.async sim (fun () ->
            ok "block" (Client.block waiter_client "/ready");
            unblocked_at := Sim.now sim)
      in
      Proc.sleep sim (Sim_time.ms 200);
      Alcotest.(check bool) "still blocked" false (Proc.is_fulfilled blocker);
      ignore (ok "create" (Client.create_node creator "/ready" ""));
      Proc.await blocker;
      Alcotest.(check bool) "unblocked after create" true
        Sim_time.(Sim_time.ms 200 <= !unblocked_at))

let test_cluster_ephemeral_cleanup_on_close () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let owner = Cluster.connected_client cluster () in
      let observer = Cluster.connected_client cluster () in
      ignore (ok "monitor" (Client.monitor owner "/lead"));
      Proc.sleep sim (Sim_time.ms 50);
      (match ok "exists" (Client.exists observer "/lead") with
      | Some s -> Alcotest.(check bool) "ephemeral" true (s.Znode.ephemeral_owner <> None)
      | None -> Alcotest.fail "ephemeral missing");
      Client.close owner;
      Proc.sleep sim (Sim_time.ms 200);
      match ok "exists after close" (Client.exists observer "/lead") with
      | None -> ()
      | Some _ -> Alcotest.fail "ephemeral should be deleted on session close")

let test_cluster_session_expiry_deletes_ephemerals () =
  in_cluster ~horizon:(Sim_time.sec 120) (fun cluster ->
      let sim = Cluster.sim cluster in
      (* A client that never pings: its session must expire server-side. *)
      let lazy_config =
        { Client.default_config with ping_interval = Sim_time.sec 3600 }
      in
      let owner = Cluster.connected_client ~config:lazy_config cluster () in
      let observer = Cluster.connected_client cluster () in
      ignore (ok "monitor" (Client.monitor owner "/zombie"));
      Proc.sleep sim (Sim_time.sec 30);
      match ok "exists" (Client.exists observer "/zombie") with
      | None -> ()
      | Some _ -> Alcotest.fail "session should have expired")

let test_cluster_leader_failover_write_resumes () =
  in_cluster ~horizon:(Sim_time.sec 120) (fun cluster ->
      let sim = Cluster.sim cluster in
      (* connect to replica 1 so our session survives the leader's crash *)
      let c = Cluster.connected_client ~replica:1 cluster () in
      ignore (ok "pre-crash write" (Client.create_node c "/durable" "1"));
      Cluster.crash_server cluster 0;
      (* Wait out the election, then write again. *)
      Proc.sleep sim (Sim_time.sec 3);
      let rec retry n =
        match Client.create_node c "/post-crash" "2" with
        | Ok _ -> ()
        | Error _ when n > 0 ->
            Proc.sleep sim (Sim_time.ms 500);
            retry (n - 1)
        | Error e -> Alcotest.failf "write after failover: %a" Zerror.pp e
      in
      retry 20;
      let d, _ = ok "old data survives" (Client.get_data c "/durable") in
      Alcotest.(check string) "durable" "1" d)

let test_cluster_client_reconnects_after_replica_crash () =
  in_cluster ~horizon:(Sim_time.sec 120) (fun cluster ->
      let sim = Cluster.sim cluster in
      (* client attached to follower 2; crash it; the session survives at
         the leader and the client re-attaches to replica 1 *)
      let c = Cluster.connected_client ~replica:2 cluster () in
      ignore (ok "write" (Client.create_node c "/sticky" "v"));
      Cluster.crash_server cluster 2;
      Proc.sleep sim (Sim_time.ms 200);
      Alcotest.(check bool) "reconnect accepted" true (Client.reconnect c ~replica:1);
      let d, _ = ok "read after reconnect" (Client.get_data c "/sticky") in
      Alcotest.(check string) "session and data intact" "v" d;
      ignore (ok "write after reconnect" (Client.create_node c "/sticky2" "w")))

let test_cluster_snapshot_state_transfer () =
  (* aggressive snapshotting: a replica that missed hundreds of txns
     recovers its whole tree through Snapshot_install, not log replay *)
  let sim = Sim.create ~seed:41 () in
  let config = { Server.default_config with snapshot_interval = 25 } in
  let cluster = Cluster.create ~server_config:config sim in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let c = Cluster.connected_client ~replica:0 cluster () in
        ignore (ok "root" (Client.create_node c "/data" ""));
        Cluster.crash_server cluster 2;
        for i = 1 to 120 do
          ignore (ok "mk" (Client.create_node c (Printf.sprintf "/data/n%03d" i)
                             (string_of_int i)))
        done;
        (* the survivors have compacted well past the crash point *)
        Alcotest.(check bool) "leader compacted" true
          (Edc_replication.Zab.compaction_base (Server.zab (Cluster.servers cluster).(0)) > 0);
        Cluster.restart_server cluster 2;
        Proc.sleep sim (Sim_time.sec 3);
        let t0 = Server.tree (Cluster.servers cluster).(0) in
        let t2 = Server.tree (Cluster.servers cluster).(2) in
        Alcotest.(check int) "same node count after snapshot install"
          (Data_tree.node_count t0) (Data_tree.node_count t2);
        (match Data_tree.get_data t2 "/data/n077" with
        | Ok (d, _) -> Alcotest.(check string) "sampled data intact" "77" d
        | Error e -> Alcotest.failf "missing node after install: %a" Zerror.pp e);
        (* and the recovered replica serves reads *)
        let reader = Cluster.connected_client ~replica:2 cluster () in
        let d, _ = ok "read at recovered replica" (Client.get_data reader "/data/n100") in
        Alcotest.(check string) "read ok" "100" d
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  match !failure with Some e -> raise e | None -> ()

let test_cluster_deterministic () =
  let run () =
    let sim = Sim.create ~seed:11 () in
    let cluster = Cluster.create sim in
    let trace = ref [] in
    Proc.spawn sim (fun () ->
        let c = Cluster.connected_client cluster () in
        for i = 1 to 10 do
          match Client.create_node c ~sequential:true "/n" (string_of_int i) with
          | Ok p -> trace := p :: !trace
          | Error _ -> ()
        done);
    Sim.run ~until:(Sim_time.sec 10) sim;
    (!trace, Sim.now sim, Net.total_bytes_sent (Cluster.net cluster))
  in
  Alcotest.(check bool) "same trace both runs" true (run () = run ())

let qc = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Invalidation-cached sessions (§6i)                                  *)
(* ------------------------------------------------------------------ *)

let test_session_cache_invalidated_by_watch () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let writer = Cluster.connected_client ~replica:0 cluster () in
      ignore (ok "init" (Client.create_node writer "/cfg" "v0") : string);
      let s =
        Session.wrap ~cache:true ~sim ~replicas:[ 1 ]
          (Cluster.connected_client ~replica:1 cluster ())
      in
      Proc.sleep sim (Sim_time.ms 50);
      let d0, _ = ok "miss fills" (Session.cached_get_data s "/cfg") in
      Alcotest.(check string) "first read fetched" "v0" d0;
      let d1, _ = ok "hit" (Session.cached_get_data s "/cfg") in
      Alcotest.(check string) "second read cached" "v0" d1;
      let cs = Session.cache_stats s in
      Alcotest.(check int) "one miss" 1 cs.Session.misses;
      Alcotest.(check int) "one hit" 1 cs.Session.hits;
      (* a remote write must reach this session through the watch
         machinery and drop the entry — no polling, no TTL *)
      ignore (ok "update" (Client.set_data writer "/cfg" "v1") : int);
      Proc.sleep sim (Sim_time.ms 200);
      Alcotest.(check int) "watch invalidated the entry" 1
        (Session.cache_stats s).Session.invalidations;
      let d2, _ = ok "refetch" (Session.cached_get_data s "/cfg") in
      Alcotest.(check string) "fresh after invalidation" "v1" d2;
      Alcotest.(check int) "refetch was a miss" 2
        (Session.cache_stats s).Session.misses)

let test_session_sync_flushes_cache () =
  in_cluster (fun cluster ->
      let sim = Cluster.sim cluster in
      let writer = Cluster.connected_client ~replica:0 cluster () in
      ignore (ok "init" (Client.create_node writer "/k" "a") : string);
      let s =
        Session.wrap ~cache:true ~sim ~replicas:[ 2 ]
          (Cluster.connected_client ~replica:2 cluster ())
      in
      Proc.sleep sim (Sim_time.ms 50);
      let d0, _ = ok "warm" (Session.cached_get_data s "/k") in
      Alcotest.(check string) "warm read" "a" d0;
      ignore (ok "update" (Client.set_data writer "/k" "b") : int);
      (* do NOT wait for the watch: sync must flush the cache and wait for
         the replica to catch up past the write just acknowledged *)
      ok "sync" (Session.sync s);
      Alcotest.(check bool) "sync flushed the cache" true
        ((Session.cache_stats s).Session.flushes >= 1);
      let d1, _ = ok "read-your-writes" (Session.cached_get_data s "/k") in
      Alcotest.(check string) "barrier read sees the write" "b" d1)

let () =
  Alcotest.run "edc_zookeeper"
    [
      ( "session cache",
        [
          Alcotest.test_case "watch invalidates cached read" `Quick
            test_session_cache_invalidated_by_watch;
          Alcotest.test_case "sync is a read-your-writes barrier" `Quick
            test_session_sync_flushes_cache;
        ] );
      ( "zpath",
        [
          Alcotest.test_case "validity" `Quick test_path_validity;
          Alcotest.test_case "algebra" `Quick test_path_algebra;
          qc prop_path_parent_child;
        ] );
      ( "data_tree",
        [
          Alcotest.test_case "create/get" `Quick test_tree_create_get;
          Alcotest.test_case "delete" `Quick test_tree_delete;
          Alcotest.test_case "cversion" `Quick test_tree_cversion_counts_child_ops;
          Alcotest.test_case "ephemeral index" `Quick test_tree_ephemeral_index;
          Alcotest.test_case "anomaly detection" `Quick test_tree_anomaly_detection;
          Alcotest.test_case "children with data" `Quick test_tree_children_with_data;
          Alcotest.test_case "snapshot isolation" `Quick test_tree_snapshot_isolation;
        ] );
      ( "spec_view",
        [
          Alcotest.test_case "cas conflict" `Quick test_spec_cas_conflict;
          Alcotest.test_case "read speculative writes" `Quick
            test_spec_read_your_speculative_writes;
          Alcotest.test_case "sequential names" `Quick test_spec_sequential_names;
          Alcotest.test_case "delete then create" `Quick test_spec_delete_then_create;
          Alcotest.test_case "czxid alignment" `Quick test_spec_czxid_tracks_tree;
          Alcotest.test_case "session ephemerals" `Quick test_spec_ephemerals_of_session;
        ] );
      ( "watch_manager",
        [
          Alcotest.test_case "one-shot" `Quick test_watch_one_shot;
          Alcotest.test_case "drop session" `Quick test_watch_drop_session;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "basic crud" `Quick test_cluster_basic_crud;
          Alcotest.test_case "read at backup" `Quick test_cluster_reads_from_any_replica;
          Alcotest.test_case "cas contention" `Quick test_cluster_cas_under_contention;
          Alcotest.test_case "sequential nodes" `Quick
            test_cluster_sequential_unique_ordered;
          Alcotest.test_case "watch fires" `Quick test_cluster_watch_fires_on_change;
          Alcotest.test_case "watch one-shot" `Quick
            test_cluster_watch_one_shot_delivery;
          Alcotest.test_case "watch not lost" `Quick
            test_cluster_watch_not_lost_across_write;
          Alcotest.test_case "watch order" `Quick
            test_cluster_watch_order_follows_txn_order;
          Alcotest.test_case "block unblocks" `Quick test_cluster_block_unblocks_on_create;
          Alcotest.test_case "ephemeral cleanup" `Quick
            test_cluster_ephemeral_cleanup_on_close;
          Alcotest.test_case "session expiry" `Quick
            test_cluster_session_expiry_deletes_ephemerals;
          Alcotest.test_case "leader failover" `Quick
            test_cluster_leader_failover_write_resumes;
          Alcotest.test_case "client reconnect" `Quick
            test_cluster_client_reconnects_after_replica_crash;
          Alcotest.test_case "snapshot state transfer" `Quick
            test_cluster_snapshot_state_transfer;
          Alcotest.test_case "deterministic" `Quick test_cluster_deterministic;
        ] );
    ]
