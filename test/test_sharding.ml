(* Tests for the sharded deployment (§6j): the shard map and routing tier,
   extension-program classification, the cross-shard atomicity checker,
   and end-to-end 2PC through a multi-group simulated deployment. *)

open Edc_simnet
open Edc_zookeeper
open Edc_sharding
module P = Protocol
module Two_pc = Edc_replication.Two_pc
module Subscription = Edc_core.Subscription
module Ast = Edc_core.Ast
module Program = Edc_core.Program
module Atomicity = Edc_checker.Atomicity

let qc = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)
(* ------------------------------------------------------------------ *)

let test_map_basics () =
  let map = Shard_map.v 4 in
  Alcotest.(check string) "first component" "/app"
    (Shard_map.first_component "/app/x/y");
  Alcotest.(check string) "root" "/" (Shard_map.first_component "/");
  let s = Shard_map.route map "/app/x" in
  Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
  Alcotest.(check int) "same subtree, same shard" s
    (Shard_map.route map "/app/deeper/object");
  Alcotest.(check int) "deterministic" s (Shard_map.route map "/app/x")

let test_map_rules () =
  let map =
    Shard_map.v ~rules:[ { Shard_map.prefix = "/pinned"; shard = 3 } ] 4
  in
  Alcotest.(check int) "rule wins" 3 (Shard_map.route map "/pinned/x");
  Alcotest.(check int) "rule matches whole component only" 3
    (Shard_map.route map "/pinned");
  Alcotest.(check bool) "no false prefix match" true
    (Shard_map.route map "/pinnedmore" = Shard_map.route map "/pinnedmore")

let test_map_wire_roundtrip () =
  let map =
    Shard_map.v ~version:7
      ~rules:
        [
          { Shard_map.prefix = "/a"; shard = 1 };
          { Shard_map.prefix = "/b/c"; shard = 0 };
        ]
      2
  in
  match Shard_map.decode (Shard_map.encode map) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok map' ->
      Alcotest.(check int) "version" 7 (Shard_map.version map');
      Alcotest.(check int) "shards" 2 (Shard_map.n_shards map');
      Alcotest.(check int) "rules survive" 1 (Shard_map.route map' "/a/x");
      Alcotest.(check int) "rules survive 2" 0 (Shard_map.route map' "/b/c")

let test_map_rejects () =
  List.iter
    (fun bytes ->
      match Shard_map.decode bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed map %S" bytes)
    [ ""; "garbage"; Edc_wire.Wire.(encode (Int 3)) ];
  (* out-of-range rule shard *)
  let bad =
    Edc_wire.Wire.(
      encode
        (List
           [ Int 1; Int 2; List [ List [ Str "/a"; Int 9 ] ] ]))
  in
  match Shard_map.decode bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted rule pointing past n_shards"

(* Satellite property: any subscriber whose pattern can match a path
   routed to shard S is itself resolvable on S — or flagged cross-shard.
   This is what lets the manager keep single-shard extensions local
   without ever missing a matching operation on another shard. *)
let prop_pattern_routing =
  let gen =
    QCheck.Gen.(
      let component = map (fun c -> String.make 1 c) (char_range 'a' 'f') in
      let path =
        map
          (fun parts -> "/" ^ String.concat "/" parts)
          (list_size (int_range 1 4) component)
      in
      let* p = path in
      let* n_shards = int_range 1 8 in
      let* pat =
        oneof
          [
            return (Subscription.Exact p);
            (* an ancestor's Under-pattern also matches p *)
            (let* k = int_range 0 (String.length p - 1) in
             let cut =
               match String.rindex_from_opt p k '/' with
               | Some 0 | None -> "/"
               | Some i -> String.sub p 0 i
             in
             return (Subscription.Under cut));
            (let* k = int_range 1 (String.length p) in
             return (Subscription.Starts_with (String.sub p 0 k)));
            return Subscription.Any_oid;
          ]
      in
      return (p, pat, n_shards))
  in
  QCheck.Test.make ~name:"matching subscribers resolve to the path's shard"
    ~count:500
    (QCheck.make gen)
    (fun (p, pat, n_shards) ->
      let map = Shard_map.v n_shards in
      QCheck.assume (Subscription.oid_matches pat p);
      let s = Shard_map.route map p in
      match Shard_map.shards_of_pattern map pat with
      | `Shard s' -> s' = s
      | `Cross shards -> List.mem s shards)

(* ------------------------------------------------------------------ *)
(* Program classification                                              *)
(* ------------------------------------------------------------------ *)

let map2 =
  Shard_map.v
    ~rules:
      [
        { Shard_map.prefix = "/s0"; shard = 0 };
        { Shard_map.prefix = "/s1"; shard = 1 };
      ]
    2

let sub pattern =
  { Subscription.op_kinds = [ Subscription.K_create ]; op_oid = pattern }

let test_classify_single_shard () =
  (* writes to the matched oid's subtree plus a literal on the same
     shard: runs unchanged on group 0 *)
  let p =
    Program.make "local"
      ~op_subs:[ sub (Subscription.Under "/s0/queue") ]
      ~on_operation:
        [
          Ast.Do
            (Ast.Svc
               ( Ast.Svc_create,
                 [
                   Ast.Binop (Ast.Concat, Ast.Param "oid", Ast.Str_lit "/item");
                   Ast.Str_lit "";
                 ] ));
          Ast.Do (Ast.Svc (Ast.Svc_read, [ Ast.Str_lit "/s0/config" ]));
        ]
      ()
  in
  match Router.classify_program map2 p with
  | `Single 0 -> ()
  | `Single s -> Alcotest.failf "wrong shard %d" s
  | `Cross _ -> Alcotest.fail "flagged cross-shard"

let test_classify_cross_shard () =
  (* subscription on shard 0, literal write on shard 1: flagged *)
  let p =
    Program.make "crossing"
      ~op_subs:[ sub (Subscription.Under "/s0/queue") ]
      ~on_operation:
        [ Ast.Do (Ast.Svc (Ast.Svc_create, [ Ast.Str_lit "/s1/log"; Ast.Str_lit "" ])) ]
      ()
  in
  (match Router.classify_program map2 p with
  | `Cross _ -> ()
  | `Single s -> Alcotest.failf "admitted as single-shard %d" s);
  (* unresolvable target: conservatively cross *)
  let q =
    Program.make "opaque"
      ~op_subs:[ sub (Subscription.Under "/s0/queue") ]
      ~on_operation:
        [ Ast.Do (Ast.Svc (Ast.Svc_delete, [ Ast.Var "x" ])) ]
      ()
  in
  match Router.classify_program map2 q with
  | `Cross _ -> ()
  | `Single _ -> Alcotest.fail "opaque target admitted"

(* ------------------------------------------------------------------ *)
(* Atomicity checker                                                   *)
(* ------------------------------------------------------------------ *)

let test_atomicity_agreement () =
  let audits =
    [
      (0, 0, [ ("t1", true); ("t2", false) ]);
      (0, 1, [ ("t1", true); ("t2", false) ]);
      (1, 0, [ ("t1", true) ]);
    ]
  in
  Alcotest.(check int) "clean history accepted" 0
    (List.length (Atomicity.check ~audits ()));
  Alcotest.(check int) "resolved count" 2 (Atomicity.resolved_count ~audits)

let test_atomicity_divergence () =
  let audits = [ (0, 0, [ ("t1", true) ]); (1, 0, [ ("t1", false) ]) ] in
  match Atomicity.check ~audits () with
  | [ Atomicity.Divergent { txid = "t1"; _ } ] -> ()
  | vs -> Alcotest.failf "expected one divergence, got %d" (List.length vs)

let test_atomicity_residuals () =
  let audits = [ (0, 0, []) ] in
  let vs =
    Atomicity.check ~audits
      ~prepared:[ (1, 0, "t9", 0) ]
      ~locks:[ (1, 0, "/s1/x", "t9") ]
      ()
  in
  Alcotest.(check int) "stuck txn + residual lock" 2 (List.length vs)

let test_atomicity_duplicate () =
  let audits = [ (0, 0, [ ("t1", true); ("t1", true) ]) ] in
  match Atomicity.check ~audits () with
  | [ Atomicity.Duplicate_resolution _ ] -> ()
  | _ -> Alcotest.fail "expected duplicate-resolution violation"

(* ------------------------------------------------------------------ *)
(* End-to-end through a sharded deployment                             *)
(* ------------------------------------------------------------------ *)

let in_shard_cluster ?(seed = 7) ?(n_groups = 2) ?(horizon = Sim_time.sec 60) f
    =
  let sim = Sim.create ~seed () in
  let rules =
    List.init n_groups (fun i ->
        { Shard_map.prefix = Fmt.str "/s%d" i; shard = i })
  in
  let map = Shard_map.v ~rules n_groups in
  let cluster = Shard_cluster.create ~map sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f cluster with e -> failure := Some e);
  Sim.run ~until:horizon sim;
  (match !failure with Some e -> raise e | None -> ());
  (* quiesced: the deployment-wide atomicity invariant must hold *)
  let vs =
    Atomicity.check
      ~audits:(Shard_cluster.audits cluster)
      ~prepared:(Shard_cluster.residual_prepared cluster)
      ~locks:(Shard_cluster.residual_locks cluster)
      ()
  in
  if vs <> [] then
    Alcotest.failf "atomicity violations: %a"
      Fmt.(list ~sep:semi Atomicity.pp_violation)
      vs

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Zerror.pp e

let shard_has cluster shard path =
  Array.for_all
    (fun server -> Data_tree.mem (Server.tree server) path)
    (Shard_cluster.servers cluster shard)

let test_routing_end_to_end () =
  in_shard_cluster (fun cluster ->
      let s = Shard_session.connect cluster in
      ignore (ok "create s0" (Shard_session.create_node s "/s0" "zero"));
      ignore (ok "create s1" (Shard_session.create_node s "/s1" "one"));
      let d0, _ = ok "read s0" (Shard_session.get_data s "/s0") in
      let d1, _ = ok "read s1" (Shard_session.get_data s "/s1") in
      Alcotest.(check string) "routed to shard 0" "zero" d0;
      Alcotest.(check string) "routed to shard 1" "one" d1;
      ok "sync all shards" (Shard_session.sync s);
      Alcotest.(check bool) "/s0 lives only on group 0" true
        (shard_has cluster 0 "/s0" && not (shard_has cluster 1 "/s0"));
      Alcotest.(check bool) "/s1 lives only on group 1" true
        (shard_has cluster 1 "/s1" && not (shard_has cluster 0 "/s1")))

let test_local_multi_atomic () =
  in_shard_cluster (fun cluster ->
      let s = Shard_session.connect cluster in
      ignore (ok "root" (Shard_session.create_node s "/s0" ""));
      ok "single-shard multi"
        (Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/a"; data = "1" };
             Two_pc.Wcreate { path = "/s0/b"; data = "2" };
           ]);
      let d, _ = ok "read" (Shard_session.get_data s "/s0/a") in
      Alcotest.(check string) "applied" "1" d;
      (* all-or-nothing: second op invalid, first must not apply *)
      (match
         Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/c"; data = "3" };
             Two_pc.Wcreate { path = "/s0/missing/deep"; data = "x" };
           ]
       with
      | Ok () -> Alcotest.fail "invalid multi accepted"
      | Error _ -> ());
      match Shard_session.exists s "/s0/c" with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "partial multi applied"
      | Error e -> Alcotest.failf "exists: %a" Zerror.pp e)

let test_cross_shard_commit () =
  in_shard_cluster (fun cluster ->
      let s = Shard_session.connect cluster in
      ignore (ok "root0" (Shard_session.create_node s "/s0" ""));
      ignore (ok "root1" (Shard_session.create_node s "/s1" ""));
      ok "cross-shard multi"
        (Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/x"; data = "left" };
             Two_pc.Wcreate { path = "/s1/y"; data = "right" };
           ]);
      (* let the commit pushes drain, then check both sides *)
      Proc.sleep (Shard_cluster.sim cluster) (Sim_time.sec 2);
      ok "sync" (Shard_session.sync s);
      let d0, _ = ok "left" (Shard_session.get_data s "/s0/x") in
      let d1, _ = ok "right" (Shard_session.get_data s "/s1/y") in
      Alcotest.(check string) "left applied" "left" d0;
      Alcotest.(check string) "right applied" "right" d1;
      (* every replica of both groups resolved the same transaction *)
      let audits = Shard_cluster.audits cluster in
      Alcotest.(check int) "one txn resolved" 1
        (Atomicity.resolved_count ~audits);
      List.iter
        (fun (_, _, outs) ->
          Alcotest.(check int) "each replica resolved once" 1
            (List.length outs);
          Alcotest.(check bool) "as commit" true (snd (List.hd outs)))
        audits)

let test_cross_shard_abort () =
  in_shard_cluster (fun cluster ->
      let s = Shard_session.connect cluster in
      ignore (ok "root0" (Shard_session.create_node s "/s0" ""));
      ignore (ok "root1" (Shard_session.create_node s "/s1" ""));
      (* /s1 side is invalid (missing parent): the whole transaction must
         abort, leaving no trace on /s0 *)
      (match
         Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/x"; data = "left" };
             Two_pc.Wcreate { path = "/s1/missing/deep"; data = "right" };
           ]
       with
      | Ok () -> Alcotest.fail "invalid cross-shard multi accepted"
      | Error _ -> ());
      Proc.sleep (Shard_cluster.sim cluster) (Sim_time.sec 4);
      ok "sync" (Shard_session.sync s);
      (match Shard_session.exists s "/s0/x" with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "aborted txn left /s0/x behind"
      | Error e -> Alcotest.failf "exists: %a" Zerror.pp e);
      Alcotest.(check (list (pair string string))) "no residual locks" []
        (List.map
           (fun (_, _, path, txid) -> (path, txid))
           (Shard_cluster.residual_locks cluster)))

let test_concurrent_cross_shard () =
  in_shard_cluster ~n_groups:4 ~horizon:(Sim_time.sec 200) (fun cluster ->
      let sim = Shard_cluster.sim cluster in
      let s = Shard_session.connect cluster in
      for i = 0 to 3 do
        ignore (ok "root" (Shard_session.create_node s (Fmt.str "/s%d" i) ""))
      done;
      (* several sessions race cross-shard multis over the same groups;
         contending transactions abort cleanly ([Txn_conflict]/[Locked],
         the 2PC lock footprints collide on the shard roots) and are
         retried with per-worker backoff *)
      let done_count = ref 0 in
      let failures = ref [] in
      for w = 0 to 5 do
        Proc.spawn sim (fun () ->
            let rng = Rng.split (Sim.rng sim) in
            Proc.sleep sim (Sim_time.ms (37 * w));
            let sw = Shard_session.connect cluster in
            for i = 0 to 4 do
              let a = (w + i) mod 4 and b = (w + i + 1) mod 4 in
              let ops =
                [
                  Two_pc.Wcreate
                    { path = Fmt.str "/s%d/w%d-%d" a w i; data = "" };
                  Two_pc.Wcreate
                    { path = Fmt.str "/s%d/w%d-%d'" b w i; data = "" };
                ]
              in
              let rec attempt tries =
                match Shard_session.multi sw ops with
                | Ok () -> incr done_count
                | Error (Zerror.Txn_conflict | Zerror.Locked)
                  when tries < 60 ->
                    (* randomized backoff: conflicting rounds otherwise
                       stay phase-locked in the deterministic simulation *)
                    Proc.sleep sim
                      (Sim_time.ms (20 + Rng.int rng (40 * (tries + 1))));
                    attempt (tries + 1)
                | Error e -> failures := e :: !failures
              in
              attempt 0
            done)
      done;
      Proc.sleep sim (Sim_time.sec 90);
      (* with clean aborts and retries everything eventually commits *)
      if !failures <> [] then
        Alcotest.failf "hard failures: %a"
          Fmt.(list ~sep:comma Zerror.pp)
          !failures;
      Alcotest.(check int) "all committed" 30 !done_count)

let () =
  Alcotest.run "edc_sharding"
    [
      ( "shard_map",
        [
          Alcotest.test_case "basics" `Quick test_map_basics;
          Alcotest.test_case "placement rules" `Quick test_map_rules;
          Alcotest.test_case "wire roundtrip" `Quick test_map_wire_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_map_rejects;
          qc prop_pattern_routing;
        ] );
      ( "classification",
        [
          Alcotest.test_case "single-shard program admitted" `Quick
            test_classify_single_shard;
          Alcotest.test_case "cross-shard program flagged" `Quick
            test_classify_cross_shard;
        ] );
      ( "atomicity checker",
        [
          Alcotest.test_case "agreement accepted" `Quick
            test_atomicity_agreement;
          Alcotest.test_case "divergence caught" `Quick
            test_atomicity_divergence;
          Alcotest.test_case "residual state caught" `Quick
            test_atomicity_residuals;
          Alcotest.test_case "duplicate resolution caught" `Quick
            test_atomicity_duplicate;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "routing end to end" `Quick
            test_routing_end_to_end;
          Alcotest.test_case "single-shard multi is atomic" `Quick
            test_local_multi_atomic;
          Alcotest.test_case "cross-shard commit" `Quick
            test_cross_shard_commit;
          Alcotest.test_case "cross-shard abort" `Quick test_cross_shard_abort;
          Alcotest.test_case "concurrent cross-shard traffic" `Quick
            test_concurrent_cross_shard;
        ] );
    ]
