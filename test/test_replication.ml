(* Tests for the replication substrates: Zab-like primary-backup broadcast
   and PBFT-like BFT state machine replication. *)

open Edc_simnet
open Edc_replication

(* ------------------------------------------------------------------ *)
(* Zab harness                                                         *)
(* ------------------------------------------------------------------ *)

type zab_cluster = {
  zsim : Sim.t;
  znet : string Zab.msg Net.t;
  zreplicas : string Zab.t array;
  zdelivered : (Zab.zxid * string) list array;  (* newest first *)
}

let make_zab_cluster ?(n = 3) ?(seed = 1) ?zab_config () =
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let peers = List.init n Fun.id in
  let delivered = Array.make n [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Zab.msg_size ~payload_size:String.length msg)
      msg
  in
  let replicas =
    Array.init n (fun i ->
        Zab.create ?config:zab_config ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p ->
            delivered.(i) <- (zxid, p) :: delivered.(i))
          ~initial_leader:0 ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      Zab.start r)
    replicas;
  { zsim = sim; znet = net; zreplicas = replicas; zdelivered = delivered }

(* Toy payload-history codec for state-transfer tests. *)
let hist_encode (hist : (Zab.zxid * string) list) =
  Edc_wire.Wire.encode
    (Edc_wire.Wire.List
       (List.map
          (fun ((z : Zab.zxid), s) ->
            Edc_wire.Wire.(List [ Int z.epoch; Int z.counter; Str s ]))
          hist))

let hist_decode blob : ((Zab.zxid * string) list, string) result =
  Result.bind (Edc_wire.Wire.decode blob) (fun w ->
      Edc_wire.Wire.map_list
        (function
          | Edc_wire.Wire.List
              [ Edc_wire.Wire.Int epoch; Edc_wire.Wire.Int counter;
                Edc_wire.Wire.Str s ] ->
              Ok ({ Zab.epoch; counter }, s)
          | _ -> Error "bad history entry")
        w)

let zab_log c i = List.rev_map snd c.zdelivered.(i)

let crash_zab c i =
  Zab.crash c.zreplicas.(i);
  Net.set_node_down c.znet i

let run_for c d = Sim.run ~until:(Sim_time.add (Sim.now c.zsim) d) c.zsim

(* ------------------------------------------------------------------ *)
(* Zab tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_zab_basic_agreement () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  for k = 1 to 10 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "op%d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  let expected = List.init 10 (fun k -> Printf.sprintf "op%d" (k + 1)) in
  for i = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d delivered all in order" i)
      expected (zab_log c i)
  done

let test_zab_propose_on_follower_fails () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  Alcotest.(check bool) "follower refuses" true
    (Zab.propose c.zreplicas.(1) "x" = None);
  Alcotest.(check bool) "leader accepts" true
    (Zab.propose c.zreplicas.(0) "x" <> None)

let test_zab_zxids_are_monotonic () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  for k = 1 to 5 do
    ignore (Zab.propose c.zreplicas.(0) (string_of_int k) : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  let zxids = List.rev_map fst c.zdelivered.(1) in
  let sorted = List.sort Zab.zxid_compare zxids in
  Alcotest.(check bool) "delivered in zxid order" true (zxids = sorted)

let test_zab_leader_failover () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  for k = 1 to 5 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "a%d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  crash_zab c 0;
  run_for c (Sim_time.sec 2);
  (* one of the survivors must now lead *)
  let leaders =
    List.filter (fun i -> Zab.is_leader c.zreplicas.(i)) [ 1; 2 ]
  in
  Alcotest.(check int) "exactly one new leader" 1 (List.length leaders);
  let leader = List.hd leaders in
  (* committed entries survived *)
  let expected = List.init 5 (fun k -> Printf.sprintf "a%d" (k + 1)) in
  Alcotest.(check (list string)) "committed ops survive failover" expected
    (zab_log c leader);
  (* and the new leader can make progress *)
  for k = 1 to 5 do
    ignore
      (Zab.propose c.zreplicas.(leader) (Printf.sprintf "b%d" k)
        : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  let expected2 = expected @ List.init 5 (fun k -> Printf.sprintf "b%d" (k + 1)) in
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d converged" i)
        expected2 (zab_log c i))
    [ 1; 2 ]

let test_zab_follower_restart_catches_up () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  ignore (Zab.propose c.zreplicas.(0) "one" : Zab.zxid option);
  run_for c (Sim_time.ms 500);
  crash_zab c 2;
  ignore (Zab.propose c.zreplicas.(0) "two" : Zab.zxid option);
  ignore (Zab.propose c.zreplicas.(0) "three" : Zab.zxid option);
  run_for c (Sim_time.sec 1);
  Alcotest.(check (list string)) "lagging replica missed ops" [ "one" ]
    (zab_log c 2);
  Net.set_node_up c.znet 2;
  Zab.restart c.zreplicas.(2);
  run_for c (Sim_time.sec 1);
  Alcotest.(check (list string)) "caught up after restart"
    [ "one"; "two"; "three" ] (zab_log c 2)

let test_zab_no_commit_without_quorum () =
  let c = make_zab_cluster () in
  run_for c (Sim_time.ms 10);
  crash_zab c 1;
  crash_zab c 2;
  ignore (Zab.propose c.zreplicas.(0) "lonely" : Zab.zxid option);
  run_for c (Sim_time.sec 2);
  Alcotest.(check (list string)) "no delivery without quorum" []
    (zab_log c 0)

let test_zab_single_replica_ensemble () =
  let c = make_zab_cluster ~n:1 () in
  run_for c (Sim_time.ms 10);
  ignore (Zab.propose c.zreplicas.(0) "solo" : Zab.zxid option);
  run_for c (Sim_time.ms 100);
  Alcotest.(check (list string)) "self-quorum commits" [ "solo" ] (zab_log c 0)

let test_zab_snapshot_recovery () =
  (* the app state is the delivered list; snapshots marshal it.  A
     follower that missed everything before the leader compacted must
     recover through the chunked state transfer, ending with identical
     app state. *)
  let c = make_zab_cluster () in
  let app_state = Array.map (fun l -> ref (List.rev l)) c.zdelivered in
  ignore app_state;
  run_for c (Sim_time.ms 10);
  crash_zab c 2;
  for k = 1 to 40 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "s%02d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  (* compact the survivors: blob = their delivered history *)
  List.iter
    (fun i ->
      (* capture now, serialize only if a transfer asks *)
      Zab.compact c.zreplicas.(i) ~take:(fun () ->
          let hist = c.zdelivered.(i) in
          fun () -> hist_encode hist))
    [ 0; 1 ];
  Alcotest.(check bool) "leader log compacted" true
    (Zab.compaction_base c.zreplicas.(0) > 0);
  (* the restarting follower installs the snapshot into its app state *)
  Zab.set_install_snapshot c.zreplicas.(2) (fun blob ->
      Result.map (fun h -> c.zdelivered.(2) <- h) (hist_decode blob));
  Net.set_node_up c.znet 2;
  Zab.restart c.zreplicas.(2);
  run_for c (Sim_time.sec 2);
  ignore (Zab.propose c.zreplicas.(0) "after" : Zab.zxid option);
  run_for c (Sim_time.sec 1);
  let expected =
    List.init 40 (fun k -> Printf.sprintf "s%02d" (k + 1)) @ [ "after" ]
  in
  for i = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d app state complete" i)
      expected (zab_log c i)
  done

let test_zab_deterministic_runs () =
  let run () =
    let c = make_zab_cluster ~seed:99 () in
    run_for c (Sim_time.ms 10);
    for k = 1 to 20 do
      ignore (Zab.propose c.zreplicas.(0) (string_of_int k) : Zab.zxid option)
    done;
    run_for c (Sim_time.sec 1);
    (Sim.now c.zsim, zab_log c 1, Net.total_bytes_sent c.znet)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let prop_zab_prefix_agreement =
  QCheck.Test.make ~name:"zab replicas deliver identical sequences"
    ~count:20
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, nops) ->
      let c = make_zab_cluster ~seed () in
      Sim.run ~until:(Sim_time.ms 10) c.zsim;
      for k = 1 to nops do
        ignore (Zab.propose c.zreplicas.(0) (string_of_int k) : Zab.zxid option)
      done;
      Sim.run ~until:(Sim_time.sec 2) c.zsim;
      let l0 = zab_log c 0 and l1 = zab_log c 1 and l2 = zab_log c 2 in
      List.length l0 = nops && l0 = l1 && l1 = l2)

(* ------------------------------------------------------------------ *)
(* Zab membership reconfiguration                                      *)
(* ------------------------------------------------------------------ *)

(* A cluster with spare replica slots: ids [>= voters] boot as non-voting
   learners (registered on the net at creation, started by the test when
   they should announce themselves) and join through the replicated
   config. *)
let make_elastic_cluster ?(seed = 11) ?zab_config ~voters ~slots () =
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let delivered = Array.make slots [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Zab.msg_size ~payload_size:String.length msg)
      msg
  in
  let voter_peers = List.init voters Fun.id in
  let replicas =
    Array.init slots (fun i ->
        let learner = i >= voters in
        let peers = if learner then voter_peers @ [ i ] else voter_peers in
        Zab.create ?config:zab_config ~learner
          ?initial_leader:(if learner then None else Some 0)
          ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p ->
            delivered.(i) <- (zxid, p) :: delivered.(i))
          ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      if i < voters then Zab.start r)
    replicas;
  { zsim = sim; znet = net; zreplicas = replicas; zdelivered = delivered }

(* Step the simulator in fine increments until [pred] holds, so a test can
   catch a protocol state that only exists for a fraction of a network
   round trip (e.g. "joint entry committed, final entry not yet"). *)
let run_until c ~timeout pred =
  let deadline = Sim_time.add (Sim.now c.zsim) timeout in
  let step = Sim_time.us 50 in
  let rec go () =
    if pred () then true
    else if Sim_time.compare (Sim.now c.zsim) deadline >= 0 then false
    else begin
      Sim.run ~until:(Sim_time.add (Sim.now c.zsim) step) c.zsim;
      go ()
    end
  in
  go ()

(* The tentpole race: the leader dies after the joint entry commits but
   before the final entry does.  The new leader must inherit the joint
   phase (elected by majorities of BOTH sets), re-propose the final entry,
   and finish the join without losing anything committed. *)
let test_zab_leader_killed_between_joint_and_final () =
  let c = make_elastic_cluster ~voters:3 ~slots:4 () in
  run_for c (Sim_time.ms 10);
  for k = 1 to 5 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "a%d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.ms 300);
  let expected = List.init 5 (fun k -> Printf.sprintf "a%d" (k + 1)) in
  Alcotest.(check (list string)) "prefix committed before reconfig" expected
    (zab_log c 0);
  (* the learner announces itself; the leader bootstraps and promotes it *)
  Zab.start c.zreplicas.(3);
  let r0 = c.zreplicas.(0) in
  let in_window () =
    (Zab.reconfig_stats r0).Zab.joint_commits >= 1
    && (Zab.reconfig_stats r0).Zab.finals_committed = 0
  in
  Alcotest.(check bool) "caught the joint->final window" true
    (run_until c ~timeout:(Sim_time.sec 5) in_window);
  (* the leader's own view is already [Stable c_new] — configs apply at
     append time, and it appended the final when proposing it — but the
     followers have not seen the final yet: the ensemble is mid-transition *)
  Alcotest.(check bool) "followers are mid-transition" true
    (match Zab.membership c.zreplicas.(1) with
    | Zab.Joint _ -> true
    | Zab.Stable _ -> false);
  crash_zab c 0;
  let finished () =
    List.for_all
      (fun i -> Zab.membership c.zreplicas.(i) = Zab.Stable [ 0; 1; 2; 3 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "survivors finish the join" true
    (run_until c ~timeout:(Sim_time.sec 10) finished);
  (* no committed entry was lost across the config boundary *)
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d kept the committed prefix" i)
        expected (zab_log c i))
    [ 1; 2; 3 ];
  (* the grown ensemble makes progress under its new leader *)
  Alcotest.(check bool) "a survivor leads the grown ensemble" true
    (run_until c ~timeout:(Sim_time.sec 5) (fun () ->
         List.exists (fun i -> Zab.is_leader c.zreplicas.(i)) [ 1; 2; 3 ]));
  let leader =
    List.find (fun i -> Zab.is_leader c.zreplicas.(i)) [ 1; 2; 3 ]
  in
  for k = 1 to 3 do
    ignore
      (Zab.propose c.zreplicas.(leader) (Printf.sprintf "b%d" k)
        : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  let expected2 = expected @ List.init 3 (fun k -> Printf.sprintf "b%d" (k + 1)) in
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d converged post-join" i)
        expected2 (zab_log c i))
    [ 1; 2; 3 ];
  (* the crashed ex-leader rejoins the grown config as a follower *)
  Net.set_node_up c.znet 0;
  Zab.restart r0;
  run_for c (Sim_time.sec 2);
  Alcotest.(check bool) "ex-leader adopted the new config" true
    (Zab.membership r0 = Zab.Stable [ 0; 1; 2; 3 ]);
  Alcotest.(check (list string)) "ex-leader caught up" expected2 (zab_log c 0)

(* Mutation test for the joint phase itself.  A multi-server shrink
   {0..4} -> {0,1} has disjoint majorities ({0,1} vs {2,3,4}); with
   [unsafe_single_step_reconfig] the config applies as [Stable c_new]
   immediately, so the cut-off leader commits client ops with acks from
   {0,1} alone while {2,3,4} elect their own leader — two "committed"
   histories, one of which must be thrown away.  The default joint phase
   blocks the commit (it still needs a majority of c_old) and the same
   orchestration loses nothing. *)
let reconfig_disjoint_quorum_scenario ~single_step =
  let zab_config =
    { Zab.default_config with unsafe_single_step_reconfig = single_step }
  in
  let c = make_elastic_cluster ~zab_config ~voters:3 ~slots:5 () in
  run_for c (Sim_time.ms 10);
  for k = 1 to 3 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "a%d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.ms 200);
  (* grow to five voters through the normal learner path *)
  Zab.start c.zreplicas.(3);
  Zab.start c.zreplicas.(4);
  let grown () =
    List.for_all
      (fun i ->
        Zab.membership c.zreplicas.(i) = Zab.Stable [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  if not (run_until c ~timeout:(Sim_time.sec 10) grown) then
    Alcotest.fail "growth to 5 voters did not converge";
  (* isolate the leader with only replica 1, then shrink to {0,1}: the
     joint entry reaches 1 but never a majority of c_old *)
  List.iter (fun o -> Net.cut_link c.znet 0 o) [ 2; 3; 4 ];
  Alcotest.(check (result unit string)) "shrink accepted" (Ok ())
    (Zab.reconfigure c.zreplicas.(0) ~c_new:[ 0; 1 ]);
  ignore (Zab.propose c.zreplicas.(0) "x1" : Zab.zxid option);
  (* let the majority side elect its own leader and move the history on *)
  let other_leader () =
    List.exists (fun i -> Zab.is_leader c.zreplicas.(i)) [ 2; 3; 4 ]
  in
  if not (run_until c ~timeout:(Sim_time.sec 10) other_leader) then
    Alcotest.fail "majority side never elected a leader";
  let leader = List.find (fun i -> Zab.is_leader c.zreplicas.(i)) [ 2; 3; 4 ] in
  ignore (Zab.propose c.zreplicas.(leader) "y1" : Zab.zxid option);
  run_for c (Sim_time.sec 1);
  let x1_committed_on_0 = List.mem "x1" (zab_log c 0) in
  (* heal and converge: epoch supremacy decides which history survives *)
  List.iter (fun o -> Net.heal_link c.znet 0 o) [ 2; 3; 4 ];
  run_for c (Sim_time.sec 3);
  (x1_committed_on_0, zab_log c 0, zab_log c leader)

let test_zab_joint_phase_blocks_disjoint_quorums () =
  let x1_committed, log0, logl =
    reconfig_disjoint_quorum_scenario ~single_step:false
  in
  (* the joint phase refused to commit with a majority of c_new alone *)
  Alcotest.(check bool) "x1 never committed on the minority side" false
    x1_committed;
  Alcotest.(check (list string)) "histories converged without loss"
    [ "a1"; "a2"; "a3"; "y1" ] log0;
  Alcotest.(check (list string)) "leader log matches" log0 logl

let test_zab_single_step_reconfig_loses_committed_entry () =
  let x1_committed, log0, logl =
    reconfig_disjoint_quorum_scenario ~single_step:true
  in
  (* the bug: x1 was acked as committed on the minority side... *)
  Alcotest.(check bool) "single-step commits x1 with a c_new quorum" true
    x1_committed;
  (* ...but the surviving history (the {2,3,4} leader's, which wins on
     epoch) never contains it — a client-acknowledged write is gone, and
     the two replicas delivered divergent sequences.  Delivery is
     append-only, so x1 stays visible in 0's history as the evidence. *)
  Alcotest.(check bool) "x1 absent from the surviving history" false
    (List.mem "x1" logl);
  Alcotest.(check bool) "delivered histories diverged" true
    (List.mem "x1" log0 && not (List.mem "x1" logl))

(* ------------------------------------------------------------------ *)
(* Observers and leader leases (§6i)                                   *)
(* ------------------------------------------------------------------ *)

(* Voters [0, voters), learner slots next, observer slots last.  Only the
   voters are started; tests start learners/observers when the scenario
   calls for them. *)
let make_mixed_cluster ?(seed = 21) ?zab_config ~voters ~learners ~observers
    () =
  let slots = voters + learners + observers in
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let delivered = Array.make slots [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Zab.msg_size ~payload_size:String.length msg)
      msg
  in
  let voter_peers = List.init voters Fun.id in
  let replicas =
    Array.init slots (fun i ->
        let voter = i < voters in
        let observer = i >= voters + learners in
        let peers = if voter then voter_peers else voter_peers @ [ i ] in
        Zab.create ?config:zab_config ~learner:(not (voter || observer))
          ~observer
          ?initial_leader:(if voter then Some 0 else None)
          ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p ->
            delivered.(i) <- (zxid, p) :: delivered.(i))
          ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      if i < voters then Zab.start r)
    replicas;
  { zsim = sim; znet = net; zreplicas = replicas; zdelivered = delivered }

(* The observer exclusion invariant, end to end: across a 3 -> 5 -> 3
   reconfiguration, a leader crash election, and a quorum-starved commit
   attempt, the observer consumes every committed entry but never votes,
   never campaigns, never makes a no-vote promise, and never substitutes
   for a voter in any quorum. *)
let test_zab_observer_excluded_across_grow_shrink () =
  let c = make_mixed_cluster ~voters:3 ~learners:2 ~observers:1 () in
  let obs = c.zreplicas.(5) in
  let obs_roles = ref [] in
  Zab.set_on_role_change obs (fun r -> obs_roles := r :: !obs_roles);
  run_for c (Sim_time.ms 10);
  Zab.start obs;
  for k = 1 to 5 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "a%d" k) : Zab.zxid option)
  done;
  let expected = List.init 5 (fun k -> Printf.sprintf "a%d" (k + 1)) in
  Alcotest.(check bool) "observer consumed the commit stream" true
    (run_until c ~timeout:(Sim_time.sec 5) (fun () ->
         zab_log c 5 = expected));
  (* grow to five voters through the learner path; the observer stays out *)
  Zab.start c.zreplicas.(3);
  Zab.start c.zreplicas.(4);
  let grown () =
    List.for_all
      (fun i -> Zab.membership c.zreplicas.(i) = Zab.Stable [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "grew to 5 voters" true
    (run_until c ~timeout:(Sim_time.sec 10) grown);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d's member set excludes the observer" i)
        false
        (List.mem 5 (Zab.members c.zreplicas.(i))))
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "leader tracks the observer separately" [ 5 ]
    (Zab.observers c.zreplicas.(0));
  (* shrink back to three; the observer still rides the commit stream *)
  Alcotest.(check (result unit string)) "shrink accepted" (Ok ())
    (Zab.reconfigure c.zreplicas.(0) ~c_new:[ 0; 1; 2 ]);
  let shrunk () =
    List.for_all
      (fun i -> Zab.membership c.zreplicas.(i) = Zab.Stable [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "shrank to 3 voters" true
    (run_until c ~timeout:(Sim_time.sec 10) shrunk);
  (* leader crash: the two surviving voters elect; the observer must not
     participate, and must keep applying the new leader's commits *)
  crash_zab c 0;
  Alcotest.(check bool) "survivors elected without the observer" true
    (run_until c ~timeout:(Sim_time.sec 10) (fun () ->
         Zab.is_leader c.zreplicas.(1) || Zab.is_leader c.zreplicas.(2)));
  let leader = if Zab.is_leader c.zreplicas.(1) then 1 else 2 in
  ignore (Zab.propose c.zreplicas.(leader) "post" : Zab.zxid option);
  Alcotest.(check bool) "observer applied the new leader's commit" true
    (run_until c ~timeout:(Sim_time.sec 5) (fun () ->
         zab_log c 5 = expected @ [ "post" ]));
  (* quorum starvation: with only the leader and the observer reachable,
     nothing may commit — the observer is not a quorum substitute *)
  let other = if leader = 1 then 2 else 1 in
  crash_zab c other;
  ignore (Zab.propose c.zreplicas.(leader) "orphan" : Zab.zxid option);
  run_for c (Sim_time.sec 2);
  Alcotest.(check bool) "no commit with only an observer reachable" false
    (List.mem "orphan" (zab_log c leader));
  Alcotest.(check bool) "observer never applied the unquorate entry" false
    (List.mem "orphan" (zab_log c 5));
  (* the observer's whole life: follower role only, no votes, no promises *)
  Alcotest.(check bool) "observer never campaigned or led" true
    (List.for_all (( = ) Zab.Follower) !obs_roles);
  Alcotest.(check bool) "observer flagged as such" true (Zab.is_observer obs);
  Alcotest.(check int) "observer made no no-vote promise" 0
    (Zab.lease_stats obs).Zab.grants_sent

(* ISSUE regression: an observer bootstrapping through the chunked
   snapshot transfer survives a mid-transfer partition by RESUMING from
   its last contiguous chunk (> 0), not restarting from scratch. *)
let test_zab_observer_bootstrap_resumes_mid_partition () =
  let zab_config =
    { Zab.default_config with snapshot_chunk_size = 512; snapshot_window = 2 }
  in
  let c =
    make_mixed_cluster ~zab_config ~voters:3 ~learners:0 ~observers:1 ()
  in
  run_for c (Sim_time.ms 10);
  for k = 1 to 40 do
    ignore
      (Zab.propose c.zreplicas.(0)
         (Printf.sprintf "s%02d%s" k (String.make 60 'x'))
        : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  (* compact the voters so the observer can only bootstrap via snapshot *)
  List.iter
    (fun i ->
      Zab.compact c.zreplicas.(i) ~take:(fun () ->
          let hist = c.zdelivered.(i) in
          fun () -> hist_encode hist))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "leader log compacted" true
    (Zab.compaction_base c.zreplicas.(0) > 0);
  let obs = c.zreplicas.(3) in
  Zab.set_install_snapshot obs (fun blob ->
      Result.map (fun h -> c.zdelivered.(3) <- h) (hist_decode blob));
  Zab.start obs;
  let lead_x = Zab.xfer_stats c.zreplicas.(0) in
  let obs_x = Zab.xfer_stats obs in
  let mid_flight () = lead_x.Zab.chunks_sent > 0 && obs_x.Zab.installs = 0 in
  Alcotest.(check bool) "caught the transfer mid-flight" true
    (run_until c ~timeout:(Sim_time.sec 5) mid_flight);
  Net.cut_link c.znet 0 3;
  run_for c (Sim_time.sec 1);
  Net.heal_link c.znet 0 3;
  let caught_up () = List.length c.zdelivered.(3) >= 40 in
  Alcotest.(check bool) "bootstrap completed after the heal" true
    (run_until c ~timeout:(Sim_time.sec 30) caught_up);
  let resumes = max lead_x.Zab.resumes obs_x.Zab.resumes in
  let resume_from =
    max lead_x.Zab.last_resume_from obs_x.Zab.last_resume_from
  in
  Alcotest.(check bool) "transfer resumed at least once" true (resumes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "resumed mid-blob (from chunk %d), not from 0" resume_from)
    true (resume_from > 0);
  Alcotest.(check bool) "observer state equals the leader's" true
    (c.zdelivered.(3) = c.zdelivered.(0));
  (* bootstrapped, the observer is still not a member *)
  Alcotest.(check bool) "observer still outside the member set" false
    (List.mem 3 (Zab.members c.zreplicas.(0)));
  Alcotest.(check (list int)) "observer adopted as observer" [ 3 ]
    (Zab.observers c.zreplicas.(0))

(* ISSUE regression, paired with its mutation: partition the leader
   mid-lease; the majority side elects a new leader and commits past it.
   With the safe default there is NO instant at which the old leader's
   lease is valid while the new leader exists (the no-vote promises
   outlive the 2ε-trimmed lease), so its post-expiry lease read is
   refused.  With [unsafe_ignore_lease_expiry] the deposed leader keeps
   claiming the lease — exactly the stale window the checker's freshness
   detector convicts in the bench self-test. *)
let lease_partition_scenario ~unsafe =
  let zab_config =
    { Zab.default_config with unsafe_ignore_lease_expiry = unsafe }
  in
  let c = make_zab_cluster ~seed:5 ~zab_config () in
  run_for c (Sim_time.ms 10);
  ignore (Zab.propose c.zreplicas.(0) "w0" : Zab.zxid option);
  run_for c (Sim_time.ms 300);
  Alcotest.(check bool) "leader lease live before the partition" true
    (Zab.lease_valid c.zreplicas.(0));
  Net.cut_link c.znet 0 1;
  Net.cut_link c.znet 0 2;
  (* a backward clock jump on follower 2 stretches its no-vote promise in
     real time — the conservative direction (it can only delay the
     election, never break the lease) — and forces the refusal paths to
     fire deterministically before the promise lapses *)
  Zab.set_clock_skew c.zreplicas.(2) (Sim_time.ms (-150));
  (* sample at fine steps: does the old leader ever hold a valid lease
     while a new leader exists? *)
  let overlap = ref false in
  let new_leader () =
    Zab.is_leader c.zreplicas.(1) || Zab.is_leader c.zreplicas.(2)
  in
  let elected =
    run_until c ~timeout:(Sim_time.sec 5) (fun () ->
        let nl = new_leader () in
        if nl && Zab.lease_valid c.zreplicas.(0) then overlap := true;
        nl)
  in
  Alcotest.(check bool) "majority side elected a new leader" true elected;
  let leader = if Zab.is_leader c.zreplicas.(1) then 1 else 2 in
  ignore (Zab.propose c.zreplicas.(leader) "w1" : Zab.zxid option);
  run_for c (Sim_time.ms 500);
  if Zab.lease_valid c.zreplicas.(0) then overlap := true;
  Alcotest.(check bool) "new leader committed past the old one" true
    (List.mem "w1" (zab_log c leader));
  Alcotest.(check bool) "old leader never saw the new write" false
    (List.mem "w1" (zab_log c 0));
  let refusals =
    (Zab.lease_stats c.zreplicas.(1)).Zab.vote_refusals
    + (Zab.lease_stats c.zreplicas.(2)).Zab.vote_refusals
  in
  let old_leader_claims = Zab.can_serve_lease_read c.zreplicas.(0) in
  (!overlap, old_leader_claims, refusals,
   (Zab.lease_stats c.zreplicas.(0)).Zab.reads_expired)

let test_zab_deposed_leader_lease_read_refused () =
  let overlap, old_leader_claims, refusals, expired =
    lease_partition_scenario ~unsafe:false
  in
  Alcotest.(check bool) "old lease never overlaps the new leader" false
    overlap;
  Alcotest.(check bool) "post-expiry lease read refused, not served" false
    old_leader_claims;
  Alcotest.(check bool)
    "the promises did the blocking (votes/campaigns refused)" true
    (refusals > 0);
  Alcotest.(check bool) "the refusal was accounted as an expired check" true
    (expired > 0)

let test_zab_ignored_lease_expiry_serves_stale () =
  let overlap, old_leader_claims, _, _ =
    lease_partition_scenario ~unsafe:true
  in
  (* the mutation: the deposed leader's lease outlives the new leader's
     election and it keeps claiming the linearizable fast path *)
  Alcotest.(check bool) "stale lease overlaps the new leader" true overlap;
  Alcotest.(check bool) "deposed leader still serves lease reads" true
    old_leader_claims

(* ------------------------------------------------------------------ *)
(* PBFT harness                                                        *)
(* ------------------------------------------------------------------ *)

type pbft_cluster = {
  psim : Sim.t;
  pnet : string Pbft.msg Net.t;
  preplicas : string Pbft.t array;
  pdelivered : (Pbft.request_id * string) list array;  (* newest first *)
}

let make_pbft_cluster ?(f = 1) ?(seed = 1) ?pbft_config () =
  let n = (3 * f) + 1 in
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let peers = List.init n Fun.id in
  let delivered = Array.make n [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Pbft.msg_size ~payload_size:String.length msg)
      msg
  in
  let replicas =
    Array.init n (fun i ->
        Pbft.create ?config:pbft_config ~sim ~id:i ~peers ~f
          ~send:(send_from i)
          ~on_deliver:(fun rid p ~ts:_ ->
            delivered.(i) <- (rid, p) :: delivered.(i))
          ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Pbft.handle r ~src msg);
      Pbft.start r)
    replicas;
  { psim = sim; pnet = net; preplicas = replicas; pdelivered = delivered }

let pbft_log c i = List.rev_map snd c.pdelivered.(i)

(* A client multicast: hand the request to every replica (the network-level
   multicast is exercised by the DepSpace tests). *)
let pbft_submit c rid payload =
  Array.iter (fun r -> Pbft.submit r rid payload) c.preplicas

let prun_for c d = Sim.run ~until:(Sim_time.add (Sim.now c.psim) d) c.psim

(* ------------------------------------------------------------------ *)
(* PBFT tests                                                          *)
(* ------------------------------------------------------------------ *)

let rid client rseq = { Pbft.client; rseq }

let test_pbft_basic_total_order () =
  let c = make_pbft_cluster () in
  for k = 1 to 10 do
    pbft_submit c (rid 7 k) (Printf.sprintf "op%d" k)
  done;
  prun_for c (Sim_time.sec 1);
  let expected = List.init 10 (fun k -> Printf.sprintf "op%d" (k + 1)) in
  for i = 0 to 3 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d total order" i)
      expected (pbft_log c i)
  done

let test_pbft_duplicate_submission () =
  let c = make_pbft_cluster () in
  pbft_submit c (rid 7 1) "once";
  pbft_submit c (rid 7 1) "once";
  prun_for c (Sim_time.sec 1);
  Alcotest.(check (list string)) "delivered exactly once" [ "once" ]
    (pbft_log c 0)

let test_pbft_silent_backup () =
  let c = make_pbft_cluster () in
  Pbft.crash c.preplicas.(3);
  Net.set_node_down c.pnet 3;
  for k = 1 to 5 do
    pbft_submit c (rid 9 k) (Printf.sprintf "v%d" k)
  done;
  prun_for c (Sim_time.sec 1);
  let expected = List.init 5 (fun k -> Printf.sprintf "v%d" (k + 1)) in
  for i = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d progressed despite silent backup" i)
      expected (pbft_log c i)
  done

let test_pbft_primary_crash_view_change () =
  let c = make_pbft_cluster () in
  pbft_submit c (rid 3 1) "before";
  prun_for c (Sim_time.sec 1);
  Pbft.crash c.preplicas.(0);
  Net.set_node_down c.pnet 0;
  (* submit to the survivors only (the client would multicast to all) *)
  Array.iteri
    (fun i r -> if i > 0 then Pbft.submit r (rid 3 2) "after")
    c.preplicas;
  prun_for c (Sim_time.sec 3);
  for i = 1 to 3 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d delivered across view change" i)
      [ "before"; "after" ] (pbft_log c i)
  done;
  Alcotest.(check bool) "view advanced" true (Pbft.view c.preplicas.(1) >= 1)

let test_pbft_order_preserved_across_view_change () =
  let c = make_pbft_cluster () in
  for k = 1 to 5 do
    pbft_submit c (rid 2 k) (Printf.sprintf "x%d" k)
  done;
  prun_for c (Sim_time.sec 1);
  Pbft.crash c.preplicas.(0);
  Net.set_node_down c.pnet 0;
  for k = 6 to 8 do
    Array.iteri
      (fun i r -> if i > 0 then Pbft.submit r (rid 2 k) (Printf.sprintf "x%d" k))
      c.preplicas
  done;
  prun_for c (Sim_time.sec 3);
  let expected = List.init 8 (fun k -> Printf.sprintf "x%d" (k + 1)) in
  for i = 1 to 3 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d history prefix preserved" i)
      expected (pbft_log c i)
  done

let prop_pbft_agreement =
  QCheck.Test.make ~name:"pbft replicas agree on delivery order" ~count:10
    QCheck.(pair small_int (int_range 1 15))
    (fun (seed, nops) ->
      let c = make_pbft_cluster ~seed () in
      for k = 1 to nops do
        pbft_submit c (rid 1 k) (string_of_int k)
      done;
      Sim.run ~until:(Sim_time.sec 2) c.psim;
      let logs = List.init 4 (fun i -> pbft_log c i) in
      match logs with
      | l0 :: rest -> List.length l0 = nops && List.for_all (( = ) l0) rest
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* Group-commit batching                                                *)
(* ------------------------------------------------------------------ *)

(* The Batching engine itself, on a bare simulator. *)

let test_batching_size_trigger () =
  let sim = Sim.create ~seed:3 () in
  let flushed = ref [] in
  let config =
    Batching.group_commit ~max_batch:3 ~max_delay:(Sim_time.sec 1) ()
  in
  let b =
    Batching.create ~sim ~config ~flush:(fun xs -> flushed := !flushed @ [ xs ])
  in
  Batching.add b 1;
  Batching.add b 2;
  Alcotest.(check int) "waiting for a full batch" 2 (Batching.pending b);
  Batching.add b 3;
  Alcotest.(check (list (list int))) "full batch flushed in arrival order"
    [ [ 1; 2; 3 ] ] !flushed

let test_batching_delay_trigger () =
  let sim = Sim.create ~seed:3 () in
  let flushed = ref [] in
  let config =
    Batching.group_commit ~max_batch:100 ~max_delay:(Sim_time.ms 5) ()
  in
  let b =
    Batching.create ~sim ~config ~flush:(fun xs ->
        flushed := !flushed @ [ (Sim.now sim, xs) ])
  in
  Batching.add b "a";
  Batching.add b "b";
  Sim.run ~until:(Sim_time.ms 20) sim;
  Alcotest.(check bool) "partial batch flushed when the oldest item expires"
    true
    (!flushed = [ (Sim_time.ms 5, [ "a"; "b" ]) ])

let test_batching_sync_self_clocking () =
  let sim = Sim.create ~seed:3 () in
  let flushed = ref [] in
  let config = Batching.group_commit ~max_batch:100 ~sync_cost:(Sim_time.ms 1) () in
  let b =
    Batching.create ~sim ~config ~flush:(fun xs -> flushed := !flushed @ [ xs ])
  in
  Batching.add b "a";
  (* arrivals during the 1 ms sync must ride the next batch *)
  Sim.schedule sim ~after:(Sim_time.us 500) (fun () ->
      Batching.add b "b";
      Batching.add b "c");
  Sim.run ~until:(Sim_time.ms 10) sim;
  Alcotest.(check (list (list string))) "second batch groups the stragglers"
    [ [ "a" ]; [ "b"; "c" ] ]
    !flushed

let test_batching_reset_drops_pending () =
  let sim = Sim.create ~seed:3 () in
  let flushed = ref [] in
  let config = Batching.group_commit ~max_batch:100 ~sync_cost:(Sim_time.ms 1) () in
  let b =
    Batching.create ~sim ~config ~flush:(fun xs -> flushed := !flushed @ [ xs ])
  in
  Batching.add b "doomed";
  Batching.reset b;
  Sim.run ~until:(Sim_time.ms 10) sim;
  Alcotest.(check (list (list string))) "reset cancels the in-flight sync" []
    !flushed;
  Alcotest.(check int) "nothing pending" 0 (Batching.pending b)

(* Batched and unbatched replication runs must end in identical state. *)

let test_zab_batched_equals_unbatched () =
  let run batch =
    let c =
      make_zab_cluster ~zab_config:{ Zab.default_config with Zab.batch } ()
    in
    run_for c (Sim_time.ms 10);
    for k = 1 to 50 do
      ignore
        (Zab.propose c.zreplicas.(0) (Printf.sprintf "op%02d" k)
          : Zab.zxid option)
    done;
    run_for c (Sim_time.sec 1);
    List.init 3 (zab_log c)
  in
  let unbatched = run Batching.off in
  List.iter
    (fun batch ->
      Alcotest.(check (list (list string)))
        "batched run converges to the unbatched final state" unbatched
        (run batch))
    [
      Batching.group_commit ~max_batch:8 ~sync_cost:(Sim_time.us 200) ();
      Batching.group_commit ~max_batch:128 ~max_delay:(Sim_time.ms 2) ();
    ]

let test_zab_batch_applies_atomically () =
  (* every entry of a batch reaches the application together, in order, on
     every replica *)
  let c =
    make_zab_cluster
      ~zab_config:
        {
          Zab.default_config with
          Zab.batch =
            Batching.group_commit ~max_batch:5 ~sync_cost:(Sim_time.us 100) ();
        }
      ()
  in
  run_for c (Sim_time.ms 10);
  (* 11 proposals in one instant: batches of 1 (leading sync), then 5, 5 *)
  for k = 1 to 11 do
    ignore (Zab.propose c.zreplicas.(0) (Printf.sprintf "t%02d" k) : Zab.zxid option)
  done;
  run_for c (Sim_time.sec 1);
  (* group replica 1's deliveries by commit instant: with max_batch = 5 no
     gap may split a batch, i.e. every op is present and ordered *)
  let log = zab_log c 1 in
  Alcotest.(check (list string))
    "all batched entries applied in order"
    (List.init 11 (fun k -> Printf.sprintf "t%02d" (k + 1)))
    log;
  Alcotest.(check int) "nothing lost or duplicated" 11 (List.length log)

let test_pbft_batched_equals_unbatched () =
  let run batch =
    let c =
      make_pbft_cluster ~pbft_config:{ Pbft.default_config with Pbft.batch } ()
    in
    for k = 1 to 30 do
      pbft_submit c (rid 4 k) (Printf.sprintf "op%02d" k)
    done;
    prun_for c (Sim_time.sec 2);
    List.init 4 (pbft_log c)
  in
  let unbatched = run Batching.off in
  let batched =
    run (Batching.group_commit ~max_batch:8 ~sync_cost:(Sim_time.us 200) ())
  in
  Alcotest.(check (list (list string)))
    "batched pbft converges to the unbatched final state" unbatched batched

let test_pbft_batched_view_change () =
  (* a primary crash with a batched configuration must still converge *)
  let batch = Batching.group_commit ~max_batch:8 ~sync_cost:(Sim_time.us 200) () in
  let c =
    make_pbft_cluster ~pbft_config:{ Pbft.default_config with Pbft.batch } ()
  in
  pbft_submit c (rid 3 1) "before";
  prun_for c (Sim_time.sec 1);
  Pbft.crash c.preplicas.(0);
  Net.set_node_down c.pnet 0;
  Array.iteri
    (fun i r -> if i > 0 then Pbft.submit r (rid 3 2) "after")
    c.preplicas;
  prun_for c (Sim_time.sec 3);
  for i = 1 to 3 do
    Alcotest.(check (list string))
      (Printf.sprintf "replica %d delivered across view change" i)
      [ "before"; "after" ] (pbft_log c i)
  done

(* A batch containing extension triggers applies atomically: full EZK
   stack, batched replication, concurrent extension-based increments. *)

let test_ezk_batched_extension_atomic () =
  let module Zk = Edc_zookeeper in
  let module R = Edc_recipes in
  let sim = Sim.create ~seed:11 () in
  let batch = Batching.group_commit ~max_batch:16 ~sync_cost:(Sim_time.us 200) () in
  let cluster = Edc_ezk.Ezk_cluster.create ~batch sim in
  let n_clients = 5 and per_client = 10 in
  let successes = ref 0 in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin =
          R.Coord_zk.of_client ~extensible:true
            (Edc_ezk.Ezk_cluster.connected_client cluster ())
        in
        (match R.Counter.setup admin with Ok () -> () | Error e -> failwith e);
        (match R.Counter.register admin with Ok () -> () | Error e -> failwith e);
        let fibers =
          List.init n_clients (fun _ ->
              Proc.async sim (fun () ->
                  let api =
                    R.Coord_zk.of_client ~extensible:true
                      (Edc_ezk.Ezk_cluster.connected_client cluster ())
                  in
                  (match
                     (R.Coord_api.ext_exn api).R.Coord_api.acknowledge
                       R.Counter.extension_name
                   with
                  | Ok () -> ()
                  | Error e -> failwith e);
                  for _ = 1 to per_client do
                    match R.Counter.increment_ext api with
                    | Ok _ -> incr successes
                    | Error e -> failwith ("increment: " ^ e)
                  done))
        in
        Proc.join fibers
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 60) sim;
  (match !failure with Some e -> raise e | None -> ());
  Alcotest.(check int) "all increments succeeded" (n_clients * per_client)
    !successes;
  (* every replica holds the same counter value = total increments, and no
     replica detected a replication anomaly: the batched extension
     triggers applied atomically and identically everywhere *)
  Array.iteri
    (fun i s ->
      let tree = Zk.Server.tree s in
      Alcotest.(check int)
        (Printf.sprintf "replica %d anomaly-free" i)
        0
        (Zk.Data_tree.anomalies tree);
      match Zk.Data_tree.get_data tree R.Counter.counter_oid with
      | Ok (data, _) ->
          Alcotest.(check string)
            (Printf.sprintf "replica %d counter value" i)
            (string_of_int !successes) data
      | Error e ->
          Alcotest.failf "replica %d: %s" i (Zk.Zerror.to_string e))
    (Edc_ezk.Ezk_cluster.servers cluster)

(* ------------------------------------------------------------------ *)
(* Sharded 2PC recovery regressions (§6j)                              *)
(*                                                                     *)
(* Deterministic fault interpositions against the cross-shard commit   *)
(* protocol: a coordinator killed at each side of its commit record    *)
(* must recover to the same outcome on every replica of every          *)
(* participant shard, and a participant partitioned during prepare     *)
(* must be presumed-aborted with its locks released.                   *)
(* ------------------------------------------------------------------ *)

module Shard_map = Edc_sharding.Shard_map
module Shard_cluster = Edc_sharding.Shard_cluster
module Shard_session = Edc_sharding.Shard_session
module Zserver = Edc_zookeeper.Server
module Zerror = Edc_zookeeper.Zerror
module Atomicity = Edc_checker.Atomicity

let in_2pc_cluster ?(seed = 11) f =
  let sim = Sim.create ~seed () in
  let rules =
    [ { Shard_map.prefix = "/s0"; shard = 0 };
      { Shard_map.prefix = "/s1"; shard = 1 } ]
  in
  let map = Shard_map.v ~rules 2 in
  let cluster = Shard_cluster.create ~map sim in
  let failure = ref None in
  Proc.spawn sim (fun () -> try f cluster with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 120) sim;
  (match !failure with Some e -> raise e | None -> ());
  (* after quiescence: identical outcomes everywhere, nothing in doubt,
     nothing locked *)
  let vs =
    Atomicity.check
      ~audits:(Shard_cluster.audits cluster)
      ~prepared:(Shard_cluster.residual_prepared cluster)
      ~locks:(Shard_cluster.residual_locks cluster)
      ()
  in
  if vs <> [] then
    Alcotest.failf "atomicity violations: %a"
      Fmt.(list ~sep:semi Atomicity.pp_violation)
      vs

let leader_index cluster ~shard =
  let servers = Shard_cluster.servers cluster shard in
  let idx = ref None in
  Array.iteri (fun i s -> if Zserver.is_leader s then idx := Some i) servers;
  match !idx with
  | Some i -> i
  | None -> Alcotest.failf "shard %d has no leader" shard

let wait_until sim ~step_ms ~deadline_ms what cond =
  let rec go waited =
    if cond () then ()
    else if waited >= deadline_ms then
      Alcotest.failf "timed out waiting for %s" what
    else (
      Proc.sleep sim (Sim_time.ms step_ms);
      go (waited + step_ms))
  in
  go 0

let participant_prepared cluster shard () =
  match Shard_cluster.shard_leader cluster shard with
  | Some l -> Zserver.prepared_txns l <> []
  | None -> false

let check_uniform_outcome cluster ~committed =
  let audits = Shard_cluster.audits cluster in
  Alcotest.(check int) "all six replicas resolved the transaction" 6
    (List.length audits);
  List.iter
    (fun (shard, replica, outs) ->
      match outs with
      | [ (_, c) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d replica %d outcome" shard replica)
            committed c
      | _ ->
          Alcotest.failf "shard %d replica %d resolved %d times" shard replica
            (List.length outs))
    audits

let everywhere cluster shard path =
  Array.for_all
    (fun s -> Edc_zookeeper.Data_tree.mem (Zserver.tree s) path)
    (Shard_cluster.servers cluster shard)

let nowhere cluster shard path =
  Array.for_all
    (fun s -> not (Edc_zookeeper.Data_tree.mem (Zserver.tree s) path))
    (Shard_cluster.servers cluster shard)

(* Coordinator leader killed after the participants logged their prepare
   records but before any commit decision was recorded.  The volatile
   coordinator round dies with it; the in-doubt participants' status
   probes must drive every replica of both shards to the same
   presumed-abort outcome, with all locks released. *)
let test_2pc_coordinator_crash_before_decision () =
  in_2pc_cluster (fun cluster ->
      let sim = Shard_cluster.sim cluster in
      let net = Shard_cluster.ishard_net cluster in
      let s = Shard_session.connect cluster in
      (match Shard_session.create_node s "/s0" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s0: %a" Zerror.pp e);
      (match Shard_session.create_node s "/s1" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s1: %a" Zerror.pp e);
      (* block participant acks: the coordinator is pinned between its
         prepare records and the commit decision *)
      Net.cut_link_one_way net ~src:1 ~dst:0;
      let outcome = ref `Pending in
      Proc.spawn sim (fun () ->
          match
            Shard_session.multi s
              [
                Two_pc.Wcreate { path = "/s0/x"; data = "l" };
                Two_pc.Wcreate { path = "/s1/y"; data = "r" };
              ]
          with
          | Ok () -> outcome := `Committed
          | Error _ -> outcome := `Aborted);
      wait_until sim ~step_ms:10 ~deadline_ms:5_000 "participant prepare"
        (participant_prepared cluster 1);
      (* kill the coordinator while the decision is still unrecorded *)
      let ci = leader_index cluster ~shard:0 in
      Shard_cluster.crash_server cluster ~shard:0 ci;
      Proc.sleep sim (Sim_time.sec 2);
      Net.heal_link_one_way net ~src:1 ~dst:0;
      Shard_cluster.restart_server cluster ~shard:0 ci;
      (* status inquiries find no decision and no open round: abort *)
      Proc.sleep sim (Sim_time.sec 20);
      (match !outcome with
      | `Committed -> Alcotest.fail "multi reported success without a decision"
      | `Aborted | `Pending -> ());
      check_uniform_outcome cluster ~committed:false;
      Alcotest.(check bool) "no partial write on shard 0" true
        (nowhere cluster 0 "/s0/x");
      Alcotest.(check bool) "no partial write on shard 1" true
        (nowhere cluster 1 "/s1/y"))

(* Coordinator leader killed after its commit record was replicated but
   with the outcome pushes to the participant lost: the decision table
   survives in the coordinator shard's log, so the participant's status
   probe must recover the transaction to commit on every replica. *)
let test_2pc_coordinator_crash_after_commit_record () =
  in_2pc_cluster ~seed:13 (fun cluster ->
      let sim = Shard_cluster.sim cluster in
      let net = Shard_cluster.ishard_net cluster in
      let s = Shard_session.connect cluster in
      (match Shard_session.create_node s "/s0" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s0: %a" Zerror.pp e);
      (match Shard_session.create_node s "/s1" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s1: %a" Zerror.pp e);
      (* interposer: the moment the participant logs its prepare, sever
         the coordinator→participant direction so the commit push is
         lost and the participant stays in doubt *)
      Proc.spawn sim (fun () ->
          wait_until sim ~step_ms:1 ~deadline_ms:5_000 "participant prepare"
            (participant_prepared cluster 1);
          Net.cut_link_one_way net ~src:0 ~dst:1);
      (match
         Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/x"; data = "l" };
             Two_pc.Wcreate { path = "/s1/y"; data = "r" };
           ]
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "cross-shard multi: %a" Zerror.pp e);
      (* the decision is recorded (the client heard commit) but the
         participant must not have resolved yet *)
      Alcotest.(check bool) "participant still in doubt" true
        (participant_prepared cluster 1 ());
      (* kill the coordinator: recovery must come from the replicated
         decision table, not the dead process *)
      let ci = leader_index cluster ~shard:0 in
      Shard_cluster.crash_server cluster ~shard:0 ci;
      Proc.sleep sim (Sim_time.sec 2);
      Net.heal_link_one_way net ~src:0 ~dst:1;
      Shard_cluster.restart_server cluster ~shard:0 ci;
      Proc.sleep sim (Sim_time.sec 20);
      check_uniform_outcome cluster ~committed:true;
      Alcotest.(check bool) "commit applied on shard 0" true
        (everywhere cluster 0 "/s0/x");
      Alcotest.(check bool) "commit applied on shard 1" true
        (everywhere cluster 1 "/s1/y"))

(* Participant shard partitioned off during prepare: its acks never
   reach the coordinator, which must time out to presumed-abort; the
   pushed abort releases the participant's locks. *)
let test_2pc_participant_partition_presumed_abort () =
  in_2pc_cluster ~seed:17 (fun cluster ->
      let sim = Shard_cluster.sim cluster in
      let net = Shard_cluster.ishard_net cluster in
      let s = Shard_session.connect cluster in
      (match Shard_session.create_node s "/s0" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s0: %a" Zerror.pp e);
      (match Shard_session.create_node s "/s1" "" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "root /s1: %a" Zerror.pp e);
      Net.cut_link_one_way net ~src:1 ~dst:0;
      (match
         Shard_session.multi s
           [
             Two_pc.Wcreate { path = "/s0/x"; data = "l" };
             Two_pc.Wcreate { path = "/s1/y"; data = "r" };
           ]
       with
      | Ok () -> Alcotest.fail "multi committed without participant acks"
      | Error Zerror.Txn_conflict -> ()
      | Error e -> Alcotest.failf "expected txn conflict, got %a" Zerror.pp e);
      Net.heal_link_one_way net ~src:1 ~dst:0;
      Proc.sleep sim (Sim_time.sec 10);
      check_uniform_outcome cluster ~committed:false;
      (* the participant prepared and locked; the abort must have
         released everything *)
      Array.iter
        (fun srv ->
          Alcotest.(check (list (pair string string)))
            "participant locks released" [] (Zserver.locked_paths srv))
        (Shard_cluster.servers cluster 1);
      Alcotest.(check bool) "nothing applied on shard 1" true
        (nowhere cluster 1 "/s1/y"))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "edc_replication"
    [
      ( "zab",
        [
          Alcotest.test_case "basic agreement" `Quick test_zab_basic_agreement;
          Alcotest.test_case "follower refuses proposals" `Quick
            test_zab_propose_on_follower_fails;
          Alcotest.test_case "zxid monotonicity" `Quick test_zab_zxids_are_monotonic;
          Alcotest.test_case "leader failover" `Quick test_zab_leader_failover;
          Alcotest.test_case "restart catch-up" `Quick
            test_zab_follower_restart_catches_up;
          Alcotest.test_case "no quorum, no commit" `Quick
            test_zab_no_commit_without_quorum;
          Alcotest.test_case "single-replica ensemble" `Quick
            test_zab_single_replica_ensemble;
          Alcotest.test_case "snapshot recovery" `Quick test_zab_snapshot_recovery;
          Alcotest.test_case "leader killed between joint and final" `Quick
            test_zab_leader_killed_between_joint_and_final;
          Alcotest.test_case "joint phase blocks disjoint quorums" `Quick
            test_zab_joint_phase_blocks_disjoint_quorums;
          Alcotest.test_case "single-step reconfig loses committed entry"
            `Quick test_zab_single_step_reconfig_loses_committed_entry;
          Alcotest.test_case "deterministic reruns" `Quick
            test_zab_deterministic_runs;
          qc prop_zab_prefix_agreement;
        ] );
      ( "read path",
        [
          Alcotest.test_case "observer excluded across grow/shrink" `Quick
            test_zab_observer_excluded_across_grow_shrink;
          Alcotest.test_case "observer bootstrap resumes mid-partition" `Quick
            test_zab_observer_bootstrap_resumes_mid_partition;
          Alcotest.test_case "deposed leader's lease read refused" `Quick
            test_zab_deposed_leader_lease_read_refused;
          Alcotest.test_case "ignored lease expiry serves stale" `Quick
            test_zab_ignored_lease_expiry_serves_stale;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "total order" `Quick test_pbft_basic_total_order;
          Alcotest.test_case "duplicate submission" `Quick
            test_pbft_duplicate_submission;
          Alcotest.test_case "silent backup tolerated" `Quick
            test_pbft_silent_backup;
          Alcotest.test_case "primary crash view change" `Quick
            test_pbft_primary_crash_view_change;
          Alcotest.test_case "order across view change" `Quick
            test_pbft_order_preserved_across_view_change;
          qc prop_pbft_agreement;
        ] );
      ( "batching",
        [
          Alcotest.test_case "size trigger" `Quick test_batching_size_trigger;
          Alcotest.test_case "delay trigger" `Quick test_batching_delay_trigger;
          Alcotest.test_case "sync self-clocking" `Quick
            test_batching_sync_self_clocking;
          Alcotest.test_case "reset drops pending" `Quick
            test_batching_reset_drops_pending;
          Alcotest.test_case "zab batched = unbatched" `Quick
            test_zab_batched_equals_unbatched;
          Alcotest.test_case "zab batch atomic" `Quick
            test_zab_batch_applies_atomically;
          Alcotest.test_case "pbft batched = unbatched" `Quick
            test_pbft_batched_equals_unbatched;
          Alcotest.test_case "pbft batched view change" `Quick
            test_pbft_batched_view_change;
          Alcotest.test_case "ezk batched extension atomic" `Quick
            test_ezk_batched_extension_atomic;
        ] );
      ( "2pc recovery",
        [
          Alcotest.test_case "coordinator crash before decision" `Quick
            test_2pc_coordinator_crash_before_decision;
          Alcotest.test_case "coordinator crash after commit record" `Quick
            test_2pc_coordinator_crash_after_commit_record;
          Alcotest.test_case "participant partition presumed abort" `Quick
            test_2pc_participant_partition_presumed_abort;
        ] );
    ]
