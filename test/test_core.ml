(* Tests for the extension model: wire format, values, verifier, sandbox,
   and extension manager. *)

open Edc_core

(* ------------------------------------------------------------------ *)
(* Sexp                                                                *)
(* ------------------------------------------------------------------ *)

let test_sexp_roundtrip_basic () =
  let cases =
    [
      Sexp.Atom "hello";
      Sexp.Atom "with space";
      Sexp.Atom "";
      Sexp.Atom "quo\"te";
      Sexp.Atom "new\nline";
      Sexp.List [];
      Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ] ];
    ]
  in
  List.iter
    (fun sx ->
      match Sexp.of_string (Sexp.to_string sx) with
      | Ok sx' -> Alcotest.(check bool) "roundtrip" true (sx = sx')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    cases

let test_sexp_rejects_garbage () =
  List.iter
    (fun s ->
      match Sexp.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" s)
    [ "("; ")"; "(a"; "\"unterminated"; "a b"; "" ]

let sexp_arb =
  let open QCheck.Gen in
  let atom = map (fun s -> Sexp.Atom s) (string_size ~gen:printable (int_range 0 8)) in
  let rec gen depth =
    if depth = 0 then atom
    else
      frequency
        [ (3, atom); (1, map (fun l -> Sexp.List l) (list_size (int_range 0 4) (gen (depth - 1)))) ]
  in
  QCheck.make (gen 4)

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:300 sexp_arb
    (fun sx -> Sexp.of_string (Sexp.to_string sx) = Ok sx)

(* like [sexp_arb] but atoms range over arbitrary bytes, not just printable
   ASCII — the canonical-form properties must hold for any payload *)
let sexp_bytes_arb =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(char_range '\000' '\255') (int_range 0 12)
  in
  let atom = map (fun s -> Sexp.Atom s) any_string in
  let rec gen depth =
    if depth = 0 then atom
    else
      frequency
        [ (3, atom); (1, map (fun l -> Sexp.List l) (list_size (int_range 0 4) (gen (depth - 1)))) ]
  in
  QCheck.make (gen 4)

let prop_sexp_roundtrip_bytes =
  QCheck.Test.make ~name:"sexp roundtrip over arbitrary bytes" ~count:500
    sexp_bytes_arb (fun sx -> Sexp.of_string (Sexp.to_string sx) = Ok sx)

(* canonical bytes: printing what we parsed back from our own output
   reproduces the output exactly, so equal values have equal encodings *)
let prop_sexp_encoding_fixpoint =
  QCheck.Test.make ~name:"sexp encoding is a fixpoint" ~count:500
    sexp_bytes_arb (fun sx ->
      let enc = Sexp.to_string sx in
      match Sexp.of_string enc with
      | Error _ -> false
      | Ok sx' -> Sexp.to_string sx' = enc)

let test_sexp_rejects_unknown_escape () =
  List.iter
    (fun s ->
      match Sexp.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" s)
    [
      {|"\x41"|} (* hex escapes were never emitted, only silently eaten *);
      {|"\0"|};
      {|"a\qb"|};
      "\"raw\ttab\"" (* control bytes with escape forms must use them *);
      "\"raw\nnewline\"";
    ]

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_roundtrip () =
  let v =
    Value.List
      [
        Value.Int 42; Value.Str "x y"; Value.Bool true; Value.Unit;
        Value.obj ~id:"/q/a" ~data:"payload" ~version:3 ~ctime:17;
      ]
  in
  match Value.deserialize (Value.serialize v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (Value.equal v v')
  | Error e -> Alcotest.failf "deserialize: %s" e

let test_value_field_access () =
  let o = Value.obj ~id:"/a" ~data:"d" ~version:1 ~ctime:9 in
  Alcotest.(check bool) "data field" true
    (Value.field o "data" = Some (Value.Str "d"));
  Alcotest.(check bool) "missing field" true (Value.field o "nope" = None)

(* ------------------------------------------------------------------ *)
(* Codec: program roundtrip                                            *)
(* ------------------------------------------------------------------ *)

(* the shared-counter extension from Figure 5, in our DSL *)
let counter_program =
  let open Ast in
  Program.make "ctr-increment"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact "/ctr-increment" } ]
    ~on_operation:
      [
        Let ("c", Call ("int_of_str", [ Field (Svc (Svc_read, [ Str_lit "/ctr" ]), "data") ]));
        Do (Svc (Svc_update, [ Str_lit "/ctr"; Call ("str_of_int", [ Binop (Add, Var "c", Int_lit 1) ]) ]));
        Return (Binop (Add, Var "c", Int_lit 1));
      ]
    ()

(* a queue-remove extension exercising for-each and min_by_ctime *)
let queue_program =
  let open Ast in
  Program.make "queue-remove"
    ~op_subs:
      [ { Subscription.op_kinds = [ Subscription.K_read ];
          op_oid = Subscription.Exact "/queue/head" } ]
    ~on_operation:
      [
        Let ("objs", Svc (Svc_sub_objects, [ Str_lit "/queue" ]));
        If
          ( Call ("list_empty", [ Var "objs" ]),
            [ Return Unit_lit ],
            [
              Let ("head", Call ("min_by_ctime", [ Var "objs" ]));
              Do (Svc (Svc_delete, [ Field (Var "head", "id") ]));
              Return (Field (Var "head", "data"));
            ] );
      ]
    ()

let test_codec_roundtrip () =
  List.iter
    (fun p ->
      let s = Codec.serialize p in
      match Codec.deserialize s with
      | Ok p' ->
          Alcotest.(check bool)
            ("roundtrip " ^ p.Program.name)
            true
            (Codec.serialize p' = s)
      | Error e -> Alcotest.failf "deserialize %s: %s" p.Program.name e)
    [ counter_program; queue_program ]

let test_codec_rejects_unknown_ops () =
  let bad = "(ext x (opsubs) (evsubs) (onop ((do (svc format_disk)))) (onev none))" in
  match Codec.deserialize bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject unknown service op"

let test_codec_rejects_noncanonical_ints () =
  let s = Codec.serialize counter_program in
  (match Codec.deserialize s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline program rejected: %s" e);
  let replace_first ~pat ~by s =
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length s then None
      else if String.sub s i plen = pat then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "pattern %S not found in %S" pat s
    | Some i ->
        String.sub s 0 i ^ by ^ String.sub s (i + plen) (String.length s - i - plen)
  in
  (* every spelling below parses with [int_of_string] but is not the
     canonical decimal rendering of the value, so two different byte
     strings would alias to one program *)
  List.iter
    (fun spelling ->
      let doctored = replace_first ~pat:"(i 1)" ~by:("(i " ^ spelling ^ ")") s in
      match Codec.deserialize doctored with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "must reject int spelling %S" spelling)
    [ "0x1"; "0o1"; "0b1"; "1_"; "1_000"; "+1"; "01"; "007"; "-0" ];
  (* canonical negatives still pass *)
  match Codec.deserialize (replace_first ~pat:"(i 1)" ~by:"(i -7)" s) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "canonical negative rejected: %s" e

(* Generators for whole programs, used by the codec properties below.
   Identifiers are kept alphanumeric (that is all the verifier admits
   anyway); expression/statement shapes cover every constructor. *)
let program_arb =
  let open QCheck.Gen in
  let ident = map (Printf.sprintf "v%d") (int_range 0 9) in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or; Concat ]
  in
  let svc_op =
    oneofl
      Ast.
        [
          Svc_read; Svc_exists; Svc_sub_objects; Svc_create;
          Svc_create_sequential; Svc_update; Svc_cas; Svc_delete; Svc_block;
          Svc_monitor; Svc_notify;
        ]
  in
  let base_expr =
    oneof
      [
        return Ast.Unit_lit;
        map (fun b -> Ast.Bool_lit b) bool;
        map (fun i -> Ast.Int_lit i) small_signed_int;
        map (fun s -> Ast.Str_lit s) (string_size ~gen:printable (int_range 0 6));
        map (fun s -> Ast.Var s) ident;
        map (fun s -> Ast.Param s) ident;
      ]
  in
  let rec expr d =
    if d = 0 then base_expr
    else
      frequency
        [
          (3, base_expr);
          (1, map (fun e -> Ast.Not e) (expr (d - 1)));
          (1, map (fun e -> Ast.Neg e) (expr (d - 1)));
          ( 1,
            map3 (fun op a b -> Ast.Binop (op, a, b)) binop (expr (d - 1))
              (expr (d - 1)) );
          (1, map2 (fun e f -> Ast.Field (e, f)) (expr (d - 1)) ident);
          ( 1,
            map2
              (fun n args -> Ast.Call (n, args))
              ident
              (list_size (int_range 0 2) (expr (d - 1))) );
          ( 1,
            map2
              (fun op args -> Ast.Svc (op, args))
              svc_op
              (list_size (int_range 0 2) (expr (d - 1))) );
        ]
  in
  let rec stmt d =
    let flat =
      oneof
        [
          map2 (fun x e -> Ast.Let (x, e)) ident (expr 2);
          map2 (fun x e -> Ast.Assign (x, e)) ident (expr 2);
          map (fun e -> Ast.Return e) (expr 2);
          map (fun e -> Ast.Do e) (expr 2);
          map (fun s -> Ast.Abort s) (string_size ~gen:printable (int_range 0 6));
        ]
    in
    if d = 0 then flat
    else
      frequency
        [
          (4, flat);
          ( 1,
            map3
              (fun c a b -> Ast.If (c, a, b))
              (expr 2)
              (list_size (int_range 0 2) (stmt (d - 1)))
              (list_size (int_range 0 2) (stmt (d - 1))) );
          ( 1,
            map3
              (fun x e body -> Ast.For_each (x, e, body))
              ident (expr 2)
              (list_size (int_range 1 2) (stmt (d - 1))) );
        ]
  in
  let body = list_size (int_range 1 4) (stmt 2) in
  let program =
    map2
      (fun op ev -> Program.make "gen-ext" ~on_operation:op ?on_event:ev ())
      body (option body)
  in
  QCheck.make program

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec serialize/deserialize identity" ~count:300
    program_arb (fun p -> Codec.deserialize (Codec.serialize p) = Ok p)

(* Any strict prefix of a serialized program leaves the top-level form
   unclosed, so deserialization must return a graceful [Error] — never an
   exception, never a bogus [Ok]. *)
let prop_codec_rejects_truncated =
  QCheck.Test.make ~name:"codec rejects truncated input" ~count:300
    QCheck.(pair program_arb (float_bound_inclusive 1.))
    (fun (p, frac) ->
      let s = Codec.serialize p in
      let k = min (String.length s - 1) (int_of_float (frac *. float_of_int (String.length s))) in
      match Codec.deserialize (String.sub s 0 k) with
      | Error _ -> true
      | Ok _ -> false)

(* Arbitrary bytes must produce [Ok] or [Error], never an exception — for
   the parser and for the full codec pipeline. *)
let prop_codec_garbage_is_graceful =
  QCheck.Test.make ~name:"codec survives garbage input" ~count:500
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s ->
      (match Sexp.of_string s with Ok _ | Error _ -> true)
      && match Codec.deserialize s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let serialized p = Codec.serialize p

let verify_ok ?(mode = Verify.Active) p =
  Verify.check ~mode ~serialized_size:(String.length (serialized p)) p

let test_verify_accepts_recipes () =
  Alcotest.(check (list string)) "counter clean" []
    (List.map Verify.violation_to_string (verify_ok counter_program));
  Alcotest.(check (list string)) "queue clean" []
    (List.map Verify.violation_to_string (verify_ok queue_program))

let test_verify_rejects_unknown_builtin () =
  let p =
    Program.make "bad" ~op_subs:[]
      ~on_operation:[ Ast.Do (Ast.Call ("exec_shell", [])) ] ()
  in
  match verify_ok p with
  | [ Verify.Unknown_builtin "exec_shell" ] -> ()
  | vs -> Alcotest.failf "unexpected: %s"
            (String.concat "," (List.map Verify.violation_to_string vs))

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* One row per violation constructor: the offending program, the expected
   violation, and a fragment its documented rendering must contain.  Every
   way the verifier can say "no" is exercised and produces a readable
   diagnostic. *)
let test_verify_rejection_table () =
  let simple = [ Ast.Return Ast.Unit_lit ] in
  let notify =
    Ast.Do (Ast.Svc (Ast.Svc_notify, [ Ast.Int_lit 1; Ast.Str_lit "/x" ]))
  in
  let rec nots k e = if k = 0 then e else nots (k - 1) (Ast.Not e) in
  let rec nest_loops k =
    if k = 0 then [ Ast.Do (Ast.Var "xs") ]
    else [ Ast.For_each ("x", Ast.Var "xs", nest_loops (k - 1)) ]
  in
  let cases =
    [
      ( "oversized payload",
        Program.make "big" ~on_operation:simple (),
        Verify.Active,
        Verify.default_limits.Verify.max_serialized_bytes + 1,
        (function Verify.Too_large _ -> true | _ -> false),
        "size" );
      ( "too many nodes",
        Program.make "nodes"
          ~on_operation:
            (List.init 400 (fun i ->
                 Ast.Let (Printf.sprintf "v%d" i, Ast.Int_lit i)))
          (),
        Verify.Active,
        64,
        (function Verify.Too_many_nodes _ -> true | _ -> false),
        "nodes" );
      ( "too deep",
        Program.make "deep"
          ~on_operation:[ Ast.Do (nots 30 (Ast.Int_lit 0)) ]
          (),
        Verify.Active,
        64,
        (function Verify.Too_deep _ -> true | _ -> false),
        "depth" );
      ( "loops too nested",
        Program.make "loopy" ~on_operation:(nest_loops 3) (),
        Verify.Active,
        64,
        (function Verify.Loops_too_nested 3 -> true | _ -> false),
        "nesting" );
      ( "unknown builtin",
        Program.make "what"
          ~on_operation:[ Ast.Do (Ast.Call ("exec_shell", [])) ]
          (),
        Verify.Active,
        64,
        (function Verify.Unknown_builtin "exec_shell" -> true | _ -> false),
        "white-listed" );
      ( "nondeterministic builtin under active replication",
        Program.make "timey"
          ~on_operation:[ Ast.Return (Ast.Call ("clock", [])) ]
          (),
        Verify.Active,
        64,
        (function Verify.Nondeterministic_builtin "clock" -> true | _ -> false),
        "nondeterministic" );
      ( "notify outside event handler",
        Program.make "pushy" ~on_operation:[ notify ] (),
        Verify.Active,
        64,
        (function Verify.Notify_outside_event_handler -> true | _ -> false),
        "event handler" );
      ( "no handlers",
        Program.make "empty" (),
        Verify.Active,
        64,
        (function Verify.Missing_handlers -> true | _ -> false),
        "handler" );
      ( "bad name",
        Program.make "no spaces!" ~on_operation:simple (),
        Verify.Active,
        64,
        (function Verify.Bad_name _ -> true | _ -> false),
        "name" );
    ]
  in
  List.iter
    (fun (what, p, mode, serialized_size, expect, doc_fragment) ->
      let vs = Verify.check ~mode ~serialized_size p in
      match List.find_opt expect vs with
      | None ->
          Alcotest.failf "%s: expected violation missing (got: %s)" what
            (String.concat "; " (List.map Verify.violation_to_string vs))
      | Some v ->
          Alcotest.(check bool)
            (what ^ ": diagnostic mentions " ^ doc_fragment)
            true
            (contains_substring (Verify.violation_to_string v) doc_fragment))
    cases

(* §4 size limits, exactly at the boundary: a program AT each default
   limit is admissible, one past it is rejected. *)
let test_verify_limit_boundaries () =
  let l = Verify.default_limits in
  let has p vs = List.exists p vs in
  let small = [ Ast.Return Ast.Unit_lit ] in
  let check_p ~serialized_size p =
    Verify.check ~mode:Verify.Active ~serialized_size p
  in
  (* serialized bytes *)
  let p = Program.make "p" ~on_operation:small () in
  Alcotest.(check bool) "at byte limit passes" false
    (has
       (function Verify.Too_large _ -> true | _ -> false)
       (check_p ~serialized_size:l.Verify.max_serialized_bytes p));
  Alcotest.(check bool) "byte limit + 1 rejected" true
    (has
       (function Verify.Too_large _ -> true | _ -> false)
       (check_p ~serialized_size:(l.Verify.max_serialized_bytes + 1) p));
  (* AST nodes: Let (_, Int_lit) counts 2 nodes, Do (Not (Int_lit))
     counts 3, letting us hit the limit and limit+1 exactly *)
  let lets n =
    List.init n (fun i -> Ast.Let (Printf.sprintf "v%d" i, Ast.Int_lit i))
  in
  let p_at = Program.make "n" ~on_operation:(lets (l.Verify.max_nodes / 2)) () in
  Alcotest.(check int) "node construction at limit" l.Verify.max_nodes
    (Program.nodes p_at);
  Alcotest.(check bool) "at node limit passes" false
    (has
       (function Verify.Too_many_nodes _ -> true | _ -> false)
       (check_p ~serialized_size:64 p_at));
  let p_over =
    Program.make "n"
      ~on_operation:
        (Ast.Do (Ast.Not (Ast.Int_lit 0)) :: lets ((l.Verify.max_nodes / 2) - 1))
      ()
  in
  Alcotest.(check int) "node construction at limit + 1"
    (l.Verify.max_nodes + 1) (Program.nodes p_over);
  Alcotest.(check bool) "node limit + 1 rejected" true
    (has
       (function
         | Verify.Too_many_nodes n -> n = l.Verify.max_nodes + 1
         | _ -> false)
       (check_p ~serialized_size:64 p_over));
  (* nesting depth: Do (Not^k (Int_lit)) has depth k + 2 *)
  let rec nots k e = if k = 0 then e else nots (k - 1) (Ast.Not e) in
  let p_depth k = Program.make "d" ~on_operation:[ Ast.Do (nots k (Ast.Int_lit 0)) ] () in
  Alcotest.(check int) "depth construction at limit" l.Verify.max_depth
    (Program.depth (p_depth (l.Verify.max_depth - 2)));
  Alcotest.(check bool) "at depth limit passes" false
    (has
       (function Verify.Too_deep _ -> true | _ -> false)
       (check_p ~serialized_size:64 (p_depth (l.Verify.max_depth - 2))));
  Alcotest.(check bool) "depth limit + 1 rejected" true
    (has
       (function
         | Verify.Too_deep n -> n = l.Verify.max_depth + 1
         | _ -> false)
       (check_p ~serialized_size:64 (p_depth (l.Verify.max_depth - 1))));
  (* for-each nesting *)
  let rec nest_loops k =
    if k = 0 then [ Ast.Do (Ast.Var "xs") ]
    else [ Ast.For_each ("x", Ast.Var "xs", nest_loops (k - 1)) ]
  in
  let p_loops k = Program.make "l" ~on_operation:(nest_loops k) () in
  Alcotest.(check bool) "at loop-nesting limit passes" false
    (has
       (function Verify.Loops_too_nested _ -> true | _ -> false)
       (check_p ~serialized_size:64 (p_loops l.Verify.max_loop_nesting)));
  Alcotest.(check bool) "loop nesting + 1 rejected" true
    (has
       (function
         | Verify.Loops_too_nested n -> n = l.Verify.max_loop_nesting + 1
         | _ -> false)
       (check_p ~serialized_size:64 (p_loops (l.Verify.max_loop_nesting + 1))))

let test_verify_determinism_mode () =
  let p =
    Program.make "timey"
      ~on_operation:[ Ast.Return (Ast.Call ("clock", [])) ] ()
  in
  (match verify_ok ~mode:Verify.Active p with
  | [ Verify.Nondeterministic_builtin "clock" ] -> ()
  | vs -> Alcotest.failf "active should reject clock: %d violations" (List.length vs));
  Alcotest.(check int) "passive allows clock" 0
    (List.length (verify_ok ~mode:Verify.Passive p))

let test_verify_size_limits () =
  let huge_body =
    List.init 1000 (fun i -> Ast.Let (Printf.sprintf "v%d" i, Ast.Int_lit i))
  in
  let p = Program.make "huge" ~on_operation:huge_body () in
  let vs = verify_ok p in
  Alcotest.(check bool) "node limit triggered" true
    (List.exists (function Verify.Too_many_nodes _ -> true | _ -> false) vs)

let test_verify_loop_nesting () =
  let deep_loop =
    Ast.For_each ("a", Ast.Var "xs",
      [ Ast.For_each ("b", Ast.Var "xs",
          [ Ast.For_each ("c", Ast.Var "xs", [ Ast.Do (Ast.Var "c") ]) ]) ])
  in
  let p = Program.make "nested" ~on_operation:[ Ast.Let ("xs", Ast.Unit_lit); deep_loop ] () in
  let vs = verify_ok p in
  Alcotest.(check bool) "nesting bound" true
    (List.exists (function Verify.Loops_too_nested 3 -> true | _ -> false) vs)

let test_verify_notify_placement () =
  let notify = Ast.Do (Ast.Svc (Ast.Svc_notify, [ Ast.Int_lit 1; Ast.Str_lit "/x" ])) in
  let in_op = Program.make "n1" ~on_operation:[ notify ] () in
  Alcotest.(check bool) "notify rejected in op handler" true
    (List.mem Verify.Notify_outside_event_handler (verify_ok in_op));
  let in_ev = Program.make "n2" ~event_subs:[] ~on_event:[ notify ] () in
  Alcotest.(check bool) "notify fine in event handler" false
    (List.mem Verify.Notify_outside_event_handler (verify_ok in_ev))

let test_verify_bad_names () =
  List.iter
    (fun name ->
      let p = Program.make name ~on_operation:[ Ast.Return Ast.Unit_lit ] () in
      Alcotest.(check bool) ("reject " ^ name) true
        (List.exists (function Verify.Bad_name _ -> true | _ -> false) (verify_ok p)))
    [ ""; "has space"; "has/slash"; String.make 100 'x' ]

let test_verify_rejects_handlerless () =
  let p = Program.make "empty" () in
  Alcotest.(check bool) "no handlers" true
    (List.mem Verify.Missing_handlers (verify_ok p))

(* ------------------------------------------------------------------ *)
(* Sandbox                                                             *)
(* ------------------------------------------------------------------ *)

(* in-memory mock proxy over a string map *)
let mock_proxy () =
  let store : (string, string * int * int) Hashtbl.t = Hashtbl.create 8 in
  let next_ctime = ref 0 in
  let record oid =
    match Hashtbl.find_opt store oid with
    | Some (data, version, ctime) -> Ok (Value.obj ~id:oid ~data ~version ~ctime)
    | None -> Error ("no object " ^ oid)
  in
  let blocked = ref [] in
  let proxy =
    {
      Sandbox.p_read = record;
      p_exists = (fun oid -> Hashtbl.mem store oid);
      p_sub_objects =
        (fun oid ->
          let prefix = oid ^ "/" in
          Ok
            (Hashtbl.fold
               (fun id (data, version, ctime) acc ->
                 if String.length id > String.length prefix
                    && String.sub id 0 (String.length prefix) = prefix
                 then Value.obj ~id ~data ~version ~ctime :: acc
                 else acc)
               store []
            |> List.sort compare));
      p_create =
        (fun ~sequential ~oid ~data ->
          let oid = if sequential then Printf.sprintf "%s%010d" oid !next_ctime else oid in
          if Hashtbl.mem store oid then Error "exists"
          else begin
            incr next_ctime;
            Hashtbl.replace store oid (data, 0, !next_ctime);
            Ok oid
          end);
      p_update =
        (fun ~oid ~data ->
          match Hashtbl.find_opt store oid with
          | Some (_, v, c) ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok (v + 1)
          | None -> Error "no object");
      p_cas =
        (fun ~oid ~expected ~data ->
          match Hashtbl.find_opt store oid with
          | Some (cur, v, c) when cur = expected ->
              Hashtbl.replace store oid (data, v + 1, c);
              Ok true
          | Some _ -> Ok false
          | None -> Error "no object");
      p_delete = (fun oid -> Ok (Hashtbl.mem store oid && (Hashtbl.remove store oid; true)));
      p_block = (fun oid -> blocked := oid :: !blocked; Ok ());
      p_monitor = (fun oid -> Hashtbl.replace store oid ("", 0, 0); Ok ());
      p_notify = (fun ~client:_ ~oid:_ -> Ok ());
      p_clock = (fun () -> 12345);
    }
  in
  (proxy, store, blocked)

let run_handler ?limits proxy handler params =
  Sandbox.run ?limits ~proxy ~params handler

let test_sandbox_counter_increments () =
  let proxy, store, _ = mock_proxy () in
  Hashtbl.replace store "/ctr" ("41", 0, 0);
  match run_handler proxy (Option.get counter_program.Program.on_operation) [] with
  | Ok (Value.Int 42, _, _) ->
      let data, _, _ = Hashtbl.find store "/ctr" in
      Alcotest.(check string) "stored" "42" data
  | Ok (v, _, _) -> Alcotest.failf "unexpected value %a" Value.pp v
  | Error e -> Alcotest.failf "sandbox error: %s" (Sandbox.error_to_string e)

let test_sandbox_queue_removes_head () =
  let proxy, store, _ = mock_proxy () in
  Hashtbl.replace store "/queue/b" ("second", 0, 5);
  Hashtbl.replace store "/queue/a" ("first", 0, 2);
  match run_handler proxy (Option.get queue_program.Program.on_operation) [] with
  | Ok (Value.Str "first", _, _) ->
      Alcotest.(check bool) "head removed" false (Hashtbl.mem store "/queue/a");
      Alcotest.(check bool) "tail kept" true (Hashtbl.mem store "/queue/b")
  | Ok (v, _, _) -> Alcotest.failf "unexpected %a" Value.pp v
  | Error e -> Alcotest.failf "error: %s" (Sandbox.error_to_string e)

let test_sandbox_fuel_exhaustion () =
  let proxy, store, _ = mock_proxy () in
  for i = 1 to 100 do
    Hashtbl.replace store (Printf.sprintf "/big/o%03d" i) ("", 0, i)
  done;
  (* a long but legal loop over a big list *)
  let body =
    [
      Ast.Let ("xs", Ast.Svc (Ast.Svc_sub_objects, [ Ast.Str_lit "/big" ]));
      Ast.For_each ("x", Ast.Var "xs", [ Ast.Do (Ast.Var "x") ]);
      Ast.Return (Ast.Int_lit 0);
    ]
  in
  let limits = { Sandbox.default_limits with max_steps = 10 } in
  match run_handler ~limits proxy body [] with
  | Error Sandbox.Fuel_exhausted -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Sandbox.error_to_string e)
  | Ok _ -> Alcotest.fail "should exhaust fuel"

let test_sandbox_service_call_budget () =
  let proxy, store, _ = mock_proxy () in
  Hashtbl.replace store "/x" ("v", 0, 0);
  let body =
    List.init 100 (fun _ -> Ast.Do (Ast.Svc (Ast.Svc_read, [ Ast.Str_lit "/x" ])))
  in
  let limits = { Sandbox.default_limits with max_service_calls = 5 } in
  match run_handler ~limits proxy body [] with
  | Error Sandbox.Service_call_limit -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Sandbox.error_to_string e)
  | Ok _ -> Alcotest.fail "should hit service-call cap"

let test_sandbox_create_budget () =
  let proxy, _, _ = mock_proxy () in
  let body =
    List.init 100 (fun i ->
        Ast.Do (Ast.Svc (Ast.Svc_create, [ Ast.Str_lit (Printf.sprintf "/o%d" i); Ast.Str_lit "" ])))
  in
  let limits = { Sandbox.default_limits with max_creates = 3; max_service_calls = 1000 } in
  match run_handler ~limits proxy body [] with
  | Error Sandbox.Create_limit -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Sandbox.error_to_string e)
  | Ok _ -> Alcotest.fail "should hit create cap"

let test_sandbox_value_size_budget () =
  let proxy, _, _ = mock_proxy () in
  (* doubling concat: 2^20 bytes exceeds a 1KB budget quickly *)
  let body =
    Ast.Let ("s", Ast.Str_lit (String.make 64 'a'))
    :: List.init 20 (fun _ -> Ast.Let ("s", Ast.Binop (Ast.Concat, Ast.Var "s", Ast.Var "s")))
  in
  let limits = { Sandbox.default_limits with max_value_bytes = 1024 } in
  match run_handler ~limits proxy body [] with
  | Error (Sandbox.Value_too_large _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Sandbox.error_to_string e)
  | Ok _ -> Alcotest.fail "should hit value-size cap"

let test_sandbox_type_errors_isolated () =
  let proxy, _, _ = mock_proxy () in
  let body = [ Ast.Return (Ast.Binop (Ast.Add, Ast.Str_lit "x", Ast.Int_lit 1)) ] in
  match run_handler proxy body [] with
  | Error (Sandbox.Type_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Sandbox.error_to_string e)
  | Ok _ -> Alcotest.fail "should be a type error"

let test_sandbox_division_by_zero () =
  let proxy, _, _ = mock_proxy () in
  let body = [ Ast.Return (Ast.Binop (Ast.Div, Ast.Int_lit 1, Ast.Int_lit 0)) ] in
  match run_handler proxy body [] with
  | Error (Sandbox.Type_error _) -> ()
  | _ -> Alcotest.fail "division by zero must abort the extension"

let test_sandbox_abort_stmt () =
  let proxy, store, _ = mock_proxy () in
  Hashtbl.replace store "/x" ("v", 0, 0);
  let body =
    [ Ast.Do (Ast.Svc (Ast.Svc_update, [ Ast.Str_lit "/x"; Ast.Str_lit "changed" ]));
      Ast.Abort "deliberate" ]
  in
  (match run_handler proxy body [] with
  | Error (Sandbox.Aborted "deliberate") -> ()
  | _ -> Alcotest.fail "abort must surface");
  (* NOTE: the mock proxy applies eagerly; real hosts discard on abort —
     covered by the EZK/EDS integration tests. *)
  ()

let test_sandbox_params () =
  let proxy, _, _ = mock_proxy () in
  let body = [ Ast.Return (Ast.Binop (Ast.Concat, Ast.Param "oid", Ast.Param "data")) ] in
  match
    run_handler proxy body
      [ ("oid", Value.Str "/a"); ("data", Value.Str "!") ]
  with
  | Ok (Value.Str "/a!", _, _) -> ()
  | _ -> Alcotest.fail "params must be bound"

let test_sandbox_foreach_scoping () =
  let proxy, _, _ = mock_proxy () in
  let body =
    [
      Ast.Let ("x", Ast.Int_lit 99);
      Ast.Let ("sum", Ast.Int_lit 0);
      Ast.For_each ("x", Ast.Call ("list_nth", [ Ast.Var "wrap"; Ast.Int_lit 0 ]), []);
    ]
  in
  ignore body;
  (* simpler: verify loop variable restoration with a direct program *)
  let body =
    [
      Ast.Let ("x", Ast.Int_lit 99);
      Ast.For_each ("x", Ast.Svc (Ast.Svc_sub_objects, [ Ast.Str_lit "/none" ]), [])
      ;
      Ast.Return (Ast.Var "x");
    ]
  in
  match run_handler proxy body [] with
  | Ok (Value.Int 99, _, _) -> ()
  | Ok (v, _, _) -> Alcotest.failf "loop var leaked: %a" Value.pp v
  | Error e -> Alcotest.failf "error: %s" (Sandbox.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Manager                                                             *)
(* ------------------------------------------------------------------ *)

let test_manager_register_and_match () =
  let m = Manager.create ~mode:Verify.Passive () in
  (match Manager.apply_registration m ~name:"ctr-increment" ~owner:7
           ~code:(Codec.serialize counter_program) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  Alcotest.(check int) "registered" 1 (Manager.extension_count m);
  (* owner matches *)
  Alcotest.(check bool) "owner triggers" true
    (Manager.match_operation m ~client:7 ~kind:Subscription.K_read
       ~oid:"/ctr-increment" <> None);
  (* stranger does not *)
  Alcotest.(check bool) "stranger bypasses" true
    (Manager.match_operation m ~client:8 ~kind:Subscription.K_read
       ~oid:"/ctr-increment" = None);
  (* after ack, stranger matches *)
  Manager.apply_ack m ~name:"ctr-increment" ~client:8;
  Alcotest.(check bool) "acked client triggers" true
    (Manager.match_operation m ~client:8 ~kind:Subscription.K_read
       ~oid:"/ctr-increment" <> None);
  (* wrong oid/kind do not *)
  Alcotest.(check bool) "wrong oid" true
    (Manager.match_operation m ~client:7 ~kind:Subscription.K_read ~oid:"/other" = None);
  Alcotest.(check bool) "wrong kind" true
    (Manager.match_operation m ~client:7 ~kind:Subscription.K_delete
       ~oid:"/ctr-increment" = None)

let test_manager_last_registration_wins () =
  let m = Manager.create ~mode:Verify.Passive () in
  let mk name ret =
    Program.make name
      ~op_subs:[ { Subscription.op_kinds = [ Subscription.K_read ];
                   op_oid = Subscription.Exact "/x" } ]
      ~on_operation:[ Ast.Return (Ast.Int_lit ret) ] ()
  in
  ignore (Manager.apply_registration m ~name:"first" ~owner:1 ~code:(Codec.serialize (mk "first" 1)));
  ignore (Manager.apply_registration m ~name:"second" ~owner:1 ~code:(Codec.serialize (mk "second" 2)));
  match Manager.match_operation m ~client:1 ~kind:Subscription.K_read ~oid:"/x" with
  | Some e -> Alcotest.(check string) "latest wins" "second" e.Manager.program.Program.name
  | None -> Alcotest.fail "no match"

let test_manager_deregistration () =
  let m = Manager.create ~mode:Verify.Passive () in
  ignore (Manager.apply_registration m ~name:"ctr-increment" ~owner:1
            ~code:(Codec.serialize counter_program));
  Manager.apply_deregistration m ~name:"ctr-increment";
  Alcotest.(check int) "gone" 0 (Manager.extension_count m);
  Alcotest.(check bool) "no match" true
    (Manager.match_operation m ~client:1 ~kind:Subscription.K_read
       ~oid:"/ctr-increment" = None)

let test_manager_rejects_bad_code () =
  let m = Manager.create ~mode:Verify.Active () in
  (match Manager.apply_registration m ~name:"x" ~owner:1 ~code:"(((" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse garbage accepted");
  let nondet = Program.make "x" ~on_operation:[ Ast.Return (Ast.Call ("clock", [])) ] () in
  match Manager.apply_registration m ~name:"x" ~owner:1 ~code:(Codec.serialize nondet) with
  | Error _ -> Alcotest.(check int) "nothing registered" 0 (Manager.extension_count m)
  | Ok _ -> Alcotest.fail "nondeterministic extension accepted in active mode"

let test_manager_path_classification () =
  Alcotest.(check bool) "root" true (Manager.classify_path "/em" = Manager.Em_root);
  Alcotest.(check bool) "index" true (Manager.classify_path "/em/index" = Manager.Em_index);
  Alcotest.(check bool) "ext" true
    (Manager.classify_path "/em/foo" = Manager.Em_extension "foo");
  Alcotest.(check bool) "ack" true
    (Manager.classify_path "/em/foo/ack/42" = Manager.Em_ack ("foo", 42));
  Alcotest.(check bool) "other" true (Manager.classify_path "/queue/a" = Manager.Not_em);
  (* malformed paths under /em must not classify as registrations/acks *)
  Alcotest.(check bool) "empty extension name" true
    (Manager.classify_path "/em/" = Manager.Not_em);
  Alcotest.(check bool) "empty name with ack" true
    (Manager.classify_path "/em//ack/1" = Manager.Not_em);
  Alcotest.(check bool) "negative ack client" true
    (Manager.classify_path "/em/x/ack/-1" = Manager.Not_em);
  Alcotest.(check bool) "non-numeric ack client" true
    (Manager.classify_path "/em/x/ack/notanint" = Manager.Not_em);
  Alcotest.(check bool) "empty ack segment" true
    (Manager.classify_path "/em/x/ack/" = Manager.Not_em)

let test_manager_event_matching_order () =
  let m = Manager.create ~mode:Verify.Passive () in
  let mk name =
    Program.make name
      ~event_subs:[ { Subscription.ev_kinds = [ Subscription.E_deleted ];
                      ev_oid = Subscription.Under "/clients" } ]
      ~on_event:[ Ast.Return Ast.Unit_lit ] ()
  in
  ignore (Manager.apply_registration m ~name:"ev-b" ~owner:1 ~code:(Codec.serialize (mk "ev-b")));
  ignore (Manager.apply_registration m ~name:"ev-a" ~owner:1 ~code:(Codec.serialize (mk "ev-a")));
  let matched =
    Manager.match_events m ~kind:Subscription.E_deleted ~oid:"/clients/7"
  in
  Alcotest.(check (list string)) "registration order"
    [ "ev-b"; "ev-a" ]
    (List.map (fun (e : Manager.entry) -> e.Manager.program.Program.name) matched);
  Alcotest.(check int) "non-matching oid" 0
    (List.length (Manager.match_events m ~kind:Subscription.E_deleted ~oid:"/other/7"))

let test_manager_verification_disabled () =
  (* §4.2: the escape hatch waives structural limits but never the
     determinism requirement of active replication *)
  let huge_body =
    List.init 1000 (fun i -> Ast.Let (Printf.sprintf "v%d" i, Ast.Int_lit i))
  in
  let huge = Program.make "huge" ~on_operation:huge_body () in
  let strict = Manager.create ~mode:Verify.Active () in
  (match Manager.apply_registration strict ~name:"huge" ~owner:1
           ~code:(Codec.serialize huge) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict manager must reject oversize programs");
  let lax = Manager.create ~mode:Verify.Active ~verification_enabled:false () in
  (match Manager.apply_registration lax ~name:"huge" ~owner:1
           ~code:(Codec.serialize huge) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lax manager should accept oversize: %s" e);
  let nondet =
    Program.make "timey" ~on_operation:[ Ast.Return (Ast.Call ("clock", [])) ] ()
  in
  match Manager.apply_registration lax ~name:"timey" ~owner:1
          ~code:(Codec.serialize nondet) with
  | Error _ -> ()
  | Ok _ ->
      Alcotest.fail "nondeterminism must stay rejected under active replication"

let test_manager_index_data () =
  let m = Manager.create ~mode:Verify.Passive () in
  ignore (Manager.apply_registration m ~name:"ctr-increment" ~owner:1
            ~code:(Codec.serialize counter_program));
  ignore (Manager.apply_registration m ~name:"queue-remove" ~owner:1
            ~code:(Codec.serialize queue_program));
  Alcotest.(check string) "index lists extensions"
    "ctr-increment\nqueue-remove" (Manager.index_data m)

(* ------------------------------------------------------------------ *)
(* Builtins (table-driven)                                             *)
(* ------------------------------------------------------------------ *)

let test_builtins_arity_enforced () =
  (* every white-listed builtin must reject a wrong argument count via the
     sandbox (never raise) *)
  let proxy, _, _ = mock_proxy () in
  List.iter
    (fun (name, (b : Builtins.t)) ->
      let wrong = List.init (b.Builtins.arity + 1) (fun i -> Ast.Int_lit i) in
      let body = [ Ast.Return (Ast.Call (name, wrong)) ] in
      match Sandbox.run ~proxy ~params:[] body with
      | Error (Sandbox.Type_error _) -> ()
      | Error e ->
          Alcotest.failf "%s wrong-arity gave %s" name (Sandbox.error_to_string e)
      | Ok _ -> Alcotest.failf "%s accepted wrong arity" name)
    Builtins.table

let test_builtins_semantics () =
  let cases =
    [
      ("str_len", [ Value.Str "abcd" ], Ok (Value.Int 4));
      ("str_sub", [ Value.Str "hello"; Value.Int 1; Value.Int 3 ], Ok (Value.Str "ell"));
      ("str_sub", [ Value.Str "hi"; Value.Int 1; Value.Int 5 ], Error ());
      ("str_index", [ Value.Str "a/b"; Value.Str "/" ], Ok (Value.Int 1));
      ("str_index", [ Value.Str "ab"; Value.Str "/" ], Ok (Value.Int (-1)));
      ("str_suffix_after", [ Value.Str "/a/b/c"; Value.Str "/" ], Ok (Value.Str "c"));
      ("str_suffix_after", [ Value.Str "nope"; Value.Str "/" ], Ok (Value.Str "nope"));
      ("int_of_str", [ Value.Str " 42 " ], Ok (Value.Int 42));
      ("int_of_str", [ Value.Str "x" ], Error ());
      ("str_of_int", [ Value.Int (-7) ], Ok (Value.Str "-7"));
      ("min", [ Value.Int 3; Value.Int 5 ], Ok (Value.Int 3));
      ("max", [ Value.Int 3; Value.Int 5 ], Ok (Value.Int 5));
      ("abs", [ Value.Int (-9) ], Ok (Value.Int 9));
      ("list_len", [ Value.List [ Value.Int 1; Value.Int 2 ] ], Ok (Value.Int 2));
      ("list_nth", [ Value.List [ Value.Str "a" ]; Value.Int 0 ], Ok (Value.Str "a"));
      ("list_nth", [ Value.List []; Value.Int 0 ], Error ());
      ("list_empty", [ Value.List [] ], Ok (Value.Bool true));
      ("field", [ Value.obj ~id:"/x" ~data:"d" ~version:1 ~ctime:2; Value.Str "version" ],
       Ok (Value.Int 1));
      ("field", [ Value.obj ~id:"/x" ~data:"d" ~version:1 ~ctime:2; Value.Str "zzz" ],
       Error ());
      ("min_by_ctime",
       [ Value.List
           [ Value.obj ~id:"/b" ~data:"" ~version:0 ~ctime:9;
             Value.obj ~id:"/a" ~data:"" ~version:0 ~ctime:3 ] ],
       Ok (Value.obj ~id:"/a" ~data:"" ~version:0 ~ctime:3));
      ("min_by_ctime", [ Value.List [] ], Ok Value.Unit);
    ]
  in
  List.iter
    (fun (name, args, expected) ->
      let b = Option.get (Builtins.find name) in
      match (b.Builtins.fn args, expected) with
      | Ok got, Ok want ->
          Alcotest.(check bool)
            (Printf.sprintf "%s result" name)
            true (Value.equal got want)
      | Error _, Error () -> ()
      | Ok got, Error () ->
          Alcotest.failf "%s should fail, got %a" name Value.pp got
      | Error e, Ok _ -> Alcotest.failf "%s failed: %s" name e)
    cases

(* ------------------------------------------------------------------ *)
(* Subscription patterns                                               *)
(* ------------------------------------------------------------------ *)

let test_subscription_patterns () =
  Alcotest.(check bool) "exact" true
    (Subscription.oid_matches (Subscription.Exact "/a") "/a");
  Alcotest.(check bool) "exact miss" false
    (Subscription.oid_matches (Subscription.Exact "/a") "/a/b");
  Alcotest.(check bool) "under hit" true
    (Subscription.oid_matches (Subscription.Under "/q") "/q/item1");
  Alcotest.(check bool) "under self miss" false
    (Subscription.oid_matches (Subscription.Under "/q") "/q");
  Alcotest.(check bool) "under sibling miss" false
    (Subscription.oid_matches (Subscription.Under "/q") "/qq/x");
  Alcotest.(check bool) "any" true
    (Subscription.oid_matches Subscription.Any_oid "/whatever")

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "edc_core"
    [
      ( "sexp",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_sexp_roundtrip_basic;
          Alcotest.test_case "rejects garbage" `Quick test_sexp_rejects_garbage;
          Alcotest.test_case "rejects unknown escapes" `Quick
            test_sexp_rejects_unknown_escape;
          qc prop_sexp_roundtrip;
          qc prop_sexp_roundtrip_bytes;
          qc prop_sexp_encoding_fixpoint;
        ] );
      ( "value",
        [
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "field access" `Quick test_value_field_access;
        ] );
      ( "codec",
        [
          Alcotest.test_case "program roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects unknown ops" `Quick test_codec_rejects_unknown_ops;
          Alcotest.test_case "rejects non-canonical ints" `Quick
            test_codec_rejects_noncanonical_ints;
          qc prop_codec_roundtrip;
          qc prop_codec_rejects_truncated;
          qc prop_codec_garbage_is_graceful;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts recipes" `Quick test_verify_accepts_recipes;
          Alcotest.test_case "unknown builtin" `Quick test_verify_rejects_unknown_builtin;
          Alcotest.test_case "determinism modes" `Quick test_verify_determinism_mode;
          Alcotest.test_case "size limits" `Quick test_verify_size_limits;
          Alcotest.test_case "rejection table" `Quick test_verify_rejection_table;
          Alcotest.test_case "limit boundaries" `Quick test_verify_limit_boundaries;
          Alcotest.test_case "loop nesting" `Quick test_verify_loop_nesting;
          Alcotest.test_case "notify placement" `Quick test_verify_notify_placement;
          Alcotest.test_case "bad names" `Quick test_verify_bad_names;
          Alcotest.test_case "handlerless" `Quick test_verify_rejects_handlerless;
        ] );
      ( "sandbox",
        [
          Alcotest.test_case "counter increments" `Quick test_sandbox_counter_increments;
          Alcotest.test_case "queue removes head" `Quick test_sandbox_queue_removes_head;
          Alcotest.test_case "fuel exhaustion" `Quick test_sandbox_fuel_exhaustion;
          Alcotest.test_case "service-call budget" `Quick test_sandbox_service_call_budget;
          Alcotest.test_case "create budget" `Quick test_sandbox_create_budget;
          Alcotest.test_case "value-size budget" `Quick test_sandbox_value_size_budget;
          Alcotest.test_case "type error isolated" `Quick test_sandbox_type_errors_isolated;
          Alcotest.test_case "division by zero" `Quick test_sandbox_division_by_zero;
          Alcotest.test_case "abort statement" `Quick test_sandbox_abort_stmt;
          Alcotest.test_case "parameters" `Quick test_sandbox_params;
          Alcotest.test_case "for-each scoping" `Quick test_sandbox_foreach_scoping;
        ] );
      ( "manager",
        [
          Alcotest.test_case "register and match" `Quick test_manager_register_and_match;
          Alcotest.test_case "last registration wins" `Quick
            test_manager_last_registration_wins;
          Alcotest.test_case "deregistration" `Quick test_manager_deregistration;
          Alcotest.test_case "rejects bad code" `Quick test_manager_rejects_bad_code;
          Alcotest.test_case "path classification" `Quick test_manager_path_classification;
          Alcotest.test_case "event ordering" `Quick test_manager_event_matching_order;
          Alcotest.test_case "verification disabled (§4.2)" `Quick
            test_manager_verification_disabled;
          Alcotest.test_case "index data" `Quick test_manager_index_data;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "arity enforced for every builtin" `Quick
            test_builtins_arity_enforced;
          Alcotest.test_case "semantics table" `Quick test_builtins_semantics;
        ] );
      ( "subscription",
        [ Alcotest.test_case "patterns" `Quick test_subscription_patterns ] );
    ]
