(* Snapshot pipeline: copy-on-write capture, deterministic portable
   images, lazy serialization at the server, and the chunked state
   transfer — including a deterministic mid-transfer link kill whose
   resume must continue from the last acknowledged chunk, and a chaos run
   where recovery goes through state transfer with the linearizability
   checker on. *)

open Edc_simnet
open Edc_harness
module Zk = Edc_zookeeper
module Data_tree = Zk.Data_tree
module Znode = Zk.Znode
module Txn = Zk.Txn
module Zab = Edc_replication.Zab
module W = Edc_checker.Wgl

let qc = QCheck_alcotest.to_alcotest

let portable_bytes (p : Data_tree.portable) =
  Edc_wire.Wire.encode (Zk.Wire_format.portable_to_wire p)

(* Toy payload-history codec for bare-Zab state transfer tests. *)
let hist_encode (hist : (Zab.zxid * string) list) =
  Edc_wire.Wire.encode
    (Edc_wire.Wire.List
       (List.map
          (fun ((z : Zab.zxid), s) ->
            Edc_wire.Wire.(List [ Int z.epoch; Int z.counter; Str s ]))
          hist))

let hist_decode blob : ((Zab.zxid * string) list, string) result =
  Result.bind (Edc_wire.Wire.decode blob) (fun w ->
      Edc_wire.Wire.map_list
        (function
          | Edc_wire.Wire.List
              [ Edc_wire.Wire.Int epoch; Edc_wire.Wire.Int counter;
                Edc_wire.Wire.Str s ] ->
              Ok ({ Zab.epoch; counter }, s)
          | _ -> Error "bad history entry")
        w)

(* ------------------------------------------------------------------ *)
(* COW images vs. a deep-copy oracle (QCheck differential)             *)
(* ------------------------------------------------------------------ *)

(* A small closed universe of flat paths keeps every generated op
   applicable (parents always exist, no children to orphan). *)
let paths = Array.init 8 (Printf.sprintf "/n%d")

let apply_op tr (k, i, data) =
  let path = paths.(i) in
  match k with
  | 0 ->
      if not (Data_tree.mem tr path) then
        Data_tree.apply_create tr ~path ~data ~ephemeral_owner:None
  | 1 -> (
      match Data_tree.exists tr path with
      | Some st ->
          Data_tree.apply_set tr ~path ~data ~version:(st.Znode.version + 1)
      | None -> ())
  | _ -> if Data_tree.mem tr path then Data_tree.apply_delete tr ~path

let ops_arb =
  let op_gen =
    QCheck.Gen.(
      triple (int_bound 2) (int_bound 7)
        (string_size ~gen:(char_range 'a' 'z') (int_bound 6)))
  in
  let print (pre, post) =
    let p ops =
      String.concat ";"
        (List.map (fun (k, i, d) -> Printf.sprintf "(%d,%d,%S)" k i d) ops)
    in
    Printf.sprintf "prefix=[%s] suffix=[%s]" (p pre) (p post)
  in
  QCheck.make ~print
    QCheck.Gen.(
      pair (list_size (int_bound 40) op_gen) (list_size (int_bound 40) op_gen))

(* An image captured at point P must materialize to exactly what a deep
   copy taken at P contains, no matter how the live tree mutates
   afterwards — and the live tree itself must stay consistent with a
   fresh capture. *)
let prop_cow_stable_under_mutation =
  QCheck.Test.make ~name:"COW image = deep-copy oracle under mutation"
    ~count:200 ops_arb (fun (prefix, suffix) ->
      let tr = Data_tree.create () in
      List.iter (apply_op tr) prefix;
      let image = Data_tree.export tr in
      let oracle = Data_tree.export_eager tr in
      List.iter (apply_op tr) suffix;
      let got = Data_tree.materialize image in
      Data_tree.release image;
      let frozen = portable_bytes got = portable_bytes oracle in
      (* the live tree must agree with a post-mutation capture too *)
      let live_image = Data_tree.export tr in
      let live = Data_tree.materialize live_image in
      Data_tree.release live_image;
      let live_ok = portable_bytes live = portable_bytes (Data_tree.export_eager tr) in
      frozen && live_ok && Data_tree.active_images tr = 0)

(* ------------------------------------------------------------------ *)
(* Deterministic portable bytes                                        *)
(* ------------------------------------------------------------------ *)

(* Two trees that reach the same logical state through different COW
   histories (one exports and releases images mid-build, bumping
   generations and stamps; one never does) must marshal to byte-identical
   portable images: stamps are normalized and nodes are path-sorted, so
   the blob digest can identify a snapshot across leaders. *)
let test_portable_bytes_deterministic () =
  let build ~snapshot_every =
    let tr = Data_tree.create () in
    for i = 0 to 19 do
      Data_tree.apply_create tr
        ~path:(Printf.sprintf "/d%02d" i)
        ~data:(string_of_int i) ~ephemeral_owner:None;
      if snapshot_every > 0 && i mod snapshot_every = 0 then begin
        let img = Data_tree.export tr in
        ignore (Data_tree.materialize img : Data_tree.portable);
        Data_tree.release img
      end
    done;
    for i = 0 to 19 do
      Data_tree.apply_set tr
        ~path:(Printf.sprintf "/d%02d" i)
        ~data:(Printf.sprintf "v%d" i) ~version:1
    done;
    tr
  in
  let quiet = build ~snapshot_every:0 in
  let busy = build ~snapshot_every:3 in
  let pq = Data_tree.export_eager quiet and pb = Data_tree.export_eager busy in
  Alcotest.(check bool)
    "identical state, different COW history: identical bytes" true
    (portable_bytes pq = portable_bytes pb);
  let img = Data_tree.export busy in
  let via_image = Data_tree.materialize img in
  Data_tree.release img;
  Alcotest.(check bool)
    "eager export and materialized image agree" true
    (portable_bytes via_image = portable_bytes pq);
  let ps = List.map fst pq.Data_tree.img_nodes in
  Alcotest.(check (list string))
    "nodes are path-sorted" (List.sort compare ps) ps

(* ------------------------------------------------------------------ *)
(* Importing the same image twice yields independent trees             *)
(* ------------------------------------------------------------------ *)

let test_import_twice_independent () =
  let tr = Data_tree.create () in
  List.iter
    (fun (p, d) -> Data_tree.apply_create tr ~path:p ~data:d ~ephemeral_owner:None)
    [ ("/x", "1"); ("/y", "2"); ("/z", "3") ];
  let img = Data_tree.export tr in
  let p = Data_tree.materialize img in
  Data_tree.release img;
  let a = Data_tree.create () and b = Data_tree.create () in
  Data_tree.import_portable a p;
  Data_tree.import_portable b p;
  Alcotest.(check bool) "round-trip is lossless" true
    (portable_bytes (Data_tree.export_eager a) = portable_bytes p);
  (* mutating one import (or the origin) must not leak into the other *)
  Data_tree.apply_set a ~path:"/x" ~data:"mutated" ~version:7;
  Data_tree.apply_delete a ~path:"/y";
  Data_tree.apply_delete tr ~path:"/z";
  Alcotest.(check bool) "sibling import untouched" true
    (portable_bytes (Data_tree.export_eager b) = portable_bytes p);
  (match Data_tree.get_data b "/x" with
  | Ok (d, _) -> Alcotest.(check string) "data preserved" "1" d
  | Error _ -> Alcotest.fail "/x missing after import");
  Alcotest.(check bool) "no anomalies" true (Data_tree.anomalies a = 0)

(* ------------------------------------------------------------------ *)
(* Server-level cadence: lazy serialization, install resets interval   *)
(* ------------------------------------------------------------------ *)

let run_until sim ~step ~limit pred =
  let deadline = Sim_time.add (Sim.now sim) limit in
  let rec go () =
    if pred () then true
    else if Sim_time.compare (Sim.now sim) deadline >= 0 then false
    else begin
      Sim.run ~until:(Sim_time.add (Sim.now sim) step) sim;
      go ()
    end
  in
  go ()

(* With [snapshot_interval = 20]: 50 txns give the survivors two captures
   and zero marshals (nobody asked for bytes yet); restarting the lagged
   follower forces exactly one serialization; the install must reset the
   follower's cadence so it does not immediately re-snapshot state it
   just imported. *)
let test_server_lazy_serialization_and_install_cadence () =
  let sim = Sim.create ~seed:77 () in
  let server_config =
    { Zk.Server.default_config with snapshot_interval = 20 }
  in
  let c = Zk.Cluster.create ~server_config sim in
  Zk.Cluster.run_for c (Sim_time.ms 200);
  let servers = Zk.Cluster.servers c in
  let leader =
    match Zk.Cluster.leader c with
    | Some l -> l
    | None -> Alcotest.fail "no leader elected"
  in
  let lagger =
    servers.(if Zk.Server.id leader = 2 then 1 else 2)
  in
  Zk.Cluster.crash_server c (Zk.Server.id lagger);
  let propose_n ~from n =
    for k = from to from + n - 1 do
      Zk.Server.propose_internal leader
        [ Txn.Tcreate
            { path = Printf.sprintf "/k%03d" k; data = "d"; ephemeral_owner = None };
        ]
    done
  in
  propose_n ~from:0 50;
  Zk.Cluster.run_for c (Sim_time.sec 1);
  Alcotest.(check int) "two captures at interval 20/50 txns" 2
    (Zk.Server.snapshot_captures leader);
  Alcotest.(check int) "no transfer yet: nothing marshaled" 0
    (Zk.Server.snapshot_serializations leader);
  Zk.Cluster.restart_server c (Zk.Server.id lagger);
  let installed =
    run_until sim ~step:(Sim_time.ms 10) ~limit:(Sim_time.sec 10) (fun () ->
        Zk.Server.snapshot_installs lagger > 0
        && Zab.delivered_length (Zk.Server.zab lagger) >= 50)
  in
  Alcotest.(check bool) "lagged follower recovered via state transfer" true
    installed;
  Alcotest.(check int) "exactly one forced serialization" 1
    (Zk.Server.snapshot_serializations leader);
  Alcotest.(check int) "importer did not capture" 0
    (Zk.Server.snapshot_captures lagger);
  (* 20 more txns: one more capture everywhere — the importer snapshots
     once, not twice, because the install restarted its interval *)
  propose_n ~from:50 20;
  Zk.Cluster.run_for c (Sim_time.sec 1);
  Alcotest.(check int) "leader captured once more" 3
    (Zk.Server.snapshot_captures leader);
  Alcotest.(check int) "importer captured exactly once after install" 1
    (Zk.Server.snapshot_captures lagger);
  Array.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d: interval never fired on a compacted log"
           (Zk.Server.id s))
        0
        (Zk.Server.snapshots_skipped s))
    servers;
  Alcotest.(check int) "still exactly one serialization" 1
    (Array.fold_left (fun a s -> a + Zk.Server.snapshot_serializations s) 0 servers)

(* ------------------------------------------------------------------ *)
(* Zab-level mid-transfer link kill: resume, not restart               *)
(* ------------------------------------------------------------------ *)

type zcluster = {
  zsim : Sim.t;
  znet : string Zab.msg Net.t;
  zreplicas : string Zab.t array;
  mutable zdelivered : (Zab.zxid * string) list array;  (* newest first *)
}

let make_zcluster ?zab_config ?(seed = 7) () =
  let n = 3 in
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let peers = List.init n Fun.id in
  let delivered = Array.make n [] in
  let send_from i ~dst msg =
    Net.send net ~src:i ~dst
      ~size:(Zab.msg_size ~payload_size:String.length msg)
      msg
  in
  let replicas =
    Array.init n (fun i ->
        Zab.create ?config:zab_config ~sim ~id:i ~peers ~send:(send_from i)
          ~on_deliver:(fun zxid p -> delivered.(i) <- (zxid, p) :: delivered.(i))
          ~initial_leader:0 ())
  in
  Array.iteri
    (fun i r ->
      Net.register net i (fun ~src ~size:_ msg -> Zab.handle r ~src msg);
      Zab.start r)
    replicas;
  { zsim = sim; znet = net; zreplicas = replicas; zdelivered = delivered }

let zrun_for c d = Sim.run ~until:(Sim_time.add (Sim.now c.zsim) d) c.zsim

let test_mid_transfer_link_kill_resumes () =
  (* tiny chunks + a small window so the transfer spans many round trips
     and the cut lands mid-flight deterministically *)
  let zab_config =
    { Zab.default_config with snapshot_chunk_size = 512; snapshot_window = 2 }
  in
  let c = make_zcluster ~zab_config () in
  zrun_for c (Sim_time.ms 10);
  Zab.crash c.zreplicas.(2);
  Net.set_node_down c.znet 2;
  let payload = String.make 256 'y' in
  let entries = 400 in
  for k = 1 to entries do
    ignore
      (Zab.propose c.zreplicas.(0) (Printf.sprintf "%06d%s" k payload)
        : Zab.zxid option)
  done;
  zrun_for c (Sim_time.sec 1);
  List.iter
    (fun i ->
      Zab.compact c.zreplicas.(i) ~take:(fun () ->
          let hist = c.zdelivered.(i) in
          fun () -> hist_encode hist))
    [ 0; 1 ];
  Zab.set_install_snapshot c.zreplicas.(2) (fun blob ->
      Result.map (fun h -> c.zdelivered.(2) <- h) (hist_decode blob));
  Net.set_node_up c.znet 2;
  Zab.restart c.zreplicas.(2);
  (* summed over replicas: the cut below outlasts the election timeout,
     so the resume may be served by a new leader *)
  let stat f =
    Array.fold_left (fun acc r -> acc + f (Zab.xfer_stats r)) 0 c.zreplicas
  in
  let stat_max f =
    Array.fold_left
      (fun acc r -> Stdlib.max acc (f (Zab.xfer_stats r)))
      0 c.zreplicas
  in
  let started () =
    stat (fun s -> s.Zab.transfers_started) > 0
    && stat (fun s -> s.Zab.chunks_sent) > 8
  in
  let started_ok =
    run_until c.zsim ~step:(Sim_time.ms 1) ~limit:(Sim_time.sec 5) started
  in
  Alcotest.(check bool) "transfer started and is mid-flight" true
    (started_ok
    && stat (fun s -> s.Zab.installs) = 0
    && c.zdelivered.(2) = []);
  Net.cut_link c.znet 0 2;
  zrun_for c (Sim_time.sec 1);
  Net.heal_link c.znet 0 2;
  let caught_up () = List.length c.zdelivered.(2) >= entries in
  let completed =
    run_until c.zsim ~step:(Sim_time.ms 10) ~limit:(Sim_time.sec 30) caught_up
  in
  Alcotest.(check bool) "transfer completed after the heal" true completed;
  let resumes = stat (fun s -> s.Zab.resumes) in
  let resume_from = stat_max (fun s -> s.Zab.last_resume_from) in
  Alcotest.(check bool) "resumed at least once" true (resumes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "resumed mid-blob (from chunk %d), not from 0" resume_from)
    true (resume_from > 0);
  Alcotest.(check bool) "follower state equals the leader's" true
    (c.zdelivered.(2) = c.zdelivered.(0))

(* ------------------------------------------------------------------ *)
(* Chaos: recovery through state transfer with the checker on          *)
(* ------------------------------------------------------------------ *)

let test_chaos_state_transfer_linearizable () =
  (* aggressive snapshots + tiny chunks so crash recovery must go through
     the chunked transfer while clients keep writing; a targeted isolate
     shortly after the restart cuts the follower off mid-stream *)
  let server_config =
    { Zk.Server.default_config with snapshot_interval = 150 }
  in
  let zab_config =
    { Zab.default_config with snapshot_chunk_size = 256; snapshot_window = 2 }
  in
  let schedule =
    [
      {
        Nemesis.start = Sim_time.sec 2;
        period = None;
        action =
          Nemesis.Crash_restart
            { downtime = Sim_time.sec 3; victim = Nemesis.Node 2 };
      };
      {
        Nemesis.start = Sim_time.ms 5_150;
        period = None;
        action =
          Nemesis.Isolate
            {
              duration = Sim_time.ms 400;
              victim = Nemesis.Node 2;
              asymmetric = false;
            };
      };
      {
        Nemesis.start = Sim_time.sec 8;
        period = None;
        action =
          Nemesis.Crash_restart
            { downtime = Sim_time.sec 2; victim = Nemesis.Leader };
      };
    ]
  in
  let p =
    Experiment.chaos_point ~seed:7 ~server_config ~zab_config ~schedule
      ~horizon:(Sim_time.sec 14) Systems.Ezk
  in
  Alcotest.(check (list string))
    "invariants intact" [] p.Experiment.ch_invariant_failures;
  Alcotest.(check bool) "history captured" true
    (p.Experiment.ch_history_events > 0);
  Alcotest.(check bool) "clients made progress" true
    (p.Experiment.ch_ops_ok > 0);
  Alcotest.(check bool) "checker produced verdicts" true
    (p.Experiment.ch_lin <> []);
  List.iter
    (fun (obj, v) ->
      if not (W.is_ok v) then
        Alcotest.failf "%s not linearizable: %a" obj W.pp_verdict v)
    p.Experiment.ch_lin;
  let s = p.Experiment.ch_snap in
  let nonzero what v = Alcotest.(check bool) what true (v > 0) in
  nonzero "captures" s.Systems.ss_captures;
  nonzero "transfers completed" s.Systems.ss_transfers_completed;
  nonzero "installs" s.Systems.ss_installs;
  Alcotest.(check bool) "lazy: marshaled at most once per capture" true
    (s.Systems.ss_serializations <= s.Systems.ss_captures)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "edc_snapshot"
    [
      ( "cow",
        [
          qc prop_cow_stable_under_mutation;
          Alcotest.test_case "import twice, mutate one" `Quick
            test_import_twice_independent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "portable bytes are canonical" `Quick
            test_portable_bytes_deterministic;
        ] );
      ( "server",
        [
          Alcotest.test_case "lazy serialization + install cadence" `Quick
            test_server_lazy_serialization_and_install_cadence;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "mid-transfer link kill resumes" `Quick
            test_mid_transfer_link_kill_resumes;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "state transfer under nemesis, checker on"
            `Slow test_chaos_state_transfer_linearizable;
        ] );
    ]
