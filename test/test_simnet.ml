(* Tests for the discrete-event simulation substrate. *)

open Edc_simnet

let time = Alcotest.testable Sim_time.pp Sim_time.equal

(* ------------------------------------------------------------------ *)
(* Sim_time                                                            *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Sim_time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Sim_time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Sim_time.sec 1);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Sim_time.to_float_ms (Sim_time.us 1500));
  Alcotest.check time "of_float_s" (Sim_time.ms 250) (Sim_time.of_float_s 0.25)

let test_time_scale () =
  Alcotest.check time "scale x1.5" (Sim_time.us 150) (Sim_time.scale (Sim_time.us 100) 1.5);
  Alcotest.check time "scale x0" Sim_time.zero (Sim_time.scale (Sim_time.ms 3) 0.0)

(* ------------------------------------------------------------------ *)
(* Event_queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, x) ->
        popped := x :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.rev !popped)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:5 i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, x) ->
        out := x :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order preserved at equal times"
    (List.init 100 Fun.id) (List.rev !out)

let test_queue_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1 ();
  Event_queue.push q ~time:2 ();
  Alcotest.(check int) "len" 2 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option (pair int unit))) "pop none" None (Event_queue.pop q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let before = Rng.int c 1_000_000 in
  (* Drawing from the parent must not perturb the child's stream. *)
  let a2 = Rng.create 7 in
  let c2 = Rng.split a2 in
  ignore (Rng.int a2 10 : int);
  Alcotest.(check int) "child unaffected by parent draws" before (Rng.int c2 1_000_000 |> fun x -> if x = before then before else x);
  ignore before

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r in
      x >= 0.0 && x < 1.0)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~after:(Sim_time.ms 3) (fun () -> log := "c" :: !log);
  Sim.schedule sim ~after:(Sim_time.ms 1) (fun () -> log := "a" :: !log);
  Sim.schedule sim ~after:(Sim_time.ms 2) (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "in time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.check time "clock at last event" (Sim_time.ms 3) (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~after:(Sim_time.ms 1) (fun () -> incr fired);
  Sim.schedule sim ~after:(Sim_time.ms 10) (fun () -> incr fired);
  Sim.run ~until:(Sim_time.ms 5) sim;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.check time "clock at horizon" (Sim_time.ms 5) (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "second fires on resume" 2 !fired

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~after:(Sim_time.ms 1) (fun () ->
      log := "outer" :: !log;
      Sim.schedule sim ~after:(Sim_time.ms 1) (fun () -> log := "inner" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.check time "clock" (Sim_time.ms 2) (Sim.now sim)

let test_sim_max_events () =
  let sim = Sim.create () in
  (* A self-perpetuating event chain: max_events must bound it. *)
  let rec tick () = Sim.schedule sim ~after:(Sim_time.us 1) (fun () -> tick ()) in
  tick ();
  Sim.run ~max_events:100 sim;
  Alcotest.(check int) "bounded" 100 (Sim.executed_events sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~after:(Sim_time.ms 1) (fun () ->
      incr fired;
      Sim.stop sim);
  Sim.schedule sim ~after:(Sim_time.ms 2) (fun () -> incr fired);
  Sim.run sim;
  Alcotest.(check int) "stopped after first" 1 !fired

(* ------------------------------------------------------------------ *)
(* Proc                                                                *)
(* ------------------------------------------------------------------ *)

let test_proc_async_await () =
  let sim = Sim.create () in
  let result = ref 0 in
  let p = Proc.async sim (fun () -> 41 + 1) in
  Proc.spawn sim (fun () -> result := Proc.await p);
  Sim.run sim;
  Alcotest.(check int) "async value" 42 !result

let test_proc_sleep_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Proc.spawn sim (fun () ->
      Proc.sleep sim (Sim_time.ms 2);
      log := "slow" :: !log);
  Proc.spawn sim (fun () ->
      Proc.sleep sim (Sim_time.ms 1);
      log := "fast" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "wakeup order" [ "fast"; "slow" ] (List.rev !log)

let test_proc_promise_roundtrip () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  let got = ref "" in
  Proc.spawn sim (fun () -> got := Proc.await p);
  Sim.schedule sim ~after:(Sim_time.ms 5) (fun () -> Proc.fulfill p "hello");
  Sim.run sim;
  Alcotest.(check string) "value through promise" "hello" !got;
  Alcotest.check time "awaiter resumed at fulfill time" (Sim_time.ms 5) (Sim.now sim)

let test_proc_await_already_fulfilled () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  Proc.fulfill p 7;
  let got = ref 0 in
  Proc.spawn sim (fun () -> got := Proc.await p);
  Sim.run sim;
  Alcotest.(check int) "immediate value" 7 !got

let test_proc_try_fulfill () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  Alcotest.(check bool) "first wins" true (Proc.try_fulfill p 1);
  Alcotest.(check bool) "second loses" false (Proc.try_fulfill p 2);
  Alcotest.(check (option int)) "kept first" (Some 1) (Proc.value_opt p)

let test_proc_fulfill_twice_raises () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  Proc.fulfill p ();
  Alcotest.check_raises "double fulfill"
    (Invalid_argument "Proc.fulfill: already fulfilled") (fun () ->
      Proc.fulfill p ())

let test_proc_await_timeout_expires () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  let got = ref (Some 99) in
  Proc.spawn sim (fun () ->
      got := Proc.await_timeout sim p ~timeout:(Sim_time.ms 1));
  Sim.schedule sim ~after:(Sim_time.ms 10) (fun () -> Proc.fulfill p 5);
  Sim.run sim;
  Alcotest.(check (option int)) "timed out" None !got

let test_proc_await_timeout_wins () =
  let sim = Sim.create () in
  let p = Proc.promise sim in
  let got = ref None in
  Proc.spawn sim (fun () ->
      got := Proc.await_timeout sim p ~timeout:(Sim_time.ms 10));
  Sim.schedule sim ~after:(Sim_time.ms 1) (fun () -> Proc.fulfill p 5);
  Sim.run sim;
  Alcotest.(check (option int)) "value before timeout" (Some 5) !got

let test_proc_join () =
  let sim = Sim.create () in
  let ps = List.init 5 (fun i -> Proc.async sim (fun () ->
      Proc.sleep sim (Sim_time.ms i)))
  in
  let done_ = ref false in
  Proc.spawn sim (fun () ->
      Proc.join ps;
      done_ := true);
  Sim.run sim;
  Alcotest.(check bool) "joined all" true !done_

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)
(* ------------------------------------------------------------------ *)

let test_net_delivery () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let got = ref None in
  Net.register net 2 (fun ~src ~size msg -> got := Some (src, size, msg));
  Net.send net ~src:1 ~dst:2 ~size:100 "ping";
  Sim.run sim;
  Alcotest.(check (option (triple int int string)))
    "delivered with metadata" (Some (1, 100, "ping")) !got;
  Alcotest.(check bool) "latency at least base" true
    Sim_time.(Net.lan_config.base_latency <= Sim.now sim)

let test_net_byte_accounting () =
  let sim = Sim.create () in
  let net = Net.create sim in
  Net.register net 2 (fun ~src:_ ~size:_ _ -> ());
  Net.send net ~src:1 ~dst:2 ~size:100 ();
  Net.send net ~src:1 ~dst:2 ~size:50 ();
  Sim.run sim;
  Alcotest.(check int) "sender bytes" 150 (Net.bytes_sent_by net 1);
  Alcotest.(check int) "receiver bytes" 150 (Net.bytes_received_by net 2);
  Alcotest.(check int) "sender msgs" 2 (Net.messages_sent_by net 1);
  Alcotest.(check int) "total" 150 (Net.total_bytes_sent net)

let test_net_node_down () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let got = ref 0 in
  Net.register net 2 (fun ~src:_ ~size:_ _ -> incr got);
  Net.set_node_down net 2;
  Net.send net ~src:1 ~dst:2 ~size:10 ();
  Sim.run sim;
  Alcotest.(check int) "not delivered" 0 !got;
  Alcotest.(check int) "counted as dropped" 1 (Net.dropped_messages net);
  Alcotest.(check int) "bytes still charged to sender" 10 (Net.bytes_sent_by net 1);
  Net.set_node_up net 2;
  Net.send net ~src:1 ~dst:2 ~size:10 ();
  Sim.run sim;
  Alcotest.(check int) "delivered after recovery" 1 !got

let test_net_cut_link () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let got = ref 0 in
  Net.register net 2 (fun ~src:_ ~size:_ _ -> incr got);
  Net.cut_link net 1 2;
  Net.send net ~src:1 ~dst:2 ~size:10 ();
  Net.send net ~src:2 ~dst:1 ~size:10 ();
  Sim.run sim;
  Alcotest.(check int) "both directions cut" 0 !got;
  Net.heal_link net 2 1;
  Net.send net ~src:1 ~dst:2 ~size:10 ();
  Sim.run sim;
  Alcotest.(check int) "healed" 1 !got

let test_net_broadcast () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let got = ref [] in
  List.iter (fun n -> Net.register net n (fun ~src:_ ~size:_ _ -> got := n :: !got))
    [ 2; 3; 4; 5 ];
  Net.broadcast net ~src:1 ~dsts:[ 2; 3; 4; 5 ] ~size:25 ();
  Sim.run sim;
  Alcotest.(check int) "all received" 4 (List.length !got);
  Alcotest.(check int) "bytes charged per copy" 100 (Net.bytes_sent_by net 1)

let test_net_reset_counters () =
  let sim = Sim.create () in
  let net = Net.create sim in
  Net.register net 2 (fun ~src:_ ~size:_ _ -> ());
  Net.send net ~src:1 ~dst:2 ~size:99 ();
  Sim.run sim;
  Net.reset_counters net;
  Alcotest.(check int) "zeroed" 0 (Net.bytes_sent_by net 1);
  Alcotest.(check int) "total zeroed" 0 (Net.total_bytes_sent net)

let test_net_loopback_fast () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let at = ref Sim_time.zero in
  Net.register net 1 (fun ~src:_ ~size:_ _ -> at := Sim.now sim);
  Net.send net ~src:1 ~dst:1 ~size:0 ();
  Sim.run sim;
  Alcotest.(check bool) "self-send much faster than LAN" true
    Sim_time.(!at < Net.lan_config.base_latency)

(* ------------------------------------------------------------------ *)
(* Cpu                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cpu_serializes_work () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim in
  let finished = ref [] in
  for i = 1 to 5 do
    Cpu.exec cpu ~cost:(Sim_time.ms 10) (fun () ->
        finished := (i, Sim.now sim) :: !finished)
  done;
  Sim.run sim;
  let order = List.rev_map fst !finished in
  Alcotest.(check (list int)) "completion order = submission order"
    [ 1; 2; 3; 4; 5 ] order;
  (* five tasks of ~10ms each on one core take ~50ms total (± jitter) *)
  let total = Sim.now sim in
  Alcotest.(check bool) "work serialized, not parallel" true
    Sim_time.(Sim_time.ms 37 <= total && total <= Sim_time.ms 63)

let test_cpu_backlog () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim in
  Alcotest.(check bool) "idle" true (Cpu.backlog cpu = Sim_time.zero);
  Cpu.exec cpu ~cost:(Sim_time.ms 10) (fun () -> ());
  Alcotest.(check bool) "busy" true Sim_time.(Sim_time.zero < Cpu.backlog cpu);
  Sim.run sim;
  Alcotest.(check bool) "drained" true (Cpu.backlog cpu = Sim_time.zero)

let test_cpu_deterministic_jitter () =
  let run () =
    let sim = Sim.create ~seed:3 () in
    let cpu = Cpu.create sim in
    let at = ref [] in
    for _ = 1 to 10 do
      Cpu.exec cpu ~cost:(Sim_time.us 100) (fun () -> at := Sim.now sim :: !at)
    done;
    Sim.run sim;
    !at
  in
  Alcotest.(check bool) "same seed, same schedule" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  List.iter (Vec.push v) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Vec.length v);
  Alcotest.(check int) "get" 3 (Vec.get v 2);
  Vec.set v 2 30;
  Alcotest.(check int) "set" 30 (Vec.get v 2);
  Alcotest.(check (option int)) "last" (Some 4) (Vec.last_opt v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 30; 4 ] (Vec.to_list v);
  Alcotest.(check (list int)) "sub" [ 2; 30 ] (Vec.sub v 1 2);
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncate" [ 1; 2 ] (Vec.to_list v);
  Vec.replace_from v 1 [ 9; 8 ];
  Alcotest.(check (list int)) "replace_from" [ 1; 9; 8 ] (Vec.to_list v);
  Alcotest.check_raises "oob get" (Invalid_argument "Vec.get: out of bounds")
    (fun () -> ignore (Vec.get v 5))

let prop_vec_mirrors_list =
  QCheck.Test.make ~name:"vec push/to_list mirrors list" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Vec.fold_left (fun acc x -> acc + x) 0 v = List.fold_left ( + ) 0 xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Stats.Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s)

let test_stats_series_percentiles () =
  let s = Stats.Series.create () in
  for i = 1 to 100 do
    Stats.Series.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.Series.median s);
  (* nearest-rank: p99 of 1..100 is exactly 99 *)
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.Series.p99 s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Series.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Stats.Series.max s);
  Alcotest.(check (float 1e-9)) "percentile 0 = min" 1.0
    (Stats.Series.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "percentile 100 = max" 100.0
    (Stats.Series.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Series.mean s);
  (* small samples: high percentiles must not under-select (the old
     rounding made p99 of a 5-sample series pick the 4th value) *)
  let small = Stats.Series.create () in
  List.iter (Stats.Series.add small) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (float 1e-9)) "p99 of 5 samples is the max" 5.0
    (Stats.Series.percentile small 99.0);
  Alcotest.(check (float 1e-9)) "p50 of 5 samples (nearest rank)" 3.0
    (Stats.Series.percentile small 50.0)

let test_stats_series_interleaved_reads () =
  let s = Stats.Series.create () in
  Stats.Series.add s 10.0;
  ignore (Stats.Series.median s : float);
  Stats.Series.add s 2.0;
  Alcotest.(check (float 1e-9)) "min after re-sort" 2.0 (Stats.Series.min s)

let test_stats_counter_rate () =
  let c = Stats.Counter.create () in
  Stats.Counter.add c 500;
  Alcotest.(check (float 1e-9)) "rate over 2s" 250.0
    (Stats.Counter.rate c ~window:(Sim_time.sec 2));
  Stats.Counter.clear c;
  Alcotest.(check int) "cleared" 0 (Stats.Counter.get c)

let prop_summary_mean_bounded =
  QCheck.Test.make ~name:"summary mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1000.0))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "edc_simnet"
    [
      ( "sim_time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "scale" `Quick test_time_scale;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          qc prop_queue_sorted;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          qc prop_rng_int_bounds;
          qc prop_rng_float_range;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
          Alcotest.test_case "stop" `Quick test_sim_stop;
        ] );
      ( "proc",
        [
          Alcotest.test_case "async await" `Quick test_proc_async_await;
          Alcotest.test_case "sleep ordering" `Quick test_proc_sleep_ordering;
          Alcotest.test_case "promise roundtrip" `Quick test_proc_promise_roundtrip;
          Alcotest.test_case "await fulfilled" `Quick test_proc_await_already_fulfilled;
          Alcotest.test_case "try_fulfill" `Quick test_proc_try_fulfill;
          Alcotest.test_case "double fulfill raises" `Quick test_proc_fulfill_twice_raises;
          Alcotest.test_case "timeout expires" `Quick test_proc_await_timeout_expires;
          Alcotest.test_case "timeout beaten" `Quick test_proc_await_timeout_wins;
          Alcotest.test_case "join" `Quick test_proc_join;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "byte accounting" `Quick test_net_byte_accounting;
          Alcotest.test_case "node down" `Quick test_net_node_down;
          Alcotest.test_case "cut link" `Quick test_net_cut_link;
          Alcotest.test_case "broadcast" `Quick test_net_broadcast;
          Alcotest.test_case "reset counters" `Quick test_net_reset_counters;
          Alcotest.test_case "loopback fast" `Quick test_net_loopback_fast;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes work" `Quick test_cpu_serializes_work;
          Alcotest.test_case "backlog" `Quick test_cpu_backlog;
          Alcotest.test_case "deterministic jitter" `Quick
            test_cpu_deterministic_jitter;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          qc prop_vec_mirrors_list;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "series percentiles" `Quick test_stats_series_percentiles;
          Alcotest.test_case "series re-sort" `Quick test_stats_series_interleaved_reads;
          Alcotest.test_case "counter rate" `Quick test_stats_counter_rate;
          qc prop_summary_mean_bounded;
        ] );
    ]
