# Tier-1 verification in one command (see ROADMAP.md).
.PHONY: all build test check bench-quick chaos linearize membership reads clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @all && dune runtest

bench-quick:
	dune exec bench/main.exe -- all --quick

# Seeded fault-injection sweep on EZK and EDS (counter + queue recipes
# under the standard nemesis schedule; asserts invariants + determinism).
chaos:
	dune exec bench/main.exe -- chaos

# Linearizability: WGL search over client histories captured by the
# chaos harness and stress workloads, plus the Zab mutation self-test
# (re-enables the divergent-tail bug and asserts the checker convicts).
linearize:
	dune exec bench/main.exe -- linearize

# Elastic membership: seeded 3->5->3 joint-consensus autoscaling runs
# under a reconfiguration-targeted nemesis (leader killed mid-reconfig,
# learner links cut mid-bootstrap); writes BENCH_membership.json.
membership:
	dune exec bench/main.exe -- membership

# Scale-free read path: observer read scaling at 3 voters, leader-lease
# economics (coordination bytes/latency vs the quorum path), and the
# stale-read detector self-test (safe default passes, the lease-expiry
# mutation is convicted on every seed); writes BENCH_reads.json.
reads:
	dune exec bench/main.exe -- reads

clean:
	dune clean
