# Tier-1 verification in one command (see ROADMAP.md).
.PHONY: all build test check bench-quick chaos linearize membership reads sharding clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build @all && dune runtest

bench-quick:
	dune exec bench/main.exe -- all --quick

# Seeded fault-injection sweep on EZK and EDS (counter + queue recipes
# under the standard nemesis schedule; asserts invariants + determinism).
chaos:
	dune exec bench/main.exe -- chaos

# Linearizability: WGL search over client histories captured by the
# chaos harness and stress workloads, plus the Zab mutation self-test
# (re-enables the divergent-tail bug and asserts the checker convicts).
linearize:
	dune exec bench/main.exe -- linearize

# Elastic membership: seeded 3->5->3 joint-consensus autoscaling runs
# under a reconfiguration-targeted nemesis (leader killed mid-reconfig,
# learner links cut mid-bootstrap); writes BENCH_membership.json.
membership:
	dune exec bench/main.exe -- membership

# Scale-free read path: observer read scaling at 3 voters, leader-lease
# economics (coordination bytes/latency vs the quorum path), and the
# stale-read detector self-test (safe default passes, the lease-expiry
# mutation is convicted on every seed); writes BENCH_reads.json.
reads:
	dune exec bench/main.exe -- reads

# Sharded namespace: write-throughput scaling across 1/2/4/8 replication
# groups (gates >=3x at 4 and >=5x at 8 on a 0%-cross-shard workload),
# the cross-shard 2PC latency/throughput ablation, and seeded chaos runs
# (coordinator leader kills + shard-targeted inter-shard partitions)
# gated on per-shard WGL linearizability and deployment-wide atomicity;
# writes BENCH_sharding.json.
sharding:
	dune exec bench/main.exe -- sharding

# Wire codec + transport: streaming-vs-tree-vs-Marshal codec costs
# (gated: streaming within 2x Marshal on both shapes; byte-identity
# asserted before timing), corrupt-input rejection costs, and the
# pipelined TCP end-to-end run (gated >= 6700 ops/s over >= 5000 ops,
# with p50/p95/p99); writes BENCH_wire.json.
wire:
	dune exec bench/main.exe -- wire

clean:
	dune clean
