# Tier-1 verification in one command (see ROADMAP.md).
.PHONY: all build test check bench-quick clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build && dune runtest

bench-quick:
	dune exec bench/main.exe -- all --quick

clean:
	dune clean
