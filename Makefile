# Tier-1 verification in one command (see ROADMAP.md).
.PHONY: all build test check bench-quick chaos clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build && dune runtest

bench-quick:
	dune exec bench/main.exe -- all --quick

# Seeded fault-injection sweep on EZK and EDS (counter + queue recipes
# under the standard nemesis schedule; asserts invariants + determinism).
chaos:
	dune exec bench/main.exe -- chaos

clean:
	dune clean
