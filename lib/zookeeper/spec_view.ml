(** The leader's speculative view of the tree (outstanding change records).

    ZooKeeper's PrepRequestProcessor validates each request against the
    state the tree *will* have once every already-proposed transaction
    commits — otherwise two concurrent conditional updates could both pass
    validation and both succeed, destroying the compare-and-swap semantics
    the coordination recipes (and the paper's contention experiments)
    depend on.

    This module layers a table of pending per-path records over the
    committed {!Data_tree}; every mutation minted by the preprocessor (or
    by an extension running in the sandbox proxy) goes through here, both
    updating the speculation and yielding the idempotent {!Txn.op} to be
    replicated.  Extension reads also come through here, which is what
    gives extensions read-your-writes atomicity inside one invocation. *)

module String_set = Znode.String_set

type entry = {
  e_exists : bool;
  e_data : string;
  e_version : int;
  e_children : String_set.t;
  e_cversion : int;
  e_ephemeral : int option;
  e_czxid : int;
}

type t = {
  tree : Data_tree.t;
  pending : (string, entry) Hashtbl.t;
  mutable pending_creates : int;
      (** creates proposed but not yet applied: offsets czxid speculation *)
  mutable journal : (string * entry option) list option;
      (** when [Some], undo records for an in-flight extension run *)
  mutable journal_creates : int;
}

let create tree =
  { tree; pending = Hashtbl.create 64; pending_creates = 0; journal = None;
    journal_creates = 0 }

let reset t =
  Hashtbl.reset t.pending;
  t.pending_creates <- 0;
  t.journal <- None

(* --- extension transactionality: an aborted sandbox run must leave the
   speculation exactly as it found it (§4.1.2: crashes inside extensions
   must not affect the service) --- *)

let begin_txn t =
  assert (t.journal = None);
  t.journal <- Some [];
  t.journal_creates <- t.pending_creates

let commit_txn t = t.journal <- None

let rollback_txn t =
  match t.journal with
  | None -> invalid_arg "Spec_view.rollback_txn: no journal"
  | Some undo ->
      List.iter
        (fun (path, prev) ->
          match prev with
          | Some e -> Hashtbl.replace t.pending path e
          | None -> Hashtbl.remove t.pending path)
        undo;
      t.pending_creates <- t.journal_creates;
      t.journal <- None

let record_undo t path =
  match t.journal with
  | None -> ()
  | Some undo ->
      if not (List.mem_assoc path undo) then
        t.journal <- Some ((path, Hashtbl.find_opt t.pending path) :: undo)

let absent =
  {
    e_exists = false;
    e_data = "";
    e_version = 0;
    e_children = String_set.empty;
    e_cversion = 0;
    e_ephemeral = None;
    e_czxid = 0;
  }

let entry_of_node (n : Znode.t) =
  {
    e_exists = true;
    e_data = n.Znode.data;
    e_version = n.Znode.version;
    e_children = n.Znode.children;
    e_cversion = n.Znode.cversion;
    e_ephemeral = n.Znode.ephemeral_owner;
    e_czxid = n.Znode.czxid;
  }

let lookup t path =
  match Hashtbl.find_opt t.pending path with
  | Some e -> e
  | None -> (
      match Data_tree.find_opt t.tree path with
      | Some n -> entry_of_node n
      | None -> absent)

let stat_of_entry e =
  {
    Znode.version = e.e_version;
    czxid = e.e_czxid;
    ephemeral_owner = e.e_ephemeral;
    num_children = String_set.cardinal e.e_children;
    data_length = String.length e.e_data;
  }

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let read t path =
  let e = lookup t path in
  if e.e_exists then Ok (e.e_data, stat_of_entry e) else Error Zerror.No_node

let exists t path =
  let e = lookup t path in
  if e.e_exists then Some (stat_of_entry e) else None

let children t path =
  let e = lookup t path in
  if e.e_exists then Ok (String_set.elements e.e_children)
  else Error Zerror.No_node

let children_with_data t path =
  let e = lookup t path in
  if not e.e_exists then Error Zerror.No_node
  else
    Ok
      (String_set.elements e.e_children
      |> List.filter_map (fun name ->
             let child_path = Zpath.child path name in
             let ce = lookup t child_path in
             if ce.e_exists then
               Some (child_path, ce.e_data, stat_of_entry ce)
             else None))

(** All ephemeral paths owned by [session] in the speculative state (used
    to preprocess session closes). *)
let ephemerals_of_session t session =
  let base =
    Data_tree.ephemeral_paths t.tree session
    |> List.filter (fun p ->
           match Hashtbl.find_opt t.pending p with
           | Some e -> e.e_exists && e.e_ephemeral = Some session
           | None -> true)
  in
  let speculative =
    Hashtbl.fold
      (fun p e acc ->
        if e.e_exists && e.e_ephemeral = Some session && not (List.mem p base)
        then p :: acc
        else acc)
      t.pending []
  in
  List.sort compare (base @ speculative)

(* ------------------------------------------------------------------ *)
(* Mutations (validate, speculate, mint txn op)                        *)
(* ------------------------------------------------------------------ *)

let update_parent_for_child t parent_path ~add name =
  record_undo t parent_path;
  let pe = lookup t parent_path in
  let children =
    if add then String_set.add name pe.e_children
    else String_set.remove name pe.e_children
  in
  Hashtbl.replace t.pending parent_path
    { pe with e_children = children; e_cversion = pe.e_cversion + 1 }

(** [create_node t ~path ~data ~ephemeral_owner ~sequential] returns the
    resolved path and the transaction op. *)
let create_node t ~path ~data ~ephemeral_owner ~sequential =
  if not (Zpath.is_valid path) || Zpath.is_root path then Error Zerror.Invalid_path
  else
    match Zpath.parent path with
    | None -> Error Zerror.Invalid_path
    | Some parent_path ->
        let pe = lookup t parent_path in
        if not pe.e_exists then Error Zerror.No_node
        else if pe.e_ephemeral <> None then
          Error Zerror.No_children_for_ephemerals
        else begin
          let name =
            if sequential then
              Zpath.basename path ^ Zpath.sequence_suffix pe.e_cversion
            else Zpath.basename path
          in
          let actual_path = Zpath.child parent_path name in
          let target = lookup t actual_path in
          if target.e_exists then Error Zerror.Node_exists
          else begin
            let czxid = Data_tree.next_czxid t.tree + t.pending_creates in
            t.pending_creates <- t.pending_creates + 1;
            update_parent_for_child t parent_path ~add:true name;
            record_undo t actual_path;
            Hashtbl.replace t.pending actual_path
              {
                e_exists = true;
                e_data = data;
                e_version = 0;
                e_children = String_set.empty;
                e_cversion = 0;
                e_ephemeral = ephemeral_owner;
                e_czxid = czxid;
              };
            Ok
              ( actual_path,
                Txn.Tcreate { path = actual_path; data; ephemeral_owner } )
          end
        end

let delete_node t ~path ~version =
  let e = lookup t path in
  if not e.e_exists then Error Zerror.No_node
  else if not (String_set.is_empty e.e_children) then Error Zerror.Not_empty
  else
    match version with
    | Some v when v <> e.e_version -> Error Zerror.Bad_version
    | _ ->
        record_undo t path;
        Hashtbl.replace t.pending path { absent with e_czxid = e.e_czxid };
        (match Zpath.parent path with
        | Some parent_path ->
            update_parent_for_child t parent_path ~add:false
              (Zpath.basename path)
        | None -> ());
        Ok (Txn.Tdelete { path })

let set_node t ~path ~data ~expected_version =
  let e = lookup t path in
  if not e.e_exists then Error Zerror.No_node
  else
    match expected_version with
    | Some v when v <> e.e_version -> Error Zerror.Bad_version
    | _ ->
        let version = e.e_version + 1 in
        record_undo t path;
        Hashtbl.replace t.pending path { e with e_data = data; e_version = version };
        Ok (Txn.Tset { path; data; version }, version)

(** Bookkeeping when a transaction applies at the leader: keep the
    speculative czxid counter aligned with the tree's. *)
let on_applied_op t = function
  | Txn.Tcreate _ ->
      if t.pending_creates > 0 then t.pending_creates <- t.pending_creates - 1
  | Txn.Tdelete _ | Txn.Tset _ | Txn.Tsession_open _ | Txn.Tsession_close _
  | Txn.Tsession_move _ | Txn.Tblock _ | Txn.Tnotify _ | Txn.Terror
  | Txn.Tprep _ | Txn.Tdecide _ | Txn.Tresolve _ ->
      ()

let pending_count t = Hashtbl.length t.pending
