(** ZooKeeper server replica (the paper's Figure 3 chain): preprocessor
    (validation, txn minting, the EZK intercept), proposer (Zab), final
    processor (apply, watches, reply routing from the client's replica).
    Reads are served locally from committed state; updates are forwarded
    to the leader.  Extensibility enters only through {!section-hooks}. *)

open Edc_simnet
open Edc_replication
module P = Protocol

(** Wire format shared by the whole deployment. *)
type wire =
  | Client_msg of P.client_to_server
  | Server_msg of P.server_to_client
  | Zab_msg of Txn.t Zab.msg
  | Forward of { origin : int; session : int; xid : int; op : P.op }
  | Forward_connect of { origin : int; client_addr : int }
  | Forward_reconnect of { origin : int; session : int }
  | Forward_close of { session : int }
  | Touch of { session : int }

val wire_size : wire -> int

(** {2:hooks Hooks (extension points used by EZK)} *)

type hook_action =
  | Pass  (** process the request normally *)
  | Handled of Txn.op list * P.result
      (** replace normal processing: one multi-transaction plus the
          piggybacked result (operation extensions, §5.1.2) *)
  | Handled_deferred of Txn.op list
      (** like [Handled] but without an immediate reply: the transaction
          contains a [Tblock] and the client is answered when the awaited
          object appears *)
  | Reject of Zerror.t

type session_info = { client_addr : int; mutable owner_replica : int }

type config = {
  session_timeout : Sim_time.t;
  expiry_check_interval : Sim_time.t;
  snapshot_interval : int;
      (** snapshot + compact the replicated log every N applied
          transactions; [0] disables (ZooKeeper's snapCount) *)
  preprocess_cost : Sim_time.t;  (** serial CPU per validated update *)
  read_cost : Sim_time.t;  (** serial CPU per locally served read *)
  linearizable_reads : bool;
      (** route every read through the leader: served locally there under
          a valid lease ({!Zab.can_serve_lease_read}), otherwise ordered
          through the commit path as a quiet no-op barrier (§6i).  The
          default [false] keeps ZooKeeper's sequentially-consistent local
          read fast path. *)
  txn_retry_interval : Sim_time.t;
      (** coordinator heartbeat: re-send [Prepare] to silent participant
          shards at this interval (§6j) *)
  txn_coord_timeout : Sim_time.t;
      (** coordinator presumed-aborts a cross-shard transaction that has
          not gathered every vote within this budget *)
  txn_status_interval : Sim_time.t;
      (** participant in-doubt inquiry interval: while a prepared
          transaction is unresolved, the participant leader asks the
          coordinator shard for the outcome this often *)
}

val default_config : config

type t

(** [create ~sim ~net ~id ~replica_ids ()] — one server replica.  With
    [initial_leader] the ensemble boots pre-elected.  With [learner:true]
    the server starts as a non-voting Zab learner outside the member set:
    it announces itself to the leader, is bootstrapped by snapshot + log
    sync, and gains a vote when a committed config admits it (used by
    {!Cluster.add_server} for elastic growth).  With [observer:true] the
    server is a permanent non-voting consumer of the commit stream: it
    bootstraps like a learner but never joins the member set, never votes,
    and serves sequentially-consistent local reads. *)
val create :
  ?config:config ->
  ?zab_config:Zab.config ->
  ?initial_leader:int ->
  ?learner:bool ->
  ?observer:bool ->
  sim:Sim.t ->
  net:wire Transport.t ->
  id:int ->
  replica_ids:int list ->
  unit ->
  t

val start : t -> unit

(** Process crash (network detachment is the caller's job); the tree and
    log persist, modeling durable storage. *)
val crash : t -> unit

val restart : t -> unit

val tree : t -> Data_tree.t
val zab : t -> Txn.t Zab.t
val spec : t -> Spec_view.t
val is_leader : t -> bool
val id : t -> int
val sim : t -> Sim.t
val session_exists : t -> int -> bool

(** Statistics. *)

val reads_served : t -> int

(** Leader reads served locally under a valid lease / ordered through the
    commit path because the lease had lapsed (both only grow when
    [linearizable_reads] is on). *)

val lease_reads : t -> int
val quorum_reads : t -> int
val txns_applied : t -> int
val proposals : t -> int

(** Serialization-cost observables: [wire_encodes] counts distinct message
    values handed to the transport (one serialization each on an encoding
    transport — a broadcast through [send_many] counts once, however wide
    the fan-out); [wire_sends] counts per-destination deliveries.  The gap
    between them is the work the encode-once broadcast saves. *)

val wire_encodes : t -> int
val wire_sends : t -> int

(** Snapshot pipeline counters. *)

(** O(1) copy-on-write captures taken at compaction points. *)
val snapshot_captures : t -> int

(** Captures that were actually serialized (a state transfer needed the
    bytes); stays 0 on replicas whose peers never fall behind. *)
val snapshot_serializations : t -> int

(** Times [snapshot_interval] fired with the log already compacted to the
    horizon, so no capture was taken. *)
val snapshots_skipped : t -> int

(** Complete state-transfer blobs imported atomically. *)
val snapshot_installs : t -> int

(** {2 Snapshot blobs (state transfer, §3.8)}

    Blobs are framed by the deterministic binary codec ([Edc_wire.Wire]):
    equal replicated states serialize to byte-identical bytes, across COW
    histories and OCaml versions. *)

(** Capture and serialize the replica's current replicated state (via the
    streaming writer — no intermediate [Wire.t]). *)
val snapshot_bytes : t -> string

(** Same state through the tree codec — the reference oracle; tests
    assert it is byte-identical to {!snapshot_bytes}. *)
val snapshot_bytes_tree : t -> string

(** [install_snapshot t blob] replaces the replica's state with an
    untrusted blob.  The blob is decoded in full before any state is
    touched: on [Error] (corrupt, truncated, or bit-flipped bytes) the
    replica is left exactly as it was. *)
val install_snapshot : t -> string -> (unit, string) result

(** Leader-side entry point for service-internal multi-transactions
    (bootstrap objects, event-extension follow-ups).  [quiet] transactions
    do not trigger event extensions. *)
val propose_internal : t -> ?quiet:bool -> Txn.op list -> unit

(** {2 Sharded deployments (§6j)}

    A replica can serve as one member of a sharded deployment: the
    namespace is partitioned across independent replication groups, and
    atomic cross-shard multi-writes commit via presumed-abort two-phase
    commit whose coordinator and participant state both ride the groups'
    replicated logs. *)

(** [set_sharding t ~shard_id ~route ~send] plugs the replica into a
    sharded deployment: its own shard id, the deployment's path router,
    and a sender on the inter-shard plane ([send dst frame] delivers
    [frame] to shard [dst]'s current leader). *)
val set_sharding :
  t ->
  shard_id:int ->
  route:(string -> int) ->
  send:(int -> Two_pc.frame -> unit) ->
  unit

val shard_id : t -> int

(** Deliver an inter-shard 2PC frame to this replica.  Frames are only
    meaningful to a ready leader; anyone else drops them and lets the
    sender's retry / in-doubt inquiry loop find the new leader. *)
val handle_shard_frame : t -> Two_pc.frame -> unit

(** Resolved cross-shard outcomes on this replica, oldest first — the
    atomicity checker's observation stream. *)
val txn_audit : t -> (string * bool) list

(** Replicated coordinator decision for [txid], if one was logged here. *)
val decided : t -> string -> bool option

(** In-doubt transactions parked on this replica (txid, coordinator). *)
val prepared_txns : t -> (string * int) list

(** Paths currently write-locked by prepared transactions (path, txid). *)
val locked_paths : t -> (string * string) list

(** 2PC statistics (coordinator side). *)

val txns_coordinated : t -> int
val txns_committed : t -> int
val txns_aborted : t -> int

(** Hook installation (used by EZK). *)

val set_hook_intercept :
  t -> (t -> origin:int -> session:int -> xid:int -> P.op -> hook_action) -> unit

val set_hook_read_needs_leader : t -> (t -> session:int -> P.op -> bool) -> unit
val set_hook_on_applied : t -> (t -> Txn.t -> unit) -> unit

val set_hook_suppress_watch :
  t -> (t -> session:int -> path:string -> P.watch_kind -> bool) -> unit

val set_hook_on_snapshot_installed : t -> (t -> unit) -> unit
