(** Client-facing protocol: operations, results, watch events, and the
    client/server message types, with modelled wire sizes. *)

type op =
  | Create of { path : string; data : string; ephemeral : bool; sequential : bool }
  | Delete of { path : string; version : int option }
      (** [version = Some v]: conditional delete *)
  | Set_data of { path : string; data : string; expected_version : int option }
      (** [expected_version = Some v] gives compare-and-swap semantics *)
  | Get_data of { path : string; watch : bool }
  | Get_children of { path : string; watch : bool }
  | Exists of { path : string; watch : bool }
  | Block of { path : string }
      (** server-side blocking read; only meaningful when an operation
          extension subscribes to it (EZK), otherwise rejected *)
  | Sync
  | Multi of { ops : Edc_replication.Two_pc.wop list }
      (** atomic multi-write.  All ops within the receiving shard commit
          as one transaction; ops spanning shards commit through 2PC
          (§6j).  On an unsharded deployment every op is local. *)

type result =
  | Created of string  (** actual path (sequential suffix resolved) *)
  | Deleted
  | Set of { version : int }
  | Data of string * Znode.stat
  | Children of string list
  | Stat_of of Znode.stat option  (** exists *)
  | Unblocked of string  (** data of the awaited object *)
  | Ext of string  (** serialized extension-produced value (piggybacked) *)
  | Synced
  | Multi_ok  (** the atomic multi-write committed (on every shard) *)
  | Error of Zerror.t

type watch_kind = Node_created | Node_deleted | Node_changed | Children_changed

type client_to_server =
  | Connect
  | Reconnect of { session : int }
  | Request of { session : int; xid : int; op : op }
  | Ping of { session : int }
  | Close_session of { session : int }

type server_to_client =
  | Connect_ok of { session : int }
  | Reply of { xid : int; result : result }
  | Watch_event of { path : string; kind : watch_kind }
  | Expired

(* ------------------------------------------------------------------ *)
(* Modelled wire sizes                                                 *)
(* ------------------------------------------------------------------ *)

let header_size = 16

let op_size = function
  | Create { path; data; _ } -> header_size + String.length path + String.length data + 2
  | Delete { path; _ } -> header_size + String.length path + 4
  | Set_data { path; data; _ } ->
      header_size + String.length path + String.length data + 4
  | Get_data { path; _ } -> header_size + String.length path + 1
  | Get_children { path; _ } -> header_size + String.length path + 1
  | Exists { path; _ } -> header_size + String.length path + 1
  | Block { path } -> header_size + String.length path
  | Sync -> header_size
  | Multi { ops } ->
      List.fold_left
        (fun acc o -> acc + Edc_replication.Two_pc.wop_size o)
        header_size ops

let stat_size = 32

let result_size = function
  | Created path -> header_size + String.length path
  | Deleted | Synced | Multi_ok -> header_size
  | Set _ -> header_size + 4
  | Data (d, _) -> header_size + String.length d + stat_size
  | Children names ->
      List.fold_left (fun acc n -> acc + String.length n + 4) header_size names
  | Stat_of _ -> header_size + stat_size
  | Unblocked d -> header_size + String.length d
  | Ext s -> header_size + String.length s
  | Error _ -> header_size + 4

let client_msg_size = function
  | Connect -> header_size
  | Reconnect _ -> header_size + 8
  | Request { op; _ } -> 8 + op_size op
  | Ping _ -> header_size
  | Close_session _ -> header_size

let server_msg_size = function
  | Connect_ok _ -> header_size + 8
  | Reply { result; _ } -> 8 + result_size result
  | Watch_event { path; _ } -> header_size + String.length path + 1
  | Expired -> header_size

let pp_watch_kind ppf k =
  Fmt.string ppf
    (match k with
    | Node_created -> "created"
    | Node_deleted -> "deleted"
    | Node_changed -> "changed"
    | Children_changed -> "children")

let pp_result ppf = function
  | Created p -> Fmt.pf ppf "created %s" p
  | Deleted -> Fmt.string ppf "deleted"
  | Set { version } -> Fmt.pf ppf "set v%d" version
  | Data (d, s) -> Fmt.pf ppf "data %S %a" d Znode.pp_stat s
  | Children c -> Fmt.pf ppf "children [%a]" Fmt.(list ~sep:semi string) c
  | Stat_of s -> Fmt.pf ppf "stat %a" Fmt.(option ~none:(any "none") Znode.pp_stat) s
  | Unblocked d -> Fmt.pf ppf "unblocked %S" d
  | Ext s -> Fmt.pf ppf "ext %S" s
  | Synced -> Fmt.string ppf "synced"
  | Multi_ok -> Fmt.string ppf "multi ok"
  | Error e -> Fmt.pf ppf "error %a" Zerror.pp e
