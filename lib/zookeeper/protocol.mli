(** Client-facing protocol: operations, results, watch events, and the
    client/server message types, with modelled wire sizes. *)

type op =
  | Create of { path : string; data : string; ephemeral : bool; sequential : bool }
  | Delete of { path : string; version : int option }
      (** [Some v]: conditional delete *)
  | Set_data of { path : string; data : string; expected_version : int option }
      (** [Some v] gives compare-and-swap semantics *)
  | Get_data of { path : string; watch : bool }
  | Get_children of { path : string; watch : bool }
  | Exists of { path : string; watch : bool }
  | Block of { path : string }
      (** server-side blocking read; only meaningful when an operation
          extension subscribes to it (EZK), otherwise rejected *)
  | Sync
  | Multi of { ops : Edc_replication.Two_pc.wop list }
      (** atomic multi-write; ops spanning shards commit via 2PC (§6j) *)

type result =
  | Created of string  (** actual path (sequential suffix resolved) *)
  | Deleted
  | Set of { version : int }
  | Data of string * Znode.stat
  | Children of string list
  | Stat_of of Znode.stat option
  | Unblocked of string  (** data of the awaited object *)
  | Ext of string  (** serialized extension-produced value (piggybacked) *)
  | Synced
  | Multi_ok  (** the atomic multi-write committed (on every shard) *)
  | Error of Zerror.t

type watch_kind = Node_created | Node_deleted | Node_changed | Children_changed

type client_to_server =
  | Connect
  | Reconnect of { session : int }
  | Request of { session : int; xid : int; op : op }
  | Ping of { session : int }
  | Close_session of { session : int }

type server_to_client =
  | Connect_ok of { session : int }
  | Reply of { xid : int; result : result }
  | Watch_event of { path : string; kind : watch_kind }
  | Expired

(** Modelled wire sizes. *)

val header_size : int
val op_size : op -> int
val stat_size : int
val result_size : result -> int
val client_msg_size : client_to_server -> int
val server_msg_size : server_to_client -> int

val pp_watch_kind : Format.formatter -> watch_kind -> unit
val pp_result : Format.formatter -> result -> unit
