open Edc_simnet
module Retry = Edc_core.Retry

type op_kind = Read | Write of { idempotent : bool }

type stats = {
  mutable calls : int;
  mutable retries : int;
  mutable failovers : int;
  mutable maybe_applied : int;
  mutable gave_up : int;
}

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  client : Client.t;
  replicas : int array;
  policy : Retry.policy;
  mutable current : int;  (* round-robin failover cursor *)
  mutable pending_failover : bool;  (* switch replica before next attempt *)
  mutable reconnect_failures : int;
  mutable degraded : bool;
  stats : stats;
  (* invalidation cache: get_data results keyed by path, dropped whenever
     the watch machinery delivers an event for that path *)
  cache_enabled : bool;
  cache : (string, string * Znode.stat) Hashtbl.t;
  cache_stats : cache_stats;
}

let wrap ?(policy = Retry.default_policy) ?(cache = false) ~sim ~replicas
    client =
  let t =
    {
      sim;
      rng = Rng.split (Sim.rng sim);
      client;
      replicas = Array.of_list replicas;
      policy;
      current = 0;
      pending_failover = false;
      reconnect_failures = 0;
      degraded = false;
      stats =
        { calls = 0; retries = 0; failovers = 0; maybe_applied = 0; gave_up = 0 };
      cache_enabled = cache;
      cache = Hashtbl.create 16;
      cache_stats = { hits = 0; misses = 0; invalidations = 0; flushes = 0 };
    }
  in
  if cache then
    (* Every cached read arms a one-shot server watch, so the first change
       to the node after the read produces exactly one event here. *)
    Client.set_on_watch_event client (fun path _kind ->
        if Hashtbl.mem t.cache path then begin
          Hashtbl.remove t.cache path;
          t.cache_stats.invalidations <- t.cache_stats.invalidations + 1
        end);
  t

let client t = t.client
let stats t = t.stats
let degraded t = t.degraded

let next_replica t =
  t.current <- (t.current + 1) mod Array.length t.replicas;
  t.replicas.(t.current)

(* Re-attach the session to the next replica when the previous attempt
   asked for a failover or the server expired us.  After a full cycle of
   failed re-attaches the session is presumed gone (or the ensemble was
   unreachable throughout); [Client.connect] then opens a fresh session —
   losing ephemerals, which is exactly what a real expiry does. *)
let ensure_connected t =
  if t.pending_failover || not (Client.is_connected t.client) then begin
    t.pending_failover <- false;
    t.stats.failovers <- t.stats.failovers + 1;
    (* Watches live on the replica that served the read: switching replicas
       orphans them, so cached entries would never be invalidated. *)
    if t.cache_enabled && Hashtbl.length t.cache > 0 then begin
      Hashtbl.reset t.cache;
      t.cache_stats.flushes <- t.cache_stats.flushes + 1
    end;
    let r = next_replica t in
    if Client.reconnect t.client ~replica:r then t.reconnect_failures <- 0
    else begin
      t.reconnect_failures <- t.reconnect_failures + 1;
      if t.reconnect_failures > Array.length t.replicas then begin
        Client.connect t.client;
        t.reconnect_failures <- 0
      end
    end
  end

let classify t ~op (e : Zerror.t) =
  match e with
  | Zerror.Timeout -> (
      (* The request may be executing server-side; try elsewhere, and only
         resubmit what is safe to apply twice. *)
      t.pending_failover <- true;
      match op with
      | Read | Write { idempotent = true } -> Retry.Transient e
      | Write { idempotent = false } -> Retry.Ambiguous e)
  | Zerror.Not_leader ->
      (* Rejected before execution; safe to retry against a new leader. *)
      t.pending_failover <- true;
      Retry.Transient e
  | Zerror.Session_expired ->
      (* Rejected at the session check; [ensure_connected] re-attaches. *)
      Retry.Transient e
  | e -> Retry.Permanent e

let call t ~op f =
  t.stats.calls <- t.stats.calls + 1;
  let attempt ~attempt:_ =
    ensure_connected t;
    if not (Client.is_connected t.client) then
      Error (Retry.Transient Zerror.Session_expired)
    else
      match f t.client with
      | Ok v ->
          (match op with
          | Write _ -> t.degraded <- false
          | Read -> ());
          Ok v
      | Error e -> Error (classify t ~op e)
  in
  match
    Retry.run ~sim:t.sim ~rng:t.rng ~policy:t.policy
      ~on_retry:(fun ~attempt:_ ~delay:_ ->
        t.stats.retries <- t.stats.retries + 1)
      attempt
  with
  | Retry.Done { value; _ } -> Ok value
  | Retry.Maybe_applied _ ->
      t.stats.maybe_applied <- t.stats.maybe_applied + 1;
      Error Zerror.Maybe_applied
  | Retry.Gave_up { error; _ } ->
      t.stats.gave_up <- t.stats.gave_up + 1;
      (match op with
      | Write _ -> t.degraded <- true
      | Read -> ());
      Error error
  | Retry.Rejected { error; _ } -> Error error

(* ------------------------------------------------------------------ *)
(* Invalidation-cached reads (§6i layer 3)                             *)
(* ------------------------------------------------------------------ *)

let cache_stats t = t.cache_stats

(** [cached_get_data t path] — serve from the local cache when the entry
    is still covered by its watch; on a miss, read with [watch:true] so
    the next change to the node invalidates the entry.  Sequential
    consistency: the cache only ever holds values this session read, and
    they are dropped the moment the session learns of a newer write. *)
let cached_get_data t path =
  match if t.cache_enabled then Hashtbl.find_opt t.cache path else None with
  | Some (d, s) ->
      t.cache_stats.hits <- t.cache_stats.hits + 1;
      Ok (d, s)
  | None ->
      let res =
        call t ~op:Read (fun c -> Client.get_data c ~watch:t.cache_enabled path)
      in
      (match res with
      | Ok (d, s) when t.cache_enabled ->
          t.cache_stats.misses <- t.cache_stats.misses + 1;
          Hashtbl.replace t.cache path (d, s)
      | _ -> ());
      res

(** [sync t] — read-your-writes barrier.  The [Sync] reply arrives only
    after this session's replica has applied everything ordered before the
    barrier; flushing the cache afterwards forces the next reads to that
    caught-up state, closing the window where an invalidation event is
    still in flight. *)
let sync t =
  let res = call t ~op:Read (fun c -> Client.sync c) in
  (match res with
  | Ok () when t.cache_enabled ->
      Hashtbl.reset t.cache;
      t.cache_stats.flushes <- t.cache_stats.flushes + 1
  | _ -> ());
  res

(* Extension results carry stringified errors; map the retriable ones back
   onto the typed classification so one policy governs both paths. *)
let call_str t ~op f =
  let to_err s =
    if s = Zerror.to_string Zerror.Timeout then Zerror.Timeout
    else if s = Zerror.to_string Zerror.Not_leader then Zerror.Not_leader
    else if s = Zerror.to_string Zerror.Session_expired then
      Zerror.Session_expired
    else Zerror.Extension_error s
  in
  let keep = ref "" in
  let res =
    call t ~op (fun c ->
        match f c with
        | Ok v -> Ok v
        | Error s ->
            keep := s;
            Error (to_err s))
  in
  match res with
  | Ok v -> Ok v
  | Error (Zerror.Extension_error _) -> Error !keep
  | Error e -> Error (Zerror.to_string e)
