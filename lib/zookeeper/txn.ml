(** State transactions.

    The leader's preprocessor validates each client operation against its
    speculative view and translates it into an idempotent transaction: all
    conditions are already resolved (sequential names minted, versions
    computed), so replicas apply transactions unconditionally in commit
    order.  A transaction may carry several operations — the
    multi-transaction that EZK builds from one extension run (§5.1.2) —
    plus the piggybacked client result and reply routing information. *)

type op =
  | Tcreate of { path : string; data : string; ephemeral_owner : int option }
  | Tdelete of { path : string }
  | Tset of { path : string; data : string; version : int }
  | Tsession_open of { session : int; client_addr : int; owner_replica : int }
  | Tsession_close of { session : int }
  | Tsession_move of { session : int; owner_replica : int }
  | Tblock of { session : int; origin : int; xid : int; path : string }
      (** park the client's call until [path] is created; the replicated
          blocked-table makes server-side blocking calls survive failover *)
  | Tnotify of { session : int; path : string; kind : Protocol.watch_kind }
      (** custom notification emitted by an event extension *)
  | Terror  (** ordered no-op carrying an error result back to the client *)
  | Tprep of {
      txid : string;
      coord : int;  (** coordinator shard (target of in-doubt inquiries) *)
      ops : Edc_replication.Two_pc.wop list;
    }
      (** participant-side prepare record of a cross-shard transaction
          (§6j): on apply, every replica deterministically validates the
          buffered writes against the committed tree, locks their paths,
          and parks the ops until the matching [Tresolve] *)
  | Tdecide of { txid : string; commit : bool; participants : int list }
      (** coordinator-side decision record — the commit point of the
          cross-shard transaction; replicated so any later coordinator
          leader can answer in-doubt participants *)
  | Tresolve of { txid : string; commit : bool }
      (** participant-side outcome record: apply the parked writes (or
          discard them) and release the locks *)

type t = {
  origin : int option;
      (** replica that owns the originating request and must reply *)
  session : int;  (** requesting session; [0] for internal transactions *)
  xid : int;
  ops : op list;
  result : Protocol.result;  (** piggybacked reply payload *)
  quiet : bool;
      (** produced by an event extension: must not trigger further event
          extensions (breaks feedback loops) *)
}

let internal ?(quiet = false) ops =
  { origin = None; session = 0; xid = 0; ops; result = Protocol.Synced; quiet }

let op_size = function
  | Tcreate { path; data; _ } -> 24 + String.length path + String.length data
  | Tdelete { path } -> 16 + String.length path
  | Tset { path; data; _ } -> 24 + String.length path + String.length data
  | Tsession_open _ -> 24
  | Tsession_close _ -> 16
  | Tsession_move _ -> 20
  | Tblock { path; _ } -> 24 + String.length path
  | Tnotify { path; _ } -> 20 + String.length path
  | Terror -> 8
  | Tprep { txid; ops; _ } ->
      24 + String.length txid
      + List.fold_left
          (fun acc o -> acc + Edc_replication.Two_pc.wop_size o)
          0 ops
  | Tdecide { txid; participants; _ } ->
      20 + String.length txid + (4 * List.length participants)
  | Tresolve { txid; _ } -> 16 + String.length txid

let size t =
  List.fold_left (fun acc op -> acc + op_size op) (24 + Protocol.result_size t.result) t.ops

let pp_op ppf = function
  | Tcreate { path; _ } -> Fmt.pf ppf "create %s" path
  | Tdelete { path } -> Fmt.pf ppf "delete %s" path
  | Tset { path; version; _ } -> Fmt.pf ppf "set %s v%d" path version
  | Tsession_open { session; _ } -> Fmt.pf ppf "session+ %d" session
  | Tsession_close { session } -> Fmt.pf ppf "session- %d" session
  | Tsession_move { session; owner_replica } ->
      Fmt.pf ppf "session> %d@%d" session owner_replica
  | Tblock { path; session; _ } -> Fmt.pf ppf "block %s by %d" path session
  | Tnotify { path; session; _ } -> Fmt.pf ppf "notify %d about %s" session path
  | Terror -> Fmt.string ppf "error"
  | Tprep { txid; ops; _ } ->
      Fmt.pf ppf "prep %s (%d ops)" txid (List.length ops)
  | Tdecide { txid; commit; _ } ->
      Fmt.pf ppf "decide %s %s" txid (if commit then "commit" else "abort")
  | Tresolve { txid; commit } ->
      Fmt.pf ppf "resolve %s %s" txid (if commit then "commit" else "abort")

let pp ppf t = Fmt.pf ppf "txn[%a]" Fmt.(list ~sep:comma pp_op) t.ops
