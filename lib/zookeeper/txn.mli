(** State transactions.

    The leader's preprocessor validates each operation against its
    speculative view and emits an *idempotent* transaction: sequential
    names minted, versions resolved — replicas apply unconditionally in
    commit order.  A transaction may carry several operations (the
    multi-transaction EZK builds from one extension run, §5.1.2), plus the
    piggybacked client result and reply routing. *)

type op =
  | Tcreate of { path : string; data : string; ephemeral_owner : int option }
  | Tdelete of { path : string }
  | Tset of { path : string; data : string; version : int }
  | Tsession_open of { session : int; client_addr : int; owner_replica : int }
  | Tsession_close of { session : int }
  | Tsession_move of { session : int; owner_replica : int }
  | Tblock of { session : int; origin : int; xid : int; path : string }
      (** park the client's call until [path] is created; the replicated
          blocked-table makes server-side blocking survive failover *)
  | Tnotify of { session : int; path : string; kind : Protocol.watch_kind }
      (** custom notification emitted by an event extension *)
  | Terror  (** ordered no-op carrying an error result to the client *)
  | Tprep of {
      txid : string;
      coord : int;
      ops : Edc_replication.Two_pc.wop list;
    }
      (** cross-shard prepare: validate, lock, and park the writes (§6j) *)
  | Tdecide of { txid : string; commit : bool; participants : int list }
      (** coordinator decision record — the transaction's commit point *)
  | Tresolve of { txid : string; commit : bool }
      (** participant outcome: apply or discard parked writes, unlock *)

type t = {
  origin : int option;  (** replica that owns the request and must reply *)
  session : int;  (** requesting session; [0] for internal transactions *)
  xid : int;
  ops : op list;
  result : Protocol.result;  (** piggybacked reply payload *)
  quiet : bool;
      (** produced by an event extension: must not trigger further event
          extensions (breaks feedback loops) *)
}

(** A service-internal transaction (no reply routing). *)
val internal : ?quiet:bool -> op list -> t

val op_size : op -> int
val size : t -> int
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
