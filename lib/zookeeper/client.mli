(** ZooKeeper client library.

    One client object = one network endpoint = one session.  Calls block
    the calling fiber (direct style over {!Edc_simnet.Proc}), mirroring the
    synchronous client API the paper's recipes are written against. *)

open Edc_simnet
module P = Protocol

type config = { request_timeout : Sim_time.t; ping_interval : Sim_time.t }

val default_config : config

type t

val create :
  ?config:config ->
  sim:Sim.t ->
  net:Server.wire Transport.t ->
  addr:int ->
  replica:int ->
  unit ->
  t

val session : t -> int
val addr : t -> int
val requests_sent : t -> int
val is_connected : t -> bool

(** [connect t] establishes the session; retries until the cluster
    answers. *)
val connect : t -> unit

(** [reconnect t ~replica] re-attaches the existing session to another
    replica (client failover). *)
val reconnect : t -> replica:int -> bool

(** [request t op] — one raw operation; blocking calls ([Block]) wait
    indefinitely, everything else times out with [Error Timeout]. *)
val request : t -> P.op -> P.result

(** [request_async t op] — issue without blocking; the promise fulfills
    with the result, or [Error Timeout] after [request_timeout] ([Block]
    never times out).  One fiber can keep a window of requests in flight:
    the TCP transport corks the window into a single write and replies
    pipeline back. *)
val request_async : t -> P.op -> P.result Proc.promise

(** [watch_waiter t path] registers interest in the next event on [path];
    call it *before* the read that arms the server-side watch. *)
val watch_waiter : t -> string -> (string * P.watch_kind) Proc.promise

(** [set_on_watch_event t f] — [f path kind] fires on every watch event
    delivered to this client, independent of {!watch_waiter} parking.
    Used by {!Session} as the cache-invalidation feed. *)
val set_on_watch_event : t -> (string -> P.watch_kind -> unit) -> unit

(** Convenience wrappers (Table 2, ZooKeeper column). *)

val create_node :
  t -> ?ephemeral:bool -> ?sequential:bool -> string -> string ->
  (string, Zerror.t) result

val delete : t -> ?version:int -> string -> (unit, Zerror.t) result
val set_data : t -> ?expected_version:int -> string -> string -> (int, Zerror.t) result
val get_data : t -> ?watch:bool -> string -> (string * Znode.stat, Zerror.t) result
val get_children : t -> ?watch:bool -> string -> (string list, Zerror.t) result
val exists : t -> ?watch:bool -> string -> (Znode.stat option, Zerror.t) result

(** [sync t] — read-your-writes barrier: replies only after the replica
    this client is connected to has applied every update ordered before
    the barrier (travels through the leader's commit path). *)
val sync : t -> (unit, Zerror.t) result

(** [multi t ops] — atomic multi-write: all ops apply or none do.  On a
    sharded deployment, ops spanning shards commit via two-phase commit
    (§6j); [Error Txn_conflict] means the transaction aborted everywhere. *)
val multi :
  t -> Edc_replication.Two_pc.wop list -> (unit, Zerror.t) result

(** [block t path] — Table 2's [block(o)] for plain ZooKeeper: exists-watch
    plus wait for the creation event (client-side, multiple steps). *)
val block : t -> string -> (unit, Zerror.t) result

(** [server_block t path] — EZK's single-RPC blocking read (needs a
    matching operation extension); returns the created object's data. *)
val server_block : t -> string -> (string, Zerror.t) result

(** [monitor t path] — Table 2's [monitor(x, o)]: an ephemeral node tied to
    this session's liveness. *)
val monitor : t -> string -> (string, Zerror.t) result

val close : t -> unit
