(** ZooKeeper server replica.

    Mirrors the architecture in the paper's Figure 3: a chain of request
    processors — preprocessor (validation, txn minting, and the EZK
    extension-manager hook), proposer (the Zab substrate), and final
    processor (apply to the tree, fire watches, route the reply from the
    replica the client is connected to).  Reads are served locally from
    committed state (ZooKeeper's read fast path, which §6.2 of the paper
    shows is unaffected by extensions); updates are forwarded to the
    leader.

    Extensibility is provided through {!hooks}: EZK installs an intercept
    at the preprocessor stage, a replica-local predicate that redirects
    extension-matched reads to the leader, a post-apply callback for
    extension-manager bookkeeping and event extensions, and a watch
    suppression predicate.  A plain ZooKeeper deployment leaves the hooks
    at their defaults and pays nothing for them. *)

open Edc_simnet
open Edc_replication
open Edc_wire
module P = Protocol

(* ------------------------------------------------------------------ *)
(* Wire format shared by the whole deployment                          *)
(* ------------------------------------------------------------------ *)

type wire =
  | Client_msg of P.client_to_server
  | Server_msg of P.server_to_client
  | Zab_msg of Txn.t Zab.msg
  | Forward of { origin : int; session : int; xid : int; op : P.op }
  | Forward_connect of { origin : int; client_addr : int }
  | Forward_reconnect of { origin : int; session : int }
  | Forward_close of { session : int }
  | Touch of { session : int }

let wire_size = function
  | Client_msg m -> P.client_msg_size m
  | Server_msg m -> P.server_msg_size m
  | Zab_msg m -> Zab.msg_size ~payload_size:Txn.size m
  | Forward { op; _ } -> 24 + P.op_size op
  | Forward_connect _ -> 24
  | Forward_reconnect _ -> 24
  | Forward_close _ -> 16
  | Touch _ -> 16

(* ------------------------------------------------------------------ *)
(* Hooks (extension points used by EZK)                                *)
(* ------------------------------------------------------------------ *)

type hook_action =
  | Pass  (** process the request normally *)
  | Handled of Txn.op list * P.result
      (** replace normal processing: multi-transaction + piggybacked
          result (the paper's operation extensions) *)
  | Handled_deferred of Txn.op list
      (** like [Handled], but no immediate reply: the multi-transaction
          contains a [Tblock] and the client is answered when the awaited
          object appears *)
  | Reject of Zerror.t

type session_info = { client_addr : int; mutable owner_replica : int }

type config = {
  session_timeout : Sim_time.t;
  expiry_check_interval : Sim_time.t;
  snapshot_interval : int;
      (** take a snapshot and compact the replicated log every N applied
          transactions; [0] disables (ZooKeeper's snapCount) *)
  preprocess_cost : Sim_time.t;  (** CPU cost of validating one update *)
  read_cost : Sim_time.t;  (** CPU cost of serving one local read *)
  linearizable_reads : bool;
      (** route every read through the leader: served locally there under
          a valid lease ({!Zab.can_serve_lease_read}), otherwise ordered
          through the commit path as a quiet no-op barrier (§6i).  The
          default [false] keeps ZooKeeper's sequentially-consistent local
          read fast path. *)
  txn_retry_interval : Sim_time.t;
      (** 2PC coordinator: re-send [Prepare] to silent participants (§6j) *)
  txn_coord_timeout : Sim_time.t;
      (** 2PC coordinator: presumed-abort deadline for an open round *)
  txn_status_interval : Sim_time.t;
      (** 2PC participant: in-doubt [Status] inquiry cadence *)
}

let default_config =
  {
    session_timeout = Sim_time.sec 10;
    expiry_check_interval = Sim_time.ms 500;
    snapshot_interval = 1000;
    (* calibrated so a saturated leader sustains ~28k updates/s, matching
       the throughput envelope of the paper's 4-core testbed (§6, §7.1) *)
    preprocess_cost = Sim_time.us 35;
    read_cost = Sim_time.us 10;
    linearizable_reads = false;
    txn_retry_interval = Sim_time.ms 400;
    txn_coord_timeout = Sim_time.ms 2500;
    txn_status_interval = Sim_time.ms 1200;
  }

(** One open coordinator round (§6j).  Leader-volatile by design: the
    only durable coordinator state is the decision record in this shard's
    log — presumed abort covers everything a dead leader forgets. *)
type coord_round = {
  cr_participants : int list;
  cr_slices : (int * Two_pc.wop list) list;  (** per-shard op slices *)
  mutable cr_acks : int list;  (** shards that voted yes *)
  mutable cr_done : bool;  (** decision reached (either way) *)
  cr_origin : int;
  cr_session : int;
  cr_xid : int;
  cr_started : Sim_time.t;
}

type t = {
  sim : Sim.t;
  net : wire Transport.t;
  id : int;
  replica_ids : int list;
  config : config;
  tree : Data_tree.t;
  mutable zab : Txn.t Zab.t option;  (** set right after creation *)
  watch : Watch_manager.t;
  sessions : (int, session_info) Hashtbl.t;  (** replicated via txns *)
  blocked : (string, (int * int * int) list ref) Hashtbl.t;
      (** path -> (session, origin, xid): replicated blocked-call table *)
  spec : Spec_view.t;
  (* leader-volatile state *)
  mutable leader_ready : bool;
  mutable ready_barrier : int;
  mutable deferred : (int * int * int * P.op) list;  (** queued while not ready *)
  last_touch : (int, Sim_time.t) Hashtbl.t;
  mutable session_counter : int;
  mutable outstanding : int;  (** proposed but not yet applied txns *)
  mutable generation : int;
  cpu : Cpu.t;
  (* hooks *)
  mutable hook_intercept : t -> origin:int -> session:int -> xid:int -> P.op -> hook_action;
  mutable hook_read_needs_leader : t -> session:int -> P.op -> bool;
  mutable hook_on_applied : t -> Txn.t -> unit;
  mutable hook_suppress_watch : t -> session:int -> path:string -> P.watch_kind -> bool;
  mutable hook_on_snapshot_installed : t -> unit;
  (* statistics *)
  mutable reads_served : int;
  mutable lease_reads : int;  (** leader reads served under a valid lease *)
  mutable quorum_reads : int;  (** leader reads ordered through the commit path *)
  mutable txns_applied : int;
  mutable proposals : int;
  mutable wire_encodes : int;
      (** distinct message values handed to the transport — one
          serialization each on an encoding transport, however wide the
          fan-out ([send_many] counts once) *)
  mutable wire_sends : int;  (** per-destination deliveries *)
  (* snapshots *)
  mutable snap_image : Data_tree.image option;
      (** COW handle pinning the latest capture; released when superseded *)
  mutable txns_since_snapshot : int;
  mutable snap_captures : int;
  mutable snap_serializations : int;  (** captures actually marshaled *)
  mutable snap_skipped : int;  (** interval fired with nothing to compact *)
  mutable snap_installs : int;
  (* sharding / cross-shard commit (§6j) *)
  mutable shard_id : int;  (** this replica's shard; [0] when unsharded *)
  mutable shard_route : (string -> int) option;  (** path -> owning shard *)
  mutable shard_send : (int -> Two_pc.frame -> unit) option;
      (** leader-to-leader inter-shard plane, installed by the deployment *)
  locks : (string, string) Hashtbl.t;  (** path -> txid; replicated *)
  prepared : (string, int * Two_pc.wop list) Hashtbl.t;
      (** txid -> (coordinator shard, parked writes); replicated *)
  probing : (string, unit) Hashtbl.t;
      (** txids with a live in-doubt probe chain; replica-local, keeps
          [arm_status_probe] from stacking timers per txid *)
  decisions : (string, bool) Hashtbl.t;  (** txid -> committed; replicated *)
  mutable txn_audit : (string * bool) list;
      (** resolve outcomes, newest first; replicated — the atomicity
          checker's evidence *)
  coord_rounds : (string, coord_round) Hashtbl.t;  (** leader-volatile *)
  spec_locks : (string, string) Hashtbl.t;
      (** locks of our own proposed-but-unapplied [Tprep]s; leader-volatile *)
  proposed_preps : (string, unit) Hashtbl.t;  (** dedup per leader reign *)
  proposed_resolves : (string, unit) Hashtbl.t;
  mutable txn_counter : int;
  mutable txns_coordinated : int;
  mutable txns_committed : int;  (** rounds this replica decided commit *)
  mutable txns_aborted : int;  (** rounds this replica decided abort *)
}

let tree t = t.tree
let zab t = match t.zab with Some z -> z | None -> invalid_arg "server not wired"
let is_leader t = Zab.is_leader (zab t)
let id t = t.id
let sim t = t.sim
let spec t = t.spec
let reads_served t = t.reads_served
let lease_reads t = t.lease_reads
let quorum_reads t = t.quorum_reads
let txns_applied t = t.txns_applied
let proposals t = t.proposals
let wire_encodes t = t.wire_encodes
let wire_sends t = t.wire_sends
let snapshot_captures t = t.snap_captures
let snapshot_serializations t = t.snap_serializations
let snapshots_skipped t = t.snap_skipped
let snapshot_installs t = t.snap_installs
let session_exists t session = Hashtbl.mem t.sessions session
let shard_id t = t.shard_id
let txn_audit t = List.rev t.txn_audit
let decided t txid = Hashtbl.find_opt t.decisions txid

let prepared_txns t =
  Hashtbl.fold (fun txid (coord, _) acc -> (txid, coord) :: acc) t.prepared []
  |> List.sort compare

let locked_paths t =
  Hashtbl.fold (fun path txid acc -> (path, txid) :: acc) t.locks []
  |> List.sort compare

let txns_coordinated t = t.txns_coordinated
let txns_committed t = t.txns_committed
let txns_aborted t = t.txns_aborted

let session_owned_here t session =
  match Hashtbl.find_opt t.sessions session with
  | Some info -> info.owner_replica = t.id
  | None -> false

let client_addr_of t session =
  Option.map (fun i -> i.client_addr) (Hashtbl.find_opt t.sessions session)

let count_wire t ~fanout =
  t.wire_encodes <- t.wire_encodes + 1;
  t.wire_sends <- t.wire_sends + fanout

let send_wire t ~dst msg =
  count_wire t ~fanout:1;
  Transport.send t.net ~src:t.id ~dst ~size:(wire_size msg) msg

(* One encode per broadcast: the fan-out shares a single message value,
   so an encoding transport (TCP) frames it once and corks the same bytes
   to every destination. *)
let send_wire_many t ~dsts msg =
  count_wire t ~fanout:(List.length dsts);
  Transport.send_many t.net ~src:t.id ~dsts ~size:(wire_size msg) msg

let send_to_client t session msg =
  match client_addr_of t session with
  | Some addr -> send_wire t ~dst:addr (Server_msg msg)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Final processor: apply committed transactions                       *)
(* ------------------------------------------------------------------ *)

let fire_watches t path kind =
  let sessions = Watch_manager.fire t.watch Watch_manager.Data path in
  List.iter
    (fun session ->
      if
        session_owned_here t session
        && not (t.hook_suppress_watch t ~session ~path kind)
      then send_to_client t session (P.Watch_event { path; kind }))
    sessions

let fire_child_watches t path =
  let sessions = Watch_manager.fire t.watch Watch_manager.Children path in
  List.iter
    (fun session ->
      if
        session_owned_here t session
        && not (t.hook_suppress_watch t ~session ~path P.Children_changed)
      then send_to_client t session (P.Watch_event { path; kind = P.Children_changed }))
    sessions

let unblock_waiters t path =
  match Hashtbl.find_opt t.blocked path with
  | None -> ()
  | Some waiters ->
      Hashtbl.remove t.blocked path;
      let data =
        match Data_tree.get_data t.tree path with Ok (d, _) -> d | Error _ -> ""
      in
      List.iter
        (fun (session, origin, xid) ->
          if origin = t.id && session_owned_here t session then
            send_to_client t session
              (P.Reply { xid; result = P.Unblocked data }))
        (List.rev !waiters)

let drop_blocked_session t session =
  let doomed = ref [] in
  Hashtbl.iter
    (fun path waiters ->
      waiters := List.filter (fun (s, _, _) -> s <> session) !waiters;
      if !waiters = [] then doomed := path :: !doomed)
    t.blocked;
  List.iter (Hashtbl.remove t.blocked) !doomed

(* --- cross-shard commit, apply side (§6j) ---

   Everything below runs identically on every replica of the shard (it is
   driven by applied log records), except the explicitly leader-gated
   sends: acks, outcome pushes, and client replies come from whoever is
   leader when the record applies — which is exactly how a new leader
   resumes a dead one's protocol duties. *)

let shard_send_frame t dst frame =
  match t.shard_send with Some f -> f dst frame | None -> ()

(** Lock footprint of a prepared write: the path and its parent (a
    parked create/delete also changes the parent's child set, so sibling
    transactions and parent deletions must conflict). *)
let lock_paths ops =
  List.concat_map
    (fun op ->
      let path = Two_pc.wop_path op in
      match Zpath.parent path with
      | Some parent -> [ path; parent ]
      | None -> [ path ])
    ops
  |> List.sort_uniq String.compare

(** Deterministic prepare-time validation against the committed tree —
    every replica reaches the same vote from the same log prefix. *)
let wop_valid t op =
  match op with
  | Two_pc.Wcreate { path; _ } -> (
      (not (Data_tree.mem t.tree path))
      &&
      match Zpath.parent path with
      | None -> false
      | Some parent -> (
          match Data_tree.exists t.tree parent with
          | Some stat -> stat.Znode.ephemeral_owner = None
          | None -> false))
  | Two_pc.Wset { path; _ } -> Data_tree.mem t.tree path
  | Two_pc.Wdelete { path } -> (
      match Data_tree.get_children t.tree path with
      | Ok [] -> true
      | Ok _ | Error _ -> false)

let locks_free t ~txid ops =
  List.for_all
    (fun path ->
      match Hashtbl.find_opt t.locks path with
      | Some owner -> String.equal owner txid
      | None -> true)
    (lock_paths ops)

let release_txn_locks t txid ops =
  List.iter
    (fun path ->
      match Hashtbl.find_opt t.locks path with
      | Some owner when String.equal owner txid -> Hashtbl.remove t.locks path
      | _ -> ())
    (lock_paths ops);
  let mine =
    Hashtbl.fold
      (fun path owner acc -> if String.equal owner txid then path :: acc else acc)
      t.spec_locks []
  in
  List.iter (Hashtbl.remove t.spec_locks) mine

let audited t txid = List.mem_assoc txid t.txn_audit

(** In-doubt participant loop: while [txid] stays prepared, the current
    leader of this shard periodically asks the coordinator shard for the
    outcome.  The chain is armed on every replica when the [Tprep]
    applies (and on snapshot install, for snapshots carrying prepared
    txns) but only the leader of the moment speaks — so the inquiry
    survives any single replica's death.  At most one chain runs per
    txid: [t.probing] marks live chains so re-arming (e.g. a snapshot
    install while the txn is still in doubt) is a no-op instead of a
    second timer multiplying Status traffic. *)
let arm_status_probe t txid =
  if not (Hashtbl.mem t.probing txid) then begin
    Hashtbl.replace t.probing txid ();
    let rec probe () =
      match Hashtbl.find_opt t.prepared txid with
      | None -> Hashtbl.remove t.probing txid
      | Some (coord, _) ->
          if is_leader t then
            shard_send_frame t coord
              (Two_pc.Status { txid; from_shard = t.shard_id });
          Sim.schedule t.sim ~after:t.config.txn_status_interval probe
    in
    Sim.schedule t.sim ~after:t.config.txn_status_interval probe
  end

let rec apply_op t op =
  match op with
  | Txn.Tcreate { path; data; ephemeral_owner } ->
      Data_tree.apply_create t.tree ~path ~data ~ephemeral_owner;
      fire_watches t path P.Node_created;
      (match Zpath.parent path with
      | Some parent -> fire_child_watches t parent
      | None -> ());
      unblock_waiters t path
  | Txn.Tdelete { path } ->
      Data_tree.apply_delete t.tree ~path;
      fire_watches t path P.Node_deleted;
      (match Zpath.parent path with
      | Some parent -> fire_child_watches t parent
      | None -> ())
  | Txn.Tset { path; data; version } ->
      Data_tree.apply_set t.tree ~path ~data ~version;
      fire_watches t path P.Node_changed
  | Txn.Tsession_open { session; client_addr; owner_replica } ->
      Hashtbl.replace t.sessions session { client_addr; owner_replica };
      if is_leader t then Hashtbl.replace t.last_touch session (Sim.now t.sim);
      if owner_replica = t.id then
        send_to_client t session (P.Connect_ok { session })
  | Txn.Tsession_move { session; owner_replica } -> (
      match Hashtbl.find_opt t.sessions session with
      | Some info ->
          info.owner_replica <- owner_replica;
          if owner_replica = t.id then
            send_to_client t session (P.Connect_ok { session })
      | None -> ())
  | Txn.Tsession_close { session } ->
      Hashtbl.remove t.sessions session;
      Hashtbl.remove t.last_touch session;
      Watch_manager.drop_session t.watch session;
      drop_blocked_session t session
  | Txn.Tblock { session; origin; xid; path } -> (
      (* If the node exists by now it can only be because the same txn
         created it earlier in the multi-txn; unblock immediately. *)
      match Data_tree.get_data t.tree path with
      | Ok (data, _) ->
          if origin = t.id && session_owned_here t session then
            send_to_client t session (P.Reply { xid; result = P.Unblocked data })
      | Error _ ->
          let waiters =
            match Hashtbl.find_opt t.blocked path with
            | Some w -> w
            | None ->
                let w = ref [] in
                Hashtbl.replace t.blocked path w;
                w
          in
          waiters := (session, origin, xid) :: !waiters)
  | Txn.Tnotify { session; path; kind } ->
      if session_owned_here t session then
        send_to_client t session (P.Watch_event { path; kind })
  | Txn.Terror -> ()
  | Txn.Tprep { txid; coord; ops } ->
      if not (Hashtbl.mem t.prepared txid || audited t txid) then begin
        let ok = locks_free t ~txid ops && List.for_all (wop_valid t) ops in
        if ok then begin
          List.iter
            (fun path -> Hashtbl.replace t.locks path txid)
            (lock_paths ops);
          Hashtbl.replace t.prepared txid (coord, ops);
          arm_status_probe t txid
        end;
        (* the leader of the moment reports the (replica-deterministic)
           vote; a no-vote leaves no trace — presumed abort *)
        if is_leader t then
          shard_send_frame t coord
            (Two_pc.Prepare_ack { txid; shard = t.shard_id; ok })
      end
  | Txn.Tdecide { txid; commit; participants } ->
      if not (Hashtbl.mem t.decisions txid) then begin
        Hashtbl.replace t.decisions txid commit;
        if is_leader t then begin
          List.iter
            (fun shard ->
              shard_send_frame t shard
                (if commit then Two_pc.Commit { txid }
                 else Two_pc.Abort { txid }))
            participants;
          match Hashtbl.find_opt t.coord_rounds txid with
          | Some cr ->
              cr.cr_done <- true;
              if cr.cr_session <> 0 then
                send_to_client t cr.cr_session
                  (P.Reply
                     { xid = cr.cr_xid;
                       result =
                         (if commit then P.Multi_ok
                          else P.Error Zerror.Txn_conflict) });
              Hashtbl.remove t.coord_rounds txid
          | None -> ()
        end
      end
  | Txn.Tresolve { txid; commit } -> (
      match Hashtbl.find_opt t.prepared txid with
      | None -> () (* duplicate or unknown outcome push: nothing parked *)
      | Some (_coord, ops) ->
          Hashtbl.remove t.prepared txid;
          Hashtbl.remove t.proposed_resolves txid;
          release_txn_locks t txid ops;
          t.txn_audit <- (txid, commit) :: t.txn_audit;
          if commit then
            List.iter
              (fun op ->
                match op with
                | Two_pc.Wcreate { path; data } ->
                    apply_op t
                      (Txn.Tcreate { path; data; ephemeral_owner = None })
                | Two_pc.Wset { path; data } ->
                    let version =
                      match Data_tree.get_data t.tree path with
                      | Ok (_, stat) -> stat.Znode.version + 1
                      | Error _ -> 1
                    in
                    apply_op t (Txn.Tset { path; data; version })
                | Two_pc.Wdelete { path } ->
                    apply_op t (Txn.Tdelete { path }))
              ops)

(* --- snapshots (§3.8 state transfer) --- *)

type snapshot = {
  snap_tree : Data_tree.portable;
  snap_sessions : (int * session_info) list;
  snap_blocked : (string * (int * int * int) list) list;
  snap_locks : (string * string) list;  (** 2PC path locks (§6j) *)
  snap_prepared : (string * (int * Two_pc.wop list)) list;
  snap_decisions : (string * bool) list;
  snap_audit : (string * bool) list;  (** oldest first *)
}

(* Snapshot blobs cross the wire and are re-read by other replicas (and,
   eventually, other OCaml versions): they go through the deterministic
   binary codec, never [Marshal].  Inputs are pre-sorted by
   {!capture_snapshot}, so equal states yield byte-identical frames. *)
let snapshot_to_wire s =
  let open Wire in
  List
    [ Wire_format.portable_to_wire s.snap_tree;
      List
        (List.map
           (fun (session, (info : session_info)) ->
             List [ Int session; Int info.client_addr; Int info.owner_replica ])
           s.snap_sessions);
      List
        (List.map
           (fun (path, waiters) ->
             List
               [ Str path;
                 List
                   (List.map
                      (fun (s, o, x) -> List [ Int s; Int o; Int x ])
                      waiters) ])
           s.snap_blocked);
      List
        (List.map
           (fun (path, txid) -> List [ Str path; Str txid ])
           s.snap_locks);
      List
        (List.map
           (fun (txid, (coord, ops)) ->
             List
               [ Str txid; Int coord;
                 List (List.map Two_pc.wop_to_wire ops) ])
           s.snap_prepared);
      List
        (List.map
           (fun (txid, commit) -> List [ Str txid; bool_ commit ])
           s.snap_decisions);
      List
        (List.map
           (fun (txid, commit) -> List [ Str txid; bool_ commit ])
           s.snap_audit) ]

let snapshot_of_wire w =
  let open Wire in
  let ( let* ) = Result.bind in
  match w with
  | List [ tree; sessions; blocked; locks; prepared; decisions; audit ] ->
      let* snap_tree = Wire_format.portable_of_wire tree in
      let* snap_sessions =
        map_list
          (function
            | List [ Int session; Int client_addr; Int owner_replica ] ->
                Ok (session, { client_addr; owner_replica })
            | _ -> Error "bad session entry")
          sessions
      in
      let* snap_blocked =
        map_list
          (function
            | List [ Str path; waiters ] ->
                let* waiters =
                  map_list
                    (function
                      | List [ Int s; Int o; Int x ] -> Ok (s, o, x)
                      | _ -> Error "bad blocked waiter")
                    waiters
                in
                Ok (path, waiters)
            | _ -> Error "bad blocked entry")
          blocked
      in
      let* snap_locks =
        map_list
          (function
            | List [ Str path; Str txid ] -> Ok (path, txid)
            | _ -> Error "bad lock entry")
          locks
      in
      let* snap_prepared =
        map_list
          (function
            | List [ Str txid; Int coord; ops ] ->
                let* ops = map_list Two_pc.wop_of_wire ops in
                Ok (txid, (coord, ops))
            | _ -> Error "bad prepared entry")
          prepared
      in
      let decided_entry = function
        | List [ Str txid; commit ] ->
            let* commit = to_bool commit in
            Ok (txid, commit)
        | _ -> Error "bad decision entry"
      in
      let* snap_decisions = map_list decided_entry decisions in
      let* snap_audit = map_list decided_entry audit in
      Ok
        { snap_tree; snap_sessions; snap_blocked; snap_locks; snap_prepared;
          snap_decisions; snap_audit }
  | _ -> Error "bad snapshot"

(* Streaming snapshot writer, byte-identical to [snapshot_to_wire] —
   compaction serializes a 10k-node tree without building the Wire.t
   first.  [snapshot_to_wire] stays as the reference oracle, exposed
   through {!snapshot_bytes_tree} so tests can assert the identity. *)
let write_snapshot w s =
  let module W = Wire.Writer in
  W.begin_list w;
  Wire_format.write_portable w s.snap_tree;
  W.list w
    (fun w (session, (info : session_info)) ->
      W.begin_list w;
      W.int w session;
      W.int w info.client_addr;
      W.int w info.owner_replica;
      W.end_list w)
    s.snap_sessions;
  W.list w
    (fun w (path, waiters) ->
      W.begin_list w;
      W.str w path;
      W.list w
        (fun w (s, o, x) ->
          W.begin_list w;
          W.int w s;
          W.int w o;
          W.int w x;
          W.end_list w)
        waiters;
      W.end_list w)
    s.snap_blocked;
  W.list w
    (fun w (path, txid) ->
      W.begin_list w;
      W.str w path;
      W.str w txid;
      W.end_list w)
    s.snap_locks;
  W.list w
    (fun w (txid, (coord, ops)) ->
      W.begin_list w;
      W.str w txid;
      W.int w coord;
      W.list w Two_pc.write_wop ops;
      W.end_list w)
    s.snap_prepared;
  let decided_entry w (txid, commit) =
    W.begin_list w;
    W.str w txid;
    W.bool w commit;
    W.end_list w
  in
  W.list w decided_entry s.snap_decisions;
  W.list w decided_entry s.snap_audit;
  W.end_list w

(** Capture the replica's whole replicated state (tree, sessions, parked
    blocking calls).  Must correspond exactly to the delivered prefix —
    guaranteed because the simulator applies transactions synchronously.

    The capture itself is O(sessions + blocked), NOT O(tree): the tree is
    pinned by a copy-on-write handle ({!Data_tree.export}), and the
    returned closure does the materialize + encode work only if a state
    transfer ever needs the bytes.  Sessions and blocked entries are
    snapshotted eagerly (they are small, and [session_info] is mutable so
    sharing it with the live table would let later moves corrupt the
    image), sorted so the serialized blob is byte-identical across
    replicas in the same state. *)
let snapshot_state t =
  let snap_sessions =
    Hashtbl.fold
      (fun k (v : session_info) acc ->
        (k, { v with owner_replica = v.owner_replica }) :: acc)
      t.sessions []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let snap_blocked =
    Hashtbl.fold (fun k v acc -> (k, List.sort compare !v) :: acc) t.blocked []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let sorted_of_tbl tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let snap_locks = sorted_of_tbl t.locks in
  let snap_prepared = sorted_of_tbl t.prepared in
  let snap_decisions = sorted_of_tbl t.decisions in
  let snap_audit = List.rev t.txn_audit in
  fun snap_tree ->
    { snap_tree; snap_sessions; snap_blocked; snap_locks; snap_prepared;
      snap_decisions; snap_audit }

let capture_snapshot t =
  (match t.snap_image with Some h -> Data_tree.release h | None -> ());
  let image = Data_tree.export t.tree in
  t.snap_image <- Some image;
  t.snap_captures <- t.snap_captures + 1;
  let of_tree = snapshot_state t in
  fun () ->
    t.snap_serializations <- t.snap_serializations + 1;
    Wire.Writer.with_writer (fun w ->
        write_snapshot w (of_tree (Data_tree.materialize image)))

let snapshot_bytes t = (capture_snapshot t) ()

let snapshot_bytes_tree t =
  Wire.encode (snapshot_to_wire (snapshot_state t (Data_tree.export_eager t.tree)))

(** The blob is untrusted bytes off the wire: decode fully (a pure step)
    before touching any state, so a corrupt or truncated blob leaves the
    replica exactly as it was and the transfer layer can re-request. *)
let install_snapshot t blob =
  match Result.bind (Wire.decode blob) snapshot_of_wire with
  | Error _ as e -> e
  | Ok snap ->
      Data_tree.import_portable t.tree snap.snap_tree;
      Hashtbl.reset t.sessions;
      List.iter (fun (k, v) -> Hashtbl.replace t.sessions k v) snap.snap_sessions;
      Hashtbl.reset t.blocked;
      List.iter
        (fun (k, v) -> Hashtbl.replace t.blocked k (ref v))
        snap.snap_blocked;
      Hashtbl.reset t.locks;
      List.iter (fun (k, v) -> Hashtbl.replace t.locks k v) snap.snap_locks;
      Hashtbl.reset t.prepared;
      List.iter
        (fun (k, v) ->
          Hashtbl.replace t.prepared k v;
          arm_status_probe t k)
        snap.snap_prepared;
      Hashtbl.reset t.decisions;
      List.iter
        (fun (k, v) -> Hashtbl.replace t.decisions k v)
        snap.snap_decisions;
      t.txn_audit <- List.rev snap.snap_audit;
      t.snap_installs <- t.snap_installs + 1;
      (* the installed blob puts us exactly at a snapshot horizon: restart
         the interval so we do not immediately re-capture state we just
         received *)
      t.txns_since_snapshot <- 0;
      t.hook_on_snapshot_installed t;
      Ok ()

let maybe_compact t =
  if t.config.snapshot_interval > 0 then begin
    t.txns_since_snapshot <- t.txns_since_snapshot + 1;
    if t.txns_since_snapshot >= t.config.snapshot_interval then
      let z = zab t in
      if Zab.delivered_length z > Zab.compaction_base z then begin
        t.txns_since_snapshot <- 0;
        Zab.compact z ~take:(fun () -> capture_snapshot t)
      end
      else
        (* the log prefix is already compacted to this horizon (e.g. we
           just installed a snapshot): no state to capture *)
        t.snap_skipped <- t.snap_skipped + 1
  end

let final_process t (txn : Txn.t) =
  List.iter (apply_op t) txn.ops;
  t.txns_applied <- t.txns_applied + 1;
  maybe_compact t;
  if is_leader t then begin
    List.iter (Spec_view.on_applied_op t.spec) txn.ops;
    if t.outstanding > 0 then t.outstanding <- t.outstanding - 1;
    (* Quiescent leader: speculation equals committed state, so the pending
       table can be dropped (bounds its growth). *)
    if t.outstanding = 0 then Spec_view.reset t.spec
  end;
  (* Reply from the replica the client is connected to, with the
     piggybacked result (paper §5.1.2). *)
  (match txn.origin with
  | Some origin when origin = t.id && txn.session <> 0 ->
      send_to_client t txn.session (P.Reply { xid = txn.xid; result = txn.result })
  | _ -> ());
  t.hook_on_applied t txn

(* ------------------------------------------------------------------ *)
(* Proposer stage                                                      *)
(* ------------------------------------------------------------------ *)

let reply_direct t ~session ~xid result =
  (* Used for errors detected before ordering and for leader-served reads:
     the reply goes straight to the client. *)
  match client_addr_of t session with
  | Some addr -> send_wire t ~dst:addr (Server_msg (P.Reply { xid; result }))
  | None -> ()

let propose t (txn : Txn.t) =
  t.proposals <- t.proposals + 1;
  t.outstanding <- t.outstanding + 1;
  match Zab.propose (zab t) txn with
  | Some _ -> ()
  | None ->
      t.outstanding <- t.outstanding - 1;
      if txn.session <> 0 then
        reply_direct t ~session:txn.session ~xid:txn.xid
          (P.Error Zerror.Not_leader)

(* ------------------------------------------------------------------ *)
(* Cross-shard commit, coordinator + participant front ends (§6j)      *)
(* ------------------------------------------------------------------ *)

(** Decide an open round.  Commit rides this shard's log ([Tdecide] — the
    commit point; pushes and the client reply happen when it applies, on
    whoever is leader then).  Abort is presumed: no record, just pushes
    and the reply — any state a dead leader forgets aborts by default. *)
let decide_round t txid cr commit =
  if not cr.cr_done then
    if commit then begin
      cr.cr_done <- true;
      t.txns_committed <- t.txns_committed + 1;
      propose t
        (Txn.internal
           [ Txn.Tdecide
               { txid; commit = true; participants = cr.cr_participants } ])
    end
    else begin
      cr.cr_done <- true;
      t.txns_aborted <- t.txns_aborted + 1;
      List.iter
        (fun shard -> shard_send_frame t shard (Two_pc.Abort { txid }))
        cr.cr_participants;
      if cr.cr_session <> 0 then
        reply_direct t ~session:cr.cr_session ~xid:cr.cr_xid
          (P.Error Zerror.Txn_conflict);
      Hashtbl.remove t.coord_rounds txid
    end

let round_expired t cr =
  Sim_time.(
    t.config.txn_coord_timeout <= Sim_time.sub (Sim.now t.sim) cr.cr_started)

(** Coordinator heartbeat: re-send [Prepare] to silent participants,
    presumed-abort the round past the deadline. *)
let rec coord_tick t txid () =
  match Hashtbl.find_opt t.coord_rounds txid with
  | None -> ()
  | Some cr when cr.cr_done -> ()
  | Some cr ->
      if round_expired t cr then decide_round t txid cr false
      else begin
        List.iter
          (fun (shard, ops) ->
            if not (List.mem shard cr.cr_acks) then
              shard_send_frame t shard
                (Two_pc.Prepare
                   { txid; coord = t.shard_id;
                     participants = cr.cr_participants; ops }))
          cr.cr_slices;
        Sim.schedule t.sim ~after:t.config.txn_retry_interval
          (coord_tick t txid)
      end

let start_cross_shard t ~session ~xid slices =
  t.txn_counter <- t.txn_counter + 1;
  let txid =
    Fmt.str "s%d.e%d.%d" t.shard_id (Zab.epoch (zab t)) t.txn_counter
  in
  let participants = List.map fst slices in
  let cr =
    {
      cr_participants = participants;
      cr_slices = slices;
      cr_acks = [];
      cr_done = false;
      cr_origin = 0;
      cr_session = session;
      cr_xid = xid;
      cr_started = Sim.now t.sim;
    }
  in
  Hashtbl.replace t.coord_rounds txid cr;
  t.txns_coordinated <- t.txns_coordinated + 1;
  List.iter
    (fun (shard, ops) ->
      shard_send_frame t shard
        (Two_pc.Prepare { txid; coord = t.shard_id; participants; ops }))
    slices;
  Sim.schedule t.sim ~after:t.config.txn_retry_interval (coord_tick t txid)

let handle_prepare_ack t txid shard ok =
  match Hashtbl.find_opt t.coord_rounds txid with
  | None -> () (* a previous leader's round; participants recover via Status *)
  | Some cr when cr.cr_done -> ()
  | Some cr ->
      if not ok then decide_round t txid cr false
      else begin
        if not (List.mem shard cr.cr_acks) then
          cr.cr_acks <- shard :: cr.cr_acks;
        if
          List.for_all (fun s -> List.mem s cr.cr_acks) cr.cr_participants
        then decide_round t txid cr true
      end

(** Answer an in-doubt participant from replicated state.  No decision
    record and no live round means no commit can ever be decided —
    presumed abort.  A live round is NOT evidence either way: probes are
    cadence-driven (the default [txn_status_interval] fires well inside
    [txn_coord_timeout]), so a round that is still collecting votes is
    left alone unless it is already past the coordinator deadline — then
    it is aborted on the spot, the same presumed-abort the next
    {!coord_tick} would apply.  A round whose commit decision is in
    flight ([cr_done] set, [Tdecide] proposed but not yet applied) gets
    no answer at all: answering Abort there lets one participant resolve
    abort while the commit record lands and pushes Commit to the rest —
    a partial commit.  Silence is safe — the probe retries, and by then
    either the record applied (the decision table answers Commit) or
    this leader fell (its volatile rounds die with it and the record,
    never committed, resolves to presumed abort under the next one). *)
let handle_status t txid from_shard =
  match Hashtbl.find_opt t.decisions txid with
  | Some true -> shard_send_frame t from_shard (Two_pc.Commit { txid })
  | Some false -> shard_send_frame t from_shard (Two_pc.Abort { txid })
  | None -> (
      match Hashtbl.find_opt t.coord_rounds txid with
      | Some cr when not cr.cr_done ->
          if round_expired t cr then decide_round t txid cr false
      | Some _ -> () (* commit record in flight: answer after it applies *)
      | None -> shard_send_frame t from_shard (Two_pc.Abort { txid }))

(** Speculative prepare validation at the participant leader: same
    predicates as the apply-time vote, but against the speculative view
    (so in-flight normal writes are visible) plus both lock tables.  A
    spec-level no is answered without a log record. *)
let spec_wop_valid t op =
  match op with
  | Two_pc.Wcreate { path; _ } -> (
      Spec_view.exists t.spec path = None
      &&
      match Zpath.parent path with
      | None -> false
      | Some parent -> (
          match Spec_view.exists t.spec parent with
          | Some stat -> stat.Znode.ephemeral_owner = None
          | None -> false))
  | Two_pc.Wset { path; _ } -> Spec_view.exists t.spec path <> None
  | Two_pc.Wdelete { path } -> (
      match Spec_view.children t.spec path with Ok [] -> true | _ -> false)

let handle_prepare t ~txid ~coord ops =
  if audited t txid then
    (* already resolved here: re-tell the coordinator the final state *)
    shard_send_frame t coord
      (Two_pc.Prepare_ack
         { txid; shard = t.shard_id; ok = List.assoc txid t.txn_audit })
  else if Hashtbl.mem t.prepared txid then
    shard_send_frame t coord
      (Two_pc.Prepare_ack { txid; shard = t.shard_id; ok = true })
  else if Hashtbl.mem t.proposed_preps txid then
    () (* prepare already in our log pipeline; the vote rides its apply *)
  else begin
    let paths = lock_paths ops in
    let lock_ok =
      List.for_all
        (fun p ->
          (not (Hashtbl.mem t.locks p)) && not (Hashtbl.mem t.spec_locks p))
        paths
    in
    if lock_ok && List.for_all (spec_wop_valid t) ops then begin
      List.iter (fun p -> Hashtbl.replace t.spec_locks p txid) paths;
      Hashtbl.replace t.proposed_preps txid ();
      propose t (Txn.internal [ Txn.Tprep { txid; coord; ops } ])
    end
    else
      shard_send_frame t coord
        (Two_pc.Prepare_ack { txid; shard = t.shard_id; ok = false })
  end

let handle_outcome t txid commit =
  if Hashtbl.mem t.prepared txid && not (Hashtbl.mem t.proposed_resolves txid)
  then begin
    Hashtbl.replace t.proposed_resolves txid ();
    propose t (Txn.internal [ Txn.Tresolve { txid; commit } ])
  end

(** Entry point for the deployment's inter-shard plane: frames only mean
    something to a ready leader — anyone else drops them and lets the
    sender's retry/inquiry loop find the new leader. *)
let handle_shard_frame t frame =
  if is_leader t && t.leader_ready then
    match frame with
    | Two_pc.Prepare { txid; coord; participants = _; ops } ->
        handle_prepare t ~txid ~coord ops
    | Two_pc.Prepare_ack { txid; shard; ok } ->
        handle_prepare_ack t txid shard ok
    | Two_pc.Commit { txid } -> handle_outcome t txid true
    | Two_pc.Abort { txid } -> handle_outcome t txid false
    | Two_pc.Status { txid; from_shard } -> handle_status t txid from_shard

(** A path is write-blocked while a prepared transaction holds it (or its
    parent): the parked write will apply unconditionally at resolve, so
    nothing conflicting may slip into the log in between. *)
let write_locked t path =
  let l p = Hashtbl.mem t.locks p || Hashtbl.mem t.spec_locks p in
  l path || (match Zpath.parent path with Some p -> l p | None -> false)

(** Single-shard slice of a multi: all-or-nothing through the speculative
    view, one ordinary multi-op transaction. *)
let preprocess_local_multi t ~origin ~session ~xid ops =
  let reply_err e =
    propose t
      { origin = Some origin; session; xid; ops = [ Txn.Terror ];
        result = P.Error e; quiet = false }
  in
  if List.exists (fun op -> write_locked t (Two_pc.wop_path op)) ops then
    reply_err Zerror.Locked
  else begin
    Spec_view.begin_txn t.spec;
    let rec mint acc = function
      | [] -> Ok (List.rev acc)
      | op :: rest -> (
          let minted =
            match op with
            | Two_pc.Wcreate { path; data } ->
                Result.map
                  (fun (_, top) -> top)
                  (Spec_view.create_node t.spec ~path ~data
                     ~ephemeral_owner:None ~sequential:false)
            | Two_pc.Wset { path; data } ->
                Result.map
                  (fun (top, _) -> top)
                  (Spec_view.set_node t.spec ~path ~data
                     ~expected_version:None)
            | Two_pc.Wdelete { path } ->
                Spec_view.delete_node t.spec ~path ~version:None
          in
          match minted with
          | Ok top -> mint (top :: acc) rest
          | Error e -> Error e)
    in
    match mint [] ops with
    | Ok tops ->
        Spec_view.commit_txn t.spec;
        propose t
          { origin = Some origin; session; xid; ops = tops;
            result = P.Multi_ok; quiet = false }
    | Error e ->
        Spec_view.rollback_txn t.spec;
        reply_err e
  end

let preprocess_multi t ~origin ~session ~xid ops =
  let slices =
    match t.shard_route with
    | None -> [ (t.shard_id, ops) ]
    | Some route ->
        let tbl = Hashtbl.create 4 in
        let order = ref [] in
        List.iter
          (fun op ->
            let s = route (Two_pc.wop_path op) in
            match Hashtbl.find_opt tbl s with
            | Some slice -> slice := op :: !slice
            | None ->
                Hashtbl.replace tbl s (ref [ op ]);
                order := s :: !order)
          ops;
        List.rev_map (fun s -> (s, List.rev !(Hashtbl.find tbl s))) !order
  in
  match slices with
  | [] -> reply_direct t ~session ~xid P.Multi_ok
  | [ (shard, ops) ] when shard = t.shard_id ->
      preprocess_local_multi t ~origin ~session ~xid ops
  | _ when t.shard_send = None ->
      reply_direct t ~session ~xid (P.Error Zerror.Unsupported)
  | _ -> start_cross_shard t ~session ~xid slices

(* ------------------------------------------------------------------ *)
(* Preprocessor stage (leader only)                                    *)
(* ------------------------------------------------------------------ *)

(** Leader-side read reply (§6i).  Under a valid lease the committed tree
    is served directly: a voting majority has promised not to elect
    another leader before our lease expires, so no later write can have
    committed elsewhere.  Without the lease the read result rides a quiet
    no-op through the commit path — the reply only reaches the client if
    the barrier commits, which proves this replica was still the leader
    at the read's serialization point. *)
let reply_read t ~origin ~session ~xid result =
  if not t.config.linearizable_reads then reply_direct t ~session ~xid result
  else if Zab.can_serve_lease_read (zab t) then begin
    t.lease_reads <- t.lease_reads + 1;
    reply_direct t ~session ~xid result
  end
  else begin
    t.quorum_reads <- t.quorum_reads + 1;
    propose t
      { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result; quiet = true }
  end

let preprocess_normal t ~origin ~session ~xid op =
  let locked_target =
    (* A prepared cross-shard transaction holds its paths (and their
       parents) until resolution; conflicting normal writes must not be
       ordered in between (§6j). *)
    match op with
    | P.Create { path; _ } | P.Delete { path; _ } | P.Set_data { path; _ } ->
        write_locked t path
    | _ -> false
  in
  if locked_target then
    propose t
      { origin = Some origin; session; xid; ops = [ Txn.Terror ];
        result = P.Error Zerror.Locked; quiet = false }
  else
  match op with
  | P.Multi { ops } -> preprocess_multi t ~origin ~session ~xid ops
  | P.Create { path; data; ephemeral; sequential } -> (
      let ephemeral_owner = if ephemeral then Some session else None in
      match Spec_view.create_node t.spec ~path ~data ~ephemeral_owner ~sequential with
      | Ok (actual, top) ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Created actual; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Delete { path; version } -> (
      match Spec_view.delete_node t.spec ~path ~version with
      | Ok top ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Deleted; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Set_data { path; data; expected_version } -> (
      match Spec_view.set_node t.spec ~path ~data ~expected_version with
      | Ok (top, version) ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Set { version }; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Get_data { path; _ } ->
      (* Leader-served read: either an extension-matched read whose
         extension vanished, or any read under [linearizable_reads]. *)
      let result =
        match Data_tree.get_data t.tree path with
        | Ok (d, s) -> P.Data (d, s)
        | Error e -> P.Error e
      in
      reply_read t ~origin ~session ~xid result
  | P.Get_children { path; _ } ->
      let result =
        match Data_tree.get_children t.tree path with
        | Ok c -> P.Children c
        | Error e -> P.Error e
      in
      reply_read t ~origin ~session ~xid result
  | P.Exists { path; _ } ->
      reply_read t ~origin ~session ~xid (P.Stat_of (Data_tree.exists t.tree path))
  | P.Block _ ->
      (* Blocking calls only exist through operation extensions. *)
      reply_direct t ~session ~xid (P.Error Zerror.Unsupported)
  | P.Sync ->
      (* Commit-path barrier: [Synced] is delivered from the origin
         replica only after that replica has applied every transaction
         ordered before the barrier — read-your-writes for the issuing
         client even when its reads are served by an observer or a
         session cache. *)
      propose t
        { origin = Some origin; session; xid; ops = [ Txn.Terror ];
          result = P.Synced; quiet = true }

let preprocess t ~origin ~session ~xid op =
  if not (session_exists t session) then
    reply_direct t ~session ~xid (P.Error Zerror.Session_expired)
  else begin
    Hashtbl.replace t.last_touch session (Sim.now t.sim);
    match t.hook_intercept t ~origin ~session ~xid op with
    | Handled (ops, result) ->
        propose t { origin = Some origin; session; xid; ops; result; quiet = false }
    | Handled_deferred ops ->
        propose t { origin = None; session; xid; ops; result = P.Synced; quiet = false }
    | Reject e -> reply_direct t ~session ~xid (P.Error e)
    | Pass -> preprocess_normal t ~origin ~session ~xid op
  end

let enqueue_preprocess t ~origin ~session ~xid op =
  if t.leader_ready then
    (* The preprocessor is a serial stage: its CPU cost is what saturates
       the leader under load. *)
    Cpu.exec t.cpu ~cost:t.config.preprocess_cost (fun () ->
        if is_leader t then preprocess t ~origin ~session ~xid op)
  else t.deferred <- (origin, session, xid, op) :: t.deferred

let drain_deferred t =
  let ds = List.rev t.deferred in
  t.deferred <- [];
  List.iter (fun (origin, session, xid, op) -> enqueue_preprocess t ~origin ~session ~xid op) ds

(** [propose_internal t ?quiet ops] — leader-side entry point for
    service-internal multi-transactions (bootstrap objects, event-extension
    follow-ups). *)
let propose_internal t ?(quiet = false) ops =
  if is_leader t then propose t (Txn.internal ~quiet ops)

(* --- session lifecycle at the leader --- *)

let preprocess_connect t ~origin ~client_addr =
  t.session_counter <- t.session_counter + 1;
  let session = (Zab.epoch (zab t) * 1_000_000) + t.session_counter in
  propose t
    {
      origin = None;
      session = 0;
      xid = 0;
      ops = [ Txn.Tsession_open { session; client_addr; owner_replica = origin } ];
      result = P.Synced;
      quiet = false;
    }

let preprocess_reconnect t ~origin ~session =
  if session_exists t session then begin
    Hashtbl.replace t.last_touch session (Sim.now t.sim);
    propose t
      (Txn.internal [ Txn.Tsession_move { session; owner_replica = origin } ])
  end

let preprocess_close t ~session =
  if session_exists t session then begin
    let deletes =
      Spec_view.ephemerals_of_session t.spec session
      |> List.filter_map (fun path ->
             match Spec_view.delete_node t.spec ~path ~version:None with
             | Ok top -> Some top
             | Error _ -> None)
    in
    propose t (Txn.internal (deletes @ [ Txn.Tsession_close { session } ]))
  end

(* ------------------------------------------------------------------ *)
(* Local read path                                                     *)
(* ------------------------------------------------------------------ *)

let serve_read t ~session ~xid op =
  t.reads_served <- t.reads_served + 1;
  let reply result = send_to_client t session (P.Reply { xid; result }) in
  match op with
  | P.Get_data { path; watch } ->
      (match Data_tree.get_data t.tree path with
      | Ok (d, s) ->
          if watch then Watch_manager.add t.watch Watch_manager.Data path session;
          reply (P.Data (d, s))
      | Error e ->
          (* A data watch on a missing node is an exists-style watch. *)
          if watch then Watch_manager.add t.watch Watch_manager.Data path session;
          reply (P.Error e))
  | P.Get_children { path; watch } ->
      (match Data_tree.get_children t.tree path with
      | Ok c ->
          if watch then Watch_manager.add t.watch Watch_manager.Children path session;
          reply (P.Children c)
      | Error e -> reply (P.Error e))
  | P.Exists { path; watch } ->
      if watch then Watch_manager.add t.watch Watch_manager.Data path session;
      reply (P.Stat_of (Data_tree.exists t.tree path))
  | P.Sync -> reply P.Synced
  | P.Block _ | P.Create _ | P.Delete _ | P.Set_data _ | P.Multi _ ->
      reply (P.Error Zerror.Unsupported)

(* ------------------------------------------------------------------ *)
(* Request routing                                                     *)
(* ------------------------------------------------------------------ *)

let forward_to_leader t msg =
  match Zab.leader_hint (zab t) with
  | Some leader when leader = t.id -> (
      (* We are the leader: loop the message back to ourselves. *)
      match msg with
      | Forward { origin; session; xid; op } ->
          enqueue_preprocess t ~origin ~session ~xid op
      | Forward_connect { origin; client_addr } ->
          preprocess_connect t ~origin ~client_addr
      | Forward_reconnect { origin; session } ->
          preprocess_reconnect t ~origin ~session
      | Forward_close { session } -> preprocess_close t ~session
      | Touch { session } ->
          if session_exists t session then
            Hashtbl.replace t.last_touch session (Sim.now t.sim)
      | Client_msg _ | Server_msg _ | Zab_msg _ -> ())
  | Some leader -> send_wire t ~dst:leader msg
  | None -> () (* no leader known; the client will time out and retry *)

let is_read_op = function
  | P.Get_data _ | P.Get_children _ | P.Exists _ | P.Sync -> true
  | P.Create _ | P.Delete _ | P.Set_data _ | P.Block _ | P.Multi _ -> false

(* [Sync] counts as a read for refusal purposes but is never served from
   local state: it always travels to the leader and back through the
   commit path so it can act as a read-your-writes barrier. *)
let is_local_read_op = function
  | P.Get_data _ | P.Get_children _ | P.Exists _ -> true
  | P.Sync | P.Create _ | P.Delete _ | P.Set_data _ | P.Block _ | P.Multi _ ->
      false

(* Reads that travel to the leader still arm their watch at the origin
   replica: watch events are delivered by the replica owning the session.
   Registering before the read completes is safe — at worst the watch
   fires for a change the read already observed, a spurious
   invalidation. *)
let register_read_watch t ~session op =
  match op with
  | P.Get_data { path; watch = true } | P.Exists { path; watch = true } ->
      Watch_manager.add t.watch Watch_manager.Data path session
  | P.Get_children { path; watch = true } ->
      Watch_manager.add t.watch Watch_manager.Children path session
  | _ -> ()

let handle_request t ~src ~session ~xid op =
  if not (session_exists t session) then
    send_wire t ~dst:src
      (Server_msg (P.Reply { xid; result = P.Error Zerror.Session_expired }))
  else if
    is_read_op op
    && (Zab.is_fenced (zab t)
       || not (Zab.is_observer (zab t) || List.mem t.id (Zab.members (zab t))))
  then
    (* Fenced (removed from the member set) or a still-joining learner:
       local committed state may be arbitrarily stale, so refuse the read
       fast path.  [Not_leader] makes resilient sessions fail over to a
       live member.  Observers are permanent consumers of the commit
       stream and serve sequentially-consistent reads even though they
       are outside the voting member set. *)
    send_wire t ~dst:src
      (Server_msg (P.Reply { xid; result = P.Error Zerror.Not_leader }))
  else if
    is_local_read_op op
    && (not t.config.linearizable_reads)
    && not (t.hook_read_needs_leader t ~session op)
  then
    Cpu.exec t.cpu ~cost:t.config.read_cost (fun () ->
        serve_read t ~session ~xid op)
  else begin
    if t.config.linearizable_reads && is_local_read_op op then
      register_read_watch t ~session op;
    forward_to_leader t (Forward { origin = t.id; session; xid; op })
  end

let handle_client_msg t ~src = function
  | P.Connect -> forward_to_leader t (Forward_connect { origin = t.id; client_addr = src })
  | P.Reconnect { session } ->
      forward_to_leader t (Forward_reconnect { origin = t.id; session })
  | P.Request { session; xid; op } -> handle_request t ~src ~session ~xid op
  | P.Ping { session } ->
      if session_exists t session then forward_to_leader t (Touch { session })
      else send_wire t ~dst:src (Server_msg P.Expired)
  | P.Close_session { session } -> forward_to_leader t (Forward_close { session })

let handle_wire t ~src msg =
  match msg with
  | Client_msg m -> handle_client_msg t ~src m
  | Zab_msg m -> Zab.handle (zab t) ~src m
  | Forward _ | Forward_connect _ | Forward_reconnect _ | Forward_close _
  | Touch _ ->
      if is_leader t then forward_to_leader t msg
      else forward_to_leader t msg (* re-forward toward current leader *)
  | Server_msg _ -> () (* not addressed to servers *)

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let rec expiry_tick t generation () =
  if generation = t.generation then begin
    if is_leader t && t.leader_ready then begin
      let now = Sim.now t.sim in
      let expired =
        Hashtbl.fold
          (fun session last acc ->
            if
              Sim_time.(t.config.session_timeout <= Sim_time.sub now last)
              && session_exists t session
            then session :: acc
            else acc)
          t.last_touch []
        |> List.sort compare
      in
      List.iter (fun session -> preprocess_close t ~session) expired
    end;
    Sim.schedule t.sim ~after:t.config.expiry_check_interval (expiry_tick t generation)
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let reset_2pc_volatile t =
  (* Leader-volatile 2PC state: open coordinator rounds die with their
     leader (participants recover through Status inquiries against the
     replicated decision table); speculative locks and proposal dedup
     marks are rebuilt from the log as it applies. *)
  Hashtbl.reset t.coord_rounds;
  Hashtbl.reset t.spec_locks;
  Hashtbl.reset t.proposed_preps;
  Hashtbl.reset t.proposed_resolves

let on_role_change t role =
  match role with
  | Zab.Leader ->
      t.ready_barrier <- Zab.log_length (zab t);
      Spec_view.reset t.spec;
      t.outstanding <- 0;
      reset_2pc_volatile t;
      t.leader_ready <- Zab.committed_length (zab t) >= t.ready_barrier;
      if t.leader_ready then drain_deferred t;
      (* Sessions: adopt last_touch for all known sessions so they do not
         expire instantly under a fresh leader. *)
      Hashtbl.iter
        (fun session _ -> Hashtbl.replace t.last_touch session (Sim.now t.sim))
        t.sessions
  | Zab.Follower | Zab.Candidate ->
      t.leader_ready <- false;
      t.deferred <- [];
      reset_2pc_volatile t

let check_ready t =
  if
    is_leader t && (not t.leader_ready)
    && Zab.committed_length (zab t) >= t.ready_barrier
  then begin
    t.leader_ready <- true;
    drain_deferred t
  end

let create ?(config = default_config) ?zab_config ?initial_leader
    ?(learner = false) ?(observer = false) ~sim ~net ~id ~replica_ids () =
  let t =
    {
      sim;
      net;
      id;
      replica_ids;
      config;
      tree = Data_tree.create ();
      zab = None;
      watch = Watch_manager.create ();
      sessions = Hashtbl.create 64;
      blocked = Hashtbl.create 64;
      spec = Spec_view.create (Data_tree.create ());
      leader_ready = false;
      ready_barrier = 0;
      deferred = [];
      last_touch = Hashtbl.create 64;
      session_counter = 0;
      outstanding = 0;
      generation = 0;
      cpu = Cpu.create sim;
      hook_intercept = (fun _ ~origin:_ ~session:_ ~xid:_ _ -> Pass);
      hook_read_needs_leader = (fun _ ~session:_ _ -> false);
      hook_on_applied = (fun _ _ -> ());
      hook_suppress_watch = (fun _ ~session:_ ~path:_ _ -> false);
      hook_on_snapshot_installed = (fun _ -> ());
      reads_served = 0;
      lease_reads = 0;
      quorum_reads = 0;
      txns_applied = 0;
      proposals = 0;
      wire_encodes = 0;
      wire_sends = 0;
      snap_image = None;
      txns_since_snapshot = 0;
      snap_captures = 0;
      snap_serializations = 0;
      snap_skipped = 0;
      snap_installs = 0;
      shard_id = 0;
      shard_route = None;
      shard_send = None;
      locks = Hashtbl.create 16;
      prepared = Hashtbl.create 16;
      probing = Hashtbl.create 16;
      decisions = Hashtbl.create 16;
      txn_audit = [];
      coord_rounds = Hashtbl.create 16;
      spec_locks = Hashtbl.create 16;
      proposed_preps = Hashtbl.create 16;
      proposed_resolves = Hashtbl.create 16;
      txn_counter = 0;
      txns_coordinated = 0;
      txns_committed = 0;
      txns_aborted = 0;
    }
  in
  (* The spec view must wrap the server's own tree. *)
  let t = { t with spec = Spec_view.create t.tree } in
  let send ~dst msg = send_wire t ~dst (Zab_msg msg) in
  let send_many ~dsts msg = send_wire_many t ~dsts (Zab_msg msg) in
  let z =
    Zab.create ?config:zab_config ?initial_leader ~learner ~observer ~sim ~id
      ~peers:replica_ids ~send ~send_many
      ~on_deliver:(fun _zxid txn ->
        final_process t txn;
        check_ready t)
      ()
  in
  t.zab <- Some z;
  Zab.set_install_snapshot z (fun blob -> install_snapshot t blob);
  Zab.set_on_role_change z (fun role -> on_role_change t role);
  t.leader_ready <- Zab.is_leader z;
  Transport.register net id (fun ~src ~size:_ msg -> handle_wire t ~src msg);
  t

let start t =
  t.generation <- t.generation + 1;
  Zab.start (zab t);
  Sim.schedule t.sim ~after:t.config.expiry_check_interval
    (expiry_tick t t.generation)

(** [crash t] takes the replica down (network detached by the caller). *)
let crash t =
  t.generation <- t.generation + 1;
  Zab.crash (zab t);
  t.leader_ready <- false;
  t.deferred <- []

let restart t =
  t.generation <- t.generation + 1;
  Zab.restart (zab t);
  Sim.schedule t.sim ~after:t.config.expiry_check_interval
    (expiry_tick t t.generation)

(** [set_sharding] plugs the replica into a sharded deployment: its own
    shard id, the deployment's path router (classifies multi ops), and a
    sender on the inter-shard plane (frames addressed by shard id; the
    deployment delivers them to that shard's current leader). *)
let set_sharding t ~shard_id ~route ~send =
  t.shard_id <- shard_id;
  t.shard_route <- Some route;
  t.shard_send <- Some send

(* Hook installation (used by EZK) *)
let set_hook_intercept t f = t.hook_intercept <- f
let set_hook_read_needs_leader t f = t.hook_read_needs_leader <- f
let set_hook_on_applied t f = t.hook_on_applied <- f
let set_hook_suppress_watch t f = t.hook_suppress_watch <- f
let set_hook_on_snapshot_installed t f = t.hook_on_snapshot_installed <- f
