(** ZooKeeper server replica.

    Mirrors the architecture in the paper's Figure 3: a chain of request
    processors — preprocessor (validation, txn minting, and the EZK
    extension-manager hook), proposer (the Zab substrate), and final
    processor (apply to the tree, fire watches, route the reply from the
    replica the client is connected to).  Reads are served locally from
    committed state (ZooKeeper's read fast path, which §6.2 of the paper
    shows is unaffected by extensions); updates are forwarded to the
    leader.

    Extensibility is provided through {!hooks}: EZK installs an intercept
    at the preprocessor stage, a replica-local predicate that redirects
    extension-matched reads to the leader, a post-apply callback for
    extension-manager bookkeeping and event extensions, and a watch
    suppression predicate.  A plain ZooKeeper deployment leaves the hooks
    at their defaults and pays nothing for them. *)

open Edc_simnet
open Edc_replication
open Edc_wire
module P = Protocol

(* ------------------------------------------------------------------ *)
(* Wire format shared by the whole deployment                          *)
(* ------------------------------------------------------------------ *)

type wire =
  | Client_msg of P.client_to_server
  | Server_msg of P.server_to_client
  | Zab_msg of Txn.t Zab.msg
  | Forward of { origin : int; session : int; xid : int; op : P.op }
  | Forward_connect of { origin : int; client_addr : int }
  | Forward_reconnect of { origin : int; session : int }
  | Forward_close of { session : int }
  | Touch of { session : int }

let wire_size = function
  | Client_msg m -> P.client_msg_size m
  | Server_msg m -> P.server_msg_size m
  | Zab_msg m -> Zab.msg_size ~payload_size:Txn.size m
  | Forward { op; _ } -> 24 + P.op_size op
  | Forward_connect _ -> 24
  | Forward_reconnect _ -> 24
  | Forward_close _ -> 16
  | Touch _ -> 16

(* ------------------------------------------------------------------ *)
(* Hooks (extension points used by EZK)                                *)
(* ------------------------------------------------------------------ *)

type hook_action =
  | Pass  (** process the request normally *)
  | Handled of Txn.op list * P.result
      (** replace normal processing: multi-transaction + piggybacked
          result (the paper's operation extensions) *)
  | Handled_deferred of Txn.op list
      (** like [Handled], but no immediate reply: the multi-transaction
          contains a [Tblock] and the client is answered when the awaited
          object appears *)
  | Reject of Zerror.t

type session_info = { client_addr : int; mutable owner_replica : int }

type config = {
  session_timeout : Sim_time.t;
  expiry_check_interval : Sim_time.t;
  snapshot_interval : int;
      (** take a snapshot and compact the replicated log every N applied
          transactions; [0] disables (ZooKeeper's snapCount) *)
  preprocess_cost : Sim_time.t;  (** CPU cost of validating one update *)
  read_cost : Sim_time.t;  (** CPU cost of serving one local read *)
  linearizable_reads : bool;
      (** route every read through the leader: served locally there under
          a valid lease ({!Zab.can_serve_lease_read}), otherwise ordered
          through the commit path as a quiet no-op barrier (§6i).  The
          default [false] keeps ZooKeeper's sequentially-consistent local
          read fast path. *)
}

let default_config =
  {
    session_timeout = Sim_time.sec 10;
    expiry_check_interval = Sim_time.ms 500;
    snapshot_interval = 1000;
    (* calibrated so a saturated leader sustains ~28k updates/s, matching
       the throughput envelope of the paper's 4-core testbed (§6, §7.1) *)
    preprocess_cost = Sim_time.us 35;
    read_cost = Sim_time.us 10;
    linearizable_reads = false;
  }

type t = {
  sim : Sim.t;
  net : wire Transport.t;
  id : int;
  replica_ids : int list;
  config : config;
  tree : Data_tree.t;
  mutable zab : Txn.t Zab.t option;  (** set right after creation *)
  watch : Watch_manager.t;
  sessions : (int, session_info) Hashtbl.t;  (** replicated via txns *)
  blocked : (string, (int * int * int) list ref) Hashtbl.t;
      (** path -> (session, origin, xid): replicated blocked-call table *)
  spec : Spec_view.t;
  (* leader-volatile state *)
  mutable leader_ready : bool;
  mutable ready_barrier : int;
  mutable deferred : (int * int * int * P.op) list;  (** queued while not ready *)
  last_touch : (int, Sim_time.t) Hashtbl.t;
  mutable session_counter : int;
  mutable outstanding : int;  (** proposed but not yet applied txns *)
  mutable generation : int;
  cpu : Cpu.t;
  (* hooks *)
  mutable hook_intercept : t -> origin:int -> session:int -> xid:int -> P.op -> hook_action;
  mutable hook_read_needs_leader : t -> session:int -> P.op -> bool;
  mutable hook_on_applied : t -> Txn.t -> unit;
  mutable hook_suppress_watch : t -> session:int -> path:string -> P.watch_kind -> bool;
  mutable hook_on_snapshot_installed : t -> unit;
  (* statistics *)
  mutable reads_served : int;
  mutable lease_reads : int;  (** leader reads served under a valid lease *)
  mutable quorum_reads : int;  (** leader reads ordered through the commit path *)
  mutable txns_applied : int;
  mutable proposals : int;
  (* snapshots *)
  mutable snap_image : Data_tree.image option;
      (** COW handle pinning the latest capture; released when superseded *)
  mutable txns_since_snapshot : int;
  mutable snap_captures : int;
  mutable snap_serializations : int;  (** captures actually marshaled *)
  mutable snap_skipped : int;  (** interval fired with nothing to compact *)
  mutable snap_installs : int;
}

let tree t = t.tree
let zab t = match t.zab with Some z -> z | None -> invalid_arg "server not wired"
let is_leader t = Zab.is_leader (zab t)
let id t = t.id
let sim t = t.sim
let spec t = t.spec
let reads_served t = t.reads_served
let lease_reads t = t.lease_reads
let quorum_reads t = t.quorum_reads
let txns_applied t = t.txns_applied
let proposals t = t.proposals
let snapshot_captures t = t.snap_captures
let snapshot_serializations t = t.snap_serializations
let snapshots_skipped t = t.snap_skipped
let snapshot_installs t = t.snap_installs
let session_exists t session = Hashtbl.mem t.sessions session

let session_owned_here t session =
  match Hashtbl.find_opt t.sessions session with
  | Some info -> info.owner_replica = t.id
  | None -> false

let client_addr_of t session =
  Option.map (fun i -> i.client_addr) (Hashtbl.find_opt t.sessions session)

let send_to_client t session msg =
  match client_addr_of t session with
  | Some addr ->
      Transport.send t.net ~src:t.id ~dst:addr
        ~size:(wire_size (Server_msg msg))
        (Server_msg msg)
  | None -> ()

let send_wire t ~dst msg =
  Transport.send t.net ~src:t.id ~dst ~size:(wire_size msg) msg

(* ------------------------------------------------------------------ *)
(* Final processor: apply committed transactions                       *)
(* ------------------------------------------------------------------ *)

let fire_watches t path kind =
  let sessions = Watch_manager.fire t.watch Watch_manager.Data path in
  List.iter
    (fun session ->
      if
        session_owned_here t session
        && not (t.hook_suppress_watch t ~session ~path kind)
      then send_to_client t session (P.Watch_event { path; kind }))
    sessions

let fire_child_watches t path =
  let sessions = Watch_manager.fire t.watch Watch_manager.Children path in
  List.iter
    (fun session ->
      if
        session_owned_here t session
        && not (t.hook_suppress_watch t ~session ~path P.Children_changed)
      then send_to_client t session (P.Watch_event { path; kind = P.Children_changed }))
    sessions

let unblock_waiters t path =
  match Hashtbl.find_opt t.blocked path with
  | None -> ()
  | Some waiters ->
      Hashtbl.remove t.blocked path;
      let data =
        match Data_tree.get_data t.tree path with Ok (d, _) -> d | Error _ -> ""
      in
      List.iter
        (fun (session, origin, xid) ->
          if origin = t.id && session_owned_here t session then
            send_to_client t session
              (P.Reply { xid; result = P.Unblocked data }))
        (List.rev !waiters)

let drop_blocked_session t session =
  let doomed = ref [] in
  Hashtbl.iter
    (fun path waiters ->
      waiters := List.filter (fun (s, _, _) -> s <> session) !waiters;
      if !waiters = [] then doomed := path :: !doomed)
    t.blocked;
  List.iter (Hashtbl.remove t.blocked) !doomed

let apply_op t op =
  match op with
  | Txn.Tcreate { path; data; ephemeral_owner } ->
      Data_tree.apply_create t.tree ~path ~data ~ephemeral_owner;
      fire_watches t path P.Node_created;
      (match Zpath.parent path with
      | Some parent -> fire_child_watches t parent
      | None -> ());
      unblock_waiters t path
  | Txn.Tdelete { path } ->
      Data_tree.apply_delete t.tree ~path;
      fire_watches t path P.Node_deleted;
      (match Zpath.parent path with
      | Some parent -> fire_child_watches t parent
      | None -> ())
  | Txn.Tset { path; data; version } ->
      Data_tree.apply_set t.tree ~path ~data ~version;
      fire_watches t path P.Node_changed
  | Txn.Tsession_open { session; client_addr; owner_replica } ->
      Hashtbl.replace t.sessions session { client_addr; owner_replica };
      if is_leader t then Hashtbl.replace t.last_touch session (Sim.now t.sim);
      if owner_replica = t.id then
        send_to_client t session (P.Connect_ok { session })
  | Txn.Tsession_move { session; owner_replica } -> (
      match Hashtbl.find_opt t.sessions session with
      | Some info ->
          info.owner_replica <- owner_replica;
          if owner_replica = t.id then
            send_to_client t session (P.Connect_ok { session })
      | None -> ())
  | Txn.Tsession_close { session } ->
      Hashtbl.remove t.sessions session;
      Hashtbl.remove t.last_touch session;
      Watch_manager.drop_session t.watch session;
      drop_blocked_session t session
  | Txn.Tblock { session; origin; xid; path } -> (
      (* If the node exists by now it can only be because the same txn
         created it earlier in the multi-txn; unblock immediately. *)
      match Data_tree.get_data t.tree path with
      | Ok (data, _) ->
          if origin = t.id && session_owned_here t session then
            send_to_client t session (P.Reply { xid; result = P.Unblocked data })
      | Error _ ->
          let waiters =
            match Hashtbl.find_opt t.blocked path with
            | Some w -> w
            | None ->
                let w = ref [] in
                Hashtbl.replace t.blocked path w;
                w
          in
          waiters := (session, origin, xid) :: !waiters)
  | Txn.Tnotify { session; path; kind } ->
      if session_owned_here t session then
        send_to_client t session (P.Watch_event { path; kind })
  | Txn.Terror -> ()

(* --- snapshots (§3.8 state transfer) --- *)

type snapshot = {
  snap_tree : Data_tree.portable;
  snap_sessions : (int * session_info) list;
  snap_blocked : (string * (int * int * int) list) list;
}

(* Snapshot blobs cross the wire and are re-read by other replicas (and,
   eventually, other OCaml versions): they go through the deterministic
   binary codec, never [Marshal].  Inputs are pre-sorted by
   {!capture_snapshot}, so equal states yield byte-identical frames. *)
let snapshot_to_wire s =
  let open Wire in
  List
    [ Wire_format.portable_to_wire s.snap_tree;
      List
        (List.map
           (fun (session, (info : session_info)) ->
             List [ Int session; Int info.client_addr; Int info.owner_replica ])
           s.snap_sessions);
      List
        (List.map
           (fun (path, waiters) ->
             List
               [ Str path;
                 List
                   (List.map
                      (fun (s, o, x) -> List [ Int s; Int o; Int x ])
                      waiters) ])
           s.snap_blocked) ]

let snapshot_of_wire w =
  let open Wire in
  let ( let* ) = Result.bind in
  match w with
  | List [ tree; sessions; blocked ] ->
      let* snap_tree = Wire_format.portable_of_wire tree in
      let* snap_sessions =
        map_list
          (function
            | List [ Int session; Int client_addr; Int owner_replica ] ->
                Ok (session, { client_addr; owner_replica })
            | _ -> Error "bad session entry")
          sessions
      in
      let* snap_blocked =
        map_list
          (function
            | List [ Str path; waiters ] ->
                let* waiters =
                  map_list
                    (function
                      | List [ Int s; Int o; Int x ] -> Ok (s, o, x)
                      | _ -> Error "bad blocked waiter")
                    waiters
                in
                Ok (path, waiters)
            | _ -> Error "bad blocked entry")
          blocked
      in
      Ok { snap_tree; snap_sessions; snap_blocked }
  | _ -> Error "bad snapshot"

(** Capture the replica's whole replicated state (tree, sessions, parked
    blocking calls).  Must correspond exactly to the delivered prefix —
    guaranteed because the simulator applies transactions synchronously.

    The capture itself is O(sessions + blocked), NOT O(tree): the tree is
    pinned by a copy-on-write handle ({!Data_tree.export}), and the
    returned closure does the materialize + encode work only if a state
    transfer ever needs the bytes.  Sessions and blocked entries are
    snapshotted eagerly (they are small, and [session_info] is mutable so
    sharing it with the live table would let later moves corrupt the
    image), sorted so the serialized blob is byte-identical across
    replicas in the same state. *)
let capture_snapshot t =
  (match t.snap_image with Some h -> Data_tree.release h | None -> ());
  let image = Data_tree.export t.tree in
  t.snap_image <- Some image;
  t.snap_captures <- t.snap_captures + 1;
  let snap_sessions =
    Hashtbl.fold
      (fun k (v : session_info) acc ->
        (k, { v with owner_replica = v.owner_replica }) :: acc)
      t.sessions []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let snap_blocked =
    Hashtbl.fold (fun k v acc -> (k, List.sort compare !v) :: acc) t.blocked []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  fun () ->
    t.snap_serializations <- t.snap_serializations + 1;
    Wire.encode
      (snapshot_to_wire
         { snap_tree = Data_tree.materialize image; snap_sessions; snap_blocked })

let snapshot_bytes t = (capture_snapshot t) ()

(** The blob is untrusted bytes off the wire: decode fully (a pure step)
    before touching any state, so a corrupt or truncated blob leaves the
    replica exactly as it was and the transfer layer can re-request. *)
let install_snapshot t blob =
  match Result.bind (Wire.decode blob) snapshot_of_wire with
  | Error _ as e -> e
  | Ok snap ->
      Data_tree.import_portable t.tree snap.snap_tree;
      Hashtbl.reset t.sessions;
      List.iter (fun (k, v) -> Hashtbl.replace t.sessions k v) snap.snap_sessions;
      Hashtbl.reset t.blocked;
      List.iter
        (fun (k, v) -> Hashtbl.replace t.blocked k (ref v))
        snap.snap_blocked;
      t.snap_installs <- t.snap_installs + 1;
      (* the installed blob puts us exactly at a snapshot horizon: restart
         the interval so we do not immediately re-capture state we just
         received *)
      t.txns_since_snapshot <- 0;
      t.hook_on_snapshot_installed t;
      Ok ()

let maybe_compact t =
  if t.config.snapshot_interval > 0 then begin
    t.txns_since_snapshot <- t.txns_since_snapshot + 1;
    if t.txns_since_snapshot >= t.config.snapshot_interval then
      let z = zab t in
      if Zab.delivered_length z > Zab.compaction_base z then begin
        t.txns_since_snapshot <- 0;
        Zab.compact z ~take:(fun () -> capture_snapshot t)
      end
      else
        (* the log prefix is already compacted to this horizon (e.g. we
           just installed a snapshot): no state to capture *)
        t.snap_skipped <- t.snap_skipped + 1
  end

let final_process t (txn : Txn.t) =
  List.iter (apply_op t) txn.ops;
  t.txns_applied <- t.txns_applied + 1;
  maybe_compact t;
  if is_leader t then begin
    List.iter (Spec_view.on_applied_op t.spec) txn.ops;
    if t.outstanding > 0 then t.outstanding <- t.outstanding - 1;
    (* Quiescent leader: speculation equals committed state, so the pending
       table can be dropped (bounds its growth). *)
    if t.outstanding = 0 then Spec_view.reset t.spec
  end;
  (* Reply from the replica the client is connected to, with the
     piggybacked result (paper §5.1.2). *)
  (match txn.origin with
  | Some origin when origin = t.id && txn.session <> 0 ->
      send_to_client t txn.session (P.Reply { xid = txn.xid; result = txn.result })
  | _ -> ());
  t.hook_on_applied t txn

(* ------------------------------------------------------------------ *)
(* Proposer stage                                                      *)
(* ------------------------------------------------------------------ *)

let reply_direct t ~session ~xid result =
  (* Used for errors detected before ordering and for leader-served reads:
     the reply goes straight to the client. *)
  match client_addr_of t session with
  | Some addr ->
      let msg = Server_msg (P.Reply { xid; result }) in
      Transport.send t.net ~src:t.id ~dst:addr ~size:(wire_size msg) msg
  | None -> ()

let propose t (txn : Txn.t) =
  t.proposals <- t.proposals + 1;
  t.outstanding <- t.outstanding + 1;
  match Zab.propose (zab t) txn with
  | Some _ -> ()
  | None ->
      t.outstanding <- t.outstanding - 1;
      if txn.session <> 0 then
        reply_direct t ~session:txn.session ~xid:txn.xid
          (P.Error Zerror.Not_leader)

(* ------------------------------------------------------------------ *)
(* Preprocessor stage (leader only)                                    *)
(* ------------------------------------------------------------------ *)

(** Leader-side read reply (§6i).  Under a valid lease the committed tree
    is served directly: a voting majority has promised not to elect
    another leader before our lease expires, so no later write can have
    committed elsewhere.  Without the lease the read result rides a quiet
    no-op through the commit path — the reply only reaches the client if
    the barrier commits, which proves this replica was still the leader
    at the read's serialization point. *)
let reply_read t ~origin ~session ~xid result =
  if not t.config.linearizable_reads then reply_direct t ~session ~xid result
  else if Zab.can_serve_lease_read (zab t) then begin
    t.lease_reads <- t.lease_reads + 1;
    reply_direct t ~session ~xid result
  end
  else begin
    t.quorum_reads <- t.quorum_reads + 1;
    propose t
      { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result; quiet = true }
  end

let preprocess_normal t ~origin ~session ~xid op =
  match op with
  | P.Create { path; data; ephemeral; sequential } -> (
      let ephemeral_owner = if ephemeral then Some session else None in
      match Spec_view.create_node t.spec ~path ~data ~ephemeral_owner ~sequential with
      | Ok (actual, top) ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Created actual; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Delete { path; version } -> (
      match Spec_view.delete_node t.spec ~path ~version with
      | Ok top ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Deleted; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Set_data { path; data; expected_version } -> (
      match Spec_view.set_node t.spec ~path ~data ~expected_version with
      | Ok (top, version) ->
          propose t
            { origin = Some origin; session; xid; ops = [ top ]; result = P.Set { version }; quiet = false }
      | Error e ->
          propose t
            { origin = Some origin; session; xid; ops = [ Txn.Terror ]; result = P.Error e; quiet = false })
  | P.Get_data { path; _ } ->
      (* Leader-served read: either an extension-matched read whose
         extension vanished, or any read under [linearizable_reads]. *)
      let result =
        match Data_tree.get_data t.tree path with
        | Ok (d, s) -> P.Data (d, s)
        | Error e -> P.Error e
      in
      reply_read t ~origin ~session ~xid result
  | P.Get_children { path; _ } ->
      let result =
        match Data_tree.get_children t.tree path with
        | Ok c -> P.Children c
        | Error e -> P.Error e
      in
      reply_read t ~origin ~session ~xid result
  | P.Exists { path; _ } ->
      reply_read t ~origin ~session ~xid (P.Stat_of (Data_tree.exists t.tree path))
  | P.Block _ ->
      (* Blocking calls only exist through operation extensions. *)
      reply_direct t ~session ~xid (P.Error Zerror.Unsupported)
  | P.Sync ->
      (* Commit-path barrier: [Synced] is delivered from the origin
         replica only after that replica has applied every transaction
         ordered before the barrier — read-your-writes for the issuing
         client even when its reads are served by an observer or a
         session cache. *)
      propose t
        { origin = Some origin; session; xid; ops = [ Txn.Terror ];
          result = P.Synced; quiet = true }

let preprocess t ~origin ~session ~xid op =
  if not (session_exists t session) then
    reply_direct t ~session ~xid (P.Error Zerror.Session_expired)
  else begin
    Hashtbl.replace t.last_touch session (Sim.now t.sim);
    match t.hook_intercept t ~origin ~session ~xid op with
    | Handled (ops, result) ->
        propose t { origin = Some origin; session; xid; ops; result; quiet = false }
    | Handled_deferred ops ->
        propose t { origin = None; session; xid; ops; result = P.Synced; quiet = false }
    | Reject e -> reply_direct t ~session ~xid (P.Error e)
    | Pass -> preprocess_normal t ~origin ~session ~xid op
  end

let enqueue_preprocess t ~origin ~session ~xid op =
  if t.leader_ready then
    (* The preprocessor is a serial stage: its CPU cost is what saturates
       the leader under load. *)
    Cpu.exec t.cpu ~cost:t.config.preprocess_cost (fun () ->
        if is_leader t then preprocess t ~origin ~session ~xid op)
  else t.deferred <- (origin, session, xid, op) :: t.deferred

let drain_deferred t =
  let ds = List.rev t.deferred in
  t.deferred <- [];
  List.iter (fun (origin, session, xid, op) -> enqueue_preprocess t ~origin ~session ~xid op) ds

(** [propose_internal t ?quiet ops] — leader-side entry point for
    service-internal multi-transactions (bootstrap objects, event-extension
    follow-ups). *)
let propose_internal t ?(quiet = false) ops =
  if is_leader t then propose t (Txn.internal ~quiet ops)

(* --- session lifecycle at the leader --- *)

let preprocess_connect t ~origin ~client_addr =
  t.session_counter <- t.session_counter + 1;
  let session = (Zab.epoch (zab t) * 1_000_000) + t.session_counter in
  propose t
    {
      origin = None;
      session = 0;
      xid = 0;
      ops = [ Txn.Tsession_open { session; client_addr; owner_replica = origin } ];
      result = P.Synced;
      quiet = false;
    }

let preprocess_reconnect t ~origin ~session =
  if session_exists t session then begin
    Hashtbl.replace t.last_touch session (Sim.now t.sim);
    propose t
      (Txn.internal [ Txn.Tsession_move { session; owner_replica = origin } ])
  end

let preprocess_close t ~session =
  if session_exists t session then begin
    let deletes =
      Spec_view.ephemerals_of_session t.spec session
      |> List.filter_map (fun path ->
             match Spec_view.delete_node t.spec ~path ~version:None with
             | Ok top -> Some top
             | Error _ -> None)
    in
    propose t (Txn.internal (deletes @ [ Txn.Tsession_close { session } ]))
  end

(* ------------------------------------------------------------------ *)
(* Local read path                                                     *)
(* ------------------------------------------------------------------ *)

let serve_read t ~session ~xid op =
  t.reads_served <- t.reads_served + 1;
  let reply result = send_to_client t session (P.Reply { xid; result }) in
  match op with
  | P.Get_data { path; watch } ->
      (match Data_tree.get_data t.tree path with
      | Ok (d, s) ->
          if watch then Watch_manager.add t.watch Watch_manager.Data path session;
          reply (P.Data (d, s))
      | Error e ->
          (* A data watch on a missing node is an exists-style watch. *)
          if watch then Watch_manager.add t.watch Watch_manager.Data path session;
          reply (P.Error e))
  | P.Get_children { path; watch } ->
      (match Data_tree.get_children t.tree path with
      | Ok c ->
          if watch then Watch_manager.add t.watch Watch_manager.Children path session;
          reply (P.Children c)
      | Error e -> reply (P.Error e))
  | P.Exists { path; watch } ->
      if watch then Watch_manager.add t.watch Watch_manager.Data path session;
      reply (P.Stat_of (Data_tree.exists t.tree path))
  | P.Sync -> reply P.Synced
  | P.Block _ | P.Create _ | P.Delete _ | P.Set_data _ ->
      reply (P.Error Zerror.Unsupported)

(* ------------------------------------------------------------------ *)
(* Request routing                                                     *)
(* ------------------------------------------------------------------ *)

let forward_to_leader t msg =
  match Zab.leader_hint (zab t) with
  | Some leader when leader = t.id -> (
      (* We are the leader: loop the message back to ourselves. *)
      match msg with
      | Forward { origin; session; xid; op } ->
          enqueue_preprocess t ~origin ~session ~xid op
      | Forward_connect { origin; client_addr } ->
          preprocess_connect t ~origin ~client_addr
      | Forward_reconnect { origin; session } ->
          preprocess_reconnect t ~origin ~session
      | Forward_close { session } -> preprocess_close t ~session
      | Touch { session } ->
          if session_exists t session then
            Hashtbl.replace t.last_touch session (Sim.now t.sim)
      | Client_msg _ | Server_msg _ | Zab_msg _ -> ())
  | Some leader -> send_wire t ~dst:leader msg
  | None -> () (* no leader known; the client will time out and retry *)

let is_read_op = function
  | P.Get_data _ | P.Get_children _ | P.Exists _ | P.Sync -> true
  | P.Create _ | P.Delete _ | P.Set_data _ | P.Block _ -> false

(* [Sync] counts as a read for refusal purposes but is never served from
   local state: it always travels to the leader and back through the
   commit path so it can act as a read-your-writes barrier. *)
let is_local_read_op = function
  | P.Get_data _ | P.Get_children _ | P.Exists _ -> true
  | P.Sync | P.Create _ | P.Delete _ | P.Set_data _ | P.Block _ -> false

(* Reads that travel to the leader still arm their watch at the origin
   replica: watch events are delivered by the replica owning the session.
   Registering before the read completes is safe — at worst the watch
   fires for a change the read already observed, a spurious
   invalidation. *)
let register_read_watch t ~session op =
  match op with
  | P.Get_data { path; watch = true } | P.Exists { path; watch = true } ->
      Watch_manager.add t.watch Watch_manager.Data path session
  | P.Get_children { path; watch = true } ->
      Watch_manager.add t.watch Watch_manager.Children path session
  | _ -> ()

let handle_request t ~src ~session ~xid op =
  if not (session_exists t session) then
    let msg = Server_msg (P.Reply { xid; result = P.Error Zerror.Session_expired }) in
    Transport.send t.net ~src:t.id ~dst:src ~size:(wire_size msg) msg
  else if
    is_read_op op
    && (Zab.is_fenced (zab t)
       || not (Zab.is_observer (zab t) || List.mem t.id (Zab.members (zab t))))
  then
    (* Fenced (removed from the member set) or a still-joining learner:
       local committed state may be arbitrarily stale, so refuse the read
       fast path.  [Not_leader] makes resilient sessions fail over to a
       live member.  Observers are permanent consumers of the commit
       stream and serve sequentially-consistent reads even though they
       are outside the voting member set. *)
    let msg = Server_msg (P.Reply { xid; result = P.Error Zerror.Not_leader }) in
    Transport.send t.net ~src:t.id ~dst:src ~size:(wire_size msg) msg
  else if
    is_local_read_op op
    && (not t.config.linearizable_reads)
    && not (t.hook_read_needs_leader t ~session op)
  then
    Cpu.exec t.cpu ~cost:t.config.read_cost (fun () ->
        serve_read t ~session ~xid op)
  else begin
    if t.config.linearizable_reads && is_local_read_op op then
      register_read_watch t ~session op;
    forward_to_leader t (Forward { origin = t.id; session; xid; op })
  end

let handle_client_msg t ~src = function
  | P.Connect -> forward_to_leader t (Forward_connect { origin = t.id; client_addr = src })
  | P.Reconnect { session } ->
      forward_to_leader t (Forward_reconnect { origin = t.id; session })
  | P.Request { session; xid; op } -> handle_request t ~src ~session ~xid op
  | P.Ping { session } ->
      if session_exists t session then forward_to_leader t (Touch { session })
      else
        Transport.send t.net ~src:t.id ~dst:src
          ~size:(wire_size (Server_msg P.Expired))
          (Server_msg P.Expired)
  | P.Close_session { session } -> forward_to_leader t (Forward_close { session })

let handle_wire t ~src msg =
  match msg with
  | Client_msg m -> handle_client_msg t ~src m
  | Zab_msg m -> Zab.handle (zab t) ~src m
  | Forward _ | Forward_connect _ | Forward_reconnect _ | Forward_close _
  | Touch _ ->
      if is_leader t then forward_to_leader t msg
      else forward_to_leader t msg (* re-forward toward current leader *)
  | Server_msg _ -> () (* not addressed to servers *)

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let rec expiry_tick t generation () =
  if generation = t.generation then begin
    if is_leader t && t.leader_ready then begin
      let now = Sim.now t.sim in
      let expired =
        Hashtbl.fold
          (fun session last acc ->
            if
              Sim_time.(t.config.session_timeout <= Sim_time.sub now last)
              && session_exists t session
            then session :: acc
            else acc)
          t.last_touch []
        |> List.sort compare
      in
      List.iter (fun session -> preprocess_close t ~session) expired
    end;
    Sim.schedule t.sim ~after:t.config.expiry_check_interval (expiry_tick t generation)
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let on_role_change t role =
  match role with
  | Zab.Leader ->
      t.ready_barrier <- Zab.log_length (zab t);
      Spec_view.reset t.spec;
      t.outstanding <- 0;
      t.leader_ready <- Zab.committed_length (zab t) >= t.ready_barrier;
      if t.leader_ready then drain_deferred t;
      (* Sessions: adopt last_touch for all known sessions so they do not
         expire instantly under a fresh leader. *)
      Hashtbl.iter
        (fun session _ -> Hashtbl.replace t.last_touch session (Sim.now t.sim))
        t.sessions
  | Zab.Follower | Zab.Candidate ->
      t.leader_ready <- false;
      t.deferred <- []

let check_ready t =
  if
    is_leader t && (not t.leader_ready)
    && Zab.committed_length (zab t) >= t.ready_barrier
  then begin
    t.leader_ready <- true;
    drain_deferred t
  end

let create ?(config = default_config) ?zab_config ?initial_leader
    ?(learner = false) ?(observer = false) ~sim ~net ~id ~replica_ids () =
  let t =
    {
      sim;
      net;
      id;
      replica_ids;
      config;
      tree = Data_tree.create ();
      zab = None;
      watch = Watch_manager.create ();
      sessions = Hashtbl.create 64;
      blocked = Hashtbl.create 64;
      spec = Spec_view.create (Data_tree.create ());
      leader_ready = false;
      ready_barrier = 0;
      deferred = [];
      last_touch = Hashtbl.create 64;
      session_counter = 0;
      outstanding = 0;
      generation = 0;
      cpu = Cpu.create sim;
      hook_intercept = (fun _ ~origin:_ ~session:_ ~xid:_ _ -> Pass);
      hook_read_needs_leader = (fun _ ~session:_ _ -> false);
      hook_on_applied = (fun _ _ -> ());
      hook_suppress_watch = (fun _ ~session:_ ~path:_ _ -> false);
      hook_on_snapshot_installed = (fun _ -> ());
      reads_served = 0;
      lease_reads = 0;
      quorum_reads = 0;
      txns_applied = 0;
      proposals = 0;
      snap_image = None;
      txns_since_snapshot = 0;
      snap_captures = 0;
      snap_serializations = 0;
      snap_skipped = 0;
      snap_installs = 0;
    }
  in
  (* The spec view must wrap the server's own tree. *)
  let t = { t with spec = Spec_view.create t.tree } in
  let send ~dst msg = send_wire t ~dst (Zab_msg msg) in
  let z =
    Zab.create ?config:zab_config ?initial_leader ~learner ~observer ~sim ~id
      ~peers:replica_ids ~send
      ~on_deliver:(fun _zxid txn ->
        final_process t txn;
        check_ready t)
      ()
  in
  t.zab <- Some z;
  Zab.set_install_snapshot z (fun blob -> install_snapshot t blob);
  Zab.set_on_role_change z (fun role -> on_role_change t role);
  t.leader_ready <- Zab.is_leader z;
  Transport.register net id (fun ~src ~size:_ msg -> handle_wire t ~src msg);
  t

let start t =
  t.generation <- t.generation + 1;
  Zab.start (zab t);
  Sim.schedule t.sim ~after:t.config.expiry_check_interval
    (expiry_tick t t.generation)

(** [crash t] takes the replica down (network detached by the caller). *)
let crash t =
  t.generation <- t.generation + 1;
  Zab.crash (zab t);
  t.leader_ready <- false;
  t.deferred <- []

let restart t =
  t.generation <- t.generation + 1;
  Zab.restart (zab t);
  Sim.schedule t.sim ~after:t.config.expiry_check_interval
    (expiry_tick t t.generation)

(* Hook installation (used by EZK) *)
let set_hook_intercept t f = t.hook_intercept <- f
let set_hook_read_needs_leader t f = t.hook_read_needs_leader <- f
let set_hook_on_applied t f = t.hook_on_applied <- f
let set_hook_suppress_watch t f = t.hook_suppress_watch <- f
let set_hook_on_snapshot_installed t f = t.hook_on_snapshot_installed <- f
