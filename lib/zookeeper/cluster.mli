(** Deployment assembly: a simulated ZooKeeper ensemble plus clients —
    [2f + 1] replicas (three for the paper's [f = 1]), clients spread
    round-robin across replicas as in §6. *)

open Edc_simnet

type t

val create :
  ?n_replicas:int ->
  ?net_config:Net.config ->
  ?server_config:Server.config ->
  ?zab_config:Edc_replication.Zab.config ->
  ?batch:Edc_replication.Batching.config ->
  Sim.t ->
  t

val sim : t -> Sim.t
val net : t -> Server.wire Net.t
val servers : t -> Server.t array
val n_replicas : t -> int
val leader : t -> Server.t option

(** [client t ()] allocates a client endpoint (round-robin replica unless
    [replica] pins one); connect it with {!Client.connect} from a fiber. *)
val client : ?config:Client.config -> ?replica:int -> t -> unit -> Client.t

(** Allocate and connect in one step (call from a fiber). *)
val connected_client :
  ?config:Client.config -> ?replica:int -> t -> unit -> Client.t

(** {2 Elastic membership}

    Reconfiguration rides the replicated log (joint consensus): growth
    admits a caught-up learner, shrinkage fences the removed replica. *)

(** Boot a fresh replica as a non-voting learner and hand it to the leader
    for bootstrap + admission; returns its id. *)
val add_server : t -> int

(** Boot a permanent non-voting observer replica: bootstrapped like a
    learner, it consumes the commit stream and serves sequentially-
    consistent local reads but never joins the member set, votes, or
    counts toward any quorum.  Returns its id. *)
val add_observer : t -> int

(** Ask the current leader to remove replica [id] through the log.
    [Error] if no leader is known or the leader refuses (reconfig already
    in flight, unknown id, or last member). *)
val remove_server : t -> id:int -> (unit, string) result

(** Failure injection (process + network). *)

val crash_server : t -> int -> unit
val restart_server : t -> int -> unit

(** Advance the simulation by a duration. *)
val run_for : t -> Sim_time.t -> unit
