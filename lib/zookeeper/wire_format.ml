(** Binary codecs for the ZooKeeper layer's durable and wire-crossing
    types (DESIGN.md §6g): errors, stats, znodes, portable tree images,
    transactions, and the client protocol.

    Every [.._of_wire] treats its input as untrusted and returns a clean
    [Error] on any malformed shape; every [.._to_wire] is deterministic
    (children sets render as sorted lists, COW stamps are zeroed), so
    equal states encode to byte-identical frames on every replica and
    OCaml version. *)

open Edc_wire

let ( let* ) = Result.bind

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

(* ------------------------------------------------------------------ *)
(* Errors and watch kinds                                              *)
(* ------------------------------------------------------------------ *)

let zerror_to_wire (e : Zerror.t) =
  let open Wire in
  match e with
  | Zerror.No_node -> Int 0
  | Zerror.Node_exists -> Int 1
  | Zerror.Bad_version -> Int 2
  | Zerror.Not_empty -> Int 3
  | Zerror.No_children_for_ephemerals -> Int 4
  | Zerror.Invalid_path -> Int 5
  | Zerror.Session_expired -> Int 6
  | Zerror.Not_leader -> Int 7
  | Zerror.Unsupported -> Int 8
  | Zerror.Timeout -> Int 9
  | Zerror.Maybe_applied -> Int 10
  | Zerror.Extension_error msg -> List [ Int 11; Str msg ]
  | Zerror.Locked -> Int 12
  | Zerror.Txn_conflict -> Int 13

let zerror_of_wire w =
  let open Wire in
  match w with
  | Int 0 -> Ok Zerror.No_node
  | Int 1 -> Ok Zerror.Node_exists
  | Int 2 -> Ok Zerror.Bad_version
  | Int 3 -> Ok Zerror.Not_empty
  | Int 4 -> Ok Zerror.No_children_for_ephemerals
  | Int 5 -> Ok Zerror.Invalid_path
  | Int 6 -> Ok Zerror.Session_expired
  | Int 7 -> Ok Zerror.Not_leader
  | Int 8 -> Ok Zerror.Unsupported
  | Int 9 -> Ok Zerror.Timeout
  | Int 10 -> Ok Zerror.Maybe_applied
  | List [ Int 11; Str msg ] -> Ok (Zerror.Extension_error msg)
  | Int 12 -> Ok Zerror.Locked
  | Int 13 -> Ok Zerror.Txn_conflict
  | _ -> Error "bad error code"

let watch_kind_to_wire (k : Protocol.watch_kind) =
  Wire.Int
    (match k with
    | Protocol.Node_created -> 0
    | Protocol.Node_deleted -> 1
    | Protocol.Node_changed -> 2
    | Protocol.Children_changed -> 3)

let watch_kind_of_wire = function
  | Wire.Int 0 -> Ok Protocol.Node_created
  | Wire.Int 1 -> Ok Protocol.Node_deleted
  | Wire.Int 2 -> Ok Protocol.Node_changed
  | Wire.Int 3 -> Ok Protocol.Children_changed
  | _ -> Error "bad watch kind"

(* ------------------------------------------------------------------ *)
(* Node metadata and znodes                                            *)
(* ------------------------------------------------------------------ *)

let stat_to_wire (s : Znode.stat) =
  let open Wire in
  List
    [ Int s.version; Int s.czxid;
      option (fun o -> Int o) s.ephemeral_owner;
      Int s.num_children; Int s.data_length ]

let stat_of_wire w =
  let open Wire in
  match w with
  | List [ Int version; Int czxid; eph; Int num_children; Int data_length ] ->
      let* ephemeral_owner = to_option to_int eph in
      Ok { Znode.version; czxid; ephemeral_owner; num_children; data_length }
  | _ -> Error "bad stat"

(* COW stamps are replica-local: they are not encoded, and decoding yields
   stamp 0 — exactly what {!Data_tree.materialize} puts in portable
   images, so round-tripping an image is the identity. *)
let znode_to_wire (n : Znode.t) =
  let open Wire in
  List
    [ Str n.data; Int n.version;
      List (List.map (fun c -> Str c) (Znode.String_set.elements n.children));
      Int n.cversion; Int n.czxid;
      option (fun o -> Int o) n.ephemeral_owner ]

let znode_of_wire w =
  let open Wire in
  match w with
  | List [ Str data; Int version; children; Int cversion; Int czxid; eph ] ->
      let* children = map_list to_str children in
      let* ephemeral_owner = to_option to_int eph in
      let n = Znode.create ~data ~czxid ~ephemeral_owner in
      n.version <- version;
      n.children <- Znode.String_set.of_list children;
      n.cversion <- cversion;
      Ok n
  | _ -> Error "bad znode"

let portable_to_wire (img : Data_tree.portable) =
  let open Wire in
  List
    [ List
        (List.map
           (fun (path, node) -> List [ Str path; znode_to_wire node ])
           img.img_nodes);
      Int img.img_next_czxid ]

let portable_of_wire w =
  let open Wire in
  match w with
  | List [ nodes; Int img_next_czxid ] ->
      let* img_nodes =
        map_list
          (function
            | List [ Str path; node ] ->
                let* node = znode_of_wire node in
                Ok (path, node)
            | _ -> Error "bad image node")
          nodes
      in
      Ok { Data_tree.img_nodes; img_next_czxid }
  | _ -> Error "bad tree image"

(* ------------------------------------------------------------------ *)
(* Client protocol                                                     *)
(* ------------------------------------------------------------------ *)

let op_to_wire (op : Protocol.op) =
  let open Wire in
  match op with
  | Protocol.Create { path; data; ephemeral; sequential } ->
      List [ Int 0; Str path; Str data; bool_ ephemeral; bool_ sequential ]
  | Protocol.Delete { path; version } ->
      List [ Int 1; Str path; option (fun v -> Int v) version ]
  | Protocol.Set_data { path; data; expected_version } ->
      List [ Int 2; Str path; Str data; option (fun v -> Int v) expected_version ]
  | Protocol.Get_data { path; watch } -> List [ Int 3; Str path; bool_ watch ]
  | Protocol.Get_children { path; watch } ->
      List [ Int 4; Str path; bool_ watch ]
  | Protocol.Exists { path; watch } -> List [ Int 5; Str path; bool_ watch ]
  | Protocol.Block { path } -> List [ Int 6; Str path ]
  | Protocol.Sync -> List [ Int 7 ]
  | Protocol.Multi { ops } ->
      List [ Int 8; List (List.map Edc_replication.Two_pc.wop_to_wire ops) ]

let op_of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; Str path; Str data; e; s ] ->
      let* ephemeral = to_bool e in
      let* sequential = to_bool s in
      Ok (Protocol.Create { path; data; ephemeral; sequential })
  | List [ Int 1; Str path; v ] ->
      let* version = to_option to_int v in
      Ok (Protocol.Delete { path; version })
  | List [ Int 2; Str path; Str data; v ] ->
      let* expected_version = to_option to_int v in
      Ok (Protocol.Set_data { path; data; expected_version })
  | List [ Int 3; Str path; w ] ->
      let* watch = to_bool w in
      Ok (Protocol.Get_data { path; watch })
  | List [ Int 4; Str path; w ] ->
      let* watch = to_bool w in
      Ok (Protocol.Get_children { path; watch })
  | List [ Int 5; Str path; w ] ->
      let* watch = to_bool w in
      Ok (Protocol.Exists { path; watch })
  | List [ Int 6; Str path ] -> Ok (Protocol.Block { path })
  | List [ Int 7 ] -> Ok Protocol.Sync
  | List [ Int 8; ops ] ->
      let* ops = map_list Edc_replication.Two_pc.wop_of_wire ops in
      Ok (Protocol.Multi { ops })
  | _ -> Error "bad operation"

let result_to_wire (r : Protocol.result) =
  let open Wire in
  match r with
  | Protocol.Created path -> List [ Int 0; Str path ]
  | Protocol.Deleted -> List [ Int 1 ]
  | Protocol.Set { version } -> List [ Int 2; Int version ]
  | Protocol.Data (d, s) -> List [ Int 3; Str d; stat_to_wire s ]
  | Protocol.Children names -> List [ Int 4; List (List.map (fun n -> Str n) names) ]
  | Protocol.Stat_of s -> List [ Int 5; option stat_to_wire s ]
  | Protocol.Unblocked d -> List [ Int 6; Str d ]
  | Protocol.Ext s -> List [ Int 7; Str s ]
  | Protocol.Synced -> List [ Int 8 ]
  | Protocol.Error e -> List [ Int 9; zerror_to_wire e ]
  | Protocol.Multi_ok -> List [ Int 10 ]

let result_of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; Str path ] -> Ok (Protocol.Created path)
  | List [ Int 1 ] -> Ok Protocol.Deleted
  | List [ Int 2; Int version ] -> Ok (Protocol.Set { version })
  | List [ Int 3; Str d; s ] ->
      let* s = stat_of_wire s in
      Ok (Protocol.Data (d, s))
  | List [ Int 4; names ] ->
      let* names = map_list to_str names in
      Ok (Protocol.Children names)
  | List [ Int 5; s ] ->
      let* s = to_option stat_of_wire s in
      Ok (Protocol.Stat_of s)
  | List [ Int 6; Str d ] -> Ok (Protocol.Unblocked d)
  | List [ Int 7; Str s ] -> Ok (Protocol.Ext s)
  | List [ Int 8 ] -> Ok Protocol.Synced
  | List [ Int 9; e ] ->
      let* e = zerror_of_wire e in
      Ok (Protocol.Error e)
  | List [ Int 10 ] -> Ok Protocol.Multi_ok
  | _ -> Error "bad result"

let client_msg_to_wire (m : Protocol.client_to_server) =
  let open Wire in
  match m with
  | Protocol.Connect -> List [ Int 0 ]
  | Protocol.Reconnect { session } -> List [ Int 1; Int session ]
  | Protocol.Request { session; xid; op } ->
      List [ Int 2; Int session; Int xid; op_to_wire op ]
  | Protocol.Ping { session } -> List [ Int 3; Int session ]
  | Protocol.Close_session { session } -> List [ Int 4; Int session ]

let client_msg_of_wire w =
  let open Wire in
  match w with
  | List [ Int 0 ] -> Ok Protocol.Connect
  | List [ Int 1; Int session ] -> Ok (Protocol.Reconnect { session })
  | List [ Int 2; Int session; Int xid; op ] ->
      let* op = op_of_wire op in
      Ok (Protocol.Request { session; xid; op })
  | List [ Int 3; Int session ] -> Ok (Protocol.Ping { session })
  | List [ Int 4; Int session ] -> Ok (Protocol.Close_session { session })
  | _ -> Error "bad client message"

let server_msg_to_wire (m : Protocol.server_to_client) =
  let open Wire in
  match m with
  | Protocol.Connect_ok { session } -> List [ Int 0; Int session ]
  | Protocol.Reply { xid; result } ->
      List [ Int 1; Int xid; result_to_wire result ]
  | Protocol.Watch_event { path; kind } ->
      List [ Int 2; Str path; watch_kind_to_wire kind ]
  | Protocol.Expired -> List [ Int 3 ]

let server_msg_of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; Int session ] -> Ok (Protocol.Connect_ok { session })
  | List [ Int 1; Int xid; r ] ->
      let* result = result_of_wire r in
      Ok (Protocol.Reply { xid; result })
  | List [ Int 2; Str path; k ] ->
      let* kind = watch_kind_of_wire k in
      Ok (Protocol.Watch_event { path; kind })
  | List [ Int 3 ] -> Ok Protocol.Expired
  | _ -> Error "bad server message"

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)
(* ------------------------------------------------------------------ *)

let txn_op_to_wire (op : Txn.op) =
  let open Wire in
  match op with
  | Txn.Tcreate { path; data; ephemeral_owner } ->
      List [ Int 0; Str path; Str data; option (fun o -> Int o) ephemeral_owner ]
  | Txn.Tdelete { path } -> List [ Int 1; Str path ]
  | Txn.Tset { path; data; version } ->
      List [ Int 2; Str path; Str data; Int version ]
  | Txn.Tsession_open { session; client_addr; owner_replica } ->
      List [ Int 3; Int session; Int client_addr; Int owner_replica ]
  | Txn.Tsession_close { session } -> List [ Int 4; Int session ]
  | Txn.Tsession_move { session; owner_replica } ->
      List [ Int 5; Int session; Int owner_replica ]
  | Txn.Tblock { session; origin; xid; path } ->
      List [ Int 6; Int session; Int origin; Int xid; Str path ]
  | Txn.Tnotify { session; path; kind } ->
      List [ Int 7; Int session; Str path; watch_kind_to_wire kind ]
  | Txn.Terror -> List [ Int 8 ]
  | Txn.Tprep { txid; coord; ops } ->
      List
        [ Int 9; Str txid; Int coord;
          List (List.map Edc_replication.Two_pc.wop_to_wire ops) ]
  | Txn.Tdecide { txid; commit; participants } ->
      List
        [ Int 10; Str txid; bool_ commit;
          List (List.map (fun s -> Int s) participants) ]
  | Txn.Tresolve { txid; commit } -> List [ Int 11; Str txid; bool_ commit ]

let txn_op_of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; Str path; Str data; eph ] ->
      let* ephemeral_owner = to_option to_int eph in
      Ok (Txn.Tcreate { path; data; ephemeral_owner })
  | List [ Int 1; Str path ] -> Ok (Txn.Tdelete { path })
  | List [ Int 2; Str path; Str data; Int version ] ->
      Ok (Txn.Tset { path; data; version })
  | List [ Int 3; Int session; Int client_addr; Int owner_replica ] ->
      Ok (Txn.Tsession_open { session; client_addr; owner_replica })
  | List [ Int 4; Int session ] -> Ok (Txn.Tsession_close { session })
  | List [ Int 5; Int session; Int owner_replica ] ->
      Ok (Txn.Tsession_move { session; owner_replica })
  | List [ Int 6; Int session; Int origin; Int xid; Str path ] ->
      Ok (Txn.Tblock { session; origin; xid; path })
  | List [ Int 7; Int session; Str path; k ] ->
      let* kind = watch_kind_of_wire k in
      Ok (Txn.Tnotify { session; path; kind })
  | List [ Int 8 ] -> Ok Txn.Terror
  | List [ Int 9; Str txid; Int coord; ops ] ->
      let* ops = map_list Edc_replication.Two_pc.wop_of_wire ops in
      Ok (Txn.Tprep { txid; coord; ops })
  | List [ Int 10; Str txid; commit; participants ] ->
      let* commit = to_bool commit in
      let* participants =
        map_list
          (function Int s -> Ok s | _ -> Error "bad participant shard")
          participants
      in
      Ok (Txn.Tdecide { txid; commit; participants })
  | List [ Int 11; Str txid; commit ] ->
      let* commit = to_bool commit in
      Ok (Txn.Tresolve { txid; commit })
  | _ -> Error "bad transaction op"

let txn_to_wire (t : Txn.t) =
  let open Wire in
  List
    [ option (fun o -> Int o) t.origin; Int t.session; Int t.xid;
      List (List.map txn_op_to_wire t.ops);
      result_to_wire t.result; bool_ t.quiet ]

let txn_of_wire w =
  let open Wire in
  match w with
  | List [ origin; Int session; Int xid; ops; result; quiet ] ->
      let* origin = to_option to_int origin in
      let* ops = map_list txn_op_of_wire ops in
      let* result = result_of_wire result in
      let* quiet = to_bool quiet in
      Ok { Txn.origin; session; xid; ops; result; quiet }
  | _ -> Error "bad transaction"

(* ------------------------------------------------------------------ *)
(* Streaming codecs — byte-identical to the tree codecs above.  The
   tree codecs stay as the reference implementation; test/test_wire.ml
   fuzzes the two paths against each other on every message shape.     *)
(* ------------------------------------------------------------------ *)

module W = Wire.Writer
module R = Wire.Reader

let write_zerror w (e : Zerror.t) =
  match e with
  | Zerror.No_node -> W.int w 0
  | Zerror.Node_exists -> W.int w 1
  | Zerror.Bad_version -> W.int w 2
  | Zerror.Not_empty -> W.int w 3
  | Zerror.No_children_for_ephemerals -> W.int w 4
  | Zerror.Invalid_path -> W.int w 5
  | Zerror.Session_expired -> W.int w 6
  | Zerror.Not_leader -> W.int w 7
  | Zerror.Unsupported -> W.int w 8
  | Zerror.Timeout -> W.int w 9
  | Zerror.Maybe_applied -> W.int w 10
  | Zerror.Extension_error msg ->
      W.begin_list w;
      W.int w 11;
      W.str w msg;
      W.end_list w
  | Zerror.Locked -> W.int w 12
  | Zerror.Txn_conflict -> W.int w 13

(* zerror mixes bare [Int] codes with one [List] arm (Extension_error),
   so the reader peeks at the frame kind first. *)
let read_zerror r =
  if R.peek_list r then begin
    R.begin_list r;
    let e =
      match R.int r with
      | 11 ->
          let msg = R.str r in
          Zerror.Extension_error msg
      | t -> R.error r (Printf.sprintf "bad error code %d" t)
    in
    R.end_list r;
    e
  end
  else
    match R.int r with
    | 0 -> Zerror.No_node
    | 1 -> Zerror.Node_exists
    | 2 -> Zerror.Bad_version
    | 3 -> Zerror.Not_empty
    | 4 -> Zerror.No_children_for_ephemerals
    | 5 -> Zerror.Invalid_path
    | 6 -> Zerror.Session_expired
    | 7 -> Zerror.Not_leader
    | 8 -> Zerror.Unsupported
    | 9 -> Zerror.Timeout
    | 10 -> Zerror.Maybe_applied
    | 12 -> Zerror.Locked
    | 13 -> Zerror.Txn_conflict
    | t -> R.error r (Printf.sprintf "bad error code %d" t)

let write_watch_kind w (k : Protocol.watch_kind) =
  W.int w
    (match k with
    | Protocol.Node_created -> 0
    | Protocol.Node_deleted -> 1
    | Protocol.Node_changed -> 2
    | Protocol.Children_changed -> 3)

let read_watch_kind r =
  match R.int r with
  | 0 -> Protocol.Node_created
  | 1 -> Protocol.Node_deleted
  | 2 -> Protocol.Node_changed
  | 3 -> Protocol.Children_changed
  | t -> R.error r (Printf.sprintf "bad watch kind %d" t)

let write_stat w (s : Znode.stat) =
  W.begin_list w;
  W.int w s.version;
  W.int w s.czxid;
  W.option w W.int s.ephemeral_owner;
  W.int w s.num_children;
  W.int w s.data_length;
  W.end_list w

let read_stat r =
  R.begin_list r;
  let version = R.int r in
  let czxid = R.int r in
  let ephemeral_owner = R.option r R.int in
  let num_children = R.int r in
  let data_length = R.int r in
  R.end_list r;
  { Znode.version; czxid; ephemeral_owner; num_children; data_length }

let write_znode w (n : Znode.t) =
  W.begin_list w;
  W.str w n.data;
  W.int w n.version;
  W.begin_list w;
  Znode.String_set.iter (fun c -> W.str w c) n.children;
  W.end_list w;
  W.int w n.cversion;
  W.int w n.czxid;
  W.option w W.int n.ephemeral_owner;
  W.end_list w

let read_znode r =
  R.begin_list r;
  let data = R.str r in
  let version = R.int r in
  let children = R.list r R.str in
  let cversion = R.int r in
  let czxid = R.int r in
  let ephemeral_owner = R.option r R.int in
  R.end_list r;
  let n = Znode.create ~data ~czxid ~ephemeral_owner in
  n.version <- version;
  n.children <- Znode.String_set.of_list children;
  n.cversion <- cversion;
  n

let write_portable w (img : Data_tree.portable) =
  W.begin_list w;
  W.list w
    (fun w (path, node) ->
      W.begin_list w;
      W.str w path;
      write_znode w node;
      W.end_list w)
    img.img_nodes;
  W.int w img.img_next_czxid;
  W.end_list w

let read_portable r =
  R.begin_list r;
  let img_nodes =
    R.list r (fun r ->
        R.begin_list r;
        let path = R.str r in
        let node = read_znode r in
        R.end_list r;
        (path, node))
  in
  let img_next_czxid = R.int r in
  R.end_list r;
  { Data_tree.img_nodes; img_next_czxid }

let write_op w (op : Protocol.op) =
  W.begin_list w;
  (match op with
  | Protocol.Create { path; data; ephemeral; sequential } ->
      W.int w 0;
      W.str w path;
      W.str w data;
      W.bool w ephemeral;
      W.bool w sequential
  | Protocol.Delete { path; version } ->
      W.int w 1;
      W.str w path;
      W.option w W.int version
  | Protocol.Set_data { path; data; expected_version } ->
      W.int w 2;
      W.str w path;
      W.str w data;
      W.option w W.int expected_version
  | Protocol.Get_data { path; watch } ->
      W.int w 3;
      W.str w path;
      W.bool w watch
  | Protocol.Get_children { path; watch } ->
      W.int w 4;
      W.str w path;
      W.bool w watch
  | Protocol.Exists { path; watch } ->
      W.int w 5;
      W.str w path;
      W.bool w watch
  | Protocol.Block { path } ->
      W.int w 6;
      W.str w path
  | Protocol.Sync -> W.int w 7
  | Protocol.Multi { ops } ->
      W.int w 8;
      W.list w Edc_replication.Two_pc.write_wop ops);
  W.end_list w

let read_op r =
  R.begin_list r;
  let op =
    match R.int r with
    | 0 ->
        let path = R.str r in
        let data = R.str r in
        let ephemeral = R.bool r in
        let sequential = R.bool r in
        Protocol.Create { path; data; ephemeral; sequential }
    | 1 ->
        let path = R.str r in
        let version = R.option r R.int in
        Protocol.Delete { path; version }
    | 2 ->
        let path = R.str r in
        let data = R.str r in
        let expected_version = R.option r R.int in
        Protocol.Set_data { path; data; expected_version }
    | 3 ->
        let path = R.str r in
        let watch = R.bool r in
        Protocol.Get_data { path; watch }
    | 4 ->
        let path = R.str r in
        let watch = R.bool r in
        Protocol.Get_children { path; watch }
    | 5 ->
        let path = R.str r in
        let watch = R.bool r in
        Protocol.Exists { path; watch }
    | 6 ->
        let path = R.str r in
        Protocol.Block { path }
    | 7 -> Protocol.Sync
    | 8 ->
        let ops = R.list r Edc_replication.Two_pc.read_wop in
        Protocol.Multi { ops }
    | t -> R.error r (Printf.sprintf "bad operation tag %d" t)
  in
  R.end_list r;
  op

let write_result w (res : Protocol.result) =
  W.begin_list w;
  (match res with
  | Protocol.Created path ->
      W.int w 0;
      W.str w path
  | Protocol.Deleted -> W.int w 1
  | Protocol.Set { version } ->
      W.int w 2;
      W.int w version
  | Protocol.Data (d, s) ->
      W.int w 3;
      W.str w d;
      write_stat w s
  | Protocol.Children names ->
      W.int w 4;
      W.list w W.str names
  | Protocol.Stat_of s ->
      W.int w 5;
      W.option w write_stat s
  | Protocol.Unblocked d ->
      W.int w 6;
      W.str w d
  | Protocol.Ext s ->
      W.int w 7;
      W.str w s
  | Protocol.Synced -> W.int w 8
  | Protocol.Error e ->
      W.int w 9;
      write_zerror w e
  | Protocol.Multi_ok -> W.int w 10);
  W.end_list w

let read_result r =
  R.begin_list r;
  let res =
    match R.int r with
    | 0 ->
        let path = R.str r in
        Protocol.Created path
    | 1 -> Protocol.Deleted
    | 2 ->
        let version = R.int r in
        Protocol.Set { version }
    | 3 ->
        let d = R.str r in
        let s = read_stat r in
        Protocol.Data (d, s)
    | 4 ->
        let names = R.list r R.str in
        Protocol.Children names
    | 5 ->
        let s = R.option r read_stat in
        Protocol.Stat_of s
    | 6 ->
        let d = R.str r in
        Protocol.Unblocked d
    | 7 ->
        let s = R.str r in
        Protocol.Ext s
    | 8 -> Protocol.Synced
    | 9 ->
        let e = read_zerror r in
        Protocol.Error e
    | 10 -> Protocol.Multi_ok
    | t -> R.error r (Printf.sprintf "bad result tag %d" t)
  in
  R.end_list r;
  res

let write_client_msg w (m : Protocol.client_to_server) =
  W.begin_list w;
  (match m with
  | Protocol.Connect -> W.int w 0
  | Protocol.Reconnect { session } ->
      W.int w 1;
      W.int w session
  | Protocol.Request { session; xid; op } ->
      W.int w 2;
      W.int w session;
      W.int w xid;
      write_op w op
  | Protocol.Ping { session } ->
      W.int w 3;
      W.int w session
  | Protocol.Close_session { session } ->
      W.int w 4;
      W.int w session);
  W.end_list w

let read_client_msg r =
  R.begin_list r;
  let m =
    match R.int r with
    | 0 -> Protocol.Connect
    | 1 ->
        let session = R.int r in
        Protocol.Reconnect { session }
    | 2 ->
        let session = R.int r in
        let xid = R.int r in
        let op = read_op r in
        Protocol.Request { session; xid; op }
    | 3 ->
        let session = R.int r in
        Protocol.Ping { session }
    | 4 ->
        let session = R.int r in
        Protocol.Close_session { session }
    | t -> R.error r (Printf.sprintf "bad client message tag %d" t)
  in
  R.end_list r;
  m

let write_server_msg w (m : Protocol.server_to_client) =
  W.begin_list w;
  (match m with
  | Protocol.Connect_ok { session } ->
      W.int w 0;
      W.int w session
  | Protocol.Reply { xid; result } ->
      W.int w 1;
      W.int w xid;
      write_result w result
  | Protocol.Watch_event { path; kind } ->
      W.int w 2;
      W.str w path;
      write_watch_kind w kind
  | Protocol.Expired -> W.int w 3);
  W.end_list w

let read_server_msg r =
  R.begin_list r;
  let m =
    match R.int r with
    | 0 ->
        let session = R.int r in
        Protocol.Connect_ok { session }
    | 1 ->
        let xid = R.int r in
        let result = read_result r in
        Protocol.Reply { xid; result }
    | 2 ->
        let path = R.str r in
        let kind = read_watch_kind r in
        Protocol.Watch_event { path; kind }
    | 3 -> Protocol.Expired
    | t -> R.error r (Printf.sprintf "bad server message tag %d" t)
  in
  R.end_list r;
  m

let write_txn_op w (op : Txn.op) =
  W.begin_list w;
  (match op with
  | Txn.Tcreate { path; data; ephemeral_owner } ->
      W.int w 0;
      W.str w path;
      W.str w data;
      W.option w W.int ephemeral_owner
  | Txn.Tdelete { path } ->
      W.int w 1;
      W.str w path
  | Txn.Tset { path; data; version } ->
      W.int w 2;
      W.str w path;
      W.str w data;
      W.int w version
  | Txn.Tsession_open { session; client_addr; owner_replica } ->
      W.int w 3;
      W.int w session;
      W.int w client_addr;
      W.int w owner_replica
  | Txn.Tsession_close { session } ->
      W.int w 4;
      W.int w session
  | Txn.Tsession_move { session; owner_replica } ->
      W.int w 5;
      W.int w session;
      W.int w owner_replica
  | Txn.Tblock { session; origin; xid; path } ->
      W.int w 6;
      W.int w session;
      W.int w origin;
      W.int w xid;
      W.str w path
  | Txn.Tnotify { session; path; kind } ->
      W.int w 7;
      W.int w session;
      W.str w path;
      write_watch_kind w kind
  | Txn.Terror -> W.int w 8
  | Txn.Tprep { txid; coord; ops } ->
      W.int w 9;
      W.str w txid;
      W.int w coord;
      W.list w Edc_replication.Two_pc.write_wop ops
  | Txn.Tdecide { txid; commit; participants } ->
      W.int w 10;
      W.str w txid;
      W.bool w commit;
      W.list w W.int participants
  | Txn.Tresolve { txid; commit } ->
      W.int w 11;
      W.str w txid;
      W.bool w commit);
  W.end_list w

let read_txn_op r =
  R.begin_list r;
  let op =
    match R.int r with
    | 0 ->
        let path = R.str r in
        let data = R.str r in
        let ephemeral_owner = R.option r R.int in
        Txn.Tcreate { path; data; ephemeral_owner }
    | 1 ->
        let path = R.str r in
        Txn.Tdelete { path }
    | 2 ->
        let path = R.str r in
        let data = R.str r in
        let version = R.int r in
        Txn.Tset { path; data; version }
    | 3 ->
        let session = R.int r in
        let client_addr = R.int r in
        let owner_replica = R.int r in
        Txn.Tsession_open { session; client_addr; owner_replica }
    | 4 ->
        let session = R.int r in
        Txn.Tsession_close { session }
    | 5 ->
        let session = R.int r in
        let owner_replica = R.int r in
        Txn.Tsession_move { session; owner_replica }
    | 6 ->
        let session = R.int r in
        let origin = R.int r in
        let xid = R.int r in
        let path = R.str r in
        Txn.Tblock { session; origin; xid; path }
    | 7 ->
        let session = R.int r in
        let path = R.str r in
        let kind = read_watch_kind r in
        Txn.Tnotify { session; path; kind }
    | 8 -> Txn.Terror
    | 9 ->
        let txid = R.str r in
        let coord = R.int r in
        let ops = R.list r Edc_replication.Two_pc.read_wop in
        Txn.Tprep { txid; coord; ops }
    | 10 ->
        let txid = R.str r in
        let commit = R.bool r in
        let participants = R.list r R.int in
        Txn.Tdecide { txid; commit; participants }
    | 11 ->
        let txid = R.str r in
        let commit = R.bool r in
        Txn.Tresolve { txid; commit }
    | t -> R.error r (Printf.sprintf "bad transaction op tag %d" t)
  in
  R.end_list r;
  op

let write_txn w (t : Txn.t) =
  W.begin_list w;
  W.option w W.int t.origin;
  W.int w t.session;
  W.int w t.xid;
  W.list w write_txn_op t.ops;
  write_result w t.result;
  W.bool w t.quiet;
  W.end_list w

let read_txn r =
  R.begin_list r;
  let origin = R.option r R.int in
  let session = R.int r in
  let xid = R.int r in
  let ops = R.list r read_txn_op in
  let result = read_result r in
  let quiet = R.bool r in
  R.end_list r;
  { Txn.origin; session; xid; ops; result; quiet }
