(** Deployment assembly: a simulated ZooKeeper ensemble plus clients.

    As in the paper's evaluation: [2f + 1] server replicas (three for
    [f = 1]), each client connected to one replica, with connections spread
    round-robin to balance load. *)

open Edc_simnet

type t = {
  sim : Sim.t;
  net : Server.wire Net.t;  (** failure injection and byte accounting *)
  transport : Server.wire Transport.t;  (** the message plane servers see *)
  mutable servers : Server.t array;  (** grows via {!add_server}; ids = index *)
  server_config : Server.config option;
  zab_config : Edc_replication.Zab.config option;
      (** effective config (post [?batch] override), reused by late joiners *)
  mutable next_client_addr : int;
  mutable next_replica : int;
}

let client_addr_base = 1000

let create ?(n_replicas = 3) ?net_config ?server_config ?zab_config ?batch sim
    =
  let net = Net.create ?config:net_config sim in
  let zab_config =
    (* [?batch] overrides the batching knob of whatever zab config is in
       effect, so callers can toggle group commit without restating the
       timing parameters. *)
    match batch with
    | None -> zab_config
    | Some b ->
        let base =
          Option.value zab_config ~default:Edc_replication.Zab.default_config
        in
        Some { base with Edc_replication.Zab.batch = b }
  in
  let replica_ids = List.init n_replicas Fun.id in
  let transport = Transport.of_net net in
  let servers =
    Array.init n_replicas (fun id ->
        Server.create ?config:server_config ?zab_config ~sim ~net:transport
          ~id ~replica_ids ~initial_leader:0 ())
  in
  Array.iter Server.start servers;
  {
    sim;
    net;
    transport;
    servers;
    server_config;
    zab_config;
    next_client_addr = client_addr_base;
    next_replica = 0;
  }

let sim t = t.sim
let net t = t.net
let servers t = t.servers
let n_replicas t = Array.length t.servers

let leader t =
  let rec find i =
    if i >= Array.length t.servers then None
    else if Server.is_leader t.servers.(i) then Some t.servers.(i)
    else find (i + 1)
  in
  find 0

(** [client t ()] allocates a client endpoint attached round-robin to a
    replica.  The session is established by calling {!Client.connect} from
    a fiber. *)
let client ?config ?replica t () =
  let addr = t.next_client_addr in
  t.next_client_addr <- t.next_client_addr + 1;
  let replica =
    match replica with
    | Some r -> r
    | None ->
        let r = t.next_replica in
        t.next_replica <- (t.next_replica + 1) mod Array.length t.servers;
        r
  in
  Client.create ?config ~sim:t.sim ~net:t.transport ~addr ~replica ()

(** [connected_client t ()] spawns nothing: call from within a fiber; it
    allocates and connects in one step. *)
let connected_client ?config ?replica t () =
  let c = client ?config ?replica t () in
  Client.connect c;
  c

(** [add_server t] grows the ensemble at runtime: a fresh replica boots as
    a non-voting learner on the same message plane, announces itself to
    the leader, bootstraps via snapshot + log sync, and is admitted to the
    member set through the joint-consensus log path once caught up.
    Returns the new replica's id. *)
let add_server t =
  let id = Array.length t.servers in
  (* the learner's peer list is the current ensemble; its own vote arrives
     only through a committed config *)
  let replica_ids = List.init (id + 1) Fun.id in
  let s =
    Server.create ?config:t.server_config ?zab_config:t.zab_config
      ~learner:true ~sim:t.sim ~net:t.transport ~id ~replica_ids ()
  in
  t.servers <- Array.append t.servers [| s |];
  Server.start s;
  id

(** [add_observer t] attaches a permanent non-voting observer replica: it
    announces itself to the leader, bootstraps via snapshot + log sync,
    consumes the commit stream forever, and serves sequentially-consistent
    local reads — but never appears in any quorum or election.  Returns
    the new replica's id. *)
let add_observer t =
  let id = Array.length t.servers in
  let replica_ids = List.init (id + 1) Fun.id in
  let s =
    Server.create ?config:t.server_config ?zab_config:t.zab_config
      ~observer:true ~sim:t.sim ~net:t.transport ~id ~replica_ids ()
  in
  t.servers <- Array.append t.servers [| s |];
  Server.start s;
  id

(** [remove_server t ~id] asks the current leader to start the
    joint-consensus removal of replica [id]; the replica is fenced once
    the final config commits (it stays on the wire plane, refusing reads,
    until the caller crashes it). *)
let remove_server t ~id =
  match leader t with
  | None -> Error "no leader to drive the removal"
  | Some l -> Edc_replication.Zab.remove_server (Server.zab l) ~id

(** [crash_server t i] fails replica [i] (process + network). *)
let crash_server t i =
  Server.crash t.servers.(i);
  Net.set_node_down t.net i

let restart_server t i =
  Net.set_node_up t.net i;
  Server.restart t.servers.(i)

(** [run_until_quiet t ~timeout] drains the simulation up to a horizon. *)
let run_for t d = Sim.run ~until:(Sim_time.add (Sim.now t.sim) d) t.sim
