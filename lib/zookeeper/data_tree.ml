(** The replicated hierarchical data store (committed state).

    This is the state machine that transactions (produced by the leader's
    preprocessor) are applied to, in commit order, on every replica.  All
    apply functions are unconditional: validation happened at the leader.
    If an apply precondition is nevertheless violated (which would indicate
    a replication bug), the operation is skipped and reported as an anomaly
    rather than corrupting the tree. *)

module String_set = Znode.String_set

type t = {
  nodes : (string, Znode.t) Hashtbl.t;
  ephemerals : (int, String_set.t ref) Hashtbl.t;  (** session -> paths *)
  mutable next_czxid : int;
  mutable anomalies : int;
}

let create () =
  let nodes = Hashtbl.create 256 in
  Hashtbl.replace nodes Zpath.root
    (Znode.create ~data:"" ~czxid:0 ~ephemeral_owner:None);
  { nodes; ephemerals = Hashtbl.create 16; next_czxid = 1; anomalies = 0 }

let find_opt t path = Hashtbl.find_opt t.nodes path
let mem t path = Hashtbl.mem t.nodes path
let node_count t = Hashtbl.length t.nodes
let anomalies t = t.anomalies
let next_czxid t = t.next_czxid

let anomaly t what =
  t.anomalies <- t.anomalies + 1;
  Logs.warn (fun m -> m "data_tree anomaly: %s" what)

(* ------------------------------------------------------------------ *)
(* Queries (served from committed state)                               *)
(* ------------------------------------------------------------------ *)

let get_data t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n -> Ok (n.Znode.data, Znode.stat n)

let exists t path = Option.map Znode.stat (find_opt t path)

(** Children names, sorted (ZooKeeper returns them unordered; sorting keeps
    replies deterministic). *)
let get_children t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n -> Ok (String_set.elements n.Znode.children)

(** Children with data and stat, sorted by name: the expensive multi-RPC
    [subObjects] pattern collapsed to one server-side scan (extensions use
    this via the state proxy). *)
let children_with_data t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n ->
      Ok
        (String_set.elements n.Znode.children
        |> List.filter_map (fun name ->
               let child = Zpath.child path name in
               match find_opt t child with
               | None -> None
               | Some cn -> Some (child, cn.Znode.data, Znode.stat cn)))

let ephemeral_paths t session =
  match Hashtbl.find_opt t.ephemerals session with
  | None -> []
  | Some set -> String_set.elements !set

(* ------------------------------------------------------------------ *)
(* Transaction application                                             *)
(* ------------------------------------------------------------------ *)

let register_ephemeral t session path =
  let set =
    match Hashtbl.find_opt t.ephemerals session with
    | Some s -> s
    | None ->
        let s = ref String_set.empty in
        Hashtbl.replace t.ephemerals session s;
        s
  in
  set := String_set.add path !set

let unregister_ephemeral t session path =
  match Hashtbl.find_opt t.ephemerals session with
  | None -> ()
  | Some s -> s := String_set.remove path !s

(** [apply_create t ~path ~data ~ephemeral_owner] adds a node whose parent
    must exist.  Assigns the next creation id. *)
let apply_create t ~path ~data ~ephemeral_owner =
  match Zpath.parent path with
  | None -> anomaly t "create of root"
  | Some parent_path -> (
      if Hashtbl.mem t.nodes path then
        anomaly t (Printf.sprintf "create of existing %s" path)
      else
        match find_opt t parent_path with
        | None -> anomaly t (Printf.sprintf "create under missing %s" parent_path)
        | Some parent ->
            let czxid = t.next_czxid in
            t.next_czxid <- t.next_czxid + 1;
            Hashtbl.replace t.nodes path
              (Znode.create ~data ~czxid ~ephemeral_owner);
            parent.Znode.children <-
              String_set.add (Zpath.basename path) parent.Znode.children;
            parent.Znode.cversion <- parent.Znode.cversion + 1;
            (match ephemeral_owner with
            | Some session -> register_ephemeral t session path
            | None -> ()))

let apply_delete t ~path =
  match find_opt t path with
  | None -> anomaly t (Printf.sprintf "delete of missing %s" path)
  | Some n ->
      if not (String_set.is_empty n.Znode.children) then
        anomaly t (Printf.sprintf "delete of non-empty %s" path)
      else begin
        Hashtbl.remove t.nodes path;
        (match n.Znode.ephemeral_owner with
        | Some session -> unregister_ephemeral t session path
        | None -> ());
        match Zpath.parent path with
        | None -> ()
        | Some parent_path -> (
            match find_opt t parent_path with
            | None -> ()
            | Some parent ->
                parent.Znode.children <-
                  String_set.remove (Zpath.basename path) parent.Znode.children;
                parent.Znode.cversion <- parent.Znode.cversion + 1)
      end

(** [apply_set t ~path ~data ~version] overwrites data; [version] is the
    new version computed by the leader. *)
let apply_set t ~path ~data ~version =
  match find_opt t path with
  | None -> anomaly t (Printf.sprintf "set of missing %s" path)
  | Some n ->
      n.Znode.data <- data;
      n.Znode.version <- version

(* ------------------------------------------------------------------ *)
(* Snapshot images (state transfer, §3.8)                              *)
(* ------------------------------------------------------------------ *)

(** A serializable image of the whole tree.  Nodes are deep-copied on
    export, so the image is a stable value: an image taken before a
    mutation still shows the pre-mutation state no matter when it is
    serialized or re-imported. *)
type image = { img_nodes : (string * Znode.t) list; img_next_czxid : int }

let export t =
  {
    img_nodes =
      Hashtbl.fold (fun p n acc -> (p, Znode.copy n) :: acc) t.nodes [];
    img_next_czxid = t.next_czxid;
  }

(** [import t image] replaces the tree's contents (ephemeral index rebuilt
    from the nodes).  Nodes are copied in, so the image stays reusable —
    importing the same image twice yields two independent trees. *)
let import t image =
  Hashtbl.reset t.nodes;
  Hashtbl.reset t.ephemerals;
  List.iter
    (fun (p, n) -> Hashtbl.replace t.nodes p (Znode.copy n))
    image.img_nodes;
  List.iter
    (fun (p, (n : Znode.t)) ->
      match n.Znode.ephemeral_owner with
      | Some session -> register_ephemeral t session p
      | None -> ())
    image.img_nodes;
  t.next_czxid <- image.img_next_czxid

(** [cversion t path] is the parent-child version used to mint sequential
    names at the leader ([0] for missing nodes). *)
let cversion t path =
  match find_opt t path with None -> 0 | Some n -> n.Znode.cversion
