(** The replicated hierarchical data store (committed state).

    This is the state machine that transactions (produced by the leader's
    preprocessor) are applied to, in commit order, on every replica.  All
    apply functions are unconditional: validation happened at the leader.
    If an apply precondition is nevertheless violated (which would indicate
    a replication bug), the operation is skipped and reported as an anomaly
    rather than corrupting the tree. *)

module String_set = Znode.String_set

type t = {
  nodes : (string, Znode.t) Hashtbl.t;
  ephemerals : (int, String_set.t ref) Hashtbl.t;  (** session -> paths *)
  mutable next_czxid : int;
  mutable anomalies : int;
  mutable live_gen : int;  (** bumped by every {!export}; see {!image} *)
  mutable images : image list;  (** active copy-on-write handles *)
  mutable cow_copies : int;  (** nodes preserved on first touch (stat) *)
}

(** A copy-on-write snapshot handle.  Capture is O(1): the handle records
    the tree's generation and an (initially empty) overlay; the apply path
    preserves a node's pre-image into every active handle the first time it
    mutates or deletes a node whose [stamp] predates the live generation.
    Reading the handle combines the overlay (preserved pre-images, which
    take precedence) with the live nodes whose stamp still satisfies
    [stamp <= img_gen]; live nodes stamped later were created or touched
    after the capture and are excluded. *)
and image = {
  img_tree : t;
  img_gen : int;
  img_czxid : int;  (** [next_czxid] at capture time *)
  overlay : (string, Znode.t) Hashtbl.t;
  mutable detached : bool;
      (** the overlay alone holds the whole image (the handle was released,
          or the backing tree was replaced by an import) *)
}

let create () =
  let nodes = Hashtbl.create 256 in
  Hashtbl.replace nodes Zpath.root
    (Znode.create ~data:"" ~czxid:0 ~ephemeral_owner:None);
  {
    nodes;
    ephemerals = Hashtbl.create 16;
    next_czxid = 1;
    anomalies = 0;
    live_gen = 0;
    images = [];
    cow_copies = 0;
  }

let find_opt t path = Hashtbl.find_opt t.nodes path
let mem t path = Hashtbl.mem t.nodes path
let node_count t = Hashtbl.length t.nodes
let anomalies t = t.anomalies
let next_czxid t = t.next_czxid

let anomaly t what =
  t.anomalies <- t.anomalies + 1;
  Logs.warn (fun m -> m "data_tree anomaly: %s" what)

(* ------------------------------------------------------------------ *)
(* Queries (served from committed state)                               *)
(* ------------------------------------------------------------------ *)

let get_data t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n -> Ok (n.Znode.data, Znode.stat n)

let exists t path = Option.map Znode.stat (find_opt t path)

(** Children names, sorted (ZooKeeper returns them unordered; sorting keeps
    replies deterministic). *)
let get_children t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n -> Ok (String_set.elements n.Znode.children)

(** Children with data and stat, sorted by name: the expensive multi-RPC
    [subObjects] pattern collapsed to one server-side scan (extensions use
    this via the state proxy). *)
let children_with_data t path =
  match find_opt t path with
  | None -> Error Zerror.No_node
  | Some n ->
      Ok
        (String_set.elements n.Znode.children
        |> List.filter_map (fun name ->
               let child = Zpath.child path name in
               match find_opt t child with
               | None -> None
               | Some cn -> Some (child, cn.Znode.data, Znode.stat cn)))

let ephemeral_paths t session =
  match Hashtbl.find_opt t.ephemerals session with
  | None -> []
  | Some set -> String_set.elements !set

(* ------------------------------------------------------------------ *)
(* Transaction application                                             *)
(* ------------------------------------------------------------------ *)

let register_ephemeral t session path =
  let set =
    match Hashtbl.find_opt t.ephemerals session with
    | Some s -> s
    | None ->
        let s = ref String_set.empty in
        Hashtbl.replace t.ephemerals session s;
        s
  in
  set := String_set.add path !set

let unregister_ephemeral t session path =
  match Hashtbl.find_opt t.ephemerals session with
  | None -> ()
  | Some s -> s := String_set.remove path !s

(* Copy-on-write first touch: called before a node is mutated or removed.
   If the node predates an active snapshot handle's generation, that handle
   still reads the live record — so preserve a copy into its overlay before
   the mutation lands.  Bumping the stamp afterwards makes the next touch of
   the same node free; with no active handles the whole thing is one integer
   compare. *)
let touch t path (n : Znode.t) =
  if n.Znode.stamp < t.live_gen then begin
    List.iter
      (fun img ->
        if
          (not img.detached)
          && n.Znode.stamp <= img.img_gen
          && not (Hashtbl.mem img.overlay path)
        then begin
          Hashtbl.replace img.overlay path (Znode.copy n);
          t.cow_copies <- t.cow_copies + 1
        end)
      t.images;
    n.Znode.stamp <- t.live_gen
  end

(** [apply_create t ~path ~data ~ephemeral_owner] adds a node whose parent
    must exist.  Assigns the next creation id. *)
let apply_create t ~path ~data ~ephemeral_owner =
  match Zpath.parent path with
  | None -> anomaly t "create of root"
  | Some parent_path -> (
      if Hashtbl.mem t.nodes path then
        anomaly t (Printf.sprintf "create of existing %s" path)
      else
        match find_opt t parent_path with
        | None -> anomaly t (Printf.sprintf "create under missing %s" parent_path)
        | Some parent ->
            let czxid = t.next_czxid in
            t.next_czxid <- t.next_czxid + 1;
            let n = Znode.create ~data ~czxid ~ephemeral_owner in
            (* born after any active capture: excluded by stamp alone *)
            n.Znode.stamp <- t.live_gen;
            Hashtbl.replace t.nodes path n;
            touch t parent_path parent;
            parent.Znode.children <-
              String_set.add (Zpath.basename path) parent.Znode.children;
            parent.Znode.cversion <- parent.Znode.cversion + 1;
            (match ephemeral_owner with
            | Some session -> register_ephemeral t session path
            | None -> ()))

let apply_delete t ~path =
  match find_opt t path with
  | None -> anomaly t (Printf.sprintf "delete of missing %s" path)
  | Some n ->
      if not (String_set.is_empty n.Znode.children) then
        anomaly t (Printf.sprintf "delete of non-empty %s" path)
      else begin
        touch t path n;
        Hashtbl.remove t.nodes path;
        (match n.Znode.ephemeral_owner with
        | Some session -> unregister_ephemeral t session path
        | None -> ());
        match Zpath.parent path with
        | None -> ()
        | Some parent_path -> (
            match find_opt t parent_path with
            | None -> ()
            | Some parent ->
                touch t parent_path parent;
                parent.Znode.children <-
                  String_set.remove (Zpath.basename path) parent.Znode.children;
                parent.Znode.cversion <- parent.Znode.cversion + 1)
      end

(** [apply_set t ~path ~data ~version] overwrites data; [version] is the
    new version computed by the leader. *)
let apply_set t ~path ~data ~version =
  match find_opt t path with
  | None -> anomaly t (Printf.sprintf "set of missing %s" path)
  | Some n ->
      touch t path n;
      n.Znode.data <- data;
      n.Znode.version <- version

(* ------------------------------------------------------------------ *)
(* Snapshot images (state transfer, §3.8)                              *)
(* ------------------------------------------------------------------ *)

(** A serializable, deterministic image of the whole tree: nodes sorted by
    path (so two replicas in the same state serialize to identical bytes —
    the prerequisite for cross-replica checkpoint digests), deep-copied and
    stamp-zeroed.  This is what actually travels in snapshot blobs;
    {!image} handles never leave the replica that captured them. *)
type portable = { img_nodes : (string * Znode.t) list; img_next_czxid : int }

(* Deep copy for a serialized image: the stamp is replica-local (it encodes
   this replica's export cadence), so zero it or identical states would
   serialize to different bytes on different replicas. *)
let copy_for_image (n : Znode.t) =
  let c = Znode.copy n in
  c.Znode.stamp <- 0;
  c

let sort_nodes nodes =
  List.sort (fun (a, _) (b, _) -> String.compare a b) nodes

(** [export t] captures a snapshot handle in O(1): no node is copied until
    (and unless) the live tree mutates it.  The caller should {!release}
    the handle when a newer capture supersedes it, so the apply path stops
    preserving pre-images nobody will read. *)
let export t =
  let img =
    {
      img_tree = t;
      img_gen = t.live_gen;
      img_czxid = t.next_czxid;
      overlay = Hashtbl.create 32;
      detached = false;
    }
  in
  t.live_gen <- t.live_gen + 1;
  t.images <- img :: t.images;
  img

let release img =
  let t = img.img_tree in
  if not img.detached then begin
    img.detached <- true;
    Hashtbl.reset img.overlay
  end;
  t.images <- List.filter (fun i -> i != img) t.images

(** [materialize img] renders the handle as a {!portable} image: overlay
    entries (preserved pre-images) take precedence; live nodes stamped at
    or before the capture generation are unchanged since the capture; live
    nodes stamped later are post-capture creations and excluded. *)
let materialize img =
  let acc =
    Hashtbl.fold (fun p n acc -> (p, copy_for_image n) :: acc) img.overlay []
  in
  let acc =
    if img.detached then acc
    else
      Hashtbl.fold
        (fun p (n : Znode.t) acc ->
          if n.Znode.stamp <= img.img_gen && not (Hashtbl.mem img.overlay p)
          then (p, copy_for_image n) :: acc
          else acc)
        img.img_tree.nodes acc
  in
  { img_nodes = sort_nodes acc; img_next_czxid = img.img_czxid }

(** [export_eager t] is the pre-COW deep-copy export, kept as the baseline
    the snapshot bench compares against and as the oracle for the COW
    differential property test. *)
let export_eager t =
  {
    img_nodes =
      sort_nodes
        (Hashtbl.fold (fun p n acc -> (p, copy_for_image n) :: acc) t.nodes []);
    img_next_czxid = t.next_czxid;
  }

(* The tree's contents are about to be replaced wholesale: any handle still
   capturing it must be completed now (its backing store is going away). *)
let detach_images t =
  List.iter
    (fun img ->
      if not img.detached then begin
        Hashtbl.iter
          (fun p (n : Znode.t) ->
            if n.Znode.stamp <= img.img_gen && not (Hashtbl.mem img.overlay p)
            then Hashtbl.replace img.overlay p (Znode.copy n))
          t.nodes;
        img.detached <- true
      end)
    t.images;
  t.images <- []

(** [import_portable t p] replaces the tree's contents (ephemeral index
    rebuilt from the nodes).  Nodes are copied in, so the image stays
    reusable — importing the same image twice yields two independent
    trees. *)
let import_portable t (p : portable) =
  detach_images t;
  Hashtbl.reset t.nodes;
  Hashtbl.reset t.ephemerals;
  List.iter
    (fun (path, n) ->
      let c = Znode.copy n in
      c.Znode.stamp <- t.live_gen;
      Hashtbl.replace t.nodes path c)
    p.img_nodes;
  List.iter
    (fun (path, (n : Znode.t)) ->
      match n.Znode.ephemeral_owner with
      | Some session -> register_ephemeral t session path
      | None -> ())
    p.img_nodes;
  t.next_czxid <- p.img_next_czxid

let import t img = import_portable t (materialize img)

let live_generation t = t.live_gen
let cow_copies t = t.cow_copies
let active_images t = List.length t.images

(** [cversion t path] is the parent-child version used to mint sequential
    names at the leader ([0] for missing nodes). *)
let cversion t path =
  match find_opt t path with None -> 0 | Some n -> n.Znode.cversion
