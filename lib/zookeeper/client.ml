(** ZooKeeper client library.

    One client object = one network endpoint = one session.  All calls are
    blocking from the calling fiber's point of view (direct style over
    {!Edc_simnet.Proc}), mirroring the synchronous client API the paper's
    recipes are written against. *)

open Edc_simnet
module P = Protocol

type config = {
  request_timeout : Sim_time.t;
  ping_interval : Sim_time.t;
}

let default_config =
  { request_timeout = Sim_time.sec 4; ping_interval = Sim_time.sec 2 }

type t = {
  sim : Sim.t;
  net : Server.wire Transport.t;
  addr : int;
  config : config;
  mutable replica : int;
  mutable session : int;
  mutable xid : int;
  mutable connected : bool;
  mutable closed : bool;
  outstanding : (int, P.result Proc.promise) Hashtbl.t;
  mutable connect_waiter : int Proc.promise option;
  watch_waiters : (string, (string * P.watch_kind) Proc.promise list ref) Hashtbl.t;
  mutable on_watch_event : string -> P.watch_kind -> unit;
      (** fires on every delivered watch event, waiters or not — the
          session cache's invalidation feed *)
  mutable generation : int;
  (* statistics *)
  mutable requests_sent : int;
  mutable replies_received : int;
}

let session t = t.session
let addr t = t.addr
let requests_sent t = t.requests_sent
let is_connected t = t.connected

let handle_server_msg t msg =
  match msg with
  | P.Connect_ok { session } -> (
      t.session <- session;
      t.connected <- true;
      match t.connect_waiter with
      | Some p ->
          t.connect_waiter <- None;
          ignore (Proc.try_fulfill p session : bool)
      | None -> ())
  | P.Reply { xid; result } -> (
      t.replies_received <- t.replies_received + 1;
      match Hashtbl.find_opt t.outstanding xid with
      | Some p ->
          Hashtbl.remove t.outstanding xid;
          ignore (Proc.try_fulfill p result : bool)
      | None -> () (* reply raced with a timeout; drop *))
  | P.Watch_event { path; kind } -> (
      t.on_watch_event path kind;
      match Hashtbl.find_opt t.watch_waiters path with
      | Some waiters ->
          Hashtbl.remove t.watch_waiters path;
          List.iter
            (fun p -> ignore (Proc.try_fulfill p (path, kind) : bool))
            (List.rev !waiters)
      | None -> ())
  | P.Expired -> t.connected <- false

let create ?(config = default_config) ~sim ~net ~addr ~replica () =
  let t =
    {
      sim;
      net;
      addr;
      config;
      replica;
      session = 0;
      xid = 0;
      connected = false;
      closed = false;
      outstanding = Hashtbl.create 8;
      connect_waiter = None;
      watch_waiters = Hashtbl.create 8;
      on_watch_event = (fun _ _ -> ());
      generation = 0;
      requests_sent = 0;
      replies_received = 0;
    }
  in
  Transport.register net addr (fun ~src:_ ~size:_ msg ->
      match msg with
      | Server.Server_msg m -> handle_server_msg t m
      | Server.Client_msg _ | Server.Zab_msg _ | Server.Forward _
      | Server.Forward_connect _ | Server.Forward_reconnect _
      | Server.Forward_close _ | Server.Touch _ ->
          ());
  t

let send_client_msg t msg =
  Transport.send t.net ~src:t.addr ~dst:t.replica
    ~size:(Server.wire_size (Server.Client_msg msg))
    (Server.Client_msg msg)

let rec ping_loop t generation () =
  if t.connected && (not t.closed) && generation = t.generation then begin
    send_client_msg t (P.Ping { session = t.session });
    Sim.schedule t.sim ~after:t.config.ping_interval (ping_loop t generation)
  end

(** [connect t] establishes the session (fiber-blocking).  Retries until
    the cluster answers (e.g. while a leader election is in progress). *)
let connect t =
  let rec attempt () =
    let p = Proc.promise t.sim in
    t.connect_waiter <- Some p;
    send_client_msg t P.Connect;
    match Proc.await_timeout t.sim p ~timeout:t.config.request_timeout with
    | Some _session ->
        t.generation <- t.generation + 1;
        Sim.schedule t.sim ~after:t.config.ping_interval
          (ping_loop t t.generation)
    | None -> attempt ()
  in
  attempt ()

(** [reconnect t ~replica] re-attaches an existing session to another
    replica (client failover). *)
let reconnect t ~replica =
  t.replica <- replica;
  let p = Proc.promise t.sim in
  t.connect_waiter <- Some p;
  send_client_msg t (P.Reconnect { session = t.session });
  match Proc.await_timeout t.sim p ~timeout:t.config.request_timeout with
  | Some _ -> true
  | None -> false

(** [request t op] issues one operation and blocks the fiber for the
    result.  Times out with [Error Timeout] (the request may still execute
    server-side — same ambiguity as a real network client). *)
let request t op =
  if not t.connected then P.Error Zerror.Session_expired
  else begin
    t.xid <- t.xid + 1;
    let xid = t.xid in
    let p = Proc.promise t.sim in
    Hashtbl.replace t.outstanding xid p;
    t.requests_sent <- t.requests_sent + 1;
    send_client_msg t (P.Request { session = t.session; xid; op });
    (* blocking calls park server-side for arbitrarily long; everything
       else times out *)
    match op with
    | P.Block _ -> Proc.await p
    | _ -> (
        match Proc.await_timeout t.sim p ~timeout:t.config.request_timeout with
        | Some result -> result
        | None ->
            Hashtbl.remove t.outstanding xid;
            P.Error Zerror.Timeout)
  end

(** [request_async t op] issues one operation without blocking: the
    returned promise fulfills with the result (or [Error Timeout] after
    [request_timeout]; blocking ops never time out).  Lets one fiber keep
    a window of requests in flight — the TCP transport corks the whole
    window into one write, and replies pipeline back.  [request] stays
    the one-in-flight path the recipes are written against. *)
let request_async t op =
  let p = Proc.promise t.sim in
  if not t.connected then ignore (Proc.try_fulfill p (P.Error Zerror.Session_expired) : bool)
  else begin
    t.xid <- t.xid + 1;
    let xid = t.xid in
    Hashtbl.replace t.outstanding xid p;
    t.requests_sent <- t.requests_sent + 1;
    send_client_msg t (P.Request { session = t.session; xid; op });
    match op with
    | P.Block _ -> ()
    | _ ->
        Sim.schedule t.sim ~after:t.config.request_timeout (fun () ->
            if Proc.try_fulfill p (P.Error Zerror.Timeout) then
              Hashtbl.remove t.outstanding xid)
  end;
  p

(** [watch_waiter t path] registers interest in the next event on [path];
    must be called before issuing the read that sets the server watch. *)
let watch_waiter t path =
  let p = Proc.promise t.sim in
  (match Hashtbl.find_opt t.watch_waiters path with
  | Some l -> l := p :: !l
  | None -> Hashtbl.replace t.watch_waiters path (ref [ p ]));
  p

let set_on_watch_event t f = t.on_watch_event <- f

(* ------------------------------------------------------------------ *)
(* Convenience wrappers (Table 2, ZooKeeper column)                    *)
(* ------------------------------------------------------------------ *)

let create_node t ?(ephemeral = false) ?(sequential = false) path data =
  match request t (P.Create { path; data; ephemeral; sequential }) with
  | P.Created actual -> Ok actual
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

let delete t ?version path =
  match request t (P.Delete { path; version }) with
  | P.Deleted -> Ok ()
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

let set_data t ?expected_version path data =
  match request t (P.Set_data { path; data; expected_version }) with
  | P.Set { version } -> Ok version
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

let get_data t ?(watch = false) path =
  match request t (P.Get_data { path; watch }) with
  | P.Data (d, s) -> Ok (d, s)
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

let get_children t ?(watch = false) path =
  match request t (P.Get_children { path; watch }) with
  | P.Children c -> Ok c
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

let exists t ?(watch = false) path =
  match request t (P.Exists { path; watch }) with
  | P.Stat_of s -> Ok s
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

(** [sync t] — read-your-writes barrier: the reply travels through the
    commit path and back via the replica this client is connected to, so
    once it returns, that replica (and any session cache flushed on it)
    has applied every update ordered before the barrier. *)
let sync t =
  match request t P.Sync with
  | P.Synced -> Ok ()
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

(** [multi t ops] — atomic multi-write; on a sharded deployment, ops
    spanning shards commit via 2PC (§6j). *)
let multi t ops =
  match request t (P.Multi { ops }) with
  | P.Multi_ok -> Ok ()
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

(** [block t path] — Table 2's [block(o)] for plain ZooKeeper: set an
    exists-watch and wait for the creation event (two to three RPC-ish
    steps client-side). *)
let rec block t path =
  let waiter = watch_waiter t path in
  match exists t ~watch:true path with
  | Ok (Some _) -> Ok ()
  | Ok None -> (
      let _ = Proc.await waiter in
      (* One-shot watch: the event may have been a deletion of an earlier
         incarnation; re-check. *)
      match exists t path with Ok (Some _) -> Ok () | _ -> block t path)
  | Error e -> Error e

(** [server_block t path] — EZK's single-RPC blocking read, served by an
    operation extension; returns the created object's data. *)
let server_block t path =
  match request t (P.Block { path }) with
  | P.Unblocked data -> Ok data
  | P.Error e -> Error e
  | _ -> Error Zerror.Unsupported

(** [monitor t path] — Table 2's [monitor(x, o)]: create [path] as an
    ephemeral node tied to this client's session. *)
let monitor t path = create_node t ~ephemeral:true path ""

let close t =
  t.closed <- true;
  if t.connected then begin
    send_client_msg t (P.Close_session { session = t.session });
    t.connected <- false
  end
