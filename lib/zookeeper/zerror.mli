(** ZooKeeper-style error codes. *)

type t =
  | No_node  (** target path does not exist *)
  | Node_exists  (** create on an existing path *)
  | Bad_version  (** conditional update lost the race *)
  | Not_empty  (** delete of a node that still has children *)
  | No_children_for_ephemerals
  | Invalid_path
  | Session_expired
  | Not_leader  (** an update could not reach the current leader *)
  | Unsupported  (** operation unavailable without a matching extension *)
  | Extension_error of string  (** extension rejected or crashed (§4) *)
  | Timeout
  | Maybe_applied
      (** a non-idempotent update timed out: it may or may not have
          executed, and resubmitting could double-apply ({!Session}) *)
  | Locked
      (** path held by a prepared cross-shard transaction; not applied *)
  | Txn_conflict  (** cross-shard transaction aborted; not applied *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
