(** Resilient session over {!Client}: deadlines, decorrelated-jitter
    backoff, replica failover, and a safe-resubmission policy.

    The retry contract (the paper treats this as part of the client API):

    - reads and idempotent writes are retried across replicas until the
      policy's deadline;
    - a non-idempotent write that times out is {e never} resubmitted — the
      update may have executed before the reply was lost — and surfaces as
      {!Zerror.Maybe_applied};
    - logical errors (node exists, bad version, …) return immediately;
    - on timeout or leader loss the session re-attaches to the next
      replica in round-robin order, falling back to a fresh session only
      after a full unsuccessful cycle;
    - when writes keep failing past the deadline the session raises its
      {!degraded} (read-only) signal, cleared by the next write success —
      local reads on a reachable replica keep working even when no write
      quorum answers. *)

open Edc_simnet

(** Retry classification of the wrapped operation. *)
type op_kind =
  | Read
  | Write of { idempotent : bool }

type stats = {
  mutable calls : int;
  mutable retries : int;
  mutable failovers : int;  (** replica switches attempted *)
  mutable maybe_applied : int;
  mutable gave_up : int;
}

type t

(** [wrap ~sim ~replicas client] — [replicas] are the server ids eligible
    for failover.  The client should already be connected. *)
val wrap :
  ?policy:Edc_core.Retry.policy -> sim:Sim.t -> replicas:int list ->
  Client.t -> t

val client : t -> Client.t
val stats : t -> stats

(** Read-only degradation signal: writes have exhausted their retry budget
    and are failing cluster-wide. *)
val degraded : t -> bool

(** [call t ~op f] runs [f client] under the retry policy.  Do not wrap
    operations that park indefinitely ([Client.block], watches): they have
    no timeout for the policy to act on. *)
val call :
  t -> op:op_kind -> (Client.t -> ('a, Zerror.t) result) ->
  ('a, Zerror.t) result

(** Same, for operations reporting stringified errors (the extension call
    path); ambiguous outcomes surface as ["maybe applied"]. *)
val call_str :
  t -> op:op_kind -> (Client.t -> ('a, string) result) -> ('a, string) result
