(** Resilient session over {!Client}: deadlines, decorrelated-jitter
    backoff, replica failover, and a safe-resubmission policy.

    The retry contract (the paper treats this as part of the client API):

    - reads and idempotent writes are retried across replicas until the
      policy's deadline;
    - a non-idempotent write that times out is {e never} resubmitted — the
      update may have executed before the reply was lost — and surfaces as
      {!Zerror.Maybe_applied};
    - logical errors (node exists, bad version, …) return immediately;
    - on timeout or leader loss the session re-attaches to the next
      replica in round-robin order, falling back to a fresh session only
      after a full unsuccessful cycle;
    - when writes keep failing past the deadline the session raises its
      {!degraded} (read-only) signal, cleared by the next write success —
      local reads on a reachable replica keep working even when no write
      quorum answers. *)

open Edc_simnet

(** Retry classification of the wrapped operation. *)
type op_kind =
  | Read
  | Write of { idempotent : bool }

type stats = {
  mutable calls : int;
  mutable retries : int;
  mutable failovers : int;  (** replica switches attempted *)
  mutable maybe_applied : int;
  mutable gave_up : int;
}

type cache_stats = {
  mutable hits : int;  (** reads served without touching the network *)
  mutable misses : int;  (** reads fetched and cached *)
  mutable invalidations : int;  (** entries dropped by watch events *)
  mutable flushes : int;  (** whole-cache drops (sync barriers, failover) *)
}

type t

(** [wrap ~sim ~replicas client] — [replicas] are the server ids eligible
    for failover.  The client should already be connected.  [cache:true]
    enables the invalidation-based read cache used by
    {!cached_get_data}. *)
val wrap :
  ?policy:Edc_core.Retry.policy -> ?cache:bool -> sim:Sim.t ->
  replicas:int list -> Client.t -> t

val client : t -> Client.t
val stats : t -> stats

(** Read-only degradation signal: writes have exhausted their retry budget
    and are failing cluster-wide. *)
val degraded : t -> bool

(** [call t ~op f] runs [f client] under the retry policy.  Do not wrap
    operations that park indefinitely ([Client.block], watches): they have
    no timeout for the policy to act on. *)
val call :
  t -> op:op_kind -> (Client.t -> ('a, Zerror.t) result) ->
  ('a, Zerror.t) result

(** Same, for operations reporting stringified errors (the extension call
    path); ambiguous outcomes surface as ["maybe applied"]. *)
val call_str :
  t -> op:op_kind -> (Client.t -> ('a, string) result) -> ('a, string) result

(** {2 Invalidation-cached reads (§6i)}

    The cache holds [get_data] results keyed by path.  Each cached read
    arms a one-shot server watch, and the resulting event drops the entry
    — sequential consistency for cached reads.  Failover flushes the whole
    cache (the old replica's watches are orphaned). *)

(** Serve [get_data] from the cache when a watch still covers the entry;
    otherwise read with [watch:true] and cache the result. *)
val cached_get_data :
  t -> string -> (string * Znode.stat, Zerror.t) result

(** Read-your-writes barrier: waits for this session's replica to catch up
    past the barrier through the commit path, then flushes the cache. *)
val sync : t -> (unit, Zerror.t) result

val cache_stats : t -> cache_stats
