(** The replicated hierarchical data store (committed state).

    The state machine that transactions are applied to, in commit order,
    on every replica.  Apply functions are unconditional (validation
    happened at the leader's {!Spec_view}); violated preconditions are
    counted as anomalies and skipped rather than corrupting the tree. *)

type t

val create : unit -> t

val find_opt : t -> string -> Znode.t option
val mem : t -> string -> bool
val node_count : t -> int
val anomalies : t -> int

(** Next creation id (deterministic across replicas). *)
val next_czxid : t -> int

(** Queries (served from committed state). *)

val get_data : t -> string -> (string * Znode.stat, Zerror.t) result
val exists : t -> string -> Znode.stat option

(** Children names, sorted. *)
val get_children : t -> string -> (string list, Zerror.t) result

(** Children with data and stat — the [subObjects] scan extensions get in
    one step through the state proxy. *)
val children_with_data :
  t -> string -> ((string * string * Znode.stat) list, Zerror.t) result

(** Ephemeral paths owned by a session, sorted. *)
val ephemeral_paths : t -> int -> string list

(** Child version of a node ([0] if missing): mints sequential names. *)
val cversion : t -> string -> int

(** Transaction application. *)

val apply_create :
  t -> path:string -> data:string -> ephemeral_owner:int option -> unit

val apply_delete : t -> path:string -> unit
val apply_set : t -> path:string -> data:string -> version:int -> unit

(** Snapshot images (state transfer, §3.8).  Nodes are deep-copied both on
    [export] and [import], so an image is a stable value: it survives later
    tree mutations and can be imported any number of times. *)

type image = { img_nodes : (string * Znode.t) list; img_next_czxid : int }

val export : t -> image
val import : t -> image -> unit
