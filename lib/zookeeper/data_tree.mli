(** The replicated hierarchical data store (committed state).

    The state machine that transactions are applied to, in commit order,
    on every replica.  Apply functions are unconditional (validation
    happened at the leader's {!Spec_view}); violated preconditions are
    counted as anomalies and skipped rather than corrupting the tree. *)

type t

val create : unit -> t

val find_opt : t -> string -> Znode.t option
val mem : t -> string -> bool
val node_count : t -> int
val anomalies : t -> int

(** Next creation id (deterministic across replicas). *)
val next_czxid : t -> int

(** Queries (served from committed state). *)

val get_data : t -> string -> (string * Znode.stat, Zerror.t) result
val exists : t -> string -> Znode.stat option

(** Children names, sorted. *)
val get_children : t -> string -> (string list, Zerror.t) result

(** Children with data and stat — the [subObjects] scan extensions get in
    one step through the state proxy. *)
val children_with_data :
  t -> string -> ((string * string * Znode.stat) list, Zerror.t) result

(** Ephemeral paths owned by a session, sorted. *)
val ephemeral_paths : t -> int -> string list

(** Child version of a node ([0] if missing): mints sequential names. *)
val cversion : t -> string -> int

(** Transaction application. *)

val apply_create :
  t -> path:string -> data:string -> ephemeral_owner:int option -> unit

val apply_delete : t -> path:string -> unit
val apply_set : t -> path:string -> data:string -> version:int -> unit

(** {2 Snapshot images (state transfer, §3.8)}

    [export] is a generation-stamped copy-on-write capture: it returns a
    handle in O(1), and the apply path preserves a node's pre-image into
    every active handle only on the first post-capture mutation of that
    node.  A handle is therefore a stable value — it survives later tree
    mutations — without the deep copy the old export paid on every
    snapshot.  Serialization goes through {!materialize}, which renders
    the handle as a {!portable} image with nodes sorted by path, so two
    replicas in the same state produce byte-identical blobs. *)

(** Copy-on-write snapshot handle; never serialized, never shared across
    replicas. *)
type image

(** Serializable deterministic image: nodes sorted by path, deep-copied,
    with replica-local COW stamps zeroed. *)
type portable = { img_nodes : (string * Znode.t) list; img_next_czxid : int }

(** O(1) capture.  {!release} the handle once it is superseded, so the
    apply path stops preserving pre-images for it. *)
val export : t -> image

(** Drop a handle: its overlay is freed and the apply path forgets it.
    Materializing a released handle is a programming error (it yields an
    empty image). *)
val release : image -> unit

(** Render the handle as a portable image (pre-images from the overlay,
    unchanged nodes from the live tree, sorted by path). *)
val materialize : image -> portable

(** The pre-COW deep-copy export (sorted): the bench baseline and the
    oracle of the COW differential test. *)
val export_eager : t -> portable

(** [import t image] replaces the tree's contents (ephemeral index rebuilt
    from the nodes).  Nodes are copied in, so the image stays reusable —
    importing the same image twice yields two independent trees.  Handles
    still capturing [t] are detached (completed) first, so they keep
    reading the pre-import state. *)
val import : t -> image -> unit

val import_portable : t -> portable -> unit

(** COW bookkeeping (benchmarks and tests). *)

val live_generation : t -> int

(** Nodes preserved on first touch since the tree was created. *)
val cow_copies : t -> int

val active_images : t -> int
