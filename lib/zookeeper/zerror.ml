(** ZooKeeper-style error codes. *)

type t =
  | No_node  (** target path does not exist *)
  | Node_exists  (** create on an existing path *)
  | Bad_version  (** conditional update lost the race *)
  | Not_empty  (** delete of a node that still has children *)
  | No_children_for_ephemerals  (** ephemeral nodes cannot have children *)
  | Invalid_path
  | Session_expired
  | Not_leader  (** internal: update reached a non-leader and could not be forwarded *)
  | Unsupported  (** operation not available without a matching extension *)
  | Extension_error of string  (** extension rejected/crashed, §4 sandbox *)
  | Timeout
  | Maybe_applied
      (** a non-idempotent update timed out: it may or may not have
          executed, and resubmitting could double-apply (Session layer) *)
  | Locked
      (** the path is locked by a prepared cross-shard transaction;
          definitely not applied — retry after the 2PC outcome (§6j) *)
  | Txn_conflict
      (** a cross-shard transaction aborted (validation failure, lock
          conflict, or presumed-abort timeout); definitely not applied *)

let to_string = function
  | No_node -> "no node"
  | Node_exists -> "node exists"
  | Bad_version -> "bad version"
  | Not_empty -> "not empty"
  | No_children_for_ephemerals -> "no children for ephemerals"
  | Invalid_path -> "invalid path"
  | Session_expired -> "session expired"
  | Not_leader -> "not leader"
  | Unsupported -> "unsupported operation"
  | Extension_error msg -> "extension error: " ^ msg
  | Timeout -> "timeout"
  | Maybe_applied -> "maybe applied"
  | Locked -> "locked"
  | Txn_conflict -> "txn conflict"

let pp ppf e = Fmt.string ppf (to_string e)
let equal (a : t) b = a = b
