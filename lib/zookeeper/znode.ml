(** Data nodes (znodes) and their metadata. *)

module String_set = Set.Make (String)

(** Node metadata returned to clients (a subset of ZooKeeper's Stat). *)
type stat = {
  version : int;  (** data version, bumped by each set *)
  czxid : int;  (** global creation order; recipes sort by it *)
  ephemeral_owner : int option;  (** owning session for ephemeral nodes *)
  num_children : int;
  data_length : int;
}

type t = {
  mutable data : string;
  mutable version : int;
  mutable children : String_set.t;
  mutable cversion : int;
      (** child version: bumped by every child create/delete; doubles as the
          sequential-name counter (as in ZooKeeper), so it survives leader
          changes via the replicated tree *)
  czxid : int;
  ephemeral_owner : int option;
  mutable stamp : int;
      (** copy-on-write generation: the tree's generation when this node
          was created or last mutated.  A snapshot handle taken at
          generation [g] still sees the node's live record iff
          [stamp <= g]; the first mutation with a newer live generation
          preserves a copy into every active handle before touching the
          record.  Never serialized (zeroed in images) — it is replica-
          local bookkeeping, not replicated state. *)
}

let create ~data ~czxid ~ephemeral_owner =
  {
    data;
    version = 0;
    children = String_set.empty;
    cversion = 0;
    czxid;
    ephemeral_owner;
    stamp = 0;
  }

(** Fresh record with the same contents; [children] is an immutable set, so
    a field-level copy fully detaches the node from the original. *)
let copy n = { n with data = n.data }

let is_ephemeral n = n.ephemeral_owner <> None

let stat n =
  {
    version = n.version;
    czxid = n.czxid;
    ephemeral_owner = n.ephemeral_owner;
    num_children = String_set.cardinal n.children;
    data_length = String.length n.data;
  }

let pp_stat ppf (s : stat) =
  Fmt.pf ppf "{v=%d czxid=%d eph=%a children=%d len=%d}" s.version s.czxid
    Fmt.(option ~none:(any "-") int)
    s.ephemeral_owner s.num_children s.data_length
