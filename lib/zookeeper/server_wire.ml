(** Binary codec for the deployment's complete wire type ({!Server.wire}):
    client protocol, replication traffic, and inter-server forwards in one
    self-describing frame, so a whole ZooKeeper ensemble can run over the
    real-socket transport ([Edc_wire.Tcp_transport]) with replica code
    unchanged. *)

open Edc_replication
open Edc_wire

let ( let* ) = Result.bind

let to_wire (m : Server.wire) =
  let open Wire in
  match m with
  | Server.Client_msg c -> List [ Int 0; Wire_format.client_msg_to_wire c ]
  | Server.Server_msg s -> List [ Int 1; Wire_format.server_msg_to_wire s ]
  | Server.Zab_msg z ->
      List [ Int 2; Zab_wire.to_wire ~payload:Wire_format.txn_to_wire z ]
  | Server.Forward { origin; session; xid; op } ->
      List [ Int 3; Int origin; Int session; Int xid; Wire_format.op_to_wire op ]
  | Server.Forward_connect { origin; client_addr } ->
      List [ Int 4; Int origin; Int client_addr ]
  | Server.Forward_reconnect { origin; session } ->
      List [ Int 5; Int origin; Int session ]
  | Server.Forward_close { session } -> List [ Int 6; Int session ]
  | Server.Touch { session } -> List [ Int 7; Int session ]

let of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; c ] ->
      let* c = Wire_format.client_msg_of_wire c in
      Ok (Server.Client_msg c)
  | List [ Int 1; s ] ->
      let* s = Wire_format.server_msg_of_wire s in
      Ok (Server.Server_msg s)
  | List [ Int 2; z ] ->
      let* z = Zab_wire.of_wire ~payload:Wire_format.txn_of_wire z in
      Ok (Server.Zab_msg z)
  | List [ Int 3; Int origin; Int session; Int xid; op ] ->
      let* op = Wire_format.op_of_wire op in
      Ok (Server.Forward { origin; session; xid; op })
  | List [ Int 4; Int origin; Int client_addr ] ->
      Ok (Server.Forward_connect { origin; client_addr })
  | List [ Int 5; Int origin; Int session ] ->
      Ok (Server.Forward_reconnect { origin; session })
  | List [ Int 6; Int session ] -> Ok (Server.Forward_close { session })
  | List [ Int 7; Int session ] -> Ok (Server.Touch { session })
  | _ -> Error "bad deployment wire message"

(** String codecs for the TCP transport's [~encode]/[~decode]. *)

let encode m = Wire.encode (to_wire m)
let decode s = Result.bind (Wire.decode s) of_wire
