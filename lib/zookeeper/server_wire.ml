(** Binary codec for the deployment's complete wire type ({!Server.wire}):
    client protocol, replication traffic, and inter-server forwards in one
    self-describing frame, so a whole ZooKeeper ensemble can run over the
    real-socket transport ([Edc_wire.Tcp_transport]) with replica code
    unchanged. *)

open Edc_replication
open Edc_wire

let ( let* ) = Result.bind

let to_wire (m : Server.wire) =
  let open Wire in
  match m with
  | Server.Client_msg c -> List [ Int 0; Wire_format.client_msg_to_wire c ]
  | Server.Server_msg s -> List [ Int 1; Wire_format.server_msg_to_wire s ]
  | Server.Zab_msg z ->
      List [ Int 2; Zab_wire.to_wire ~payload:Wire_format.txn_to_wire z ]
  | Server.Forward { origin; session; xid; op } ->
      List [ Int 3; Int origin; Int session; Int xid; Wire_format.op_to_wire op ]
  | Server.Forward_connect { origin; client_addr } ->
      List [ Int 4; Int origin; Int client_addr ]
  | Server.Forward_reconnect { origin; session } ->
      List [ Int 5; Int origin; Int session ]
  | Server.Forward_close { session } -> List [ Int 6; Int session ]
  | Server.Touch { session } -> List [ Int 7; Int session ]

let of_wire w =
  let open Wire in
  match w with
  | List [ Int 0; c ] ->
      let* c = Wire_format.client_msg_of_wire c in
      Ok (Server.Client_msg c)
  | List [ Int 1; s ] ->
      let* s = Wire_format.server_msg_of_wire s in
      Ok (Server.Server_msg s)
  | List [ Int 2; z ] ->
      let* z = Zab_wire.of_wire ~payload:Wire_format.txn_of_wire z in
      Ok (Server.Zab_msg z)
  | List [ Int 3; Int origin; Int session; Int xid; op ] ->
      let* op = Wire_format.op_of_wire op in
      Ok (Server.Forward { origin; session; xid; op })
  | List [ Int 4; Int origin; Int client_addr ] ->
      Ok (Server.Forward_connect { origin; client_addr })
  | List [ Int 5; Int origin; Int session ] ->
      Ok (Server.Forward_reconnect { origin; session })
  | List [ Int 6; Int session ] -> Ok (Server.Forward_close { session })
  | List [ Int 7; Int session ] -> Ok (Server.Touch { session })
  | _ -> Error "bad deployment wire message"

(* ------------------------------------------------------------------ *)
(* Streaming codec — byte-identical to the tree codec above            *)
(* ------------------------------------------------------------------ *)

module W = Wire.Writer
module R = Wire.Reader

let write w (m : Server.wire) =
  W.begin_list w;
  (match m with
  | Server.Client_msg c ->
      W.int w 0;
      Wire_format.write_client_msg w c
  | Server.Server_msg s ->
      W.int w 1;
      Wire_format.write_server_msg w s
  | Server.Zab_msg z ->
      W.int w 2;
      Zab_wire.write ~payload:Wire_format.write_txn w z
  | Server.Forward { origin; session; xid; op } ->
      W.int w 3;
      W.int w origin;
      W.int w session;
      W.int w xid;
      Wire_format.write_op w op
  | Server.Forward_connect { origin; client_addr } ->
      W.int w 4;
      W.int w origin;
      W.int w client_addr
  | Server.Forward_reconnect { origin; session } ->
      W.int w 5;
      W.int w origin;
      W.int w session
  | Server.Forward_close { session } ->
      W.int w 6;
      W.int w session
  | Server.Touch { session } ->
      W.int w 7;
      W.int w session);
  W.end_list w

let read r =
  R.begin_list r;
  let m =
    match R.int r with
    | 0 ->
        let c = Wire_format.read_client_msg r in
        Server.Client_msg c
    | 1 ->
        let s = Wire_format.read_server_msg r in
        Server.Server_msg s
    | 2 ->
        let z = Zab_wire.read ~payload:Wire_format.read_txn r in
        Server.Zab_msg z
    | 3 ->
        let origin = R.int r in
        let session = R.int r in
        let xid = R.int r in
        let op = Wire_format.read_op r in
        Server.Forward { origin; session; xid; op }
    | 4 ->
        let origin = R.int r in
        let client_addr = R.int r in
        Server.Forward_connect { origin; client_addr }
    | 5 ->
        let origin = R.int r in
        let session = R.int r in
        Server.Forward_reconnect { origin; session }
    | 6 ->
        let session = R.int r in
        Server.Forward_close { session }
    | 7 ->
        let session = R.int r in
        Server.Touch { session }
    | t -> R.error r (Printf.sprintf "bad deployment wire tag %d" t)
  in
  R.end_list r;
  m

(** String codecs for the TCP transport's [~encode]/[~decode]: the
    streaming fast path ([encode]/[decode_sub]), with the tree path kept
    as [encode_tree]/[decode] for reference and fuzzing. *)

let encode_tree m = Wire.encode (to_wire m)
let encode m = W.with_writer (fun w -> write w m)
let decode s = R.run s read
let decode_sub s ~pos ~len = R.run_sub s ~pos ~len read
let decode_tree s = Result.bind (Wire.decode s) of_wire
