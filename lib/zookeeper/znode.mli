(** Data nodes (znodes) and their client-visible metadata. *)

module String_set : Set.S with type elt = string

(** Node metadata returned to clients (a subset of ZooKeeper's Stat). *)
type stat = {
  version : int;  (** data version, bumped by each set *)
  czxid : int;  (** global creation order; recipes sort by it *)
  ephemeral_owner : int option;  (** owning session for ephemeral nodes *)
  num_children : int;
  data_length : int;
}

type t = {
  mutable data : string;
  mutable version : int;
  mutable children : String_set.t;
  mutable cversion : int;
      (** child version, bumped by child creates/deletes; doubles as the
          sequential-name counter, so it survives leader changes *)
  czxid : int;
  ephemeral_owner : int option;
  mutable stamp : int;
      (** copy-on-write generation: the tree's generation when the node was
          created or last mutated (see {!Data_tree.export}).  Replica-local
          bookkeeping, zeroed in serialized images. *)
}

val create : data:string -> czxid:int -> ephemeral_owner:int option -> t

(** Fresh record with the same contents, sharing no mutable state. *)
val copy : t -> t
val is_ephemeral : t -> bool
val stat : t -> stat
val pp_stat : Format.formatter -> stat -> unit
