(** Two-phase commit over independent replication groups (DESIGN.md §6j).

    The cross-shard atomic-commit protocol is layered {e on top of} the
    per-shard Zab groups: every protocol step that must survive a leader
    change travels through the participant shard's own replicated log
    (prepare, resolve) or the coordinator shard's log (the commit
    decision), so 2PC state is exactly as durable as the shards
    themselves.  This module holds the pieces shared by all deployments:
    the write-op payload a prepare carries, the inter-shard frames, and
    their canonical wire codec.

    Protocol shape (presumed abort):

    - the coordinator (leader of the lowest-numbered participant shard)
      sends [Prepare] to every participant's leader;
    - a participant validates + locks through its own log and answers
      [Prepare_ack];
    - all yes-votes ⇒ the coordinator logs the commit decision in its own
      shard's log — the commit point — and pushes [Commit]; any no-vote
      or a coordinator timeout ⇒ [Abort] (aborts need no log record);
    - a prepared participant that hears nothing asks the coordinator
      shard with [Status]; the answer is derived from the coordinator
      shard's {e replicated} decision table, so it survives coordinator
      leader kills: decision logged ⇒ that decision; no decision ⇒ the
      inquiry itself aborts the transaction (no later commit is possible
      because only the enquired leader's volatile round could have
      committed it, and it now never will). *)

open Edc_wire

let ( let* ) = Result.bind

(** One write of a cross-shard transaction, in the owning shard's
    namespace.  Deliberately smaller than the full client op set:
    cross-shard transactions move plain data nodes (the sharded queue's
    element hand-off); ephemerals and sequentials stay single-shard. *)
type wop =
  | Wcreate of { path : string; data : string }
  | Wset of { path : string; data : string }
  | Wdelete of { path : string }

let wop_path = function
  | Wcreate { path; _ } | Wset { path; _ } | Wdelete { path } -> path

let wop_size = function
  | Wcreate { path; data } | Wset { path; data } ->
      16 + String.length path + String.length data
  | Wdelete { path } -> 12 + String.length path

(** Inter-shard frames, leader to leader.  [txid] strings are minted by
    the coordinator ("shard.epoch.counter") and globally unique. *)
type frame =
  | Prepare of {
      txid : string;
      coord : int;  (** coordinator shard id (target of [Status]) *)
      participants : int list;
      ops : wop list;  (** this participant's slice of the transaction *)
    }
  | Prepare_ack of { txid : string; shard : int; ok : bool }
  | Commit of { txid : string }
  | Abort of { txid : string }
  | Status of { txid : string; from_shard : int }
      (** in-doubt participant asks the coordinator shard for the outcome *)

let frame_txid = function
  | Prepare { txid; _ }
  | Prepare_ack { txid; _ }
  | Commit { txid }
  | Abort { txid }
  | Status { txid; _ } ->
      txid

let frame_size = function
  | Prepare { txid; participants; ops; _ } ->
      24 + String.length txid
      + (4 * List.length participants)
      + List.fold_left (fun acc o -> acc + wop_size o) 0 ops
  | Prepare_ack { txid; _ } -> 16 + String.length txid
  | Commit { txid } | Abort { txid } -> 12 + String.length txid
  | Status { txid; _ } -> 16 + String.length txid

(* ------------------------------------------------------------------ *)
(* Canonical wire codec (append-only tag registries)                   *)
(*   wop:   0 Wcreate, 1 Wset, 2 Wdelete                               *)
(*   frame: 0 Prepare, 1 Prepare_ack, 2 Commit, 3 Abort, 4 Status     *)
(* ------------------------------------------------------------------ *)

let wop_to_wire = function
  | Wcreate { path; data } -> Wire.List [ Int 0; Str path; Str data ]
  | Wset { path; data } -> Wire.List [ Int 1; Str path; Str data ]
  | Wdelete { path } -> Wire.List [ Int 2; Str path ]

let wop_of_wire = function
  | Wire.List [ Wire.Int 0; Wire.Str path; Wire.Str data ] ->
      Ok (Wcreate { path; data })
  | Wire.List [ Wire.Int 1; Wire.Str path; Wire.Str data ] ->
      Ok (Wset { path; data })
  | Wire.List [ Wire.Int 2; Wire.Str path ] -> Ok (Wdelete { path })
  | _ -> Error "bad 2pc wop"

let shard_list_to_wire l = Wire.List (List.map (fun s -> Wire.Int s) l)

let shard_list_of_wire w =
  Wire.map_list
    (function Wire.Int s -> Ok s | _ -> Error "bad shard id")
    w

let frame_to_wire = function
  | Prepare { txid; coord; participants; ops } ->
      Wire.List
        [ Int 0; Str txid; Int coord; shard_list_to_wire participants;
          List (List.map wop_to_wire ops) ]
  | Prepare_ack { txid; shard; ok } ->
      Wire.List [ Int 1; Str txid; Int shard; Wire.bool_ ok ]
  | Commit { txid } -> Wire.List [ Int 2; Str txid ]
  | Abort { txid } -> Wire.List [ Int 3; Str txid ]
  | Status { txid; from_shard } -> Wire.List [ Int 4; Str txid; Int from_shard ]

let frame_of_wire = function
  | Wire.List [ Wire.Int 0; Wire.Str txid; Wire.Int coord; participants; ops ]
    ->
      let* participants = shard_list_of_wire participants in
      let* ops = Wire.map_list wop_of_wire ops in
      Ok (Prepare { txid; coord; participants; ops })
  | Wire.List [ Wire.Int 1; Wire.Str txid; Wire.Int shard; ok ] ->
      let* ok = Wire.to_bool ok in
      Ok (Prepare_ack { txid; shard; ok })
  | Wire.List [ Wire.Int 2; Wire.Str txid ] -> Ok (Commit { txid })
  | Wire.List [ Wire.Int 3; Wire.Str txid ] -> Ok (Abort { txid })
  | Wire.List [ Wire.Int 4; Wire.Str txid; Wire.Int from_shard ] ->
      Ok (Status { txid; from_shard })
  | _ -> Error "bad 2pc frame"

(* Streaming wop codec, byte-identical to [wop_to_wire]/[wop_of_wire];
   the deployment's streaming message writers (Multi, 2PC txn ops)
   compose with it. *)

let write_wop w op =
  let module W = Wire.Writer in
  W.begin_list w;
  (match op with
  | Wcreate { path; data } ->
      W.int w 0;
      W.str w path;
      W.str w data
  | Wset { path; data } ->
      W.int w 1;
      W.str w path;
      W.str w data
  | Wdelete { path } ->
      W.int w 2;
      W.str w path);
  W.end_list w

let read_wop r =
  let module R = Wire.Reader in
  R.begin_list r;
  let op =
    match R.int r with
    | 0 ->
        let path = R.str r in
        let data = R.str r in
        Wcreate { path; data }
    | 1 ->
        let path = R.str r in
        let data = R.str r in
        Wset { path; data }
    | 2 ->
        let path = R.str r in
        Wdelete { path }
    | t -> R.error r (Printf.sprintf "bad 2pc wop tag %d" t)
  in
  R.end_list r;
  op

let pp_wop ppf = function
  | Wcreate { path; _ } -> Fmt.pf ppf "create %s" path
  | Wset { path; _ } -> Fmt.pf ppf "set %s" path
  | Wdelete { path } -> Fmt.pf ppf "delete %s" path

let pp_frame ppf = function
  | Prepare { txid; coord; participants; ops } ->
      Fmt.pf ppf "prepare %s coord=%d parts=[%a] ops=[%a]" txid coord
        Fmt.(list ~sep:comma int)
        participants
        Fmt.(list ~sep:comma pp_wop)
        ops
  | Prepare_ack { txid; shard; ok } ->
      Fmt.pf ppf "prepare-ack %s shard=%d %s" txid shard
        (if ok then "yes" else "no")
  | Commit { txid } -> Fmt.pf ppf "commit %s" txid
  | Abort { txid } -> Fmt.pf ppf "abort %s" txid
  | Status { txid; from_shard } ->
      Fmt.pf ppf "status? %s from=%d" txid from_shard
