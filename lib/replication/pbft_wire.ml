(** Binary codec for {!Pbft} protocol messages (DESIGN.md §6g), parametric
    in the payload codec like {!Zab_wire}. *)

open Edc_simnet
open Edc_wire

let ( let* ) = Result.bind

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let rid_to_wire (r : Pbft.request_id) = Wire.List [ Int r.client; Int r.rseq ]

let rid_of_wire = function
  | Wire.List [ Wire.Int client; Wire.Int rseq ] -> Ok { Pbft.client; rseq }
  | _ -> Error "bad request id"

let batch_to_wire payload batch =
  Wire.List
    (List.map (fun (rid, p) -> Wire.List [ rid_to_wire rid; payload p ]) batch)

let batch_of_wire of_payload = function
  | Wire.List items ->
      map_result
        (function
          | Wire.List [ r; p ] ->
              let* rid = rid_of_wire r in
              let* p = of_payload p in
              Ok (rid, p)
          | _ -> Error "bad batch element")
        items
  | _ -> Error "bad batch"

let to_wire ~payload (m : 'p Pbft.msg) =
  let open Wire in
  match m with
  | Pbft.Pre_prepare { view; seq; batch; ts } ->
      List
        [ Int 0; Int view; Int seq; batch_to_wire payload batch;
          Int (Sim_time.to_ns ts) ]
  | Pbft.Prepare { view; seq } -> List [ Int 1; Int view; Int seq ]
  | Pbft.Commit { view; seq } -> List [ Int 2; Int view; Int seq ]
  | Pbft.View_change { new_view; delivered; pending } ->
      List
        [ Int 3; Int new_view; batch_to_wire payload delivered;
          batch_to_wire payload pending ]
  | Pbft.New_view { view } -> List [ Int 4; Int view ]
  | Pbft.Recover_request -> List [ Int 5 ]
  | Pbft.Recover_reply { view } -> List [ Int 6; Int view ]

let of_wire ~payload:of_payload w =
  let open Wire in
  match w with
  | List [ Int 0; Int view; Int seq; batch; Int ts ] ->
      let* batch = batch_of_wire of_payload batch in
      Ok (Pbft.Pre_prepare { view; seq; batch; ts = Sim_time.ns ts })
  | List [ Int 1; Int view; Int seq ] -> Ok (Pbft.Prepare { view; seq })
  | List [ Int 2; Int view; Int seq ] -> Ok (Pbft.Commit { view; seq })
  | List [ Int 3; Int new_view; delivered; pending ] ->
      let* delivered = batch_of_wire of_payload delivered in
      let* pending = batch_of_wire of_payload pending in
      Ok (Pbft.View_change { new_view; delivered; pending })
  | List [ Int 4; Int view ] -> Ok (Pbft.New_view { view })
  | List [ Int 5 ] -> Ok Pbft.Recover_request
  | List [ Int 6; Int view ] -> Ok (Pbft.Recover_reply { view })
  | _ -> Error "bad pbft message"

(* ------------------------------------------------------------------ *)
(* Streaming codec — byte-identical to the tree codec above (fuzzed
   against it in test/test_wire.ml).                                   *)
(* ------------------------------------------------------------------ *)

module W = Wire.Writer
module R = Wire.Reader

let write_rid w (r : Pbft.request_id) =
  W.begin_list w;
  W.int w r.client;
  W.int w r.rseq;
  W.end_list w

let read_rid r =
  R.begin_list r;
  let client = R.int r in
  let rseq = R.int r in
  R.end_list r;
  { Pbft.client; rseq }

let write_batch wp w batch =
  W.list w
    (fun w (rid, p) ->
      W.begin_list w;
      write_rid w rid;
      wp w p;
      W.end_list w)
    batch

let read_batch rp r =
  R.list r (fun r ->
      R.begin_list r;
      let rid = read_rid r in
      let p = rp r in
      R.end_list r;
      (rid, p))

let write ~payload:wp w (m : 'p Pbft.msg) =
  W.begin_list w;
  (match m with
  | Pbft.Pre_prepare { view; seq; batch; ts } ->
      W.int w 0;
      W.int w view;
      W.int w seq;
      write_batch wp w batch;
      W.int w (Sim_time.to_ns ts)
  | Pbft.Prepare { view; seq } ->
      W.int w 1;
      W.int w view;
      W.int w seq
  | Pbft.Commit { view; seq } ->
      W.int w 2;
      W.int w view;
      W.int w seq
  | Pbft.View_change { new_view; delivered; pending } ->
      W.int w 3;
      W.int w new_view;
      write_batch wp w delivered;
      write_batch wp w pending
  | Pbft.New_view { view } ->
      W.int w 4;
      W.int w view
  | Pbft.Recover_request -> W.int w 5
  | Pbft.Recover_reply { view } ->
      W.int w 6;
      W.int w view);
  W.end_list w

let read ~payload:rp r =
  R.begin_list r;
  let m =
    match R.int r with
    | 0 ->
        let view = R.int r in
        let seq = R.int r in
        let batch = read_batch rp r in
        let ts = Sim_time.ns (R.int r) in
        Pbft.Pre_prepare { view; seq; batch; ts }
    | 1 ->
        let view = R.int r in
        let seq = R.int r in
        Pbft.Prepare { view; seq }
    | 2 ->
        let view = R.int r in
        let seq = R.int r in
        Pbft.Commit { view; seq }
    | 3 ->
        let new_view = R.int r in
        let delivered = read_batch rp r in
        let pending = read_batch rp r in
        Pbft.View_change { new_view; delivered; pending }
    | 4 ->
        let view = R.int r in
        Pbft.New_view { view }
    | 5 -> Pbft.Recover_request
    | 6 ->
        let view = R.int r in
        Pbft.Recover_reply { view }
    | t -> R.error r (Printf.sprintf "bad pbft tag %d" t)
  in
  R.end_list r;
  m
