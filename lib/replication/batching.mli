(** Group-commit batcher shared by the Zab and PBFT substrates.

    Accumulates items and hands them to [flush] in arrival order as one
    batch when the batch is full or the oldest item has waited [max_delay]
    — but never while a previous flush is still paying [sync_cost] (the
    serial per-batch agreement cost: the leader's transaction-log fsync,
    the BFT proposer's per-instance work).  Under load, items arriving
    during a sync ride the next batch, which is how group commit
    self-clocks without a tuned delay. *)

open Edc_simnet

type config = {
  max_batch : int;  (** maximum items per proposal (clamped to >= 1) *)
  max_delay : Sim_time.t;  (** patience of the oldest pending item *)
  sync_cost : Sim_time.t;  (** serial per-batch agreement cost *)
}

(** One item per proposal, zero delay and sync cost: behaviourally
    identical to unbatched replication. *)
val off : config

val group_commit :
  ?max_batch:int -> ?max_delay:Sim_time.t -> ?sync_cost:Sim_time.t -> unit ->
  config

val pp : Format.formatter -> config -> unit

type 'a t

(** [create ~sim ~config ~flush] — [flush] receives each batch oldest
    first; it is called synchronously from [add] when both [sync_cost] and
    the due-wait are zero, from a scheduled event otherwise. *)
val create : sim:Sim.t -> config:config -> flush:('a list -> unit) -> 'a t

(** [add t x] enqueues an item and flushes if a batch is due. *)
val add : 'a t -> 'a -> unit

(** Items currently waiting (not yet handed to [flush]). *)
val pending : 'a t -> int

(** [reset t] drops pending items and invalidates armed timers and
    in-flight syncs (leadership loss / view change / crash). *)
val reset : 'a t -> unit
