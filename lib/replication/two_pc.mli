(** Two-phase commit over independent replication groups (DESIGN.md §6j):
    the write-op payload of a prepare, the inter-shard frames, and their
    canonical wire codec.  The engine lives in the deployment's server
    (its steps must ride the shard's own replicated log); this module is
    the shared, transport-level vocabulary. *)

type wop =
  | Wcreate of { path : string; data : string }
  | Wset of { path : string; data : string }
  | Wdelete of { path : string }

val wop_path : wop -> string
val wop_size : wop -> int

type frame =
  | Prepare of {
      txid : string;
      coord : int;
      participants : int list;
      ops : wop list;
    }
  | Prepare_ack of { txid : string; shard : int; ok : bool }
  | Commit of { txid : string }
  | Abort of { txid : string }
  | Status of { txid : string; from_shard : int }

val frame_txid : frame -> string
val frame_size : frame -> int

(** Canonical binary codec (total decoders, append-only tags). *)

val wop_to_wire : wop -> Edc_wire.Wire.t
val wop_of_wire : Edc_wire.Wire.t -> (wop, string) result

(** Streaming counterparts, byte-identical to the tree codec. *)

val write_wop : Edc_wire.Wire.Writer.t -> wop -> unit
val read_wop : Edc_wire.Wire.Reader.t -> wop
val frame_to_wire : frame -> Edc_wire.Wire.t
val frame_of_wire : Edc_wire.Wire.t -> (frame, string) result

val pp_wop : Format.formatter -> wop -> unit
val pp_frame : Format.formatter -> frame -> unit
